package lightpath_test

import (
	"fmt"

	"lightpath"
)

// The godoc examples below are executed by go test; their outputs are
// asserted, so they double as integration checks of the public API.

// ExampleNew shows the default fabric: a TPUv4-style rack of 64
// accelerators on two 32-tile LIGHTPATH wafers.
func ExampleNew() {
	fabric, err := lightpath.New(lightpath.Options{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(fabric.Torus().Size(), "accelerators on", fabric.Hardware().NumWafers(), "wafers")
	// Output: 64 accelerators on 2 wafers
}

// ExampleFabric_PlanAllReduce reproduces the Table 1 headline through
// the public API: Slice-1's collective runs ~3x faster photonically.
func ExampleFabric_PlanAllReduce() {
	fabric, _ := lightpath.New(lightpath.Options{Seed: 1})
	_, alloc, _ := lightpath.Fig5bAllocation()
	plan, err := fabric.PlanAllReduce(alloc, 0, 256*lightpath.MB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.1fx optical speedup\n", plan.Algorithm, plan.Speedup())
	// Output: snake-ring: 3.0x optical speedup
}

// ExampleUtilizationReport prints the paper's Figure 5c numbers.
func ExampleUtilizationReport() {
	_, alloc, _ := lightpath.Fig5bAllocation()
	for _, u := range lightpath.UtilizationReport(alloc) {
		fmt.Printf("%s %.2f %.2f\n", u.Slice, u.Electrical, u.Optical)
	}
	// Output:
	// Slice-1 0.33 1.00
	// Slice-2 0.33 1.00
	// Slice-3 0.67 1.00
	// Slice-4 0.67 1.00
}

// ExampleBlastRadius prints the §4.2 fault-policy comparison.
func ExampleBlastRadius() {
	stats := lightpath.BlastRadius()
	fmt.Printf("electrical %.0f chips, optical %.0f chips (%.0fx)\n",
		stats.ElectricalMean, stats.OpticalMean, stats.Ratio)
	// Output: electrical 64 chips, optical 4 chips (16x)
}

// ExampleFabric_Circuits establishes a circuit and shows its
// microsecond-scale readiness.
func ExampleFabric_Circuits() {
	fabric, _ := lightpath.New(lightpath.Options{Seed: 1})
	c, err := fabric.Circuits().Establish(lightpath.CircuitRequest{A: 0, B: 9, Width: 1}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("ready at", c.ReadyAt)
	// Output: ready at 3.70us
}
