// Quickstart: build a LIGHTPATH fabric hosting a TPUv4-style rack,
// establish an optical circuit between two accelerators, and plan a
// tenant's AllReduce on electrical versus photonic interconnects.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lightpath"
)

func main() {
	// A fabric with the paper's defaults: a 4x4x4 accelerator torus
	// stacked on two 32-tile photonic wafers, 16 lasers per tile at
	// 224 Gbps each, 3.7 us MZI reconfiguration.
	fabric, err := lightpath.New(lightpath.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d accelerators on %d wafers\n",
		fabric.Torus().Size(), fabric.Hardware().NumWafers())

	// Establish a 4-wavelength circuit between chips 0 and 63 — they
	// sit on different wafers, so the path crosses an attached fiber.
	circuit, err := fabric.Circuits().Establish(lightpath.CircuitRequest{A: 0, B: 63, Width: 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fabric.Hardware().Config()
	fmt.Printf("circuit: %v\n", circuit)
	fmt.Printf("  bandwidth: %v, optical budget: %v\n",
		circuit.Bandwidth(cfg.WavelengthCapacity), circuit.Link)

	// Lease the paper's Figure 5b tenants and plan Slice-1's
	// AllReduce both ways.
	_, allocation, err := lightpath.Fig5bAllocation()
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fabric.PlanAllReduce(allocation, 0, 64*lightpath.MB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Slice-1 64MB AllReduce (%s):\n", plan.Algorithm)
	fmt.Printf("  electrical torus: %v\n", plan.ElectricalTime)
	fmt.Printf("  photonic fabric:  %v (%.1fx speedup)\n", plan.OpticalTime, plan.Speedup())
}
