// Lifecycle: a day in the life of a multi-tenant photonic rack — the
// paper's two opportunities (§4.1 bandwidth redirection, §4.2 failure
// blast radius) composed into one story. Tenants train; a chip dies;
// the job keeps running.
//
// Run with:
//
//	go run ./examples/lifecycle
package main

import (
	"fmt"
	"log"

	"lightpath"
	"lightpath/internal/alloc"
	"lightpath/internal/torus"
)

func main() {
	fabric, err := lightpath.New(lightpath.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Morning: the Figure 6a rack is leased out — Slice-4 (32 chips),
	// Slice-3 (16), Slice-1 (8) — with 8 spare chips.
	sc, err := alloc.Fig6a()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== morning: tenants running ==")
	stepBuffer := 1.3 * lightpath.GB
	var slice3Step lightpath.Seconds
	for si, s := range sc.Alloc.Slices() {
		plan, err := fabric.PlanAllReduce(sc.Alloc, si, stepBuffer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %2d chips: per-step AllReduce %v photonic (%.1fx vs electrical)\n",
			s.Name, s.Size(), plan.OpticalTime, plan.Speedup())
		if s == sc.Victim {
			slice3Step = plan.OpticalTime
		}
	}

	// Afternoon: a TPU dies inside Slice-3.
	fmt.Printf("\n== afternoon: chip %v in %s fails ==\n",
		sc.Torus.Coord(sc.FailedChip), sc.Victim.Name)
	cmp, err := fabric.CompareRepair([]*torus.Allocation{sc.Alloc}, 0, sc.FailedChip, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  electrical in-rack replacement: impossible without congestion (best attempt: %d units)\n",
		cmp.ElectricalPlan.Congestion)
	fmt.Printf("  photonic repair: %d circuits to spare chip %d, rings resume in %v\n",
		len(cmp.OpticalPlan.Circuits), cmp.OpticalPlan.Replacement, cmp.OpticalReadyIn)

	// What each policy costs the tenant. Under the TPUv4 electrical
	// policy the whole rack drains and the job restores from its last
	// checkpoint elsewhere (minutes); photonically, the slice stalls
	// for one MZI settle and goes on.
	const checkpointRestore = 5 * 60.0 // seconds, a typical restore
	stepsLostElectrical := checkpointRestore / float64(slice3Step)
	fmt.Printf("\n== evening: the bill ==\n")
	fmt.Printf("  electrical policy: drain rack (64-chip blast radius), ~%.0f s restore = ~%.0f training steps lost\n",
		checkpointRestore, stepsLostElectrical)
	fmt.Printf("  photonic repair:   4-chip blast radius, %v stall = ~0 steps lost\n", cmp.OpticalReadyIn)

	stats := lightpath.BlastRadius()
	fmt.Printf("  fleet-wide: every failure touches %.0fx fewer chips\n", stats.Ratio)
}
