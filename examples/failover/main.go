// Failover: the paper's §4.2 story. A TPU chip dies inside a tenant
// slice in a fully packed rack (the Figure 6a scenario). The
// electrical torus cannot splice in a spare without congesting
// someone; the photonic fabric repairs the broken rings with
// dedicated circuits in 3.7 us — and at datacenter scale the blast
// radius shrinks from a rack to a server.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"lightpath"
	"lightpath/internal/alloc"
	"lightpath/internal/torus"
)

func main() {
	fabric, err := lightpath.New(lightpath.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 6a rack: Slice-4 fills half the cube, the victim
	// Slice-3 is a full plane, Slice-1 takes half the top plane, and
	// eight chips are free spares.
	sc, err := alloc.Fig6a()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rack: %v, victim %s, failed chip %v, %d spares\n",
		sc.Torus.Shape(), sc.Victim.Name, sc.Torus.Coord(sc.FailedChip), len(sc.FreeChips))

	cmp, err := fabric.CompareRepair([]*torus.Allocation{sc.Alloc}, 0, sc.FailedChip, 4)
	if err != nil {
		log.Fatal(err)
	}

	if cmp.ElectricalPossible {
		fmt.Println("electrical repair: congestion-free plan found (unexpected!)")
	} else {
		fmt.Println("electrical repair: IMPOSSIBLE without congestion")
		if cmp.ElectricalPlan != nil {
			fmt.Printf("  best congested attempt: spare chip %d, %d congestion units\n",
				cmp.ElectricalPlan.Replacement, cmp.ElectricalPlan.Congestion)
		}
	}

	fmt.Println("optical repair: established", len(cmp.OpticalPlan.Circuits), "dedicated circuits")
	for _, c := range cmp.OpticalPlan.Circuits {
		fmt.Printf("  %v\n", c)
	}
	fmt.Printf("  circuits disjoint: %v, rings resume in %v\n",
		cmp.OpticalPlan.Disjoint(), cmp.OpticalReadyIn)

	stats := lightpath.BlastRadius()
	fmt.Printf("\nblast radius at TPUv4 scale (%d chips):"+
		" electrical %.0f chips/failure, optical %.0f — %vx smaller\n",
		stats.Failures, stats.ElectricalMean, stats.OpticalMean, stats.Ratio)
}
