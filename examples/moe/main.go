// MoE: the paper's §5 challenge workload. Mixture-of-Experts
// inference routes each batch's tokens to gate-selected expert chips,
// so the circuit pattern changes at runtime — the case the paper says
// needs "dynamic programming of circuits". This example runs the
// workload under a uniform gate and under a skewed gate with one hot
// expert, showing the reconfiguration-versus-transfer trade-off and
// the fan-in serialization a hot expert forces.
//
// Run with:
//
//	go run ./examples/moe
package main

import (
	"fmt"
	"log"

	"lightpath"
)

func run(name string, cfg lightpath.MoEConfig) {
	fabric, err := lightpath.New(lightpath.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fabric.RunMoE(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d batches, top-%d of %d experts, %v per expert\n",
		name, cfg.Batches, cfg.TopK, cfg.Experts, cfg.BytesPerExpert)
	fmt.Printf("  circuits: %d established, %d reused, %d evicted\n",
		res.NewCircuits, res.ReusedCircuits, res.Evictions)
	fmt.Printf("  time: %v reconfig + %v transfer = %v (overhead %.2f%%)\n\n",
		res.ReconfigTime, res.TransferTime, res.Makespan, res.OverheadFraction()*100)
}

func main() {
	uniform := lightpath.DefaultMoEConfig()
	run("uniform gating", uniform)

	skewed := uniform
	skewed.Skew = 0.9
	run("skewed gating (hot expert 0)", skewed)

	small := uniform
	small.BytesPerExpert = 64 * lightpath.KB
	run("latency-bound batches (64KB per expert)", small)

	fmt.Println("takeaway: at inference payloads the 3.7us reconfiguration is noise;")
	fmt.Println("only tiny batches or a hot expert's fan-in serialization expose it.")
}
