// Trainjob: the paper's §4.1 motivation end to end. A multi-tenant
// TPU rack (Figure 5b) runs data-parallel training; each tenant's
// per-step gradient AllReduce is compared on the static electrical
// torus versus the bandwidth-redirecting photonic fabric, across the
// gradient sizes of three model scales.
//
// Run with:
//
//	go run ./examples/trainjob
package main

import (
	"fmt"
	"log"

	"lightpath"
)

func main() {
	fabric, err := lightpath.New(lightpath.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	_, allocation, err := lightpath.Fig5bAllocation()
	if err != nil {
		log.Fatal(err)
	}

	// Figure 5c first: how much of each chip's bandwidth can the
	// tenant actually use?
	fmt.Println("Bandwidth utilization (Figure 5c):")
	for _, u := range lightpath.UtilizationReport(allocation) {
		fmt.Printf("  %-8s electrical %.0f%%  optical %.0f%%\n",
			u.Slice, u.Electrical*100, u.Optical*100)
	}

	// Per-step gradient buffers of three model scales (float32).
	models := []struct {
		name   string
		bytes  lightpath.Bytes
		params string
	}{
		{"bert-large", 1.3 * lightpath.GB, "340M params"},
		{"gpt2-xl", 6.2 * lightpath.GB, "1.5B params"},
		{"shard-64MB", 64 * lightpath.MB, "fused gradient bucket"},
	}

	fmt.Println("\nPer-step AllReduce, electrical vs photonic:")
	for si := range allocation.Slices() {
		name := allocation.Slices()[si].Name
		for _, m := range models {
			plan, err := fabric.PlanAllReduce(allocation, si, m.bytes)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %-12s (%s, %-22s): elec %-10v opt %-10v %.2fx\n",
				name, m.name, plan.Algorithm, m.params,
				plan.ElectricalTime, plan.OpticalTime, plan.Speedup())
		}
	}

	// A training step waits for the slowest collective; over a day of
	// steps the redirection compounds.
	plan, err := fabric.PlanAllReduce(allocation, 0, 1.3*lightpath.GB)
	if err != nil {
		log.Fatal(err)
	}
	saved := plan.ElectricalTime - plan.OpticalTime
	stepsPerDay := 50000.0
	fmt.Printf("\nSlice-1 on bert-large saves %v per step;"+
		" over %.0f steps/day that is %.1f accelerator-hours of idle time removed\n",
		saved, stepsPerDay,
		float64(saved)*stepsPerDay/3600*float64(allocation.Slices()[0].Size()))
}
