// Scheduler: the paper's §1 closing challenge made concrete — "new
// optical resource allocation algorithms will be needed to arrive at
// the appropriate trade-off between optical reconfiguration delay and
// end-to-end server-scale interconnect performance". This example runs
// five policies over three traffic classes and shows why no fixed
// strategy wins everywhere.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/sched"
	"lightpath/internal/unit"
)

func main() {
	p := sched.Params{
		ChipBandwidth: unit.GBps(300),
		Reconfig:      phy.ReconfigLatency,
		PortLimit:     16,
	}
	chips := make([]int, 8)
	for i := range chips {
		chips[i] = i
	}

	for _, kind := range []sched.WorkloadKind{sched.WorkloadPeriodic, sched.WorkloadShifting, sched.WorkloadChurning} {
		for _, bytes := range []unit.Bytes{4 * unit.KiB, 16 * unit.MiB} {
			phases := sched.Generate(kind, chips, 24, bytes, rng.New(7).Split(kind.String()))
			fmt.Printf("%s traffic, %v per pair:\n", kind, bytes)
			policies := []sched.Policy{
				sched.EagerPolicy{},
				sched.NewStaticPolicy(chips),
				sched.HysteresisPolicy{P: p, Threshold: 1.0},
				sched.NewCachingPolicy(p),
				sched.NewHedgePolicy(p),
			}
			opt, err := sched.OfflineOptimal(p, phases, chips)
			if err != nil {
				log.Fatal(err)
			}
			for _, policy := range policies {
				out, err := sched.Run(p, policy, phases)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-14s total %-12v (%.2fx optimal, %d reconfigs)\n",
					policy.Name(), out.Total, float64(out.Total/opt.Total), out.Reconfigs)
			}
			fmt.Printf("  %-14s total %-12v\n\n", "offline-opt", opt.Total)
		}
	}
	fmt.Println("takeaway: tiny phases want static circuits, huge ones want eager")
	fmt.Println("reconfiguration; caching wins when traffic repeats; the learned")
	fmt.Println("hedge tracks whichever expert fits — the trade-off §1 predicts.")
}
