// Hoststack: the paper's §1 closing challenge — "server-scale optics
// will necessitate the development of new host networking software
// stacks optimized for circuit-switching as opposed to today's
// packetized data transmission". This example compares the two stacks
// on three traffic classes and shows where the 3.7 us circuit setup
// pays for itself.
//
// Run with:
//
//	go run ./examples/hoststack
package main

import (
	"fmt"

	"lightpath/internal/hostnet"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func main() {
	p := hostnet.DefaultParams()
	fmt.Printf("packet stack: %v NIC, %v MTU, %v/pkt, %d switch hops\n",
		p.PacketBandwidth, p.MTU, p.PerPacketOverhead, p.Hops)
	fmt.Printf("circuit stack: %v circuit, %v setup, %v idle timeout\n\n",
		p.CircuitBandwidth, p.CircuitSetup, p.IdleTimeout)

	fmt.Println("one-shot message latency (cold circuit):")
	fmt.Printf("  %-10s %-14s %-14s %s\n", "size", "packet", "circuit", "winner")
	for s := unit.Bytes(256); s <= 16*unit.MiB; s *= 8 {
		pkt, circ := p.PacketLatency(s), p.CircuitLatency(s, false)
		winner := "packet"
		if circ < pkt {
			winner = "circuit"
		}
		fmt.Printf("  %-10v %-14v %-14v %s\n", s, pkt, circ, winner)
	}
	fmt.Printf("crossover: %v\n\n", p.CrossoverSize())

	r := rng.New(2024)
	for _, kind := range []hostnet.WorkloadKind{hostnet.WorkloadRPC, hostnet.WorkloadBulk, hostnet.WorkloadBursty} {
		trace := hostnet.GenerateTrace(kind, 400, r.Split(kind.String()))
		pkt, err := hostnet.RunPacketTrace(p, trace)
		if err != nil {
			panic(err)
		}
		circ, err := hostnet.RunCircuitTrace(p, trace)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s workload (%d msgs): packet mean %v p99 %v | circuit mean %v p99 %v (%d setups)\n",
			kind, len(trace), pkt.Mean, pkt.P99, circ.Mean, circ.P99, circ.Setups)
	}
	fmt.Println("\ntakeaway: circuit caching turns the reconfiguration tax into a")
	fmt.Println("per-destination one-time cost; only cold, tiny sends still prefer packets.")
}
