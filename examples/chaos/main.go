// Chaos: the failure lifecycle end to end. A deterministic fault
// engine (internal/chaos) schedules component failures from a seed;
// this walkthrough takes one of its chip deaths, injects it into the
// middle of a running AllReduce on the Figure 6a rack, and drives the
// full recovery: detect the dead chip, tear down its circuits, splice
// a spare in over fresh optical circuits, restore the last
// step-boundary checkpoint, and replay the interrupted step. The
// collective still computes the exact answer, the repair lands at the
// MZI settling time, and only the 16-chip victim slice ever stalls —
// the electrical alternative stalls all 64.
//
// Run with:
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"lightpath"
	"lightpath/internal/alloc"
	"lightpath/internal/chaos"
	"lightpath/internal/unit"
)

func main() {
	// The Figure 6a rack: Slice-3 (a 4x4 plane, 16 chips) is the
	// victim tenant; eight chips are free spares.
	sc, err := alloc.Fig6a()
	if err != nil {
		log.Fatal(err)
	}
	chips := sc.Alloc.Slices()[1].Chips(sc.Torus)

	// The fault engine draws Poisson arrivals per component class from
	// split seeded streams — same seed, same faults, bit for bit.
	eng, err := chaos.NewEngine(2024, chaos.Components{
		Chips: len(chips), SwitchesPerTile: 4, Wafers: 2,
		Rows: 8, Cols: 8, Trunks: 2,
	}, chaos.Rates{MTBF: chipMTBF(10 * unit.Millisecond)})
	if err != nil {
		log.Fatal(err)
	}
	faults := eng.Schedule(1.0)
	fault := faults[0]
	fmt.Printf("engine scheduled %d faults over 1s; first: %v\n", len(faults), fault)

	// Replay that arrival as a mid-collective failure: the victim dies
	// halfway through a schedule step's data phase.
	fabric, err := lightpath.New(lightpath.Options{RackShape: sc.Torus.Shape(), Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}
	out, err := fabric.RunAllReduceUnderFault(
		sc.Alloc, 1, 4*lightpath.MB, chips[fault.Chip], 3, lightpath.DefaultChaosPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	if !out.Correct {
		log.Fatal("the recovered collective produced a wrong result")
	}
	fmt.Printf("\nrepair %v vs analytic bound %v (within 2x: %v)\n",
		out.RepairTime, out.RepairBound, out.RepairTime <= 2*out.RepairBound)
	fmt.Printf("blast radius: %d chips stalled optically vs %d electrically\n",
		out.StallOptical, out.StallElectrical)
}

// chipMTBF builds a rate table where only whole-chip failures arrive.
func chipMTBF(mtbf unit.Seconds) [chaos.NumClasses]unit.Seconds {
	var rates [chaos.NumClasses]unit.Seconds
	rates[chaos.ChipFailure] = mtbf
	return rates
}
