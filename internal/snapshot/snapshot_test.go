package snapshot

import (
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestCodecRoundTrip drives every primitive through an encode/decode
// cycle and demands exact recovery, including the float edge cases a
// text codec would mangle.
func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U64(0)
	e.U64(^uint64(0))
	e.I64(-1)
	e.Int(-1 << 40)
	e.F64(0.1)
	e.F64(math.Copysign(0, -1))
	e.Bool(true)
	e.Bool(false)
	e.Len(3)
	e.String("")
	e.String("fleet/mttr")

	d := NewDecoder(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.U64(); got != ^uint64(0) {
		t.Errorf("U64 max = %d", got)
	}
	if got := d.I64(); got != -1 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != -1<<40 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); got != 0.1 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.F64(); got != 0 || !signbit(got) {
		t.Errorf("F64 -0.0 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Len(); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := d.String(); got != "fleet/mttr" {
		t.Errorf("String = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func signbit(f float64) bool { return 1/f < 0 }

// TestDecoderSticky verifies that the first failure wins and poisons
// every later read, so unchecked decode sequences cannot act on
// garbage.
func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	_ = d.U64() // needs 8 bytes, fails
	if d.Err() == nil {
		t.Fatal("short U64 not detected")
	}
	first := d.Err()
	if got := d.Int(); got != 0 {
		t.Errorf("read after failure returned %d", got)
	}
	if !errors.Is(d.Err(), ErrCorruptSnapshot) {
		t.Errorf("error %v does not wrap ErrCorruptSnapshot", d.Err())
	}
	if d.Err() != first {
		t.Error("later failure replaced the first")
	}
}

// TestFinishRejectsTrailingBytes: extra payload is a schema mismatch,
// reported as corruption.
func TestFinishRejectsTrailingBytes(t *testing.T) {
	var e Encoder
	e.U64(7)
	e.U64(8)
	d := NewDecoder(e.Bytes())
	_ = d.U64()
	if err := d.Finish(); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("Finish on partial consumption: %v", err)
	}
}

// TestEnvelopeRejectsEveryMutation seals a payload and verifies that
// truncation at every length and a bit flip at every byte position is
// rejected with ErrCorruptSnapshot.
func TestEnvelopeRejectsEveryMutation(t *testing.T) {
	var e Encoder
	e.U64(0xfeedface)
	e.String("checkpoint")
	sealed := Seal(3, e.Bytes())

	if v, p, err := Open(sealed); err != nil || v != 3 || len(p) != len(e.Bytes()) {
		t.Fatalf("pristine snapshot rejected: v=%d err=%v", v, err)
	}
	for n := 0; n < len(sealed); n++ {
		if _, _, err := Open(sealed[:n]); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation to %d bytes: %v", n, err)
		}
	}
	for i := range sealed {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << bit
			if _, _, err := Open(mut); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("bit flip at byte %d bit %d: %v", i, bit, err)
			}
		}
	}
}

// TestWriteLoadRotation exercises the full persistence cycle: write
// two generations, corrupt the primary, and verify Load falls back to
// the rotation.
func TestWriteLoadRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.ckpt")

	if err := Write(path, 1, []byte("gen-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(PrevPath(path)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rotation exists after first write: %v", err)
	}
	if err := Write(path, 1, []byte("gen-2")); err != nil {
		t.Fatal(err)
	}

	v, p, from, err := Load(path)
	if err != nil || v != 1 || string(p) != "gen-2" || from != path {
		t.Fatalf("Load = %d %q %q %v", v, p, from, err)
	}
	// The rotation holds generation 1.
	if _, p, err := Read(PrevPath(path)); err != nil || string(p) != "gen-1" {
		t.Fatalf("rotation = %q %v", p, err)
	}

	// Tear the primary mid-file; Load must fall back, not fail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	v, p, from, err = Load(path)
	if err != nil || v != 1 || string(p) != "gen-1" || from != PrevPath(path) {
		t.Fatalf("fallback Load = %d %q %q %v", v, p, from, err)
	}

	// Corrupt both generations: now Load must fail with the typed error.
	if err := os.WriteFile(PrevPath(path), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Load(path); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("double corruption: %v", err)
	}
}

// TestLoadMissing: a snapshot that never existed is not corruption —
// it surfaces as fs.ErrNotExist so callers can distinguish "fresh
// start" from "damaged state".
func TestLoadMissing(t *testing.T) {
	_, _, _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}
	if errors.Is(err, ErrCorruptSnapshot) {
		t.Fatal("missing snapshot misreported as corrupt")
	}
}
