package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSnapshotRoundTrip is the codec's adversarial gate, covering
// both directions of the trust boundary:
//
//   - encode→decode: a payload built from the fuzzed primitive values
//     seals, opens, and decodes back to exactly the inputs;
//   - decode-hostile: the same sealed bytes, truncated at the fuzzed
//     offset or bit-flipped at the fuzzed position, are rejected with
//     ErrCorruptSnapshot — never a panic and never a silent partial
//     decode;
//   - raw bytes: the mutated input itself fed straight to Open either
//     opens cleanly or fails typed; whatever happens, it must not
//     panic.
//
// The committed corpus in testdata/fuzz seeds the interesting shapes:
// empty payloads, huge declared lengths, magic-only prefixes.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), 0.0, false, "", uint32(0), 0, 0)
	f.Add(uint64(1), int64(-1), -0.0, true, "fleet", uint32(1), 3, 7)
	f.Add(^uint64(0), int64(1)<<62, 1e300, true, "checkpoint/rotation", uint32(9), 17, 63)
	f.Add(uint64(0xfeedface), int64(-1)<<40, 0.1, false, "\x00\xff\r\n", uint32(2), 5, 1)

	f.Fuzz(func(t *testing.T, u uint64, i int64, fv float64, b bool, s string, version uint32, cut, flip int) {
		var e Encoder
		e.U64(u)
		e.I64(i)
		e.F64(fv)
		e.Bool(b)
		e.String(s)
		payload := e.Bytes()
		sealed := Seal(version, payload)

		// Forward direction: exact recovery.
		v, got, err := Open(sealed)
		if err != nil {
			t.Fatalf("pristine snapshot rejected: %v", err)
		}
		if v != version || !bytes.Equal(got, payload) {
			t.Fatalf("payload round trip: version %d->%d, %d->%d bytes", version, v, len(payload), len(got))
		}
		d := NewDecoder(got)
		if du, di, df, db, ds := d.U64(), d.I64(), d.F64(), d.Bool(), d.String(); du != u || di != i || db != b || ds != s ||
			(df != fv && !(df != df && fv != fv)) { // NaN round-trips as NaN
			t.Fatalf("decode mismatch: %v %v %v %v %q", du, di, df, db, ds)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}

		// Every truncation is rejected, typed.
		if n := len(sealed); n > 0 {
			c := cut % n
			if c < 0 {
				c = -c
			}
			trunc := sealed[:c]
			if _, _, err := Open(trunc); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("truncation to %d bytes accepted: %v", len(trunc), err)
			}
		}

		// Every single-bit flip is rejected, typed.
		mut := append([]byte(nil), sealed...)
		pos := flip % (len(mut) * 8)
		if pos < 0 {
			pos = -pos
		}
		mut[pos/8] ^= 1 << (pos % 8)
		if _, _, err := Open(mut); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("bit flip at %d accepted: %v", pos, err)
		}

		// A hostile decoder walk over the flipped payload region must
		// never panic; errors are fine and must be typed.
		hd := NewDecoder(mut)
		for hd.Err() == nil && hd.Remaining() > 0 {
			_ = hd.U64()
			_ = hd.Bool()
			_ = hd.String()
			_ = hd.Len()
		}
		if hd.Err() != nil && !errors.Is(hd.Err(), ErrCorruptSnapshot) {
			t.Fatalf("decoder error not typed: %v", hd.Err())
		}
	})
}
