// Package snapshot is the crash-tolerance substrate of the simulator:
// a versioned, self-describing binary envelope plus the primitive
// codec every stateful layer (wafer health, the route allocator, the
// fleet soak) uses to serialize itself at a deterministic event
// boundary and come back byte-identical after a process death.
//
// The envelope is deliberately paranoid about torn writes. A snapshot
// file carries a fixed magic, a format version, an explicit payload
// length and a CRC32-C trailer over everything before it, so any
// truncation, bit flip or partially flushed write is detected at load
// time and reported as ErrCorruptSnapshot — never a panic, never a
// silently half-restored state. Persistence is write-temp → fsync →
// rename, with the previous good snapshot kept as a ".prev" rotation
// so a fault during the write of generation N still leaves generation
// N-1 loadable.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrCorruptSnapshot reports that snapshot bytes failed validation:
// bad magic, unknown version, truncation, a length that disagrees
// with the file, or a CRC mismatch. Every decode failure in this
// package wraps it, so callers gate fallback-and-recover behavior on
// a single errors.Is check.
var ErrCorruptSnapshot = errors.New("snapshot: corrupt or truncated snapshot")

// magic opens every snapshot file. The CR-LF pair catches ASCII-mode
// transfer mangling, the same trick PNG's magic uses.
var magic = [8]byte{'L', 'P', 'S', 'N', 'A', 'P', '\r', '\n'}

// headerSize is magic + version + payload length.
const headerSize = 8 + 4 + 4

// trailerSize is the CRC32-C of header+payload.
const trailerSize = 4

// castagnoli is the CRC32-C table; Castagnoli's polynomial has better
// burst-error detection than IEEE and hardware support on modern CPUs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal wraps a payload in the snapshot envelope: magic, format
// version, payload length, payload, CRC32-C trailer.
func Seal(version uint32, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload)+trailerSize)
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[8:], version)
	binary.LittleEndian.PutUint32(out[12:], uint32(len(payload)))
	copy(out[headerSize:], payload)
	sum := crc32.Checksum(out[:headerSize+len(payload)], castagnoli)
	binary.LittleEndian.PutUint32(out[headerSize+len(payload):], sum)
	return out
}

// Open validates a sealed snapshot and returns its format version and
// payload. Any defect — short file, wrong magic, impossible length,
// trailing garbage, CRC mismatch — returns an error wrapping
// ErrCorruptSnapshot.
func Open(data []byte) (version uint32, payload []byte, err error) {
	if len(data) < headerSize+trailerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte envelope",
			ErrCorruptSnapshot, len(data), headerSize+trailerSize)
	}
	if [8]byte(data[:8]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, data[:8])
	}
	version = binary.LittleEndian.Uint32(data[8:])
	n := int(binary.LittleEndian.Uint32(data[12:]))
	if n < 0 || headerSize+n+trailerSize != len(data) {
		return 0, nil, fmt.Errorf("%w: declared payload %d bytes, file holds %d",
			ErrCorruptSnapshot, n, len(data)-headerSize-trailerSize)
	}
	want := binary.LittleEndian.Uint32(data[headerSize+n:])
	got := crc32.Checksum(data[:headerSize+n], castagnoli)
	if got != want {
		return 0, nil, fmt.Errorf("%w: CRC32C %08x, trailer says %08x",
			ErrCorruptSnapshot, got, want)
	}
	return version, data[headerSize : headerSize+n], nil
}
