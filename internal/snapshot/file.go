package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// This file is the durability half of the package: snapshots reach
// disk through write-temp → fsync → rename, and the previous good
// generation is rotated to a ".prev" sibling before each write. The
// two moves give a crash at ANY instant a loadable snapshot: either
// the rename has not happened and the old file (or its rotation) is
// intact, or it has and the new file is complete — rename is atomic
// on POSIX filesystems. Load validates the envelope and falls back to
// the rotation when the primary is corrupt, so a torn write costs one
// checkpoint interval, never the run.

// prevSuffix names the rotated previous-generation snapshot.
const prevSuffix = ".prev"

// tmpSuffix names the in-flight temporary file Write replaces
// atomically. A crash can leave one behind; Write truncates it.
const tmpSuffix = ".tmp"

// PrevPath returns the rotation sibling of a snapshot path.
func PrevPath(path string) string { return path + prevSuffix }

// Write seals the payload and persists it to path with torn-write
// protection: the current file (if any) is first rotated to
// PrevPath(path), then the new snapshot is written to a temporary
// sibling, fsynced, and renamed over path, and the directory is
// fsynced so the rename itself is durable.
func Write(path string, version uint32, payload []byte) error {
	data := Seal(version, payload)
	// Rotate the previous generation. A missing current file (first
	// checkpoint of a run) is fine; any other rename failure is not.
	if err := os.Rename(path, PrevPath(path)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("snapshot: rotate %s: %w", path, err)
	}
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("snapshot: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: publish %s: %w", path, err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power
// loss. Filesystems that refuse to fsync directories are tolerated —
// the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: open dir %s: %w", dir, err)
	}
	_ = d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("snapshot: close dir %s: %w", dir, err)
	}
	return nil
}

// Read loads and validates the snapshot at path. A missing file
// returns the fs.ErrNotExist it came with; a present-but-invalid file
// returns an error wrapping ErrCorruptSnapshot.
func Read(path string) (version uint32, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: %w", err)
	}
	version, payload, err = Open(data)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	return version, payload, nil
}

// Load reads the snapshot at path, falling back to the rotated
// previous generation when the primary is corrupt or torn. It returns
// which file actually loaded so callers can report the fallback. Only
// when both generations fail does it return an error: the primary's,
// with the fallback's attached.
func Load(path string) (version uint32, payload []byte, loadedFrom string, err error) {
	version, payload, err = Read(path)
	if err == nil {
		return version, payload, path, nil
	}
	prev := PrevPath(path)
	pv, pp, perr := Read(prev)
	if perr == nil {
		return pv, pp, prev, nil
	}
	return 0, nil, "", fmt.Errorf("%w (fallback %s: %v)", err, prev, perr)
}
