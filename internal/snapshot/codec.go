package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the primitive codec snapshot payloads are built from.
// The encoding is deliberately dumb: fixed-width little-endian words
// for numbers, uvarint-prefixed bytes for strings and slices, no
// reflection, no schema. Every layer writes its fields in a fixed
// order and reads them back in the same order; the envelope's CRC and
// the Decoder's sticky bounds checking catch everything else. Dumb is
// the point — a codec with no branching on content cannot be
// nondeterministic, and a decoder that never indexes past its buffer
// cannot panic on a torn file.

// Encoder appends primitive values to a growing payload buffer. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset empties the encoder while keeping its buffer capacity, so a
// long-lived encoder (a wire handler, a checkpoint writer) stops
// allocating once it has seen its largest payload. The slice a prior
// Bytes returned aliases the same storage and is overwritten by
// subsequent appends — callers must copy or consume it first.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U64 appends a fixed-width uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a fixed-width int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as a fixed-width int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bits, so every value — NaNs
// and signed zeros included — round-trips exactly.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Unit appends a float64-based unit newtype (unit.Seconds,
// unit.Decibel, ...) by its IEEE-754 bits. The conversion happens
// inside the generic body, so each call site keeps its dimension —
// Encoder.F64's parameter never sees a laundered unit value, which is
// what the unittaint analyzer checks for.
func Unit[T ~float64](e *Encoder, v T) { e.F64(float64(v)) }

// DecodeUnit reads a value written by Unit back into its unit type.
func DecodeUnit[T ~float64](d *Decoder) T { return T(d.F64()) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Len appends a slice or map length as a uvarint; Decoder.Len bounds
// it against the remaining payload.
func (e *Encoder) Len(n int) {
	e.buf = binary.AppendUvarint(e.buf, uint64(n))
}

// String appends a uvarint-prefixed string.
func (e *Encoder) String(s string) {
	e.Len(len(s))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values back out of a payload. Errors are
// sticky: after the first failure every subsequent read returns the
// zero value, so decode sequences can run unchecked and test Err once
// at the end. All failures wrap ErrCorruptSnapshot.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload for reading.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish fails unless the payload was consumed exactly: trailing
// bytes mean the writer and reader disagree about the schema, which
// is as corrupt as a short read.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail(fmt.Errorf("%w: %d unconsumed payload bytes", ErrCorruptSnapshot, len(d.buf)-d.off))
	}
	return d.err
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(fmt.Errorf("%w: need %d bytes at offset %d, payload has %d",
			ErrCorruptSnapshot, n, d.off, len(d.buf)))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a fixed-width uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool. Any byte other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: bool byte %#02x", ErrCorruptSnapshot, b[0]))
		return false
	}
}

// Len reads a length written by Encoder.Len. The result is bounded by
// the remaining payload size, so a corrupted length can never drive a
// giant allocation or an out-of-range loop.
func (d *Decoder) Len() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: bad uvarint length at offset %d", ErrCorruptSnapshot, d.off))
		return 0
	}
	d.off += n
	if v > uint64(len(d.buf)-d.off) {
		d.fail(fmt.Errorf("%w: length %d exceeds %d remaining payload bytes",
			ErrCorruptSnapshot, v, len(d.buf)-d.off))
		return 0
	}
	return int(v)
}

// String reads a string written by Encoder.String.
func (d *Decoder) String() string {
	n := d.Len()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
