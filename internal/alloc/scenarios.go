package alloc

import (
	"fmt"

	"lightpath/internal/torus"
)

// This file reconstructs the paper's figure scenarios. Figure
// geometry in the paper is schematic; these layouts are equivalent
// reconstructions that exhibit exactly the phenomena the paper
// describes (see each function's comment and DESIGN.md's
// per-experiment index).

// Fig5b builds the Figure 5b rack: a fully allocated 4x4x4 cube
// holding Slice-4 (4x4x2), Slice-3 (4x4x1), and Slice-1/Slice-2
// (4x2x1 each). Slice-1 and Slice-2 share their Y and Z dimension
// lines with other tenants (only X usable); Slice-3 and Slice-4 share
// Z (X and Y usable).
func Fig5b() (*torus.Torus, *torus.Allocation, error) {
	t := torus.New(torus.TPUv4RackShape)
	slices := []*torus.Slice{
		{Name: "Slice-1", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}},
		{Name: "Slice-2", Origin: torus.Coord{0, 2, 3}, Shape: torus.Shape{4, 2, 1}},
		{Name: "Slice-3", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}},
		{Name: "Slice-4", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 2}},
	}
	a, err := torus.NewAllocation(t, slices)
	if err != nil {
		return nil, nil, err
	}
	return t, a, nil
}

// Fig6aScenario is the single-rack failure setting of Figure 6a.
type Fig6aScenario struct {
	Torus *torus.Torus
	Alloc *torus.Allocation
	// Victim is the slice with the failed chip (Slice-3).
	Victim *torus.Slice
	// FailedChip is the failed TPU (red in the figure).
	FailedChip int
	// FreeChips are the replacement candidates (blue in the figure).
	FreeChips []int
}

// Fig6a builds the Figure 6a rack: Slice-4 fills z in {0,1}, victim
// Slice-3 is the 4x4 plane at z=2, Slice-1 holds half the z=3 plane
// and the other half is free. The failed chip is interior to Slice-3
// (the figure's TPU 7), so both its X and Y rings break, and — as in
// the paper — every electrical route from the broken-ring neighbors
// to a free chip either crosses another tenant's chip (on-chip
// forwarding congestion) or reuses a link carried by some slice's
// rings (link congestion).
func Fig6a() (*Fig6aScenario, error) {
	t := torus.New(torus.TPUv4RackShape)
	victim := &torus.Slice{Name: "Slice-3", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}}
	slices := []*torus.Slice{
		{Name: "Slice-4", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 2}},
		victim,
		{Name: "Slice-1", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}},
	}
	a, err := torus.NewAllocation(t, slices)
	if err != nil {
		return nil, err
	}
	sc := &Fig6aScenario{
		Torus:      t,
		Alloc:      a,
		Victim:     victim,
		FailedChip: t.Index(torus.Coord{1, 1, 2}),
		FreeChips:  a.FreeChips(),
	}
	if len(sc.FreeChips) != 8 {
		return nil, fmt.Errorf("alloc: Fig6a free chips = %d, want 8", len(sc.FreeChips))
	}
	return sc, nil
}

// Fig6bScenario is the cross-rack failure setting of Figure 6b.
type Fig6bScenario struct {
	RackTorus *torus.Torus
	// Allocs[0] is rack 1 (holding the victim), Allocs[1] is rack 2
	// (holding the only free chips).
	Allocs []*torus.Allocation
	// Victim is rack 1's Slice-2 with the failed chip.
	Victim *torus.Slice
	// FailedChip is a local chip index in rack 1.
	FailedChip int
	// FreeChips are local chip indices in rack 2.
	FreeChips []int
	// SpliceDim is the dimension whose OCS can splice the racks (Z).
	SpliceDim int
}

// Fig6b builds the Figure 6b pair of racks. Rack 1 is fully
// allocated; the victim Slice-2 (4x2x1) sits on its top face so the
// only way out is the Z-dimension OCS. Rack 2 holds Slice-1 (2x4x4,
// running full 3-D bucket rings, including on the Z lines the paper's
// purple line refers to), two filler slices, and four free chips. As
// in the paper, every electrical path from the victim's broken-ring
// neighbors to a free chip crosses another tenant's chips or
// ring-carrying lines.
func Fig6b() (*Fig6bScenario, error) {
	t := torus.New(torus.TPUv4RackShape)
	victim := &torus.Slice{Name: "Slice-2", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}}
	rack1Slices := []*torus.Slice{
		{Name: "r1-base", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 2}},
		{Name: "r1-mid", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}},
		victim,
		{Name: "r1-top", Origin: torus.Coord{0, 2, 3}, Shape: torus.Shape{4, 2, 1}},
	}
	a1, err := torus.NewAllocation(t, rack1Slices)
	if err != nil {
		return nil, err
	}
	rack2Slices := []*torus.Slice{
		{Name: "Slice-1", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{2, 4, 4}},
		{Name: "r2-b", Origin: torus.Coord{2, 0, 0}, Shape: torus.Shape{2, 4, 2}},
		{Name: "r2-c", Origin: torus.Coord{2, 0, 2}, Shape: torus.Shape{2, 4, 1}},
		{Name: "r2-d", Origin: torus.Coord{2, 2, 3}, Shape: torus.Shape{2, 2, 1}},
	}
	a2, err := torus.NewAllocation(t, rack2Slices)
	if err != nil {
		return nil, err
	}
	sc := &Fig6bScenario{
		RackTorus:  t,
		Allocs:     []*torus.Allocation{a1, a2},
		Victim:     victim,
		FailedChip: t.Index(torus.Coord{1, 1, 3}),
		FreeChips:  a2.FreeChips(),
		SpliceDim:  2,
	}
	if len(sc.FreeChips) != 4 {
		return nil, fmt.Errorf("alloc: Fig6b free chips = %d, want 4", len(sc.FreeChips))
	}
	return sc, nil
}
