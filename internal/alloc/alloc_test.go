package alloc

import (
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/torus"
)

func rack() *torus.Torus { return torus.New(torus.TPUv4RackShape) }

func TestPlacerFirstFit(t *testing.T) {
	p := NewPlacer(rack())
	s1, err := p.Place("a", torus.Shape{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Origin.Equal(torus.Coord{0, 0, 0}) {
		t.Fatalf("first slice at %v", s1.Origin)
	}
	s2, err := p.Place("b", torus.Shape{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Origin.Equal(torus.Coord{0, 0, 2}) {
		t.Fatalf("second slice at %v", s2.Origin)
	}
	if p.FreeCount() != 64-32-16 {
		t.Fatalf("free = %d", p.FreeCount())
	}
	if len(p.Slices()) != 2 {
		t.Fatalf("slices = %d", len(p.Slices()))
	}
}

func TestPlacerRejectsUnrealizableShapes(t *testing.T) {
	p := NewPlacer(rack())
	if _, err := p.Place("bad", torus.Shape{3, 1, 1}); err == nil {
		t.Fatal("extent-3 shape accepted")
	}
	if _, err := p.Place("bad", torus.Shape{4, 2}); err == nil {
		t.Fatal("wrong-dims shape accepted")
	}
}

func TestPlacerFullRack(t *testing.T) {
	p := NewPlacer(rack())
	for i := 0; i < 4; i++ {
		if _, err := p.Place("plane", torus.Shape{4, 4, 1}); err != nil {
			t.Fatalf("plane %d: %v", i, err)
		}
	}
	if p.FreeCount() != 0 {
		t.Fatalf("free = %d, want 0", p.FreeCount())
	}
	if _, err := p.Place("extra", torus.Shape{1, 2, 1}); err == nil {
		t.Fatal("placement on a full rack accepted")
	}
}

func TestPlacerRemove(t *testing.T) {
	p := NewPlacer(rack())
	s, err := p.Place("a", torus.Shape{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Remove(s)
	if p.FreeCount() != 64 {
		t.Fatalf("free after remove = %d", p.FreeCount())
	}
	// The region is reusable.
	if _, err := p.Place("b", torus.Shape{4, 4, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacerRemovePanicsOnUnknown(t *testing.T) {
	p := NewPlacer(rack())
	defer func() {
		if recover() == nil {
			t.Fatal("remove of unplaced slice did not panic")
		}
	}()
	p.Remove(&torus.Slice{Name: "ghost"})
}

func TestPlacerAllocationValidates(t *testing.T) {
	p := NewPlacer(rack())
	if _, err := p.Place("a", torus.Shape{4, 2, 1}); err != nil {
		t.Fatal(err)
	}
	a, err := p.Allocation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Slices()) != 1 {
		t.Fatal("allocation lost slices")
	}
}

func TestTenantShapesCatalog(t *testing.T) {
	shapes := TenantShapes(rack())
	if len(shapes) == 0 {
		t.Fatal("empty catalog")
	}
	for _, s := range shapes {
		if s.Size() < 2 {
			t.Fatalf("catalog shape %v too small", s)
		}
		for d, e := range s {
			if e != 1 && e != 2 && e != 4 {
				t.Fatalf("catalog shape %v has bad extent in dim %d", s, d)
			}
		}
	}
	// 3 options per dim, minus the 1x1x1 singleton: 26.
	if len(shapes) != 26 {
		t.Fatalf("catalog size = %d, want 26", len(shapes))
	}
}

func TestRandomTenantsDeterministic(t *testing.T) {
	p1 := NewPlacer(rack())
	p2 := NewPlacer(rack())
	a := RandomTenants(p1, rng.New(99), 10)
	b := RandomTenants(p2, rng.New(99), 10)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d tenants", len(a), len(b))
	}
	for i := range a {
		if !a[i].Shape.Equal(b[i].Shape) || !a[i].Origin.Equal(b[i].Origin) {
			t.Fatalf("tenant %d differs", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("no tenants placed")
	}
	// The placement is a valid allocation.
	if _, err := p1.Allocation(); err != nil {
		t.Fatal(err)
	}
}

func TestFig5bScenario(t *testing.T) {
	tor, a, err := Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.FreeChips()) != 0 {
		t.Fatal("Fig5b rack should be fully allocated")
	}
	if tor.Size() != 64 || len(a.Slices()) != 4 {
		t.Fatalf("rack %d chips, %d slices", tor.Size(), len(a.Slices()))
	}
}

func TestFig6aScenario(t *testing.T) {
	sc, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Alloc.OwnerSlice(sc.FailedChip) != sc.Victim {
		t.Fatal("failed chip not in the victim slice")
	}
	if len(sc.FreeChips) != 8 {
		t.Fatalf("free chips = %d", len(sc.FreeChips))
	}
	// The failed chip is interior: both an X and a Y ring pass
	// through it.
	c := sc.Torus.Coord(sc.FailedChip)
	if c[2] != 2 {
		t.Fatalf("failed chip at %v, want z=2", c)
	}
}

func TestFig6bScenario(t *testing.T) {
	sc, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Allocs) != 2 {
		t.Fatal("want two racks")
	}
	if len(sc.Allocs[0].FreeChips()) != 0 {
		t.Fatal("rack 1 should be fully allocated")
	}
	if len(sc.FreeChips) != 4 {
		t.Fatalf("rack 2 free chips = %d, want 4", len(sc.FreeChips))
	}
	if sc.Allocs[0].OwnerSlice(sc.FailedChip) != sc.Victim {
		t.Fatal("failed chip not in victim")
	}
	// The victim sits on rack 1's top face: its only way out is Z.
	if c := sc.RackTorus.Coord(sc.FailedChip); c[2] != 3 {
		t.Fatalf("failed chip at %v, want z=3", c)
	}
}
