// Package alloc places tenant slices on TPU racks: a first-fit placer
// for regular-shaped slices (the shapes TPUv4 leases, §4.1), a random
// multi-tenant workload generator, and exact reconstructions of the
// paper's scenario figures (5b, 6a, 6b) used by the experiments.
package alloc

import (
	"fmt"

	"lightpath/internal/rng"
	"lightpath/internal/torus"
)

// Placer assigns slices to free regions of a torus, first-fit in
// row-major origin order, without wrapping slices around the torus
// (TPUv4 slices are axis-aligned blocks).
type Placer struct {
	t        *torus.Torus
	occupied []bool
	slices   []*torus.Slice
}

// NewPlacer creates an empty placer over the torus.
func NewPlacer(t *torus.Torus) *Placer {
	return &Placer{t: t, occupied: make([]bool, t.Size())}
}

// FreeCount returns the number of unallocated chips.
func (p *Placer) FreeCount() int {
	n := 0
	for _, o := range p.occupied {
		if !o {
			n++
		}
	}
	return n
}

// Slices returns the placed slices.
func (p *Placer) Slices() []*torus.Slice { return p.slices }

// Place finds the first origin (row-major) where a slice of the shape
// fits entirely on free chips, places it, and returns it. TPUv4-style
// realizability is enforced: every extent must be 1, 2 or the full
// torus extent so the slice's rings close (torus.Slice.RingLinks).
func (p *Placer) Place(name string, shape torus.Shape) (*torus.Slice, error) {
	if len(shape) != p.t.Dims() {
		return nil, fmt.Errorf("alloc: shape %v has %d dims, torus has %d", shape, shape.Dims(), p.t.Dims())
	}
	for d, e := range shape {
		if e != 1 && e != 2 && e != p.t.Extent(d) {
			return nil, fmt.Errorf("alloc: extent %d in dim %d is not realizable (want 1, 2 or %d)",
				e, d, p.t.Extent(d))
		}
	}
	origin := make(torus.Coord, p.t.Dims())
	for {
		s := &torus.Slice{Name: name, Origin: origin.Clone(), Shape: shape.Clone()}
		if p.fitsUnwrapped(s) && p.allFree(s) {
			for _, chip := range s.Chips(p.t) {
				p.occupied[chip] = true
			}
			p.slices = append(p.slices, s)
			return s, nil
		}
		// Advance the origin odometer.
		d := len(origin) - 1
		for ; d >= 0; d-- {
			origin[d]++
			if origin[d] < p.t.Extent(d) {
				break
			}
			origin[d] = 0
		}
		if d < 0 {
			return nil, fmt.Errorf("alloc: no free region for %q (%v)", name, shape)
		}
	}
}

// Remove releases a previously placed slice.
func (p *Placer) Remove(s *torus.Slice) {
	for i, placed := range p.slices {
		if placed == s {
			for _, chip := range s.Chips(p.t) {
				p.occupied[chip] = false
			}
			p.slices = append(p.slices[:i], p.slices[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("alloc: remove of unplaced slice %q", s.Name))
}

// Allocation freezes the current placement into a validated
// torus.Allocation.
func (p *Placer) Allocation() (*torus.Allocation, error) {
	return torus.NewAllocation(p.t, p.slices)
}

func (p *Placer) fitsUnwrapped(s *torus.Slice) bool {
	for d := range s.Origin {
		if s.Origin[d]+s.Shape[d] > p.t.Extent(d) {
			return false
		}
	}
	return true
}

func (p *Placer) allFree(s *torus.Slice) bool {
	for _, chip := range s.Chips(p.t) {
		if p.occupied[chip] {
			return false
		}
	}
	return true
}

// TenantShapes is the catalog of slice shapes a TPUv4-style rack
// leases: axis extents from {1, 2, 4} with at least 2 chips.
func TenantShapes(t *torus.Torus) []torus.Shape {
	options := func(d int) []int {
		if t.Extent(d) >= 4 {
			return []int{1, 2, t.Extent(d)}
		}
		return []int{1, 2}
	}
	var shapes []torus.Shape
	var build func(d int, cur torus.Shape)
	build = func(d int, cur torus.Shape) {
		if d == t.Dims() {
			if cur.Size() >= 2 {
				shapes = append(shapes, cur.Clone())
			}
			return
		}
		for _, e := range options(d) {
			build(d+1, append(cur, e))
		}
	}
	build(0, torus.Shape{})
	return shapes
}

// RandomTenants fills the placer with randomly shaped tenants until
// either maxTenants are placed or no catalog shape fits, returning
// the placed slices. Deterministic given the stream.
func RandomTenants(p *Placer, r *rng.Rand, maxTenants int) []*torus.Slice {
	shapes := TenantShapes(p.t)
	var placed []*torus.Slice
	for i := 0; i < maxTenants; i++ {
		// Try a few random shapes before concluding the rack is full.
		var s *torus.Slice
		for attempt := 0; attempt < 8; attempt++ {
			shape := shapes[r.Intn(len(shapes))]
			var err error
			s, err = p.Place(fmt.Sprintf("tenant-%d", i), shape)
			if err == nil {
				break
			}
			s = nil
		}
		if s == nil {
			break
		}
		placed = append(placed, s)
	}
	return placed
}
