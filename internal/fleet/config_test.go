package fleet

import (
	"container/heap"
	"sort"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// TestConfigValidateTable exercises validate directly — not through
// Run, whose withDefaults pass papers over zero values — with one
// case per guard clause, plus the valid baseline.
func TestConfigValidateTable(t *testing.T) {
	valid := Config{}.withDefaults()
	if err := valid.validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero wafers", func(c *Config) { c.Wafers = 0 }},
		{"single wafer", func(c *Config) { c.Wafers = 1 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"negative horizon", func(c *Config) { c.Horizon = -unit.Second }},
		{"zero sample cadence", func(c *Config) { c.SampleEvery = 0 }},
		{"negative sample cadence", func(c *Config) { c.SampleEvery = -unit.Second }},
		{"zero crews", func(c *Config) { c.Crews = 0 }},
		{"negative crews", func(c *Config) { c.Crews = -1 }},
		{"negative spares", func(c *Config) { c.Spares = -1 }},
		{"zero jobs", func(c *Config) { c.Jobs = 0 }},
		{"negative jobs", func(c *Config) { c.Jobs = -1 }},
		{"zero width", func(c *Config) { c.Width = 0 }},
		{"negative width", func(c *Config) { c.Width = -2 }},
		{"unknown sample mode", func(c *Config) { c.SampleMode = SampleMode(3) }},
		{"negative sample mode", func(c *Config) { c.SampleMode = SampleMode(-1) }},
		{"zero reservoir", func(c *Config) { c.ReservoirCap = 0 }},
		{"negative reservoir", func(c *Config) { c.ReservoirCap = -8 }},
		{"endpoints exceed chips", func(c *Config) { c.Jobs = 1000 }},
		{"spares exceed chips", func(c *Config) { c.Spares = 1000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if err := cfg.validate(); err == nil {
				t.Errorf("validate accepted %+v", cfg)
			}
		})
	}
}

// TestRepairQueueDrainOrder is a property test for the repair
// min-heap: any push/pop interleaving drains in (completion time,
// service order). The seq tie-break is load-bearing — simultaneous
// completions are common when MTTR draws collide — so equal times
// must preserve service order exactly.
func TestRepairQueueDrainOrder(t *testing.T) {
	r := rng.New(2026)
	for trial := 0; trial < 200; trial++ {
		var q repairQueue
		var expected []repairEvent
		seq := 0
		// Random interleaving of pushes and pops; coarse times force
		// frequent ties so the seq ordering actually decides.
		for op := 0; op < 60; op++ {
			if len(q) > 0 && r.Intn(3) == 0 {
				got := heap.Pop(&q).(repairEvent)
				// The popped event must be the minimum of everything
				// currently queued.
				for _, ev := range q {
					if ev.at < got.at || (ev.at == got.at && ev.seq < got.seq) {
						t.Fatalf("trial %d: popped (%v, %d) before (%v, %d)",
							trial, got.at, got.seq, ev.at, ev.seq)
					}
				}
				continue
			}
			ev := repairEvent{at: unit.Seconds(r.Intn(8)), seq: seq}
			seq++
			heap.Push(&q, ev)
			expected = append(expected, ev)
		}
		// Drain what's left: the concatenated pop order of a fresh
		// copy must equal the (at, seq) sort of everything pushed.
		var fresh repairQueue
		for _, ev := range expected {
			heap.Push(&fresh, ev)
		}
		sort.Slice(expected, func(i, j int) bool {
			if expected[i].at != expected[j].at {
				return expected[i].at < expected[j].at
			}
			return expected[i].seq < expected[j].seq
		})
		for i, want := range expected {
			got := heap.Pop(&fresh).(repairEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: drain[%d] = (%v, %d), want (%v, %d)",
					trial, i, got.at, got.seq, want.at, want.seq)
			}
		}
	}
}
