package fleet

import (
	"errors"
	"fmt"

	"lightpath/internal/chaos"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file is the soak's crash-tolerance layer. A checkpoint is one
// snapshot-envelope file capturing everything the event loop needs to
// continue: RNG stream positions, the allocator and hardware state,
// job/spare/crew/repair-queue state, accumulated statistics and the
// loop cursors. Checkpoints land only on event boundaries, and the
// fault schedule is recomputed from the config on resume, so the file
// stays small and a resumed soak produces an Outcome byte-identical
// to the uninterrupted run — the property the crash-injection tests
// sweep over every boundary.

// checkpointVersion is the current checkpoint payload format.
const checkpointVersion = 1

// ErrStopped is returned by RunCheckpointed when the soak halted at
// the StopAfterEvents boundary instead of reaching the horizon. The
// crash-injection harness uses it to kill a soak at a chosen event
// and later Resume it.
var ErrStopped = errors.New("fleet: soak stopped at checkpoint boundary")

// ErrConfigMismatch is returned by Resume when the checkpoint was
// written by a soak with a different configuration — resuming it
// would silently break determinism instead of continuing the run.
var ErrConfigMismatch = errors.New("fleet: checkpoint config does not match")

// CheckpointOptions configures periodic snapshotting of a soak.
type CheckpointOptions struct {
	// Path is the checkpoint file; the writer keeps the previous good
	// snapshot beside it (Path + ".prev") for torn-write fallback.
	// Empty disables checkpointing.
	Path string
	// EveryEvents is the checkpoint cadence in event boundaries
	// (default 1024).
	EveryEvents uint64
	// StopAfterEvents, when positive, halts the soak with ErrStopped
	// once that many event boundaries have been processed, writing a
	// final checkpoint first if Path is set. It exists for the
	// crash-injection harness.
	StopAfterEvents uint64
}

func (o CheckpointOptions) withDefaults() CheckpointOptions {
	if o.EveryEvents == 0 {
		o.EveryEvents = 1024
	}
	return o
}

// RunCheckpointed executes the soak like Run, additionally writing a
// checkpoint every opts.EveryEvents event boundaries. The write is
// atomic (temp file, fsync, rename) and rotates the previous good
// snapshot aside, so a crash mid-write can always fall back.
func RunCheckpointed(cfg Config, opts CheckpointOptions) (*Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s, faults, err := buildSoak(cfg)
	if err != nil {
		return nil, err
	}
	s.place()
	return s.run(faults, opts)
}

// Resume continues a soak from the checkpoint at opts.Path, written
// by an earlier RunCheckpointed with the same Config. A corrupted or
// torn primary snapshot falls back to the previous good one; because
// the soak is deterministic, resuming from an older boundary replays
// to the identical Outcome. Checkpointing continues under the same
// options.
func Resume(cfg Config, opts CheckpointOptions) (*Outcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.Path == "" {
		return nil, errors.New("fleet: resume needs a checkpoint path")
	}
	version, payload, _, err := snapshot.Load(opts.Path)
	if err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("%w: checkpoint format v%d, this build reads v%d",
			snapshot.ErrCorruptSnapshot, version, checkpointVersion)
	}
	s, faults, err := buildSoak(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.restoreState(snapshot.NewDecoder(payload), len(faults)); err != nil {
		return nil, err
	}
	return s.run(faults, opts)
}

// maybeCheckpoint writes a snapshot when the current event boundary
// is on the cadence, or when the soak is about to stop there.
func (s *soak) maybeCheckpoint(opts CheckpointOptions) error {
	if opts.Path == "" {
		return nil
	}
	due := s.events%opts.EveryEvents == 0
	stopping := opts.StopAfterEvents > 0 && s.events >= opts.StopAfterEvents
	if !due && !stopping {
		return nil
	}
	return snapshot.Write(opts.Path, checkpointVersion, s.encodeState())
}

// configDigest encodes every Config field that shapes the event
// stream. Resume compares digests byte-for-byte: a checkpoint is only
// continuable under the exact configuration that produced it.
func (s *soak) configDigest() []byte {
	var e snapshot.Encoder
	c := s.cfg
	e.U64(c.Seed)
	e.Int(c.Wafers)
	e.Int(c.Wafer.Rows)
	e.Int(c.Wafer.Cols)
	snapshot.Unit(&e, c.Horizon)
	snapshot.Unit(&e, c.SampleEvery)
	for _, m := range c.Rates.MTBF {
		snapshot.Unit(&e, m)
	}
	for _, m := range c.MeanRepair {
		snapshot.Unit(&e, m)
	}
	e.Int(c.Crews)
	e.Int(c.Spares)
	e.Int(c.Jobs)
	e.Int(c.Width)
	e.Int(int(c.Audit))
	e.Int(int(c.SampleMode))
	e.Int(c.ReservoirCap)
	return e.Bytes()
}

// encodeState serializes the full soak state at an event boundary.
func (s *soak) encodeState() []byte {
	var e snapshot.Encoder
	e.String(string(s.configDigest()))
	e.U64(s.events)
	e.Int(s.fi)
	snapshot.Unit(&e, s.nextSample)
	for _, w := range s.mttr.State() {
		e.U64(w)
	}
	s.alloc.EncodeState(&e)
	s.aud.EncodeState(&e)

	e.Len(len(s.jobs))
	for _, j := range s.jobs {
		e.Int(j.a)
		e.Int(j.b)
		e.Int(j.want)
		e.Int(int(j.state))
		cid := -1
		if j.circuit != nil {
			cid = j.circuit.ID
		}
		e.Int(cid)
	}
	e.Len(len(s.spares))
	for _, chip := range s.spares {
		e.Int(chip)
	}
	e.Len(len(s.pending))
	for _, f := range s.pending {
		encodeFault(&e, f)
	}
	e.Int(s.busy)
	// The repair heap travels in its array layout, so the restored
	// heap pops in exactly the original order.
	e.Len(len(s.repairs))
	for _, ev := range s.repairs {
		snapshot.Unit(&e, ev.at)
		e.Int(ev.seq)
		encodeFault(&e, ev.fault)
	}
	e.Int(s.seq)

	e.Int(s.out.Faults)
	e.Int(s.out.Repairs)
	e.Int(s.out.ShedEvents)
	e.Int(s.out.Readmissions)
	e.Int(s.out.Reroutes)
	e.Int(s.out.Splices)
	e.Int(s.out.MinSpares)
	e.Int(s.out.SamplesSeen)
	e.Int(s.blastSum)
	e.F64(s.liveSum)
	e.F64(s.goodSum)
	e.Len(len(s.out.Samples))
	for _, row := range s.out.Samples {
		encodeSample(&e, row)
	}
	s.res.EncodeState(&e, encodeSample)
	s.quant.EncodeState(&e)
	return e.Bytes()
}

// restoreState replays a checkpoint payload into a freshly built soak
// skeleton. numFaults bounds the schedule cursor.
func (s *soak) restoreState(d *snapshot.Decoder, numFaults int) error {
	if digest := d.String(); d.Err() == nil && digest != string(s.configDigest()) {
		return ErrConfigMismatch
	}
	s.events = d.U64()
	s.fi = d.Int()
	s.nextSample = snapshot.DecodeUnit[unit.Seconds](d)
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	s.mttr.SetState(st)
	if err := s.alloc.RestoreState(d); err != nil {
		return err
	}
	if err := s.aud.RestoreState(d); err != nil {
		return err
	}
	if d.Err() == nil && (s.fi < 0 || s.fi > numFaults) {
		return fmt.Errorf("%w: fault cursor %d outside schedule of %d",
			snapshot.ErrCorruptSnapshot, s.fi, numFaults)
	}

	if n := d.Len(); d.Err() == nil && n != s.cfg.Jobs {
		return fmt.Errorf("%w: checkpoint has %d jobs, config says %d",
			snapshot.ErrCorruptSnapshot, n, s.cfg.Jobs)
	}
	for i := 0; i < s.cfg.Jobs && d.Err() == nil; i++ {
		j := &job{a: d.Int(), b: d.Int(), want: d.Int()}
		st := d.Int()
		if st < int(jobUp) || st > int(jobShed) {
			return fmt.Errorf("%w: job %d in unknown state %d", snapshot.ErrCorruptSnapshot, i, st)
		}
		j.state = jobState(st)
		if cid := d.Int(); cid >= 0 {
			c, ok := s.alloc.CircuitByID(cid)
			if !ok {
				return fmt.Errorf("%w: job %d references unknown circuit %d",
					snapshot.ErrCorruptSnapshot, i, cid)
			}
			if _, dup := s.jobOf[cid]; dup {
				return fmt.Errorf("%w: circuit %d owned by two jobs", snapshot.ErrCorruptSnapshot, cid)
			}
			// Re-link to the allocator's own object: Release compares
			// pointers, so a decoded copy would leak the circuit.
			j.circuit = c
			s.jobOf[cid] = j
		}
		s.jobs = append(s.jobs, j)
	}
	n := d.Len()
	for i := 0; i < n; i++ {
		s.spares = append(s.spares, d.Int())
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		s.pending = append(s.pending, decodeFault(d))
	}
	s.busy = d.Int()
	n = d.Len()
	for i := 0; i < n; i++ {
		s.repairs = append(s.repairs, repairEvent{
			at:    snapshot.DecodeUnit[unit.Seconds](d),
			seq:   d.Int(),
			fault: decodeFault(d),
		})
	}
	if d.Err() == nil && s.busy != len(s.repairs) {
		return fmt.Errorf("%w: %d busy crews but %d in-flight repairs",
			snapshot.ErrCorruptSnapshot, s.busy, len(s.repairs))
	}
	s.seq = d.Int()

	s.out.Faults = d.Int()
	s.out.Repairs = d.Int()
	s.out.ShedEvents = d.Int()
	s.out.Readmissions = d.Int()
	s.out.Reroutes = d.Int()
	s.out.Splices = d.Int()
	s.out.MinSpares = d.Int()
	s.out.SamplesSeen = d.Int()
	s.blastSum = d.Int()
	s.liveSum = d.F64()
	s.goodSum = d.F64()
	n = d.Len()
	for i := 0; i < n; i++ {
		s.out.Samples = append(s.out.Samples, decodeSample(d))
	}
	if err := s.res.RestoreState(d, decodeSample); err != nil {
		return err
	}
	if err := s.quant.RestoreState(d); err != nil {
		return err
	}
	return d.Finish()
}

func encodeFault(e *snapshot.Encoder, f chaos.Fault) {
	snapshot.Unit(e, f.Time)
	e.Int(int(f.Class))
	e.Int(f.Chip)
	e.Int(f.Switch)
	e.Int(f.Wafer)
	e.Bool(f.Horizontal)
	e.Int(f.Lane)
	e.Int(f.Pos)
	e.F64(f.ExtraLossDB)
	e.Int(f.Trunk)
	e.Int(f.Row)
}

func decodeFault(d *snapshot.Decoder) chaos.Fault {
	return chaos.Fault{
		Time:        snapshot.DecodeUnit[unit.Seconds](d),
		Class:       chaos.Class(d.Int()),
		Chip:        d.Int(),
		Switch:      d.Int(),
		Wafer:       d.Int(),
		Horizontal:  d.Bool(),
		Lane:        d.Int(),
		Pos:         d.Int(),
		ExtraLossDB: d.F64(),
		Trunk:       d.Int(),
		Row:         d.Int(),
	}
}

func encodeSample(e *snapshot.Encoder, row Sample) {
	snapshot.Unit(e, row.T)
	e.Int(row.Up)
	e.Int(row.Degraded)
	e.Int(row.Shed)
	e.F64(row.Goodput)
	e.Int(row.Faults)
	e.Int(row.Repairs)
	e.F64(row.MeanBlast)
	e.Int(row.Spares)
	e.Int(row.Violations)
}

func decodeSample(d *snapshot.Decoder) Sample {
	return Sample{
		T:          snapshot.DecodeUnit[unit.Seconds](d),
		Up:         d.Int(),
		Degraded:   d.Int(),
		Shed:       d.Int(),
		Goodput:    d.F64(),
		Faults:     d.Int(),
		Repairs:    d.Int(),
		MeanBlast:  d.F64(),
		Spares:     d.Int(),
		Violations: d.Int(),
	}
}
