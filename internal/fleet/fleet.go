// Package fleet is a deterministic discrete-event soak simulator for
// the photonic rack: days of simulated time in which Poisson hardware
// faults arrive from the chaos engine, a self-healing control loop
// reroutes, degrades and splices tenant circuits around the damage,
// repair crews restore components after seeded MTTR delays, a spare
// chip pool depletes and replenishes, and admission control sheds and
// re-admits tenant jobs as capacity moves. The paper's availability
// argument (§5, Figure 6) rests on exactly this regime — compounding
// faults over long horizons, not single-fault trials — and the
// invariant auditor rides along for the whole soak, re-checking the
// shared optical state after every mutation.
//
// A soak is a pure function of its Config: the fault schedule, repair
// durations and job placement all derive from split streams of the
// seed, and every tie in the event queue is broken deterministically,
// so equal-seed runs produce byte-identical time series regardless of
// how a campaign fans trials across CPUs.
package fleet

import (
	"container/heap"
	"fmt"
	"sort"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/sketch"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// SampleMode selects how a soak retains its availability time series.
type SampleMode int

const (
	// SampleStreaming, the default, holds a fixed-capacity reservoir
	// of rows plus a streaming quantile sketch of the goodput column:
	// memory stays flat no matter how long the horizon. Soaks shorter
	// than ReservoirCap rows are still retained exactly, so the
	// default differs from SampleExact only at long horizons.
	SampleStreaming SampleMode = iota
	// SampleExact appends every row — O(Horizon/SampleEvery) memory —
	// for golden time series that must reproduce byte-identically.
	SampleExact
)

// Config parameterizes one soak. The zero value of every field takes
// the default documented on it; Run never mutates the caller's copy.
type Config struct {
	// Seed drives the fault schedule, repair durations and job
	// placement through independent split streams.
	Seed uint64
	// Wafers is the rack size (default 2, the TPUv4 rack of PR 2's
	// experiments).
	Wafers int
	// Wafer is the per-wafer hardware configuration (default
	// wafer.DefaultConfig).
	Wafer wafer.Config
	// Horizon is the simulated soak duration (default 3 days).
	Horizon unit.Seconds
	// SampleEvery is the availability time-series cadence (default
	// Horizon/72, one row per simulated hour at the default horizon).
	SampleEvery unit.Seconds
	// Rates are the chaos engine's per-class MTBFs; a zero value takes
	// DefaultRates.
	Rates chaos.Rates
	// MeanRepair is the per-class mean time to repair; zero entries
	// take DefaultMeanRepair.
	MeanRepair [chaos.NumClasses]unit.Seconds
	// Crews bounds concurrent repairs; excess faults queue for service
	// in arrival order (default 2).
	Crews int
	// Spares is the number of chips held out of tenant placement as a
	// replacement pool, taken from the top of the chip range
	// (default 4).
	Spares int
	// Jobs is the number of tenant jobs, each wanting one circuit
	// between two dedicated chips (default 12).
	Jobs int
	// Width is the wavelength width each job requests (default 4).
	Width int
	// Audit selects the invariant auditor's mode for the soak
	// (default Off; the campaign runs Paranoid).
	Audit invariant.Mode
	// SampleMode selects streaming (bounded-memory, the default) or
	// exact retention of the availability time series.
	SampleMode SampleMode
	// ReservoirCap bounds the rows retained in streaming mode
	// (default 512).
	ReservoirCap int
}

// DefaultRates returns the soak's fault-arrival defaults: every class
// active, with rack-wide MTBFs dense enough that a three-day soak
// sees a few hundred faults.
func DefaultRates(horizon unit.Seconds) chaos.Rates {
	var r chaos.Rates
	for c := 0; c < chaos.NumClasses; c++ {
		r.MTBF[c] = horizon / 30
	}
	return r
}

// DefaultMeanRepair returns the per-class MTTR means: hours-scale
// crew work, with whole-chip replacement the slowest.
func DefaultMeanRepair() [chaos.NumClasses]unit.Seconds {
	var m [chaos.NumClasses]unit.Seconds
	for c := 0; c < chaos.NumClasses; c++ {
		m[c] = 30 * unit.Minute
	}
	m[chaos.ChipFailure] = 2 * unit.Hour
	return m
}

func (c Config) withDefaults() Config {
	if c.Wafers == 0 {
		c.Wafers = 2
	}
	if c.Wafer.Rows == 0 {
		c.Wafer = wafer.DefaultConfig()
	}
	if c.Horizon == 0 {
		c.Horizon = 3 * unit.Day
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.Horizon / 72
	}
	zeroRates := true
	for _, m := range c.Rates.MTBF {
		if m != 0 {
			zeroRates = false
		}
	}
	if zeroRates {
		c.Rates = DefaultRates(c.Horizon)
	}
	def := DefaultMeanRepair()
	for i, m := range c.MeanRepair {
		if m == 0 {
			c.MeanRepair[i] = def[i]
		}
	}
	if c.Crews == 0 {
		c.Crews = 2
	}
	if c.Spares == 0 {
		c.Spares = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 12
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.ReservoirCap == 0 {
		c.ReservoirCap = 512
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Wafers < 2:
		return fmt.Errorf("fleet: need at least two wafers, got %d", c.Wafers)
	case c.Horizon <= 0 || c.SampleEvery <= 0:
		return fmt.Errorf("fleet: non-positive horizon or sample cadence")
	case c.Crews < 1:
		return fmt.Errorf("fleet: need at least one repair crew")
	case c.Spares < 0:
		return fmt.Errorf("fleet: negative spare pool")
	case c.Jobs < 1 || c.Width < 1:
		return fmt.Errorf("fleet: need at least one job of width >= 1")
	case c.SampleMode != SampleStreaming && c.SampleMode != SampleExact:
		return fmt.Errorf("fleet: unknown sample mode %d", int(c.SampleMode))
	case c.ReservoirCap < 1:
		return fmt.Errorf("fleet: reservoir capacity %d < 1", c.ReservoirCap)
	}
	chips := c.Wafers * c.Wafer.Tiles()
	if 2*c.Jobs+c.Spares > chips {
		return fmt.Errorf("fleet: %d jobs + %d spares need %d chips, rack has %d",
			c.Jobs, c.Spares, 2*c.Jobs+c.Spares, chips)
	}
	return nil
}

// Sample is one row of the availability time series.
type Sample struct {
	// T is the simulated sample time.
	T unit.Seconds
	// Up, Degraded and Shed partition the tenant jobs: full-width
	// circuit, narrower-than-requested circuit, or no circuit at all.
	Up, Degraded, Shed int
	// Goodput is the fleet's delivered fraction of requested
	// bandwidth: the sum of live circuit widths over the sum of
	// requested widths.
	Goodput float64
	// Faults and Repairs are cumulative counts at the sample time.
	Faults, Repairs int
	// MeanBlast is the mean number of circuits torn down per fault so
	// far — the dynamic blast radius.
	MeanBlast float64
	// Spares is the current replacement-chip pool size.
	Spares int
	// Violations is the auditor's cumulative violation count.
	Violations int
}

// Outcome aggregates one soak.
type Outcome struct {
	// Samples is the availability time series. In SampleExact mode it
	// holds one row per SampleEvery; in SampleStreaming mode it holds
	// a uniform reservoir of at most ReservoirCap rows, sorted by
	// time. SamplesSeen always counts the full series.
	Samples []Sample
	// SamplesSeen is the number of time-series rows the soak
	// produced, whether or not they were all retained.
	SamplesSeen int
	// Events counts the processed event boundaries — repairs, faults
	// and samples — over the whole soak; checkpoints land on these
	// boundaries.
	Events uint64
	// Faults and Repairs are the totals over the horizon.
	Faults, Repairs int
	// ShedEvents counts every time admission control dropped a job;
	// Readmissions counts jobs brought back after repairs.
	ShedEvents, Readmissions int
	// Reroutes counts circuits re-established after a fault tore them
	// down; Splices counts reroutes that needed a spare chip swapped
	// in for a dead endpoint.
	Reroutes, Splices int
	// MinSpares is the spare pool's low-water mark.
	MinSpares int
	// Availability is the mean over samples of the live-job fraction
	// (up or degraded); MeanGoodput averages the goodput column.
	Availability, MeanGoodput float64
	// GoodputP05 and GoodputP50 are streaming quantile estimates of
	// the goodput column — the tail and the median of delivered
	// bandwidth — computed in both sample modes from the same sketch.
	GoodputP05, GoodputP50 float64
	// Violations and Audits report the invariant auditor's findings
	// and effort over the whole soak.
	Violations, Audits int
}

// jobState tracks one tenant job through the soak.
type jobState int

const (
	jobUp jobState = iota
	jobDegraded
	jobShed
)

type job struct {
	a, b    int
	want    int
	circuit *route.Circuit
	state   jobState
}

// repairEvent is one crew finishing work on a fault.
type repairEvent struct {
	at    unit.Seconds
	seq   int
	fault chaos.Fault
}

// repairQueue is a min-heap on (completion time, service order).
type repairQueue []repairEvent

func (q repairQueue) Len() int { return len(q) }
func (q repairQueue) Less(i, j int) bool {
	if q[i].at < q[j].at {
		return true
	}
	if q[j].at < q[i].at {
		return false
	}
	return q[i].seq < q[j].seq
}
func (q repairQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *repairQueue) Push(x any)   { *q = append(*q, x.(repairEvent)) }
func (q *repairQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// soak is the running state of one Run.
type soak struct {
	cfg   Config
	alloc *route.Allocator
	rack  *wafer.Rack
	aud   *invariant.Auditor
	mttr  *rng.Rand

	jobs    []*job
	jobOf   map[int]*job // established circuit ID -> owning job
	spares  []int        // ascending chip ids
	pending []chaos.Fault
	busy    int
	repairs repairQueue
	seq     int

	// Event-loop cursors, part of the checkpoint: the index into the
	// precomputed fault schedule, the next sample time, and the count
	// of processed event boundaries.
	fi         int
	nextSample unit.Seconds
	events     uint64

	// Streaming aggregates: running sums for the headline means
	// (accumulated at sample time in chronological order, so both
	// sample modes produce bit-identical results), a bounded
	// reservoir of rows, and a quantile sketch of the goodput column.
	liveSum float64
	goodSum float64
	res     *sketch.Reservoir[Sample]
	quant   *sketch.Quantile

	out      Outcome
	blastSum int
}

// buildSoak constructs the soak skeleton — hardware, allocator,
// auditor, RNG streams, sketches, fault schedule — without tenant
// placement, which is the part a resume replays from the checkpoint
// instead. cfg must already have defaults applied and be valid.
func buildSoak(cfg Config) (*soak, []chaos.Fault, error) {
	rack, err := wafer.NewRack(cfg.Wafer, cfg.Wafers)
	if err != nil {
		return nil, nil, err
	}
	root := rng.New(cfg.Seed)
	s := &soak{
		cfg:        cfg,
		rack:       rack,
		alloc:      route.NewAllocator(rack, root.Split("loss")),
		mttr:       root.Split("fleet/mttr"),
		jobOf:      make(map[int]*job),
		nextSample: cfg.SampleEvery,
		res:        sketch.NewReservoir[Sample](cfg.ReservoirCap, root.Split("fleet/reservoir")),
		quant:      sketch.NewQuantile(0, root.Split("fleet/sketch")),
	}
	s.aud = invariant.Attach(s.alloc, cfg.Audit)

	// The whole fault schedule is precomputed — arrivals are
	// independent of everything the soak does, so a resume recomputes
	// the schedule and only the cursor travels in the checkpoint.
	cfgW := rack.Config()
	eng, err := chaos.NewEngine(cfg.Seed, chaos.Components{
		Chips:           rack.NumChips(),
		SwitchesPerTile: wafer.SwitchesPerTile,
		Wafers:          rack.NumWafers(),
		Rows:            cfgW.Rows,
		Cols:            cfgW.Cols,
		Trunks:          rack.NumTrunks(),
	}, cfg.Rates)
	if err != nil {
		return nil, nil, err
	}
	return s, eng.Schedule(cfg.Horizon), nil
}

// place runs tenant placement: a seeded permutation of the non-spare
// chips pairs off into job endpoints; the top Spares chip ids start
// in the replacement pool.
func (s *soak) place() {
	chips := s.rack.NumChips()
	for chip := chips - s.cfg.Spares; chip < chips; chip++ {
		s.spares = append(s.spares, chip)
	}
	s.out.MinSpares = len(s.spares)
	perm := rng.New(s.cfg.Seed).Split("fleet/jobs").Perm(chips - s.cfg.Spares)
	for i := 0; i < s.cfg.Jobs; i++ {
		j := &job{a: perm[2*i], b: perm[2*i+1], want: s.cfg.Width}
		s.jobs = append(s.jobs, j)
		s.establish(j, 0)
	}
}

// Run executes the soak and returns its availability time series. The
// returned error is non-nil when the fault schedule cannot be applied
// or when the invariant auditor found violations (wrapping
// invariant.ErrViolated) — a clean soak on corrupted logic must not
// look like a clean soak on correct logic.
func Run(cfg Config) (*Outcome, error) {
	return RunCheckpointed(cfg, CheckpointOptions{})
}

// run drives the event loop to the horizon (or to an injected stop).
// It merges the three ordered event streams; ties are broken by kind
// — repairs land before faults, faults before samples — so the order
// is total and reproducible.
func (s *soak) run(faults []chaos.Fault, opts CheckpointOptions) (*Outcome, error) {
	for {
		const inf = unit.Seconds(1e18)
		ft, rt, st := inf, inf, inf
		if s.fi < len(faults) {
			ft = faults[s.fi].Time
		}
		// Repairs finishing after the horizon are outside the soak:
		// the clock stops at Horizon, backlog and all.
		if len(s.repairs) > 0 && s.repairs[0].at <= s.cfg.Horizon {
			rt = s.repairs[0].at
		}
		if s.nextSample <= s.cfg.Horizon {
			st = s.nextSample
		}
		switch {
		case rt == inf && ft == inf && st == inf:
			s.finish()
			return &s.out, s.aud.Err()
		case rt <= ft && rt <= st:
			ev := heap.Pop(&s.repairs).(repairEvent)
			s.completeRepair(ev)
		case ft <= st:
			if err := s.applyFault(faults[s.fi]); err != nil {
				return nil, err
			}
			s.fi++
		default:
			s.sample(s.nextSample)
			s.nextSample += s.cfg.SampleEvery
		}
		s.events++
		if err := s.maybeCheckpoint(opts); err != nil {
			return nil, err
		}
		if opts.StopAfterEvents > 0 && s.events >= opts.StopAfterEvents {
			return nil, ErrStopped
		}
	}
}

// establish brings a job's circuit up (initially or after repairs),
// degrading the width when the full request does not fit.
func (s *soak) establish(j *job, now unit.Seconds) bool {
	c, degraded, err := s.alloc.EstablishDegraded(route.Request{A: j.a, B: j.b, Width: j.want}, now)
	if err != nil {
		j.circuit = nil
		j.state = jobShed
		return false
	}
	j.circuit = c
	s.jobOf[c.ID] = j
	if degraded {
		j.state = jobDegraded
	} else {
		j.state = jobUp
	}
	return true
}

// applyFault routes one fault through the hardware and runs the
// self-healing loop over every circuit it tore down.
func (s *soak) applyFault(f chaos.Fault) error {
	broken, err := s.alloc.ApplyFault(f)
	if err != nil {
		return fmt.Errorf("fleet: %v: %w", f, err)
	}
	s.out.Faults++
	s.blastSum += len(broken)
	if f.Class == chaos.ChipFailure {
		// A dead spare leaves the pool until its repair completes.
		for i, chip := range s.spares {
			if chip == f.Chip {
				s.spares = append(s.spares[:i], s.spares[i+1:]...)
				break
			}
		}
	}
	s.scheduleRepair(f)
	for _, c := range broken {
		j, ok := s.jobOf[c.ID]
		if !ok {
			continue
		}
		delete(s.jobOf, c.ID)
		s.heal(j, f.Time)
	}
	return nil
}

// heal is the self-healing control loop for one job whose circuit a
// fault tore down: splice a spare chip over any dead endpoint, then
// reroute at full width, degrading toward width 1; when nothing fits,
// admission control sheds the job until repairs free capacity.
func (s *soak) heal(j *job, now unit.Seconds) {
	j.circuit = nil
	spliced := false
	for _, ep := range []*int{&j.a, &j.b} {
		if s.rack.TileOf(*ep).ChipHealthy() {
			continue
		}
		spare, ok := s.takeSpare()
		if !ok {
			j.state = jobShed
			s.out.ShedEvents++
			return
		}
		*ep = spare
		spliced = true
	}
	if !s.establish(j, now) {
		s.out.ShedEvents++
		return
	}
	s.out.Reroutes++
	if spliced {
		s.out.Splices++
	}
}

// takeSpare pops the lowest-id healthy spare chip.
func (s *soak) takeSpare() (int, bool) {
	for i, chip := range s.spares {
		if s.rack.TileOf(chip).ChipHealthy() {
			s.spares = append(s.spares[:i], s.spares[i+1:]...)
			if len(s.spares) < s.out.MinSpares {
				s.out.MinSpares = len(s.spares)
			}
			return chip, true
		}
	}
	return 0, false
}

// scheduleRepair queues the fault for a crew; a free crew starts
// immediately, otherwise the fault waits in arrival order.
func (s *soak) scheduleRepair(f chaos.Fault) {
	s.pending = append(s.pending, f)
	s.dispatch(f.Time)
}

// dispatch hands queued faults to free crews. Repair durations draw
// from the dedicated MTTR stream in service-start order, which the
// deterministic event order fixes.
func (s *soak) dispatch(now unit.Seconds) {
	for s.busy < s.cfg.Crews && len(s.pending) > 0 {
		f := s.pending[0]
		s.pending = s.pending[1:]
		s.busy++
		d := unit.Seconds(s.mttr.Exp(float64(s.cfg.MeanRepair[f.Class])))
		heap.Push(&s.repairs, repairEvent{at: now + d, seq: s.seq, fault: f})
		s.seq++
	}
}

// completeRepair restores the failed component, returns repaired
// chips to the spare pool, and lets admission control re-admit shed
// jobs and upgrade degraded ones against the recovered capacity.
func (s *soak) completeRepair(ev repairEvent) {
	f := ev.fault
	switch f.Class {
	case chaos.LaserDeath:
		s.rack.TileOf(f.Chip).RepairLasers(1)
	case chaos.MZIStuck:
		_ = s.rack.TileOf(f.Chip).RepairSwitch(f.Switch)
	case chaos.WaveguideLoss:
		o := wafer.Vertical
		if f.Horizontal {
			o = wafer.Horizontal
		}
		_ = s.rack.Wafer(f.Wafer).RepairSegment(o, f.Lane, f.Pos)
	case chaos.FiberCut:
		s.alloc.RestoreFiberRow(f.Trunk, f.Row)
	case chaos.ChipFailure:
		s.rack.TileOf(f.Chip).RepairChip()
		if !s.chipInUse(f.Chip) {
			s.returnSpare(f.Chip)
		}
	}
	s.out.Repairs++
	s.busy--
	// Hardware repairs bypass the allocator, so tell the auditor
	// directly; fiber-row restoration already fired the hook.
	if f.Class != chaos.FiberCut {
		s.aud.Mutated("repair")
	}
	s.dispatch(ev.at)
	s.recover(ev.at)
}

// chipInUse reports whether a chip is an endpoint of any job or
// already pooled as a spare.
func (s *soak) chipInUse(chip int) bool {
	for _, j := range s.jobs {
		if j.a == chip || j.b == chip {
			return true
		}
	}
	for _, c := range s.spares {
		if c == chip {
			return true
		}
	}
	return false
}

// returnSpare inserts a repaired chip back into the pool, keeping it
// sorted so takeSpare stays deterministic.
func (s *soak) returnSpare(chip int) {
	at := len(s.spares)
	for i, c := range s.spares {
		if c > chip {
			at = i
			break
		}
	}
	s.spares = append(s.spares, 0)
	copy(s.spares[at+1:], s.spares[at:])
	s.spares[at] = chip
}

// recover is admission control's reaction to restored capacity: shed
// jobs are re-admitted and degraded jobs retry their full width, in
// job order.
func (s *soak) recover(now unit.Seconds) {
	for _, j := range s.jobs {
		switch j.state {
		case jobShed:
			if s.rack.TileOf(j.a).ChipHealthy() && s.rack.TileOf(j.b).ChipHealthy() && s.establish(j, now) {
				s.out.Readmissions++
			}
		case jobDegraded:
			// Upgrade by teardown-and-retry: the released resources are
			// back in the pool, so the retry finds at least the old
			// degraded path unless a new fault landed on it meanwhile.
			old := j.circuit
			s.alloc.Release(old)
			delete(s.jobOf, old.ID)
			if !s.establish(j, now) {
				s.out.ShedEvents++
			}
		}
	}
}

// sample appends one time-series row.
func (s *soak) sample(t unit.Seconds) {
	row := Sample{
		T:          t,
		Faults:     s.out.Faults,
		Repairs:    s.out.Repairs,
		Spares:     len(s.spares),
		Violations: s.aud.Count(),
	}
	wantSum, haveSum := 0, 0
	for _, j := range s.jobs {
		wantSum += j.want
		switch j.state {
		case jobUp:
			row.Up++
			haveSum += j.circuit.Width
		case jobDegraded:
			row.Degraded++
			haveSum += j.circuit.Width
		case jobShed:
			row.Shed++
		}
	}
	if wantSum > 0 {
		row.Goodput = float64(haveSum) / float64(wantSum)
	}
	if s.out.Faults > 0 {
		row.MeanBlast = float64(s.blastSum) / float64(s.out.Faults)
	}
	// The headline means accumulate here, in chronological order, so
	// both sample modes run the identical float additions and agree
	// bit for bit; the sketch sees every row in both modes too.
	s.liveSum += float64(row.Up+row.Degraded) / float64(len(s.jobs))
	s.goodSum += row.Goodput
	s.quant.Add(row.Goodput)
	s.out.SamplesSeen++
	if s.cfg.SampleMode == SampleExact {
		s.out.Samples = append(s.out.Samples, row)
	} else {
		s.res.Add(row)
	}
}

// finish folds the time series into the headline aggregates.
func (s *soak) finish() {
	s.out.Violations = s.aud.Count()
	s.out.Audits = s.aud.Audits()
	s.out.Events = s.events
	if s.cfg.SampleMode != SampleExact {
		s.out.Samples = s.res.Items()
		// Reservoir eviction scrambles slot order; sample times are
		// unique, so sorting restores the chronological series.
		sort.Slice(s.out.Samples, func(i, j int) bool {
			return s.out.Samples[i].T < s.out.Samples[j].T
		})
	}
	if s.out.SamplesSeen == 0 {
		return
	}
	n := float64(s.out.SamplesSeen)
	s.out.Availability = s.liveSum / n
	s.out.MeanGoodput = s.goodSum / n
	s.out.GoodputP05 = s.quant.Query(0.05)
	s.out.GoodputP50 = s.quant.Query(0.50)
}
