package fleet

import (
	"testing"

	"lightpath/internal/unit"
)

// BenchmarkSoakYearStreaming soaks a 100-wafer fleet for a simulated
// year at a ten-minute sample cadence — ~53k time-series rows — in
// the default streaming mode, where the reservoir and quantile sketch
// hold memory flat regardless of horizon. `make bench` runs this with
// -benchmem, so BENCH.json tracks bytes/op: a regression back toward
// O(horizon) sample retention shows up as a step change there, and
// the availability paper metric pins determinism.
func BenchmarkSoakYearStreaming(b *testing.B) {
	cfg := Config{
		Seed:        31,
		Wafers:      100,
		Horizon:     365 * unit.Day,
		SampleEvery: 10 * unit.Minute,
		Jobs:        100,
	}
	for c := range cfg.Rates.MTBF {
		cfg.Rates.MTBF[c] = cfg.Horizon / 600
	}
	run := func() *Outcome {
		out, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return out
	}
	out := run() // warm the page cache and heap before the measured pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = run()
	}
	if out.SamplesSeen != 365*24*6 {
		b.Fatalf("year soak produced %d samples, want %d", out.SamplesSeen, 365*24*6)
	}
	if len(out.Samples) != cfg.withDefaults().ReservoirCap {
		b.Fatalf("streaming soak retained %d rows, want the bounded reservoir", len(out.Samples))
	}
	b.ReportMetric(out.Availability, "year_availability")
}
