package fleet

import (
	"reflect"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// TestSoakDeterministic runs the same config twice and demands
// identical outcomes down to every time-series row — the property the
// campaign's byte-identical CSV guarantee rests on.
func TestSoakDeterministic(t *testing.T) {
	cfg := Config{Seed: 2024, Audit: invariant.Paranoid}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different outcomes:\n%+v\n%+v", a, b)
	}
	if a.Audits == 0 {
		t.Fatal("paranoid soak ran zero audits")
	}
}

// TestSoakSeedsDiffer guards against the degenerate determinism of a
// simulator that ignores its seed.
func TestSoakSeedsDiffer(t *testing.T) {
	a, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("different seeds produced identical time series")
	}
}

// TestSoakThousandFaultsAuditClean is the acceptance soak: over a
// thousand faults with the Paranoid auditor re-checking every
// registered invariant after every mutation, and not one violation.
// The self-healing loop must also have actually exercised itself —
// reroutes, splices, sheds and re-admissions all nonzero.
func TestSoakThousandFaultsAuditClean(t *testing.T) {
	cfg := Config{Seed: 7, Audit: invariant.Paranoid}
	cfg.Horizon = 3 * unit.Day
	for c := 0; c < chaos.NumClasses; c++ {
		cfg.Rates.MTBF[c] = cfg.Horizon / 250
	}
	out, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
	if out.Violations != 0 {
		t.Fatalf("auditor found %d violations", out.Violations)
	}
	if out.Faults < 1000 {
		t.Fatalf("soak saw only %d faults, want >= 1000", out.Faults)
	}
	if out.Repairs == 0 || out.Reroutes == 0 {
		t.Fatalf("healing loop idle: %d repairs, %d reroutes", out.Repairs, out.Reroutes)
	}
	if out.ShedEvents == 0 || out.Readmissions == 0 {
		t.Fatalf("admission control idle: %d sheds, %d readmissions", out.ShedEvents, out.Readmissions)
	}
	if out.Splices == 0 {
		t.Fatal("no spare chip was ever spliced in despite chip failures")
	}
	if out.MinSpares >= out.Samples[0].Spares+1 {
		t.Fatalf("spare pool never depleted: min %d", out.MinSpares)
	}
	if out.Availability <= 0 || out.Availability > 1 {
		t.Fatalf("availability %v out of range", out.Availability)
	}
	if out.MeanGoodput <= 0 || out.MeanGoodput > 1 {
		t.Fatalf("goodput %v out of range", out.MeanGoodput)
	}
	t.Logf("faults=%d repairs=%d reroutes=%d splices=%d sheds=%d readmits=%d minSpares=%d avail=%.3f goodput=%.3f audits=%d",
		out.Faults, out.Repairs, out.Reroutes, out.Splices, out.ShedEvents,
		out.Readmissions, out.MinSpares, out.Availability, out.MeanGoodput, out.Audits)
}

// TestSoakSampleCadence pins the time-series shape: one row per
// SampleEvery up to the horizon, monotone time and cumulative
// counters.
func TestSoakSampleCadence(t *testing.T) {
	cfg := Config{Seed: 3, Horizon: unit.Day, SampleEvery: unit.Hour}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Samples) != 24 {
		t.Fatalf("got %d samples, want 24", len(out.Samples))
	}
	jobs := out.Samples[0].Up + out.Samples[0].Degraded + out.Samples[0].Shed
	for i, row := range out.Samples {
		if row.T != unit.Seconds(i+1)*unit.Hour {
			t.Fatalf("sample %d at %v", i, row.T)
		}
		if row.Up+row.Degraded+row.Shed != jobs {
			t.Fatalf("sample %d job states don't partition the %d jobs", i, jobs)
		}
		if i > 0 && (row.Faults < out.Samples[i-1].Faults || row.Repairs < out.Samples[i-1].Repairs) {
			t.Fatalf("sample %d counters ran backwards", i)
		}
	}
	last := out.Samples[len(out.Samples)-1]
	if last.Faults != out.Faults {
		t.Fatalf("final sample saw %d faults, outcome says %d", last.Faults, out.Faults)
	}
}

// TestSoakConfigValidation exercises the config guard rails.
func TestSoakConfigValidation(t *testing.T) {
	cases := []Config{
		{Wafers: 1},             // sub-rack
		{Jobs: 1000},            // more endpoints than chips
		{Horizon: -unit.Second}, // negative horizon
		{Crews: -1},             // negative crews (default skipped: nonzero)
		{Spares: -1},            // negative spares
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}
