package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// crashCfg is a small but busy soak: a short horizon with dense
// faults, so the sweep over kill points stays fast while still
// exercising reroutes, splices, sheds, repairs and sampling.
func crashCfg() Config {
	cfg := Config{Seed: 99, Horizon: 6 * unit.Hour, SampleEvery: 10 * unit.Minute}
	for c := 0; c < chaos.NumClasses; c++ {
		cfg.Rates.MTBF[c] = cfg.Horizon / 12
	}
	return cfg
}

// TestResumeByteIdenticalAtEveryBoundary is the crash-injection
// harness: kill the soak at every Nth event boundary, resume from the
// checkpoint, and demand an Outcome deep-equal — float bits and all —
// to the uninterrupted run.
func TestResumeByteIdenticalAtEveryBoundary(t *testing.T) {
	cfg := crashCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Events < 20 {
		t.Fatalf("only %d events; config too quiet to exercise kill points", want.Events)
	}
	dir := t.TempDir()
	const stride = 7 // sweep a co-prime stride so every event class gets hit
	for kill := uint64(1); kill <= want.Events; kill += stride {
		path := filepath.Join(dir, "ckpt")
		_, err := RunCheckpointed(cfg, CheckpointOptions{Path: path, StopAfterEvents: kill})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("kill at %d: err = %v, want ErrStopped", kill, err)
		}
		got, err := Resume(cfg, CheckpointOptions{Path: path})
		if err != nil {
			t.Fatalf("resume from event %d: %v", kill, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resume from event %d diverges:\ngot  %+v\nwant %+v", kill, got, want)
		}
		os.Remove(path)
		os.Remove(snapshot.PrevPath(path))
	}
}

// TestResumeFallsBackOnTornSnapshot simulates a crash mid-write: the
// primary checkpoint is torn (truncated / bit-flipped), and Resume
// must fall back to the previous good snapshot and still replay to
// the identical Outcome.
func TestResumeFallsBackOnTornSnapshot(t *testing.T) {
	cfg := crashCfg()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt")
	// Checkpoint every 5 events and stop mid-run, so both the primary
	// and the rotated .prev exist and differ.
	kill := want.Events / 2
	_, err = RunCheckpointed(cfg, CheckpointOptions{Path: path, EveryEvents: 5, StopAfterEvents: kill})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	prev, err := os.ReadFile(snapshot.PrevPath(path))
	if err != nil {
		t.Fatalf("no previous snapshot was rotated aside: %v", err)
	}
	if len(prev) == 0 {
		t.Fatal("previous snapshot is empty")
	}

	tear := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Resume(cfg, CheckpointOptions{Path: path})
		if err != nil {
			t.Fatalf("%s: resume did not fall back: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: fallback resume diverges", name)
		}
		// Restore the primary for the next tear.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tear("truncated", func(b []byte) []byte { return b[:len(b)/3] })
	tear("bit-flip", func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[len(c)/2] ^= 0x40
		return c
	})
	tear("empty", func(b []byte) []byte { return nil })

	// Both snapshots corrupt: resume must fail with the typed error,
	// never a panic or a silently wrong outcome.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshot.PrevPath(path), []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(cfg, CheckpointOptions{Path: path}); !errors.Is(err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("both-corrupt resume err = %v, want ErrCorruptSnapshot", err)
	}
}

// TestResumeRejectsConfigMismatch guards against continuing a
// checkpoint under a different configuration, which would silently
// break determinism.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	cfg := crashCfg()
	path := filepath.Join(t.TempDir(), "ckpt")
	if _, err := RunCheckpointed(cfg, CheckpointOptions{Path: path, StopAfterEvents: 10}); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	other := cfg
	other.Seed++
	if _, err := Resume(other, CheckpointOptions{Path: path}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("err = %v, want ErrConfigMismatch", err)
	}
}

// TestResumeMissingCheckpoint pins the error for a path that was
// never written: not-exists, not corruption.
func TestResumeMissingCheckpoint(t *testing.T) {
	cfg := crashCfg()
	_, err := Resume(cfg, CheckpointOptions{Path: filepath.Join(t.TempDir(), "nope")})
	if err == nil || errors.Is(err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want a missing-file error", err)
	}
	if _, err := Resume(cfg, CheckpointOptions{}); err == nil {
		t.Fatal("resume without a path must fail")
	}
}

// TestStreamingMatchesExactAggregates runs the same soak in both
// sample modes: the headline aggregates must agree to the bit, the
// streaming series must be a bounded subset, and short soaks must
// retain the exact series even in streaming mode.
func TestStreamingMatchesExactAggregates(t *testing.T) {
	cfg := crashCfg()
	cfg.SampleEvery = 10 * unit.Second
	cfg.ReservoirCap = 64

	exact := cfg
	exact.SampleMode = SampleExact
	eo, err := Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eo.Availability != so.Availability || eo.MeanGoodput != so.MeanGoodput {
		t.Fatalf("aggregates diverge across modes: %v/%v vs %v/%v",
			eo.Availability, eo.MeanGoodput, so.Availability, so.MeanGoodput)
	}
	if eo.GoodputP05 != so.GoodputP05 || eo.GoodputP50 != so.GoodputP50 {
		t.Fatalf("quantiles diverge across modes")
	}
	if eo.SamplesSeen != so.SamplesSeen || len(eo.Samples) != eo.SamplesSeen {
		t.Fatalf("exact mode dropped rows: %d retained of %d", len(eo.Samples), eo.SamplesSeen)
	}
	if len(so.Samples) != cfg.ReservoirCap {
		t.Fatalf("streaming mode holds %d rows, want the %d-row reservoir", len(so.Samples), cfg.ReservoirCap)
	}
	// Every retained streaming row is a verbatim exact row.
	byTime := make(map[unit.Seconds]Sample, len(eo.Samples))
	for _, row := range eo.Samples {
		byTime[row.T] = row
	}
	last := unit.Seconds(-1)
	for _, row := range so.Samples {
		if row.T <= last {
			t.Fatalf("streaming series not time-sorted at %v", row.T)
		}
		last = row.T
		if byTime[row.T] != row {
			t.Fatalf("streaming row at %v is not the exact row", row.T)
		}
	}

	// Short soaks: streaming retains everything, so the default mode
	// change cannot perturb existing consumers.
	short := Config{Seed: 5}
	a, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	shortExact := short
	shortExact.SampleMode = SampleExact
	b, err := Run(shortExact)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("short-soak streaming series differs from exact")
	}
}
