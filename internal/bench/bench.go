// Package bench parses `go test -bench` output into a structured
// report, encodes it as BENCH.json, and diffs the deterministic paper
// metrics of two reports. The regression gate (`make bench-smoke`)
// compares paper metrics only — a benchmark's ns/op depends on the
// machine, but its b.ReportMetric values are computed from seeded
// simulations and must match the committed baseline bit for bit.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so reports from machines with different core counts diff cleanly.
	Name string `json:"name"`
	// Iterations is the b.N the timing was measured over.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard Go
	// benchmark outputs (Bytes/Allocs require -benchmem).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PaperMetrics holds every custom b.ReportMetric unit: the
	// simulation quantities the paper cares about (MTTR, stranded
	// bandwidth, loss budget). These are seed-deterministic.
	PaperMetrics map[string]float64 `json:"paper_metrics,omitempty"`
	// TimingMetrics holds custom ReportMetric units beginning "ns/"
	// (e.g. the rail campaign's ns/flow): normalized wall-clock rates
	// that are machine-dependent like ns/op, so the bit-exact paper
	// gate never sees them and CompareTimings checks them under the
	// ns tolerance instead.
	TimingMetrics map[string]float64 `json:"timing_metrics,omitempty"`
}

// Report is the BENCH.json document: every benchmark of one pass.
type Report struct {
	Benchmarks []Entry `json:"benchmarks"`
}

// stripProcs removes the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Parse reads `go test -bench` text output and collects every
// benchmark result line. Non-benchmark lines (package headers, PASS,
// ok) are ignored, so the raw tool output pipes straight in.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: stripProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return rep, fmt.Errorf("bench: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "MB/s":
				// Throughput is machine-dependent like ns/op; drop it.
			default:
				if strings.HasPrefix(unit, "ns/") {
					// Custom per-item timings (ns/flow, ns/event) are
					// wall-clock rates: structured like a paper metric,
					// machine-dependent like ns/op.
					if e.TimingMetrics == nil {
						e.TimingMetrics = map[string]float64{}
					}
					e.TimingMetrics[unit] = v
					continue
				}
				if e.PaperMetrics == nil {
					e.PaperMetrics = map[string]float64{}
				}
				e.PaperMetrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("bench: %w", err)
	}
	return rep, nil
}

// WriteJSON encodes the report, sorted by benchmark name so the file
// is diff-stable regardless of package test order.
func (r Report) WriteJSON(w io.Writer) error {
	sorted := make([]Entry, len(r.Benchmarks))
	copy(sorted, r.Benchmarks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Benchmarks: sorted})
}

// ReadJSON decodes a report written by WriteJSON.
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: %w", err)
	}
	return rep, nil
}

// byName indexes a report's entries.
func (r Report) byName() map[string]Entry {
	m := make(map[string]Entry, len(r.Benchmarks))
	for _, e := range r.Benchmarks {
		m[e.Name] = e
	}
	return m
}

// CompareTimings diffs the machine-dependent numbers of current
// against baseline: a benchmark regresses when its ns/op exceeds
// baseline·nsTol or its allocs/op exceeds baseline·allocsTol. The
// tolerances are multipliers (1.30 = 30% headroom): timings need slack
// for machine noise, while allocation counts are deterministic and
// warrant a much tighter bound. Unlike the paper-metric gate this is
// advisory — CI runs it as a non-blocking report — because absolute
// timings are not comparable across machines; the committed baseline
// still catches order-of-magnitude slips and alloc-count creep.
// Benchmarks absent from the baseline are skipped (new benchmarks are
// not regressions); benchmarks missing from the current run are
// reported. An empty result means no regression.
func CompareTimings(baseline, current Report, nsTol, allocsTol float64) []string {
	var diffs []string
	cur := current.byName()
	for _, want := range baseline.Benchmarks {
		got, ok := cur[want.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: benchmark missing from current run", want.Name))
			continue
		}
		if want.NsPerOp > 0 && got.NsPerOp > want.NsPerOp*nsTol {
			diffs = append(diffs, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (tolerance %.2fx)",
				want.Name, got.NsPerOp, want.NsPerOp, nsTol))
		}
		if got.AllocsPerOp > want.AllocsPerOp*allocsTol {
			diffs = append(diffs, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f (tolerance %.2fx)",
				want.Name, got.AllocsPerOp, want.AllocsPerOp, allocsTol))
		}
		// Custom "ns/..." metrics are wall-clock rates: same tolerance
		// class as ns/op.
		names := make([]string, 0, len(want.TimingMetrics))
		for name := range want.TimingMetrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			wv := want.TimingMetrics[name]
			gv, ok := got.TimingMetrics[name]
			if !ok {
				diffs = append(diffs, fmt.Sprintf("%s: timing metric %q missing from current run", want.Name, name))
				continue
			}
			if wv > 0 && gv > wv*nsTol {
				diffs = append(diffs, fmt.Sprintf("%s: %s %.1f vs baseline %.1f (tolerance %.2fx)",
					want.Name, name, gv, wv, nsTol))
			}
		}
	}
	return diffs
}

// DiffPaperMetrics compares the paper metrics of current against
// baseline and returns one human-readable line per divergence. Only
// benchmarks and metrics present in the baseline are checked — adding
// a new benchmark is not a regression — and timings are never
// compared. An empty result means the gate passes.
func DiffPaperMetrics(baseline, current Report) []string {
	var diffs []string
	cur := current.byName()
	for _, want := range baseline.Benchmarks {
		got, ok := cur[want.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: benchmark missing from current run", want.Name))
			continue
		}
		names := make([]string, 0, len(want.PaperMetrics))
		for name := range want.PaperMetrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			wv := want.PaperMetrics[name]
			gv, ok := got.PaperMetrics[name]
			if !ok {
				diffs = append(diffs, fmt.Sprintf("%s: paper metric %q missing from current run", want.Name, name))
				continue
			}
			if gv != wv {
				diffs = append(diffs, fmt.Sprintf("%s: %s = %v, baseline %v", want.Name, name, gv, wv))
			}
		}
	}
	return diffs
}
