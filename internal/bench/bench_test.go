package bench

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lightpath/internal/experiments
BenchmarkTenantSweep-8   	      10	  123456 ns/op	    2345 B/op	      67 allocs/op	         0.420 stranded_frac
BenchmarkChaos-8         	       2	 9876543 ns/op	  887766 B/op	    5544 allocs/op	        16.00 blast_ratio
BenchmarkThroughput-8    	     100	    1000 ns/op	 512.00 MB/s
BenchmarkRailFabricPar-8 	       1	 2000000 ns/op	    4096 B/op	      12 allocs/op	       610.0 ns/flow	   1321000 rail_makespan_us
PASS
ok  	lightpath/internal/experiments	1.234s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	ts := rep.Benchmarks[0]
	if ts.Name != "BenchmarkTenantSweep" {
		t.Fatalf("name = %q (procs suffix not stripped?)", ts.Name)
	}
	if ts.Iterations != 10 || ts.NsPerOp != 123456 || ts.BytesPerOp != 2345 || ts.AllocsPerOp != 67 {
		t.Fatalf("standard fields wrong: %+v", ts)
	}
	if ts.PaperMetrics["stranded_frac"] != 0.420 {
		t.Fatalf("paper metric wrong: %+v", ts.PaperMetrics)
	}
	if rep.Benchmarks[1].PaperMetrics["blast_ratio"] != 16 {
		t.Fatalf("chaos metric wrong: %+v", rep.Benchmarks[1])
	}
	// MB/s is machine-dependent and must not land in paper metrics.
	if len(rep.Benchmarks[2].PaperMetrics) != 0 {
		t.Fatalf("MB/s leaked into paper metrics: %+v", rep.Benchmarks[2])
	}
	// Custom "ns/..." units are timing metrics, never paper metrics;
	// other units on the same line still land in paper metrics.
	rail := rep.Benchmarks[3]
	if rail.TimingMetrics["ns/flow"] != 610 {
		t.Fatalf("ns/flow not classified as timing metric: %+v", rail)
	}
	if _, leaked := rail.PaperMetrics["ns/flow"]; leaked {
		t.Fatalf("ns/flow leaked into paper metrics: %+v", rail.PaperMetrics)
	}
	if rail.PaperMetrics["rail_makespan_us"] != 1321000 {
		t.Fatalf("rail paper metric wrong: %+v", rail.PaperMetrics)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d vs %d", len(back.Benchmarks), len(rep.Benchmarks))
	}
	// WriteJSON sorts by name: BenchmarkChaos first.
	if back.Benchmarks[0].Name != "BenchmarkChaos" {
		t.Fatalf("not sorted: first = %q", back.Benchmarks[0].Name)
	}
	if back.Benchmarks[2].PaperMetrics["stranded_frac"] != 0.420 {
		t.Fatalf("metrics lost: %+v", back.Benchmarks[2])
	}
	if back.Benchmarks[1].TimingMetrics["ns/flow"] != 610 {
		t.Fatalf("timing metrics lost: %+v", back.Benchmarks[1])
	}
}

func TestDiffPaperMetrics(t *testing.T) {
	base, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("identical", func(t *testing.T) {
		if diffs := DiffPaperMetrics(base, base); len(diffs) != 0 {
			t.Fatalf("self-diff not empty: %v", diffs)
		}
	})
	t.Run("timings-ignored", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "123456 ns/op", "999999 ns/op")))
		if diffs := DiffPaperMetrics(base, cur); len(diffs) != 0 {
			t.Fatalf("timing change flagged: %v", diffs)
		}
	})
	t.Run("metric-drift", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "0.420 stranded_frac", "0.500 stranded_frac")))
		diffs := DiffPaperMetrics(base, cur)
		if len(diffs) != 1 || !strings.Contains(diffs[0], "stranded_frac") {
			t.Fatalf("drift not caught: %v", diffs)
		}
	})
	t.Run("missing-benchmark", func(t *testing.T) {
		cur := Report{}
		diffs := DiffPaperMetrics(base, cur)
		if len(diffs) != 4 {
			t.Fatalf("want 4 missing-benchmark diffs, got %v", diffs)
		}
	})
	t.Run("timing-metric-ignored", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "610.0 ns/flow", "9999.0 ns/flow")))
		if diffs := DiffPaperMetrics(base, cur); len(diffs) != 0 {
			t.Fatalf("ns/flow drift flagged by the bit-exact gate: %v", diffs)
		}
	})
	t.Run("new-benchmark-ok", func(t *testing.T) {
		cur := Report{Benchmarks: append([]Entry{{Name: "BenchmarkNew"}}, base.Benchmarks...)}
		if diffs := DiffPaperMetrics(base, cur); len(diffs) != 0 {
			t.Fatalf("new benchmark flagged: %v", diffs)
		}
	})
}

func TestCompareTimings(t *testing.T) {
	base, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("identical", func(t *testing.T) {
		if diffs := CompareTimings(base, base, 1.5, 1.1); len(diffs) != 0 {
			t.Fatalf("self-compare not empty: %v", diffs)
		}
	})
	t.Run("within-tolerance", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "123456 ns/op", "170000 ns/op")))
		if diffs := CompareTimings(base, cur, 1.5, 1.1); len(diffs) != 0 {
			t.Fatalf("in-tolerance slowdown flagged: %v", diffs)
		}
	})
	t.Run("ns-regression", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "123456 ns/op", "999999 ns/op")))
		diffs := CompareTimings(base, cur, 1.5, 1.1)
		if len(diffs) != 1 || !strings.Contains(diffs[0], "ns/op") {
			t.Fatalf("ns/op regression not caught: %v", diffs)
		}
	})
	t.Run("allocs-regression", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "67 allocs/op", "9999 allocs/op")))
		diffs := CompareTimings(base, cur, 1.5, 1.1)
		if len(diffs) != 1 || !strings.Contains(diffs[0], "allocs/op") {
			t.Fatalf("allocs/op regression not caught: %v", diffs)
		}
	})
	t.Run("improvement-ok", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "123456 ns/op", "99 ns/op")))
		if diffs := CompareTimings(base, cur, 1.5, 1.1); len(diffs) != 0 {
			t.Fatalf("speedup flagged as regression: %v", diffs)
		}
	})
	t.Run("missing-benchmark", func(t *testing.T) {
		diffs := CompareTimings(base, Report{}, 1.5, 1.1)
		if len(diffs) != len(base.Benchmarks) {
			t.Fatalf("want %d missing-benchmark diffs, got %v", len(base.Benchmarks), diffs)
		}
	})
	t.Run("new-benchmark-ok", func(t *testing.T) {
		cur := Report{Benchmarks: append([]Entry{{Name: "BenchmarkNew", NsPerOp: 1e12, AllocsPerOp: 1e6}}, base.Benchmarks...)}
		if diffs := CompareTimings(base, cur, 1.5, 1.1); len(diffs) != 0 {
			t.Fatalf("new benchmark flagged: %v", diffs)
		}
	})
	t.Run("timing-metric-regression", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "610.0 ns/flow", "9999.0 ns/flow")))
		diffs := CompareTimings(base, cur, 1.5, 1.1)
		if len(diffs) != 1 || !strings.Contains(diffs[0], "ns/flow") {
			t.Fatalf("ns/flow regression not caught: %v", diffs)
		}
	})
	t.Run("timing-metric-within-tolerance", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "610.0 ns/flow", "800.0 ns/flow")))
		if diffs := CompareTimings(base, cur, 1.5, 1.1); len(diffs) != 0 {
			t.Fatalf("in-tolerance ns/flow flagged: %v", diffs)
		}
	})
	t.Run("timing-metric-missing", func(t *testing.T) {
		cur, _ := Parse(strings.NewReader(strings.ReplaceAll(sample, "610.0 ns/flow", "610.0 other_metric")))
		diffs := CompareTimings(base, cur, 1.5, 1.1)
		if len(diffs) != 1 || !strings.Contains(diffs[0], "missing") {
			t.Fatalf("missing ns/flow not reported: %v", diffs)
		}
	})
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// TestEveryBenchmarkReportsOnePaperMetric is the harness guard: each
// Benchmark* function in any bench_test.go must call b.ReportMetric
// with a non-"ns/" unit exactly once, so BENCH.json carries exactly
// one deterministic paper metric per benchmark for the regression
// diff. Additional calls whose unit literal begins "ns/" are the
// timing-metric class (machine-dependent rates like ns/flow) and are
// exempt; a unit that is not a plain string literal counts as a paper
// metric, so nobody can dodge the guard by computing the unit.
func TestEveryBenchmarkReportsOnePaperMetric(t *testing.T) {
	root := moduleRoot(t)
	var checked int
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if info.Name() != "bench_test.go" || strings.Contains(path, "internal/bench") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || !strings.HasPrefix(fn.Name.Name, "Benchmark") {
				continue
			}
			count := 0
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "ReportMetric" {
					return true
				}
				// Timing metrics — a string-literal unit starting
				// "ns/" — are the machine-dependent class and do not
				// count toward the one-paper-metric budget.
				if len(call.Args) == 2 {
					if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if unit, err := strconv.Unquote(lit.Value); err == nil && strings.HasPrefix(unit, "ns/") {
							return true
						}
					}
				}
				count++
				return true
			})
			if count != 1 {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s: %s calls ReportMetric %d times with a paper-metric unit, want exactly 1", rel, fn.Name.Name, count)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no benchmarks found in any bench_test.go — harness wiring broken")
	}
}
