package sched

// CachingPolicy accumulates circuits across phases: it starts from
// the installed configuration, adds the demand's missing circuits,
// and evicts least-recently-used circuits only when a chip's port
// budget overflows. On periodic traffic (pipeline-parallel training,
// recurring expert routings) the cache converges to the union of the
// patterns and reconfiguration stops entirely — the §5 insight that
// dynamic traffic does not necessarily mean dynamic circuits.
type CachingPolicy struct {
	P Params

	clock   int
	lastUse map[[2]int]int
}

// NewCachingPolicy builds the policy.
func NewCachingPolicy(p Params) *CachingPolicy {
	return &CachingPolicy{P: p, lastUse: make(map[[2]int]int)}
}

// Name implements Policy.
func (c *CachingPolicy) Name() string { return "caching-lru" }

// Next implements Policy.
func (c *CachingPolicy) Next(current Config, d Demand) Config {
	c.clock++
	needed := make(map[[2]int]bool)
	for _, pr := range d.Pairs {
		if pr.Src == pr.Dst {
			continue
		}
		needed[norm(pr.Src, pr.Dst)] = true
	}

	// Union of installed and needed circuits.
	next := NewConfig()
	for e := range current.edges {
		next.edges[e] = true
	}
	for e := range needed {
		next.edges[e] = true
		c.lastUse[e] = c.clock
	}

	// Evict LRU non-needed circuits until every chip fits its ports.
	if c.P.PortLimit > 0 {
		for {
			over := overloadedChip(next, c.P.PortLimit)
			if over < 0 {
				break
			}
			victim, found := [2]int{}, false
			oldest := c.clock + 1
			for e := range next.edges {
				if needed[e] || (e[0] != over && e[1] != over) {
					continue
				}
				if use := c.lastUse[e]; use < oldest {
					oldest, victim, found = use, e, true
				}
			}
			if !found {
				// Every circuit at the chip is needed this phase; the
				// demand itself saturates the ports. Fall back to the
				// bare demand.
				return DemandConfig(d)
			}
			delete(next.edges, victim)
			delete(c.lastUse, victim)
		}
	}
	return next
}

// overloadedChip returns the lowest-numbered chip exceeding the port
// limit, or -1.
func overloadedChip(c Config, limit int) int {
	deg := map[int]int{}
	for e := range c.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	// Pick the smallest offending chip ID so the eviction sequence is
	// independent of map iteration order.
	worst := -1
	for chip, n := range deg {
		if n > limit && (worst == -1 || chip < worst) {
			worst = chip
		}
	}
	return worst
}
