// Package sched implements optical resource-allocation policies — the
// algorithms the paper says server-scale optics will need (§1: "new
// optical resource allocation algorithms will be needed to arrive at
// the appropriate trade-off between optical reconfiguration delay and
// end-to-end server-scale interconnect performance"; §5 raises the
// same challenge for dynamic traffic).
//
// The model: a workload is a sequence of communication phases, each a
// set of (source, destination, bytes) pairs. Before each phase the
// policy chooses the fabric's circuit configuration. Pairs with a
// direct circuit transfer in one hop; pairs without one relay over
// the configuration's circuit graph (consuming intermediate chips'
// circuits, hop by hop); changing the configuration costs one MZI
// reconfiguration delay r. Policies trade r against relay stretch.
package sched

import (
	"fmt"
	"sort"

	"lightpath/internal/unit"
)

// Pair is one demand: Bytes to move from Src to Dst.
type Pair struct {
	Src, Dst int
	Bytes    unit.Bytes
}

// Demand is one communication phase.
type Demand struct {
	Pairs []Pair
}

// Config is a circuit configuration: an undirected set of chip pairs
// with established circuits. Configs are comparable via Key.
type Config struct {
	edges map[[2]int]bool
}

// NewConfig builds a configuration from undirected chip pairs.
func NewConfig(pairs ...[2]int) Config {
	c := Config{edges: make(map[[2]int]bool, len(pairs))}
	for _, p := range pairs {
		c.add(p[0], p[1])
	}
	return c
}

func norm(a, b int) [2]int {
	if a > b {
		return [2]int{b, a}
	}
	return [2]int{a, b}
}

func (c *Config) add(a, b int) {
	if a == b {
		return
	}
	c.edges[norm(a, b)] = true
}

// Has reports whether a direct circuit exists between the chips.
func (c Config) Has(a, b int) bool { return c.edges[norm(a, b)] }

// Size returns the number of circuits.
func (c Config) Size() int { return len(c.edges) }

// Degree returns the number of circuits terminating at the chip.
func (c Config) Degree(chip int) int {
	n := 0
	for e := range c.edges {
		if e[0] == chip || e[1] == chip {
			n++
		}
	}
	return n
}

// MaxDegree returns the largest per-chip circuit count — checked
// against the tile's SerDes/laser budget.
func (c Config) MaxDegree() int {
	deg := map[int]int{}
	for e := range c.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	max := 0
	for _, n := range deg {
		if n > max {
			max = n
		}
	}
	return max
}

// Key returns a canonical string identity for memoization.
func (c Config) Key() string {
	keys := make([][2]int, 0, len(c.edges))
	for e := range c.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := ""
	for _, e := range keys {
		out += fmt.Sprintf("%d-%d;", e[0], e[1])
	}
	return out
}

// Equal reports whether two configurations hold the same circuits.
func (c Config) Equal(o Config) bool {
	if len(c.edges) != len(o.edges) {
		return false
	}
	for e := range c.edges {
		if !o.edges[e] {
			return false
		}
	}
	return true
}

// hops returns the shortest circuit-graph path length between the
// chips (BFS), or -1 when disconnected.
func (c Config) hops(a, b int) int {
	if a == b {
		return 0
	}
	if c.Has(a, b) {
		return 1
	}
	// Build adjacency lists in sorted edge order so BFS tie-breaking
	// (and any future use of the lists) is reproducible.
	edges := make([][2]int, 0, len(c.edges))
	for e := range c.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if _, ok := dist[nb]; ok {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return -1
}

// Params are the fabric constants the policies optimize against.
type Params struct {
	// ChipBandwidth is a chip's total egress B; a chip with k
	// circuits drives each at B/k.
	ChipBandwidth unit.BitRate
	// Reconfig is r, paid whenever the configuration changes.
	Reconfig unit.Seconds
	// PortLimit caps circuits per chip; configurations above it are
	// rejected.
	PortLimit int
}

// DemandConfig returns the configuration holding exactly the demand's
// direct circuits.
func DemandConfig(d Demand) Config {
	c := NewConfig()
	for _, p := range d.Pairs {
		c.add(p.Src, p.Dst)
	}
	return c
}

// RingConfig returns a static ring over the chips — the
// never-reconfigure baseline: always connected, so any pair is
// reachable by relaying, at up to n/2 hops of stretch.
func RingConfig(chips []int) Config {
	c := NewConfig()
	for i := range chips {
		c.add(chips[i], chips[(i+1)%len(chips)])
	}
	return c
}

// ServeTime returns the time for one phase's demand under the given
// configuration: per source chip, its pairs transfer sequentially,
// each over hops(src,dst) circuit hops at B/degree per hop; source
// chips proceed in parallel (the phase lasts as long as the busiest
// source). Unreachable pairs make the phase unserveable (+Inf is
// represented by ok=false).
func (p Params) ServeTime(d Demand, c Config) (unit.Seconds, bool) {
	perSrc := map[int]unit.Seconds{}
	for _, pair := range d.Pairs {
		if pair.Bytes <= 0 {
			continue
		}
		h := c.hops(pair.Src, pair.Dst)
		if h < 0 {
			return 0, false
		}
		deg := c.Degree(pair.Src)
		if deg == 0 {
			return 0, false
		}
		bw := p.ChipBandwidth / unit.BitRate(deg)
		perSrc[pair.Src] += bw.TimeFor(pair.Bytes * unit.Bytes(h))
	}
	var worst unit.Seconds
	for _, t := range perSrc {
		if t > worst {
			worst = t
		}
	}
	return worst, true
}

// validConfig checks the port budget.
func (p Params) validConfig(c Config) bool {
	return p.PortLimit <= 0 || c.MaxDegree() <= p.PortLimit
}
