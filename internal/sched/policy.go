package sched

import (
	"fmt"

	"lightpath/internal/unit"
)

// Policy decides the circuit configuration before each phase.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Next returns the configuration for the coming demand, given the
	// currently installed one.
	Next(current Config, d Demand) Config
}

// Outcome is the result of running a policy over a workload.
type Outcome struct {
	Policy string
	// Reconfigs counts configuration changes (each costing r).
	Reconfigs int
	// ServeTime is the total data-movement time; Total adds the
	// reconfiguration delays.
	ServeTime, Total unit.Seconds
	// Unserveable counts phases the policy's configuration could not
	// serve at all (disconnected demand); each forces an emergency
	// reconfiguration to the demand's own configuration.
	Unserveable int
}

// Run executes the workload under the policy. The fabric starts with
// an empty configuration (the first phase always pays r). If a chosen
// configuration cannot serve the phase (or violates the port budget),
// the runner falls back to the demand's direct configuration and
// counts the phase Unserveable.
func Run(p Params, policy Policy, phases []Demand) (Outcome, error) {
	out := Outcome{Policy: policy.Name()}
	current := NewConfig()
	for i, d := range phases {
		next := policy.Next(current, d)
		if !p.validConfig(next) {
			return out, fmt.Errorf("sched: %s phase %d: configuration exceeds port limit %d",
				policy.Name(), i, p.PortLimit)
		}
		serve, ok := p.ServeTime(d, next)
		if !ok {
			out.Unserveable++
			next = DemandConfig(d)
			serve, ok = p.ServeTime(d, next)
			if !ok {
				return out, fmt.Errorf("sched: phase %d unserveable even directly", i)
			}
		}
		if !next.Equal(current) {
			out.Reconfigs++
			out.Total += p.Reconfig
			current = next
		}
		out.ServeTime += serve
		out.Total += serve
	}
	return out, nil
}

// EagerPolicy reconfigures to the demand's direct circuits every
// phase: minimal serve time, maximal reconfiguration count.
type EagerPolicy struct{}

// Name implements Policy.
func (EagerPolicy) Name() string { return "eager" }

// Next implements Policy.
func (EagerPolicy) Next(_ Config, d Demand) Config { return DemandConfig(d) }

// StaticPolicy never reconfigures away from a fixed connected
// configuration (a ring over the chips): zero reconfigurations after
// the first, everything relayed.
type StaticPolicy struct {
	Ring Config
}

// NewStaticPolicy builds the static-ring policy over the chips.
func NewStaticPolicy(chips []int) StaticPolicy {
	return StaticPolicy{Ring: RingConfig(chips)}
}

// Name implements Policy.
func (StaticPolicy) Name() string { return "static-ring" }

// Next implements Policy.
func (s StaticPolicy) Next(Config, Demand) Config { return s.Ring }

// HysteresisPolicy reconfigures only when serving the demand on the
// installed configuration is estimated to cost more than Threshold
// times serving it on fresh direct circuits plus the reconfiguration
// delay — the explicit r-versus-stretch trade-off of §1/§5.
type HysteresisPolicy struct {
	P         Params
	Threshold float64
}

// Name implements Policy.
func (h HysteresisPolicy) Name() string { return fmt.Sprintf("hysteresis-%.1f", h.Threshold) }

// Next implements Policy.
func (h HysteresisPolicy) Next(current Config, d Demand) Config {
	stay, ok := h.P.ServeTime(d, current)
	if !ok {
		return DemandConfig(d)
	}
	direct, ok := h.P.ServeTime(d, DemandConfig(d))
	if !ok {
		return current
	}
	if float64(stay) > h.Threshold*float64(direct+h.P.Reconfig) {
		return DemandConfig(d)
	}
	return current
}

// OfflineOptimal computes, by dynamic programming over the whole
// phase sequence, the minimum-total-time configuration schedule among
// the candidate family: each phase's direct configuration, the static
// ring, and the running unions of consecutive demands (the
// configurations a caching policy can hold) while they fit the port
// budget. It is the clairvoyant baseline the online policies are
// judged against; within this family no online policy can beat it.
func OfflineOptimal(p Params, phases []Demand, chips []int) (Outcome, error) {
	// Candidate configurations.
	var candidates []Config
	seen := map[string]bool{}
	addCand := func(c Config) {
		if k := c.Key(); !seen[k] && p.validConfig(c) {
			seen[k] = true
			candidates = append(candidates, c)
		}
	}
	addCand(RingConfig(chips))
	for _, d := range phases {
		addCand(DemandConfig(d))
	}
	// Running unions: from each start phase, grow the union forward
	// until the port budget breaks.
	for start := range phases {
		union := NewConfig()
		for _, d := range phases[start:] {
			for e := range DemandConfig(d).edges {
				union.edges[e] = true
			}
			if !p.validConfig(union) {
				break
			}
			cp := NewConfig()
			for e := range union.edges {
				cp.edges[e] = true
			}
			addCand(cp)
		}
	}
	if len(candidates) == 0 {
		return Outcome{}, fmt.Errorf("sched: no valid candidate configurations")
	}

	const inf = unit.Seconds(1 << 62)
	// best[c] = minimal total time ending phase i with configuration c.
	best := make([]unit.Seconds, len(candidates))
	reconf := make([]int, len(candidates))
	serveTot := make([]unit.Seconds, len(candidates))
	for i := range best {
		best[i] = 0
	}
	first := true
	for _, d := range phases {
		nb := make([]unit.Seconds, len(candidates))
		nr := make([]int, len(candidates))
		ns := make([]unit.Seconds, len(candidates))
		for ci, c := range candidates {
			serve, ok := p.ServeTime(d, c)
			if !ok {
				nb[ci] = inf
				continue
			}
			// Transition from the best predecessor.
			bestPrev, bestR, bestS := inf, 0, unit.Seconds(0)
			for pi := range candidates {
				if best[pi] >= inf {
					continue
				}
				cost := best[pi]
				r := reconf[pi]
				if first || pi != ci {
					cost += p.Reconfig
					r++
				}
				if cost < bestPrev {
					bestPrev, bestR, bestS = cost, r, serveTot[pi]
				}
			}
			if bestPrev >= inf {
				nb[ci] = inf
				continue
			}
			nb[ci] = bestPrev + serve
			nr[ci] = bestR
			ns[ci] = bestS + serve
		}
		best, reconf, serveTot = nb, nr, ns
		first = false
	}
	out := Outcome{Policy: "offline-optimal"}
	bestTotal := inf
	for ci := range candidates {
		if best[ci] < bestTotal {
			bestTotal = best[ci]
			out.Total = best[ci]
			out.Reconfigs = reconf[ci]
			out.ServeTime = serveTot[ci]
		}
	}
	if bestTotal >= inf {
		return Outcome{}, fmt.Errorf("sched: no feasible schedule")
	}
	return out, nil
}
