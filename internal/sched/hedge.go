package sched

import (
	"fmt"
	"math"
)

// HedgePolicy runs a panel of hysteresis experts with different
// thresholds under multiplicative weights ("hedge"): each phase, every
// expert simulates its own virtual configuration trajectory and is
// charged its would-be cost; the fabric follows the currently
// best-weighted expert. This is the online-learning answer to §1/§5's
// open question — no single threshold suits all traffic, so learn it.
type HedgePolicy struct {
	p       Params
	experts []HysteresisPolicy
	virtual []Config
	weights []float64
	// eta is the learning rate of the multiplicative update.
	eta float64
}

// NewHedgePolicy builds the panel over the given thresholds (defaults
// to {0.5, 1, 2, 4} when none are provided).
func NewHedgePolicy(p Params, thresholds ...float64) *HedgePolicy {
	if len(thresholds) == 0 {
		thresholds = []float64{0.5, 1, 2, 4}
	}
	h := &HedgePolicy{p: p, eta: 0.5}
	for _, th := range thresholds {
		h.experts = append(h.experts, HysteresisPolicy{P: p, Threshold: th})
		h.virtual = append(h.virtual, NewConfig())
		h.weights = append(h.weights, 1)
	}
	return h
}

// Name implements Policy.
func (h *HedgePolicy) Name() string { return fmt.Sprintf("hedge-%d", len(h.experts)) }

// Next implements Policy.
func (h *HedgePolicy) Next(current Config, d Demand) Config {
	// Charge every expert its virtual cost for this phase and update
	// the weights.
	costs := make([]float64, len(h.experts))
	maxCost := 0.0
	for i, e := range h.experts {
		next := e.Next(h.virtual[i], d)
		serve, ok := h.p.ServeTime(d, next)
		if !ok {
			next = DemandConfig(d)
			serve, _ = h.p.ServeTime(d, next)
		}
		cost := float64(serve)
		if !next.Equal(h.virtual[i]) {
			cost += float64(h.p.Reconfig)
		}
		h.virtual[i] = next
		costs[i] = cost
		if cost > maxCost {
			maxCost = cost
		}
	}
	best := 0
	if maxCost > 0 {
		for i := range h.experts {
			h.weights[i] *= math.Exp(-h.eta * costs[i] / maxCost)
		}
		// Renormalize to dodge underflow on long runs.
		sum := 0.0
		for _, w := range h.weights {
			sum += w
		}
		for i := range h.weights {
			h.weights[i] /= sum
			if h.weights[i] > h.weights[best] {
				best = i
			}
		}
	}
	// Follow the leader's decision, applied to the real state.
	return h.experts[best].Next(current, d)
}

// Leader returns the currently best-weighted expert's threshold, for
// introspection in experiments.
func (h *HedgePolicy) Leader() float64 {
	best := 0
	for i := range h.weights {
		if h.weights[i] > h.weights[best] {
			best = i
		}
	}
	return h.experts[best].Threshold
}
