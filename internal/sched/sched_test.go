package sched

import (
	"math"
	"testing"
	"testing/quick"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func params() Params {
	return Params{
		ChipBandwidth: unit.GBps(300),
		Reconfig:      3.7 * unit.Microsecond,
		PortLimit:     16,
	}
}

func chips(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestConfigBasics(t *testing.T) {
	c := NewConfig([2]int{1, 2}, [2]int{2, 3}, [2]int{3, 1})
	if c.Size() != 3 {
		t.Fatalf("size = %d", c.Size())
	}
	if !c.Has(2, 1) || !c.Has(1, 2) {
		t.Fatal("undirected lookup failed")
	}
	if c.Has(1, 4) {
		t.Fatal("phantom circuit")
	}
	if c.Degree(1) != 2 || c.Degree(4) != 0 {
		t.Fatalf("degree(1) = %d", c.Degree(1))
	}
	if c.MaxDegree() != 2 {
		t.Fatalf("max degree = %d", c.MaxDegree())
	}
	// Self-pairs and duplicates are ignored.
	d := NewConfig([2]int{5, 5}, [2]int{1, 2}, [2]int{2, 1})
	if d.Size() != 1 {
		t.Fatalf("dedup size = %d", d.Size())
	}
}

func TestConfigKeyEqual(t *testing.T) {
	a := NewConfig([2]int{1, 2}, [2]int{3, 4})
	b := NewConfig([2]int{4, 3}, [2]int{2, 1})
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Fatal("order-insensitive identity broken")
	}
	c := NewConfig([2]int{1, 2})
	if a.Equal(c) || c.Equal(a) {
		t.Fatal("unequal configs compare equal")
	}
}

func TestHops(t *testing.T) {
	ring := RingConfig(chips(6))
	if h := ring.hops(0, 1); h != 1 {
		t.Fatalf("adjacent hops = %d", h)
	}
	if h := ring.hops(0, 3); h != 3 {
		t.Fatalf("opposite hops = %d", h)
	}
	if h := ring.hops(2, 2); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
	disconnected := NewConfig([2]int{0, 1})
	if h := disconnected.hops(0, 5); h != -1 {
		t.Fatalf("disconnected hops = %d", h)
	}
}

func TestServeTime(t *testing.T) {
	p := params()
	d := Demand{Pairs: []Pair{{Src: 0, Dst: 1, Bytes: unit.GB}}}
	direct := DemandConfig(d)
	tDirect, ok := p.ServeTime(d, direct)
	if !ok {
		t.Fatal("direct unserveable")
	}
	// One circuit at full B: 1 GB / 300 GB/s.
	want := p.ChipBandwidth.TimeFor(unit.GB)
	if math.Abs(float64(tDirect-want)) > 1e-12 {
		t.Fatalf("direct = %v, want %v", tDirect, want)
	}
	// Over a 6-ring, 0->3 is 3 hops at B/2 (ring degree 2): 6x direct.
	ring := RingConfig(chips(6))
	d2 := Demand{Pairs: []Pair{{Src: 0, Dst: 3, Bytes: unit.GB}}}
	tRing, ok := p.ServeTime(d2, ring)
	if !ok {
		t.Fatal("ring unserveable")
	}
	if ratio := float64(tRing / tDirect); math.Abs(ratio-6) > 1e-9 {
		t.Fatalf("ring stretch = %v, want 6", ratio)
	}
	// Unreachable pair.
	if _, ok := p.ServeTime(d2, NewConfig([2]int{0, 1})); ok {
		t.Fatal("unreachable pair served")
	}
	// Zero-byte pairs are free.
	if tt, ok := p.ServeTime(Demand{Pairs: []Pair{{Src: 0, Dst: 3}}}, ring); !ok || tt != 0 {
		t.Fatalf("zero-byte serve = %v/%v", tt, ok)
	}
}

func TestRunEagerVsStatic(t *testing.T) {
	p := params()
	cs := chips(8)
	r := rng.New(7)
	phases := Generate(WorkloadChurning, cs, 20, 16*unit.MiB, r)

	eager, err := Run(p, EagerPolicy{}, phases)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(p, NewStaticPolicy(cs), phases)
	if err != nil {
		t.Fatal(err)
	}
	// Eager reconfigures (almost) every phase; static once.
	if eager.Reconfigs < 15 {
		t.Fatalf("eager reconfigs = %d", eager.Reconfigs)
	}
	if static.Reconfigs != 1 {
		t.Fatalf("static reconfigs = %d", static.Reconfigs)
	}
	// At 16 MiB per pair, relay stretch costs far more than r: eager
	// wins on total.
	if eager.Total >= static.Total {
		t.Fatalf("eager %v should beat static %v at large transfers", eager.Total, static.Total)
	}
	if eager.Unserveable != 0 || static.Unserveable != 0 {
		t.Fatal("unexpected unserveable phases")
	}
}

func TestStaticWinsTinyTransfers(t *testing.T) {
	p := params()
	cs := chips(8)
	phases := Generate(WorkloadChurning, cs, 40, 2*unit.KiB, rng.New(8))
	eager, err := Run(p, EagerPolicy{}, phases)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(p, NewStaticPolicy(cs), phases)
	if err != nil {
		t.Fatal(err)
	}
	// At 2 KB per pair, r dominates: never reconfiguring wins.
	if static.Total >= eager.Total {
		t.Fatalf("static %v should beat eager %v at tiny transfers", static.Total, eager.Total)
	}
}

func TestHysteresisInterpolates(t *testing.T) {
	p := params()
	cs := chips(8)
	// Periodic workload with mid-size transfers: hysteresis should
	// land between the extremes (or match the better one).
	phases := Generate(WorkloadPeriodic, cs, 30, 256*unit.KiB, rng.New(9))
	eager, _ := Run(p, EagerPolicy{}, phases)
	static, _ := Run(p, NewStaticPolicy(cs), phases)
	hyst, err := Run(p, HysteresisPolicy{P: p, Threshold: 1.0}, phases)
	if err != nil {
		t.Fatal(err)
	}
	worst := eager.Total
	if static.Total > worst {
		worst = static.Total
	}
	if hyst.Total > worst {
		t.Fatalf("hysteresis %v worse than both extremes (%v, %v)", hyst.Total, eager.Total, static.Total)
	}
}

func TestOfflineOptimalLowerBounds(t *testing.T) {
	p := params()
	cs := chips(8)
	for _, kind := range []WorkloadKind{WorkloadPeriodic, WorkloadShifting, WorkloadChurning} {
		phases := Generate(kind, cs, 15, 512*unit.KiB, rng.New(11))
		opt, err := OfflineOptimal(p, phases, cs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, policy := range []Policy{EagerPolicy{}, NewStaticPolicy(cs), HysteresisPolicy{P: p, Threshold: 1.0}} {
			out, err := Run(p, policy, phases)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, policy.Name(), err)
			}
			if out.Total < opt.Total-unit.Seconds(1e-12) {
				t.Fatalf("%v: %s total %v beat offline optimal %v", kind, policy.Name(), out.Total, opt.Total)
			}
		}
	}
}

func TestRunPortLimit(t *testing.T) {
	p := params()
	p.PortLimit = 1
	// A demand needing degree 2 at chip 0.
	phases := []Demand{{Pairs: []Pair{
		{Src: 0, Dst: 1, Bytes: unit.MB},
		{Src: 0, Dst: 2, Bytes: unit.MB},
	}}}
	if _, err := Run(p, EagerPolicy{}, phases); err == nil {
		t.Fatal("port-limit violation accepted")
	}
}

func TestRunEmergencyReconfig(t *testing.T) {
	p := params()
	// A static policy whose ring covers chips 0..3 cannot serve a
	// demand touching chip 9: the runner must fall back.
	policy := NewStaticPolicy(chips(4))
	phases := []Demand{{Pairs: []Pair{{Src: 0, Dst: 9, Bytes: unit.MB}}}}
	out, err := Run(p, policy, phases)
	if err != nil {
		t.Fatal(err)
	}
	if out.Unserveable != 1 {
		t.Fatalf("unserveable = %d, want 1", out.Unserveable)
	}
}

func TestGenerateShapes(t *testing.T) {
	cs := chips(8)
	for _, kind := range []WorkloadKind{WorkloadPeriodic, WorkloadShifting, WorkloadChurning} {
		phases := Generate(kind, cs, 12, unit.MB, rng.New(1))
		if len(phases) != 12 {
			t.Fatalf("%v: %d phases", kind, len(phases))
		}
		for _, d := range phases {
			for _, pr := range d.Pairs {
				if pr.Src == pr.Dst {
					t.Fatalf("%v: self pair", kind)
				}
			}
		}
	}
	if WorkloadKind(9).String() != "WorkloadKind(9)" {
		t.Fatal("unknown kind name")
	}
}

func TestGeneratePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"too few chips": func() { Generate(WorkloadPeriodic, []int{1}, 3, unit.MB, rng.New(1)) },
		"unknown kind":  func() { Generate(WorkloadKind(9), chips(4), 3, unit.MB, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for any workload, the offline optimal never exceeds the
// eager policy (eager's schedule is in the DP's candidate family).
func TestOfflineOptimalDominatesEagerProperty(t *testing.T) {
	p := params()
	f := func(seed uint64, kindRaw, phasesRaw uint8) bool {
		kind := WorkloadKind(kindRaw % 3)
		nPhases := int(phasesRaw%10) + 2
		cs := chips(6)
		phases := Generate(kind, cs, nPhases, 128*unit.KiB, rng.New(seed))
		opt, err := OfflineOptimal(p, phases, cs)
		if err != nil {
			return false
		}
		eager, err := Run(p, EagerPolicy{}, phases)
		if err != nil {
			return false
		}
		return opt.Total <= eager.Total+unit.Seconds(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCachingPolicyConvergesOnPeriodic(t *testing.T) {
	p := params()
	cs := chips(8)
	phases := Generate(WorkloadPeriodic, cs, 30, 64*unit.KiB, rng.New(15))
	caching, err := Run(p, NewCachingPolicy(p), phases)
	if err != nil {
		t.Fatal(err)
	}
	// The three repeating matchings fit the port budget together: the
	// cache converges within one cycle and never reconfigures again.
	if caching.Reconfigs > 3 {
		t.Fatalf("caching reconfigs = %d, want <= 3 (one per distinct pattern)", caching.Reconfigs)
	}
	// And every phase after convergence is served at direct speed:
	// total beats eager (which pays r every phase).
	eager, _ := Run(p, EagerPolicy{}, phases)
	if caching.Total >= eager.Total {
		t.Fatalf("caching %v should beat eager %v on periodic traffic", caching.Total, eager.Total)
	}
	static, _ := Run(p, NewStaticPolicy(cs), phases)
	if caching.Total >= static.Total {
		t.Fatalf("caching %v should beat static %v at 64KB", caching.Total, static.Total)
	}
}

func TestCachingPolicyEvictsUnderPortPressure(t *testing.T) {
	p := params()
	p.PortLimit = 2
	cs := chips(6)
	phases := Generate(WorkloadChurning, cs, 25, 64*unit.KiB, rng.New(16))
	out, err := Run(p, NewCachingPolicy(p), phases)
	if err != nil {
		t.Fatal(err)
	}
	// Under churn with tight ports the cache cannot converge, but the
	// run must stay valid (no port violations -> Run returned nil).
	if out.Reconfigs == 0 {
		t.Fatal("churning traffic with 2 ports should reconfigure")
	}
}

func TestCachingPolicyFallsBackWhenDemandSaturates(t *testing.T) {
	p := params()
	p.PortLimit = 2
	pol := NewCachingPolicy(p)
	// Install an unrelated circuit, then demand exactly PortLimit
	// circuits at chip 0: the cache must yield the bare demand.
	d := Demand{Pairs: []Pair{
		{Src: 0, Dst: 1, Bytes: unit.MB},
		{Src: 0, Dst: 2, Bytes: unit.MB},
	}}
	cur := NewConfig([2]int{0, 5})
	next := pol.Next(cur, d)
	if next.MaxDegree() > 2 {
		t.Fatalf("caching exceeded port limit: %d", next.MaxDegree())
	}
	if !next.Has(0, 1) || !next.Has(0, 2) {
		t.Fatal("caching dropped needed circuits")
	}
}

// Property: no online policy beats the offline optimum now that the
// candidate family includes running unions (covering the caching
// policy's reachable configurations).
func TestOfflineOptimalDominatesCachingProperty(t *testing.T) {
	p := params()
	f := func(seed uint64, kindRaw uint8) bool {
		kind := WorkloadKind(kindRaw % 3)
		cs := chips(6)
		phases := Generate(kind, cs, 10, 256*unit.KiB, rng.New(seed))
		opt, err := OfflineOptimal(p, phases, cs)
		if err != nil {
			return false
		}
		caching, err := Run(p, NewCachingPolicy(p), phases)
		if err != nil {
			return false
		}
		return opt.Total <= caching.Total+unit.Seconds(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHedgeTracksBestExpert: across workloads, the hedge panel's total
// stays within a modest factor of its best fixed-threshold expert.
func TestHedgeTracksBestExpert(t *testing.T) {
	p := params()
	cs := chips(8)
	thresholds := []float64{0.5, 1, 2, 4}
	for _, kind := range []WorkloadKind{WorkloadPeriodic, WorkloadShifting, WorkloadChurning} {
		for _, bytes := range []unit.Bytes{4 * unit.KiB, 256 * unit.KiB, 16 * unit.MiB} {
			phases := Generate(kind, cs, 30, bytes, rng.New(19))
			best := unit.Seconds(math.Inf(1))
			for _, th := range thresholds {
				out, err := Run(p, HysteresisPolicy{P: p, Threshold: th}, phases)
				if err != nil {
					t.Fatal(err)
				}
				if out.Total < best {
					best = out.Total
				}
			}
			hedge, err := Run(p, NewHedgePolicy(p, thresholds...), phases)
			if err != nil {
				t.Fatal(err)
			}
			if float64(hedge.Total) > 1.3*float64(best) {
				t.Fatalf("%v/%v: hedge %v > 1.3x best expert %v", kind, bytes, hedge.Total, best)
			}
		}
	}
}

func TestHedgeLeaderIntrospection(t *testing.T) {
	p := params()
	h := NewHedgePolicy(p)
	if h.Leader() != 0.5 {
		t.Fatalf("initial leader = %v, want first expert", h.Leader())
	}
	cs := chips(6)
	phases := Generate(WorkloadChurning, cs, 10, 4*unit.KiB, rng.New(20))
	if _, err := Run(p, h, phases); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, th := range []float64{0.5, 1, 2, 4} {
		if h.Leader() == th {
			found = true
		}
	}
	if !found {
		t.Fatalf("leader %v not in the expert set", h.Leader())
	}
}
