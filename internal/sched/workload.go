package sched

import (
	"fmt"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// WorkloadKind selects a synthetic phase-sequence generator.
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadPeriodic cycles through a small set of patterns
	// (pipeline-parallel training: the same few phases repeat).
	WorkloadPeriodic WorkloadKind = iota
	// WorkloadShifting drifts: each phase perturbs one pair of the
	// previous (slowly evolving expert routing).
	WorkloadShifting
	// WorkloadChurning draws a fresh random matching every phase
	// (adversarial for circuit reuse).
	WorkloadChurning
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadPeriodic:
		return "periodic"
	case WorkloadShifting:
		return "shifting"
	case WorkloadChurning:
		return "churning"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// clone returns a Demand sharing no storage with the receiver.
func (d Demand) clone() Demand {
	return Demand{Pairs: append([]Pair(nil), d.Pairs...)}
}

// matching draws a random perfect matching over the chips.
func matching(chips []int, bytes unit.Bytes, r *rng.Rand) Demand {
	perm := r.Perm(len(chips))
	var d Demand
	for i := 0; i+1 < len(perm); i += 2 {
		d.Pairs = append(d.Pairs, Pair{Src: chips[perm[i]], Dst: chips[perm[i+1]], Bytes: bytes})
	}
	return d
}

// Generate builds a deterministic phase sequence of the given kind:
// phases communication phases over the chips, each pair moving bytes.
func Generate(kind WorkloadKind, chips []int, phases int, bytes unit.Bytes, r *rng.Rand) []Demand {
	if len(chips) < 2 {
		panic("sched: workload needs at least 2 chips")
	}
	var out []Demand
	switch kind {
	case WorkloadPeriodic:
		base := []Demand{
			matching(chips, bytes, r),
			matching(chips, bytes, r),
			matching(chips, bytes, r),
		}
		for i := 0; i < phases; i++ {
			// Value-copy each phase: repeating the base demands by
			// reference would alias one Pairs slice across phases, and
			// a consumer mutating one phase would silently corrupt the
			// others (fatal once phases are examined concurrently).
			out = append(out, base[i%len(base)].clone())
		}
	case WorkloadShifting:
		cur := matching(chips, bytes, r)
		for i := 0; i < phases; i++ {
			out = append(out, cur)
			// Perturb: re-aim one pair's destination.
			next := Demand{Pairs: append([]Pair(nil), cur.Pairs...)}
			if len(next.Pairs) > 0 {
				pi := r.Intn(len(next.Pairs))
				next.Pairs[pi].Dst = chips[r.Intn(len(chips))]
				if next.Pairs[pi].Dst == next.Pairs[pi].Src {
					next.Pairs[pi].Dst = chips[(r.Intn(len(chips)-1)+1+indexOf(chips, next.Pairs[pi].Src))%len(chips)]
				}
			}
			cur = next
		}
	case WorkloadChurning:
		for i := 0; i < phases; i++ {
			out = append(out, matching(chips, bytes, r))
		}
	default:
		panic(fmt.Sprintf("sched: unknown workload %d", int(kind)))
	}
	return out
}

func indexOf(chips []int, chip int) int {
	for i, c := range chips {
		if c == chip {
			return i
		}
	}
	return 0
}
