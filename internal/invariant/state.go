package invariant

import (
	"fmt"

	"lightpath/internal/snapshot"
)

// This file serializes the auditor's counters and retained violations
// for the fleet checkpoint. A resumed soak must report the same
// Mutations/Audits/Count columns — and the same Err() text — as the
// uninterrupted run, so the whole observation record rides along. The
// process-wide global tally is deliberately NOT restored: it
// aggregates across trials in one process, and re-adding a resumed
// trial's history would double-count.

// EncodeState appends the auditor's counters and retained violations
// to the encoder. Mode and stride are configuration, not state — the
// resuming side reconstructs the auditor with the same Config.
func (d *Auditor) EncodeState(e *snapshot.Encoder) {
	e.Int(d.mutations)
	e.Int(d.audits)
	e.Int(d.count)
	e.Len(len(d.recorded))
	for _, v := range d.recorded {
		e.String(v.Invariant)
		e.String(v.Op)
		e.String(v.Detail)
	}
}

// RestoreState replays counters captured by EncodeState into a
// freshly attached auditor.
func (d *Auditor) RestoreState(dec *snapshot.Decoder) error {
	d.mutations = dec.Int()
	d.audits = dec.Int()
	d.count = dec.Int()
	n := dec.Len()
	d.recorded = nil
	for i := 0; i < n; i++ {
		d.recorded = append(d.recorded, Violation{
			Invariant: dec.String(),
			Op:        dec.String(),
			Detail:    dec.String(),
		})
	}
	if err := dec.Err(); err != nil {
		return err
	}
	// Err() prints recorded[0] whenever count is positive; a snapshot
	// claiming violations but carrying none would make that panic.
	if d.count > 0 && len(d.recorded) == 0 {
		return fmt.Errorf("%w: violation count %d with empty record", snapshot.ErrCorruptSnapshot, d.count)
	}
	return nil
}
