package invariant

import (
	"errors"
	"strings"
	"testing"

	"lightpath/internal/route"
	"lightpath/internal/wafer"
)

// auditFixture builds a two-wafer rack with a few established
// circuits and a detached auditor (no hook): the corruption tests
// drive Audit explicitly so each one observes exactly the state it
// sabotaged.
func auditFixture(t *testing.T) (*route.Allocator, *Auditor) {
	t.Helper()
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := route.NewAllocator(rack, nil)
	for _, req := range []route.Request{
		{A: 0, B: 5, Width: 2},
		{A: 1, B: 40, Width: 3}, // cross-wafer: exercises fibers
		{A: 9, B: 12, Width: 1},
	} {
		if _, err := a.Establish(req, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(ResetGlobal)
	return a, Attach(a, Off)
}

// firstCircuit returns a deterministic established circuit.
func firstCircuit(t *testing.T, a *route.Allocator) *route.Circuit {
	t.Helper()
	cs := a.Circuits()
	if len(cs) == 0 {
		t.Fatal("fixture has no circuits")
	}
	min := cs[0]
	for _, c := range cs {
		if c.ID < min.ID {
			min = c
		}
	}
	return min
}

func TestAuditCleanStateFindsNothing(t *testing.T) {
	_, aud := auditFixture(t)
	if vs := aud.Audit("fixture"); len(vs) != 0 {
		t.Fatalf("clean state reported violations: %v", vs)
	}
	if aud.Count() != 0 || aud.Err() != nil {
		t.Fatalf("count %d err %v on clean state", aud.Count(), aud.Err())
	}
}

// corruptions sabotages the shared state one invariant at a time,
// entirely behind the allocator's back, and names the registered
// invariant that must catch it.
var corruptions = []struct {
	name      string
	invariant string
	sabotage  func(t *testing.T, a *route.Allocator)
}{
	{
		name:      "zeroed width",
		invariant: "circuit-disjointness",
		sabotage: func(t *testing.T, a *route.Allocator) {
			firstCircuit(t, a).Width = 0
		},
	},
	{
		name:      "dropped segment",
		invariant: "bus-conservation",
		sabotage: func(t *testing.T, a *route.Allocator) {
			c := firstCircuit(t, a)
			c.Segments = c.Segments[:len(c.Segments)-1]
		},
	},
	{
		name:      "dropped fiber",
		invariant: "fiber-conservation",
		sabotage: func(t *testing.T, a *route.Allocator) {
			for _, c := range a.Circuits() {
				if len(c.Fibers) > 0 {
					c.Fibers = c.Fibers[:len(c.Fibers)-1]
					return
				}
			}
			t.Fatal("fixture has no cross-wafer circuit")
		},
	},
	{
		name:      "phantom laser reservation",
		invariant: "endpoint-conservation",
		sabotage: func(t *testing.T, a *route.Allocator) {
			if err := a.Rack().TileOf(20).Reserve(1); err != nil {
				t.Fatal(err)
			}
		},
	},
	{
		name:      "chip killed behind the allocator",
		invariant: "budget-health",
		sabotage: func(t *testing.T, a *route.Allocator) {
			a.Rack().TileOf(firstCircuit(t, a).A).FailChip()
		},
	},
	{
		name:      "switch reprogrammed behind the allocator",
		invariant: "switch-consistency",
		sabotage: func(t *testing.T, a *route.Allocator) {
			se := a.CircuitSwitches(firstCircuit(t, a))[0]
			if err := se.Tile.Switches[se.Switch].Program(se.Port+1, 0); err != nil {
				t.Fatal(err)
			}
		},
	},
}

// TestAuditCatchesEveryCorruption is the acceptance check for the
// auditor itself: each registered invariant must turn its own kind of
// sabotage into a non-empty, descriptive, correctly attributed
// Violation — and Err must wrap ErrViolated so errors.Is works at any
// distance from the corruption.
func TestAuditCatchesEveryCorruption(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			a, aud := auditFixture(t)
			tc.sabotage(t, a)
			vs := aud.Audit("sabotage")
			if len(vs) == 0 {
				t.Fatal("corruption went unnoticed")
			}
			found := false
			for _, v := range vs {
				if v.Invariant == tc.invariant {
					found = true
					if v.Detail == "" {
						t.Fatalf("%s violation has empty detail", v.Invariant)
					}
					if !strings.Contains(v.String(), "circuit") && !strings.Contains(v.String(), "chip") &&
						!strings.Contains(v.String(), "trunk") && !strings.Contains(v.String(), "tile") {
						t.Fatalf("violation does not name a component: %q", v.String())
					}
					if v.Op != "sabotage" {
						t.Fatalf("violation op = %q", v.Op)
					}
				}
			}
			if !found {
				t.Fatalf("no %s violation among %v", tc.invariant, vs)
			}
			err := aud.Err()
			if !errors.Is(err, ErrViolated) {
				t.Fatalf("Err() = %v, does not wrap ErrViolated", err)
			}
			if GlobalCount() == 0 {
				t.Fatal("violation missing from the process-wide tally")
			}
		})
	}
}

// TestParanoidHookFiresOnEveryMutation attaches a Paranoid auditor and
// counts registry passes across a mutation mix, including the
// compound ones (ApplyFault, Reestablish) that must audit once at the
// top level — never mid-mutation on inconsistent state.
func TestParanoidHookFiresOnEveryMutation(t *testing.T) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := route.NewAllocator(rack, nil)
	aud := Attach(a, Paranoid)
	c, err := a.Establish(route.Request{A: 0, B: 5, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aud.Audits() != 1 {
		t.Fatalf("establish ran %d audits, want 1", aud.Audits())
	}
	a.Release(c)
	if aud.Audits() != 2 {
		t.Fatalf("release ran %d more audits, want 1", aud.Audits()-1)
	}
	// A double release is a no-op and must not count as a mutation.
	a.Release(c)
	if aud.Audits() != 2 {
		t.Fatal("no-op double release triggered an audit")
	}
	if aud.Count() != 0 {
		t.Fatalf("clean mutations produced %d violations", aud.Count())
	}
}

// TestSampledModeStrides checks the cheap mode audits every
// DefaultStride-th mutation instead of all of them.
func TestSampledModeStrides(t *testing.T) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := route.NewAllocator(rack, nil)
	aud := Attach(a, Sampled)
	for i := 0; i < 2*DefaultStride; i++ {
		c, err := a.Establish(route.Request{A: 0, B: 5, Width: 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		a.Release(c)
	}
	if aud.Mutations() != 4*DefaultStride {
		t.Fatalf("observed %d mutations, want %d", aud.Mutations(), 4*DefaultStride)
	}
	if aud.Audits() != 4 {
		t.Fatalf("sampled mode ran %d audits over %d mutations, want 4", aud.Audits(), 4*DefaultStride)
	}
}

// TestRegistryAndModeStrings pins the documented surface: six named,
// documented invariants and printable modes.
func TestRegistryAndModeStrings(t *testing.T) {
	if len(Registry()) != 6 {
		t.Fatalf("registry has %d invariants, want 6", len(Registry()))
	}
	seen := map[string]bool{}
	for _, inv := range Registry() {
		if inv.Name == "" || inv.Doc == "" || inv.Check == nil {
			t.Fatalf("invariant %+v incompletely registered", inv)
		}
		if seen[inv.Name] {
			t.Fatalf("duplicate invariant name %q", inv.Name)
		}
		seen[inv.Name] = true
	}
	for m, want := range map[Mode]string{Off: "off", Sampled: "sampled", Paranoid: "paranoid", Mode(9): "Mode(9)"} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestDefaultModeRoundTrip covers the process-wide switch core
// consults when building fabrics.
func TestDefaultModeRoundTrip(t *testing.T) {
	prev := SetDefaultMode(Paranoid)
	defer SetDefaultMode(prev)
	if DefaultMode() != Paranoid {
		t.Fatal("default mode did not stick")
	}
}
