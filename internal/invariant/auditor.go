package invariant

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lightpath/internal/route"
)

// DefaultStride is how many mutations a Sampled auditor lets pass
// between full audits.
const DefaultStride = 16

// maxRecorded bounds the violations an auditor retains verbatim; the
// count keeps climbing past it so a runaway defect cannot exhaust
// memory with repeated reports.
const maxRecorded = 64

// Auditor runs the invariant registry against one allocator. It is
// attached through the allocator's audit hook, so it observes every
// completed top-level mutation; it may also be invoked directly via
// Audit after mutations that bypass the allocator (hardware repairs).
// An Auditor is not safe for concurrent use — like the allocator it
// watches, it belongs to a single trial.
type Auditor struct {
	alloc     *route.Allocator
	mode      Mode
	stride    int
	mutations int
	audits    int
	count     int
	recorded  []Violation
	// ctx is the audit loop's reusable working storage; a clean pass
	// over a warm auditor allocates nothing.
	ctx checkCtx
}

// Attach builds an auditor in the given mode and registers it as the
// allocator's audit hook (except in Off mode, which leaves the hook
// untouched so the hot path stays a nil check).
func Attach(a *route.Allocator, mode Mode) *Auditor {
	d := &Auditor{alloc: a, mode: mode, stride: DefaultStride}
	if mode != Off {
		a.SetAuditHook(d.Mutated)
	}
	return d
}

// Mutated notes one completed top-level mutation and, depending on
// the mode, runs the registry. It is the function Attach installs as
// the allocator's audit hook; callers that mutate hardware behind the
// allocator's back (repair crews) invoke it directly with their own
// operation name.
func (d *Auditor) Mutated(op string) {
	d.mutations++
	switch d.mode {
	case Paranoid:
	case Sampled:
		if d.mutations%d.stride != 0 {
			return
		}
	default:
		return
	}
	d.run(op)
}

// Audit runs the full registry immediately, regardless of mode, and
// returns the violations found by this pass.
func (d *Auditor) Audit(op string) []Violation { return d.run(op) }

func (d *Auditor) run(op string) []Violation {
	d.audits++
	var fresh []Violation
	d.ctx.load(d.alloc)
	for i, inv := range registry {
		for _, detail := range checks[i](d.alloc, &d.ctx) {
			fresh = append(fresh, Violation{Invariant: inv.Name, Op: op, Detail: detail})
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	d.count += len(fresh)
	if room := maxRecorded - len(d.recorded); room > 0 {
		n := len(fresh)
		if n > room {
			n = room
		}
		d.recorded = append(d.recorded, fresh[:n]...)
	}
	recordGlobal(fresh)
	return fresh
}

// Count returns the total violations found over the auditor's life.
func (d *Auditor) Count() int { return d.count }

// Audits returns how many full registry passes have run.
func (d *Auditor) Audits() int { return d.audits }

// Mutations returns how many top-level mutations the auditor has
// observed.
func (d *Auditor) Mutations() int { return d.mutations }

// Violations returns a copy of the retained violations (at most
// maxRecorded; Count reports the true total).
func (d *Auditor) Violations() []Violation {
	return append([]Violation(nil), d.recorded...)
}

// Err returns nil when the auditor has seen no violation, and
// otherwise an error wrapping ErrViolated that names the first one.
func (d *Auditor) Err() error {
	if d.count == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d violation(s), first: %s", ErrViolated, d.count, d.recorded[0])
}

// defaultMode is the process-wide mode layers like core consult when
// building fabrics; tests flip it to Paranoid in TestMain.
var defaultMode atomic.Int32

// SetDefaultMode sets the process-wide default audit mode and returns
// the previous one.
func SetDefaultMode(m Mode) Mode {
	return Mode(defaultMode.Swap(int32(m)))
}

// DefaultMode returns the process-wide default audit mode (Off unless
// something raised it).
func DefaultMode() Mode { return Mode(defaultMode.Load()) }

// The global tally aggregates violations across every auditor in the
// process, so a test binary can assert "zero violations anywhere"
// after fanning trials across goroutines.
var (
	globalMu       sync.Mutex
	globalCount    int
	globalRecorded []Violation
)

func recordGlobal(vs []Violation) {
	globalMu.Lock()
	defer globalMu.Unlock()
	globalCount += len(vs)
	if room := maxRecorded - len(globalRecorded); room > 0 {
		n := len(vs)
		if n > room {
			n = room
		}
		globalRecorded = append(globalRecorded, vs[:n]...)
	}
}

// GlobalCount returns the process-wide violation total.
func GlobalCount() int {
	globalMu.Lock()
	defer globalMu.Unlock()
	return globalCount
}

// GlobalViolations returns a copy of the retained process-wide
// violations.
func GlobalViolations() []Violation {
	globalMu.Lock()
	defer globalMu.Unlock()
	return append([]Violation(nil), globalRecorded...)
}

// ResetGlobal clears the process-wide tally; tests that provoke
// violations on purpose call it before handing control back.
func ResetGlobal() {
	globalMu.Lock()
	defer globalMu.Unlock()
	globalCount = 0
	globalRecorded = nil
}
