package invariant

import (
	"errors"
	"testing"

	"lightpath/internal/snapshot"
)

func TestAuditorStateRoundTrip(t *testing.T) {
	orig := &Auditor{
		mutations: 17,
		audits:    5,
		count:     2,
		recorded: []Violation{
			{Invariant: "fiber-occupancy", Op: "establish", Detail: "row 3 over"},
			{Invariant: "endpoint-width", Op: "release", Detail: "chip 9 negative"},
		},
	}
	var e snapshot.Encoder
	orig.EncodeState(&e)

	restored := &Auditor{}
	d := snapshot.NewDecoder(e.Bytes())
	if err := restored.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if restored.Mutations() != 17 || restored.Audits() != 5 || restored.Count() != 2 {
		t.Fatalf("counters = %d/%d/%d, want 17/5/2",
			restored.Mutations(), restored.Audits(), restored.Count())
	}
	vs := restored.Violations()
	if len(vs) != 2 || vs[0] != orig.recorded[0] || vs[1] != orig.recorded[1] {
		t.Fatalf("violations = %+v", vs)
	}
	// Err() must render identically on both sides.
	if restored.Err().Error() != orig.Err().Error() {
		t.Fatalf("Err diverges: %v vs %v", restored.Err(), orig.Err())
	}
}

func TestAuditorRestoreRejectsCountWithoutRecord(t *testing.T) {
	var e snapshot.Encoder
	e.Int(1) // mutations
	e.Int(1) // audits
	e.Int(3) // count > 0...
	e.Len(0) // ...but nothing recorded: Err() would index recorded[0]
	err := (&Auditor{}).RestoreState(snapshot.NewDecoder(e.Bytes()))
	if !errors.Is(err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}
