// Package invariant is a cross-layer runtime auditor for the shared
// optical state of a rack: it re-derives, from first principles, what
// the wafer hardware occupancy, the route allocator's mirrors, and the
// established circuit table must agree on, and reports structured
// Violations when they do not. The checks are the executable form of
// DESIGN.md's disjointness and conservation invariants — no
// double-booked lasers, waveguide buses or fiber lanes; endpoint
// reservations balancing the sum of circuit widths; every active
// circuit within its loss budget and traversing only healthy
// components; switch programming consistent with circuit segments.
//
// The auditor attaches to a route.Allocator via its audit hook and
// runs after every completed top-level mutation (Paranoid mode) or
// every few mutations (Sampled mode). It never panics and never
// mutates the state it audits: violations are recorded on the auditor
// (and tallied globally for test harnesses) so the simulation can
// keep running while the defect is reported.
package invariant

import (
	"errors"
	"fmt"
	"sort"

	"lightpath/internal/phy"
	"lightpath/internal/route"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// ErrViolated is the sentinel wrapped by every error the auditor
// surfaces; errors.Is(err, ErrViolated) identifies invariant failures
// from cmd/ down.
var ErrViolated = errors.New("invariant: state invariant violated")

// Mode selects how often an attached auditor runs the full registry.
type Mode int

// Audit modes.
const (
	// Off disables auditing entirely; the hook is not even attached.
	Off Mode = iota
	// Sampled audits every DefaultStride-th mutation — cheap enough
	// for hot paths while still catching persistent corruption.
	Sampled
	// Paranoid audits after every completed top-level mutation
	// (Establish, Release, ApplyFault, Reestablish, fiber-row
	// fail/restore). All tests run in this mode, except that
	// cmd/lightpath-sim's full-scale campaign replays drop to Sampled
	// under -race to stay inside the race detector's time budget.
	Paranoid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Sampled:
		return "sampled"
	case Paranoid:
		return "paranoid"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Violation is one structured invariant failure: which registered
// invariant broke, after which mutation, and a human-readable detail
// naming the offending component or circuit.
type Violation struct {
	Invariant string
	Op        string
	Detail    string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	if v.Op == "" {
		return v.Invariant + ": " + v.Detail
	}
	return fmt.Sprintf("%s (after %s): %s", v.Invariant, v.Op, v.Detail)
}

// Invariant is one registered cross-layer check. Check returns a
// detail string per failure; the auditor stamps the invariant name
// and triggering operation onto the resulting Violations.
type Invariant struct {
	// Name is the stable identifier used in Violations and DESIGN.md.
	Name string
	// Doc states what must hold, in one sentence.
	Doc string
	// Check audits a consistent (not mid-mutation) allocator.
	Check func(a *route.Allocator) []string
}

// registry is ordered from structural to semantic checks; it is
// immutable after init. Each public Check builds a private scratch
// context per call; the Auditor's audit loop shares one context
// across checks and audits instead (see checks and Auditor.run).
var registry = []Invariant{
	{
		Name:  "circuit-disjointness",
		Doc:   "established circuits have positive width and share no bus segment or fiber pairwise",
		Check: standalone(checkDisjointness),
	},
	{
		Name:  "bus-conservation",
		Doc:   "every circuit segment's exact span is allocated on its bus, and the rack's allocated span count equals the circuits' segment count",
		Check: standalone(checkBusConservation),
	},
	{
		Name:  "fiber-conservation",
		Doc:   "every circuit fiber is occupied in the rack, the rack's occupied-fiber count equals the circuits' fiber count, and the allocator's per-row mirror matches",
		Check: standalone(checkFiberConservation),
	},
	{
		Name:  "endpoint-conservation",
		Doc:   "each tile's reserved lasers and SerDes ports equal the sum of circuit widths and endpoint count terminating there, and never exceed capacity",
		Check: standalone(checkEndpointConservation),
	},
	{
		Name:  "budget-health",
		Doc:   "active circuits terminate at healthy chips, cross no severed span or failed fiber row, settle one reconfiguration latency after establishment, and (when budget checking is on) still close their optical budget",
		Check: standalone(checkBudgetHealth),
	},
	{
		Name:  "switch-consistency",
		Doc:   "the hardware switch ports match the programming each circuit's segments require (endpoint switch 0 to port 0, turn switch 1 to port 1)",
		Check: standalone(checkSwitchConsistency),
	},
}

// checks mirrors registry order with the scratch-context check
// functions the Auditor calls directly.
var checks = []func(a *route.Allocator, ctx *checkCtx) []string{
	checkDisjointness,
	checkBusConservation,
	checkFiberConservation,
	checkEndpointConservation,
	checkBudgetHealth,
	checkSwitchConsistency,
}

// Registry returns the registered invariants in audit order. The
// returned slice is shared; callers must not modify it.
func Registry() []Invariant { return registry }

// checkCtx is the reusable working storage of one audit pass: the
// sorted circuit list every check walks, plus per-check sort and
// tally buffers. An attached Auditor keeps one across audits so the
// steady-state audit loop stops allocating; the public registry
// builds a throwaway one per Check call.
type checkCtx struct {
	circuits []*route.Circuit
	switches []route.SwitchExpectation
	segs     []segOwner
	fibs     []fibOwner
	perRow   []int
	lasers   []int
	ports    []int
}

// load refreshes the sorted circuit list from the allocator.
func (ctx *checkCtx) load(a *route.Allocator) {
	ctx.circuits = a.AppendCircuits(ctx.circuits[:0])
}

// standalone adapts a scratch-context check to the public Check
// signature, building a fresh context per call.
func standalone(check func(a *route.Allocator, ctx *checkCtx) []string) func(a *route.Allocator) []string {
	return func(a *route.Allocator) []string {
		var ctx checkCtx
		ctx.load(a)
		return check(a, &ctx)
	}
}

// segOwner tags a circuit's segment with its owner for the
// disjointness sweep.
type segOwner struct {
	seg route.Segment
	id  int
}

type segsByBus []segOwner

func (s segsByBus) Len() int { return len(s) }
func (s segsByBus) Less(i, j int) bool {
	a, b := s[i].seg, s[j].seg
	if a.Wafer != b.Wafer {
		return a.Wafer < b.Wafer
	}
	if a.Ref.Orient != b.Ref.Orient {
		return a.Ref.Orient < b.Ref.Orient
	}
	if a.Ref.Lane != b.Ref.Lane {
		return a.Ref.Lane < b.Ref.Lane
	}
	if a.Ref.Bus != b.Ref.Bus {
		return a.Ref.Bus < b.Ref.Bus
	}
	if a.Ref.Span.Lo != b.Ref.Span.Lo {
		return a.Ref.Span.Lo < b.Ref.Span.Lo
	}
	return s[i].id < s[j].id
}
func (s segsByBus) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

func sameBus(a, b route.Segment) bool {
	return a.Wafer == b.Wafer && a.Ref.Orient == b.Ref.Orient &&
		a.Ref.Lane == b.Ref.Lane && a.Ref.Bus == b.Ref.Bus
}

// fibOwner tags a circuit's fiber with its owner for the sweep.
type fibOwner struct {
	fib wafer.FiberRef
	id  int
}

type fibsByRef []fibOwner

func (s fibsByRef) Len() int { return len(s) }
func (s fibsByRef) Less(i, j int) bool {
	a, b := s[i].fib, s[j].fib
	if a.Trunk != b.Trunk {
		return a.Trunk < b.Trunk
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	if a.Fiber != b.Fiber {
		return a.Fiber < b.Fiber
	}
	return s[i].id < s[j].id
}
func (s fibsByRef) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

func sharePair(out []string, a, b int) []string {
	if b < a {
		a, b = b, a
	}
	return append(out, fmt.Sprintf("circuits %d and %d share a bus segment or fiber", a, b))
}

// checkDisjointness verifies pairwise resource disjointness with one
// sort-and-sweep pass per resource class instead of the former O(n²)
// SharesResources walk: segments sorted by bus then span, adjacent
// spans on the same bus checked for overlap against the running
// farthest-reaching earlier span; fibers sorted and checked for
// adjacent duplicates.
func checkDisjointness(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	ctx.segs = ctx.segs[:0]
	ctx.fibs = ctx.fibs[:0]
	for _, c := range ctx.circuits {
		if c.Width < 1 {
			out = append(out, fmt.Sprintf("circuit %d has non-positive width %d", c.ID, c.Width))
		}
		for _, s := range c.Segments {
			ctx.segs = append(ctx.segs, segOwner{seg: s, id: c.ID})
		}
		for _, f := range c.Fibers {
			ctx.fibs = append(ctx.fibs, fibOwner{fib: f, id: c.ID})
		}
	}
	sort.Sort(segsByBus(ctx.segs))
	// reach is the earlier same-bus segment extending farthest right;
	// any later segment starting at or before reach.Hi overlaps it.
	var reach segOwner
	for i, so := range ctx.segs {
		if i == 0 || !sameBus(reach.seg, so.seg) {
			reach = so
			continue
		}
		if so.seg.Ref.Span.Lo <= reach.seg.Ref.Span.Hi && so.id != reach.id {
			out = sharePair(out, reach.id, so.id)
		}
		if so.seg.Ref.Span.Hi > reach.seg.Ref.Span.Hi {
			reach = so
		}
	}
	sort.Sort(fibsByRef(ctx.fibs))
	for i := 1; i < len(ctx.fibs); i++ {
		prev, cur := ctx.fibs[i-1], ctx.fibs[i]
		if prev.fib == cur.fib && prev.id != cur.id {
			out = sharePair(out, prev.id, cur.id)
		}
	}
	return out
}

func checkBusConservation(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	rack := a.Rack()
	segments := 0
	for _, c := range ctx.circuits {
		segments += len(c.Segments)
		for _, s := range c.Segments {
			if !rack.Wafer(s.Wafer).BusSpanAllocated(s.Ref) {
				out = append(out, fmt.Sprintf("circuit %d segment %v is not allocated in the lane occupancy", c.ID, s))
			}
		}
	}
	allocated := 0
	for w := 0; w < rack.NumWafers(); w++ {
		allocated += rack.Wafer(w).AllocatedSpans()
	}
	if allocated != segments {
		out = append(out, fmt.Sprintf("rack holds %d allocated bus spans but circuits account for %d (leak or double free)", allocated, segments))
	}
	return out
}

// grownZeroed returns buf resized to n with every element zero.
func grownZeroed(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func checkFiberConservation(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	rack := a.Rack()
	cfg := rack.Config()
	rows := cfg.Rows
	ctx.perRow = grownZeroed(ctx.perRow, rack.NumTrunks()*rows)
	fibers := 0
	for _, c := range ctx.circuits {
		fibers += len(c.Fibers)
		for _, f := range c.Fibers {
			if !rack.FiberAllocated(f) {
				out = append(out, fmt.Sprintf("circuit %d fiber %v is not occupied in the rack", c.ID, f))
			}
			if f.Trunk >= 0 && f.Trunk < rack.NumTrunks() && f.Row >= 0 && f.Row < rows {
				ctx.perRow[f.Trunk*rows+f.Row]++
			}
		}
	}
	if used := rack.FibersInUse(); used != fibers {
		out = append(out, fmt.Sprintf("rack holds %d occupied fibers but circuits account for %d (leak or double free)", used, fibers))
	}
	for trunk := 0; trunk < rack.NumTrunks(); trunk++ {
		for row := 0; row < rows; row++ {
			if got, want := a.FiberRowUsage(trunk, row), ctx.perRow[trunk*rows+row]; got != want {
				out = append(out, fmt.Sprintf("allocator mirror says trunk %d row %d uses %d fibers, circuits use %d", trunk, row, got, want))
			}
		}
	}
	return out
}

func checkEndpointConservation(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	rack := a.Rack()
	chips := rack.NumChips()
	ctx.lasers = grownZeroed(ctx.lasers, chips)
	ctx.ports = grownZeroed(ctx.ports, chips)
	for _, c := range ctx.circuits {
		for _, ep := range [2]int{c.A, c.B} {
			if ep >= 0 && ep < chips {
				ctx.lasers[ep] += c.Width
				ctx.ports[ep]++
			}
		}
	}
	for chip := 0; chip < chips; chip++ {
		t := rack.TileOf(chip)
		if got := t.UsedLasers(); got != ctx.lasers[chip] {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) reserves %d lasers but circuit widths sum to %d", chip, t.Row, t.Col, got, ctx.lasers[chip]))
		}
		if got := t.UsedPorts(); got != ctx.ports[chip] {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) reserves %d SerDes ports but %d circuits terminate there", chip, t.Row, t.Col, got, ctx.ports[chip]))
		}
		if t.FreeLasers() < 0 {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) is over-committed: %d free lasers", chip, t.Row, t.Col, t.FreeLasers()))
		}
		if t.FreePorts() < 0 {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) is over-committed: %d free SerDes ports", chip, t.Row, t.Col, t.FreePorts()))
		}
	}
	return out
}

func checkBudgetHealth(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	rack := a.Rack()
	for _, c := range ctx.circuits {
		for _, ep := range [2]int{c.A, c.B} {
			if !rack.TileOf(ep).ChipHealthy() {
				out = append(out, fmt.Sprintf("circuit %d terminates at failed chip %d", c.ID, ep))
			}
		}
		for _, s := range c.Segments {
			if rack.Wafer(s.Wafer).SpanSevered(s.Ref.Orient, s.Ref.Lane, s.Ref.Span) {
				out = append(out, fmt.Sprintf("circuit %d crosses severed segment %v", c.ID, s))
			}
		}
		for _, f := range c.Fibers {
			if a.RowFailed(f.Trunk, f.Row) {
				out = append(out, fmt.Sprintf("circuit %d uses cut fiber row (trunk %d, row %d)", c.ID, f.Trunk, f.Row))
			}
		}
		if !unit.ApproxEqual(c.ReadyAt, c.EstablishedAt+phy.ReconfigLatency) {
			out = append(out, fmt.Sprintf("circuit %d ready at %v, not one reconfiguration latency after %v", c.ID, c.ReadyAt, c.EstablishedAt))
		}
		// Without budget checking the allocator legitimately admits
		// margin-negative circuits, so feasibility is only an invariant
		// when the allocator itself enforces it.
		if a.CheckBudget && !a.StillFeasible(c) {
			out = append(out, fmt.Sprintf("circuit %d no longer closes its optical budget (margin %v, degradation since establish exceeds it)", c.ID, c.Link.MarginDB))
		}
	}
	return out
}

func checkSwitchConsistency(a *route.Allocator, ctx *checkCtx) []string {
	var out []string
	for _, c := range ctx.circuits {
		ctx.switches = a.AppendCircuitSwitches(ctx.switches[:0], c)
		for _, se := range ctx.switches {
			if got := se.Tile.Switches[se.Switch].Port(); got != se.Port {
				out = append(out, fmt.Sprintf("circuit %d needs tile (%d,%d) switch %d on port %d, hardware says port %d",
					c.ID, se.Tile.Row, se.Tile.Col, se.Switch, se.Port, got))
			}
		}
	}
	return out
}
