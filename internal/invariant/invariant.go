// Package invariant is a cross-layer runtime auditor for the shared
// optical state of a rack: it re-derives, from first principles, what
// the wafer hardware occupancy, the route allocator's mirrors, and the
// established circuit table must agree on, and reports structured
// Violations when they do not. The checks are the executable form of
// DESIGN.md's disjointness and conservation invariants — no
// double-booked lasers, waveguide buses or fiber lanes; endpoint
// reservations balancing the sum of circuit widths; every active
// circuit within its loss budget and traversing only healthy
// components; switch programming consistent with circuit segments.
//
// The auditor attaches to a route.Allocator via its audit hook and
// runs after every completed top-level mutation (Paranoid mode) or
// every few mutations (Sampled mode). It never panics and never
// mutates the state it audits: violations are recorded on the auditor
// (and tallied globally for test harnesses) so the simulation can
// keep running while the defect is reported.
package invariant

import (
	"errors"
	"fmt"

	"lightpath/internal/phy"
	"lightpath/internal/route"
	"lightpath/internal/unit"
)

// ErrViolated is the sentinel wrapped by every error the auditor
// surfaces; errors.Is(err, ErrViolated) identifies invariant failures
// from cmd/ down.
var ErrViolated = errors.New("invariant: state invariant violated")

// Mode selects how often an attached auditor runs the full registry.
type Mode int

// Audit modes.
const (
	// Off disables auditing entirely; the hook is not even attached.
	Off Mode = iota
	// Sampled audits every DefaultStride-th mutation — cheap enough
	// for hot paths while still catching persistent corruption.
	Sampled
	// Paranoid audits after every completed top-level mutation
	// (Establish, Release, ApplyFault, Reestablish, fiber-row
	// fail/restore). All tests run in this mode, except that
	// cmd/lightpath-sim's full-scale campaign replays drop to Sampled
	// under -race to stay inside the race detector's time budget.
	Paranoid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Sampled:
		return "sampled"
	case Paranoid:
		return "paranoid"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Violation is one structured invariant failure: which registered
// invariant broke, after which mutation, and a human-readable detail
// naming the offending component or circuit.
type Violation struct {
	Invariant string
	Op        string
	Detail    string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	if v.Op == "" {
		return v.Invariant + ": " + v.Detail
	}
	return fmt.Sprintf("%s (after %s): %s", v.Invariant, v.Op, v.Detail)
}

// Invariant is one registered cross-layer check. Check returns a
// detail string per failure; the auditor stamps the invariant name
// and triggering operation onto the resulting Violations.
type Invariant struct {
	// Name is the stable identifier used in Violations and DESIGN.md.
	Name string
	// Doc states what must hold, in one sentence.
	Doc string
	// Check audits a consistent (not mid-mutation) allocator.
	Check func(a *route.Allocator) []string
}

// registry is ordered from structural to semantic checks; it is
// immutable after init.
var registry = []Invariant{
	{
		Name:  "circuit-disjointness",
		Doc:   "established circuits have positive width and share no bus segment or fiber pairwise",
		Check: checkDisjointness,
	},
	{
		Name:  "bus-conservation",
		Doc:   "every circuit segment's exact span is allocated on its bus, and the rack's allocated span count equals the circuits' segment count",
		Check: checkBusConservation,
	},
	{
		Name:  "fiber-conservation",
		Doc:   "every circuit fiber is occupied in the rack, the rack's occupied-fiber count equals the circuits' fiber count, and the allocator's per-row mirror matches",
		Check: checkFiberConservation,
	},
	{
		Name:  "endpoint-conservation",
		Doc:   "each tile's reserved lasers and SerDes ports equal the sum of circuit widths and endpoint count terminating there, and never exceed capacity",
		Check: checkEndpointConservation,
	},
	{
		Name:  "budget-health",
		Doc:   "active circuits terminate at healthy chips, cross no severed span or failed fiber row, settle one reconfiguration latency after establishment, and (when budget checking is on) still close their optical budget",
		Check: checkBudgetHealth,
	},
	{
		Name:  "switch-consistency",
		Doc:   "the hardware switch ports match the programming each circuit's segments require (endpoint switch 0 to port 0, turn switch 1 to port 1)",
		Check: checkSwitchConsistency,
	},
}

// Registry returns the registered invariants in audit order. The
// returned slice is shared; callers must not modify it.
func Registry() []Invariant { return registry }

func checkDisjointness(a *route.Allocator) []string {
	var out []string
	cs := a.Circuits()
	for i, c := range cs {
		if c.Width < 1 {
			out = append(out, fmt.Sprintf("circuit %d has non-positive width %d", c.ID, c.Width))
		}
		for _, o := range cs[i+1:] {
			if c.SharesResources(o) {
				out = append(out, fmt.Sprintf("circuits %d and %d share a bus segment or fiber", c.ID, o.ID))
			}
		}
	}
	return out
}

func checkBusConservation(a *route.Allocator) []string {
	var out []string
	rack := a.Rack()
	segments := 0
	for _, c := range a.Circuits() {
		segments += len(c.Segments)
		for _, s := range c.Segments {
			if !rack.Wafer(s.Wafer).BusSpanAllocated(s.Ref) {
				out = append(out, fmt.Sprintf("circuit %d segment %v is not allocated in the lane occupancy", c.ID, s))
			}
		}
	}
	allocated := 0
	for w := 0; w < rack.NumWafers(); w++ {
		allocated += rack.Wafer(w).AllocatedSpans()
	}
	if allocated != segments {
		out = append(out, fmt.Sprintf("rack holds %d allocated bus spans but circuits account for %d (leak or double free)", allocated, segments))
	}
	return out
}

func checkFiberConservation(a *route.Allocator) []string {
	var out []string
	rack := a.Rack()
	cfg := rack.Config()
	fibers := 0
	perRow := make(map[[2]int]int)
	for _, c := range a.Circuits() {
		fibers += len(c.Fibers)
		for _, f := range c.Fibers {
			if !rack.FiberAllocated(f) {
				out = append(out, fmt.Sprintf("circuit %d fiber %v is not occupied in the rack", c.ID, f))
			}
			perRow[[2]int{f.Trunk, f.Row}]++
		}
	}
	if used := rack.FibersInUse(); used != fibers {
		out = append(out, fmt.Sprintf("rack holds %d occupied fibers but circuits account for %d (leak or double free)", used, fibers))
	}
	for trunk := 0; trunk < rack.NumTrunks(); trunk++ {
		for row := 0; row < cfg.Rows; row++ {
			if got, want := a.FiberRowUsage(trunk, row), perRow[[2]int{trunk, row}]; got != want {
				out = append(out, fmt.Sprintf("allocator mirror says trunk %d row %d uses %d fibers, circuits use %d", trunk, row, got, want))
			}
		}
	}
	return out
}

func checkEndpointConservation(a *route.Allocator) []string {
	var out []string
	rack := a.Rack()
	type epUse struct{ lasers, ports int }
	use := make(map[int]epUse)
	for _, c := range a.Circuits() {
		for _, ep := range [2]int{c.A, c.B} {
			u := use[ep]
			u.lasers += c.Width
			u.ports++
			use[ep] = u
		}
	}
	for chip := 0; chip < rack.NumChips(); chip++ {
		t := rack.TileOf(chip)
		want := use[chip]
		if got := t.UsedLasers(); got != want.lasers {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) reserves %d lasers but circuit widths sum to %d", chip, t.Row, t.Col, got, want.lasers))
		}
		if got := t.UsedPorts(); got != want.ports {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) reserves %d SerDes ports but %d circuits terminate there", chip, t.Row, t.Col, got, want.ports))
		}
		if t.FreeLasers() < 0 {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) is over-committed: %d free lasers", chip, t.Row, t.Col, t.FreeLasers()))
		}
		if t.FreePorts() < 0 {
			out = append(out, fmt.Sprintf("chip %d tile (%d,%d) is over-committed: %d free SerDes ports", chip, t.Row, t.Col, t.FreePorts()))
		}
	}
	return out
}

func checkBudgetHealth(a *route.Allocator) []string {
	var out []string
	rack := a.Rack()
	for _, c := range a.Circuits() {
		for _, ep := range [2]int{c.A, c.B} {
			if !rack.TileOf(ep).ChipHealthy() {
				out = append(out, fmt.Sprintf("circuit %d terminates at failed chip %d", c.ID, ep))
			}
		}
		for _, s := range c.Segments {
			if rack.Wafer(s.Wafer).SpanSevered(s.Ref.Orient, s.Ref.Lane, s.Ref.Span) {
				out = append(out, fmt.Sprintf("circuit %d crosses severed segment %v", c.ID, s))
			}
		}
		for _, f := range c.Fibers {
			if a.RowFailed(f.Trunk, f.Row) {
				out = append(out, fmt.Sprintf("circuit %d uses cut fiber row (trunk %d, row %d)", c.ID, f.Trunk, f.Row))
			}
		}
		if !unit.ApproxEqual(c.ReadyAt, c.EstablishedAt+phy.ReconfigLatency) {
			out = append(out, fmt.Sprintf("circuit %d ready at %v, not one reconfiguration latency after %v", c.ID, c.ReadyAt, c.EstablishedAt))
		}
		// Without budget checking the allocator legitimately admits
		// margin-negative circuits, so feasibility is only an invariant
		// when the allocator itself enforces it.
		if a.CheckBudget && !a.StillFeasible(c) {
			out = append(out, fmt.Sprintf("circuit %d no longer closes its optical budget (margin %v, degradation since establish exceeds it)", c.ID, c.Link.MarginDB))
		}
	}
	return out
}

func checkSwitchConsistency(a *route.Allocator) []string {
	var out []string
	for _, c := range a.Circuits() {
		for _, se := range a.CircuitSwitches(c) {
			if got := se.Tile.Switches[se.Switch].Port(); got != se.Port {
				out = append(out, fmt.Sprintf("circuit %d needs tile (%d,%d) switch %d on port %d, hardware says port %d",
					c.ID, se.Tile.Row, se.Tile.Col, se.Switch, se.Port, got))
			}
		}
	}
	return out
}
