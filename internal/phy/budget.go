package phy

import (
	"fmt"
	"math"

	"lightpath/internal/unit"
)

// This file computes optical link budgets: given a circuit's loss
// elements, a laser launch power, and a receiver sensitivity, is the
// link feasible, with how much margin, and at what estimated BER? The
// paper's §3 argument is that the measured 0.25 dB crossing loss makes
// routing "within the same active silicon device layer" feasible — the
// budget quantifies exactly that.

// Budget describes the endpoints of an optical link.
type Budget struct {
	// LaunchPower is the laser output power coupled into the
	// transmitter, per wavelength.
	LaunchPower unit.DBm

	// ReceiverSensitivity is the minimum received power for the target
	// BER at the photodetector.
	ReceiverSensitivity unit.DBm

	// Margin is the additional engineering margin required on top of
	// the sensitivity.
	Margin unit.Decibel
}

// DefaultBudget is a representative silicon-photonics budget: 10 dBm
// per-wavelength launch, -17 dBm sensitivity at 224 Gbps (PAM4-class
// receiver), 3 dB margin.
func DefaultBudget() Budget {
	return Budget{
		LaunchPower:         10,
		ReceiverSensitivity: -17,
		Margin:              3,
	}
}

// LinkReport is the result of evaluating a circuit against a budget.
type LinkReport struct {
	TotalLossDB   unit.Decibel
	ReceivedPower unit.DBm
	// MarginDB is the power above (positive) or below (negative) the
	// sensitivity-plus-margin floor.
	MarginDB unit.Decibel
	Feasible bool
	// BER is the estimated bit error rate at the received power.
	BER float64
	// ByKind breaks the loss down per element kind. It is a value
	// (array, not map): copying a LinkReport copies the breakdown,
	// and kinds that contributed nothing read as zero.
	ByKind LossBreakdown
}

// String summarizes the report in one line.
func (r LinkReport) String() string {
	status := "INFEASIBLE"
	if r.Feasible {
		status = "feasible"
	}
	return fmt.Sprintf("loss=%.2fdB rx=%.2fdBm margin=%.2fdB ber=%.2e %s",
		float64(r.TotalLossDB), float64(r.ReceivedPower), float64(r.MarginDB), r.BER, status)
}

// Evaluate computes the link report for a circuit's loss elements.
func (b Budget) Evaluate(elements []LossElement) LinkReport {
	total := TotalLossDB(elements)
	rx := b.LaunchPower.Sub(total)
	floor := b.ReceiverSensitivity + unit.DBm(b.Margin)
	margin := unit.Decibel(rx - floor)
	return LinkReport{
		TotalLossDB:   total,
		ReceivedPower: rx,
		MarginDB:      margin,
		Feasible:      margin >= 0,
		BER:           BERForReceivedPower(rx, b.ReceiverSensitivity),
		ByKind:        LossByKind(elements),
	}
}

// MaxCrossings returns the largest number of 0.25 dB crossings a link
// can absorb on top of the given fixed loss while remaining feasible.
// This is the §3 feasibility argument made quantitative: low-loss
// crossings are what allow circuits to traverse many tiles in the
// same device layer.
func (b Budget) MaxCrossings(fixed unit.Decibel, crossingDB unit.Decibel) int {
	if crossingDB <= 0 {
		panic("phy: MaxCrossings with non-positive crossing loss")
	}
	available := unit.Decibel(b.LaunchPower-b.ReceiverSensitivity) - b.Margin - fixed
	if available < 0 {
		return 0
	}
	return int(float64(available / crossingDB))
}

// BERForReceivedPower estimates the bit error rate of an on-off-keyed
// receiver given the received power and the power at which the receiver
// achieves its reference BER of 1e-12 (its "sensitivity").
//
// The model assumes thermal-noise-limited detection, where the Q factor
// scales linearly with received optical power: Q = Qref * P/Pref, with
// Qref ~= 7 at BER 1e-12. BER = 0.5 * erfc(Q / sqrt(2)).
func BERForReceivedPower(rx, sensitivity unit.DBm) float64 {
	const qRef = 7.034 // Q at BER 1e-12
	ratio := rx.Milliwatts() / sensitivity.Milliwatts()
	q := qRef * ratio
	return 0.5 * math.Erfc(q/math.Sqrt2)
}

// WavelengthCapacity is the paper's measured per-wavelength data rate:
// "One wavelength can sustain up to 224 Gbps bandwidth".
const WavelengthCapacity = 224 * unit.Gbps

// ExtinctionPenaltyDB returns the power penalty of a finite
// transmitter/switch extinction ratio for on-off keying: with
// extinction r (linear power ratio of "one" to residual "zero"), the
// eye closes by a factor (r-1)/(r+1), costing
// -10 log10((r-1)/(r+1)) dB of effective receiver sensitivity. An
// ideal infinite extinction costs 0 dB; 10 dB extinction costs
// ~0.87 dB. It panics for extinction <= 1 (no eye at all).
func ExtinctionPenaltyDB(extinction unit.Decibel) unit.Decibel {
	r := extinction.Linear()
	if r <= 1 {
		panic("phy: extinction ratio must exceed 1 (0 dB)")
	}
	return unit.FromLinear((r + 1) / (r - 1))
}

// BERWithExtinction estimates OOK BER including the extinction
// penalty of the cascaded MZI switches: the received power is
// derated by ExtinctionPenaltyDB before the thermal-noise Q model.
func BERWithExtinction(rx, sensitivity unit.DBm, extinction unit.Decibel) float64 {
	return BERForReceivedPower(rx.Sub(ExtinctionPenaltyDB(extinction)), sensitivity)
}

// WaterfallPoint is one point of a BER-versus-received-power curve.
type WaterfallPoint struct {
	Rx  unit.DBm
	BER float64
}

// Waterfall evaluates the receiver's BER over a received-power range
// — the standard "waterfall" curve used to validate a link budget.
// It panics if step is not positive or the range is inverted.
func Waterfall(sensitivity unit.DBm, from, to unit.DBm, step unit.Decibel) []WaterfallPoint {
	if step <= 0 {
		panic("phy: waterfall with non-positive step")
	}
	if to < from {
		panic("phy: waterfall with inverted range")
	}
	var out []WaterfallPoint
	for rx := from; rx <= to+1e-9; rx += unit.DBm(step) {
		out = append(out, WaterfallPoint{Rx: rx, BER: BERForReceivedPower(rx, sensitivity)})
	}
	return out
}
