package phy

import (
	"math"
	"strings"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func TestDefaultBudgetEvaluateFeasible(t *testing.T) {
	b := DefaultBudget()
	m := NewLossModel(nil)
	// A short intra-wafer circuit: two couplings, 4 MZIs, 6 crossings,
	// 4 cm of waveguide, one stitch.
	elems := []LossElement{
		m.Coupling(), m.Coupling(),
		m.MZIPass(), m.MZIPass(), m.MZIPass(), m.MZIPass(),
		m.Crossing(), m.Crossing(), m.Crossing(), m.Crossing(), m.Crossing(), m.Crossing(),
		m.Propagation(4 * unit.Centimeter),
		m.Stitch(),
	}
	rep := b.Evaluate(elems)
	if !rep.Feasible {
		t.Fatalf("typical intra-wafer circuit infeasible: %v", rep)
	}
	if rep.BER > 1e-12 {
		t.Fatalf("BER = %v, want <= 1e-12 at positive margin", rep.BER)
	}
	wantLoss := 2*1.5 + 4*0.5 + 6*0.25 + 4*0.1 + 0.25
	if math.Abs(float64(rep.TotalLossDB)-wantLoss) > 1e-9 {
		t.Fatalf("total loss = %v, want %v", rep.TotalLossDB, wantLoss)
	}
}

func TestEvaluateInfeasibleWhenLossExceedsBudget(t *testing.T) {
	b := DefaultBudget()
	m := NewLossModel(nil)
	var elems []LossElement
	for i := 0; i < 200; i++ { // 50 dB of crossings
		elems = append(elems, m.Crossing())
	}
	rep := b.Evaluate(elems)
	if rep.Feasible {
		t.Fatalf("50dB loss circuit reported feasible: %v", rep)
	}
	if rep.MarginDB >= 0 {
		t.Fatalf("margin = %v, want negative", rep.MarginDB)
	}
	if !strings.Contains(rep.String(), "INFEASIBLE") {
		t.Fatalf("report string = %q, want INFEASIBLE marker", rep.String())
	}
}

func TestMaxCrossings(t *testing.T) {
	b := DefaultBudget()
	// Budget: 10 - (-17) - 3 = 24 dB. With 4 dB fixed, 20 dB remain:
	// 80 crossings at 0.25 dB.
	if got := b.MaxCrossings(4, CrossingLossDB); got != 80 {
		t.Fatalf("MaxCrossings = %d, want 80", got)
	}
	// No headroom at all.
	if got := b.MaxCrossings(24, CrossingLossDB); got != 0 {
		t.Fatalf("MaxCrossings at zero headroom = %d, want 0", got)
	}
	if got := b.MaxCrossings(100, CrossingLossDB); got != 0 {
		t.Fatalf("MaxCrossings with negative headroom = %d, want 0", got)
	}
}

func TestMaxCrossingsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxCrossings with zero crossing loss did not panic")
		}
	}()
	DefaultBudget().MaxCrossings(0, 0)
}

// TestCrossTileRoutingFeasible captures the paper's §3 claim: "The
// low-loss (0.25dB) optical crossings enable routing within the same
// active silicon device layer." A circuit crossing the full 8-tile
// width of a wafer (tens of crossings, two stitch boundaries, like the
// A-to-B example crossing two tile boundaries) must close the budget.
func TestCrossTileRoutingFeasible(t *testing.T) {
	b := DefaultBudget()
	m := NewLossModel(rng.New(77).Split("budget"))
	elems := []LossElement{m.Coupling(), m.Coupling()}
	// Full wafer traversal: 8 tiles of 25 mm = 20 cm... too lossy for
	// 1 dB/cm; realistic circuits traverse a few tiles. Model the
	// paper's Figure 3 circuit: 2 tile boundaries (2 stitches), ~5 cm
	// of waveguide, 8 MZIs, 12 crossings.
	elems = append(elems, m.Stitch(), m.Stitch())
	elems = append(elems, m.Propagation(5*unit.Centimeter))
	for i := 0; i < 8; i++ {
		elems = append(elems, m.MZIPass())
	}
	for i := 0; i < 12; i++ {
		elems = append(elems, m.Crossing())
	}
	rep := b.Evaluate(elems)
	if !rep.Feasible {
		t.Fatalf("two-tile-boundary circuit infeasible: %v", rep)
	}
}

// Property (DESIGN.md invariant): BER is monotone non-increasing in
// received power.
func TestBERMonotoneInPower(t *testing.T) {
	sens := unit.DBm(-17)
	prev := 1.0
	for rx := -30.0; rx <= 10; rx += 0.5 {
		ber := BERForReceivedPower(unit.DBm(rx), sens)
		if ber > prev+1e-18 {
			t.Fatalf("BER increased with power at %v dBm: %v > %v", rx, ber, prev)
		}
		if ber < 0 || ber > 0.5 {
			t.Fatalf("BER out of range at %v dBm: %v", rx, ber)
		}
		prev = ber
	}
}

func TestBERAtSensitivityIsReference(t *testing.T) {
	sens := unit.DBm(-17)
	ber := BERForReceivedPower(sens, sens)
	// At the sensitivity point, Q = 7.034, BER ~ 1e-12.
	if ber < 1e-13 || ber > 1e-11 {
		t.Fatalf("BER at sensitivity = %v, want ~1e-12", ber)
	}
}

func TestWavelengthCapacityHeadline(t *testing.T) {
	// Paper §3: "One wavelength can sustain up to 224 Gbps bandwidth".
	if WavelengthCapacity != 224*unit.Gbps {
		t.Fatalf("WavelengthCapacity = %v, want 224 Gbps", WavelengthCapacity)
	}
}

func TestLinkReportString(t *testing.T) {
	rep := DefaultBudget().Evaluate([]LossElement{{Kind: LossCrossing, DB: 1}})
	s := rep.String()
	if !strings.Contains(s, "feasible") || !strings.Contains(s, "loss=1.00dB") {
		t.Fatalf("report string = %q", s)
	}
}

func TestWaterfall(t *testing.T) {
	sens := unit.DBm(-17)
	points := Waterfall(sens, -20, -14, 1)
	if len(points) != 7 {
		t.Fatalf("points = %d, want 7", len(points))
	}
	if points[0].Rx != -20 || points[len(points)-1].Rx != -14 {
		t.Fatalf("range = [%v, %v]", points[0].Rx, points[len(points)-1].Rx)
	}
	for i := 1; i < len(points); i++ {
		if points[i].BER > points[i-1].BER {
			t.Fatal("waterfall not monotone")
		}
	}
}

func TestWaterfallPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero step":      func() { Waterfall(-17, -20, -14, 0) },
		"inverted range": func() { Waterfall(-17, -14, -20, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestExtinctionPenalty(t *testing.T) {
	// 10 dB extinction: r=10, penalty = 10*log10(11/9) ~= 0.872 dB.
	got := ExtinctionPenaltyDB(10)
	if math.Abs(float64(got)-0.872) > 0.005 {
		t.Fatalf("penalty(10dB) = %v, want ~0.872", got)
	}
	// Better extinction, smaller penalty; 25 dB (the default MZI) is
	// almost free.
	if p25 := ExtinctionPenaltyDB(DefaultExtinctionDB); p25 >= got || p25 > 0.05 {
		t.Fatalf("penalty(25dB) = %v", p25)
	}
	// Monotone decreasing in extinction.
	prev := unit.Decibel(1e9)
	for ext := unit.Decibel(3); ext <= 30; ext++ {
		p := ExtinctionPenaltyDB(ext)
		if p >= prev {
			t.Fatalf("penalty not decreasing at %v dB", ext)
		}
		prev = p
	}
}

func TestExtinctionPenaltyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 dB extinction did not panic")
		}
	}()
	ExtinctionPenaltyDB(0)
}

func TestBERWithExtinction(t *testing.T) {
	sens := unit.DBm(-17)
	rx := unit.DBm(-15)
	ideal := BERForReceivedPower(rx, sens)
	with := BERWithExtinction(rx, sens, 10)
	if with <= ideal {
		t.Fatalf("extinction-limited BER %v should exceed ideal %v", with, ideal)
	}
	// High extinction converges to the ideal.
	near := BERWithExtinction(rx, sens, 40)
	if rel := math.Abs(near-ideal) / ideal; rel > 0.2 {
		t.Fatalf("40dB extinction BER off by %v", rel)
	}
}

func TestEvaluateZeroMarginLinkIsFeasible(t *testing.T) {
	// Default budget: floor = -17 dBm + 3 dB = -14 dBm, launch 10 dBm.
	// A 24 dB loss lands exactly on the floor: margin 0 must count as
	// feasible (the engineering margin is already inside the floor).
	b := DefaultBudget()
	rep := b.Evaluate([]LossElement{{Kind: LossCrossing, DB: 24}})
	if float64(rep.MarginDB) != 0 {
		t.Fatalf("margin = %v, want exactly 0", rep.MarginDB)
	}
	if !rep.Feasible {
		t.Fatal("zero-margin link reported infeasible")
	}
	if got := rep.ReceivedPower; got != -14 {
		t.Fatalf("received power = %v, want -14 dBm", got)
	}
}

func TestEvaluateNegativeMarginStillAboveSensitivity(t *testing.T) {
	// 25 dB of loss leaves rx = -15 dBm: 1 dB below the floor but 2 dB
	// above raw sensitivity. The link must be infeasible with margin
	// -1 dB while the BER stays at or below the reference 1e-12 (the
	// margin floor is stricter than the BER target).
	b := DefaultBudget()
	rep := b.Evaluate([]LossElement{{Kind: LossPropagation, DB: 25}})
	if rep.Feasible {
		t.Fatalf("negative-margin link reported feasible: %v", rep)
	}
	if math.Abs(float64(rep.MarginDB)+1) > 1e-12 {
		t.Fatalf("margin = %v, want -1 dB", rep.MarginDB)
	}
	if rep.BER > 1e-12 {
		t.Fatalf("BER = %v, want <= 1e-12 above sensitivity", rep.BER)
	}
}

func TestEvaluateDeepNegativeMarginDegradesBER(t *testing.T) {
	// 30 dB of loss puts rx at -20 dBm, 3 dB below sensitivity: the
	// thermal-noise model must report a dramatically worse BER than at
	// the reference point.
	b := DefaultBudget()
	rep := b.Evaluate([]LossElement{{Kind: LossPropagation, DB: 30}})
	if rep.Feasible {
		t.Fatal("link 3 dB below sensitivity reported feasible")
	}
	if rep.BER < 1e-9 {
		t.Fatalf("BER = %v, want far above 1e-12 below sensitivity", rep.BER)
	}
	if rep.BER > 0.5 {
		t.Fatalf("BER = %v, must never exceed 0.5", rep.BER)
	}
}

func TestLinkReportStringFormatsBERAndStatus(t *testing.T) {
	b := DefaultBudget()
	infeasible := b.Evaluate([]LossElement{{Kind: LossPropagation, DB: 25}}).String()
	if !strings.Contains(infeasible, "INFEASIBLE") {
		t.Errorf("negative-margin report %q missing INFEASIBLE", infeasible)
	}
	if !strings.Contains(infeasible, "margin=-1.00dB") {
		t.Errorf("report %q missing signed margin", infeasible)
	}
	// BER must render in scientific notation with two digits of
	// mantissa, never as a rounded-to-zero decimal.
	if !strings.Contains(infeasible, "ber=") || !strings.Contains(infeasible, "e-") {
		t.Errorf("report %q missing scientific-notation BER", infeasible)
	}
	feasible := b.Evaluate(nil).String()
	if !strings.Contains(feasible, "feasible") || strings.Contains(feasible, "INFEASIBLE") {
		t.Errorf("lossless report %q should read feasible", feasible)
	}
}

func TestEvaluateNoLossElements(t *testing.T) {
	b := DefaultBudget()
	rep := b.Evaluate(nil)
	if float64(rep.TotalLossDB) != 0 || rep.ReceivedPower != b.LaunchPower {
		t.Fatalf("lossless link: loss=%v rx=%v", rep.TotalLossDB, rep.ReceivedPower)
	}
	if rep.ByKind != (LossBreakdown{}) || rep.ByKind.Total() != 0 {
		t.Fatalf("lossless link ByKind = %v, want all-zero", rep.ByKind)
	}
	if math.Abs(float64(rep.MarginDB)-24) > 1e-12 {
		t.Fatalf("margin = %v, want 24 dB", rep.MarginDB)
	}
}

func TestMaxCrossingsExhaustedBudget(t *testing.T) {
	// Fixed loss beyond the whole budget leaves room for zero
	// crossings, not a negative count.
	b := DefaultBudget()
	if got := b.MaxCrossings(30, 0.25); got != 0 {
		t.Fatalf("MaxCrossings(30 dB fixed) = %d, want 0", got)
	}
	// Exactly exhausted: available = 24 - 24 = 0.
	if got := b.MaxCrossings(24, 0.25); got != 0 {
		t.Fatalf("MaxCrossings(24 dB fixed) = %d, want 0", got)
	}
}

func TestWaterfallSinglePoint(t *testing.T) {
	points := Waterfall(-17, -15, -15, 1)
	if len(points) != 1 {
		t.Fatalf("degenerate range yielded %d points, want 1", len(points))
	}
	if points[0].Rx != -15 {
		t.Fatalf("point at %v, want -15 dBm", points[0].Rx)
	}
}
