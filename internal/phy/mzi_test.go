package phy

import (
	"math"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func TestMZIZeroValueIsBar(t *testing.T) {
	var m MZI
	if m.State() != Bar {
		t.Fatalf("zero MZI state = %v, want bar", m.State())
	}
	if c := m.CrossCoupling(0); c > 0.01 {
		t.Fatalf("zero MZI cross coupling = %v, want ~0", c)
	}
}

func TestMZIProgramCrossSettles(t *testing.T) {
	var m MZI
	m.Program(Cross, 0)
	// Immediately after programming, still mostly bar.
	if c := m.CrossCoupling(10 * unit.Nanosecond); c > 0.1 {
		t.Fatalf("coupling 10ns after program = %v, want <0.1", c)
	}
	// After the paper's 3.7us, within ~2% of full cross (amplitude in
	// phase settles to 2%, power is even closer).
	if c := m.CrossCoupling(ReconfigLatency); c < 0.95 {
		t.Fatalf("coupling at 3.7us = %v, want >0.95", c)
	}
	if m.State() != Cross {
		t.Fatalf("state = %v, want cross", m.State())
	}
}

func TestMZISettledAt(t *testing.T) {
	var m MZI
	got := m.SettledAt(0)
	if math.Abs(float64(got-ReconfigLatency)) > 1e-12 {
		t.Fatalf("SettledAt(0) = %v, want %v", got, ReconfigLatency)
	}
	got = m.SettledAt(unit.Seconds(1))
	want := unit.Seconds(1) + ReconfigLatency
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("SettledAt(1s) = %v, want %v", got, want)
	}
}

func TestMZIExtinctionLimitsCoupling(t *testing.T) {
	m := MZI{ExtinctionDB: 20}
	m.Program(Cross, 0)
	c := m.CrossCoupling(unit.Seconds(1)) // fully settled
	// 20 dB extinction: leak 0.01, so max coupling 1 - 2*0.01 + 0.01 = 0.99.
	if c > 0.995 || c < 0.97 {
		t.Fatalf("settled coupling with 20dB extinction = %v, want ~0.99", c)
	}
	m.Program(Bar, unit.Seconds(1))
	c = m.CrossCoupling(unit.Seconds(2))
	if c < 0.005 || c > 0.03 {
		t.Fatalf("bar-state leak with 20dB extinction = %v, want ~0.01", c)
	}
}

func TestMZIBackwardTimeDoesNotPanic(t *testing.T) {
	var m MZI
	m.Program(Cross, unit.Seconds(1))
	// Querying at an earlier time must not move the phase backward.
	c1 := m.CrossCoupling(unit.Seconds(0.5))
	c2 := m.CrossCoupling(unit.Seconds(1))
	if c2 < c1 {
		t.Fatalf("coupling decreased over time: %v then %v", c1, c2)
	}
}

func TestMZIStateFlipsMidFlight(t *testing.T) {
	var m MZI
	m.Program(Cross, 0)
	// Halfway through settling, command back to bar.
	m.Program(Bar, 1*unit.Microsecond)
	if m.State() != Bar {
		t.Fatalf("state after reprogram = %v, want bar", m.State())
	}
	if c := m.CrossCoupling(unit.Seconds(1)); c > 0.01 {
		t.Fatalf("settled coupling after reprogram = %v, want ~0", c)
	}
}

func TestStepResponseShape(t *testing.T) {
	var m MZI
	r := rng.New(1)
	trace := m.StepResponse(50*unit.Nanosecond, 10*unit.Microsecond, 0, r)
	if len(trace) < 100 {
		t.Fatalf("trace too short: %d samples", len(trace))
	}
	// Monotonic non-decreasing without noise.
	for i := 1; i < len(trace); i++ {
		if trace[i].V < trace[i-1].V-1e-12 {
			t.Fatalf("noiseless step response not monotone at %d", i)
		}
	}
	// Final value near 1.
	if last := trace[len(trace)-1].V; last < 0.999 {
		t.Fatalf("final amplitude = %v, want ~1", last)
	}
}

func TestStepResponsePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepResponse with zero interval did not panic")
		}
	}()
	var m MZI
	m.StepResponse(0, unit.Microsecond, 0, rng.New(1))
}

// TestFig3aReconfigurationLatency is the unit-test form of experiment
// E1: simulate the scope trace, fit the exponential, and check the
// fitted settling time reproduces the paper's 3.7 us within tolerance.
func TestFig3aReconfigurationLatency(t *testing.T) {
	var m MZI
	r := rng.New(1234)
	trace := m.StepResponse(20*unit.Nanosecond, 12*unit.Microsecond, 0.02, r)
	fit, err := FitExponentialRise(trace)
	if err != nil {
		t.Fatalf("fit failed: %v", err)
	}
	latency := fit.SettlingTime(0.02) // 2% criterion = 4 tau
	if latency < 3.2*unit.Microsecond || latency > 4.2*unit.Microsecond {
		t.Fatalf("fitted reconfiguration latency = %v, want ~3.7us", latency)
	}
	if fit.Residual > 0.05 {
		t.Fatalf("fit residual = %v, want < 0.05", fit.Residual)
	}
}

func TestCustomTau(t *testing.T) {
	m := MZI{Tau: 2 * unit.Microsecond}
	if got := m.SettledAt(0); math.Abs(float64(got-8*unit.Microsecond)) > 1e-12 {
		t.Fatalf("SettledAt with tau=2us = %v, want 8us", got)
	}
}
