package phy

import (
	"errors"
	"math"

	"lightpath/internal/unit"
)

// This file contains the curve-fitting and statistics utilities the
// paper uses to reduce raw traces to reported numbers: an exponential
// rise fit for the MZI step response (Figure 3a) and a Gaussian fit of
// the stitch-loss histogram (Figure 3b).

// ErrBadFit reports that a fit could not be computed from the data
// provided (too few points, degenerate values, ...).
var ErrBadFit = errors.New("phy: insufficient or degenerate data for fit")

// ExpRiseFit is the result of fitting v(t) = A*(1 - exp(-t/Tau)) to a
// step-response trace.
type ExpRiseFit struct {
	A   float64      // asymptotic amplitude
	Tau unit.Seconds // time constant

	// Residual is the root-mean-square error of the fit against the
	// data, in normalized amplitude units.
	Residual float64
}

// SettlingTime returns the time for the fitted response to come within
// the given fraction of its final value (e.g. 0.02 for the 2%
// criterion). This is the reconfiguration latency the paper reports.
func (f ExpRiseFit) SettlingTime(fraction float64) unit.Seconds {
	if fraction <= 0 || fraction >= 1 {
		panic("phy: settling fraction must be in (0, 1)")
	}
	return unit.Seconds(-math.Log(fraction)) * f.Tau
}

// FitExponentialRise fits v(t) = A*(1 - exp(-t/tau)) to the trace.
//
// The estimator first takes A as the mean of the final 10% of samples
// (the settled tail), then linearizes: log(A - v) = log(A) - t/tau, and
// solves the line by least squares over samples that have not yet
// settled. This mirrors how a lab would reduce the Figure 3a scope
// trace. Samples where v >= A (noise excursions above the asymptote)
// are excluded from the linearized regression.
func FitExponentialRise(trace []Sample) (ExpRiseFit, error) {
	if len(trace) < 8 {
		return ExpRiseFit{}, ErrBadFit
	}
	// Asymptote estimate from the settled tail.
	tail := len(trace) / 10
	if tail < 2 {
		tail = 2
	}
	a := 0.0
	for _, s := range trace[len(trace)-tail:] {
		a += s.V
	}
	a /= float64(tail)
	if a <= 0 {
		return ExpRiseFit{}, ErrBadFit
	}

	// Linearized least squares on log(A - v) vs t, using points in the
	// informative band (between 5% and 95% of the asymptote). The log
	// transform amplifies noise where A - v is small, so weight each
	// point by (A - v)^2 — the standard variance-stabilizing weight for
	// log-transformed exponential fits.
	var sw, sx, sy, sxx, sxy float64
	n := 0
	for _, s := range trace {
		if s.V < 0.05*a || s.V > 0.95*a {
			continue
		}
		residualAmp := a - s.V
		w := residualAmp * residualAmp
		y := math.Log(residualAmp)
		x := float64(s.T)
		sw += w
		sx += w * x
		sy += w * y
		sxx += w * x * x
		sxy += w * x * y
		n++
	}
	if n < 4 {
		return ExpRiseFit{}, ErrBadFit
	}
	denom := sw*sxx - sx*sx
	if denom == 0 {
		return ExpRiseFit{}, ErrBadFit
	}
	slope := (sw*sxy - sx*sy) / denom
	if slope >= 0 {
		return ExpRiseFit{}, ErrBadFit
	}
	fit := ExpRiseFit{A: a, Tau: unit.Seconds(-1 / slope)}

	// RMS residual over the whole trace.
	var sse float64
	for _, s := range trace {
		pred := fit.A * (1 - math.Exp(-float64(s.T/fit.Tau)))
		d := s.V - pred
		sse += d * d
	}
	fit.Residual = math.Sqrt(sse / float64(len(trace)))
	return fit, nil
}

// Histogram is a fixed-width binning of scalar samples.
type Histogram struct {
	Min, Max float64 // range covered by the bins
	Counts   []int   // per-bin sample counts
	N        int     // total samples binned (excluding out-of-range)
}

// NewHistogram bins the samples into the given number of equal-width
// bins over [min, max]. Samples outside the range are dropped. It
// panics if bins <= 0 or max <= min.
func NewHistogram(samples []float64, min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("phy: histogram with no bins")
	}
	if max <= min {
		panic("phy: histogram with empty range")
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, s := range samples {
		if s < min || s > max {
			continue
		}
		i := int((s - min) / width)
		if i == bins { // s == max lands in the last bin
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h
}

// BinCenters returns the center value of each bin.
func (h *Histogram) BinCenters() []float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	centers := make([]float64, len(h.Counts))
	for i := range centers {
		centers[i] = h.Min + width*(float64(i)+0.5)
	}
	return centers
}

// Densities returns the normalized density of each bin (integrates
// to 1 over the histogram range when multiplied by the bin width).
func (h *Histogram) Densities() []float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	d := make([]float64, len(h.Counts))
	if h.N == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / (float64(h.N) * width)
	}
	return d
}

// GaussianFit is the result of fitting a normal density to data.
type GaussianFit struct {
	Mean, SD float64

	// ChiSquare is the goodness-of-fit statistic of the histogram
	// against the fitted density (smaller is better).
	ChiSquare float64
}

// Density evaluates the fitted normal density at x.
func (g GaussianFit) Density(x float64) float64 {
	if g.SD <= 0 {
		return 0
	}
	z := (x - g.Mean) / g.SD
	return math.Exp(-z*z/2) / (g.SD * math.Sqrt(2*math.Pi))
}

// FitGaussian fits a normal distribution to the samples by maximum
// likelihood (sample mean and standard deviation) and reports the
// chi-square of the fit against a histogram of the data, mirroring the
// distribution-plus-fit presentation of the paper's Figure 3b.
func FitGaussian(samples []float64, hist *Histogram) (GaussianFit, error) {
	if len(samples) < 2 {
		return GaussianFit{}, ErrBadFit
	}
	var sum, sumsq float64
	for _, s := range samples {
		sum += s
		sumsq += s * s
	}
	n := float64(len(samples))
	mean := sum / n
	variance := (sumsq - n*mean*mean) / (n - 1)
	if variance <= 0 {
		return GaussianFit{}, ErrBadFit
	}
	fit := GaussianFit{Mean: mean, SD: math.Sqrt(variance)}

	if hist != nil && hist.N > 0 {
		centers := hist.BinCenters()
		densities := hist.Densities()
		for i := range centers {
			expected := fit.Density(centers[i])
			if expected < 1e-12 {
				continue
			}
			d := densities[i] - expected
			fit.ChiSquare += d * d / expected
		}
	}
	return fit, nil
}

// Mean returns the arithmetic mean of the samples (0 for no samples).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	var sse float64
	for _, s := range samples {
		d := s - m
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(samples)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the samples
// using linear interpolation. The input need not be sorted; a copy is
// sorted internally. It panics on an empty input or out-of-range p.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		panic("phy: percentile of empty sample set")
	}
	if p < 0 || p > 100 {
		panic("phy: percentile out of [0, 100]")
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	insertionSort(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// insertionSort sorts in place. Sample sets here are small (histogram
// inputs); avoiding the sort package keeps this file dependency-free,
// but fall back to a shell-sort gap sequence for larger inputs so the
// cost stays near O(n^1.3).
func insertionSort(s []float64) {
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= gap && s[j-gap] > v; j -= gap {
				s[j] = s[j-gap]
			}
			s[j] = v
		}
	}
}
