package phy

import (
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// This file exposes the physical layer's mutable state for
// checkpointing. The MZI's thermal phase and the loss model's
// position in its stochastic stream are the only things in phy a
// long-running simulation mutates; capturing both lets a resumed run
// continue the physics exactly where the killed one stopped.

// PhaseState returns the MZI's thermal state: the current and target
// differential phases and the simulated time of the last settle.
func (m *MZI) PhaseState() (phase, target float64, lastUpdate unit.Seconds) {
	return m.phase, m.targetPhase, m.lastUpdate
}

// SetPhaseState restores thermal state captured by PhaseState.
func (m *MZI) SetPhaseState(phase, target float64, lastUpdate unit.Seconds) {
	m.phase = phase
	m.targetPhase = target
	m.lastUpdate = lastUpdate
}

// RandState returns the loss model's position in its stochastic
// stream. ok is false for a deterministic (nil-stream) model, which
// has no state to capture.
func (m *LossModel) RandState() (s [4]uint64, ok bool) {
	if m.rand == nil {
		return s, false
	}
	return m.rand.State(), true
}

// SetRandState repositions the loss model's stochastic stream. A
// nil-stream model gains a stream at the given position, so restoring
// into a freshly built model works regardless of how it was seeded.
func (m *LossModel) SetRandState(s [4]uint64) {
	if m.rand == nil {
		m.rand = rng.New(0)
	}
	m.rand.SetState(s)
}
