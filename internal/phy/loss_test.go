package phy

import (
	"math"
	"testing"
	"testing/quick"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func TestLossModelDefaults(t *testing.T) {
	m := NewLossModel(nil)
	if got := m.Crossing().DB; got != CrossingLossDB {
		t.Fatalf("crossing = %v, want %v", got, CrossingLossDB)
	}
	if got := m.SampleStitchLoss(); got != StitchLossMeanDB {
		t.Fatalf("nil-stream stitch = %v, want mean %v", got, StitchLossMeanDB)
	}
	if got := m.Coupling().DB; got != CouplingLossDB {
		t.Fatalf("coupling = %v, want %v", got, CouplingLossDB)
	}
	if got := m.MZIPass().DB; got != MZIInsertionLossDB {
		t.Fatalf("mzi = %v, want %v", got, MZIInsertionLossDB)
	}
}

func TestLossModelOverrides(t *testing.T) {
	m := &LossModel{CrossingDB: 0.1, PropagationDBPerCm: 2, CouplingDB: 0.5}
	if got := m.Crossing().DB; got != 0.1 {
		t.Fatalf("overridden crossing = %v, want 0.1", got)
	}
	if got := m.Propagation(unit.Centimeter).DB; got != 2 {
		t.Fatalf("overridden propagation(1cm) = %v, want 2", got)
	}
	if got := m.Coupling().DB; got != 0.5 {
		t.Fatalf("overridden coupling = %v, want 0.5", got)
	}
}

func TestPropagationScalesWithLength(t *testing.T) {
	m := NewLossModel(nil)
	l1 := m.Propagation(unit.Centimeter).DB
	l2 := m.Propagation(2 * unit.Centimeter).DB
	if math.Abs(float64(l2-2*l1)) > 1e-12 {
		t.Fatalf("propagation not linear: 1cm=%v 2cm=%v", l1, l2)
	}
	if m.Propagation(0).DB != 0 {
		t.Fatal("zero length should have zero loss")
	}
}

func TestStitchLossDistribution(t *testing.T) {
	m := NewLossModel(rng.New(42).Split("stitch"))
	var samples []float64
	for i := 0; i < 20000; i++ {
		v := m.SampleStitchLoss()
		if v < 0 || v > StitchLossMaxDB {
			t.Fatalf("stitch sample %v out of [0, %v]", v, StitchLossMaxDB)
		}
		samples = append(samples, float64(v))
	}
	if mean := Mean(samples); math.Abs(mean-float64(StitchLossMeanDB)) > 0.01 {
		t.Fatalf("stitch mean = %v, want ~%v", mean, StitchLossMeanDB)
	}
	if sd := StdDev(samples); math.Abs(sd-float64(StitchLossSDDB)) > 0.01 {
		t.Fatalf("stitch sd = %v, want ~%v", sd, StitchLossSDDB)
	}
}

// TestFig3bStitchLossFit is the unit-test form of experiment E2:
// sample the stitch-loss distribution, histogram it over the figure's
// axis range, fit a Gaussian, and verify the fitted center reproduces
// the paper's ~0.25 dB.
func TestFig3bStitchLossFit(t *testing.T) {
	m := NewLossModel(rng.New(2024).Split("fig3b"))
	var samples []float64
	for i := 0; i < 10000; i++ {
		samples = append(samples, float64(m.SampleStitchLoss()))
	}
	h := NewHistogram(samples, 0, float64(StitchLossMaxDB), 32)
	fit, err := FitGaussian(samples, h)
	if err != nil {
		t.Fatalf("fit failed: %v", err)
	}
	if math.Abs(fit.Mean-0.25) > 0.02 {
		t.Fatalf("fitted stitch loss center = %v dB, want ~0.25 dB", fit.Mean)
	}
}

func TestTotalLossAndBreakdown(t *testing.T) {
	m := NewLossModel(nil)
	elems := []LossElement{
		m.Coupling(),
		m.Crossing(),
		m.Crossing(),
		m.MZIPass(),
		m.Propagation(2 * unit.Centimeter),
		m.Coupling(),
	}
	total := TotalLossDB(elems)
	want := 2*CouplingLossDB + 2*CrossingLossDB + MZIInsertionLossDB + 2*PropagationLossDBPerCm
	if math.Abs(float64(total-want)) > 1e-12 {
		t.Fatalf("total = %v, want %v", total, want)
	}
	byKind := LossByKind(elems)
	if byKind[LossCrossing] != 2*CrossingLossDB {
		t.Fatalf("crossing breakdown = %v, want %v", byKind[LossCrossing], 2*CrossingLossDB)
	}
	if byKind[LossCoupling] != 2*CouplingLossDB {
		t.Fatalf("coupling breakdown = %v", byKind[LossCoupling])
	}
}

func TestFiberHop(t *testing.T) {
	m := NewLossModel(nil)
	e := m.FiberHop()
	if e.Kind != LossFiber || e.DB != FiberHopLossDB {
		t.Fatalf("fiber hop = %+v", e)
	}
	if LossFiber.String() != "fiber" {
		t.Fatalf("kind name = %q", LossFiber.String())
	}
}

// Property (DESIGN.md invariant): adding elements never decreases
// total loss.
func TestLossMonotonicity(t *testing.T) {
	m := NewLossModel(rng.New(5))
	f := func(nCrossings, nStitches uint8) bool {
		var elems []LossElement
		var prev unit.Decibel
		for i := 0; i < int(nCrossings%32); i++ {
			elems = append(elems, m.Crossing())
			total := TotalLossDB(elems)
			if total < prev {
				return false
			}
			prev = total
		}
		for i := 0; i < int(nStitches%32); i++ {
			elems = append(elems, m.Stitch())
			total := TotalLossDB(elems)
			if total < prev {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLossKindString(t *testing.T) {
	cases := map[LossKind]string{
		LossPropagation: "propagation",
		LossCrossing:    "crossing",
		LossStitch:      "stitch",
		LossMZI:         "mzi",
		LossCoupling:    "coupling",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := LossKind(99).String(); got != "LossKind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}
