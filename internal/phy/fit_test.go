package phy

import (
	"math"
	"testing"
	"testing/quick"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func TestFitExponentialRiseExact(t *testing.T) {
	// Noiseless synthetic data: fit must recover tau accurately.
	tau := 0.925e-6
	var trace []Sample
	for ti := 0.0; ti < 10e-6; ti += 20e-9 {
		trace = append(trace, Sample{T: unit.Seconds(ti), V: 1 - math.Exp(-ti/tau)})
	}
	fit, err := FitExponentialRise(trace)
	if err != nil {
		t.Fatalf("fit failed: %v", err)
	}
	if math.Abs(float64(fit.Tau)-tau)/tau > 0.02 {
		t.Fatalf("fitted tau = %v, want %v", fit.Tau, tau)
	}
	if math.Abs(fit.A-1) > 0.02 {
		t.Fatalf("fitted amplitude = %v, want 1", fit.A)
	}
}

func TestFitExponentialRiseRecoveryUnderNoise(t *testing.T) {
	r := rng.New(99)
	for _, tauUS := range []float64{0.5, 0.925, 2.0, 5.0} {
		tau := tauUS * 1e-6
		var trace []Sample
		for ti := 0.0; ti < 12*tau; ti += tau / 100 {
			v := 1 - math.Exp(-ti/tau) + r.Normal(0, 0.01)
			trace = append(trace, Sample{T: unit.Seconds(ti), V: v})
		}
		fit, err := FitExponentialRise(trace)
		if err != nil {
			t.Fatalf("tau=%vus: fit failed: %v", tauUS, err)
		}
		if rel := math.Abs(float64(fit.Tau)-tau) / tau; rel > 0.1 {
			t.Errorf("tau=%vus: fitted %v (rel err %.2f)", tauUS, fit.Tau, rel)
		}
	}
}

func TestFitExponentialRiseErrors(t *testing.T) {
	if _, err := FitExponentialRise(nil); err == nil {
		t.Error("fit of nil trace should fail")
	}
	// All-zero trace: no informative band.
	var flat []Sample
	for i := 0; i < 100; i++ {
		flat = append(flat, Sample{T: unit.Seconds(float64(i) * 1e-9), V: 0})
	}
	if _, err := FitExponentialRise(flat); err == nil {
		t.Error("fit of flat zero trace should fail")
	}
}

func TestSettlingTimeCriteria(t *testing.T) {
	fit := ExpRiseFit{A: 1, Tau: unit.Seconds(1e-6)}
	// 2% criterion: -ln(0.02) ~= 3.912 tau.
	got := fit.SettlingTime(0.02)
	if math.Abs(float64(got)-3.912e-6) > 1e-8 {
		t.Fatalf("settling(2%%) = %v, want ~3.912us", got)
	}
	// 10% criterion is shorter than 2%.
	if fit.SettlingTime(0.10) >= got {
		t.Fatal("10% settling should be shorter than 2% settling")
	}
}

func TestSettlingTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SettlingTime(0) did not panic")
		}
	}()
	ExpRiseFit{A: 1, Tau: 1}.SettlingTime(0)
}

func TestHistogramBasics(t *testing.T) {
	samples := []float64{0.1, 0.15, 0.25, 0.25, 0.35, 0.9, -0.5}
	h := NewHistogram(samples, 0, 0.8, 8)
	if h.N != 5 {
		t.Fatalf("N = %d, want 5 (two samples out of range)", h.N)
	}
	if len(h.Counts) != 8 {
		t.Fatalf("bins = %d, want 8", len(h.Counts))
	}
	if h.Counts[2] != 2 { // [0.2, 0.3) holds both 0.25 samples
		t.Fatalf("bin 2 count = %d, want 2", h.Counts[2])
	}
	// Max boundary lands in the last bin.
	h2 := NewHistogram([]float64{0.8}, 0, 0.8, 8)
	if h2.Counts[7] != 1 {
		t.Fatalf("max-value sample not in last bin: %v", h2.Counts)
	}
}

func TestHistogramDensitiesIntegrateToOne(t *testing.T) {
	r := rng.New(7)
	var samples []float64
	for i := 0; i < 5000; i++ {
		samples = append(samples, r.Float64()*0.8)
	}
	h := NewHistogram(samples, 0, 0.8, 16)
	width := 0.8 / 16
	total := 0.0
	for _, d := range h.Densities() {
		total += d * width
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("densities integrate to %v, want 1", total)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(nil, 0, 1, 0) },
		"empty range": func() { NewHistogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFitGaussianRecovers(t *testing.T) {
	r := rng.New(21)
	var samples []float64
	for i := 0; i < 20000; i++ {
		samples = append(samples, r.Normal(0.25, 0.08))
	}
	h := NewHistogram(samples, 0, 0.8, 32)
	fit, err := FitGaussian(samples, h)
	if err != nil {
		t.Fatalf("fit failed: %v", err)
	}
	if math.Abs(fit.Mean-0.25) > 0.005 {
		t.Errorf("fitted mean = %v, want ~0.25", fit.Mean)
	}
	if math.Abs(fit.SD-0.08) > 0.005 {
		t.Errorf("fitted sd = %v, want ~0.08", fit.SD)
	}
	// Density at the mean of a N(0.25, 0.08) is ~4.99.
	if d := fit.Density(fit.Mean); math.Abs(d-4.99) > 0.3 {
		t.Errorf("density at mean = %v, want ~4.99", d)
	}
}

func TestFitGaussianErrors(t *testing.T) {
	if _, err := FitGaussian(nil, nil); err == nil {
		t.Error("fit of no samples should fail")
	}
	if _, err := FitGaussian([]float64{1, 1, 1}, nil); err == nil {
		t.Error("fit of zero-variance samples should fail")
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if sd := StdDev(s); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ~2.138", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if p := Percentile(s, 0); p != 1 {
		t.Fatalf("p0 = %v, want 1", p)
	}
	if p := Percentile(s, 100); p != 5 {
		t.Fatalf("p100 = %v, want 5", p)
	}
	if p := Percentile(s, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := Percentile(s, 25); p != 2 {
		t.Fatalf("p25 = %v, want 2", p)
	}
	if p := Percentile([]float64{7}, 50); p != 7 {
		t.Fatalf("single-sample percentile = %v, want 7", p)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	s := []float64{5, 1, 3}
	_ = Percentile(s, 50)
	if s[0] != 5 || s[1] != 1 || s[2] != 3 {
		t.Fatalf("input mutated: %v", s)
	}
}

func TestPercentileProperty(t *testing.T) {
	// Property: for any sample set, p50 lies between min and max.
	f := func(raw []float64) bool {
		var s []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		p := Percentile(s, 50)
		min, max := s[0], s[0]
		for _, v := range s {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return p >= min && p <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
