// Package phy models the optical physical layer of the LIGHTPATH
// interconnect: Mach-Zehnder interferometer (MZI) switches and their
// thermo-optic reconfiguration dynamics, per-element optical losses
// (propagation, waveguide crossings, reticle stitches, coupling), link
// budgets, and bit-error-rate estimation, together with the curve-fitting
// utilities the paper uses to reduce raw traces to headline numbers
// (Figure 3a: reconfiguration latency; Figure 3b: stitch-loss
// distribution).
//
// The paper measures a fabricated wafer with an FPGA and an
// oscilloscope; this package substitutes a calibrated simulation of the
// same devices. See DESIGN.md ("Substitutions") for the argument that
// the substitution preserves the relevant behaviour.
package phy

import (
	"fmt"
	"math"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// MZIState is the routing state of a 2x2 Mach-Zehnder interferometer
// element: Bar passes each input straight through; Cross swaps them.
type MZIState int

// MZI routing states.
const (
	Bar MZIState = iota
	Cross
)

// String returns "bar" or "cross".
func (s MZIState) String() string {
	if s == Bar {
		return "bar"
	}
	return "cross"
}

// phaseFor returns the differential phase (radians) that realizes the
// state in an ideal MZI: 0 for bar, pi for cross.
func (s MZIState) phaseFor() float64 {
	if s == Bar {
		return 0
	}
	return math.Pi
}

// MZI is a single thermo-optically tuned Mach-Zehnder interferometer.
// Its differential phase follows a first-order response toward the
// commanded target, which is the dominant dynamic of integrated
// thermo-optic phase shifters and what gives the paper's Figure 3a its
// exponential shape.
//
// The zero value is an ideal, fully settled Bar-state MZI with the
// default time constant; it is ready to use.
type MZI struct {
	// Tau is the thermo-optic time constant. If zero,
	// DefaultMZITimeConstant is used.
	Tau unit.Seconds

	// ExtinctionDB is the switch's extinction ratio: the residual power
	// leaking into the unselected port, in dB. If zero,
	// DefaultExtinctionDB is used.
	ExtinctionDB unit.Decibel

	phase       float64 // current differential phase (radians)
	targetPhase float64
	lastUpdate  unit.Seconds
}

// Physical constants of the prototype, from the paper (§3,
// "Microsecond reconfiguration"): MZIs settle within 3.7 us. We define
// settling as reaching within 2% of the final value, i.e. 4 time
// constants, so the underlying first-order time constant is 3.7/4 us.
const (
	// ReconfigLatency is the paper's headline optical switch
	// reconfiguration delay.
	ReconfigLatency = 3.7 * unit.Microsecond

	// DefaultMZITimeConstant is the first-order thermo-optic time
	// constant implied by a 3.7 us settling time at the 2% (4 tau)
	// criterion.
	DefaultMZITimeConstant = ReconfigLatency / 4

	// DefaultExtinctionDB is a typical extinction ratio for a
	// well-balanced integrated MZI.
	DefaultExtinctionDB unit.Decibel = 25
)

func (m *MZI) tau() unit.Seconds {
	if m.Tau > 0 {
		return m.Tau
	}
	return DefaultMZITimeConstant
}

func (m *MZI) extinction() unit.Decibel {
	if m.ExtinctionDB > 0 {
		return m.ExtinctionDB
	}
	return DefaultExtinctionDB
}

// settle advances the internal phase to the given simulated time.
func (m *MZI) settle(now unit.Seconds) {
	dt := now - m.lastUpdate
	if dt < 0 {
		// Time never goes backward in the simulator; treat a stale
		// clock as "no time elapsed".
		dt = 0
	}
	alpha := 1 - math.Exp(-float64(dt/m.tau()))
	m.phase += (m.targetPhase - m.phase) * alpha
	m.lastUpdate = now
}

// Program commands the MZI toward the given state at simulated time
// now. The switch output does not change instantaneously: its phase
// relaxes toward the target with time constant Tau.
func (m *MZI) Program(s MZIState, now unit.Seconds) {
	m.settle(now)
	m.targetPhase = s.phaseFor()
}

// SettledAt returns the simulated time at which the MZI is within 2% of
// its commanded state, measured from the given programming time. This
// is the per-switch reconfiguration delay.
func (m *MZI) SettledAt(programmedAt unit.Seconds) unit.Seconds {
	return programmedAt + unit.Seconds(4)*m.tau()
}

// CrossCoupling returns the fraction of input power emerging at the
// cross port at simulated time now, in [0, 1]. An ideal settled Cross
// MZI returns ~1; an ideal settled Bar MZI returns ~0 (limited by the
// extinction ratio).
func (m *MZI) CrossCoupling(now unit.Seconds) float64 {
	m.settle(now)
	// Ideal interferometer: cross power = sin^2(phase/2).
	ideal := math.Sin(m.phase / 2)
	cross := ideal * ideal
	// Fold in finite extinction: the achievable range is
	// [leak, 1-leak] rather than [0, 1].
	leak := unit.Decibel(-m.extinction()).Linear()
	return leak + cross*(1-2*leak)
}

// State returns the commanded routing state (the target, not the
// instantaneous analog condition).
func (m *MZI) State() MZIState {
	if m.targetPhase < math.Pi/2 {
		return Bar
	}
	return Cross
}

// InsertionLossDB returns the MZI's insertion loss contribution for a
// signal passing through it, independent of state.
func (m *MZI) InsertionLossDB() unit.Decibel { return MZIInsertionLossDB }

// MZIInsertionLossDB is the per-MZI insertion loss assumed by the link
// budget, a typical figure for foundry silicon-photonic MZI switches.
const MZIInsertionLossDB unit.Decibel = 0.5

// StepResponse simulates the oscilloscope trace of Figure 3a: the
// normalized optical amplitude at the newly selected port after the MZI
// is commanded from Bar to Cross at t = 0, sampled at the given
// interval for the given duration, with additive Gaussian measurement
// noise of the given standard deviation (normalized units).
//
// The returned samples are (time, amplitude) pairs suitable for
// FitExponentialRise.
func (m *MZI) StepResponse(sampleEvery, duration unit.Seconds, noiseSD float64, r *rng.Rand) []Sample {
	if sampleEvery <= 0 {
		panic("phy: StepResponse with non-positive sample interval")
	}
	tau := float64(m.tau())
	n := int(float64(duration)/float64(sampleEvery)) + 1
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := float64(sampleEvery) * float64(i)
		amp := 1 - math.Exp(-t/tau)
		if noiseSD > 0 {
			amp += r.Normal(0, noiseSD)
		}
		out = append(out, Sample{T: unit.Seconds(t), V: amp})
	}
	return out
}

// Sample is one point of a time-series trace.
type Sample struct {
	T unit.Seconds // time since the drive edge
	V float64      // normalized amplitude
}

// String formats the sample for trace dumps.
func (s Sample) String() string {
	return fmt.Sprintf("(%v, %.4f)", s.T, s.V)
}
