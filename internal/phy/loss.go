package phy

import (
	"fmt"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// This file models the per-element optical losses of a LIGHTPATH
// circuit. The paper measures two of them on the prototype: waveguide
// crossing loss (0.25 dB, §3 "Measuring signal loss") and the
// distribution of reticle stitch loss (Figure 3b). The remaining
// figures (propagation, coupling, MZI insertion) are typical foundry
// values; they enter only through the link budget.

// Default loss figures. Crossing loss is the paper's measured value;
// stitch loss parameters are calibrated so the sampled distribution
// reproduces the shape of Figure 3b (a near-Gaussian bump centered
// around a quarter dB, bounded by [0, 0.8] dB on the figure's axis).
const (
	// CrossingLossDB is the measured loss of one waveguide crossing.
	CrossingLossDB unit.Decibel = 0.25

	// StitchLossMeanDB is the mean of the reticle stitch loss
	// distribution.
	StitchLossMeanDB unit.Decibel = 0.25

	// StitchLossSDDB is the standard deviation of the stitch loss
	// distribution.
	StitchLossSDDB unit.Decibel = 0.08

	// StitchLossMaxDB bounds the distribution, matching the axis range
	// of Figure 3b.
	StitchLossMaxDB unit.Decibel = 0.8

	// PropagationLossDBPerCm is the waveguide propagation loss. The
	// low figure is what makes wafer-scale reach possible at all: a
	// circuit traversing the full 24 cm of an 8-tile wafer row incurs
	// ~2.4 dB.
	PropagationLossDBPerCm unit.Decibel = 0.1

	// FiberHopLossDB is the loss of one inter-wafer fiber hop
	// (coupling into and out of the attached fiber; the fiber itself
	// is negligible at rack scale).
	FiberHopLossDB unit.Decibel = 1.0

	// CouplingLossDB is the loss of one chip-to-waveguide coupling
	// (modulator in, photodetector out).
	CouplingLossDB unit.Decibel = 1.5
)

// LossKind identifies the physical origin of a loss element.
type LossKind int

// Loss element kinds.
const (
	LossPropagation LossKind = iota
	LossCrossing
	LossStitch
	LossMZI
	LossCoupling
	LossFiber
	// LossDefect is fault-induced degradation (a contaminated or
	// delaminated waveguide region) injected by the chaos engine.
	LossDefect

	// NumLossKinds is the number of loss kinds; LossBreakdown is
	// indexed by LossKind and sized by this.
	NumLossKinds = int(LossDefect) + 1
)

var lossKindNames = [...]string{
	LossPropagation: "propagation",
	LossCrossing:    "crossing",
	LossStitch:      "stitch",
	LossMZI:         "mzi",
	LossCoupling:    "coupling",
	LossFiber:       "fiber",
	LossDefect:      "defect",
}

// String names the loss kind.
func (k LossKind) String() string {
	if int(k) < len(lossKindNames) {
		return lossKindNames[k]
	}
	return fmt.Sprintf("LossKind(%d)", int(k))
}

// LossElement is one contributor to a circuit's optical loss.
type LossElement struct {
	Kind LossKind
	DB   unit.Decibel
}

// LossModel samples and accumulates the optical losses along a
// circuit. A LossModel is seeded so that the stitch-loss draw for a
// given experiment is reproducible.
type LossModel struct {
	// CrossingDB overrides CrossingLossDB when positive.
	CrossingDB unit.Decibel
	// PropagationDBPerCm overrides PropagationLossDBPerCm when positive.
	PropagationDBPerCm unit.Decibel
	// CouplingDB overrides CouplingLossDB when positive.
	CouplingDB unit.Decibel

	rand *rng.Rand
}

// NewLossModel returns a loss model drawing stochastic elements from
// the given stream. A nil stream yields a model that uses mean values
// for stochastic elements (useful for analytic bounds).
func NewLossModel(r *rng.Rand) *LossModel {
	return &LossModel{rand: r}
}

// Clone returns an independent copy of the model, including the
// position of its random stream, so a cloned fabric samples exactly
// the stitch losses a freshly built one would.
func (m *LossModel) Clone() *LossModel {
	c := *m
	if m.rand != nil {
		c.rand = m.rand.Clone()
	}
	return &c
}

func (m *LossModel) crossing() unit.Decibel {
	if m.CrossingDB > 0 {
		return m.CrossingDB
	}
	return CrossingLossDB
}

func (m *LossModel) propagationPerCm() unit.Decibel {
	if m.PropagationDBPerCm > 0 {
		return m.PropagationDBPerCm
	}
	return PropagationLossDBPerCm
}

func (m *LossModel) coupling() unit.Decibel {
	if m.CouplingDB > 0 {
		return m.CouplingDB
	}
	return CouplingLossDB
}

// SampleStitchLoss draws one reticle-stitch loss. The distribution is
// a Gaussian truncated to [0, StitchLossMaxDB] by resampling, which is
// both physical (loss cannot be negative) and matches the bounded axis
// of Figure 3b. With a nil stream the mean is returned.
func (m *LossModel) SampleStitchLoss() unit.Decibel {
	if m.rand == nil {
		return StitchLossMeanDB
	}
	for {
		v := unit.Decibel(m.rand.Normal(float64(StitchLossMeanDB), float64(StitchLossSDDB)))
		if v >= 0 && v <= StitchLossMaxDB {
			return v
		}
	}
}

// Crossing returns a crossing loss element.
func (m *LossModel) Crossing() LossElement {
	return LossElement{Kind: LossCrossing, DB: m.crossing()}
}

// Stitch returns a sampled stitch loss element.
func (m *LossModel) Stitch() LossElement {
	return LossElement{Kind: LossStitch, DB: m.SampleStitchLoss()}
}

// Propagation returns the propagation loss element for a waveguide of
// the given length.
func (m *LossModel) Propagation(length unit.Meters) LossElement {
	cm := float64(length) / float64(unit.Centimeter)
	return LossElement{Kind: LossPropagation, DB: unit.Decibel(cm) * m.propagationPerCm()}
}

// MZIPass returns the insertion loss element for traversing one MZI.
func (m *LossModel) MZIPass() LossElement {
	return LossElement{Kind: LossMZI, DB: MZIInsertionLossDB}
}

// Coupling returns one chip-waveguide coupling loss element.
func (m *LossModel) Coupling() LossElement {
	return LossElement{Kind: LossCoupling, DB: m.coupling()}
}

// FiberHop returns the loss element of one inter-wafer fiber hop.
func (m *LossModel) FiberHop() LossElement {
	return LossElement{Kind: LossFiber, DB: FiberHopLossDB}
}

// TotalLossDB sums the elements' losses.
func TotalLossDB(elements []LossElement) unit.Decibel {
	var total unit.Decibel
	for _, e := range elements {
		total += e.DB
	}
	return total
}

// LossBreakdown is a per-kind loss aggregate, indexed by LossKind. A
// value type (no allocation, no aliasing): absent kinds read as zero,
// exactly like the map it replaced.
type LossBreakdown [NumLossKinds]unit.Decibel

// Total sums the breakdown.
func (b LossBreakdown) Total() unit.Decibel {
	var total unit.Decibel
	for _, v := range b {
		total += v
	}
	return total
}

// LossByKind aggregates the per-kind contributions, useful for loss
// breakdown reports.
func LossByKind(elements []LossElement) LossBreakdown {
	var out LossBreakdown
	for _, e := range elements {
		out[e.Kind] += e.DB
	}
	return out
}
