package viz

import (
	"strings"
	"testing"

	"lightpath/internal/alloc"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/wafer"
)

func TestRackLayersFig5b(t *testing.T) {
	tor, a, err := alloc.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	out := RackLayers(tor, a, nil)
	// Four Z planes, top first.
	if !strings.Contains(out, "z=3") || !strings.Contains(out, "z=0") {
		t.Fatalf("missing planes:\n%s", out)
	}
	if strings.Index(out, "z=3") > strings.Index(out, "z=0") {
		t.Fatal("planes not top-first")
	}
	// The z=3 plane holds Slice-1 ('1') and Slice-2 ('2'); z=0 holds
	// Slice-4 ('4').
	planes := strings.Split(out, "z=")
	if !strings.Contains(planes[1], "1 1 1 1") || !strings.Contains(planes[1], "2 2 2 2") {
		t.Fatalf("z=3 plane wrong:\n%s", planes[1])
	}
	if !strings.Contains(planes[4], "4 4 4 4") {
		t.Fatalf("z=0 plane wrong:\n%s", planes[4])
	}
	// Legend names every slice.
	for _, name := range []string{"Slice-1", "Slice-2", "Slice-3", "Slice-4"} {
		if !strings.Contains(out, name) {
			t.Fatalf("legend missing %s", name)
		}
	}
	// A full rack shows no free marker.
	if strings.Contains(out, "= free") {
		t.Fatal("full rack claims free chips")
	}
}

func TestRackLayersFailuresAndFree(t *testing.T) {
	sc, err := alloc.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	out := RackLayers(sc.Torus, sc.Alloc, map[int]bool{sc.FailedChip: true})
	if !strings.Contains(out, "X") || !strings.Contains(out, "= failed (1 chips)") {
		t.Fatalf("failed chip not rendered:\n%s", out)
	}
	if !strings.Contains(out, "= free (8 chips)") {
		t.Fatalf("free chips not rendered:\n%s", out)
	}
}

func TestRackLayersLowDims(t *testing.T) {
	// 1-D and 2-D tori render without panicking.
	t1 := torus.New(torus.Shape{4})
	a1, _ := torus.NewAllocation(t1, []*torus.Slice{
		{Name: "line", Origin: torus.Coord{0}, Shape: torus.Shape{2}},
	})
	if out := RackLayers(t1, a1, nil); !strings.Contains(out, "1 1 . .") {
		t.Fatalf("1-D render:\n%s", out)
	}
	t2 := torus.New(torus.Shape{2, 2})
	a2, _ := torus.NewAllocation(t2, nil)
	if out := RackLayers(t2, a2, nil); !strings.Contains(out, ". .") {
		t.Fatalf("2-D render:\n%s", out)
	}
}

func TestSliceSymbolRange(t *testing.T) {
	if sliceSymbol(-1) != '.' || sliceSymbol(0) != '1' || sliceSymbol(8) != '9' {
		t.Fatal("digit symbols wrong")
	}
	if sliceSymbol(9) != 'A' || sliceSymbol(34) != 'Z' {
		t.Fatal("letter symbols wrong")
	}
	if sliceSymbol(35) != '?' {
		t.Fatal("overflow symbol wrong")
	}
}

func TestWaferOccupancy(t *testing.T) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := route.NewAllocator(rack, rng.New(1))
	if _, err := a.Establish(route.Request{A: 0, B: 33, Width: 4}, 0); err != nil {
		t.Fatal(err)
	}
	out := WaferOccupancy(rack)
	if !strings.Contains(out, "wafer 0") || !strings.Contains(out, "wafer 1") {
		t.Fatalf("missing wafers:\n%s", out)
	}
	// Endpoint tiles show 4 lasers in use.
	if !strings.Contains(out, "4") {
		t.Fatalf("laser usage not shown:\n%s", out)
	}
	if !strings.Contains(out, "fibers in use: 1 (chain cascade, 1 trunks)") {
		t.Fatalf("fiber line wrong:\n%s", out)
	}
}

func TestWaferOccupancySaturatedTile(t *testing.T) {
	cfg := wafer.DefaultConfig()
	rack, err := wafer.NewRack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate tile 0's 16 lasers.
	if err := rack.TileOf(0).Reserve(16); err != nil {
		t.Fatal(err)
	}
	if out := WaferOccupancy(rack); !strings.Contains(out, "*") {
		t.Fatalf("saturated tile not starred:\n%s", out)
	}
}
