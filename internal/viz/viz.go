// Package viz renders rack allocations and wafer occupancy as ASCII
// diagrams — the textual equivalent of the paper's Figures 5b and 6a,
// used by the CLI's show command and handy when debugging scenarios.
package viz

import (
	"fmt"
	"strings"

	"lightpath/internal/torus"
	"lightpath/internal/wafer"
)

// sliceSymbols indexes slices to single characters: 1-9 then A-Z.
func sliceSymbol(i int) byte {
	switch {
	case i < 0:
		return '.'
	case i < 9:
		return byte('1' + i)
	case i < 9+26:
		return byte('A' + i - 9)
	default:
		return '?'
	}
}

// RackLayers renders a 3-D rack allocation as one grid per Z plane
// (top plane first, matching the paper's cube drawings): each cell is
// the owning slice's symbol, '.' for free chips and 'X' for failed
// ones. Non-3-D tori render as a single plane.
func RackLayers(t *torus.Torus, a *torus.Allocation, failed map[int]bool) string {
	var b strings.Builder
	zDim := t.Dims() - 1
	zExtent := t.Extent(zDim)
	for z := zExtent - 1; z >= 0; z-- {
		if zExtent > 1 {
			fmt.Fprintf(&b, "z=%d\n", z)
		}
		writePlane(&b, t, a, failed, z)
	}
	// Legend.
	for i, s := range a.Slices() {
		fmt.Fprintf(&b, "  %c = %s (%s)\n", sliceSymbol(i), s.Name, s.Shape)
	}
	if len(a.FreeChips()) > 0 {
		fmt.Fprintf(&b, "  . = free (%d chips)\n", len(a.FreeChips()))
	}
	if len(failed) > 0 {
		fmt.Fprintf(&b, "  X = failed (%d chips)\n", len(failed))
	}
	return b.String()
}

// writePlane emits one Y-by-X grid at the given Z (or the whole torus
// when it is not 3-D).
func writePlane(b *strings.Builder, t *torus.Torus, a *torus.Allocation, failed map[int]bool, z int) {
	if t.Dims() < 2 {
		b.WriteString("  ")
		for x := 0; x < t.Extent(0); x++ {
			b.WriteByte(cellSymbol(t, a, failed, torus.Coord{x}))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
		return
	}
	for y := t.Extent(1) - 1; y >= 0; y-- {
		b.WriteString("  ")
		for x := 0; x < t.Extent(0); x++ {
			c := make(torus.Coord, t.Dims())
			c[0], c[1] = x, y
			if t.Dims() >= 3 {
				c[2] = z
			}
			b.WriteByte(cellSymbol(t, a, failed, c))
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
}

func cellSymbol(t *torus.Torus, a *torus.Allocation, failed map[int]bool, c torus.Coord) byte {
	chip := t.Index(c)
	if failed[chip] {
		return 'X'
	}
	return sliceSymbol(a.Owner(chip))
}

// WaferOccupancy renders each wafer of a rack as a tile grid showing
// lasers in use per tile (0-9, '*' for 10+), plus bus and fiber
// utilization counters — a quick view of how loaded the photonic
// fabric is.
func WaferOccupancy(r *wafer.Rack) string {
	var b strings.Builder
	cfg := r.Config()
	for w := 0; w < r.NumWafers(); w++ {
		wf := r.Wafer(w)
		h, v := wf.BusesInUse()
		fmt.Fprintf(&b, "wafer %d (buses in use: %d horizontal, %d vertical)\n", w, h, v)
		for row := 0; row < cfg.Rows; row++ {
			b.WriteString("  ")
			for col := 0; col < cfg.Cols; col++ {
				used := cfg.LasersPerTile - wf.Tile(row, col).FreeLasers()
				switch {
				case used == 0:
					b.WriteByte('.')
				case used < 10:
					b.WriteByte(byte('0' + used))
				default:
					b.WriteByte('*')
				}
				b.WriteByte(' ')
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "fibers in use: %d (%s cascade, %d trunks)\n",
		r.FibersInUse(), r.Topology(), r.NumTrunks())
	return b.String()
}
