package hostnet

import (
	"math"
	"testing"
	"testing/quick"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mods := []func(*Params){
		func(p *Params) { p.MTU = 0 },
		func(p *Params) { p.PacketBandwidth = 0 },
		func(p *Params) { p.CircuitBandwidth = 0 },
		func(p *Params) { p.Hops = -1 },
		func(p *Params) { p.MaxCachedCircuits = -1 },
	}
	for i, mod := range mods {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPacketLatencyComponents(t *testing.T) {
	p := DefaultParams()
	// Zero-size message: software overhead only.
	if got := p.PacketLatency(0); got != p.SoftwareOverhead {
		t.Fatalf("zero-size latency = %v", got)
	}
	// One MTU: sw + max(serialization, 1 pkt processing) + hops + prop.
	ser := p.PacketBandwidth.TimeFor(p.MTU)
	want := p.SoftwareOverhead + ser + 2*p.SwitchLatency + p.Propagation
	if ser < p.PerPacketOverhead {
		want = p.SoftwareOverhead + p.PerPacketOverhead + 2*p.SwitchLatency + p.Propagation
	}
	if got := p.PacketLatency(p.MTU); math.Abs(float64(got-want)) > 1e-15 {
		t.Fatalf("1-MTU latency = %v, want %v", got, want)
	}
	// Monotone in size.
	prev := unit.Seconds(0)
	for s := unit.Bytes(64); s <= 64*unit.MiB; s *= 4 {
		l := p.PacketLatency(s)
		if l < prev {
			t.Fatalf("packet latency not monotone at %v", s)
		}
		prev = l
	}
}

func TestCircuitLatencyWarmVsCold(t *testing.T) {
	p := DefaultParams()
	size := 64 * unit.KiB
	cold := p.CircuitLatency(size, false)
	warm := p.CircuitLatency(size, true)
	if diff := cold - warm; math.Abs(float64(diff-p.CircuitSetup)) > 1e-15 {
		t.Fatalf("cold-warm gap = %v, want setup %v", diff, p.CircuitSetup)
	}
}

// TestCrossover captures the §1/§5 stack trade-off: small messages
// favor today's packet stack (no 3.7 us setup); large ones favor the
// circuit stack (no per-packet tax, more bandwidth).
func TestCrossover(t *testing.T) {
	p := DefaultParams()
	small := 512 * unit.Bytes(1)
	if pkt, circ := p.PacketLatency(small), p.CircuitLatency(small, false); circ <= pkt {
		t.Fatalf("512B: circuit cold %v should lose to packet %v", circ, pkt)
	}
	big := 16 * unit.MiB
	if pkt, circ := p.PacketLatency(big), p.CircuitLatency(big, false); pkt <= circ {
		t.Fatalf("16MB: packet %v should lose to circuit %v", pkt, circ)
	}
	// Warm circuits win even for small messages (no setup, no
	// per-packet tax, higher rate).
	if pkt, circ := p.PacketLatency(small), p.CircuitLatency(small, true); circ >= pkt {
		t.Fatalf("512B warm: circuit %v should beat packet %v", circ, pkt)
	}
	x := p.CrossoverSize()
	if x <= 0 {
		t.Fatalf("crossover = %v, want positive", x)
	}
	// The analytic crossover is consistent with the latency functions.
	if pkt, circ := p.PacketLatency(x*2), p.CircuitLatency(x*2, false); pkt < circ {
		t.Fatalf("above crossover (%v): packet still wins", x)
	}
}

func TestCrossoverDegenerateCases(t *testing.T) {
	p := DefaultParams()
	p.CircuitBandwidth = p.PacketBandwidth
	p.PerPacketOverhead = 0 // packets as cheap per byte as circuits
	if got := p.CrossoverSize(); got != -1 {
		t.Fatalf("no-advantage crossover = %v, want -1", got)
	}
	p = DefaultParams()
	p.CircuitSetup = 0
	if got := p.CrossoverSize(); got != 0 {
		t.Fatalf("free-setup crossover = %v, want 0", got)
	}
}

// TestCrossoverConsistentWithLatencies: the analytic crossover agrees
// with the latency functions on both sides, including in the regime
// where per-packet processing (not serialization) limits the packet
// stack.
func TestCrossoverConsistentWithLatencies(t *testing.T) {
	p := DefaultParams()
	x := p.CrossoverSize()
	below, above := x/2, x*2
	if pkt, circ := p.PacketLatency(below), p.CircuitLatency(below, false); pkt >= circ {
		t.Fatalf("below crossover (%v): packet %v >= circuit %v", below, pkt, circ)
	}
	if pkt, circ := p.PacketLatency(above), p.CircuitLatency(above, false); pkt <= circ {
		t.Fatalf("above crossover (%v): packet %v <= circuit %v", above, pkt, circ)
	}
}

func TestRunPacketTrace(t *testing.T) {
	p := DefaultParams()
	trace := Trace{
		{At: 0, Dst: 1, Size: 4 * unit.KiB},
		{At: 0, Dst: 2, Size: 4 * unit.KiB}, // queues behind the first
	}
	res, err := RunPacketTrace(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || len(res.PerMessage) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.PerMessage[1] <= res.PerMessage[0] {
		t.Fatal("queued message should see higher latency")
	}
	if res.Setups != 0 {
		t.Fatal("packet stack performed circuit setups")
	}
}

func TestRunCircuitTraceCaching(t *testing.T) {
	p := DefaultParams()
	// Three back-to-back messages to one destination: one setup.
	trace := Trace{
		{At: 0, Dst: 1, Size: 64 * unit.KiB},
		{At: 10 * unit.Microsecond, Dst: 1, Size: 64 * unit.KiB},
		{At: 20 * unit.Microsecond, Dst: 1, Size: 64 * unit.KiB},
	}
	res, err := RunCircuitTrace(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setups != 1 {
		t.Fatalf("setups = %d, want 1 (cached)", res.Setups)
	}
	// First message pays the setup; later ones are faster.
	if res.PerMessage[1] >= res.PerMessage[0] {
		t.Fatal("warm message not faster than cold")
	}
}

func TestRunCircuitTraceIdleTimeout(t *testing.T) {
	p := DefaultParams()
	p.IdleTimeout = 50 * unit.Microsecond
	trace := Trace{
		{At: 0, Dst: 1, Size: unit.KiB},
		{At: 200 * unit.Microsecond, Dst: 1, Size: unit.KiB}, // idle gap > timeout
	}
	res, err := RunCircuitTrace(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setups != 2 || res.Teardowns != 1 {
		t.Fatalf("setups = %d teardowns = %d, want 2/1", res.Setups, res.Teardowns)
	}
}

func TestRunCircuitTraceLRUEviction(t *testing.T) {
	p := DefaultParams()
	p.MaxCachedCircuits = 2
	p.IdleTimeout = unit.Seconds(1) // effectively never idle out
	trace := Trace{
		{At: 0, Dst: 1, Size: unit.KiB},
		{At: 1 * unit.Microsecond, Dst: 2, Size: unit.KiB},
		{At: 2 * unit.Microsecond, Dst: 3, Size: unit.KiB}, // evicts LRU (dst 1)
		{At: 3 * unit.Microsecond, Dst: 1, Size: unit.KiB}, // cold again
	}
	res, err := RunCircuitTrace(p, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Setups != 4 {
		t.Fatalf("setups = %d, want 4 (dst 1 evicted and re-set-up)", res.Setups)
	}
	if res.Teardowns != 2 {
		t.Fatalf("teardowns = %d, want 2 (two evictions)", res.Teardowns)
	}
}

func TestGenerateTraceShapes(t *testing.T) {
	r := rng.New(3)
	for _, kind := range []WorkloadKind{WorkloadRPC, WorkloadBulk, WorkloadBursty} {
		trace := GenerateTrace(kind, 100, r.Split(kind.String()))
		if len(trace) != 100 {
			t.Fatalf("%v: %d messages", kind, len(trace))
		}
		prev := unit.Seconds(-1)
		for _, m := range trace {
			if m.At < prev {
				t.Fatalf("%v: trace not time-ordered", kind)
			}
			prev = m.At
			if m.Size <= 0 {
				t.Fatalf("%v: non-positive size", kind)
			}
		}
	}
	if WorkloadKind(9).String() != "WorkloadKind(9)" {
		t.Fatal("unknown workload name")
	}
}

func TestGenerateTracePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	GenerateTrace(WorkloadKind(9), 1, rng.New(1))
}

// TestWorkloadVerdicts: the stack comparison per workload class —
// bulk strongly favors circuits; RPC latency favors packets unless
// circuits stay warm.
func TestWorkloadVerdicts(t *testing.T) {
	p := DefaultParams()
	r := rng.New(77)

	bulk := GenerateTrace(WorkloadBulk, 200, r.Split("bulk"))
	pb, err := RunPacketTrace(p, bulk)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := RunCircuitTrace(p, bulk)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Mean >= pb.Mean {
		t.Fatalf("bulk: circuit mean %v should beat packet %v", cb.Mean, pb.Mean)
	}

	// RPC with generous idle timeout: circuits stay warm to the few
	// destinations and win on mean latency too.
	rpc := GenerateTrace(WorkloadRPC, 500, r.Split("rpc"))
	warm := p
	warm.IdleTimeout = unit.Seconds(1)
	cr, err := RunCircuitTrace(warm, rpc)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Setups > 8 {
		t.Fatalf("rpc warm setups = %d, want <= destinations", cr.Setups)
	}
	pr, err := RunPacketTrace(p, rpc)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Mean >= pr.Mean {
		t.Fatalf("warm rpc: circuit mean %v should beat packet %v", cr.Mean, pr.Mean)
	}
}

// TestBurstyTimeoutTradeoff: too-short idle timeouts re-pay the setup
// on every burst; long ones hold resources but avoid setups.
func TestBurstyTimeoutTradeoff(t *testing.T) {
	r := rng.New(99)
	trace := GenerateTrace(WorkloadBursty, 400, r)
	short := DefaultParams()
	short.IdleTimeout = 10 * unit.Microsecond
	long := DefaultParams()
	long.IdleTimeout = 10 * unit.Millisecond

	rs, err := RunCircuitTrace(short, trace)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RunCircuitTrace(long, trace)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Setups <= rl.Setups {
		t.Fatalf("short timeout setups %d <= long %d", rs.Setups, rl.Setups)
	}
	if rl.Mean > rs.Mean {
		t.Fatalf("long-timeout mean %v worse than short %v", rl.Mean, rs.Mean)
	}
}

// Property: per-message latencies are positive and Makespan >= every
// delivery; stats are within [min, max].
func TestTraceProperties(t *testing.T) {
	f := func(seed uint64, kindRaw uint8) bool {
		kind := WorkloadKind(kindRaw % 3)
		trace := GenerateTrace(kind, 60, rng.New(seed))
		p := DefaultParams()
		for _, run := range []func(Params, Trace) (Result, error){RunPacketTrace, RunCircuitTrace} {
			res, err := run(p, trace)
			if err != nil {
				return false
			}
			min, max := res.PerMessage[0], res.PerMessage[0]
			for _, l := range res.PerMessage {
				if l <= 0 {
					return false
				}
				if l < min {
					min = l
				}
				if l > max {
					max = l
				}
			}
			if res.Mean < min || res.Mean > max || res.P99 > max || res.P50 < min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
