package hostnet

import (
	"lightpath/internal/unit"
)

// This file models the eager-versus-rendezvous protocol choice inside
// the circuit-switched stack — a classic host-networking design point
// that server-scale optics reopens (§1). Eager sends copy the payload
// through a pre-posted bounce buffer (no handshake, but a receiver-side
// memory copy); rendezvous sends handshake first (one round trip) and
// then stream zero-copy at the full circuit rate.

// ProtocolParams extends Params with the memory-system constants the
// protocol choice depends on.
type ProtocolParams struct {
	Params
	// MemBandwidth is the receiver's copy bandwidth for draining the
	// eager bounce buffer.
	MemBandwidth unit.BitRate
	// EagerLimit is the largest message sent eagerly (the bounce
	// buffer size); larger messages always use rendezvous.
	EagerLimit unit.Bytes
}

// DefaultProtocolParams models an HBM-class accelerator host.
func DefaultProtocolParams() ProtocolParams {
	return ProtocolParams{
		Params:       DefaultParams(),
		MemBandwidth: unit.GBps(1200), // HBM copy engine
		EagerLimit:   64 * unit.KiB,
	}
}

// EagerLatency returns the warm-circuit latency of an eager send: the
// wire transfer plus the receiver's bounce-buffer copy (they pipeline
// per message in steady state, but a single message sees both).
func (p ProtocolParams) EagerLatency(size unit.Bytes, warm bool) unit.Seconds {
	return p.CircuitLatency(size, warm) + p.MemBandwidth.TimeFor(size)
}

// RendezvousLatency returns the latency of a rendezvous send: a
// request/grant handshake (one full round trip of software overhead
// and propagation) followed by the zero-copy stream.
func (p ProtocolParams) RendezvousLatency(size unit.Bytes, warm bool) unit.Seconds {
	handshake := 2*p.SoftwareOverhead + 2*p.Propagation
	return handshake + p.CircuitLatency(size, warm)
}

// BestProtocolLatency returns the lower of the two protocols for the
// message, honoring the eager limit, and reports which won.
func (p ProtocolParams) BestProtocolLatency(size unit.Bytes, warm bool) (unit.Seconds, string) {
	rdv := p.RendezvousLatency(size, warm)
	if size > p.EagerLimit {
		return rdv, "rendezvous"
	}
	eager := p.EagerLatency(size, warm)
	if eager <= rdv {
		return eager, "eager"
	}
	return rdv, "rendezvous"
}

// ProtocolCrossover returns the message size where rendezvous starts
// beating eager on a warm circuit: the size at which the bounce copy
// costs more than the handshake round trip.
func (p ProtocolParams) ProtocolCrossover() unit.Bytes {
	handshake := 2*p.SoftwareOverhead + 2*p.Propagation
	perByteCopy := 1 / p.MemBandwidth.BytesPerSecond()
	if perByteCopy <= 0 {
		return 0
	}
	return unit.Bytes(float64(handshake) / perByteCopy)
}
