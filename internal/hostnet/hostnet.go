// Package hostnet models the host networking software stack the paper
// says server-scale optics will necessitate (§1: "server-scale optics
// will necessitate the development of new host networking software
// stacks optimized for circuit-switching as opposed to today's
// packetized data transmission").
//
// Two transports are modeled at message granularity:
//
//   - Packet: today's stack. Every message is segmented into MTU-sized
//     packets, each paying per-packet software/NIC processing, and the
//     payload crosses a store-and-forward switched fabric (per-hop
//     switch latency).
//
//   - Circuit: the LIGHTPATH stack. A message needs an optical circuit
//     to its destination; establishing one costs the MZI
//     reconfiguration delay, but once up, data streams at the full
//     circuit rate with no per-packet processing and no intermediate
//     switching. Circuits are cached per destination and torn down
//     after an idle timeout (holding one occupies a laser and a SerDes
//     port).
//
// RunTrace drives either transport over a timestamped message trace
// and reports per-message latency, which is how the paper's §5
// trade-off — reconfiguration delay versus end-to-end performance —
// becomes measurable for host traffic rather than collectives.
package hostnet

import (
	"fmt"
	"math"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

// Params are the constants of both stacks.
type Params struct {
	// SoftwareOverhead is the per-message send cost (syscall, driver,
	// DMA setup) paid by both transports.
	SoftwareOverhead unit.Seconds

	// MTU is the packet payload size of the packetized stack.
	MTU unit.Bytes
	// PerPacketOverhead is the per-packet processing cost (header
	// build, checksum, descriptor ring) of the packetized stack. It
	// pipelines with serialization: the sender is limited by the
	// slower of the NIC and the packet-processing path.
	PerPacketOverhead unit.Seconds
	// PacketBandwidth is the NIC line rate.
	PacketBandwidth unit.BitRate
	// SwitchLatency is the per-hop store-and-forward latency of the
	// electrical packet fabric; Hops is the path length.
	SwitchLatency unit.Seconds
	Hops          int

	// CircuitBandwidth is the optical circuit rate (width x 224 Gbps).
	CircuitBandwidth unit.BitRate
	// CircuitSetup is the circuit establishment time (MZI settling).
	CircuitSetup unit.Seconds
	// IdleTimeout tears down a cached circuit after this much idle
	// time; zero means tear down after every message.
	IdleTimeout unit.Seconds
	// MaxCachedCircuits bounds concurrently held circuits (laser and
	// SerDes port budget); 0 means unlimited.
	MaxCachedCircuits int

	// Propagation is the one-way flight time, identical for both
	// (same physical distance).
	Propagation unit.Seconds
}

// DefaultParams models a contemporary host against a LIGHTPATH
// circuit of 4 wavelengths.
func DefaultParams() Params {
	return Params{
		SoftwareOverhead:  1 * unit.Microsecond,
		MTU:               4 * unit.KiB,
		PerPacketOverhead: 100 * unit.Nanosecond,
		PacketBandwidth:   unit.GBps(100), // one dimension's share of chip egress
		SwitchLatency:     500 * unit.Nanosecond,
		Hops:              2,
		CircuitBandwidth:  4 * phy.WavelengthCapacity,
		CircuitSetup:      phy.ReconfigLatency,
		IdleTimeout:       100 * unit.Microsecond,
		MaxCachedCircuits: 16,
		Propagation:       20 * unit.Nanosecond, // ~4 m of fiber/waveguide
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.MTU <= 0:
		return fmt.Errorf("hostnet: non-positive MTU")
	case p.PacketBandwidth <= 0:
		return fmt.Errorf("hostnet: non-positive packet bandwidth")
	case p.CircuitBandwidth <= 0:
		return fmt.Errorf("hostnet: non-positive circuit bandwidth")
	case p.Hops < 0:
		return fmt.Errorf("hostnet: negative hop count")
	case p.MaxCachedCircuits < 0:
		return fmt.Errorf("hostnet: negative circuit cache bound")
	}
	return nil
}

// PacketLatency returns the one-shot latency of sending size bytes
// over the packetized stack: software overhead, the slower of wire
// serialization and per-packet processing (they pipeline), per-hop
// switching of the first packet (cut-through pipelining hides the
// rest), and propagation.
func (p Params) PacketLatency(size unit.Bytes) unit.Seconds {
	if size <= 0 {
		return p.SoftwareOverhead
	}
	packets := math.Ceil(float64(size) / float64(p.MTU))
	serialization := p.PacketBandwidth.TimeFor(size)
	processing := unit.Seconds(packets) * p.PerPacketOverhead
	pipeline := serialization
	if processing > pipeline {
		pipeline = processing
	}
	return p.SoftwareOverhead + pipeline +
		unit.Seconds(p.Hops)*p.SwitchLatency + p.Propagation
}

// CircuitLatency returns the one-shot latency over the circuit stack,
// given whether a circuit to the destination is already up.
func (p Params) CircuitLatency(size unit.Bytes, warm bool) unit.Seconds {
	lat := p.SoftwareOverhead + p.CircuitBandwidth.TimeFor(size) + p.Propagation
	if !warm {
		lat += p.CircuitSetup
	}
	return lat
}

// CrossoverSize returns the message size at which a cold circuit send
// matches the packet stack: below it, packets win; above, circuits do
// (and warm circuits win almost everywhere). Returns 0 when circuits
// win even at one byte, and -1 when packets always win (circuit not
// faster per byte).
func (p Params) CrossoverSize() unit.Bytes {
	// Solve packet(size) = circuit_cold(size) for size. The packet
	// stack's effective per-byte cost is the slower of wire
	// serialization and per-packet processing (they pipeline):
	// sw + s*perByte_p + hops*lat + prop = sw + setup + s/Bc + prop.
	perBytePacket := 1 / p.PacketBandwidth.BytesPerSecond()
	if proc := p.PerPacketOverhead.PerByte(p.MTU); proc > perBytePacket {
		perBytePacket = proc
	}
	perByteGap := perBytePacket - 1/p.CircuitBandwidth.BytesPerSecond()
	fixedGap := float64(p.CircuitSetup) - float64(unit.Seconds(p.Hops)*p.SwitchLatency)
	if perByteGap <= 0 {
		return -1
	}
	if fixedGap <= 0 {
		return 0
	}
	return unit.Bytes(fixedGap / perByteGap)
}
