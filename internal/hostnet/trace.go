package hostnet

import (
	"fmt"
	"sort"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// Msg is one message of a host traffic trace.
type Msg struct {
	// At is the time the application posts the send.
	At unit.Seconds
	// Dst identifies the destination host/chip.
	Dst int
	// Size is the payload.
	Size unit.Bytes
}

// Trace is a time-ordered message sequence from one sender.
type Trace []Msg

// Result summarizes running a trace over one transport.
type Result struct {
	Messages int
	// Mean, P50, P99 are per-message latencies (post-to-delivery).
	Mean, P50, P99 unit.Seconds
	// Makespan is when the last message was delivered.
	Makespan unit.Seconds
	// Setups counts circuit establishments (0 for the packet stack);
	// Teardowns counts idle-timeout teardowns and cache evictions.
	Setups, Teardowns int
	// PerMessage holds each message's latency, trace order.
	PerMessage []unit.Seconds
}

// RunPacketTrace runs the trace over the packetized stack. Messages
// to the same destination serialize on the sender NIC; the model
// charges each message its full one-shot latency starting from
// max(post time, NIC free time).
func RunPacketTrace(p Params, trace Trace) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	res.Messages = len(trace)
	nicFree := unit.Seconds(0)
	for _, m := range trace {
		start := m.At
		if nicFree > start {
			start = nicFree
		}
		lat := p.PacketLatency(m.Size)
		done := start + lat
		// NIC occupied for the serialization portion.
		nicFree = start + p.PacketBandwidth.TimeFor(m.Size) + p.SoftwareOverhead
		res.PerMessage = append(res.PerMessage, done-m.At)
		if done > res.Makespan {
			res.Makespan = done
		}
	}
	res.fillStats()
	return res, nil
}

// circuitState tracks one cached circuit.
type circuitState struct {
	lastUse unit.Seconds
}

// RunCircuitTrace runs the trace over the circuit-switched stack with
// per-destination circuit caching, idle-timeout teardown, and a bound
// on concurrently held circuits (LRU eviction).
func RunCircuitTrace(p Params, trace Trace) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	res.Messages = len(trace)
	circuits := map[int]*circuitState{}
	linkFree := unit.Seconds(0)
	for _, m := range trace {
		start := m.At
		if linkFree > start {
			start = linkFree
		}
		// Expire idle circuits as of this send.
		for dst, st := range circuits {
			if p.IdleTimeout > 0 && start-st.lastUse > p.IdleTimeout {
				delete(circuits, dst)
				res.Teardowns++
			}
		}
		st, warm := circuits[m.Dst]
		if !warm {
			// Evict LRU if the cache is full.
			if p.MaxCachedCircuits > 0 && len(circuits) >= p.MaxCachedCircuits {
				lruDst, lruAt := -1, unit.Seconds(0)
				first := true
				for dst, s := range circuits {
					if first || s.lastUse < lruAt {
						lruDst, lruAt, first = dst, s.lastUse, false
					}
				}
				delete(circuits, lruDst)
				res.Teardowns++
			}
			st = &circuitState{}
			circuits[m.Dst] = st
			res.Setups++
		}
		lat := p.CircuitLatency(m.Size, warm)
		done := start + lat
		st.lastUse = done
		linkFree = start + lat - p.Propagation // sender busy until last byte leaves
		res.PerMessage = append(res.PerMessage, done-m.At)
		if done > res.Makespan {
			res.Makespan = done
		}
	}
	res.fillStats()
	return res, nil
}

func (r *Result) fillStats() {
	if len(r.PerMessage) == 0 {
		return
	}
	sorted := make([]float64, len(r.PerMessage))
	sum := 0.0
	for i, l := range r.PerMessage {
		sorted[i] = float64(l)
		sum += float64(l)
	}
	sort.Float64s(sorted)
	r.Mean = unit.Seconds(sum / float64(len(sorted)))
	r.P50 = unit.Seconds(phy.Percentile(sorted, 50))
	r.P99 = unit.Seconds(phy.Percentile(sorted, 99))
}

// WorkloadKind selects a synthetic trace generator.
type WorkloadKind int

// Workload kinds.
const (
	// WorkloadRPC is many small request messages to few destinations.
	WorkloadRPC WorkloadKind = iota
	// WorkloadBulk is few large transfers.
	WorkloadBulk
	// WorkloadBursty alternates ON periods of back-to-back sends with
	// idle OFF periods longer than typical circuit idle timeouts.
	WorkloadBursty
)

// String names the workload.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadRPC:
		return "rpc"
	case WorkloadBulk:
		return "bulk"
	case WorkloadBursty:
		return "bursty"
	default:
		return fmt.Sprintf("WorkloadKind(%d)", int(k))
	}
}

// GenerateTrace builds a deterministic synthetic trace of n messages.
func GenerateTrace(kind WorkloadKind, n int, r *rng.Rand) Trace {
	trace := make(Trace, 0, n)
	now := unit.Seconds(0)
	switch kind {
	case WorkloadRPC:
		for i := 0; i < n; i++ {
			now += unit.Seconds(r.Exp(float64(5 * unit.Microsecond)))
			trace = append(trace, Msg{
				At:   now,
				Dst:  r.Intn(4),
				Size: unit.Bytes(64 + r.Intn(1984)), // 64B-2KB
			})
		}
	case WorkloadBulk:
		for i := 0; i < n; i++ {
			now += unit.Seconds(r.Exp(float64(200 * unit.Microsecond)))
			trace = append(trace, Msg{
				At:   now,
				Dst:  r.Intn(8),
				Size: unit.Bytes(1+r.Intn(64)) * unit.MiB,
			})
		}
	case WorkloadBursty:
		for i := 0; i < n; i++ {
			if i%8 == 0 && i > 0 {
				now += unit.Seconds(r.Exp(float64(300 * unit.Microsecond))) // OFF
			} else {
				now += unit.Seconds(r.Exp(float64(2 * unit.Microsecond))) // ON
			}
			trace = append(trace, Msg{
				At:   now,
				Dst:  r.Intn(2),
				Size: unit.Bytes(4+r.Intn(60)) * unit.KiB,
			})
		}
	default:
		panic(fmt.Sprintf("hostnet: unknown workload %d", int(kind)))
	}
	return trace
}
