package hostnet

import (
	"math"
	"testing"

	"lightpath/internal/unit"
)

func TestEagerVsRendezvousCrossover(t *testing.T) {
	p := DefaultProtocolParams()
	x := p.ProtocolCrossover()
	if x <= 0 {
		t.Fatalf("crossover = %v", x)
	}
	// Well below the crossover: eager wins (handshake > copy).
	small := x / 4
	if e, r := p.EagerLatency(small, true), p.RendezvousLatency(small, true); e >= r {
		t.Fatalf("small %v: eager %v >= rendezvous %v", small, e, r)
	}
	// Well above: rendezvous wins.
	big := x * 4
	if big > p.EagerLimit {
		big = p.EagerLimit // stay in the eager-eligible range for a fair comparison
	}
	if big > x {
		if e, r := p.EagerLatency(big, true), p.RendezvousLatency(big, true); r >= e {
			t.Fatalf("big %v: rendezvous %v >= eager %v", big, r, e)
		}
	}
}

func TestBestProtocolHonorsEagerLimit(t *testing.T) {
	p := DefaultProtocolParams()
	// Above the limit: always rendezvous, even if eager would be faster.
	lat, proto := p.BestProtocolLatency(p.EagerLimit*2, true)
	if proto != "rendezvous" {
		t.Fatalf("above limit chose %s", proto)
	}
	if want := p.RendezvousLatency(p.EagerLimit*2, true); math.Abs(float64(lat-want)) > 1e-15 {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
	// Tiny message: eager.
	if _, proto := p.BestProtocolLatency(256, true); proto != "eager" {
		t.Fatalf("tiny message chose %s", proto)
	}
}

func TestBestProtocolNeverWorseThanEither(t *testing.T) {
	p := DefaultProtocolParams()
	for size := unit.Bytes(64); size <= 16*unit.MiB; size *= 4 {
		for _, warm := range []bool{true, false} {
			best, _ := p.BestProtocolLatency(size, warm)
			rdv := p.RendezvousLatency(size, warm)
			if best > rdv+1e-15 {
				t.Fatalf("size %v warm %v: best %v > rendezvous %v", size, warm, best, rdv)
			}
			if size <= p.EagerLimit {
				if eager := p.EagerLatency(size, warm); best > eager+1e-15 {
					t.Fatalf("size %v: best %v > eager %v", size, best, eager)
				}
			}
		}
	}
}

func TestEagerIncludesCopyCost(t *testing.T) {
	p := DefaultProtocolParams()
	size := 32 * unit.KiB
	gap := p.EagerLatency(size, true) - p.CircuitLatency(size, true)
	want := p.MemBandwidth.TimeFor(size)
	if math.Abs(float64(gap-want)) > 1e-15 {
		t.Fatalf("copy cost = %v, want %v", gap, want)
	}
}
