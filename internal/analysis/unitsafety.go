package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unitPath is the package defining the physical-quantity newtypes.
const unitPath = "lightpath/internal/unit"

// UnitSafety guards the link-budget math against silent unit mixing.
// The internal/unit newtypes (Decibel, DBm, Bytes, BitRate, Seconds,
// Meters) exist so the type checker rejects e.g. adding a loss in dB
// to a power in dBm — but a bare float64(...) cast erases that
// protection. The analyzer flags binary expressions whose two operands
// are float64 conversions of two *different* unit types, and flags
// exact ==/!= comparisons between two non-constant unit-typed values
// (floating-point results of different evaluation orders rarely
// compare equal; use unit.ApproxEqual).
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "forbid float64 casts that mix distinct unit newtypes and exact ==/!= on unit quantities",
	Run:  runUnitSafety,
}

func runUnitSafety(pass *Pass) error {
	if pass.Pkg.Path() == unitPath {
		// The unit package itself is the blessed home of cross-unit
		// math: conversions between its newtypes are its whole job.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				checkUnitComparison(pass, be)
			case token.ADD, token.SUB, token.MUL, token.QUO,
				token.LSS, token.GTR, token.LEQ, token.GEQ:
				checkMixedCast(pass, be)
			}
			return true
		})
	}
	return nil
}

// checkMixedCast flags `float64(a) OP float64(b)` where a and b have
// different unit newtypes: the casts erase the dimension and let
// incompatible quantities combine silently.
func checkMixedCast(pass *Pass, be *ast.BinaryExpr) {
	lt := unitTypeOfCastArg(pass, be.X)
	rt := unitTypeOfCastArg(pass, be.Y)
	if lt == nil || rt == nil || lt == rt {
		return
	}
	pass.Reportf(be.Pos(), "float64 casts mix %s and %s in one expression; convert explicitly through a unit method instead", typeShort(lt), typeShort(rt))
}

// checkUnitComparison flags exact equality between two non-constant
// unit-typed operands.
func checkUnitComparison(pass *Pass, be *ast.BinaryExpr) {
	lt := unitType(pass.TypeOf(be.X))
	rt := unitType(pass.TypeOf(be.Y))
	if lt == nil && rt == nil {
		return
	}
	if isConstant(pass, be.X) || isConstant(pass, be.Y) {
		// Comparison against a compile-time constant (usually the zero
		// sentinel) is exact by construction.
		return
	}
	t := lt
	if t == nil {
		t = rt
	}
	pass.Reportf(be.Pos(), "exact %s on %s compares floats for identity; use unit.ApproxEqual", be.Op, typeShort(t))
}

// unitTypeOfCastArg returns the unit newtype of e's argument when e is
// a float64(x) conversion of a unit-typed x, else nil.
func unitTypeOfCastArg(pass *Pass, e ast.Expr) *types.Named {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
		return nil
	}
	return unitType(pass.TypeOf(call.Args[0]))
}

// unitType returns t as a float-backed named type declared in
// internal/unit, or nil.
func unitType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitPath {
		return nil
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
		return nil
	}
	return named
}

// isConstant reports whether the type checker evaluated e to a
// compile-time constant.
func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// typeShort renders a named type as pkg.Name.
func typeShort(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
