package analysis

import (
	"go/ast"
	"go/types"
)

// enginePath is the deterministic parallel campaign runner; its Map
// and Stream entry points fan trial closures across worker goroutines.
const enginePath = "lightpath/internal/engine"

// ParCapture enforces leg 1 of internal/engine's determinism contract
// at the source level: a trial closure handed to engine.Map or
// engine.Stream runs concurrently with its siblings, so it must never
// write state captured from the enclosing scope. PR 3 fixed exactly
// this bug by hand — an accumulator mutated inside a Map closure,
// racy under the pool and order-dependent even without the race — and
// this analyzer keeps the class from coming back. Flagged inside a
// trial closure:
//
//   - assignment or ++/-- whose target reads through a captured
//     variable (direct writes, element/field stores like m[k]=v or
//     p.f=v, and *p=v through a captured pointer);
//   - append, delete, or clear applied to a captured container when
//     the result rebinds or mutates captured state;
//   - sends on captured channels (arrival order is schedule-dependent).
//
// Reads of captured state stay legal — shared read-only inputs are the
// whole point of clone-per-trial campaigns — as do writes to the
// closure's own parameters and locals. Stream's consume callback runs
// sequentially in index order and is exempt; only the trial argument
// of Map and Stream is checked. A closure bound to a local variable
// and passed by name is resolved through the enclosing function.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc:  "forbid trial closures passed to engine.Map/engine.Stream from writing captured state",
	Run:  runParCapture,
}

// trialArgIndex maps the engine entry points to the position of the
// concurrently-executed trial closure among their arguments.
var trialArgIndex = map[string]int{
	enginePath + ".Map":    1,
	enginePath + ".Stream": 1,
}

func runParCapture(pass *Pass) error {
	if pass.Pkg.Path() == enginePath {
		// The engine's own tests exercise deliberately-shared state to
		// prove the merge order; the contract binds its callers.
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass, call)
				if fn == nil {
					return true
				}
				idx, ok := trialArgIndex[fn.FullName()]
				if !ok || idx >= len(call.Args) {
					return true
				}
				if lit := resolveFuncLit(pass, fd, call.Args[idx]); lit != nil {
					checkTrialClosure(pass, fn.Name(), lit)
				}
				return true
			})
		}
	}
	return nil
}

// resolveFuncLit returns the function literal an argument denotes:
// either the literal itself, or — when the trial is bound to a local
// variable first — the literal its single assignment in the enclosing
// function carries. A variable assigned more than once, or from
// something other than a literal, resolves to nil (the analyzer stays
// quiet rather than guessing).
func resolveFuncLit(pass *Pass, enclosing *ast.FuncDecl, arg ast.Expr) *ast.FuncLit {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		obj := pass.ObjectOf(a)
		if obj == nil {
			return nil
		}
		var lit *ast.FuncLit
		bindings := 0
		record := func(id *ast.Ident, rhs ast.Expr) {
			if pass.ObjectOf(id) != obj {
				return
			}
			bindings++
			lit, _ = ast.Unparen(rhs).(*ast.FuncLit)
		}
		ast.Inspect(enclosing.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							record(id, n.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						record(name, n.Values[i])
					}
				}
			}
			return true
		})
		if bindings == 1 {
			return lit
		}
	}
	return nil
}

// checkTrialClosure reports every write to captured state inside one
// trial closure.
func checkTrialClosure(pass *Pass, entry string, lit *ast.FuncLit) {
	captured := func(e ast.Expr) *ast.Ident {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return nil
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return nil
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return nil // the closure's own parameter or local
		}
		return id
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id := captured(lhs); id != nil {
					pass.Reportf(lhs.Pos(), "trial closure passed to engine.%s writes captured %q; trials run concurrently — keep per-trial state local and merge via the returned results", entry, id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id := captured(n.X); id != nil {
				pass.Reportf(n.X.Pos(), "trial closure passed to engine.%s mutates captured %q with %s; trials run concurrently — keep per-trial state local and merge via the returned results", entry, id.Name, n.Tok)
			}
		case *ast.SendStmt:
			if id := captured(n.Chan); id != nil {
				pass.Reportf(n.Pos(), "trial closure passed to engine.%s sends on captured channel %q; arrival order depends on the worker schedule — return results and let the engine merge in index order", entry, id.Name)
			}
		case *ast.CallExpr:
			if name := builtinName(pass, n); name == "delete" || name == "clear" {
				if len(n.Args) > 0 {
					if id := captured(n.Args[0]); id != nil {
						pass.Reportf(n.Pos(), "trial closure passed to engine.%s calls %s on captured %q; trials run concurrently — keep per-trial state local and merge via the returned results", entry, name, id.Name)
					}
				}
			}
		}
		return true
	})
}
