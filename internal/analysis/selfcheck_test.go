package analysis

import (
	"path/filepath"
	"testing"
)

// TestSuiteSelfCheck runs the complete analyzer suite over the
// repository's own source from inside `go test`, filtered through the
// committed baseline — the ISSUE'd "repo analyzes itself" gate, one
// level below the lightpath-vet CLI so it cannot be skipped by build
// tooling that never invokes the binary. Unlike the CLI gate, this
// test fails on unbaselined findings of ANY severity, warnings
// included: the repository's own source is held to the strictest
// standard, while downstream CI gating distinguishes errors from
// warnings.
func TestSuiteSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis is slow; skipped with -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPatterns(./...) found no packages")
	}
	findings, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := LoadBaseline(filepath.Join(root, "vet_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, suppressed := baseline.Filter(root, findings)
	for _, f := range fresh {
		t.Errorf("unbaselined finding: %s", f)
	}
	// Every baseline entry should still match a real finding; stale
	// entries mean the debt was paid and the baseline should shrink.
	if len(suppressed) < len(baseline.Findings) {
		t.Errorf("baseline has %d entries but only %d findings matched; regenerate with `make vet-baseline`",
			len(baseline.Findings), len(suppressed))
	}
	t.Logf("self-check: %d package(s), %d finding(s) suppressed by baseline", len(pkgs), len(suppressed))
}
