package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the directory the package's sources were read from.
	Dir string
	// Fset is the file set shared by every package in one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's maps for the package's files.
	Info *types.Info
}

// Loader parses and type-checks packages of a single module, resolving
// in-module imports from source and standard-library imports through
// the stdlib source importer. It caches packages by import path, so a
// package shared by several roots is checked once.
type Loader struct {
	// ModuleRoot is the absolute path of the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving module root: %w", err)
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load loads the package with the given in-module import path.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirForPath(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not in module %s", path, l.ModulePath)
	}
	return l.LoadDirAs(dir, path)
}

// LoadDirAs parses and type-checks the non-test .go files in dir as a
// package with the given import path. The path does not have to match
// the directory: fixture tests use this to check testdata sources under
// a synthetic in-module path.
func (l *Loader) LoadDirAs(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if sub, ok := l.dirForPath(ipath); ok {
			p, err := l.LoadDirAs(sub, ipath)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		return l.std.ImportFrom(ipath, dir, 0)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadPatterns resolves command-line package patterns. Supported forms
// are "./..." (every package under the module root), "dir/..."
// (every package under dir), and plain directories like
// "./internal/phy". Results are sorted by import path.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var pkgs []*Package
	add := func(dir string) error {
		path, ok := l.pathForDir(dir)
		if !ok {
			return fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		pkg, err := l.Load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = filepath.Clean(strings.TrimSuffix(base, "/"))
		if base == "" || base == "." {
			base = l.ModuleRoot
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModuleRoot, base)
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		dirs, err := goSourceDirs(base)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			if err := add(dir); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// parseDir parses every non-test .go file in dir, sorted by name so
// that analysis order (and thus finding order) is deterministic.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// dirForPath maps an in-module import path to its source directory.
// The second result is false for paths outside the module.
func (l *Loader) dirForPath(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// pathForDir maps a directory inside the module to its import path.
func (l *Loader) pathForDir(dir string) (string, bool) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}

// goSourceDirs returns every directory under root that contains at
// least one non-test .go file, skipping testdata, vendor, and hidden
// directories.
func goSourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	return dirs, nil
}

// importerFunc adapts a function to both go/types importer interfaces.
type importerFunc func(path string) (*types.Package, error)

// Import implements types.Importer.
func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ImportFrom implements types.ImporterFrom; the loader resolves paths
// without regard to the importing directory.
func (f importerFunc) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return f(path)
}
