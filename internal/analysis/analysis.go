// Package analysis implements lightpath-vet, the repository's
// static-analysis suite. It provides a multi-pass analyzer framework —
// a package loader, a shared fact base (symbol table + approximate
// call graph, see Facts), and a reporting layer (stable finding
// hashes, a suppression baseline, SARIF output) — built entirely on
// the standard library's go/parser, go/types, and go/importer: no
// golang.org/x/tools import, so go.mod stays dependency-free.
//
// The analyzers encode invariants that the simulator's reproducibility
// argument depends on and that ordinary `go vet` cannot check:
//
//   - determinism: no wall-clock, global-rand, or process-environment
//     entropy, no iteration-order-dependent output from map ranges.
//   - unitsafety: no arithmetic that launders distinct internal/unit
//     newtypes through bare float64(...) casts, and no exact ==/!= on
//     float-backed unit quantities.
//   - unittaint: the interprocedural extension of unitsafety — unit
//     types laundered into float64 parameters are tracked through the
//     call graph, so cross-unit arithmetic spanning a call site is
//     caught too.
//   - layering: the package dependency DAG is explicit and enforced.
//   - errdrop: error returns may not be silently discarded, including
//     inside deferred closures and goroutine bodies.
//   - exportdoc: exported identifiers under internal/... are documented.
//   - hotalloc: loops marked //lightpath:hotloop may not allocate
//     slices or maps per iteration.
//   - parcapture: closures passed as trial bodies to engine.Map and
//     engine.Stream may not write state captured from the enclosing
//     scope (the data-race class fixed by hand in PR 3).
//   - arenaescape: pooled or //lightpath:arena-marked scratch buffers
//     may not escape the function that borrowed them (the aliasing
//     hazard class from PR 5's arena work).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity ranks a finding for CI gating: errors fail the build,
// warnings are surfaced but advisory.
type Severity int

// The two severity levels. The zero value is SevError so an analyzer
// that never sets a severity gates at full strength.
const (
	SevError Severity = iota
	SevWarning
)

// String renders the severity in the SARIF level vocabulary.
func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Severity is the producing analyzer's severity.
	Severity Severity
	// Pos locates the offending source construct.
	Pos token.Position
	// Message describes the violation and, where possible, the fix.
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Fset maps token positions back to file locations.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression, definition, and use maps.
	Info *types.Info
	// Facts is the cross-package fact base shared by every pass of one
	// Run: the symbol table, the approximate call graph, and derived
	// interprocedural facts. Nil only when a test runs an analyzer
	// without Run (the fixture harness always goes through Run).
	Facts *Facts

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Severity: p.analyzer.Severity,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil if the type checker
// did not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (its use or its
// definition), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// Analyzer is one named check over a single package. Analyzers that
// need cross-package facts read them from Pass.Facts; the framework
// builds the fact base once per Run, before any analyzer executes.
type Analyzer struct {
	// Name identifies the analyzer in findings and on the command line.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Severity classifies every finding the analyzer reports; the zero
	// value is SevError.
	Severity Severity
	// Run inspects the pass's package and reports findings via the pass.
	Run func(*Pass) error
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, UnitSafety, UnitTaint, Layering, ErrDrop, ExportDoc, Hotalloc, ParCapture, ArenaEscape}
}

// Run applies each analyzer to each package and returns the combined
// findings sorted by position. Before the first analyzer executes it
// builds the shared fact base (symbol table + call graph) over the
// whole package set, so interprocedural analyzers see call sites in
// every loaded package, not just the one their pass covers. An
// analyzer error aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := BuildFacts(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    facts,
				analyzer: a,
				findings: &findings,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
