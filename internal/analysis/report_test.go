package analysis

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// mkFinding builds a finding at the given location for hash tests.
func mkFinding(analyzer, file string, line int, msg string) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

// TestHashIgnoresLineDrift is the property the baseline depends on:
// moving a finding to a different line must not change its hash, while
// changing its message, file, or analyzer must.
func TestHashIgnoresLineDrift(t *testing.T) {
	root := filepath.FromSlash("/mod")
	base := mkFinding("errdrop", "/mod/pkg/a.go", 10, "call discards the error")
	drifted := mkFinding("errdrop", "/mod/pkg/a.go", 99, "call discards the error")
	if base.Hash(root, 0) != drifted.Hash(root, 0) {
		t.Error("hash changed under line drift")
	}
	for name, other := range map[string]Finding{
		"message":  mkFinding("errdrop", "/mod/pkg/a.go", 10, "different message"),
		"file":     mkFinding("errdrop", "/mod/pkg/b.go", 10, "call discards the error"),
		"analyzer": mkFinding("hotalloc", "/mod/pkg/a.go", 10, "call discards the error"),
	} {
		if base.Hash(root, 0) == other.Hash(root, 0) {
			t.Errorf("hash insensitive to %s", name)
		}
	}
	if base.Hash(root, 0) == base.Hash(root, 1) {
		t.Error("hash insensitive to occurrence ordinal")
	}
}

// TestHashIsModuleRelative: the same finding hashed from two different
// checkout locations must agree.
func TestHashIsModuleRelative(t *testing.T) {
	a := mkFinding("errdrop", filepath.FromSlash("/home/a/mod/pkg/x.go"), 5, "msg")
	b := mkFinding("errdrop", filepath.FromSlash("/ci/workdir/mod/pkg/x.go"), 5, "msg")
	ha := a.Hash(filepath.FromSlash("/home/a/mod"), 0)
	hb := b.Hash(filepath.FromSlash("/ci/workdir/mod"), 0)
	if ha != hb {
		t.Errorf("hash depends on checkout location: %s != %s", ha, hb)
	}
}

// TestHashFindingsOrdinals: identical findings in one file get distinct
// hashes via occurrence ordinals; distinct findings are unaffected.
func TestHashFindingsOrdinals(t *testing.T) {
	findings := []Finding{
		mkFinding("errdrop", "/mod/a.go", 3, "dup"),
		mkFinding("errdrop", "/mod/a.go", 7, "dup"),
		mkFinding("errdrop", "/mod/a.go", 9, "unique"),
	}
	hashes := HashFindings("/mod", findings)
	if hashes[0] == hashes[1] {
		t.Error("duplicate findings share a hash")
	}
	if hashes[0] != findings[0].Hash("/mod", 0) || hashes[1] != findings[1].Hash("/mod", 1) {
		t.Error("ordinals not assigned in position order")
	}
}

// TestBaselineRoundTrip writes a baseline and reloads it; the reloaded
// baseline must suppress exactly the findings it was built from.
func TestBaselineRoundTrip(t *testing.T) {
	root := "/mod"
	findings := []Finding{
		mkFinding("errdrop", "/mod/a.go", 3, "dropped"),
		mkFinding("hotalloc", "/mod/b.go", 8, "allocates"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(root, findings).Write(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("reloaded %d entries, want 2", len(b.Findings))
	}
	fresh, suppressed := b.Filter(root, findings)
	if len(fresh) != 0 || len(suppressed) != 2 {
		t.Errorf("filter: fresh=%d suppressed=%d, want 0/2", len(fresh), len(suppressed))
	}
	// A new finding stays fresh.
	extra := append(findings, mkFinding("errdrop", "/mod/c.go", 1, "new drop"))
	fresh, suppressed = b.Filter(root, extra)
	if len(fresh) != 1 || len(suppressed) != 2 {
		t.Errorf("filter with new finding: fresh=%d suppressed=%d, want 1/2", len(fresh), len(suppressed))
	}
	// Line drift alone must not un-suppress anything.
	drifted := []Finding{
		mkFinding("errdrop", "/mod/a.go", 33, "dropped"),
		mkFinding("hotalloc", "/mod/b.go", 88, "allocates"),
	}
	fresh, _ = b.Filter(root, drifted)
	if len(fresh) != 0 {
		t.Errorf("line drift un-suppressed %d finding(s)", len(fresh))
	}
}

// TestLoadBaselineMissingFile: no file means an empty baseline, not an
// error.
func TestLoadBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 || b.Version != BaselineVersion {
		t.Errorf("missing file loaded as %+v", b)
	}
}

// TestLoadBaselineVersionMismatch: a future-versioned baseline is
// rejected rather than silently misread.
func TestLoadBaselineVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := (&Baseline{Version: 99}).Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("version 99 baseline loaded without error")
	}
}

// TestWriteSARIFShape checks the envelope and the per-result fields a
// code-scanning consumer reads: rule ids, levels, module-relative
// URIs, and the stable-hash fingerprint.
func TestWriteSARIFShape(t *testing.T) {
	root := filepath.FromSlash("/mod")
	findings := []Finding{
		{Analyzer: "errdrop", Severity: SevError,
			Pos:     token.Position{Filename: filepath.FromSlash("/mod/pkg/a.go"), Line: 4, Column: 2},
			Message: "call discards the error"},
		{Analyzer: "exportdoc", Severity: SevWarning,
			Pos:     token.Position{Filename: filepath.FromSlash("/mod/pkg/b.go"), Line: 9, Column: 1},
			Message: "exported X is undocumented"},
	}
	var buf strings.Builder
	if err := WriteSARIF(&buf, root, All(), findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(buf.String()), &log); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "lightpath-vet" {
		t.Errorf("driver = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(All()) {
		t.Errorf("rules = %d, want %d", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	hashes := HashFindings(root, findings)
	for i, r := range run.Results {
		if r.RuleID != findings[i].Analyzer {
			t.Errorf("result %d ruleId = %q, want %q", i, r.RuleID, findings[i].Analyzer)
		}
		if r.Level != findings[i].Severity.String() {
			t.Errorf("result %d level = %q, want %q", i, r.Level, findings[i].Severity)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d ruleIndex %d does not point at %q", i, r.RuleIndex, r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.Contains(uri, "\\") || strings.HasPrefix(uri, "/") {
			t.Errorf("result %d uri %q is not module-relative with forward slashes", i, uri)
		}
		if got := r.PartialFingerprints[sarifFingerprintKey]; got != hashes[i] {
			t.Errorf("result %d fingerprint = %q, want %q", i, got, hashes[i])
		}
	}
	if r := run.Results[0].Locations[0].PhysicalLocation.Region; r.StartLine != 4 || r.StartColumn != 2 {
		t.Errorf("region = %+v, want 4:2", r)
	}
}

// TestWriteSARIFRejectsUnknownAnalyzer: a finding outside the declared
// rule set is an error, not a dangling ruleId.
func TestWriteSARIFRejectsUnknownAnalyzer(t *testing.T) {
	var buf strings.Builder
	err := WriteSARIF(&buf, "/mod", All(), []Finding{mkFinding("mystery", "/mod/a.go", 1, "x")})
	if err == nil {
		t.Fatal("unknown analyzer accepted")
	}
}

// TestCountByAnalyzer tallies per analyzer name.
func TestCountByAnalyzer(t *testing.T) {
	counts := CountByAnalyzer([]Finding{
		mkFinding("errdrop", "/mod/a.go", 1, "x"),
		mkFinding("errdrop", "/mod/a.go", 2, "y"),
		mkFinding("hotalloc", "/mod/b.go", 3, "z"),
	})
	if counts["errdrop"] != 2 || counts["hotalloc"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
