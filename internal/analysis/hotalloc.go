package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc flags per-iteration heap allocation inside loops marked
// with a `//lightpath:hotloop` directive comment on the line directly
// above the loop. The marked loops are the simulator's measured hot
// paths (circuit planning in internal/route, the fluid solver in
// internal/netsim): their steady-state cost is what `make bench`
// records, and an innocuous `make` or map literal reintroduced inside
// one silently regresses allocs/op. Flagged constructs are:
//
//   - calls to the make and new builtins, and composite literals of
//     slice or map type;
//   - indexing a map keyed by a type parameter — generic-map hashing
//     is exactly the cost the netsim solver's interned CSR layout
//     removed, and it must not creep back into a hot loop;
//   - append to a slice the function never preallocates (declared
//     `var s []T`, an empty literal, or capacity-less make, with no
//     3-arg make or `buf[:0]`-style scratch reuse anywhere in the
//     file) — such appends reallocate while they warm up.
//
// append to preallocated or scratch-backed slices stays legal
// (amortized into reused capacity), struct composite literals stay
// legal (they are values, not heap allocations, unless escape
// analysis says otherwise — which the benchmark gate, not a lexical
// check, polices), and appends to fields or other non-identifier
// targets are skipped (their backing discipline is not lexically
// visible).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation — make/new, slice/map literals, generic-map indexing, non-preallocated append — inside //lightpath:hotloop-marked loops",
	Run:  runHotalloc,
}

// hotloopDirective is the marker comment, written verbatim on its own
// line immediately above a for or range statement — or immediately
// above a func declaration (typically as the last line of its doc
// comment), which marks the entire function body as a hot region. The
// func-level form exists for per-request serve paths like the
// controller's Submit, where the whole body runs at request rate and a
// loop-granular mark would miss straight-line allocations.
const hotloopDirective = "//lightpath:hotloop"

func runHotalloc(pass *Pass) error {
	for _, file := range pass.Files {
		// Lines whose comment is exactly the directive.
		marked := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text == hotloopDirective {
					marked[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(marked) == 0 {
			continue
		}
		evidence := sliceAllocEvidence(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch node := n.(type) {
			case *ast.ForStmt:
				body = node.Body
			case *ast.RangeStmt:
				body = node.Body
			case *ast.FuncDecl:
				body = node.Body
			default:
				return true
			}
			if body == nil || !marked[pass.Fset.Position(n.Pos()).Line-1] {
				return true
			}
			checkHotLoopBody(pass, body, evidence)
			return true
		})
	}
	return nil
}

// allocEvidence summarizes how a slice variable is initialized across
// the file: prealloc records a capacity-establishing assignment (3-arg
// make, or re-slicing existing storage like `scratch[:0]`), bare
// records one that starts with no usable capacity.
type allocEvidence struct {
	prealloc, bare bool
}

// sliceAllocEvidence collects initialization evidence for every
// slice-typed identifier defined or assigned in the file. Expressions
// the check cannot classify (function calls, parameters, selectors)
// count as preallocated: the append rule only fires on provably bare
// slices, never on unknowns.
func sliceAllocEvidence(pass *Pass, file *ast.File) map[types.Object]*allocEvidence {
	ev := map[types.Object]*allocEvidence{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		e := ev[obj]
		if e == nil {
			e = &allocEvidence{}
			ev[obj] = e
		}
		switch r := rhs.(type) {
		case nil:
			e.bare = true // var s []T
		case *ast.SliceExpr:
			e.prealloc = true // s := scratch[:0] — reuses backing storage
		case *ast.CompositeLit:
			e.bare = true // []T{...}: no headroom beyond the literal
		case *ast.CallExpr:
			switch builtinName(pass, r) {
			case "make":
				if len(r.Args) >= 3 {
					e.prealloc = true
				} else {
					e.bare = true
				}
			case "append":
				// Growth, not initialization; no evidence either way.
			default:
				e.prealloc = true // unknown call: benefit of the doubt
			}
		default:
			e.prealloc = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
	return ev
}

// checkHotLoopBody reports every allocating construct lexically inside
// a marked loop body.
func checkHotLoopBody(pass *Pass, body *ast.BlockStmt, evidence map[types.Object]*allocEvidence) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch name := builtinName(pass, n); name {
			case "make", "new":
				pass.Reportf(n.Pos(), "%s allocates inside a hot loop; hoist the buffer out of the loop or reuse scratch capacity", name)
			case "append":
				if len(n.Args) == 0 {
					return true
				}
				id, ok := n.Args[0].(*ast.Ident)
				if !ok {
					return true
				}
				if e := evidence[pass.ObjectOf(id)]; e != nil && e.bare && !e.prealloc {
					pass.Reportf(n.Pos(), "append to non-preallocated slice %s inside a hot loop; size it with make(_, 0, cap) or reuse scratch capacity", id.Name)
				}
			}
		case *ast.IndexExpr:
			t := pass.TypeOf(n.X)
			if t == nil {
				return true
			}
			if m, ok := t.Underlying().(*types.Map); ok {
				if _, ok := m.Key().(*types.TypeParam); ok {
					pass.Reportf(n.Pos(), "generic-map indexing inside a hot loop; intern keys to dense indices outside the loop")
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates inside a hot loop; hoist the buffer out of the loop or reuse scratch capacity")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates inside a hot loop; hoist the map out of the loop and clear() it per iteration")
			}
		}
		return true
	})
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.ObjectOf(id).(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
