package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc flags per-iteration heap allocation inside loops marked
// with a `//lightpath:hotloop` directive comment on the line directly
// above the loop. The marked loops are the simulator's measured hot
// paths (circuit planning in internal/route, the fluid solver in
// internal/netsim): their steady-state cost is what `make bench`
// records, and an innocuous `make` or map literal reintroduced inside
// one silently regresses allocs/op. Flagged constructs are calls to
// the make and new builtins and composite literals of slice or map
// type; append stays legal (amortized into reused capacity) and
// struct composite literals stay legal (they are values, not heap
// allocations, unless escape analysis says otherwise — which the
// benchmark gate, not a lexical check, polices).
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag make/new calls and slice or map literals inside //lightpath:hotloop-marked loops",
	Run:  runHotalloc,
}

// hotloopDirective is the marker comment, written verbatim on its own
// line immediately above a for or range statement.
const hotloopDirective = "//lightpath:hotloop"

func runHotalloc(pass *Pass) error {
	for _, file := range pass.Files {
		// Lines whose comment is exactly the directive.
		marked := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if c.Text == hotloopDirective {
					marked[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(marked) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !marked[pass.Fset.Position(n.Pos()).Line-1] {
				return true
			}
			checkHotLoopBody(pass, body)
			return true
		})
	}
	return nil
}

// checkHotLoopBody reports every allocating construct lexically inside
// a marked loop body.
func checkHotLoopBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := builtinName(pass, n); name == "make" || name == "new" {
				pass.Reportf(n.Pos(), "%s allocates inside a hot loop; hoist the buffer out of the loop or reuse scratch capacity", name)
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates inside a hot loop; hoist the buffer out of the loop or reuse scratch capacity")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates inside a hot loop; hoist the map out of the loop and clear() it per iteration")
			}
		}
		return true
	})
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pass.ObjectOf(id).(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
