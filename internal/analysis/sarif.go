package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// SARIF 2.1.0 output, the minimal subset code-scanning UIs consume:
// one run, one tool driver with a rule per analyzer, one result per
// finding. The stable finding hash rides along as a partial
// fingerprint so SARIF consumers track findings across line drift the
// same way the baseline does.

// sarifFingerprintKey names the partial fingerprint carrying the
// stable finding hash; the /v1 suffix versions the hashing scheme.
const sarifFingerprintKey = "lightpathFindingHash/v1"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultConfig    sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. File paths
// are emitted module-relative (forward slashes), matching the baseline
// and making the log portable across checkouts. The analyzers slice
// declares the rule set; analyzers with no findings still appear as
// rules so consumers know what ran.
func WriteSARIF(w io.Writer, moduleRoot string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, len(analyzers))
	ruleIndex := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
			DefaultConfig:    sarifConfig{Level: a.Severity.String()},
		}
		ruleIndex[a.Name] = i
	}
	hashes := HashFindings(moduleRoot, findings)
	results := make([]sarifResult, 0, len(findings))
	for i, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			return fmt.Errorf("analysis: finding from analyzer %q not in the declared rule set", f.Analyzer)
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     f.Severity.String(),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(moduleRoot, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{sarifFingerprintKey: hashes[i]},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lightpath-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
