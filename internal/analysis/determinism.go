package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// rngPath is the one package allowed to own entropy; everything else
// must draw randomness from its seeded, splittable streams.
const rngPath = "lightpath/internal/rng"

// Determinism enforces that every run of the simulator is bit-for-bit
// reproducible from its seed. It forbids wall-clock reads (time.Now,
// time.Since, time.Until) and math/rand imports outside
// internal/rng, forbids process-environment reads (os.Getenv,
// os.LookupEnv, os.Environ, os.ExpandEnv) inside internal/ packages —
// simulation behavior must flow from explicit options and seeds, never
// ambient machine state — and flags range-over-map loops whose bodies feed
// order-sensitive sinks: formatted output, appends that are never
// sorted, non-associative accumulation (float or string), channel
// sends, and returns of iteration-dependent values. Map ranges that
// only count, write other maps, or append into a subsequently sorted
// slice are deterministic and pass.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, and map-iteration-order-dependent results outside internal/rng",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs are the time package entry points that read the
// wall clock. Constructors like time.Date and conversions are fine.
var forbiddenTimeFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// forbiddenEnvFuncs are the os package entry points that read the
// process environment — ambient, machine-dependent state that must
// never steer a simulation. The ban covers internal/ packages only:
// command-line front ends may translate environment into explicit
// options, which is exactly where such a read belongs.
var forbiddenEnvFuncs = map[string]bool{
	"os.Getenv":    true,
	"os.LookupEnv": true,
	"os.Environ":   true,
	"os.ExpandEnv": true,
}

func runDeterminism(pass *Pass) error {
	if pass.Pkg.Path() == rngPath {
		return nil
	}
	isInternal := strings.HasPrefix(pass.Pkg.Path(), internalPrefix)
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s is forbidden outside %s; use the seeded splittable streams in %s", path, rngPath, rngPath)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil {
					if forbiddenTimeFuncs[fn.FullName()] {
						pass.Reportf(n.Pos(), "%s reads the wall clock and breaks reproducibility; thread simulated unit.Seconds instead", fn.FullName())
					}
					if isInternal && forbiddenEnvFuncs[fn.FullName()] {
						pass.Reportf(n.Pos(), "%s reads the process environment inside an internal package; thread configuration through explicit options and seeds instead", fn.FullName())
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRanges walks a function body and reports every range over a
// map whose body contains an order-sensitive sink.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink := orderSensitiveSink(pass, rs, body); sink != "" {
			pass.Reportf(rs.Pos(), "map iteration order feeds %s; collect and sort the keys first (iteration order is randomized by the runtime)", sink)
		}
		return true
	})
}

// orderSensitiveSink returns a description of the first construct in
// the range body whose result depends on map iteration order, or ""
// if the body looks order-insensitive. scope is the enclosing function
// body, consulted to see whether appended-to slices are later sorted.
func orderSensitiveSink(pass *Pass, rs *ast.RangeStmt, scope *ast.BlockStmt) string {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if s := callSink(pass, n, scope); s != "" {
				sink = s
			}
		case *ast.AssignStmt:
			if s := assignSink(pass, n); s != "" {
				sink = s
			}
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if exprUsesAny(pass, res, loopVars) {
					sink = "a return value derived from the iteration variable"
				}
			}
		}
		return true
	})
	return sink
}

// callSink classifies calls inside a map-range body: formatted output
// is always a sink; append is a sink unless the destination slice is
// sorted later in the enclosing function.
func callSink(pass *Pass, call *ast.CallExpr, scope *ast.BlockStmt) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "print", "println":
				return "output (builtin " + id.Name + ")"
			case "append":
				return appendSink(pass, call, scope)
			}
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	name := fn.FullName()
	if strings.HasPrefix(name, "fmt.Print") || strings.HasPrefix(name, "fmt.Fprint") {
		return "formatted output (" + name + ")"
	}
	return ""
}

// appendSink reports append as order-sensitive unless the slice being
// built is passed to a sort call later in the enclosing function.
func appendSink(pass *Pass, call *ast.CallExpr, scope *ast.BlockStmt) string {
	if len(call.Args) == 0 {
		return ""
	}
	dest, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Appending to a field or index expression: we cannot track a
		// later sort of it, so treat it as order-sensitive.
		return "an append to a composite destination"
	}
	obj := pass.ObjectOf(dest)
	if obj == nil {
		return ""
	}
	if sliceIsSorted(pass, obj, scope) {
		return ""
	}
	return "an append whose result is never sorted"
}

// sliceIsSorted reports whether obj appears in an argument to a
// sort.* or slices.Sort* call anywhere in scope. The ident may be
// nested — sort.Sort(byID(dst[start:])) sorts dst's appended tail just
// as surely as sort.Slice(dst, ...) sorts the whole.
func sliceIsSorted(pass *Pass, obj types.Object, scope *ast.BlockStmt) bool {
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}

// assignSink flags compound assignments whose operation is not
// associative-and-commutative over the operand type: float arithmetic
// and string concatenation give different results under different
// iteration orders.
func assignSink(pass *Pass, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	for _, lhs := range as.Lhs {
		t := pass.TypeOf(lhs)
		if t == nil {
			continue
		}
		switch b := t.Underlying().(type) {
		case *types.Basic:
			info := b.Info()
			if info&types.IsFloat != 0 || info&types.IsComplex != 0 {
				return "non-associative float accumulation"
			}
			if info&types.IsString != 0 && as.Tok == token.ADD_ASSIGN {
				return "order-dependent string concatenation"
			}
		}
	}
	return ""
}

// exprUsesAny reports whether the expression mentions any of the given
// objects.
func exprUsesAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and indirect calls through variables. It is
// the per-pass face of the fact base's resolver.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	return calleeOf(pass.Info, call)
}
