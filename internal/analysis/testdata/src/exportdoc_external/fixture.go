// Package external sits outside internal/..., so exportdoc must skip
// it even though it declares an undocumented export.
package external

func Undocumented() {}
