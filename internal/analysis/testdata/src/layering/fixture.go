// Package phy stands in for the real physical layer (rank 20): the
// layering analyzer must reject its import of the scheduler (rank 30)
// and accept the unit vocabulary (rank 0).
package phy

import (
	_ "lightpath/internal/sched" // want `must not import lightpath/internal/sched`
	_ "lightpath/internal/unit"
)
