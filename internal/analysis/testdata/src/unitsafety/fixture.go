// Package fixture exercises the unitsafety analyzer: float64 casts
// that mix distinct unit newtypes and exact ==/!= on computed unit
// values must be flagged; same-unit math, dimensionless scaling,
// constant sentinels, and ApproxEqual must pass.
package fixture

import "lightpath/internal/unit"

// MixCast launders a loss in dB and an absolute power in dBm through
// float64 and adds them.
func MixCast(d unit.Decibel, p unit.DBm) float64 {
	return float64(d) + float64(p) // want `float64 casts mix unit.Decibel and unit.DBm`
}

// CompareCast launders a duration and a size into a comparison.
func CompareCast(s unit.Seconds, b unit.Bytes) bool {
	return float64(s) < float64(b) // want `float64 casts mix unit.Seconds and unit.Bytes`
}

// SameCast combines two values of one unit: allowed.
func SameCast(a, b unit.Decibel) float64 {
	return float64(a) + float64(b)
}

// Scale multiplies by a dimensionless factor: allowed.
func Scale(d unit.Decibel) float64 {
	return float64(d) * 2
}

// ExactEqual compares two computed durations for float identity.
func ExactEqual(a, b unit.Seconds) bool {
	return a == b // want `exact == on unit.Seconds`
}

// ExactNotEqual compares two computed sizes for float identity.
func ExactNotEqual(a, b unit.Bytes) bool {
	return a != b // want `exact != on unit.Bytes`
}

// ZeroSentinel compares against a compile-time constant: allowed.
func ZeroSentinel(a unit.Seconds) bool {
	return a == 0
}

// Approx uses the epsilon helper: allowed.
func Approx(a, b unit.Seconds) bool {
	return unit.ApproxEqual(a, b)
}
