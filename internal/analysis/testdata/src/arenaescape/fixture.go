// Package fixture exercises the arenaescape analyzer: aliases of
// pooled or //lightpath:arena-marked scratch memory must not outlive
// the borrowing function, while the borrow-scoped defer-Put idiom and
// copies into owned storage must pass. LeakRates reconstructs the
// historical PR 5 hazard — a slice carved from a pooled arena escaping
// through the return value — verbatim in shape.
package fixture

import "sync"

// scratch is the pooled per-trial workspace, mirroring core's
// chaosScratch: one backing arena plus a derived reference slice.
type scratch struct {
	arena []float64
	ref   []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// sink is a package-level cache an arena alias must never reach.
var sink []float64

// LeakRates is the PR 5 arena-escape hazard, reconstructed: the rates
// slice is carved from the pooled arena, and returning it hands the
// caller memory the next trial will overwrite after Put.
func LeakRates(n int) []float64 {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	if cap(scr.arena) < n {
		scr.arena = make([]float64, n)
	}
	rates := scr.arena[:n]
	for i := range rates {
		rates[i] = float64(i)
	}
	return rates // want `arena-backed "rates" is returned`
}

// CacheGlobally parks an arena alias in a package-level variable.
func CacheGlobally(n int) {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	buf := scr.arena
	sink = buf // want `arena-backed "buf" is stored in state that outlives the borrow`
	_ = n
}

// holder is caller-owned state a borrowed buffer must not be parked in.
type holder struct{ rows [][]float64 }

// StoreInParam stores an arena alias into a structure the caller
// holds after the function returns.
func StoreInParam(h *holder) {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	h.rows = append(h.rows, scr.arena) // want `arena-backed "scr" is stored in state that outlives the borrow`
	h.rows[0] = scr.arena              // want `arena-backed "scr" is stored in state that outlives the borrow`
}

// SendToWorker ships arena memory across a channel: the receiver
// races the pool's reuse.
func SendToWorker(ch chan []float64) {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	ch <- scr.arena // want `arena-backed "scr" is sent on a channel`
}

// AsyncUse hands arena memory to a goroutine that outlives the borrow.
func AsyncUse() {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	go func() {
		scr.arena[0] = 1 // want `arena-backed "scr" is captured by a goroutine`
	}()
}

// UseAfterPut touches the scratch after explicitly returning it.
func UseAfterPut() float64 {
	scr := scratchPool.Get().(*scratch)
	if len(scr.arena) == 0 {
		scr.arena = make([]float64, 1)
	}
	scratchPool.Put(scr)
	return scr.arena[0] // want `"scr" is used after its Put returned it to the pool`
}

// MarkedLocalLeak covers the directive form: a buffer that is not
// pooled yet is declared trial-scoped, and must not escape either.
func MarkedLocalLeak(n int) []int {
	//lightpath:arena
	buf := make([]int, n)
	for i := range buf {
		buf[i] = i
	}
	return buf // want `arena-backed "buf" is returned`
}

// CleanBorrow is the sanctioned pattern, shaped like core's chaos
// runner: borrow, carve disjoint slices, park them inside the pooled
// object itself, copy the answer into owned storage, defer the Put.
func CleanBorrow(n int) []float64 {
	scr := scratchPool.Get().(*scratch)
	defer scratchPool.Put(scr)
	if cap(scr.arena) < 2*n {
		scr.arena = make([]float64, 2*n)
	}
	arena := scr.arena
	a := arena[:n:n]
	b := arena[n : 2*n : 2*n]
	for i := 0; i < n; i++ {
		a[i] = float64(i)
		b[i] = a[i] * 2
	}
	scr.ref = b // storing an alias inside the arena's own object: fine
	out := make([]float64, n)
	copy(out, b) // the copy is what crosses the boundary
	return out
}
