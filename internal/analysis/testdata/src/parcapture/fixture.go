// Package fixture exercises the parcapture analyzer: trial closures
// handed to engine.Map/engine.Stream must not write captured state,
// while local writes, reads of shared inputs, and sequential consume
// callbacks must pass. Sum reconstructs the historical PR 3 bug — a
// float accumulator mutated inside a Map trial — verbatim in shape.
package fixture

import "lightpath/internal/engine"

// Sum is the PR 3 closure-capture race, reconstructed: the campaign
// accumulated into a captured variable from inside the trial body.
func Sum(xs []float64) (float64, error) {
	var sum float64
	var count int
	_, err := engine.Map(len(xs), func(i int) (float64, error) {
		sum += xs[i] // want `trial closure passed to engine.Map writes captured "sum"`
		count++      // want `trial closure passed to engine.Map mutates captured "count" with \+\+`
		return xs[i], nil
	})
	return sum, err
}

// CollectShared appends to a captured slice and writes a captured map
// from inside the trial: both race under the worker pool.
func CollectShared(n int) error {
	var rows []int
	seen := map[int]bool{}
	_, err := engine.Map(n, func(i int) (int, error) {
		rows = append(rows, i) // want `trial closure passed to engine.Map writes captured "rows"`
		seen[i] = true         // want `trial closure passed to engine.Map writes captured "seen"`
		return i, nil
	})
	return err
}

// ChannelFanIn sends trial results on a captured channel: arrival
// order depends on the worker schedule, so the merge is no longer the
// engine's index-ordered one.
func ChannelFanIn(n int) error {
	ch := make(chan int, n)
	_, err := engine.Map(n, func(i int) (int, error) {
		ch <- i // want `trial closure passed to engine.Map sends on captured channel "ch"`
		return i, nil
	})
	close(ch)
	return err
}

// StreamTrialWrites checks the Stream entry point's trial argument;
// the consume callback below it runs sequentially and stays exempt.
func StreamTrialWrites(n int) error {
	attempts := 0
	total := 0
	return engine.Stream(n,
		func(i int) (int, error) {
			attempts++ // want `trial closure passed to engine.Stream mutates captured "attempts" with \+\+`
			return i * i, nil
		},
		func(i, r int) (bool, error) {
			total += r // consume is sequential: allowed
			return total < 100, nil
		})
}

// NamedTrial resolves a trial bound to a local variable before the
// Map call: the write through the captured pointer target is caught.
func NamedTrial(n int) error {
	hits := make([]int, n)
	trial := func(i int) (int, error) {
		hits[0] = i // want `trial closure passed to engine.Map writes captured "hits"`
		return i, nil
	}
	_, err := engine.Map(n, trial)
	return err
}

// DeleteCaptured clears captured containers from inside the trial.
func DeleteCaptured(n int, m map[int]string) error {
	_, err := engine.Map(n, func(i int) (int, error) {
		delete(m, i) // want `trial closure passed to engine.Map calls delete on captured "m"`
		return i, nil
	})
	return err
}

// CleanTrial is the sanctioned shape: per-trial locals, reads of
// shared read-only inputs, results merged by the engine.
func CleanTrial(xs []float64) (float64, error) {
	scale := 2.0 // captured, but only read
	outs, err := engine.Map(len(xs), func(i int) (float64, error) {
		acc := 0.0 // trial-local accumulator: allowed
		for j := 0; j <= i; j++ {
			acc += xs[j] * scale
		}
		return acc, nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, o := range outs { // sequential merge after the fan-out
		sum += o
	}
	return sum, nil
}
