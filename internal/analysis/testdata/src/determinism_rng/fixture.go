// Package rng stands in for the real entropy-owning package: when this
// fixture is loaded under the internal/rng import path, the
// determinism analyzer must skip it entirely, so none of the
// violations below produce findings.
package rng

import (
	"math/rand"
	"time"
)

// WallClockSeed mixes wall-clock and global-rand entropy — legal only
// inside internal/rng.
func WallClockSeed() int64 {
	return time.Now().UnixNano() ^ rand.Int63()
}
