// Package fixture exercises the unittaint analyzer: unit newtypes
// laundered into float64 parameters through bare casts are tracked
// across call sites, so cross-unit arithmetic that spans a call — and
// parameters fed conflicting dimensions — is caught even though no
// single expression mixes two casts. Consistent laundering combined
// only with dimensionless math must pass.
package fixture

import "lightpath/internal/unit"

// attenuation is fed a laundered unit.Decibel by every caller; adding
// a laundered unit.DBm to it inside the body is the cross-unit bug the
// intra-file unitsafety check cannot see.
func attenuation(loss float64, floor unit.DBm) float64 {
	return loss + float64(floor) // want `cross-unit arithmetic through a call site: parameter loss \(laundered unit.Decibel at every call site\) \+ float64\(unit.DBm\) mixes unit.Decibel and unit.DBm`
}

// Budget launders a Decibel into attenuation's float64 parameter.
func Budget(d unit.Decibel, floor unit.DBm) float64 {
	return attenuation(float64(d), floor)
}

// Budget2 is a second call site agreeing on the dimension, so the
// parameter's laundering set stays a singleton.
func Budget2(d unit.Decibel, floor unit.DBm) float64 {
	return attenuation(float64(d), floor)
}

// confused receives a laundered unit.Seconds from one call site and a
// laundered unit.Bytes from another: the parameter has no consistent
// dimension at all.
func confused(x float64) float64 { // want `parameter "x" of confused receives float64-laundered unit.Bytes and unit.Seconds at different call sites`
	return x * 2
}

// CallWithSeconds and CallWithBytes are the disagreeing call sites.
func CallWithSeconds(s unit.Seconds) float64 { return confused(float64(s)) }

// CallWithBytes launders a different dimension into the same slot.
func CallWithBytes(b unit.Bytes) float64 { return confused(float64(b)) }

// crossParams combines two parameters whose call sites launder
// different units into them.
func crossParams(dur, size float64) float64 {
	return dur + size // want `cross-unit arithmetic through a call site: parameter dur \(laundered unit.Seconds at every call site\) \+ parameter size \(laundered unit.Bytes at every call site\) mixes unit.Seconds and unit.Bytes`
}

// Mixed is crossParams's only call site.
func Mixed(s unit.Seconds, b unit.Bytes) float64 {
	return crossParams(float64(s), float64(b))
}

// scaled is the clean case: a consistently-laundered parameter doing
// dimensionless scaling and ratios (MUL/QUO legitimately combine
// dimensions, exactly as in unitsafety).
func scaled(power float64, gain float64) float64 {
	return power * gain
}

// Scale feeds scaled consistently from its one call site.
func Scale(p unit.DBm) float64 {
	return scaled(float64(p), 3.0)
}
