// Package fixture exercises the determinism analyzer: entropy sources
// and order-sensitive map iteration must be flagged, while sorted or
// order-insensitive uses must pass.
package fixture

import (
	"fmt"
	"math/rand" // want `import of math/rand is forbidden outside lightpath/internal/rng`
	"os"
	"sort"
	"time"
)

// Use the forbidden import so the fixture still type-checks.
var _ = rand.Int

// Now reads the wall clock.
func Now() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

// PrintAll writes key/value pairs in map iteration order.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration order feeds formatted output`
		fmt.Println(k, v)
	}
}

// Keys returns keys in map iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order feeds an append whose result is never sorted`
		out = append(out, k)
	}
	return out
}

// SortedKeys collects and then sorts the keys: deterministic.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// byLen orders strings by length for AppendSortedTail.
type byLen []string

func (s byLen) Len() int           { return len(s) }
func (s byLen) Less(i, j int) bool { return len(s[i]) < len(s[j]) }
func (s byLen) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// AppendSortedTail appends in map iteration order but sorts the
// appended tail through a typed conversion of a subslice: the slice
// ident is nested inside the sort argument, still deterministic.
func AppendSortedTail(m map[string]int, dst []string) []string {
	start := len(dst)
	for k := range m {
		dst = append(dst, k)
	}
	sort.Sort(byLen(dst[start:]))
	return dst
}

// Sum accumulates floats in map iteration order, so the rounding of
// the total depends on the order.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order feeds non-associative float accumulation`
		sum += v
	}
	return sum
}

// Count only counts entries: order-insensitive.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// First returns whichever key the runtime yields first.
func First(m map[string]int) string {
	for k := range m { // want `map iteration order feeds a return value derived from the iteration variable`
		return k
	}
	return ""
}

// Contains is an existence check returning a constant: fine.
func Contains(m map[string]int, v int) bool {
	for _, got := range m {
		if got == v {
			return true
		}
	}
	return false
}

// Feed sends map keys down a channel in iteration order.
func Feed(m map[string]int, ch chan<- string) {
	for k := range m { // want `map iteration order feeds a channel send`
		ch <- k
	}
}

// Invert rebuilds a map keyed the other way: order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// EnvOutsideInternal reads the process environment from a package
// outside internal/: the env ban binds only internal packages (a CLI
// front end may translate environment into explicit options), so this
// passes.
func EnvOutsideInternal() string {
	return os.Getenv("LIGHTPATH_SEED")
}
