// Package envfixture exercises the determinism analyzer's
// process-environment ban, which binds packages under
// lightpath/internal/ (this fixture loads under that prefix):
// simulation behavior must flow from explicit options and seeds, never
// ambient machine state.
package envfixture

import "os"

// Home reads a single environment variable.
func Home() string {
	return os.Getenv("HOME") // want `os.Getenv reads the process environment inside an internal package`
}

// Lookup reads through the two-result form.
func Lookup() bool {
	_, ok := os.LookupEnv("LIGHTPATH_DEBUG") // want `os.LookupEnv reads the process environment inside an internal package`
	return ok
}

// All snapshots the whole environment.
func All() []string {
	return os.Environ() // want `os.Environ reads the process environment inside an internal package`
}

// Expand interpolates environment values into a template.
func Expand(s string) string {
	return os.ExpandEnv(s) // want `os.ExpandEnv reads the process environment inside an internal package`
}

// Hostname uses os for something other than the environment: allowed.
func Hostname() (string, error) {
	return os.Hostname()
}
