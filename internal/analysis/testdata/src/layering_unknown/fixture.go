// Package mystery is absent from LayerRanks: the layering analyzer
// demands an explicit rank for every internal package so the DAG can
// never silently grow an unreviewed edge.
package mystery // want `not in the layering map`
