// Package docfixture exercises the exportdoc analyzer: exported
// identifiers without a preceding doc comment must be flagged;
// documented identifiers, unexported names, and methods on unexported
// types must pass.
package docfixture

// Documented has a doc comment.
type Documented struct{}

type Undocumented struct{} // want `exported type Undocumented is undocumented`

type hidden struct{}

// DocumentedFunc has a doc comment.
func DocumentedFunc() {}

func UndocumentedFunc() {} // want `exported function UndocumentedFunc is undocumented`

func helper() {}

// Method has a doc comment.
func (Documented) Method() {}

func (Documented) Bare() {} // want `exported method Bare is undocumented`

// Exported methods on unexported types are invisible outside the
// package and exempt.
func (hidden) Exported() {}

// Grouped constants are covered by the block comment.
const (
	GroupedA = iota
	GroupedB
)

const Undoc = 3 // want `exported name Undoc is undocumented`

var UndocVar int // want `exported name UndocVar is undocumented`

// DocVar has a doc comment.
var DocVar int

// Use the unexported declarations so the fixture type-checks cleanly.
var _ = []any{hidden{}, helper}
