// Package fixture exercises the errdrop analyzer: silently discarded
// error results must be flagged; handled errors, explicit blank
// assignments, and allowlisted writers must pass.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

// MayFail returns an error.
func MayFail() error { return errors.New("boom") }

// Pair returns a value alongside an error.
func Pair() (int, error) { return 0, errors.New("boom") }

// Drop discards errors three different ways.
func Drop() {
	MayFail()       // want `call discards the error returned by fixture/errdrop.MayFail`
	defer MayFail() // want `deferred call discards the error`
	go Pair()       // want `goroutine discards the error`
}

// DropInDeferClosure discards an error inside a deferred closure: the
// drop executes at defer time, with no caller left to observe it.
func DropInDeferClosure() {
	defer func() {
		MayFail() // want `deferred call discards the error returned by fixture/errdrop.MayFail`
	}()
}

// DropInGoClosure discards errors inside goroutine bodies, including a
// defer nested within the goroutine (the innermost context wins).
func DropInGoClosure() {
	go func() {
		MayFail() // want `goroutine discards the error returned by fixture/errdrop.MayFail`
		defer func() {
			MayFail() // want `deferred call discards the error returned by fixture/errdrop.MayFail`
		}()
	}()
}

// HandleInClosure deals with the error inside the closure: allowed.
func HandleInClosure() {
	defer func() {
		if err := MayFail(); err != nil {
			fmt.Println(err)
		}
	}()
	go func() {
		_ = MayFail()
	}()
}

// Handle deals with every error visibly: allowed.
func Handle() {
	if err := MayFail(); err != nil {
		fmt.Println(err)
	}
	_ = MayFail()
	var sb strings.Builder
	sb.WriteString("builders never fail")
	fmt.Println(sb.String())
}
