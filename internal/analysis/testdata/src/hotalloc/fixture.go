// Package hotalloc exercises the hotalloc analyzer: allocation inside
// //lightpath:hotloop-marked loops is flagged; the same constructs in
// unmarked loops, and non-allocating constructs in marked loops, are
// not.
package hotalloc

// point is a value type; its composite literal is legal in hot loops.
type point struct{ x, y int }

func hot(n int) int {
	sum := 0
	buf := make([]int, 0, n) // legal: hoisted above the loop
	seen := map[int]bool{}   // legal: hoisted above the loop
	//lightpath:hotloop
	for i := 0; i < n; i++ {
		s := make([]int, n)    // want `make allocates inside a hot loop`
		p := new(point)        // want `new allocates inside a hot loop`
		m := map[int]int{}     // want `map literal allocates inside a hot loop`
		l := []int{1, 2, 3}    // want `slice literal allocates inside a hot loop`
		v := point{x: i, y: i} // legal: struct literal is a value
		buf = append(buf, i)   // legal: append reuses capacity
		seen[i] = true
		sum += len(s) + p.x + len(m) + len(l) + v.x
	}
	return sum
}

func hotRange(xs []int) int {
	sum := 0
	//lightpath:hotloop
	for _, x := range xs {
		tmp := make([]int, 1) // want `make allocates inside a hot loop`
		tmp[0] = x
		sum += tmp[0]
	}
	return sum
}

func hotNested(n int) int {
	sum := 0
	//lightpath:hotloop
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			inner := []int{j} // want `slice literal allocates inside a hot loop`
			sum += inner[0]
		}
	}
	return sum
}

// hotGeneric exercises the generic-map rule: hashing a type-parameter
// key inside a hot loop is the cost interning removes, so both the
// read and the write are flagged; a concrete-key map is not.
func hotGeneric[K comparable](keys []K, n int) int {
	counts := map[K]int{}
	interned := make(map[K]int, n)
	concrete := make(map[int]int, n)
	total := 0
	//lightpath:hotloop
	for i, k := range keys {
		counts[k]++          // want `generic-map indexing inside a hot loop`
		total += interned[k] // want `generic-map indexing inside a hot loop`
		concrete[i] = total  // legal: concrete key, no generic hashing
		total += len(counts)
	}
	return total
}

// hotAppend exercises the non-preallocated-append rule: appending to
// a slice the function never sizes is flagged, appending to 3-arg
// make or scratch-reuse slices is not.
func hotAppend(scratch []int, n int) int {
	var bare []int
	sized := make([]int, 0, n)
	reused := scratch[:0]
	//lightpath:hotloop
	for i := 0; i < n; i++ {
		bare = append(bare, i)     // want `append to non-preallocated slice bare inside a hot loop`
		sized = append(sized, i)   // legal: capacity preallocated
		reused = append(reused, i) // legal: reuses the caller's backing storage
	}
	return len(bare) + len(sized) + len(reused)
}

func cold(n int) []int {
	var out []int
	// An ordinary comment does not arm the check.
	for i := 0; i < n; i++ {
		out = append(out, make([]int, 1)...) // legal: loop is not marked
	}
	return out
}

// hotFunc is a func-level mark: the directive above the declaration
// arms the check for the whole body, straight-line code included.
//
//lightpath:hotloop
func hotFunc(scratch []byte, n int) []byte {
	buf := make([]byte, n) // want `make allocates inside a hot loop`
	p := new(int)          // want `new allocates inside a hot loop`
	out := scratch[:0]
	out = append(out, buf[:*p]...)
	return out
}

// hotFuncClean is func-level marked but only reuses scratch capacity:
// nothing to flag.
//
//lightpath:hotloop
func hotFuncClean(scratch []int, n int) []int {
	out := scratch[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
