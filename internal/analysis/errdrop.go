package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: bare
// call statements, deferred calls, and goroutine launches returning an
// error nobody can see. Drops are chased into closure bodies — a call
// statement inside `defer func() { ... }()` or `go func() { ... }()`
// executes in that deferred/asynchronous context and is reported as
// such, where a dropped error is strictly worse than in straight-line
// code (no caller is left to notice the failure). Explicitly assigning
// to the blank identifier (`_ = f()`) stays legal — it is a visible,
// greppable statement of intent. A small allowlist covers writers that
// cannot usefully fail: the fmt print family (stdout/stderr and report
// builders; exporters that write files check errors via
// csv.Writer.Error) and the never-failing strings.Builder /
// bytes.Buffer methods.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag call statements, defers, and goroutines — including closure bodies — that discard an error result",
	Run:  runErrDrop,
}

// errDropAllowedPrefixes matches types.Func.FullName values whose
// error results may be ignored.
var errDropAllowedPrefixes = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrDrop(pass *Pass) error {
	for _, file := range pass.Files {
		// closureKind maps the body of every function literal that is
		// directly deferred or launched to the execution context its
		// statements run in. A call statement inside such a body is a
		// "deferred call" / "goroutine" drop, not a plain "call" — the
		// distinction matters because those contexts have no caller
		// left to observe the failure. Nested literals resolve to the
		// innermost enclosing context at report time.
		closureKind := map[*ast.BlockStmt]string{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					closureKind[lit.Body] = "deferred call"
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					closureKind[lit.Body] = "goroutine"
				}
			}
			return true
		})
		kindAt := func(pos token.Pos) string {
			kind := "call"
			innermost := token.Pos(-1)
			for body, k := range closureKind {
				if body.Pos() <= pos && pos < body.End() && body.Pos() > innermost {
					innermost, kind = body.Pos(), k
				}
			}
			return kind
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, call, kindAt(n.Pos()))
				}
			case *ast.DeferStmt:
				checkDroppedError(pass, n.Call, "deferred call")
			case *ast.GoStmt:
				checkDroppedError(pass, n.Call, "goroutine")
			}
			return true
		})
	}
	return nil
}

// checkDroppedError reports the call if it returns an error that the
// surrounding statement discards.
func checkDroppedError(pass *Pass, call *ast.CallExpr, kind string) {
	t := pass.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	name := "function"
	if fn := calleeFunc(pass, call); fn != nil {
		name = fn.FullName()
		for _, prefix := range errDropAllowedPrefixes {
			if strings.HasPrefix(name, prefix) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%s discards the error returned by %s; handle it or assign it to _ explicitly", kind, name)
}

// resultHasError reports whether a call result type includes error.
func resultHasError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}
