package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags calls whose error result is silently discarded: bare
// call statements, deferred calls, and goroutine launches returning an
// error nobody can see. Explicitly assigning to the blank identifier
// (`_ = f()`) stays legal — it is a visible, greppable statement of
// intent. A small allowlist covers writers that cannot usefully fail:
// the fmt print family (stdout/stderr and report builders; exporters
// that write files check errors via csv.Writer.Error) and the
// never-failing strings.Builder / bytes.Buffer methods.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag call statements, defers, and goroutines that discard an error result",
	Run:  runErrDrop,
}

// errDropAllowedPrefixes matches types.Func.FullName values whose
// error results may be ignored.
var errDropAllowedPrefixes = []string{
	"fmt.Print",
	"fmt.Fprint",
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrDrop(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedError(pass, call, "call")
				}
			case *ast.DeferStmt:
				checkDroppedError(pass, n.Call, "deferred call")
			case *ast.GoStmt:
				checkDroppedError(pass, n.Call, "goroutine")
			}
			return true
		})
	}
	return nil
}

// checkDroppedError reports the call if it returns an error that the
// surrounding statement discards.
func checkDroppedError(pass *Pass, call *ast.CallExpr, kind string) {
	t := pass.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	name := "function"
	if fn := calleeFunc(pass, call); fn != nil {
		name = fn.FullName()
		for _, prefix := range errDropAllowedPrefixes {
			if strings.HasPrefix(name, prefix) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(), "%s discards the error returned by %s; handle it or assign it to _ explicitly", kind, name)
}

// resultHasError reports whether a call result type includes error.
func resultHasError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}
