package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// This file is the reporting layer shared by every analyzer: stable
// finding hashes, the committed suppression baseline, and per-analyzer
// counts. The design constraint throughout is churn resistance — a
// finding's identity must survive unrelated edits to its file, so
// hashes are computed from what the analyzer said and where it said it
// (module-relative path + message), never from line numbers, which
// drift with every insertion above the finding.

// BaselineVersion is the schema version written into baseline files.
const BaselineVersion = 1

// Hash returns the finding's stable identity: 16 hex digits of
// FNV-1a over analyzer, module-relative file path, message, and an
// occurrence ordinal. The ordinal disambiguates identical messages in
// one file (the Nth identical finding, in position order): line edits
// above a finding leave its hash unchanged, while a genuinely new
// duplicate gets a new hash.
func (f Finding) Hash(moduleRoot string, occurrence int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%d", f.Analyzer, relPath(moduleRoot, f.Pos.Filename), f.Message, occurrence)
	return fmt.Sprintf("%016x", h.Sum64())
}

// relPath renders file module-relative with forward slashes, so
// hashes and reports agree across machines and checkout locations.
func relPath(moduleRoot, file string) string {
	if moduleRoot != "" {
		if rel, err := filepath.Rel(moduleRoot, file); err == nil && filepath.IsLocal(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// HashFindings computes the stable hash of every finding, resolving
// occurrence ordinals across the whole set. The input must already be
// position-sorted (Run's output contract), so ordinals — and
// therefore hashes — are deterministic.
func HashFindings(moduleRoot string, findings []Finding) []string {
	counts := map[string]int{}
	hashes := make([]string, len(findings))
	for i, f := range findings {
		key := f.Analyzer + "\x00" + relPath(moduleRoot, f.Pos.Filename) + "\x00" + f.Message
		hashes[i] = f.Hash(moduleRoot, counts[key])
		counts[key]++
	}
	return hashes
}

// BaselineEntry is one suppressed finding in the committed baseline.
// Hash alone decides suppression; the other fields exist so humans
// reviewing vet_baseline.json can tell what each entry forgives.
type BaselineEntry struct {
	// Hash is the finding's stable identity (Finding.Hash).
	Hash string `json:"hash"`
	// Analyzer, File, and Message document the suppressed finding;
	// File is module-relative.
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the committed suppression set: findings accepted as
// known debt that the gate must not fail on, keyed by stable hash so
// line drift never churns the file.
type Baseline struct {
	// Version is the baseline schema version.
	Version int `json:"version"`
	// Findings are the suppressed entries, sorted by file, analyzer,
	// message, hash.
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error — a repository with no accepted debt needs no
// baseline committed.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Version: BaselineVersion}, nil
		}
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, this tool writes version %d; regenerate it", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// NewBaseline builds a baseline that suppresses exactly the given
// findings.
func NewBaseline(moduleRoot string, findings []Finding) *Baseline {
	hashes := HashFindings(moduleRoot, findings)
	b := &Baseline{Version: BaselineVersion, Findings: make([]BaselineEntry, 0, len(findings))}
	for i, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Hash:     hashes[i],
			Analyzer: f.Analyzer,
			File:     relPath(moduleRoot, f.Pos.Filename),
			Message:  f.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.Message != c.Message {
			return a.Message < c.Message
		}
		return a.Hash < c.Hash
	})
	return b
}

// Write renders the baseline as indented JSON to path.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: encoding baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("analysis: writing baseline: %w", err)
	}
	return nil
}

// Filter splits findings into fresh (not in the baseline — these gate)
// and suppressed (baselined, surfaced only in counts). Order within
// each slice follows the input.
func (b *Baseline) Filter(moduleRoot string, findings []Finding) (fresh, suppressed []Finding) {
	known := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e.Hash] = true
	}
	hashes := HashFindings(moduleRoot, findings)
	for i, f := range findings {
		if known[hashes[i]] {
			suppressed = append(suppressed, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, suppressed
}

// CountByAnalyzer tallies findings per analyzer name.
func CountByAnalyzer(findings []Finding) map[string]int {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	return counts
}
