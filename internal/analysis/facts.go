package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared-facts layer of the multi-pass framework. A
// single-package analyzer sees one type-checked package at a time; the
// interprocedural analyzers (unittaint, and any future whole-program
// check) additionally need facts that only fall out of looking at
// every loaded package together: which *types.Func has a body and
// where, who calls whom, and what callers pour into a callee's
// parameters. Facts mirrors golang.org/x/tools/go/analysis's
// Pass/Fact design without the dependency: Run builds one Facts over
// the whole package set before any analyzer executes, and every Pass
// carries a pointer to it.

// FuncInfo is the symbol-table entry for one function or method whose
// body was loaded: its declaration and the package it lives in.
type FuncInfo struct {
	// Decl is the function's source declaration (Body may still be nil
	// for assembly-backed declarations).
	Decl *ast.FuncDecl
	// Pkg is the loaded package the declaration belongs to.
	Pkg *Package
}

// CallSite is one static call whose callee was resolved to a declared
// function: the calling package, the enclosing function declaration
// (nil at package-level initializers), the call expression, and the
// callee.
type CallSite struct {
	// Pkg is the package containing the call expression.
	Pkg *Package
	// Caller is the function declaration the call occurs in, or nil
	// for calls in package-level variable initializers.
	Caller *ast.FuncDecl
	// Call is the call expression itself.
	Call *ast.CallExpr
	// Callee is the resolved target. For calls to generic functions it
	// is the generic origin object, so one entry covers every
	// instantiation.
	Callee *types.Func
}

// Facts holds the cross-package state shared by every analyzer in one
// Run: the symbol table of declared functions, the approximate call
// graph, and lazily-derived interprocedural facts (parameter unit
// taint). The call graph is approximate by design — it resolves only
// direct calls through identifiers and selectors, not calls through
// function values or interfaces — which is conservative in the right
// direction for the checks built on it: a missing edge can only make
// unittaint quieter, never wrong.
type Facts struct {
	// Decls maps every function object declared in the loaded packages
	// to its declaration site.
	Decls map[*types.Func]*FuncInfo
	// Sites lists every resolved call site across the loaded packages,
	// in load order (deterministic: packages are sorted by path, files
	// by name).
	Sites []CallSite
	// Callees maps a declared function to the distinct declared
	// functions it calls directly, sorted by full name.
	Callees map[*types.Func][]*types.Func

	// callerOrder lists Callees' keys in first-edge order (a
	// deterministic product of the sorted package/file walk), so
	// normalization never iterates the map.
	callerOrder []*types.Func
	// paramUnits is the lazily-built unittaint fact; see ParamUnits.
	paramUnits map[*types.Func][]map[*types.Named]bool
}

// BuildFacts constructs the shared fact base for one analyzer run over
// the given packages.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Decls:   map[*types.Func]*FuncInfo{},
		Callees: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					f.Decls[obj] = &FuncInfo{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, _ := decl.(*ast.FuncDecl)
				var root ast.Node = decl
				if fd != nil {
					if fd.Body == nil {
						continue
					}
					root = fd.Body
				}
				pkg, fd := pkg, fd
				ast.Inspect(root, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(pkg.Info, call)
					if callee == nil {
						return true
					}
					f.Sites = append(f.Sites, CallSite{Pkg: pkg, Caller: fd, Call: call, Callee: callee})
					if fd != nil {
						if caller, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
							f.addEdge(caller, callee)
						}
					}
					return true
				})
			}
		}
	}
	for _, caller := range f.callerOrder {
		out := f.Callees[caller]
		sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	}
	return f
}

// addEdge records caller → callee once.
func (f *Facts) addEdge(caller, callee *types.Func) {
	for _, c := range f.Callees[caller] {
		if c == callee {
			return
		}
	}
	if len(f.Callees[caller]) == 0 {
		f.callerOrder = append(f.callerOrder, caller)
	}
	f.Callees[caller] = append(f.Callees[caller], callee)
}

// DeclOf returns the declaration site of fn, or nil if fn was not
// declared in the loaded packages (stdlib, or a package outside the
// analysis roots).
func (f *Facts) DeclOf(fn *types.Func) *FuncInfo {
	return f.Decls[fn]
}

// ParamUnits returns, for the declared function fn, one set per
// parameter of the internal/unit newtypes that call sites launder into
// that parameter through a bare float64(...) cast. A parameter whose
// set is empty never receives a laundered unit; a set with two or more
// entries means different call sites disagree about the parameter's
// dimension. Variadic tails are attributed to the final parameter.
// The fact is built once, on first use, from every call site in the
// fact base.
func (f *Facts) ParamUnits(fn *types.Func) []map[*types.Named]bool {
	if f.paramUnits == nil {
		f.buildParamUnits()
	}
	return f.paramUnits[fn]
}

// buildParamUnits scans every resolved call site for float64(unitX)
// arguments feeding float64 parameters.
func (f *Facts) buildParamUnits() {
	f.paramUnits = map[*types.Func][]map[*types.Named]bool{}
	for _, site := range f.Sites {
		info := f.Decls[site.Callee]
		if info == nil {
			continue // no body loaded: nothing to check inside it
		}
		sig, ok := site.Callee.Type().(*types.Signature)
		if !ok {
			continue
		}
		params := sig.Params()
		if params.Len() == 0 {
			continue
		}
		sets := f.paramUnits[site.Callee]
		if sets == nil {
			sets = make([]map[*types.Named]bool, params.Len())
			f.paramUnits[site.Callee] = sets
		}
		for ai, arg := range site.Call.Args {
			pi := ai
			if pi >= params.Len() {
				if !sig.Variadic() {
					break
				}
				pi = params.Len() - 1
			}
			if !isFloat64Param(params.At(pi).Type(), sig.Variadic() && pi == params.Len()-1) {
				continue
			}
			u := launderedUnit(site.Pkg.Info, arg)
			if u == nil {
				continue
			}
			if sets[pi] == nil {
				sets[pi] = map[*types.Named]bool{}
			}
			sets[pi][u] = true
		}
	}
}

// isFloat64Param reports whether a parameter type is a bare float64
// (or, for a variadic tail, ...float64) — the only parameter shape a
// float64(...) cast can launder a unit into.
func isFloat64Param(t types.Type, variadicTail bool) bool {
	if variadicTail {
		if s, ok := t.(*types.Slice); ok {
			t = s.Elem()
		}
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// launderedUnit returns the internal/unit newtype that e erases via a
// float64(x) conversion, or nil when e is not such a cast.
func launderedUnit(info *types.Info, e ast.Expr) *types.Named {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Float64 {
		return nil
	}
	return unitType(info.TypeOf(call.Args[0]))
}

// calleeOf resolves the *types.Func a call invokes through an
// identifier or selector, or nil for builtins, conversions, function
// values, and interface calls. For instantiated generics it returns
// the generic origin.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	if origin := fn.Origin(); origin != nil {
		return origin
	}
	return fn
}

// rootIdent unwraps an expression to the identifier at its base:
// selectors, index and slice expressions, dereferences, parens, and
// type assertions all reduce to the object they read through. Calls
// do not reduce (their result is a fresh value).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// directiveLines collects the source lines holding a given directive
// comment (the comment's exact text on a line of its own), so checks
// can match "directive on the line directly above a statement".
func directiveLines(pass *Pass, file *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
