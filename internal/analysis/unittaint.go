package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// UnitTaint is the interprocedural extension of unitsafety. The
// intra-file analyzer catches `float64(a) + float64(b)` mixing two
// unit newtypes in one expression — but the same bug split across a
// call site is invisible to it: a helper takes a bare float64, one
// caller launders a unit.Decibel into it, and the helper's body adds
// it to a float64(unit.DBm) cast. UnitTaint closes that hole with two
// checks over the shared fact base's call graph:
//
//   - conflicting laundering: a float64 parameter that different call
//     sites feed with float64 casts of *different* unit newtypes has
//     no consistent dimension; the parameter should carry the unit
//     type and force explicit conversion. Reported at the parameter.
//   - cross-unit arithmetic through a call: inside a function, a
//     float64 parameter whose call sites all launder one unit type U
//     must not combine arithmetically with a float64(V) cast of a
//     different unit, or with another parameter laundered as W ≠ U.
//     Reported at the offending expression.
//
// The call graph resolves only direct calls, so both checks are
// conservative: an unresolved call site can only silence them.
var UnitTaint = &Analyzer{
	Name: "unittaint",
	Doc:  "track unit newtypes laundered into float64 parameters across call sites and flag cross-unit arithmetic the intra-file check cannot see",
	Run:  runUnitTaint,
}

func runUnitTaint(pass *Pass) error {
	if pass.Facts == nil {
		return nil // no fact base: a bare single-analyzer harness
	}
	if pass.Pkg.Path() == unitPath {
		return nil // conversions between units are the unit package's job
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sets := pass.Facts.ParamUnits(fn)
			if sets == nil {
				continue
			}
			params := paramIdents(fd)
			checkConflictingLaunder(pass, fn, params, sets)
			checkLaunderedArith(pass, fd, params, sets)
		}
	}
	return nil
}

// paramIdents flattens a declaration's parameter names in signature
// order, so index i matches types.Signature.Params().At(i).
func paramIdents(fd *ast.FuncDecl) []*ast.Ident {
	var ids []*ast.Ident
	if fd.Type.Params == nil {
		return ids
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			ids = append(ids, name)
		}
	}
	return ids
}

// checkConflictingLaunder reports parameters whose call sites launder
// two or more distinct unit types into the same float64 slot.
func checkConflictingLaunder(pass *Pass, fn *types.Func, params []*ast.Ident, sets []map[*types.Named]bool) {
	for i, set := range sets {
		if len(set) < 2 || i >= len(params) {
			continue
		}
		pass.Reportf(params[i].Pos(), "parameter %q of %s receives float64-laundered %s at different call sites; give it a unit type so conversions are explicit", params[i].Name, fn.Name(), unitSetString(set))
	}
}

// checkLaunderedArith walks the function body for arithmetic that
// combines a laundered parameter with a different unit's cast or with
// a differently-laundered parameter.
func checkLaunderedArith(pass *Pass, fd *ast.FuncDecl, params []*ast.Ident, sets []map[*types.Named]bool) {
	// paramUnit maps each parameter object to its single laundered
	// unit; conflicted parameters (≥2 units) are already reported by
	// the other check and excluded here to avoid double findings.
	paramUnit := map[types.Object]*types.Named{}
	for i, set := range sets {
		if len(set) != 1 || i >= len(params) {
			continue
		}
		obj := pass.ObjectOf(params[i])
		if obj == nil {
			continue
		}
		for u := range set {
			paramUnit[obj] = u
		}
	}
	if len(paramUnit) == 0 {
		return
	}
	// operandUnit resolves one side of a binary expression to a unit
	// type: a direct use of a laundered parameter, or an explicit
	// float64(unitX) cast.
	operandUnit := func(e ast.Expr) (*types.Named, string) {
		e = ast.Unparen(e)
		if id, ok := e.(*ast.Ident); ok {
			if u := paramUnit[pass.ObjectOf(id)]; u != nil {
				return u, "parameter " + id.Name + " (laundered " + typeShort(u) + " at every call site)"
			}
			return nil, ""
		}
		if u := launderedUnit(pass.Info, e); u != nil {
			return u, "float64(" + typeShort(u) + ")"
		}
		return nil, ""
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.ADD, token.SUB,
			token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			// Additive combination and comparison require matching
			// dimensions. MUL/QUO legitimately combine different units
			// (rate × time), so they stay exempt — as in unitsafety.
		default:
			return true
		}
		lu, ldesc := operandUnit(be.X)
		ru, rdesc := operandUnit(be.Y)
		if lu == nil || ru == nil || lu == ru {
			return true
		}
		pass.Reportf(be.Pos(), "cross-unit arithmetic through a call site: %s %s %s mixes %s and %s; take unit-typed parameters and convert explicitly", ldesc, be.Op, rdesc, typeShort(lu), typeShort(ru))
		return true
	})
}

// unitSetString renders a laundering set deterministically.
func unitSetString(set map[*types.Named]bool) string {
	names := make([]string, 0, len(set))
	for u := range set {
		names = append(names, typeShort(u))
	}
	sort.Strings(names)
	return strings.Join(names, " and ")
}
