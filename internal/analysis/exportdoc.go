package analysis

import (
	"go/ast"
	"strings"
)

// ExportDoc requires a preceding doc comment on every exported
// identifier in internal/... packages: functions, methods on exported
// types, type declarations, and const/var specs. A comment on a
// grouped declaration block covers the specs inside it. Struct fields
// and interface methods are exempt. The
// internal tree is this repository's API surface for its own
// subsystems, and the paper-parameter constants in particular
// (launch powers, losses, capacities) are meaningless without a
// sentence of provenance.
var ExportDoc = &Analyzer{
	Name: "exportdoc",
	Doc:  "require doc comments on exported identifiers in internal packages",
	// Missing docs degrade the codebase but cannot corrupt results, so
	// exportdoc is the suite's one warning-severity analyzer: CI
	// surfaces its findings without failing the build on them.
	Severity: SevWarning,
	Run:      runExportDoc,
}

func runExportDoc(pass *Pass) error {
	if !strings.HasPrefix(pass.Pkg.Path(), internalPrefix) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // a block comment documents every spec inside
				}
				for _, spec := range d.Specs {
					checkSpecDoc(pass, spec)
				}
			}
		}
	}
	return nil
}

// checkFuncDoc reports an exported function or method without a doc
// comment. Methods on unexported receiver types are exempt: they are
// invisible outside the package.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		if !receiverExported(d.Recv) {
			return
		}
		kind = "method"
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s is undocumented", kind, d.Name.Name)
}

// checkSpecDoc reports exported names in an undocumented spec of an
// undocumented declaration block.
func checkSpecDoc(pass *Pass, spec ast.Spec) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		if s.Name.IsExported() && s.Doc == nil {
			pass.Reportf(s.Name.Pos(), "exported type %s is undocumented", s.Name.Name)
		}
	case *ast.ValueSpec:
		if s.Doc != nil {
			return
		}
		for _, name := range s.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported name %s is undocumented", name.Name)
			}
		}
	}
}

// receiverExported reports whether the method receiver's base type
// name is exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver like T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
