package analysis

import (
	"strings"
)

// internalPrefix is the import-path prefix of the packages the
// layering rules govern.
const internalPrefix = "lightpath/internal/"

// LayerRanks assigns each internal package a layer; a package may only
// import internal packages with a strictly lower rank. Ranks are
// spaced by ten so new packages can slot between existing layers
// without renumbering. Keys are paths relative to internal/; a nested
// package (ctrl/loadgen) may declare its own rank, and otherwise
// inherits the rank of its closest declared ancestor.
//
// The bottom layer (rank 0) holds the leaf vocabulary of the whole
// system — physical quantities (unit), deterministic randomness (rng),
// torus geometry (torus), and this analysis framework — and must not
// import any internal package. The photonic substrate (phy, wafer)
// sits strictly below scheduling and experiment logic, so the paper's
// link-budget math can never grow a dependency on policy code.
var LayerRanks = map[string]int{
	"analysis":     0,
	"chaos":        10,
	"engine":       0,
	"bench":        0,
	"rng":          0,
	"snapshot":     0,
	"unit":         0,
	"sketch":       10,
	"torus":        10,
	"collective":   20,
	"phy":          20,
	"alloc":        30,
	"cost":         30,
	"hostnet":      30,
	"netsim":       30,
	"sched":        30,
	"wafer":        30,
	"topo":         35,
	"route":        40,
	"viz":          40,
	"failure":      50,
	"invariant":    50,
	"fleet":        55,
	"core":         60,
	"ctrl":         62,
	"ctrl/loadgen": 64,
	"experiments":  70,
}

// rankOf resolves a package path (relative to internal/) to its layer:
// the longest declared prefix wins, so "ctrl/loadgen" finds its own
// entry while an undeclared "ctrl/internal-helper" would inherit
// "ctrl"'s rank rather than demand a new map entry.
func rankOf(rel string) (int, bool) {
	for {
		if r, ok := LayerRanks[rel]; ok {
			return r, true
		}
		i := strings.LastIndex(rel, "/")
		if i < 0 {
			return 0, false
		}
		rel = rel[:i]
	}
}

// Layering enforces the package dependency DAG declared in LayerRanks:
// every internal package must appear in the map, and may import only
// internal packages of strictly lower rank. This keeps unit and rng
// leaf-clean and keeps the physical-layer packages (phy, wafer) from
// ever depending on scheduling, allocation, or experiment drivers.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the internal package dependency DAG declared in LayerRanks",
	Run:  runLayering,
}

func runLayering(pass *Pass) error {
	self, ok := strings.CutPrefix(pass.Pkg.Path(), internalPrefix)
	if !ok {
		return nil // cmd, examples, and the root package are unconstrained
	}
	selfRank, known := rankOf(self)
	if !known {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s is not in the layering map; declare its rank in internal/analysis/layering.go", pass.Pkg.Path())
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			dep, ok := strings.CutPrefix(path, internalPrefix)
			if !ok {
				continue
			}
			depRank, known := rankOf(dep)
			if !known {
				pass.Reportf(imp.Pos(), "import %s is not in the layering map; declare its rank in internal/analysis/layering.go", path)
				continue
			}
			if depRank >= selfRank {
				pass.Reportf(imp.Pos(), "layer violation: %s (layer %d) must not import %s (layer %d)", pass.Pkg.Path(), selfRank, path, depRank)
			}
		}
	}
	return nil
}
