package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Fixture tests run one analyzer over a small package under
// testdata/src/<name> and compare its findings against `// want
// `regexp`` comments in the fixture sources. Every want must be
// matched by a finding on its line, and every finding must match a
// want — so each fixture demonstrates both true positives and true
// negatives.

func TestDeterminismFixture(t *testing.T) {
	runFixtureTest(t, Determinism, "determinism", "fixture/determinism")
}

func TestDeterminismExemptsRNG(t *testing.T) {
	runFixtureTest(t, Determinism, "determinism_rng", rngPath)
}

func TestUnitSafetyFixture(t *testing.T) {
	runFixtureTest(t, UnitSafety, "unitsafety", "fixture/unitsafety")
}

func TestLayeringFixture(t *testing.T) {
	runFixtureTest(t, Layering, "layering", "lightpath/internal/phy")
}

func TestLayeringUnknownPackage(t *testing.T) {
	runFixtureTest(t, Layering, "layering_unknown", "lightpath/internal/mystery")
}

func TestErrDropFixture(t *testing.T) {
	runFixtureTest(t, ErrDrop, "errdrop", "fixture/errdrop")
}

func TestExportDocFixture(t *testing.T) {
	runFixtureTest(t, ExportDoc, "exportdoc", "lightpath/internal/docfixture")
}

func TestExportDocSkipsExternal(t *testing.T) {
	runFixtureTest(t, ExportDoc, "exportdoc_external", "fixture/external")
}

func TestHotallocFixture(t *testing.T) {
	runFixtureTest(t, Hotalloc, "hotalloc", "fixture/hotalloc")
}

func TestDeterminismEnvFixture(t *testing.T) {
	runFixtureTest(t, Determinism, "determinism_env", "lightpath/internal/envfixture")
}

// TestParCaptureFixture proves the analyzer catches the PR 3 bug
// class: mutable state captured and written by engine.Map/Stream trial
// closures (the fixture's Sum reconstructs the historical defect).
func TestParCaptureFixture(t *testing.T) {
	runFixtureTest(t, ParCapture, "parcapture", "fixture/parcapture")
}

// TestArenaEscapeFixture proves the analyzer catches the PR 5 hazard
// class: pooled scratch aliases outliving their borrow (the fixture's
// LeakRates reconstructs the historical defect shape).
func TestArenaEscapeFixture(t *testing.T) {
	runFixtureTest(t, ArenaEscape, "arenaescape", "fixture/arenaescape")
}

func TestUnitTaintFixture(t *testing.T) {
	runFixtureTest(t, UnitTaint, "unittaint", "fixture/unittaint")
}

// wantRe matches one `// want `regexp“ expectation comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// want is one expectation parsed from a fixture source line.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// runFixtureTest loads testdata/src/<fixture> as a package named
// asPath, runs a single analyzer, and diffs findings against the
// fixture's want comments.
func runFixtureTest(t *testing.T, a *Analyzer, fixture, asPath string) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := loader.LoadDirAs(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, dir)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		ok := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no finding matched want `%s`", key, w.re)
			}
		}
	}
}

// parseWants scans every .go file in dir for want comments, keyed by
// "file.go:line".
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}
