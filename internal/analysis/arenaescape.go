package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaEscape guards the trial-scoped arena discipline PR 5
// introduced: buffers drawn from a sync.Pool (or any local marked with
// a //lightpath:arena directive on the line above its declaration) are
// borrowed, not owned — the pool's Put hands the same backing memory
// to the next trial, so any alias that outlives the borrowing function
// is a use-after-reuse bug waiting for a parallel schedule to expose
// it. The analyzer runs a forward alias analysis per function: the
// results of (*sync.Pool).Get and marked declarations seed a taint
// set, assignments/slicings/field reads propagate it, and it reports
// when a tainted alias
//
//   - is returned from the function;
//   - is stored into a package-level variable, or into a field or
//     element reachable from a parameter or receiver (state that
//     outlives the call);
//   - is sent on a channel or captured by a go statement's closure
//     (consumers race the pool's reuse);
//   - is read or written after an explicit Put of its root object in
//     the same block (deferred Puts, the borrow-scoped idiom, are the
//     sanctioned pattern and stay legal).
//
// Storing one arena alias inside another arena-tainted structure (the
// chaosScratch pattern: slices of the arena parked in the pooled
// struct's own map) is fine — the whole object graph returns to the
// pool together.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "forbid sync.Pool-obtained or //lightpath:arena-marked buffers from escaping the borrowing function",
	Run:  runArenaEscape,
}

// arenaDirective marks a declaration whose variables are trial-scoped
// scratch even though they do not come from a sync.Pool.
const arenaDirective = "//lightpath:arena"

// poolGetName and poolPutName are the sync.Pool borrow/return entry
// points as types.Func full names.
const (
	poolGetName = "(*sync.Pool).Get"
	poolPutName = "(*sync.Pool).Put"
)

func runArenaEscape(pass *Pass) error {
	for _, file := range pass.Files {
		marks := directiveLines(pass, file, arenaDirective)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaFunc(pass, fd, marks)
		}
	}
	return nil
}

// checkArenaFunc seeds and propagates the arena taint set across one
// function body, then reports escapes.
func checkArenaFunc(pass *Pass, fd *ast.FuncDecl, marks map[int]bool) {
	tainted := map[types.Object]bool{}

	// owned reports whether an expression aliases tainted memory: it
	// reads through a tainted object AND its own type can carry the
	// alias (slice, pointer, map, struct value holding headers — any
	// non-basic type). A scalar loaded out of the arena is a copy, not
	// an alias, and may go anywhere.
	owned := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !tainted[obj] {
			return nil
		}
		if t := pass.TypeOf(e); t != nil {
			if _, basic := t.Underlying().(*types.Basic); basic {
				return nil
			}
		}
		return obj
	}

	// arenaSource reports whether the RHS of a binding derives from the
	// taint set or freshly borrows from a pool.
	arenaSource := func(rhs ast.Expr) bool {
		rhs = ast.Unparen(rhs)
		if owned(rhs) != nil {
			return true
		}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && fn.FullName() == poolGetName {
				return true
			}
			// append(tainted, ...) may return the same backing array.
			if builtinName(pass, call) == "append" && len(call.Args) > 0 && owned(call.Args[0]) != nil {
				return true
			}
		}
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			return arenaSourceExpr(pass, tainted, ta.X)
		}
		return false
	}

	// bind taints a local alias. Package-level variables are never
	// bound: parking an arena alias in a global is an escape (reported
	// by the second sweep), not propagation — tainting it would mask
	// its own report.
	bind := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		obj := pass.ObjectOf(id)
		if obj == nil || obj.Parent() == pass.Pkg.Scope() {
			return
		}
		tainted[obj] = true
	}

	// Seed + propagate in two sweeps: source order handles the common
	// straight-line case, and the second sweep catches aliases bound
	// before their source was recognized (e.g. a marked declaration
	// after a use in a closure literal).
	propagate := func() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				marked := marks[pass.Fset.Position(n.Pos()).Line-1]
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if marked || arenaSource(n.Rhs[i]) {
						bind(id)
					}
				}
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					return true
				}
				marked := marks[pass.Fset.Position(n.Pos()).Line-1]
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if marked || (i < len(vs.Values) && arenaSource(vs.Values[i])) {
							bind(name)
						}
					}
				}
			}
			return true
		})
	}
	propagate()
	propagate()
	if len(tainted) == 0 {
		return
	}

	// retired maps a Put object to the position of the Put statement;
	// any later mention of the object in the same function is a
	// use-after-return-to-pool.
	retired := map[types.Object]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := owned(res); obj != nil {
					pass.Reportf(res.Pos(), "arena-backed %q is returned; the pool reuses its memory after Put — copy into caller-owned storage instead", obj.Name())
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				obj := owned(n.Rhs[i])
				if obj == nil {
					// append(dst, tainted...) smuggles the alias into dst's
					// backing array; treat it like a direct store of the
					// tainted argument.
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && builtinName(pass, call) == "append" {
						for _, a := range call.Args[min(1, len(call.Args)):] {
							if o := owned(a); o != nil {
								obj = o
								break
							}
						}
					}
				}
				if obj == nil {
					continue
				}
				if escapesVia(pass, fd, tainted, lhs) {
					pass.Reportf(n.Rhs[i].Pos(), "arena-backed %q is stored in state that outlives the borrow; the pool reuses its memory after Put — copy it instead", obj.Name())
				}
			}
		case *ast.SendStmt:
			if obj := owned(n.Value); obj != nil {
				pass.Reportf(n.Value.Pos(), "arena-backed %q is sent on a channel; the receiver races the pool's reuse — copy into an owned buffer before sending", obj.Name())
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				reportGoCaptures(pass, lit, tainted)
			}
			for _, arg := range n.Call.Args {
				if obj := owned(arg); obj != nil {
					pass.Reportf(arg.Pos(), "arena-backed %q is passed to a goroutine; it races the pool's reuse — copy into an owned buffer first", obj.Name())
				}
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.FullName() != poolPutName || len(call.Args) != 1 {
				return true
			}
			if id := rootIdent(call.Args[0]); id != nil {
				if obj := pass.ObjectOf(id); obj != nil && tainted[obj] {
					retired[obj] = n.End()
				}
			}
		case *ast.Ident:
			obj := pass.ObjectOf(n)
			if obj == nil {
				return true
			}
			if put, ok := retired[obj]; ok && n.Pos() > put {
				pass.Reportf(n.Pos(), "%q is used after its Put returned it to the pool; another trial may already own the memory", obj.Name())
				delete(retired, obj) // one report per retirement is enough
			}
		}
		return true
	})
}

// arenaSourceExpr is the recursion helper for type assertions over
// tainted expressions (pool.Get().(*T) — the canonical borrow shape).
func arenaSourceExpr(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	if id := rootIdent(e); id != nil {
		if obj := pass.ObjectOf(id); obj != nil && tainted[obj] {
			return true
		}
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil && fn.FullName() == poolGetName {
			return true
		}
	}
	return false
}

// escapesVia reports whether storing into lhs parks the value in state
// that outlives the function: a package-level variable, or a
// field/element reachable from a parameter, receiver, or package-level
// variable that is not itself arena-tainted. Stores into tainted
// structures (the arena owning its own slices) and into untainted
// locals (plain aliasing, handled by propagation) are fine.
func escapesVia(pass *Pass, fd *ast.FuncDecl, tainted map[types.Object]bool, lhs ast.Expr) bool {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return false
	}
	obj := pass.ObjectOf(id)
	if obj == nil || tainted[obj] {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Parent() == pass.Pkg.Scope() {
		return true // package-level variable
	}
	if _, isDirect := ast.Unparen(lhs).(*ast.Ident); isDirect {
		return false // rebinding a local: propagation's job, not an escape
	}
	// A composite store (x.f = v, x[i] = v, *x = v): escapes when the
	// root is a parameter or receiver — memory the caller can hold
	// after we Put the arena back.
	return isParamOrRecv(pass, fd, obj)
}

// isParamOrRecv reports whether obj is one of fd's parameters or its
// receiver.
func isParamOrRecv(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	fields := []*ast.FieldList{fd.Type.Params}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv)
	}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if pass.ObjectOf(name) == obj {
					return true
				}
			}
		}
	}
	return false
}

// reportGoCaptures flags tainted variables captured by a goroutine
// launched inside the borrowing function.
func reportGoCaptures(pass *Pass, lit *ast.FuncLit, tainted map[types.Object]bool) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil || !tainted[obj] || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // shadowed inside the closure
		}
		seen[obj] = true
		pass.Reportf(id.Pos(), "arena-backed %q is captured by a goroutine; it races the pool's reuse — copy into an owned buffer first", obj.Name())
		return true
	})
}
