package wafer

import (
	"testing"
	"testing/quick"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

func TestDefaultConfigHeadlines(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// §3: "A LIGHTPATH wafer consists of 32 tiles that can
	// interconnect 32 chips".
	if cfg.Tiles() != 32 {
		t.Fatalf("tiles = %d, want 32", cfg.Tiles())
	}
	// "each accelerator is 3D stacked on a LIGHTPATH tile equipped
	// with 16 lasers and photodiodes".
	if cfg.LasersPerTile != 16 {
		t.Fatalf("lasers = %d, want 16", cfg.LasersPerTile)
	}
	// "One wavelength can sustain up to 224 Gbps".
	if cfg.WavelengthCapacity != 224*unit.Gbps {
		t.Fatalf("wavelength = %v, want 224 Gbps", cfg.WavelengthCapacity)
	}
	// Tile egress = 16 x 224 Gbps = 3.584 Tbps.
	if cfg.TileEgress() != 3584*unit.Gbps {
		t.Fatalf("egress = %v, want 3.584 Tbps", cfg.TileEgress())
	}
}

// TestFig4WaveguideDensity is experiment E3: "LIGHTPATH can support
// over 10,000 waveguides per tile since each waveguide and MZI has a
// pitch of 3 um" (Figure 4).
func TestFig4WaveguideDensity(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.WaveguidesPerTileGeometric(); got < 10000 {
		t.Fatalf("waveguides per tile = %d, want >= 10000", got)
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.Cols = -1 },
		func(c *Config) { c.LasersPerTile = 0 },
		func(c *Config) { c.SerDesPortsPerTile = 0 },
		func(c *Config) { c.WavelengthCapacity = 0 },
		func(c *Config) { c.BusesPerLane = 0 },
		func(c *Config) { c.FibersPerEdge = -1 },
		func(c *Config) { c.TileEdge = 0 },
		func(c *Config) { c.WaveguidePitch = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSwitch13Programming(t *testing.T) {
	var s Switch13
	for port := 0; port < SwitchDegree; port++ {
		if err := s.Program(port, 0); err != nil {
			t.Fatalf("program %d: %v", port, err)
		}
		if s.Port() != port {
			t.Fatalf("port = %d, want %d", s.Port(), port)
		}
	}
	if err := s.Program(3, 0); err == nil {
		t.Fatal("port 3 accepted on a 1x3 switch")
	}
	if err := s.Program(-1, 0); err == nil {
		t.Fatal("negative port accepted")
	}
}

// TestSwitch13SettlesIn3_7us: experiment E12's switching headline —
// both MZI stages drive in parallel, so the 1x3 switch settles one
// reconfiguration latency (3.7 us) after programming.
func TestSwitch13SettlesIn3_7us(t *testing.T) {
	var s Switch13
	now := unit.Seconds(1)
	if err := s.Program(2, now); err != nil {
		t.Fatal(err)
	}
	want := now + phy.ReconfigLatency
	if got := s.SettledAt(); got != want {
		t.Fatalf("settled at %v, want %v", got, want)
	}
}

func TestTileResourceAccounting(t *testing.T) {
	cfg := DefaultConfig()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tile := w.Tile(0, 0)
	if tile.FreeLasers() != 16 || tile.FreePorts() != 16 {
		t.Fatalf("fresh tile: %d lasers, %d ports", tile.FreeLasers(), tile.FreePorts())
	}
	if err := tile.Reserve(4); err != nil {
		t.Fatal(err)
	}
	if tile.FreeLasers() != 12 || tile.FreePorts() != 15 {
		t.Fatalf("after reserve: %d lasers, %d ports", tile.FreeLasers(), tile.FreePorts())
	}
	if err := tile.Reserve(13); err == nil {
		t.Fatal("over-reservation of lasers accepted")
	}
	if err := tile.Reserve(0); err == nil {
		t.Fatal("zero-width reservation accepted")
	}
	tile.Release(4)
	if tile.FreeLasers() != 16 || tile.FreePorts() != 16 {
		t.Fatal("release did not restore resources")
	}
	// Port exhaustion: 16 one-laser circuits exhaust the SerDes ports.
	for i := 0; i < 16; i++ {
		if err := tile.Reserve(1); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if err := tile.Reserve(1); err == nil {
		t.Fatal("17th port reservation accepted")
	}
}

func TestEndpointBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	w, _ := New(cfg)
	tile := w.Tile(0, 0)
	if got := tile.EndpointBandwidth(4); got != 4*224*unit.Gbps {
		t.Fatalf("bandwidth(4) = %v", got)
	}
}

func TestTileGridAccessors(t *testing.T) {
	w, _ := New(DefaultConfig())
	tile := w.Tile(2, 5)
	if tile.Row != 2 || tile.Col != 5 {
		t.Fatalf("tile coords (%d,%d)", tile.Row, tile.Col)
	}
	idx := w.TileIndex(2, 5)
	if w.TileByIndex(idx) != tile {
		t.Fatal("TileByIndex mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-grid tile did not panic")
		}
	}()
	w.Tile(4, 0)
}

func TestBusAllocationDisjoint(t *testing.T) {
	w, _ := New(DefaultConfig())
	// Two overlapping spans land on different buses.
	a, err := w.AllocBus(Horizontal, 0, Interval{Lo: 0, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AllocBus(Horizontal, 0, Interval{Lo: 2, Hi: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bus == b.Bus {
		t.Fatal("overlapping spans share a bus")
	}
	// A disjoint span reuses the first bus (first fit).
	c, err := w.AllocBus(Horizontal, 0, Interval{Lo: 4, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bus != a.Bus {
		t.Fatalf("disjoint span got bus %d, want %d (first fit)", c.Bus, a.Bus)
	}
	h, v := w.BusesInUse()
	if h != 2 || v != 0 {
		t.Fatalf("buses in use = %d/%d, want 2/0", h, v)
	}
	w.FreeBus(a)
	w.FreeBus(b)
	w.FreeBus(c)
	h, _ = w.BusesInUse()
	if h != 0 {
		t.Fatalf("buses still in use after free: %d", h)
	}
}

func TestBusLaneExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BusesPerLane = 2
	w, _ := New(cfg)
	span := Interval{Lo: 0, Hi: 7}
	if _, err := w.AllocBus(Vertical, 3, span); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AllocBus(Vertical, 3, span); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AllocBus(Vertical, 3, span); err == nil {
		t.Fatal("third allocation on a 2-bus lane accepted")
	}
}

func TestBusAllocationErrors(t *testing.T) {
	w, _ := New(DefaultConfig())
	if _, err := w.AllocBus(Horizontal, 99, Interval{0, 1}); err == nil {
		t.Error("bad lane accepted")
	}
	if _, err := w.AllocBus(Orient('X'), 0, Interval{0, 1}); err == nil {
		t.Error("bad orientation accepted")
	}
	if _, err := w.AllocBus(Horizontal, 0, Interval{3, 1}); err == nil {
		t.Error("inverted interval accepted")
	}
}

func TestFreeBusPanicsOnDoubleFree(t *testing.T) {
	w, _ := New(DefaultConfig())
	ref, err := w.AllocBus(Horizontal, 1, Interval{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	w.FreeBus(ref)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	w.FreeBus(ref)
}

// Property: any sequence of allocations on one lane yields pairwise
// non-overlapping intervals per bus.
func TestBusDisjointnessProperty(t *testing.T) {
	f := func(spans []struct{ Lo, Hi uint8 }) bool {
		cfg := DefaultConfig()
		w, _ := New(cfg)
		type alloc struct {
			bus int
			iv  Interval
		}
		var allocs []alloc
		for _, s := range spans {
			lo, hi := int(s.Lo%8), int(s.Hi%8)
			if lo > hi {
				lo, hi = hi, lo
			}
			ref, err := w.AllocBus(Horizontal, 0, Interval{Lo: lo, Hi: hi})
			if err != nil {
				return false // 10,000 buses cannot exhaust here
			}
			allocs = append(allocs, alloc{bus: ref.Bus, iv: ref.Span})
		}
		for i := range allocs {
			for j := i + 1; j < len(allocs); j++ {
				if allocs[i].bus == allocs[j].bus && allocs[i].iv.overlaps(allocs[j].iv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOrientString(t *testing.T) {
	if Horizontal.String() != "horizontal" || Vertical.String() != "vertical" {
		t.Fatal("orient strings wrong")
	}
}

func TestBusRefString(t *testing.T) {
	ref := BusRef{Orient: Vertical, Lane: 2, Bus: 7, Span: Interval{1, 3}}
	if s := ref.String(); s != "vertical lane 2 bus 7 span [1,3]" {
		t.Fatalf("string = %q", s)
	}
}
