package wafer

import (
	"fmt"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

// SwitchesPerTile is fixed by the hardware: "Each LIGHTPATH tile is
// equipped with four optical switches; each switch has a degree of
// 1x3" (§3).
const SwitchesPerTile = 4

// SwitchDegree is the output degree of each tile switch.
const SwitchDegree = 3

// Switch13 is one of a tile's four 1x3 optical switches, realized as
// a two-stage binary tree of Mach-Zehnder interferometers (Figure
// 2b): the first MZI selects output 0 versus the second stage, and
// the second MZI selects output 1 versus output 2. Programming the
// switch drives both stages; the switch is settled when the slower
// stage settles.
type Switch13 struct {
	stage [2]phy.MZI
	port  int
	// lastProgram is when the most recent Program was issued.
	lastProgram unit.Seconds
	// stuck marks a failed switch frozen in its current state: the
	// established path keeps working, but Program is refused.
	stuck bool
}

// Port returns the commanded output port (0, 1 or 2).
func (s *Switch13) Port() int { return s.port }

// Program commands the switch to route its input to the given output
// port at simulated time now.
func (s *Switch13) Program(port int, now unit.Seconds) error {
	if port < 0 || port >= SwitchDegree {
		return fmt.Errorf("wafer: switch port %d out of range [0, %d)", port, SwitchDegree)
	}
	if s.stuck {
		return fmt.Errorf("wafer: switch is stuck and cannot be reprogrammed")
	}
	// Stage 0: Bar selects port 0 directly; Cross forwards to stage 1.
	// Stage 1: Bar selects port 1; Cross selects port 2.
	if port == 0 {
		s.stage[0].Program(phy.Bar, now)
	} else {
		s.stage[0].Program(phy.Cross, now)
		if port == 1 {
			s.stage[1].Program(phy.Bar, now)
		} else {
			s.stage[1].Program(phy.Cross, now)
		}
	}
	s.port = port
	s.lastProgram = now
	return nil
}

// SettledAt returns when the switch output is stable after the most
// recent Program: both MZI stages drive concurrently, so it is one
// reconfiguration latency after the program time, not two.
func (s *Switch13) SettledAt() unit.Seconds {
	return s.lastProgram + phy.ReconfigLatency
}

// Tile is one LIGHTPATH tile with a chip stacked on it.
type Tile struct {
	Row, Col int

	// Switches are the tile's four 1x3 MZI switches.
	Switches [SwitchesPerTile]Switch13

	lasers       int // total lasers (wavelengths)
	serdesPorts  int // total SerDes ports
	lasersUsed   int
	lasersFailed int
	portsUsed    int
	chipFailed   bool
	capacity     unit.BitRate // per wavelength
}

func newTile(row, col int, cfg Config) *Tile {
	return &Tile{
		Row:         row,
		Col:         col,
		lasers:      cfg.LasersPerTile,
		serdesPorts: cfg.SerDesPortsPerTile,
		capacity:    cfg.WavelengthCapacity,
	}
}

// FreeLasers returns the number of unallocated, still-working
// wavelengths. Failed lasers are charged against free capacity first;
// when failures exceed the free pool, circuits already holding the
// remainder are over-committed and must be invalidated by the caller.
func (t *Tile) FreeLasers() int { return t.lasers - t.lasersUsed - t.lasersFailed }

// FreePorts returns the number of unallocated SerDes ports.
func (t *Tile) FreePorts() int { return t.serdesPorts - t.portsUsed }

// UsedLasers returns the wavelengths currently reserved by circuit
// endpoints at this tile — the ground truth the invariant auditor
// balances against the sum of established circuit widths.
func (t *Tile) UsedLasers() int { return t.lasersUsed }

// UsedPorts returns the SerDes ports currently reserved by circuit
// endpoints at this tile.
func (t *Tile) UsedPorts() int { return t.portsUsed }

// Reserve takes width wavelengths and one SerDes port for a circuit
// endpoint.
func (t *Tile) Reserve(width int) error {
	if width <= 0 {
		return fmt.Errorf("wafer: non-positive circuit width %d", width)
	}
	// Static sentinels on the capacity paths: endpoint contention is a
	// steady-state outcome under load, not an anomaly worth a fresh
	// formatted error per probe.
	if t.FreeLasers() < width {
		return ErrLasersExhausted
	}
	if t.FreePorts() < 1 {
		return ErrPortsExhausted
	}
	t.lasersUsed += width
	t.portsUsed++
	return nil
}

// Release returns a circuit endpoint's resources.
func (t *Tile) Release(width int) {
	t.lasersUsed -= width
	t.portsUsed--
	if t.lasersUsed < 0 || t.portsUsed < 0 {
		panic(fmt.Sprintf("wafer: tile (%d,%d) resource underflow", t.Row, t.Col))
	}
}

// EndpointBandwidth returns the bandwidth of a circuit of the given
// wavelength width terminating at this tile.
func (t *Tile) EndpointBandwidth(width int) unit.BitRate {
	return unit.BitRate(width) * t.capacity
}
