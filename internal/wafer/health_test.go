package wafer

import (
	"strings"
	"testing"
)

func healthRack(t *testing.T) *Rack {
	t.Helper()
	r, err := NewRack(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFailChip(t *testing.T) {
	r := healthRack(t)
	tile := r.TileOf(0)
	if !tile.ChipHealthy() {
		t.Fatal("fresh chip unhealthy")
	}
	tile.FailChip()
	if tile.ChipHealthy() {
		t.Fatal("failed chip reported healthy")
	}
	if h := r.Health(); h.FailedChips != 1 {
		t.Fatalf("health counted %d failed chips", h.FailedChips)
	}
}

func TestFailLasersSaturatesAndChargesFreePool(t *testing.T) {
	r := healthRack(t)
	tile := r.TileOf(0)
	free := tile.FreeLasers()
	tile.FailLasers(3)
	if got := tile.FreeLasers(); got != free-3 {
		t.Fatalf("free lasers = %d, want %d", got, free-3)
	}
	tile.FailLasers(1 << 20)
	if got := tile.FailedLasers(); got != free {
		t.Fatalf("failed lasers = %d, want saturation at %d", got, free)
	}
	tile.FailLasers(-5) // no-op
	if got := tile.FailedLasers(); got != free {
		t.Fatalf("negative failure changed count to %d", got)
	}
}

func TestFailedLasersCanOvercommitReservations(t *testing.T) {
	r := healthRack(t)
	tile := r.TileOf(0)
	if err := tile.Reserve(tile.FreeLasers()); err != nil {
		t.Fatal(err)
	}
	tile.FailLasers(1)
	if tile.FreeLasers() >= 0 {
		t.Fatal("over-commit not visible as negative free lasers")
	}
}

func TestFailSwitchRefusesProgramOnly(t *testing.T) {
	r := healthRack(t)
	tile := r.TileOf(0)
	if err := tile.Switches[1].Program(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tile.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	if tile.SwitchHealthy(1) || !tile.Switches[1].Stuck() {
		t.Fatal("stuck switch reported healthy")
	}
	if err := tile.Switches[1].Program(0, 0); err == nil {
		t.Fatal("stuck switch accepted a program")
	}
	// The frozen state survives: the established path keeps working.
	if tile.Switches[1].Port() != 2 {
		t.Fatalf("stuck switch forgot its port: %d", tile.Switches[1].Port())
	}
	if err := tile.FailSwitch(SwitchesPerTile); err == nil {
		t.Fatal("out-of-range switch index accepted")
	}
}

func TestDegradeSegmentAccumulatesAndSevers(t *testing.T) {
	r := healthRack(t)
	w := r.Wafer(0)
	if err := w.DegradeSegment(Horizontal, 1, 2, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := w.DegradeSegment(Horizontal, 1, 2, 2.0); err != nil {
		t.Fatal(err)
	}
	span := Interval{Lo: 0, Hi: 4}
	if got := w.SpanExtraLossDB(Horizontal, 1, span); got != 3.5 {
		t.Fatalf("span extra loss = %g, want 3.5", got)
	}
	if w.SpanSevered(Horizontal, 1, span) {
		t.Fatal("3.5 dB should not sever")
	}
	if err := w.DegradeSegment(Horizontal, 1, 2, SeveredSegmentDB); err != nil {
		t.Fatal(err)
	}
	if !w.SpanSevered(Horizontal, 1, span) {
		t.Fatal("past-threshold segment not severed")
	}
	// A span not crossing the defect is unaffected.
	if w.SpanSevered(Horizontal, 1, Interval{Lo: 3, Hi: 5}) {
		t.Fatal("severance leaked to a disjoint span")
	}
	if got := w.SpanExtraLossDB(Vertical, 1, span); got != 0 {
		t.Fatalf("orthogonal lane degraded by %g", got)
	}
	if w.DegradedSegments() != 1 {
		t.Fatalf("degraded segments = %d, want 1", w.DegradedSegments())
	}
}

func TestDegradeSegmentRejectsBadInputs(t *testing.T) {
	r := healthRack(t)
	w := r.Wafer(0)
	if err := w.DegradeSegment(Horizontal, -1, 0, 1); err == nil {
		t.Fatal("negative lane accepted")
	}
	if err := w.DegradeSegment(Horizontal, 0, 1<<20, 1); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if err := w.DegradeSegment(Horizontal, 0, 0, -1); err == nil {
		t.Fatal("negative loss accepted")
	}
}

func TestHealthReportString(t *testing.T) {
	r := healthRack(t)
	r.TileOf(0).FailChip()
	r.TileOf(1).FailLasers(2)
	if err := r.TileOf(2).FailSwitch(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Wafer(1).DegradeSegment(Vertical, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	h := r.Health()
	if h.FailedChips != 1 || h.FailedLasers != 2 || h.StuckSwitches != 1 || h.DegradedSegments != 1 {
		t.Fatalf("health report %+v", h)
	}
	if !strings.Contains(h.String(), "chips failed=1") {
		t.Fatalf("report string %q", h.String())
	}
}
