package wafer

import (
	"fmt"
	"sort"

	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file serializes the rack's mutable hardware state — occupancy,
// health, switch programming, fault-induced degradation — for the
// fleet checkpoint. Geometry is NOT serialized: a resume rebuilds the
// rack from its Config and then replays this state into it, so the
// snapshot stays small and the constructor remains the single source
// of structural truth. Every map is written in sorted key order; a
// snapshot is part of a byte-identical-resume contract, so nothing
// may depend on Go's map iteration order.

// EncodeState appends the rack's mutable state to the encoder.
func (r *Rack) EncodeState(e *snapshot.Encoder) {
	e.Len(len(r.wafers))
	for _, w := range r.wafers {
		w.encodeState(e)
	}
	e.Len(len(r.trunks))
	for _, t := range r.trunks {
		e.Len(len(t.used))
		for _, fibers := range t.used {
			e.Len(len(fibers))
			for _, used := range fibers {
				e.Bool(used)
			}
		}
	}
}

// RestoreState replays state captured by EncodeState into a freshly
// constructed rack of the same configuration. A geometry mismatch —
// the snapshot disagreeing with the rack about wafer, lane or trunk
// counts — is reported as corruption.
func (r *Rack) RestoreState(d *snapshot.Decoder) error {
	if n := d.Len(); n != len(r.wafers) {
		return fmt.Errorf("%w: snapshot has %d wafers, rack has %d",
			snapshot.ErrCorruptSnapshot, n, len(r.wafers))
	}
	for _, w := range r.wafers {
		if err := w.restoreState(d); err != nil {
			return err
		}
	}
	if n := d.Len(); n != len(r.trunks) {
		return fmt.Errorf("%w: snapshot has %d trunks, rack has %d",
			snapshot.ErrCorruptSnapshot, n, len(r.trunks))
	}
	for ti, t := range r.trunks {
		if n := d.Len(); n != len(t.used) {
			return fmt.Errorf("%w: trunk %d has %d rows, snapshot says %d",
				snapshot.ErrCorruptSnapshot, ti, len(t.used), n)
		}
		for row := range t.used {
			if n := d.Len(); n != len(t.used[row]) {
				return fmt.Errorf("%w: trunk %d row %d has %d fibers, snapshot says %d",
					snapshot.ErrCorruptSnapshot, ti, row, len(t.used[row]), n)
			}
			for f := range t.used[row] {
				t.used[row][f] = d.Bool()
			}
		}
	}
	return d.Err()
}

func (w *Wafer) encodeState(e *snapshot.Encoder) {
	e.Len(len(w.tiles))
	for _, t := range w.tiles {
		t.encodeState(e)
	}
	encodeLanes(e, w.hLanes)
	encodeLanes(e, w.vLanes)
	// Fault-induced degradation, in sorted key order.
	keys := make([]segKey, 0, len(w.degraded))
	for k := range w.degraded {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.o != b.o {
			return a.o < b.o
		}
		if a.lane != b.lane {
			return a.lane < b.lane
		}
		return a.pos < b.pos
	})
	e.Len(len(keys))
	for _, k := range keys {
		e.Bool(k.o == Horizontal)
		e.Int(k.lane)
		e.Int(k.pos)
		e.F64(w.degraded[k])
	}
}

func (w *Wafer) restoreState(d *snapshot.Decoder) error {
	if n := d.Len(); n != len(w.tiles) {
		return fmt.Errorf("%w: wafer has %d tiles, snapshot says %d",
			snapshot.ErrCorruptSnapshot, len(w.tiles), n)
	}
	for _, t := range w.tiles {
		t.restoreState(d)
	}
	if err := restoreLanes(d, w.hLanes); err != nil {
		return err
	}
	if err := restoreLanes(d, w.vLanes); err != nil {
		return err
	}
	w.degraded = nil
	n := d.Len()
	if n > 0 {
		w.degraded = make(map[segKey]float64, n)
	}
	for i := 0; i < n; i++ {
		o := Vertical
		if d.Bool() {
			o = Horizontal
		}
		k := segKey{o: o, lane: d.Int(), pos: d.Int()}
		w.degraded[k] = d.F64()
	}
	return d.Err()
}

func (t *Tile) encodeState(e *snapshot.Encoder) {
	e.Int(t.lasersUsed)
	e.Int(t.lasersFailed)
	e.Int(t.portsUsed)
	e.Bool(t.chipFailed)
	for i := range t.Switches {
		s := &t.Switches[i]
		e.Int(s.port)
		snapshot.Unit(e, s.lastProgram)
		e.Bool(s.stuck)
		for j := range s.stage {
			phase, target, last := s.stage[j].PhaseState()
			e.F64(phase)
			e.F64(target)
			snapshot.Unit(e, last)
		}
	}
}

func (t *Tile) restoreState(d *snapshot.Decoder) {
	t.lasersUsed = d.Int()
	t.lasersFailed = d.Int()
	t.portsUsed = d.Int()
	t.chipFailed = d.Bool()
	for i := range t.Switches {
		s := &t.Switches[i]
		s.port = d.Int()
		s.lastProgram = snapshot.DecodeUnit[unit.Seconds](d)
		s.stuck = d.Bool()
		for j := range s.stage {
			phase := d.F64()
			target := d.F64()
			last := snapshot.DecodeUnit[unit.Seconds](d)
			s.stage[j].SetPhaseState(phase, target, last)
		}
	}
}

func encodeLanes(e *snapshot.Encoder, lanes []*busLane) {
	e.Len(len(lanes))
	for _, l := range lanes {
		e.Len(len(l.buses))
		for _, ivs := range l.buses {
			e.Len(len(ivs))
			for _, iv := range ivs {
				e.Int(iv.Lo)
				e.Int(iv.Hi)
			}
		}
	}
}

func restoreLanes(d *snapshot.Decoder, lanes []*busLane) error {
	if n := d.Len(); n != len(lanes) {
		return fmt.Errorf("%w: wafer has %d lanes, snapshot says %d",
			snapshot.ErrCorruptSnapshot, len(lanes), n)
	}
	for _, l := range lanes {
		touched := d.Len()
		if touched > l.capacity {
			return fmt.Errorf("%w: snapshot touches %d buses, lane capacity %d",
				snapshot.ErrCorruptSnapshot, touched, l.capacity)
		}
		l.buses = l.buses[:0]
		for b := 0; b < touched; b++ {
			count := d.Len()
			ivs := make([]Interval, 0, count)
			for i := 0; i < count; i++ {
				ivs = append(ivs, Interval{Lo: d.Int(), Hi: d.Int()})
			}
			l.buses = append(l.buses, ivs)
		}
	}
	return d.Err()
}
