// Package wafer models the LIGHTPATH hardware itself (§3, Figures 1,
// 2 and 4): a 200mm x 200mm photonic wafer of 32 tiles arranged in a
// grid, each tile carrying a Tx/Rx block with 16 wavelength-
// multiplexed lasers and photodetectors, four 1x3 optical switches
// built from Mach-Zehnder interferometers, and thousands of bus
// waveguides at 3 um pitch. Chips (GPUs/TPUs) are 3D-stacked one per
// tile; programming the MZIs establishes end-to-end optical circuits
// between chips. Wafers cascade over attached fibers into rack-scale
// interconnects.
//
// The package owns hardware state (switch programming and settling,
// laser/SerDes port budgets, waveguide-bus occupancy); pathfinding
// over that state lives in internal/route.
package wafer

import (
	"fmt"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

// Config describes one LIGHTPATH wafer. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// Rows and Cols arrange the tiles; the paper's wafer has 32 tiles
	// (we model a 4x8 grid; Figure 2c shows a 2x4 excerpt).
	Rows, Cols int

	// LasersPerTile is the number of wavelength-multiplexed lasers
	// (and photodetectors) per tile: 16 in the paper.
	LasersPerTile int

	// SerDesPortsPerTile caps the number of distinct chip connections
	// per tile ("the number of connections that can be made by one
	// LIGHTPATH tile is limited by the number of SerDes ports
	// available in the electrical chip", §3).
	SerDesPortsPerTile int

	// WavelengthCapacity is the data rate one wavelength sustains:
	// 224 Gbps in the paper.
	WavelengthCapacity unit.BitRate

	// BusesPerLane is the number of parallel bus waveguides per tile
	// row (horizontal) and per tile column (vertical) available for
	// circuits. The paper's tiles support >10,000 waveguides.
	BusesPerLane int

	// FibersPerEdge is the number of attached fibers per tile row at
	// a wafer edge, used to cascade wafers ("thousands of waveguides
	// between chips and 10s of fibers across servers", §4.2).
	FibersPerEdge int

	// TileEdge is the physical tile edge length, used for
	// waveguide-density and propagation-loss geometry.
	TileEdge unit.Meters

	// WaveguidePitch is the waveguide/MZI pitch: 3 um in the paper
	// (Figure 4).
	WaveguidePitch unit.Meters
}

// DefaultConfig returns the paper's prototype parameters.
func DefaultConfig() Config {
	return Config{
		Rows:               4,
		Cols:               8,
		LasersPerTile:      16,
		SerDesPortsPerTile: 16,
		WavelengthCapacity: phy.WavelengthCapacity,
		BusesPerLane:       10000,
		FibersPerEdge:      16,
		TileEdge:           30 * unit.Millimeter,
		WaveguidePitch:     3 * unit.Micrometer,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("wafer: bad tile grid %dx%d", c.Rows, c.Cols)
	case c.LasersPerTile <= 0:
		return fmt.Errorf("wafer: need at least one laser per tile")
	case c.SerDesPortsPerTile <= 0:
		return fmt.Errorf("wafer: need at least one SerDes port per tile")
	case c.WavelengthCapacity <= 0:
		return fmt.Errorf("wafer: non-positive wavelength capacity")
	case c.BusesPerLane <= 0:
		return fmt.Errorf("wafer: need at least one bus per lane")
	case c.FibersPerEdge < 0:
		return fmt.Errorf("wafer: negative fiber count")
	case c.TileEdge <= 0 || c.WaveguidePitch <= 0:
		return fmt.Errorf("wafer: non-positive geometry")
	}
	return nil
}

// Tiles returns the tile count (32 for the paper's wafer).
func (c Config) Tiles() int { return c.Rows * c.Cols }

// TileEgress returns a tile's maximum egress bandwidth: all lasers at
// full wavelength capacity (16 x 224 Gbps = 3.584 Tbps).
func (c Config) TileEgress() unit.BitRate {
	return unit.BitRate(c.LasersPerTile) * c.WavelengthCapacity
}

// WaveguidesPerTileGeometric returns the number of waveguides that fit
// across one tile edge at the configured pitch — the Figure 4 headline
// (30 mm / 3 um = 10,000).
func (c Config) WaveguidesPerTileGeometric() int {
	return int(float64(c.TileEdge) / float64(c.WaveguidePitch))
}
