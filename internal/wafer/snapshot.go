package wafer

// This file implements deep cloning of the hardware model so a
// Monte-Carlo campaign can construct one pristine rack and duplicate
// it per trial instead of re-running the full constructor. A clone is
// indistinguishable from a freshly built rack that replayed the
// original's mutation history: same occupancy, same failures, same
// degradation — and entirely disjoint storage, so trials running on
// separate goroutines cannot alias each other's state.

// Clone returns a deep copy of the tile. Tiles hold only value state
// (the MZI switch stages included), so a struct copy suffices.
func (t *Tile) Clone() *Tile {
	c := *t
	return &c
}

// clone deep-copies a bus lane, including the per-bus occupancy
// intervals.
func (l *busLane) clone() *busLane {
	c := &busLane{capacity: l.capacity}
	if l.buses != nil {
		c.buses = make([][]Interval, len(l.buses))
		for i, ivs := range l.buses {
			if ivs != nil {
				c.buses[i] = append([]Interval(nil), ivs...)
			}
		}
	}
	return c
}

// Clone returns a deep copy of the wafer: tiles, bus-lane occupancy
// and fault-induced degradation are all duplicated, so mutating the
// clone never affects the original.
func (w *Wafer) Clone() *Wafer {
	c := &Wafer{cfg: w.cfg}
	c.tiles = make([]*Tile, len(w.tiles))
	for i, t := range w.tiles {
		c.tiles[i] = t.Clone()
	}
	c.hLanes = make([]*busLane, len(w.hLanes))
	for i, l := range w.hLanes {
		c.hLanes[i] = l.clone()
	}
	c.vLanes = make([]*busLane, len(w.vLanes))
	for i, l := range w.vLanes {
		c.vLanes[i] = l.clone()
	}
	if w.degraded != nil {
		c.degraded = make(map[segKey]float64, len(w.degraded))
		for k, v := range w.degraded {
			c.degraded[k] = v
		}
	}
	return c
}

// Clone returns a deep copy of the rack: every wafer and every
// inter-wafer fiber trunk is duplicated. Building a rack once and
// cloning it per trial is equivalent to rebuilding it, at a fraction
// of the cost.
func (r *Rack) Clone() *Rack {
	c := &Rack{cfg: r.cfg, topology: r.topology}
	c.wafers = make([]*Wafer, len(r.wafers))
	for i, w := range r.wafers {
		c.wafers[i] = w.Clone()
	}
	c.trunks = make([]*fiberTrunk, len(r.trunks))
	for i, t := range r.trunks {
		nt := &fiberTrunk{used: make([][]bool, len(t.used))}
		for row, fibers := range t.used {
			nt.used[row] = append([]bool(nil), fibers...)
		}
		c.trunks[i] = nt
	}
	return c
}
