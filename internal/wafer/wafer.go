package wafer

import (
	"errors"
	"fmt"
)

// Capacity-exhaustion sentinels. These fire on every failed probe of a
// contended resource — the steady state of an overloaded fabric — so
// they are preallocated rather than formatted per call. Callers that
// need the specific trunk/tile already know it from their arguments.
var (
	// ErrFibersExhausted reports a trunk row with every fiber occupied.
	ErrFibersExhausted = errors.New("wafer: all fibers on the trunk row are occupied")
	// ErrLasersExhausted reports a tile without enough free lasers for
	// a requested circuit width.
	ErrLasersExhausted = errors.New("wafer: not enough free lasers on the tile")
	// ErrPortsExhausted reports a tile with no free SerDes port.
	ErrPortsExhausted = errors.New("wafer: no free SerDes ports on the tile")
)

// Orient distinguishes horizontal bus waveguides (running along a tile
// row) from vertical ones (along a tile column).
type Orient byte

// Bus orientations.
const (
	Horizontal Orient = 'H'
	Vertical   Orient = 'V'
)

// String names the orientation.
func (o Orient) String() string {
	if o == Horizontal {
		return "horizontal"
	}
	return "vertical"
}

// Interval is an inclusive range of tile positions [Lo, Hi] along a
// bus lane.
type Interval struct {
	Lo, Hi int
}

// overlaps reports whether two inclusive intervals share a position.
func (iv Interval) overlaps(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// busLane tracks occupancy of the parallel buses of one lane (one tile
// row or column). Buses are allocated first-fit and lazily: with
// 10,000 buses per lane and a handful of circuits, only touched buses
// consume memory.
type busLane struct {
	capacity int
	// buses[i] holds the intervals currently occupying bus i; only
	// buses < len(buses) have ever been touched.
	buses [][]Interval
}

// alloc finds the first bus whose existing intervals do not overlap
// iv, occupies it, and returns the bus index.
func (l *busLane) alloc(iv Interval) (int, error) {
	if iv.Lo > iv.Hi {
		return 0, fmt.Errorf("wafer: inverted interval [%d,%d]", iv.Lo, iv.Hi)
	}
	for i := range l.buses {
		if !overlapsAny(l.buses[i], iv) {
			l.buses[i] = append(l.buses[i], iv)
			return i, nil
		}
	}
	if len(l.buses) >= l.capacity {
		return 0, fmt.Errorf("wafer: lane exhausted (%d buses all occupied)", l.capacity)
	}
	l.buses = append(l.buses, []Interval{iv})
	return len(l.buses) - 1, nil
}

// free releases the interval from the bus. It panics if the interval
// was not allocated — a release of something never acquired is a
// caller bug that must not be silently absorbed.
func (l *busLane) free(bus int, iv Interval) {
	if bus < 0 || bus >= len(l.buses) {
		panic(fmt.Sprintf("wafer: free of untouched bus %d", bus))
	}
	ivs := l.buses[bus]
	for i := range ivs {
		if ivs[i] == iv {
			l.buses[bus] = append(ivs[:i], ivs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("wafer: free of unallocated interval [%d,%d] on bus %d", iv.Lo, iv.Hi, bus))
}

// inUse counts buses with at least one occupied interval.
func (l *busLane) inUse() int {
	n := 0
	for _, ivs := range l.buses {
		if len(ivs) > 0 {
			n++
		}
	}
	return n
}

func overlapsAny(ivs []Interval, iv Interval) bool {
	for _, o := range ivs {
		if o.overlaps(iv) {
			return true
		}
	}
	return false
}

// BusRef identifies one allocated bus segment on a wafer.
type BusRef struct {
	Orient Orient
	// Lane is the tile row (Horizontal) or tile column (Vertical).
	Lane int
	// Bus is the index of the waveguide within the lane.
	Bus int
	// Span is the tile-position interval occupied.
	Span Interval
}

// String formats the reference.
func (b BusRef) String() string {
	return fmt.Sprintf("%s lane %d bus %d span [%d,%d]", b.Orient, b.Lane, b.Bus, b.Span.Lo, b.Span.Hi)
}

// Wafer is one LIGHTPATH wafer: a grid of tiles plus the bus
// waveguides that interconnect them.
type Wafer struct {
	cfg   Config
	tiles []*Tile
	// hLanes[row] and vLanes[col] are the bus lanes.
	hLanes []*busLane
	vLanes []*busLane
	// degraded maps bus-lane positions to fault-induced extra loss in
	// dB (see health.go); nil until the first fault.
	degraded map[segKey]float64
}

// New constructs a wafer from the configuration.
func New(cfg Config) (*Wafer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &Wafer{cfg: cfg}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			w.tiles = append(w.tiles, newTile(r, c, cfg))
		}
	}
	for r := 0; r < cfg.Rows; r++ {
		w.hLanes = append(w.hLanes, &busLane{capacity: cfg.BusesPerLane})
	}
	for c := 0; c < cfg.Cols; c++ {
		w.vLanes = append(w.vLanes, &busLane{capacity: cfg.BusesPerLane})
	}
	return w, nil
}

// Config returns the wafer's configuration.
func (w *Wafer) Config() Config { return w.cfg }

// Tile returns the tile at (row, col).
func (w *Wafer) Tile(row, col int) *Tile {
	if row < 0 || row >= w.cfg.Rows || col < 0 || col >= w.cfg.Cols {
		panic(fmt.Sprintf("wafer: tile (%d,%d) out of %dx%d grid", row, col, w.cfg.Rows, w.cfg.Cols))
	}
	return w.tiles[row*w.cfg.Cols+col]
}

// TileByIndex returns tile i in row-major order.
func (w *Wafer) TileByIndex(i int) *Tile {
	if i < 0 || i >= len(w.tiles) {
		panic(fmt.Sprintf("wafer: tile index %d out of range", i))
	}
	return w.tiles[i]
}

// TileIndex converts (row, col) to the row-major index.
func (w *Wafer) TileIndex(row, col int) int { return row*w.cfg.Cols + col }

// AllocBus occupies a free bus of the given orientation and lane over
// the span, returning a reference for later release.
func (w *Wafer) AllocBus(o Orient, lane int, span Interval) (BusRef, error) {
	l, err := w.lane(o, lane)
	if err != nil {
		return BusRef{}, err
	}
	bus, err := l.alloc(span)
	if err != nil {
		return BusRef{}, fmt.Errorf("wafer: %s lane %d: %w", o, lane, err)
	}
	return BusRef{Orient: o, Lane: lane, Bus: bus, Span: span}, nil
}

// FreeBus releases a previously allocated bus segment.
func (w *Wafer) FreeBus(ref BusRef) {
	l, err := w.lane(ref.Orient, ref.Lane)
	if err != nil {
		panic(err)
	}
	l.free(ref.Bus, ref.Span)
}

// BusSpanAllocated reports whether the exact interval of ref is
// currently allocated on its bus — the ground truth the invariant
// auditor checks every established circuit segment against. An
// out-of-range or never-touched reference is simply not allocated.
func (w *Wafer) BusSpanAllocated(ref BusRef) bool {
	l, err := w.lane(ref.Orient, ref.Lane)
	if err != nil || ref.Bus < 0 || ref.Bus >= len(l.buses) {
		return false
	}
	for _, iv := range l.buses[ref.Bus] {
		if iv == ref.Span {
			return true
		}
	}
	return false
}

// AllocatedSpans counts the bus intervals currently allocated across
// the wafer's lanes; conservation demands it equal the total segment
// count of established circuits.
func (w *Wafer) AllocatedSpans() int {
	n := 0
	for _, l := range w.hLanes {
		for _, ivs := range l.buses {
			n += len(ivs)
		}
	}
	for _, l := range w.vLanes {
		for _, ivs := range l.buses {
			n += len(ivs)
		}
	}
	return n
}

// BusesInUse reports the number of occupied buses per orientation,
// for utilization reporting.
func (w *Wafer) BusesInUse() (horizontal, vertical int) {
	for _, l := range w.hLanes {
		horizontal += l.inUse()
	}
	for _, l := range w.vLanes {
		vertical += l.inUse()
	}
	return
}

func (w *Wafer) lane(o Orient, lane int) (*busLane, error) {
	switch o {
	case Horizontal:
		if lane < 0 || lane >= len(w.hLanes) {
			return nil, fmt.Errorf("wafer: horizontal lane %d out of range", lane)
		}
		return w.hLanes[lane], nil
	case Vertical:
		if lane < 0 || lane >= len(w.vLanes) {
			return nil, fmt.Errorf("wafer: vertical lane %d out of range", lane)
		}
		return w.vLanes[lane], nil
	default:
		return nil, fmt.Errorf("wafer: unknown orientation %q", o)
	}
}
