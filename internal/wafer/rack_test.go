package wafer

import (
	"testing"
)

func TestNewRackValidation(t *testing.T) {
	if _, err := NewRack(DefaultConfig(), 0); err == nil {
		t.Fatal("zero wafers accepted")
	}
	bad := DefaultConfig()
	bad.Rows = 0
	if _, err := NewRack(bad, 2); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestRackHostsTPURack(t *testing.T) {
	// A TPUv4 rack of 64 chips needs two 32-tile wafers.
	r, err := NewRack(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumChips() != 64 {
		t.Fatalf("chips = %d, want 64", r.NumChips())
	}
	if r.NumWafers() != 2 {
		t.Fatalf("wafers = %d", r.NumWafers())
	}
}

func TestPlaceChipAtRoundTrip(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 3)
	for chip := 0; chip < r.NumChips(); chip++ {
		w, row, col := r.Place(chip)
		if back := r.ChipAt(w, row, col); back != chip {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", chip, w, row, col, back)
		}
	}
	// Chip 32 is the first tile of wafer 1.
	w, row, col := r.Place(32)
	if w != 1 || row != 0 || col != 0 {
		t.Fatalf("chip 32 at (%d,%d,%d)", w, row, col)
	}
}

func TestPlacePanics(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 1)
	for name, fn := range map[string]func(){
		"chip":  func() { r.Place(32) },
		"wafer": func() { r.Wafer(1) },
		"at":    func() { r.ChipAt(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTileOf(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 2)
	tile := r.TileOf(33) // wafer 1, row 0, col 1
	if tile.Row != 0 || tile.Col != 1 {
		t.Fatalf("tile at (%d,%d)", tile.Row, tile.Col)
	}
	if tile != r.Wafer(1).Tile(0, 1) {
		t.Fatal("TileOf returned wrong tile instance")
	}
}

func TestFiberAllocation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FibersPerEdge = 2
	r, _ := NewRack(cfg, 3)
	a, err := r.AllocFiber(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AllocFiber(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("same fiber allocated twice")
	}
	if _, err := r.AllocFiber(0, 1); err == nil {
		t.Fatal("third fiber on a 2-fiber row accepted")
	}
	// Other rows and trunks still free.
	if _, err := r.AllocFiber(0, 2); err != nil {
		t.Fatalf("other row: %v", err)
	}
	if _, err := r.AllocFiber(1, 1); err != nil {
		t.Fatalf("other trunk: %v", err)
	}
	if r.FibersInUse() != 4 {
		t.Fatalf("fibers in use = %d, want 4", r.FibersInUse())
	}
	r.FreeFiber(a)
	if r.FibersInUse() != 3 {
		t.Fatalf("after free = %d, want 3", r.FibersInUse())
	}
}

func TestFiberAllocationErrors(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 2)
	if _, err := r.AllocFiber(1, 0); err == nil {
		t.Error("out-of-range trunk accepted")
	}
	if _, err := r.AllocFiber(0, 4); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestFreeFiberPanicsOnDoubleFree(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 2)
	ref, err := r.AllocFiber(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.FreeFiber(ref)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	r.FreeFiber(ref)
}

func TestFiberRefString(t *testing.T) {
	ref := FiberRef{Trunk: 1, Row: 2, Fiber: 3}
	if s := ref.String(); s != "trunk 1 row 2 fiber 3" {
		t.Fatalf("string = %q", s)
	}
}

func TestSingleWaferRackHasNoTrunks(t *testing.T) {
	r, _ := NewRack(DefaultConfig(), 1)
	if _, err := r.AllocFiber(0, 0); err == nil {
		t.Fatal("fiber on a trunkless rack accepted")
	}
	if r.FibersInUse() != 0 {
		t.Fatal("phantom fibers")
	}
}

func TestTopologies(t *testing.T) {
	cfg := DefaultConfig()
	chain, err := NewRack(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Topology() != Chain || chain.NumTrunks() != 3 {
		t.Fatalf("chain: topo %v trunks %d", chain.Topology(), chain.NumTrunks())
	}
	ring, err := NewRackTopology(cfg, 4, RingTopology)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Topology() != RingTopology || ring.NumTrunks() != 4 {
		t.Fatalf("ring: topo %v trunks %d", ring.Topology(), ring.NumTrunks())
	}
	// The closing trunk allocates fibers like any other.
	if _, err := ring.AllocFiber(3, 0); err != nil {
		t.Fatalf("closing trunk: %v", err)
	}
	if _, err := NewRackTopology(cfg, 2, Topology(9)); err == nil {
		t.Fatal("unknown topology accepted")
	}
	// A single-wafer ring has no trunks.
	solo, err := NewRackTopology(cfg, 1, RingTopology)
	if err != nil {
		t.Fatal(err)
	}
	if solo.NumTrunks() != 0 {
		t.Fatalf("solo ring trunks = %d", solo.NumTrunks())
	}
	if Chain.String() != "chain" || RingTopology.String() != "ring" {
		t.Fatal("topology names wrong")
	}
}
