package wafer

import (
	"fmt"
)

// Topology is how a rack's wafers are cascaded with fibers.
type Topology int

// Cascade topologies (§3: "With attached fibers, we can cascade
// several LIGHTPATH wafers to create a rack-scale photonic
// interconnect ... Fibers can be attached vertically to the tiles to
// build 3D topologies").
const (
	// Chain connects wafer i to wafer i+1 only: N wafers, N-1 trunks.
	Chain Topology = iota
	// RingTopology additionally closes the loop from the last wafer
	// back to the first: N trunks, halving the worst-case trunk count
	// between distant wafers.
	RingTopology
)

// String names the topology.
func (t Topology) String() string {
	if t == RingTopology {
		return "ring"
	}
	return "chain"
}

// Rack is a cascade of LIGHTPATH wafers attached with fibers
// (§3, "Fiber connectivity between LIGHTPATH wafers"): circuits can
// leave a wafer at an edge tile, cross a fiber, and continue on the
// next wafer, enabling circuit switching across servers. A TPUv4 rack
// of 64 chips maps onto two 32-tile wafers.
type Rack struct {
	cfg      Config
	topology Topology
	wafers   []*Wafer
	// trunks[i] is the fiber bundle between wafer i's right edge
	// (col = Cols-1) and wafer (i+1)%N's left edge (col 0), with
	// FibersPerEdge fibers per tile row. A chain has N-1 trunks; a
	// ring has N.
	trunks []*fiberTrunk
}

type fiberTrunk struct {
	// used[row][fiber] marks occupied fibers.
	used [][]bool
}

// FiberRef identifies one allocated inter-wafer fiber.
type FiberRef struct {
	// Trunk is the gap index: trunk t spans wafers t and t+1.
	Trunk int
	// Row is the tile row the fiber attaches at.
	Row int
	// Fiber is the index within the row's bundle.
	Fiber int
}

// String formats the reference.
func (f FiberRef) String() string {
	return fmt.Sprintf("trunk %d row %d fiber %d", f.Trunk, f.Row, f.Fiber)
}

// NewRack builds numWafers identical wafers chained with fiber
// trunks (the Chain topology).
func NewRack(cfg Config, numWafers int) (*Rack, error) {
	return NewRackTopology(cfg, numWafers, Chain)
}

// NewRackTopology builds a rack with the given cascade topology.
func NewRackTopology(cfg Config, numWafers int, topo Topology) (*Rack, error) {
	if numWafers <= 0 {
		return nil, fmt.Errorf("wafer: rack needs at least one wafer, got %d", numWafers)
	}
	if topo != Chain && topo != RingTopology {
		return nil, fmt.Errorf("wafer: unknown topology %d", int(topo))
	}
	r := &Rack{cfg: cfg, topology: topo}
	for i := 0; i < numWafers; i++ {
		w, err := New(cfg)
		if err != nil {
			return nil, err
		}
		r.wafers = append(r.wafers, w)
	}
	numTrunks := numWafers - 1
	if topo == RingTopology && numWafers >= 2 {
		numTrunks = numWafers
	}
	for i := 0; i < numTrunks; i++ {
		t := &fiberTrunk{used: make([][]bool, cfg.Rows)}
		for row := range t.used {
			t.used[row] = make([]bool, cfg.FibersPerEdge)
		}
		r.trunks = append(r.trunks, t)
	}
	return r, nil
}

// Config returns the per-wafer configuration.
func (r *Rack) Config() Config { return r.cfg }

// Topology returns the cascade topology.
func (r *Rack) Topology() Topology { return r.topology }

// NumTrunks returns the number of inter-wafer fiber trunks.
func (r *Rack) NumTrunks() int { return len(r.trunks) }

// NumWafers returns the wafer count.
func (r *Rack) NumWafers() int { return len(r.wafers) }

// NumChips returns the total chips the rack can host (one per tile).
func (r *Rack) NumChips() int { return len(r.wafers) * r.cfg.Tiles() }

// Wafer returns wafer i.
func (r *Rack) Wafer(i int) *Wafer {
	if i < 0 || i >= len(r.wafers) {
		panic(fmt.Sprintf("wafer: wafer %d out of range [0, %d)", i, len(r.wafers)))
	}
	return r.wafers[i]
}

// Place maps a chip ID to its (wafer, row, col) tile position: chips
// fill wafers in row-major order.
func (r *Rack) Place(chip int) (waferIdx, row, col int) {
	if chip < 0 || chip >= r.NumChips() {
		panic(fmt.Sprintf("wafer: chip %d out of range [0, %d)", chip, r.NumChips()))
	}
	waferIdx = chip / r.cfg.Tiles()
	local := chip % r.cfg.Tiles()
	return waferIdx, local / r.cfg.Cols, local % r.cfg.Cols
}

// ChipAt is the inverse of Place.
func (r *Rack) ChipAt(waferIdx, row, col int) int {
	if waferIdx < 0 || waferIdx >= len(r.wafers) {
		panic(fmt.Sprintf("wafer: wafer %d out of range", waferIdx))
	}
	return waferIdx*r.cfg.Tiles() + row*r.cfg.Cols + col
}

// TileOf returns the tile hosting a chip.
func (r *Rack) TileOf(chip int) *Tile {
	w, row, col := r.Place(chip)
	return r.wafers[w].Tile(row, col)
}

// AllocFiber occupies one free fiber on the given trunk at the given
// tile row.
func (r *Rack) AllocFiber(trunk, row int) (FiberRef, error) {
	t, err := r.trunk(trunk, row)
	if err != nil {
		return FiberRef{}, err
	}
	for f, used := range t.used[row] {
		if !used {
			t.used[row][f] = true
			return FiberRef{Trunk: trunk, Row: row, Fiber: f}, nil
		}
	}
	// A static sentinel: fiber contention is the dominant failure under
	// load, and building a fresh descriptive error for every exhausted
	// probe dominated the allocation profile of failed establishes.
	return FiberRef{}, ErrFibersExhausted
}

// FreeFiber releases a previously allocated fiber. It panics on a
// double free — that is a caller bug.
func (r *Rack) FreeFiber(ref FiberRef) {
	t, err := r.trunk(ref.Trunk, ref.Row)
	if err != nil {
		panic(err)
	}
	if ref.Fiber < 0 || ref.Fiber >= len(t.used[ref.Row]) || !t.used[ref.Row][ref.Fiber] {
		panic(fmt.Sprintf("wafer: free of unallocated fiber %v", ref))
	}
	t.used[ref.Row][ref.Fiber] = false
}

// FiberAllocated reports whether the referenced fiber is currently
// occupied. An out-of-range reference is simply not allocated.
func (r *Rack) FiberAllocated(ref FiberRef) bool {
	t, err := r.trunk(ref.Trunk, ref.Row)
	if err != nil || ref.Fiber < 0 || ref.Fiber >= len(t.used[ref.Row]) {
		return false
	}
	return t.used[ref.Row][ref.Fiber]
}

// FibersInUse counts occupied fibers across all trunks.
func (r *Rack) FibersInUse() int {
	n := 0
	for _, t := range r.trunks {
		for _, row := range t.used {
			for _, used := range row {
				if used {
					n++
				}
			}
		}
	}
	return n
}

func (r *Rack) trunk(trunk, row int) (*fiberTrunk, error) {
	if trunk < 0 || trunk >= len(r.trunks) {
		return nil, fmt.Errorf("wafer: trunk %d out of range [0, %d)", trunk, len(r.trunks))
	}
	if row < 0 || row >= r.cfg.Rows {
		return nil, fmt.Errorf("wafer: trunk row %d out of range [0, %d)", row, r.cfg.Rows)
	}
	return r.trunks[trunk], nil
}
