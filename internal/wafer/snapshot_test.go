package wafer

import "testing"

// buildMutatedRack constructs a rack and applies one of every kind of
// mutation the model supports, so clone tests cover all state.
func buildMutatedRack(t *testing.T) *Rack {
	t.Helper()
	r, err := NewRackTopology(DefaultConfig(), 2, RingTopology)
	if err != nil {
		t.Fatal(err)
	}
	w := r.Wafer(0)
	if _, err := w.AllocBus(Horizontal, 1, Interval{Lo: 2, Hi: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AllocBus(Vertical, 3, Interval{Lo: 0, Hi: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.DegradeSegment(Horizontal, 1, 4, 2.5); err != nil {
		t.Fatal(err)
	}
	tile := w.Tile(1, 2)
	if err := tile.Reserve(4); err != nil {
		t.Fatal(err)
	}
	tile.FailLasers(2)
	tile.FailChip()
	if err := tile.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Tile(0, 0).Switches[0].Program(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AllocFiber(0, 1); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRackCloneMatches: a clone reports exactly the state of the
// original at clone time.
func TestRackCloneMatches(t *testing.T) {
	r := buildMutatedRack(t)
	c := r.Clone()

	if got, want := c.Health(), r.Health(); got != want {
		t.Fatalf("clone health %v, want %v", got, want)
	}
	if got, want := c.FibersInUse(), r.FibersInUse(); got != want {
		t.Fatalf("clone fibers in use %d, want %d", got, want)
	}
	ch, cv := c.Wafer(0).BusesInUse()
	oh, ov := r.Wafer(0).BusesInUse()
	if ch != oh || cv != ov {
		t.Fatalf("clone buses in use (%d,%d), want (%d,%d)", ch, cv, oh, ov)
	}
	ct, ot := c.Wafer(0).Tile(1, 2), r.Wafer(0).Tile(1, 2)
	if ct.FreeLasers() != ot.FreeLasers() || ct.FreePorts() != ot.FreePorts() {
		t.Fatalf("clone tile resources (%d,%d), want (%d,%d)",
			ct.FreeLasers(), ct.FreePorts(), ot.FreeLasers(), ot.FreePorts())
	}
	if got, want := c.Wafer(0).Tile(0, 0).Switches[0].Port(), 2; got != want {
		t.Fatalf("clone switch port %d, want %d", got, want)
	}
	if got := c.Wafer(0).SpanExtraLossDB(Horizontal, 1, Interval{Lo: 4, Hi: 4}); got != 2.5 {
		t.Fatalf("clone degradation %g dB, want 2.5", got)
	}
	if c.Config() != r.Config() || c.Topology() != r.Topology() {
		t.Fatalf("clone config/topology mismatch")
	}
}

// TestRackCloneIsolated: mutating the clone must not leak into the
// original, and vice versa — the property the parallel trial runner
// depends on.
func TestRackCloneIsolated(t *testing.T) {
	r := buildMutatedRack(t)
	before := r.Health()
	beforeFibers := r.FibersInUse()
	bh, bv := r.Wafer(0).BusesInUse()

	c := r.Clone()
	// Hammer the clone with every mutation kind.
	if _, err := c.Wafer(1).AllocBus(Horizontal, 0, Interval{Lo: 0, Hi: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocFiber(1, 2); err != nil {
		t.Fatal(err)
	}
	c.Wafer(1).Tile(3, 3).FailChip()
	c.Wafer(1).Tile(2, 2).FailLasers(5)
	if err := c.Wafer(1).DegradeSegment(Vertical, 0, 1, 30); err != nil {
		t.Fatal(err)
	}
	if err := c.Wafer(0).Tile(0, 0).Switches[0].Program(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Wafer(0).Tile(0, 1).Reserve(3); err != nil {
		t.Fatal(err)
	}

	if got := r.Health(); got != before {
		t.Fatalf("original health changed: %v, want %v", got, before)
	}
	if got := r.FibersInUse(); got != beforeFibers {
		t.Fatalf("original fibers changed: %d, want %d", got, beforeFibers)
	}
	if ah, av := r.Wafer(0).BusesInUse(); ah != bh || av != bv {
		t.Fatalf("original buses changed: (%d,%d), want (%d,%d)", ah, av, bh, bv)
	}
	if got := r.Wafer(0).Tile(0, 0).Switches[0].Port(); got != 2 {
		t.Fatalf("original switch reprogrammed through clone: port %d, want 2", got)
	}
	if got := r.Wafer(0).Tile(0, 1).FreePorts(); got != DefaultConfig().SerDesPortsPerTile {
		t.Fatalf("original tile ports changed: %d free", got)
	}
	if r.Wafer(1).SpanSevered(Vertical, 0, Interval{Lo: 1, Hi: 1}) {
		t.Fatal("original picked up the clone's severed segment")
	}

	// And the reverse direction: freeing on the original must not
	// disturb the clone's occupancy.
	r.FreeFiber(FiberRef{Trunk: 0, Row: 1, Fiber: 0})
	if got := c.FibersInUse(); got != beforeFibers+1 {
		t.Fatalf("clone fibers changed by original's free: %d", got)
	}
}
