package wafer

import (
	"fmt"
)

// This file is the hardware half of the failure lifecycle: per-
// component health state and the fault-application entry points the
// chaos engine's faults map onto. The wafer layer only records what is
// broken; deciding which circuits that invalidates and how to route
// around it is internal/route's job, and the detect/repair/resume loop
// lives in internal/core.

// SeveredSegmentDB is the extra insertion loss at which a degraded
// bus-lane segment is treated as severed: no budget can absorb it, so
// pathfinding prunes the segment outright instead of discovering the
// infeasibility circuit by circuit.
const SeveredSegmentDB = 20.0

// segKey identifies one tile position of one bus lane.
type segKey struct {
	o    Orient
	lane int
	pos  int
}

// FailChip marks the tile's stacked accelerator chip as failed. The
// photonic substrate underneath keeps working — circuits may still
// pass through the tile's buses — but the chip can no longer terminate
// circuits or participate in collectives.
func (t *Tile) FailChip() { t.chipFailed = true }

// ChipHealthy reports whether the tile's chip is alive.
func (t *Tile) ChipHealthy() bool { return !t.chipFailed }

// FailLasers burns out n of the tile's wavelength lasers. Lasers
// already reserved by circuits count: the caller is expected to
// invalidate circuits whose width no longer fits. Failing more lasers
// than exist saturates at the total.
func (t *Tile) FailLasers(n int) {
	if n <= 0 {
		return
	}
	t.lasersFailed += n
	if t.lasersFailed > t.lasers {
		t.lasersFailed = t.lasers
	}
}

// FailedLasers returns how many lasers have burned out.
func (t *Tile) FailedLasers() int { return t.lasersFailed }

// RepairChip replaces the tile's failed accelerator chip with a
// working one; the tile can terminate circuits again. Repairing a
// healthy chip is a no-op.
func (t *Tile) RepairChip() { t.chipFailed = false }

// RepairLasers restores n burned-out lasers (a Tx/Rx block swap).
// Restoring more lasers than have failed saturates at zero failed.
func (t *Tile) RepairLasers(n int) {
	if n <= 0 {
		return
	}
	t.lasersFailed -= n
	if t.lasersFailed < 0 {
		t.lasersFailed = 0
	}
}

// RepairSwitch replaces stuck tile switch i; it keeps its programmed
// port and accepts Program again.
func (t *Tile) RepairSwitch(i int) error {
	if i < 0 || i >= SwitchesPerTile {
		return fmt.Errorf("wafer: switch %d out of range [0, %d)", i, SwitchesPerTile)
	}
	t.Switches[i].stuck = false
	return nil
}

// FailSwitch freezes tile switch i in its current state: established
// paths through it keep working, but Program returns an error until
// the hardware is replaced.
func (t *Tile) FailSwitch(i int) error {
	if i < 0 || i >= SwitchesPerTile {
		return fmt.Errorf("wafer: switch %d out of range [0, %d)", i, SwitchesPerTile)
	}
	t.Switches[i].stuck = true
	return nil
}

// SwitchHealthy reports whether tile switch i can still be
// reprogrammed.
func (t *Tile) SwitchHealthy(i int) bool {
	return i >= 0 && i < SwitchesPerTile && !t.Switches[i].stuck
}

// Stuck reports whether the switch has failed into its current state.
func (s *Switch13) Stuck() bool { return s.stuck }

// DegradeSegment adds extra insertion loss at one tile position of a
// bus lane (all buses of the lane crossing that position pay it — the
// defect model is a contaminated routing region, not a single
// waveguide). Losses accumulate across repeated faults.
func (w *Wafer) DegradeSegment(o Orient, lane, pos int, extraDB float64) error {
	if _, err := w.lane(o, lane); err != nil {
		return err
	}
	limit := w.cfg.Cols
	if o == Vertical {
		limit = w.cfg.Rows
	}
	if pos < 0 || pos >= limit {
		return fmt.Errorf("wafer: %s lane %d position %d out of range [0, %d)", o, lane, pos, limit)
	}
	if extraDB < 0 {
		return fmt.Errorf("wafer: negative degradation %g dB", extraDB)
	}
	if w.degraded == nil {
		w.degraded = make(map[segKey]float64)
	}
	w.degraded[segKey{o: o, lane: lane, pos: pos}] += extraDB
	return nil
}

// RepairSegment clears all fault-induced extra loss at one tile
// position of a bus lane — the contaminated region is re-worked.
// Repairing an undegraded position is a no-op.
func (w *Wafer) RepairSegment(o Orient, lane, pos int) error {
	if _, err := w.lane(o, lane); err != nil {
		return err
	}
	limit := w.cfg.Cols
	if o == Vertical {
		limit = w.cfg.Rows
	}
	if pos < 0 || pos >= limit {
		return fmt.Errorf("wafer: %s lane %d position %d out of range [0, %d)", o, lane, pos, limit)
	}
	delete(w.degraded, segKey{o: o, lane: lane, pos: pos})
	return nil
}

// SpanExtraLossDB sums the fault-induced extra loss a circuit crossing
// the span of the lane would pay.
func (w *Wafer) SpanExtraLossDB(o Orient, lane int, span Interval) float64 {
	total := 0.0
	for pos := span.Lo; pos <= span.Hi; pos++ {
		total += w.degraded[segKey{o: o, lane: lane, pos: pos}]
	}
	return total
}

// SpanSevered reports whether any position of the span has degraded
// past SeveredSegmentDB and must be pruned from pathfinding.
func (w *Wafer) SpanSevered(o Orient, lane int, span Interval) bool {
	for pos := span.Lo; pos <= span.Hi; pos++ {
		if w.degraded[segKey{o: o, lane: lane, pos: pos}] >= SeveredSegmentDB {
			return true
		}
	}
	return false
}

// DegradedSegments counts tile positions carrying fault-induced loss,
// for health reporting.
func (w *Wafer) DegradedSegments() int { return len(w.degraded) }

// HealthReport summarizes a rack's component health for dashboards
// and experiment output.
type HealthReport struct {
	// FailedChips and StuckSwitches count dead components.
	FailedChips, StuckSwitches int
	// FailedLasers is the total burned-out lasers across tiles.
	FailedLasers int
	// DegradedSegments counts bus-lane positions with extra loss.
	DegradedSegments int
}

// String renders the report in one line.
func (h HealthReport) String() string {
	return fmt.Sprintf("chips failed=%d, switches stuck=%d, lasers dead=%d, segments degraded=%d",
		h.FailedChips, h.StuckSwitches, h.FailedLasers, h.DegradedSegments)
}

// Health scans the rack's component state.
func (r *Rack) Health() HealthReport {
	var h HealthReport
	for _, w := range r.wafers {
		h.DegradedSegments += w.DegradedSegments()
		for _, t := range w.tiles {
			if !t.ChipHealthy() {
				h.FailedChips++
			}
			h.FailedLasers += t.FailedLasers()
			for i := range t.Switches {
				if t.Switches[i].Stuck() {
					h.StuckSwitches++
				}
			}
		}
	}
	return h
}
