// Package cost implements the paper's alpha-beta-r model (§4.1): alpha
// is the per-step software overhead of sending a buffer, beta the
// inverse bandwidth of the links carrying it, and r the optical
// reconfiguration delay charged whenever the photonic interconnect is
// reprogrammed. It prices collective Schedules on two interconnects:
//
//   - Electrical direct-connect torus: a chip's egress bandwidth B is
//     statically partitioned across the physical dimensions, so every
//     flow runs at B/D_phys regardless of how many dimensions the
//     collective actually uses. This is the under-utilization of §4.1.
//
//   - Photonic (LIGHTPATH): MZI switches redirect the idle dimensions'
//     bandwidth onto the collective's active rings, so each of the
//     slice's D_active ring dimensions gets B/D_active (§4.1: "The
//     output of I/O ports of the TPU chip along different dimensions
//     can be redirected to one dimension"). The price is r per
//     reconfiguration-marked step.
package cost

import (
	"fmt"

	"lightpath/internal/collective"
	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

// Params are the constants of the cost model.
type Params struct {
	// Alpha is the per-step software overhead.
	Alpha unit.Seconds
	// ChipBandwidth is B, a chip's total egress bandwidth.
	ChipBandwidth unit.BitRate
	// PhysDims is D_phys, the number of physical torus dimensions a
	// chip's ports are statically divided across (3 for TPUv4).
	PhysDims int
	// Reconfig is r, the optical reconfiguration delay.
	Reconfig unit.Seconds
}

// DefaultParams returns the parameters used throughout the
// reproduction: alpha = 1 us (software send overhead), B = 300 GB/s
// (the paper's "over 300 gigabytes per second in one direction" for
// modern inter-accelerator links), 3 physical dimensions, and the
// measured r = 3.7 us.
func DefaultParams() Params {
	return Params{
		Alpha:         1 * unit.Microsecond,
		ChipBandwidth: unit.GBps(300),
		PhysDims:      3,
		Reconfig:      phy.ReconfigLatency,
	}
}

func (p Params) validate() error {
	if p.ChipBandwidth <= 0 {
		return fmt.Errorf("cost: non-positive chip bandwidth %v", p.ChipBandwidth)
	}
	if p.PhysDims <= 0 {
		return fmt.Errorf("cost: non-positive physical dimensions %d", p.PhysDims)
	}
	return nil
}

// Cost is the priced outcome of a schedule.
type Cost struct {
	Steps     int
	Reconfigs int
	// Alpha is Steps * alpha.
	Alpha unit.Seconds
	// Beta is the total transmission time (the beta term).
	Beta unit.Seconds
	// ReconfigTime is Reconfigs * r.
	ReconfigTime unit.Seconds
}

// Total returns Alpha + Beta + ReconfigTime.
func (c Cost) Total() unit.Seconds { return c.Alpha + c.Beta + c.ReconfigTime }

// String summarizes the cost.
func (c Cost) String() string {
	return fmt.Sprintf("steps=%d reconfigs=%d alpha=%v beta=%v total=%v",
		c.Steps, c.Reconfigs, c.Alpha, c.Beta, c.Total())
}

// flowKey groups a step's transfers by sending chip and dimension; a
// group shares one port's bandwidth.
type flowKey struct {
	chip, dim int
}

// stepBeta returns the transmission time of one step: the slowest
// (chip, dimension) group's bytes over the per-flow bandwidth. The
// caller owns the groups scratch (cleared here) so pricing a whole
// schedule reuses one map instead of allocating per step.
func stepBeta(groups map[flowKey]unit.Bytes, step collective.Step, elemBytes unit.Bytes, flowBW unit.BitRate) unit.Seconds {
	clear(groups)
	for _, tr := range step.Transfers {
		groups[flowKey{chip: tr.From, dim: tr.Dim}] += tr.Bytes(elemBytes)
	}
	var worst unit.Seconds
	for _, bytes := range groups {
		if t := flowBW.TimeFor(bytes); t > worst {
			worst = t
		}
	}
	return worst
}

// Electrical prices the schedule on a static direct-connect torus:
// every flow is confined to its dimension's port at B/D_phys;
// reconfiguration marks are ignored (there is nothing to reconfigure).
func (p Params) Electrical(s *collective.Schedule) (Cost, error) {
	if err := p.validate(); err != nil {
		return Cost{}, err
	}
	perDim := p.ChipBandwidth / unit.BitRate(p.PhysDims)
	c := Cost{Steps: s.NumSteps()}
	c.Alpha = unit.Seconds(c.Steps) * p.Alpha
	groups := make(map[flowKey]unit.Bytes)
	for _, step := range s.Steps {
		c.Beta += stepBeta(groups, step, s.ElemBytes, perDim)
	}
	return c, nil
}

// Optical prices the schedule on the photonic interconnect with
// bandwidth redirected across the collective's activeDims ring
// dimensions: every flow runs at B/activeDims, and each
// reconfiguration-marked step is charged r. activeDims is a property
// of the algorithm (1 for a single snake ring, the number of bucket
// dimensions otherwise); see collective.ActiveDims.
func (p Params) Optical(s *collective.Schedule, activeDims int) (Cost, error) {
	if err := p.validate(); err != nil {
		return Cost{}, err
	}
	if activeDims <= 0 {
		return Cost{}, fmt.Errorf("cost: non-positive active dimensions %d", activeDims)
	}
	perRing := p.ChipBandwidth / unit.BitRate(activeDims)
	c := Cost{Steps: s.NumSteps(), Reconfigs: s.Reconfigs()}
	c.Alpha = unit.Seconds(c.Steps) * p.Alpha
	c.ReconfigTime = unit.Seconds(c.Reconfigs) * p.Reconfig
	groups := make(map[flowKey]unit.Bytes)
	for _, step := range s.Steps {
		c.Beta += stepBeta(groups, step, s.ElemBytes, perRing)
	}
	return c, nil
}

// OpticalPerPhase prices the schedule on the photonic interconnect
// under the most aggressive redirection the paper describes (§4.1:
// "running the algorithm once, using all the bandwidth in each step
// (only feasible with LIGHTPATH)"): in every step, each chip's full
// egress B is divided among the distinct rings (flow groups) it is
// feeding at that moment. A sequential bucket phase gives each flow
// the whole B; the simultaneous buffer-split variant gives each of
// its D concurrent flows B/D — which is why that variant "does not
// offer better performance".
//
// Contrast with Optical, which models Table 2's static split of the
// idle dimensions' bandwidth across the slice's active dimensions.
func (p Params) OpticalPerPhase(s *collective.Schedule) (Cost, error) {
	if err := p.validate(); err != nil {
		return Cost{}, err
	}
	c := Cost{Steps: s.NumSteps(), Reconfigs: s.Reconfigs()}
	c.Alpha = unit.Seconds(c.Steps) * p.Alpha
	c.ReconfigTime = unit.Seconds(c.Reconfigs) * p.Reconfig
	for _, step := range s.Steps {
		groups := map[flowKey]unit.Bytes{}
		perChip := map[int]int{}
		for _, tr := range step.Transfers {
			k := flowKey{chip: tr.From, dim: tr.Dim}
			if _, ok := groups[k]; !ok {
				perChip[tr.From]++
			}
			groups[k] += tr.Bytes(s.ElemBytes)
		}
		var worst unit.Seconds
		for k, bytes := range groups {
			bw := p.ChipBandwidth / unit.BitRate(perChip[k.chip])
			if t := bw.TimeFor(bytes); t > worst {
				worst = t
			}
		}
		c.Beta += worst
	}
	return c, nil
}

// RingReduceScatterBetaLowerBound returns the beta-cost lower bound of
// a ReduceScatter over p chips of an N-byte buffer at per-flow
// bandwidth bw: (p-1)/p * N / bw (§4.1: "its beta-cost lower bound of
// ~ N*beta").
func RingReduceScatterBetaLowerBound(n unit.Bytes, p int, bw unit.BitRate) unit.Seconds {
	if p < 2 {
		return 0
	}
	return bw.TimeFor(n * unit.Bytes(p-1) / unit.Bytes(p))
}

// AllReduceBetaLowerBound is twice the ReduceScatter bound (D
// ReduceScatters + D AllGathers move 2(p-1)/p of the buffer per chip).
func AllReduceBetaLowerBound(n unit.Bytes, p int, bw unit.BitRate) unit.Seconds {
	return 2 * RingReduceScatterBetaLowerBound(n, p, bw)
}
