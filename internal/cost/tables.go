package cost

import (
	"fmt"
	"strings"

	"lightpath/internal/collective"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// This file regenerates the paper's Table 1 and Table 2: REDUCESCATTER
// alpha-beta costs of Slice-1 (a single 8-chip ring on a 4x2x1 slice)
// and Slice-3 (a two-stage bucket algorithm on a 4x4x1 slice), on
// electrical vs optical interconnects.

// Table1 is the priced comparison of the paper's Table 1.
type Table1 struct {
	BufferBytes unit.Bytes
	// ElecAlphaSteps and OptAlphaSteps are the "7 x alpha" column: the
	// number of ring steps (identical for both interconnects).
	ElecAlphaSteps, OptAlphaSteps int
	// OptReconfigs is the "+ r" of the optical alpha column.
	OptReconfigs int
	// ElecBeta and OptBeta are the beta columns.
	ElecBeta, OptBeta unit.Seconds
	// BetaRatio is ElecBeta/OptBeta; the paper's headline is 3x
	// ("Electrical interconnects induce 3X the beta cost").
	BetaRatio float64
}

// String renders the result in the shape of the paper's table.
func (t Table1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: REDUCESCATTER costs of Slice-1 (N = %v)\n", t.BufferBytes)
	fmt.Fprintf(&b, "  %-22s %-24s %-18s %-18s\n", "Elec. alpha cost", "Optics alpha cost", "Elec. beta cost", "Optics beta cost")
	fmt.Fprintf(&b, "  %-22s %-24s %-18v %-18v\n",
		fmt.Sprintf("%d x alpha", t.ElecAlphaSteps),
		fmt.Sprintf("%d x alpha + %d x r", t.OptAlphaSteps, t.OptReconfigs),
		t.ElecBeta, t.OptBeta)
	fmt.Fprintf(&b, "  beta ratio (elec/optics) = %.2fx (paper: 3x)\n", t.BetaRatio)
	return b.String()
}

// MakeTable1 prices the Slice-1 ReduceScatter of an n-element buffer.
// The slice must support a single snake ring (the paper's Slice-1 is
// 4x2x1).
func MakeTable1(p Params, t *torus.Torus, s *torus.Slice, n int, elemBytes unit.Bytes) (Table1, error) {
	elec, _, err := collective.SnakeRingReduceScatter("table1/elec", t, s, n, elemBytes, collective.BucketOptions{})
	if err != nil {
		return Table1{}, err
	}
	opt, _, err := collective.SnakeRingReduceScatter("table1/opt", t, s, n, elemBytes, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		return Table1{}, err
	}
	ec, err := p.Electrical(elec)
	if err != nil {
		return Table1{}, err
	}
	// A single ring: one active ring dimension regardless of which
	// physical dimensions its hops traverse.
	oc, err := p.Optical(opt, 1)
	if err != nil {
		return Table1{}, err
	}
	out := Table1{
		BufferBytes:    unit.Bytes(n) * elemBytes,
		ElecAlphaSteps: ec.Steps,
		OptAlphaSteps:  oc.Steps,
		OptReconfigs:   oc.Reconfigs,
		ElecBeta:       ec.Beta,
		OptBeta:        oc.Beta,
	}
	if oc.Beta > 0 {
		out.BetaRatio = float64(ec.Beta / oc.Beta)
	}
	return out, nil
}

// Table2Stage is one row of the paper's Table 2: one dimension phase
// of the bucket algorithm.
type Table2Stage struct {
	Dim         int
	BufferBytes unit.Bytes // buffer handled in this stage (N, then N/4, ...)
	AlphaSteps  int
	Reconfigs   int
	ElecBeta    unit.Seconds
	OptBeta     unit.Seconds
}

// BetaRatio returns ElecBeta/OptBeta for the stage.
func (s Table2Stage) BetaRatio() float64 {
	if s.OptBeta == 0 {
		return 0
	}
	return float64(s.ElecBeta / s.OptBeta)
}

// Table2 is the priced comparison of the paper's Table 2.
type Table2 struct {
	Stages []Table2Stage
}

// TotalElecBeta sums the stages' electrical beta costs.
func (t Table2) TotalElecBeta() unit.Seconds {
	var total unit.Seconds
	for _, s := range t.Stages {
		total += s.ElecBeta
	}
	return total
}

// TotalOptBeta sums the stages' optical beta costs.
func (t Table2) TotalOptBeta() unit.Seconds {
	var total unit.Seconds
	for _, s := range t.Stages {
		total += s.OptBeta
	}
	return total
}

// String renders the result in the shape of the paper's table.
func (t Table2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: REDUCESCATTER alpha-beta costs of Slice-3 (D = %d stages)\n", len(t.Stages))
	fmt.Fprintf(&b, "  %-6s %-10s %-22s %-24s %-16s %-16s %-8s\n",
		"stage", "buffer", "Elec. alpha", "Optics alpha", "Elec. beta", "Optics beta", "ratio")
	for i, s := range t.Stages {
		fmt.Fprintf(&b, "  %-6d %-10v %-22s %-24s %-16v %-16v %.2fx\n",
			i+1, s.BufferBytes,
			fmt.Sprintf("%d x alpha", s.AlphaSteps),
			fmt.Sprintf("%d x alpha + %d x r", s.AlphaSteps, s.Reconfigs),
			s.ElecBeta, s.OptBeta, s.BetaRatio())
	}
	ratio := 0.0
	if t.TotalOptBeta() > 0 {
		ratio = float64(t.TotalElecBeta() / t.TotalOptBeta())
	}
	fmt.Fprintf(&b, "  total beta ratio (elec/optics) = %.2fx (paper: 1.5x)\n", ratio)
	return b.String()
}

// MakeTable2 prices the two-stage bucket ReduceScatter of Slice-3
// (4x4x1, dimension order X then Y) of an n-element buffer.
func MakeTable2(p Params, t *torus.Torus, s *torus.Slice, dimOrder []int, n int, elemBytes unit.Bytes) (Table2, error) {
	elec, _, err := collective.BucketReduceScatter("table2/elec", t, s, dimOrder, n, elemBytes, collective.BucketOptions{})
	if err != nil {
		return Table2{}, err
	}
	opt, _, err := collective.BucketReduceScatter("table2/opt", t, s, dimOrder, n, elemBytes, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		return Table2{}, err
	}
	activeDims := len(collective.ActiveDims(s))
	perDim := p.ChipBandwidth / unit.BitRate(p.PhysDims)
	perRing := p.ChipBandwidth / unit.BitRate(activeDims)

	// Segment the schedule into dimension phases and price each.
	var out Table2
	phaseOf := func(step collective.Step) int {
		if len(step.Transfers) == 0 {
			return -1
		}
		return step.Transfers[0].Dim
	}
	var cur *Table2Stage
	groups := make(map[flowKey]unit.Bytes)
	for si, step := range elec.Steps {
		d := phaseOf(step)
		if cur == nil || cur.Dim != d {
			out.Stages = append(out.Stages, Table2Stage{Dim: d})
			cur = &out.Stages[len(out.Stages)-1]
			// Buffer handled this stage: the range size of the first
			// transfer times the ring size (the ring's parent range).
			ringSize := s.Shape[d]
			cur.BufferBytes = unit.Bytes(step.Transfers[0].Range.Len()*ringSize) * elemBytes
		}
		cur.AlphaSteps++
		cur.ElecBeta += stepBeta(groups, step, elec.ElemBytes, perDim)
		cur.OptBeta += stepBeta(groups, opt.Steps[si], opt.ElemBytes, perRing)
		if opt.Steps[si].Reconfig {
			cur.Reconfigs++
		}
	}
	return out, nil
}
