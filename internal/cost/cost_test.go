package cost

import (
	"math"
	"testing"

	"lightpath/internal/collective"
	"lightpath/internal/phy"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

func params() Params { return DefaultParams() }

func rack() *torus.Torus { return torus.New(torus.Shape{4, 4, 4}) }

func sliceByName(name string) *torus.Slice {
	switch name {
	case "Slice-1":
		return &torus.Slice{Name: name, Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}}
	case "Slice-3":
		return &torus.Slice{Name: name, Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}}
	}
	panic("unknown slice " + name)
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.ChipBandwidth != unit.GBps(300) {
		t.Fatalf("B = %v, want 300 GB/s", p.ChipBandwidth)
	}
	if p.PhysDims != 3 {
		t.Fatalf("PhysDims = %d", p.PhysDims)
	}
	if p.Reconfig != phy.ReconfigLatency {
		t.Fatalf("r = %v, want %v", p.Reconfig, phy.ReconfigLatency)
	}
}

func TestParamValidation(t *testing.T) {
	s := &collective.Schedule{N: 8, ElemBytes: 4}
	if _, err := (Params{ChipBandwidth: 0, PhysDims: 3}).Electrical(s); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := (Params{ChipBandwidth: 1, PhysDims: 0}).Electrical(s); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := params().Optical(s, 0); err == nil {
		t.Error("zero active dims accepted")
	}
}

// TestTable1 reproduces the paper's Table 1 exactly: Slice-1's
// ReduceScatter costs 7 alpha on both interconnects (plus one r
// optically), and electrical beta is 3x the optical beta.
func TestTable1(t *testing.T) {
	tor := rack()
	s := sliceByName("Slice-1")
	n := 1 << 20 // 1M elements
	tbl, err := MakeTable1(params(), tor, s, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ElecAlphaSteps != 7 || tbl.OptAlphaSteps != 7 {
		t.Fatalf("alpha steps = %d/%d, want 7/7", tbl.ElecAlphaSteps, tbl.OptAlphaSteps)
	}
	if tbl.OptReconfigs != 1 {
		t.Fatalf("optical reconfigs = %d, want 1", tbl.OptReconfigs)
	}
	if math.Abs(tbl.BetaRatio-3.0) > 1e-9 {
		t.Fatalf("beta ratio = %v, want exactly 3", tbl.BetaRatio)
	}
	// Closed form check: beta_opt = (7/8) * N / B.
	N := unit.Bytes(n) * 4
	wantOpt := params().ChipBandwidth.TimeFor(N * 7 / 8)
	if math.Abs(float64(tbl.OptBeta-wantOpt)/float64(wantOpt)) > 1e-9 {
		t.Fatalf("optical beta = %v, want %v", tbl.OptBeta, wantOpt)
	}
}

// TestTable2 reproduces the paper's Table 2: Slice-3's two-stage
// bucket ReduceScatter with 3 alpha per stage (+ r optically), stage
// buffers N then N/4, and electrical beta 1.5x the optical beta.
func TestTable2(t *testing.T) {
	tor := rack()
	s := sliceByName("Slice-3")
	n := 1 << 20
	tbl, err := MakeTable2(params(), tor, s, []int{0, 1}, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(tbl.Stages))
	}
	N := unit.Bytes(n) * 4
	for i, st := range tbl.Stages {
		if st.AlphaSteps != 3 {
			t.Errorf("stage %d alpha steps = %d, want 3", i, st.AlphaSteps)
		}
		if st.Reconfigs != 1 {
			t.Errorf("stage %d reconfigs = %d, want 1", i, st.Reconfigs)
		}
		if math.Abs(st.BetaRatio()-1.5) > 1e-9 {
			t.Errorf("stage %d beta ratio = %v, want 1.5", i, st.BetaRatio())
		}
	}
	if tbl.Stages[0].BufferBytes != N {
		t.Errorf("stage 1 buffer = %v, want %v", tbl.Stages[0].BufferBytes, N)
	}
	if tbl.Stages[1].BufferBytes != N/4 {
		t.Errorf("stage 2 buffer = %v, want %v", tbl.Stages[1].BufferBytes, N/4)
	}
	// Closed form: stage 1 optical beta = (3/4) N / (B/2).
	perRing := params().ChipBandwidth / 2
	want := perRing.TimeFor(N * 3 / 4)
	if math.Abs(float64(tbl.Stages[0].OptBeta-want)/float64(want)) > 1e-9 {
		t.Fatalf("stage 1 optical beta = %v, want %v", tbl.Stages[0].OptBeta, want)
	}
	if math.Abs(float64(tbl.TotalElecBeta()/tbl.TotalOptBeta())-1.5) > 1e-9 {
		t.Fatalf("total ratio = %v", float64(tbl.TotalElecBeta()/tbl.TotalOptBeta()))
	}
}

func TestTableStrings(t *testing.T) {
	tor := rack()
	t1, err := MakeTable1(params(), tor, sliceByName("Slice-1"), 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := t1.String(); len(s) == 0 {
		t.Fatal("empty Table 1 render")
	}
	t2, err := MakeTable2(params(), tor, sliceByName("Slice-3"), []int{0, 1}, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := t2.String(); len(s) == 0 {
		t.Fatal("empty Table 2 render")
	}
}

// TestOpticalMatchesSimultaneousElectrical verifies the paper's §4.1
// equivalence: the beta cost of a single bucket with redirected
// bandwidth equals that of D simultaneous bucket algorithms on the
// electrical torus ("The beta cost of a single torus bucket algorithm
// with redirected bandwidth is the same as executing several torus
// bucket algorithms simultaneously") — but the simultaneous variant
// pays more alpha.
func TestOpticalMatchesSimultaneousElectrical(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	s := &torus.Slice{Name: "cube", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 4}}
	n := 3 << 12 // divisible by 3 parts and 4^3 chunks
	p := params()

	single, err := collective.BucketAllReduce("single", tor, s, []int{0, 1, 2}, n, 4, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := collective.SimultaneousBucketAllReduce("sim", tor, s, n, 4, collective.BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := p.OpticalPerPhase(single)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := p.Electrical(sim)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(oc.Beta-ec.Beta)) / float64(ec.Beta); rel > 0.01 {
		t.Fatalf("optical single beta %v != electrical simultaneous beta %v (rel %v)", oc.Beta, ec.Beta, rel)
	}
	if ec.Steps < oc.Steps {
		t.Fatalf("simultaneous should cost at least as many steps: %d vs %d", ec.Steps, oc.Steps)
	}
	// And the simultaneous variant gains nothing even optically: with
	// D concurrent flows per chip, each gets B/D.
	simOpt, err := p.OpticalPerPhase(sim)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(simOpt.Beta-oc.Beta)) / float64(oc.Beta); rel > 0.01 {
		t.Fatalf("simultaneous optical beta %v != single optical beta %v", simOpt.Beta, oc.Beta)
	}
}

func TestCostTotalAndString(t *testing.T) {
	c := Cost{Steps: 2, Reconfigs: 1, Alpha: 2, Beta: 5, ReconfigTime: 3}
	if c.Total() != 10 {
		t.Fatalf("total = %v", c.Total())
	}
	if len(c.String()) == 0 {
		t.Fatal("empty string")
	}
}

func TestLowerBounds(t *testing.T) {
	bw := unit.GBps(100)
	n := unit.GB
	rs := RingReduceScatterBetaLowerBound(n, 8, bw)
	want := bw.TimeFor(n * 7 / 8)
	if math.Abs(float64(rs-want)) > 1e-12 {
		t.Fatalf("rs bound = %v, want %v", rs, want)
	}
	if ar := AllReduceBetaLowerBound(n, 8, bw); math.Abs(float64(ar-2*rs)) > 1e-12 {
		t.Fatalf("ar bound = %v, want %v", ar, 2*rs)
	}
	if RingReduceScatterBetaLowerBound(n, 1, bw) != 0 {
		t.Fatal("p=1 bound should be 0")
	}
}

// TestScheduleBetaMeetsLowerBound: the generated ring schedules price
// exactly at the beta lower bound (they are bandwidth-optimal).
func TestScheduleBetaMeetsLowerBound(t *testing.T) {
	p := params()
	ring := []int{0, 1, 2, 3, 4, 5, 6, 7}
	n := 1 << 20
	sched, _, err := collective.RingReduceScatter("rs", ring, n, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := p.Optical(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := RingReduceScatterBetaLowerBound(unit.Bytes(n)*4, 8, p.ChipBandwidth)
	if math.Abs(float64(oc.Beta-bound)/float64(bound)) > 1e-9 {
		t.Fatalf("beta = %v, bound = %v", oc.Beta, bound)
	}
}

// TestReconfigChargedOnlyOptically: the same marked schedule priced
// electrically ignores reconfiguration marks.
func TestReconfigChargedOnlyOptically(t *testing.T) {
	tor := rack()
	s := sliceByName("Slice-3")
	sched, err := collective.BucketAllReduce("m", tor, s, []int{0, 1}, 1024, 4, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	p := params()
	ec, _ := p.Electrical(sched)
	if ec.Reconfigs != 0 || ec.ReconfigTime != 0 {
		t.Fatalf("electrical charged reconfigs: %v", ec)
	}
	oc, _ := p.Optical(sched, 2)
	if oc.Reconfigs != 4 || oc.ReconfigTime != 4*p.Reconfig {
		t.Fatalf("optical reconfigs = %v", oc)
	}
}

// TestCrossoverSmallBuffers: for tiny buffers the reconfiguration
// delay r dominates and electrical wins; for large buffers the 3x
// beta advantage dominates and optics wins. This is the paper's §1/§5
// trade-off ("the appropriate trade-off between optical
// reconfiguration delay and end-to-end performance").
func TestCrossoverSmallBuffers(t *testing.T) {
	tor := rack()
	s := sliceByName("Slice-1")
	p := params()
	total := func(n int, optical bool) unit.Seconds {
		opt := collective.BucketOptions{MarkReconfig: optical}
		sched, _, err := collective.SnakeRingReduceScatter("x", tor, s, n, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if optical {
			c, _ := p.Optical(sched, 1)
			return c.Total()
		}
		c, _ := p.Electrical(sched)
		return c.Total()
	}
	// 64-byte collective: r (3.7us) >> transfer time; electrical wins.
	if e, o := total(16, false), total(16, true); o <= e {
		t.Fatalf("tiny buffer: optical %v should lose to electrical %v", o, e)
	}
	// 64 MB collective: beta dominates; optics wins by ~3x.
	if e, o := total(1<<24, false), total(1<<24, true); e <= o {
		t.Fatalf("large buffer: electrical %v should lose to optical %v", e, o)
	}
}

// Property: the bucket ReduceScatter's beta on the optical fabric
// equals the closed form sum over dimension stages:
// sum_i (p_i - 1)/p_i * N_i / (B/D), with N_i the stage buffer.
func TestBucketBetaClosedFormProperty(t *testing.T) {
	tor := torus.New(torus.Shape{4, 4, 4})
	p := params()
	cases := []struct {
		shape torus.Shape
		dims  []int
	}{
		{torus.Shape{4, 4, 1}, []int{0, 1}},
		{torus.Shape{4, 4, 4}, []int{0, 1, 2}},
		{torus.Shape{4, 2, 1}, []int{0, 1}},
		{torus.Shape{2, 2, 2}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		s := &torus.Slice{Name: c.shape.String(), Origin: torus.Coord{0, 0, 0}, Shape: c.shape}
		n := 1 << 18
		sched, _, err := collective.BucketReduceScatter("cf", tor, s, c.dims, n, 4, collective.BucketOptions{})
		if err != nil {
			t.Fatalf("%v: %v", c.shape, err)
		}
		activeDims := 0
		for _, e := range c.shape {
			if e >= 2 {
				activeDims++
			}
		}
		oc, err := p.Optical(sched, activeDims)
		if err != nil {
			t.Fatal(err)
		}
		perRing := p.ChipBandwidth / unit.BitRate(activeDims)
		var want unit.Seconds
		stageBytes := unit.Bytes(n) * 4
		for _, d := range c.dims {
			pi := c.shape[d]
			if pi < 2 {
				continue
			}
			want += perRing.TimeFor(stageBytes * unit.Bytes(pi-1) / unit.Bytes(pi))
			stageBytes /= unit.Bytes(pi)
		}
		if rel := math.Abs(float64(oc.Beta-want)) / float64(want); rel > 1e-9 {
			t.Fatalf("%v: beta %v != closed form %v", c.shape, oc.Beta, want)
		}
	}
}
