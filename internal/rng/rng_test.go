package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds matched %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("loss")
	b := parent.Split("workload")
	c := parent.Split("loss")
	// Same label twice: identical stream.
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("same-label splits diverged at step %d", i)
		}
	}
	// Different labels: streams differ.
	a2 := parent.Split("loss")
	diff := false
	for i := 0; i < 100; i++ {
		if a2.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different-label splits produced identical streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	p1 := New(9)
	p2 := New(9)
	_ = p1.Split("x")
	_ = p1.Split("y")
	for i := 0; i < 10; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		expected := float64(n) / buckets
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d: count %d far from expected %.0f", b, c, expected)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(2.5, 0.5)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2.5) > 0.01 {
		t.Errorf("normal mean = %v, want ~2.5", mean)
	}
	if math.Abs(math.Sqrt(variance)-0.5) > 0.01 {
		t.Errorf("normal stddev = %v, want ~0.5", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("exponential sample negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("exp mean = %v, want ~3.0", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(11)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed elements: %v", s)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
