// Package rng provides a deterministic, splittable pseudo-random number
// generator so that every experiment in the repository is exactly
// reproducible from a seed, independent of iteration order or the Go
// runtime's map randomization.
//
// The generator is xoshiro256** seeded through SplitMix64, the
// construction recommended by the xoshiro authors. Split derives an
// independent stream from a parent stream and a label, which lets each
// subsystem (loss sampling, workload generation, failure injection...)
// own its stream without coordinating seeds.
package rng

import "math"

// Rand is a deterministic random stream. The zero value is not usable;
// construct with New or Split.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a stream seeded from the given seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a nonzero state; SplitMix64 output of any seed is
	// astronomically unlikely to be all zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent stream labelled by the given string. Two
// Splits of the same parent with different labels produce uncorrelated
// streams; the same label always produces the same stream, so adding a
// new consumer does not perturb existing ones.
func (r *Rand) Split(label string) *Rand {
	// Hash the label FNV-1a style, then mix with a snapshot of the
	// parent's state (not advancing it).
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	seed := h ^ r.s[0] ^ (r.s[2] << 1)
	return New(seed)
}

// Clone returns an independent copy of the stream at its current
// position: the clone and the original produce the same future values
// but advance separately. It exists so a pristine prototype (a fabric,
// a loss model) can be duplicated per Monte-Carlo trial with exactly
// the state a freshly seeded construction would have.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// State returns the stream's current internal state — its exact
// position in the xoshiro256** sequence. Together with SetState it
// lets a checkpoint serialize a stream mid-run and resume it so the
// continuation draws exactly the values the uninterrupted stream
// would have.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the stream's internal state with one captured
// by State. An all-zero state is invalid for xoshiro and is bumped to
// the same guard value New uses.
func (r *Rand) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill
	// here; modulo bias is negligible for the small n used in the
	// simulator, but reject to keep the stream exactly uniform anyway.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// polar method (Marsaglia).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Exp returns an exponential sample with the given mean. It panics if
// mean <= 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with mean <= 0")
	}
	// 1-Float64() is in (0, 1], so Log never sees zero.
	return -mean * math.Log(1-r.Float64())
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
