package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lightpath/internal/rng"
)

// forceParallel pins the engine to parallel mode with enough workers
// to schedule real concurrency even on a single-core machine, and
// restores the previous settings when the test ends.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	prevPar := SetParallel(true)
	prevW := SetWorkers(workers)
	t.Cleanup(func() {
		SetParallel(prevPar)
		SetWorkers(prevW)
	})
}

// forceSequential pins the engine to the sequential reference mode.
func forceSequential(t *testing.T) {
	t.Helper()
	prev := SetParallel(false)
	t.Cleanup(func() { SetParallel(prev) })
}

// TestMapMatchesSequential is the engine's core contract: the parallel
// schedule must return exactly what the sequential loop returns, for a
// trial body that draws from index-derived rng streams.
func TestMapMatchesSequential(t *testing.T) {
	parent := rng.New(2024)
	trial := func(i int) (uint64, error) {
		stream := parent.Split(fmt.Sprintf("trial-%d", i))
		v := stream.Uint64()
		for k := 0; k < i%7; k++ {
			v ^= stream.Uint64()
		}
		return v, nil
	}
	const n = 100
	forceSequential(t)
	seq, err := Map(n, trial)
	if err != nil {
		t.Fatal(err)
	}
	forceParallel(t, 8)
	par, err := Map(n, trial)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != n || len(par) != n {
		t.Fatalf("lengths %d/%d, want %d", len(seq), len(par), n)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("trial %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

// TestMapFirstErrorWins: the parallel run must surface the same error
// a sequential early-exit loop would — the lowest-index failure.
func TestMapFirstErrorWins(t *testing.T) {
	sentinel := errors.New("trial 13 boom")
	trial := func(i int) (int, error) {
		if i == 13 {
			return 0, sentinel
		}
		if i > 13 && i%2 == 0 {
			return 0, fmt.Errorf("later failure at %d", i)
		}
		return i, nil
	}
	forceParallel(t, 8)
	if _, err := Map(40, trial); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
	forceSequential(t)
	if _, err := Map(40, trial); !errors.Is(err, sentinel) {
		t.Fatalf("sequential got %v, want the lowest-index error", err)
	}
}

// TestMapEmpty covers the degenerate sizes.
func TestMapEmpty(t *testing.T) {
	forceParallel(t, 8)
	for _, n := range []int{0, -3} {
		out, err := Map(n, func(i int) (int, error) { return i, nil })
		if err != nil || out != nil {
			t.Fatalf("Map(%d) = %v, %v; want nil, nil", n, out, err)
		}
	}
	out, err := Map(1, func(i int) (int, error) { return 42, nil })
	if err != nil || len(out) != 1 || out[0] != 42 {
		t.Fatalf("Map(1) = %v, %v", out, err)
	}
}

// TestStreamMatchesSequential checks the early-stopping contract: the
// accepted prefix must be identical in both modes, including which
// trial index the stream stopped at.
func TestStreamMatchesSequential(t *testing.T) {
	parent := rng.New(7)
	trial := func(i int) (int, error) {
		s := parent.Split(fmt.Sprintf("t-%d", i))
		return s.Intn(10), nil
	}
	run := func() (accepted []int, last int) {
		valid := 0
		err := Stream(400, trial, func(i int, r int) (bool, error) {
			last = i
			if r >= 5 { // acceptance rule: half the trials are invalid
				return true, nil
			}
			accepted = append(accepted, r)
			valid++
			return valid < 20, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return accepted, last
	}
	forceSequential(t)
	seqAcc, seqLast := run()
	forceParallel(t, 8)
	parAcc, parLast := run()
	if len(seqAcc) != 20 || len(parAcc) != 20 {
		t.Fatalf("accepted %d/%d, want 20", len(seqAcc), len(parAcc))
	}
	if seqLast != parLast {
		t.Fatalf("stopped at %d sequential vs %d parallel", seqLast, parLast)
	}
	for i := range seqAcc {
		if seqAcc[i] != parAcc[i] {
			t.Fatalf("accepted[%d]: %d != %d", i, seqAcc[i], parAcc[i])
		}
	}
}

// TestStreamError propagates the trial error at the right index.
func TestStreamError(t *testing.T) {
	sentinel := errors.New("bad trial")
	forceParallel(t, 4)
	var consumed atomic.Int64
	err := Stream(100, func(i int) (int, error) {
		if i == 9 {
			return 0, sentinel
		}
		return i, nil
	}, func(i int, r int) (bool, error) {
		consumed.Add(1)
		return true, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want trial error", err)
	}
	if consumed.Load() != 9 {
		t.Fatalf("consumed %d results before the failing index, want 9", consumed.Load())
	}
}

// TestStreamConsumeError stops the campaign on a consumer error.
func TestStreamConsumeError(t *testing.T) {
	sentinel := errors.New("consumer rejects")
	forceParallel(t, 4)
	err := Stream(50, func(i int) (int, error) { return i, nil },
		func(i int, r int) (bool, error) {
			if i == 3 {
				return false, sentinel
			}
			return true, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want consumer error", err)
	}
}

// TestWorkersOverride checks the override round-trips and clamps.
func TestWorkersOverride(t *testing.T) {
	prev := SetWorkers(6)
	defer SetWorkers(prev)
	if Workers() != 6 {
		t.Fatalf("Workers() = %d, want 6", Workers())
	}
	if got := SetWorkers(-1); got != 6 {
		t.Fatalf("SetWorkers returned %d, want 6", got)
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after reset, want >= 1", Workers())
	}
}

// TestMapConcurrencyIsReal: with the override set, Map must actually
// run trials on multiple goroutines (otherwise -race would have
// nothing to check). Detected via concurrent entry counting.
func TestMapConcurrencyIsReal(t *testing.T) {
	forceParallel(t, 8)
	var inFlight, peak atomic.Int64
	var release sync.Once
	gate := make(chan struct{})
	_, err := Map(8, func(i int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		if cur >= 2 { // two trials alive at once: release everyone
			release.Do(func() { close(gate) })
		}
		<-gate
		inFlight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

// TestRunShardsCoversEveryShard checks each shard executes exactly
// once with a worker id inside [0, workers), in both modes.
func TestRunShardsCoversEveryShard(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 97
		var ran [n]atomic.Int64
		var badWorker atomic.Int64
		RunShards(workers, n, func(worker, shard int) {
			if worker < 0 || worker >= workers {
				badWorker.Add(1)
			}
			ran[shard].Add(1)
		})
		if badWorker.Load() != 0 {
			t.Fatalf("workers=%d: worker id out of range", workers)
		}
		for shard := range ran {
			if got := ran[shard].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times, want 1", workers, shard, got)
			}
		}
	}
}

// TestRunShardsSequentialOrder pins the reference schedule: with one
// worker the shards run inline, in ascending order, as worker 0.
func TestRunShardsSequentialOrder(t *testing.T) {
	var order []int
	RunShards(1, 5, func(worker, shard int) {
		if worker != 0 {
			t.Fatalf("sequential shard ran as worker %d", worker)
		}
		order = append(order, shard)
	})
	for i, shard := range order {
		if shard != i {
			t.Fatalf("sequential order %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d shards, want 5", len(order))
	}
}

// TestRunShardsDisjointWrites drives the intended usage — shards
// writing disjoint slices of caller-owned storage — under real
// concurrency so the race detector can vet the claim.
func TestRunShardsDisjointWrites(t *testing.T) {
	forceParallel(t, 4)
	const n = 64
	out := make([]int, n)
	workers := ShardWorkers(n)
	if workers != 4 {
		t.Fatalf("ShardWorkers(%d) = %d, want 4", n, workers)
	}
	arenas := make([][]int, workers)
	RunShards(workers, n, func(worker, shard int) {
		// Per-worker arena reuse: contents never leak across shards.
		arenas[worker] = append(arenas[worker][:0], shard)
		out[shard] = arenas[worker][0] * 2
	})
	for shard, got := range out {
		if got != shard*2 {
			t.Fatalf("shard %d wrote %d, want %d", shard, got, shard*2)
		}
	}
}

// TestShardWorkers pins the worker-count rules the arena sizing
// depends on.
func TestShardWorkers(t *testing.T) {
	forceParallel(t, 8)
	if got := ShardWorkers(3); got != 3 {
		t.Fatalf("ShardWorkers(3) = %d, want 3 (capped by shard count)", got)
	}
	if got := ShardWorkers(100); got != 8 {
		t.Fatalf("ShardWorkers(100) = %d, want 8 (capped by Workers)", got)
	}
	if got := ShardWorkers(1); got != 1 {
		t.Fatalf("ShardWorkers(1) = %d, want 1", got)
	}
	forceSequential(t)
	if got := ShardWorkers(100); got != 1 {
		t.Fatalf("sequential ShardWorkers(100) = %d, want 1", got)
	}
}
