// Package engine is the deterministic parallel campaign runner: it
// fans independent Monte-Carlo trials across a pool of worker
// goroutines while guaranteeing bit-for-bit identical results to a
// sequential run of the same campaign.
//
// The determinism contract has three legs, and every caller must hold
// all of them:
//
//  1. Trials are pure: trial i reads only inputs derived from its
//     index (typically an rng stream split with an index-derived label,
//     e.g. parent.Split("trial-7")) and shared *read-only* state. It
//     never mutates anything another trial can observe.
//  2. Randomness is index-derived: rng.Rand.Split reads the parent
//     stream's state without advancing it, so trial i's stream is the
//     same value whether it is computed first, last, or concurrently.
//  3. Merging is ordered: the engine hands results to the caller in
//     trial-index order, so non-associative reductions (float sums,
//     formatted output, "first N valid trials win" cutoffs) fold
//     exactly as the sequential loop folded them.
//
// Under that contract Map and Stream are drop-in replacements for a
// sequential for-loop: same results, same errors, only the wall-clock
// changes.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelOff disables the worker pool when set (the CLI's
// -parallel=false, or tests pinning the reference behavior). The zero
// value means parallel-on, the default.
var parallelOff atomic.Bool

// workerOverride pins the pool size when positive; zero means
// GOMAXPROCS. Tests use it to force real concurrency on small
// machines (so -race sees the parallel schedule) and to force 1.
var workerOverride atomic.Int64

// SetParallel enables or disables the worker pool globally and returns
// the previous setting. Sequential mode runs trials inline, in index
// order, with early exit on error — the reference behavior parallel
// mode must reproduce bit for bit.
func SetParallel(on bool) (prev bool) {
	return !parallelOff.Swap(!on)
}

// Parallel reports whether the worker pool is enabled.
func Parallel() bool { return !parallelOff.Load() }

// SetWorkers overrides the worker-pool size (0 restores the default,
// GOMAXPROCS) and returns the previous override. Results never depend
// on the pool size; only the schedule does.
func SetWorkers(n int) (prev int) {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// Workers returns the worker-pool size campaigns will use.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs n independent trials and returns their results in index
// order. In parallel mode the trials execute on Workers() goroutines;
// in sequential mode they execute inline. Either way the returned
// slice is identical, and on failure the error returned is the
// lowest-index trial's error (exactly what a sequential loop that
// stops at the first error would surface).
func Map[R any](n int, trial func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]R, n)
	if !Parallel() || Workers() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			r, err := trial(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	runPool(0, n, func(i int) {
		results[i], errs[i] = trial(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Stream runs trials 0, 1, 2, ... and feeds each result to consume in
// strict index order until consume returns false, an error occurs, or
// limit trials have run. It exists for campaigns whose trial count is
// data-dependent ("keep drawing random scenarios until N are valid"):
// the consumer applies the acceptance logic sequentially, so the
// accepted set is bit-identical to the sequential loop's, while the
// trial bodies still execute in parallel batches. Wasted work past an
// early stop is bounded by one batch (a few times the worker count).
func Stream[R any](limit int, trial func(i int) (R, error), consume func(i int, r R) (more bool, err error)) error {
	if limit <= 0 {
		return nil
	}
	if !Parallel() || Workers() == 1 {
		for i := 0; i < limit; i++ {
			r, err := trial(i)
			if err != nil {
				return err
			}
			more, err := consume(i, r)
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
		return nil
	}
	batch := Workers() * 4
	results := make([]R, batch)
	errs := make([]error, batch)
	for lo := 0; lo < limit; lo += batch {
		hi := lo + batch
		if hi > limit {
			hi = limit
		}
		runPool(lo, hi, func(i int) {
			results[i-lo], errs[i-lo] = trial(i)
		})
		for i := lo; i < hi; i++ {
			if errs[i-lo] != nil {
				return errs[i-lo]
			}
			more, err := consume(i, results[i-lo])
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	}
	return nil
}

// ShardWorkers returns the number of workers RunShards(workers, n, fn)
// should be given for n shards: 1 in sequential mode (or for a single
// shard), otherwise min(Workers(), n). Callers size per-worker arenas
// to this count before fanning out, so the shard bodies themselves
// stay allocation-free.
func ShardWorkers(n int) int {
	if n <= 1 || !Parallel() {
		return 1
	}
	if w := Workers(); w < n {
		return w
	}
	return n
}

// RunShards executes fn(worker, shard) for every shard in [0, n) and
// returns when all are done. It is the engine's component-level
// fan-out: unlike Map, the shard bodies return nothing — they write
// their results directly into caller-owned storage — so the caller
// must guarantee the shards' writes are disjoint (each shard touches
// only its own partition of the output). Under that contract the
// results are byte-identical regardless of scheduling, because no
// float fold or output byte depends on which worker ran which shard
// or in what order.
//
// The worker argument is the goroutine's index in [0, workers):
// shard bodies use it to select per-worker scratch arenas without
// synchronization. workers must be the value ShardWorkers(n)
// returned; with workers == 1 the shards run inline on the calling
// goroutine, in ascending shard order, as worker 0 — the sequential
// reference schedule the parallel runs must (and, with disjoint
// writes, trivially do) reproduce.
func RunShards(workers, n int, fn func(worker, shard int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for shard := 0; shard < n; shard++ {
			fn(0, shard)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				shard := int(next.Add(1)) - 1
				if shard >= n {
					return
				}
				fn(worker, shard)
			}
		}(w)
	}
	wg.Wait()
}

// runPool executes fn(i) for every i in [lo, hi) across Workers()
// goroutines, dispatching indices from an atomic counter, and returns
// when all are done.
func runPool(lo, hi int, fn func(i int)) {
	workers := Workers()
	if span := hi - lo; workers > span {
		workers = span
	}
	var next atomic.Int64
	next.Store(int64(lo))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
