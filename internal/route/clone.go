package route

// Clone returns a deep copy of the allocator together with a deep copy
// of the rack it manages (reachable via the clone's Rack method). The
// clone behaves exactly like the original would from this point on —
// same occupancy mirrors, same circuit table, same position in the
// stochastic loss stream — while sharing no mutable storage, so a
// Monte-Carlo campaign can build one pristine allocator and hand each
// trial its own copy.
func (a *Allocator) Clone() *Allocator {
	c := &Allocator{
		rack:        a.rack.Clone(),
		loss:        a.loss.Clone(),
		Budget:      a.Budget,
		CheckBudget: a.CheckBudget,
		PackFibers:  a.PackFibers,
		circuits:    make(map[int]*Circuit, len(a.circuits)),
		nextID:      a.nextID,
		fibersUsed:  make(map[fiberRowKey]int, len(a.fibersUsed)),
		// The row-order table is immutable after construction, so
		// clones share it; scratch is deliberately left fresh.
		rowOrder: a.rowOrder,
	}
	for id, circ := range a.circuits {
		c.circuits[id] = circ.Clone()
	}
	for k, v := range a.fibersUsed {
		c.fibersUsed[k] = v
	}
	if a.failedRows != nil {
		c.failedRows = make(map[fiberRowKey]bool, len(a.failedRows))
		for k, v := range a.failedRows {
			c.failedRows[k] = v
		}
	}
	return c
}

// Clone returns a deep copy of the circuit, duplicating the segment
// and fiber slices so the copy shares no storage with the original.
func (c *Circuit) Clone() *Circuit {
	n := *c
	// The struct copy above duplicated the inline stores but left the
	// slice headers pointing at c's storage; re-point them at n's own.
	// Link.ByKind is a value (array) — the struct copy covers it.
	n.setPath(c.Segments, c.Fibers)
	return &n
}
