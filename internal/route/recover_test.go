package route

import (
	"errors"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/wafer"
)

func recoverAllocator(t *testing.T) *Allocator {
	t.Helper()
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewAllocator(rack, nil)
}

func TestApplyFaultChipFailure(t *testing.T) {
	a := recoverAllocator(t)
	c, err := a.Establish(Request{A: 0, B: 5, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := a.Establish(Request{A: 2, B: 7, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	broken, err := a.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].ID != c.ID {
		t.Fatalf("broken = %v, want exactly the victim's circuit", broken)
	}
	if len(a.Circuits()) != 1 || a.Circuits()[0].ID != other.ID {
		t.Fatal("bystander circuit was torn down")
	}
	if _, err := a.Establish(Request{A: 0, B: 9, Width: 1}, 0); !errors.Is(err, ErrEndpointFailed) {
		t.Fatalf("dead endpoint accepted: %v", err)
	}
	// Reestablish for the broken circuit must also refuse: the endpoint
	// itself is gone, and no narrowing helps.
	if _, _, err := a.Reestablish(broken[0], 0); !errors.Is(err, ErrEndpointFailed) {
		t.Fatalf("reestablish to a dead chip: %v", err)
	}
}

func TestApplyFaultLaserDeathShedsNewestOnOvercommit(t *testing.T) {
	a := recoverAllocator(t)
	free := a.Rack().TileOf(0).FreeLasers()
	first, err := a.Establish(Request{A: 0, B: 5, Width: free - 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := a.Establish(Request{A: 0, B: 9, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One laser dies; the tile is now over-committed by one and the
	// newest circuit is shed.
	shed, err := a.ApplyFault(chaos.Fault{Class: chaos.LaserDeath, Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(shed) != 1 || shed[0].ID != second.ID {
		t.Fatalf("shed = %v, want the newest circuit", shed)
	}
	if a.Rack().TileOf(0).FreeLasers() < 0 {
		t.Fatal("tile still over-committed after shedding")
	}
	if len(a.Circuits()) != 1 || a.Circuits()[0].ID != first.ID {
		t.Fatal("older circuit did not survive")
	}
	// A second laser death with slack left sheds nothing.
	if more, err := a.ApplyFault(chaos.Fault{Class: chaos.LaserDeath, Chip: 5}); err != nil || len(more) != 0 {
		t.Fatalf("laser death with slack shed %v (err %v)", more, err)
	}
}

func TestApplyFaultMZIStuckFreezesState(t *testing.T) {
	a := recoverAllocator(t)
	c, err := a.Establish(Request{A: 0, B: 5, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	broken, err := a.ApplyFault(chaos.Fault{Class: chaos.MZIStuck, Chip: 0, Switch: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatal("stuck switch tore down a working circuit")
	}
	if len(a.Circuits()) != 1 || a.Circuits()[0].ID != c.ID {
		t.Fatal("established circuit lost")
	}
	// New circuits needing that endpoint switch are refused (every
	// path from chip 0 programs its endpoint switch 0).
	if _, err := a.Establish(Request{A: 0, B: 9, Width: 1}, 0); err == nil {
		t.Fatal("established a circuit through a stuck endpoint switch")
	}
	// Other chips are unaffected.
	if _, err := a.Establish(Request{A: 2, B: 7, Width: 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.MZIStuck, Chip: 0, Switch: 99}); err == nil {
		t.Fatal("out-of-range switch accepted")
	}
}

func TestApplyFaultWaveguideLossBudgetAndSever(t *testing.T) {
	a := recoverAllocator(t)
	c, err := a.Establish(Request{A: 0, B: 5, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg := c.Segments[0]
	horizontal := seg.Ref.Orient == wafer.Horizontal
	// Mild degradation: within the stored margin, the circuit survives.
	broken, err := a.ApplyFault(chaos.Fault{
		Class: chaos.WaveguideLoss, Wafer: seg.Wafer, Horizontal: horizontal,
		Lane: seg.Ref.Lane, Pos: seg.Ref.Span.Lo, ExtraLossDB: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("0.5 dB broke the circuit (margin %v)", c.Link.MarginDB)
	}
	// Severing degradation: the circuit is torn down and the segment
	// pruned from future pathfinding.
	broken, err = a.ApplyFault(chaos.Fault{
		Class: chaos.WaveguideLoss, Wafer: seg.Wafer, Horizontal: horizontal,
		Lane: seg.Ref.Lane, Pos: seg.Ref.Span.Lo, ExtraLossDB: wafer.SeveredSegmentDB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].ID != c.ID {
		t.Fatalf("severed segment broke %v, want the crossing circuit", broken)
	}
	// Re-establishment must avoid the severed position.
	re, degraded, err := a.Reestablish(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if degraded {
		t.Fatal("full-width repath reported degraded")
	}
	for _, s := range re.Segments {
		if a.Rack().Wafer(s.Wafer).SpanSevered(s.Ref.Orient, s.Ref.Lane, s.Ref.Span) {
			t.Fatal("repathed circuit crosses the severed segment")
		}
	}
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.WaveguideLoss, Wafer: 99}); err == nil {
		t.Fatal("out-of-range wafer accepted")
	}
}

func TestApplyFaultFiberCut(t *testing.T) {
	a := recoverAllocator(t)
	tiles := a.Rack().Config().Tiles()
	// A cross-wafer circuit must use a trunk fiber.
	c, err := a.Establish(Request{A: 0, B: tiles, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fibers) == 0 {
		t.Fatal("cross-wafer circuit took no fiber")
	}
	f := c.Fibers[0]
	broken, err := a.ApplyFault(chaos.Fault{Class: chaos.FiberCut, Trunk: f.Trunk, Row: f.Row})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].ID != c.ID {
		t.Fatalf("fiber cut broke %v, want the crossing circuit", broken)
	}
	if !a.RowFailed(f.Trunk, f.Row) {
		t.Fatal("cut row not marked failed")
	}
	// Re-establishment routes over a surviving row.
	re, _, err := a.Reestablish(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range re.Fibers {
		if g.Trunk == f.Trunk && g.Row == f.Row {
			t.Fatal("repathed circuit reuses the cut row")
		}
	}
}

func TestApplyFaultRejectsUnknownClassAndBadChip(t *testing.T) {
	a := recoverAllocator(t)
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.Class(99)}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: -1}); err == nil {
		t.Fatal("negative chip accepted")
	}
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 1 << 20}); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
}

func TestEstablishDegradedHalvesWidth(t *testing.T) {
	a := recoverAllocator(t)
	free := a.Rack().TileOf(3).FreeLasers()
	// Leave only a quarter of the lasers at one endpoint: a full-width
	// request cannot fit, but halving twice can.
	if err := a.Rack().TileOf(3).Reserve(free - free/4); err != nil {
		t.Fatal(err)
	}
	c, degraded, err := a.EstablishDegraded(Request{A: 3, B: 9, Width: free}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("narrowed circuit not reported degraded")
	}
	if c.Width >= free || c.Width < 1 {
		t.Fatalf("degraded width = %d from request %d", c.Width, free)
	}
}

func TestEstablishDegradedWidthOneFloor(t *testing.T) {
	// A wafer with a single laser per tile forces the full degradation
	// ladder: width 4 halves to 2, then to the floor of 1, which fits.
	cfg := wafer.DefaultConfig()
	cfg.LasersPerTile = 1
	rack, err := wafer.NewRack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, nil)
	c, degraded, err := a.EstablishDegraded(Request{A: 0, B: 5, Width: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded || c.Width != 1 {
		t.Fatalf("width = %d degraded = %v, want the width-1 floor", c.Width, degraded)
	}
	// Below the floor there is nothing: with chip 0's only laser taken,
	// even width 1 fails, and the failure reports no phantom degraded
	// circuit.
	c2, degraded, err := a.EstablishDegraded(Request{A: 0, B: 9, Width: 4}, 0)
	if err == nil || c2 != nil || degraded {
		t.Fatalf("exhausted endpoint produced (%v, %v, %v)", c2, degraded, err)
	}
	// A dead endpoint short-circuits the ladder entirely: narrowing
	// cannot resurrect a chip, so the sentinel survives unhalved.
	if _, err := a.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: 9}); err != nil {
		t.Fatal(err)
	}
	_, degraded, err = a.EstablishDegraded(Request{A: 9, B: 12, Width: 4}, 0)
	if !errors.Is(err, ErrEndpointFailed) || degraded {
		t.Fatalf("dead endpoint: err = %v degraded = %v, want ErrEndpointFailed", err, degraded)
	}
}

func TestEstablishRejectsDegenerateRequests(t *testing.T) {
	a := recoverAllocator(t)
	if _, err := a.Establish(Request{A: 1, B: 1, Width: 1}, 0); err == nil {
		t.Fatal("self-circuit accepted")
	}
	if _, err := a.Establish(Request{A: 0, B: 1, Width: 0}, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := a.Establish(Request{A: -1, B: 1, Width: 1}, 0); err == nil {
		t.Fatal("negative chip accepted")
	}
	if _, err := a.Establish(Request{A: 0, B: 1 << 20, Width: 1}, 0); err == nil {
		t.Fatal("out-of-range chip accepted")
	}
}
