package route

import (
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// BenchmarkEstablish measures the hot path of circuit setup: one
// cross-wafer establish/release cycle on a warm allocator. The
// acceptance bar for the scratch-buffer work is allocs/op — the plan
// search and loss evaluation must not allocate per call once the
// allocator's scratch tables have grown. The paper metric is the
// first established link's total optical loss, a seed-deterministic
// check that the fast path still computes the same physics. It is
// captured from the warmup call on fresh allocator state: each
// establish/release cycle advances the allocator's RNG, so the loss
// seen inside the measured loop would depend on the iteration count.
func BenchmarkEstablish(b *testing.B) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	a := NewAllocator(rack, rng.New(7))
	req := Request{A: 0, B: 40, Width: 1}
	// Warm the scratch tables so steady-state allocations are measured.
	c, err := a.Establish(req, 0)
	if err != nil {
		b.Fatal(err)
	}
	loss := float64(c.Link.TotalLossDB)
	a.Release(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := a.Establish(req, unit.Seconds(0))
		if err != nil {
			b.Fatal(err)
		}
		a.Release(c)
	}
	b.ReportMetric(loss, "loss_db")
}

// BenchmarkEstablishWarm measures the cached fast path explicitly: the
// same chip pair over and over on a warm allocator, so every iteration
// after the first is a plan-cache hit and the candidate search never
// reruns. The cache_hit_ratio metric is the proof — it must approach
// 1.0 — and allocs/op must hold at the &Circuit minimum.
func BenchmarkEstablishWarm(b *testing.B) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		b.Fatal(err)
	}
	a := NewAllocator(rack, rng.New(7))
	req := Request{A: 0, B: 40, Width: 1}
	c, err := a.Establish(req, 0)
	if err != nil {
		b.Fatal(err)
	}
	a.Release(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := a.Establish(req, unit.Seconds(0))
		if err != nil {
			b.Fatal(err)
		}
		a.Release(c)
	}
	b.StopTimer()
	hits, misses := a.PlanCacheStats()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "cache_hit_ratio")
	}
}
