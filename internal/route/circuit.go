// Package route establishes end-to-end optical circuits on a rack of
// LIGHTPATH wafers: it finds bus-waveguide paths between chips,
// allocates the waveguide segments and inter-wafer fibers so that
// circuits never overlap (the DESIGN.md disjointness invariant and the
// paper's §4.2 "non-overlapping optical circuits"), programs the MZI
// switches, and evaluates each circuit's optical link budget.
//
// Two allocation regimes are provided, mirroring the paper's §5
// "Decentralized algorithms" challenge: a centralized allocator with a
// global view, and a decentralized optimistic allocator in which
// requests propose paths concurrently and retry on conflict.
package route

import (
	"fmt"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// Segment is one allocated bus-waveguide span on a specific wafer.
type Segment struct {
	Wafer int
	Ref   wafer.BusRef
}

// String formats the segment.
func (s Segment) String() string {
	return fmt.Sprintf("wafer %d %s", s.Wafer, s.Ref)
}

// Circuit is an established bidirectional chip-to-chip optical
// circuit.
type Circuit struct {
	ID int
	// A and B are the endpoint chips.
	A, B int
	// Width is the number of wavelengths carrying the circuit; its
	// bandwidth is Width x the per-wavelength capacity.
	Width int
	// Segments are the allocated bus spans, in path order from A to B.
	Segments []Segment
	// Fibers are the allocated inter-wafer fibers, in path order.
	Fibers []wafer.FiberRef
	// EstablishedAt is when the MZI programming was issued; ReadyAt is
	// when all switches have settled (EstablishedAt + 3.7 us).
	EstablishedAt, ReadyAt unit.Seconds
	// Link is the circuit's optical budget evaluation.
	Link phy.LinkReport

	// Inline backing storage for Segments/Fibers (see setPath). Typical
	// paths — a handful of spans, one fiber per trunk hop — fit here,
	// so establishing a circuit costs one allocation (the Circuit
	// itself) rather than three.
	segStore [8]Segment
	fibStore [4]wafer.FiberRef
}

// setPath points Segments/Fibers at circuit-owned copies of the given
// path: the inline stores when the path fits, fresh heap slices
// otherwise. The inputs may live in caller scratch — nothing aliases
// them afterward.
func (c *Circuit) setPath(segs []Segment, fibers []wafer.FiberRef) {
	if len(segs) <= len(c.segStore) {
		c.Segments = c.segStore[:copy(c.segStore[:], segs)]
	} else {
		c.Segments = append([]Segment(nil), segs...)
	}
	if len(fibers) <= len(c.fibStore) {
		c.Fibers = c.fibStore[:copy(c.fibStore[:], fibers)]
	} else {
		c.Fibers = append([]wafer.FiberRef(nil), fibers...)
	}
}

// Bandwidth returns the circuit's data rate for the given
// per-wavelength capacity.
func (c *Circuit) Bandwidth(perWavelength unit.BitRate) unit.BitRate {
	return unit.BitRate(c.Width) * perWavelength
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("circuit %d: chip %d <-> chip %d, width %d, %d segments, %d fibers, ready %v",
		c.ID, c.A, c.B, c.Width, len(c.Segments), len(c.Fibers), c.ReadyAt)
}

// SharesResources reports whether two circuits overlap on any bus
// segment or fiber — used by tests to assert the disjointness
// invariant.
func (c *Circuit) SharesResources(o *Circuit) bool {
	for _, s := range c.Segments {
		for _, t := range o.Segments {
			if s.Wafer == t.Wafer && s.Ref.Orient == t.Ref.Orient &&
				s.Ref.Lane == t.Ref.Lane && s.Ref.Bus == t.Ref.Bus &&
				s.Ref.Span.Lo <= t.Ref.Span.Hi && t.Ref.Span.Lo <= s.Ref.Span.Hi {
				return true
			}
		}
	}
	for _, f := range c.Fibers {
		for _, g := range o.Fibers {
			if f == g {
				return true
			}
		}
	}
	return false
}
