package route

// This file is the route-plan cache: a dense per-chip-pair memo of
// candidatePlans results, invalidated by a fabric epoch counter. The
// plan enumeration for a chip pair depends only on the rack geometry
// (immutable after construction) and on which trunk rows are marked
// failed — not on occupancy, endpoint health or switch state, all of
// which commit re-checks per attempt. So a cached plan list is exact
// until the failed-row set changes; the epoch counter is bumped by
// every fault/repair-class mutation (ApplyFault, FailFiberRow,
// RestoreFiberRow) and a cached entry is trusted only when its stamp
// matches the current epoch. Stale entries are re-derived lazily on
// next use, so fault-heavy and fault-free runs alike stay bit-for-bit
// identical to the uncached allocator.
//
// Storage discipline: plans live in a shared arena (one plans array,
// one steps array, one trunks array) rather than per-entry
// allocations. When the epoch bumps, every entry goes stale at once,
// so the arena is reset to length zero on the first derivation at the
// new epoch and its memory is reused — the cache's footprint is
// bounded by one epoch's working set. Stale entries keep aliases into
// the reset arena, but the epoch check means they are never read
// (FuzzPlanCacheEpoch asserts exactly this). Borrowers follow the
// //lightpath:arena discipline: the plan slice Establish borrows is
// valid only for the duration of the call and must not be retained.
//
// The packing regime (PackFibers) ranks fiber rows by live occupancy,
// which changes on every establish/release — memoizing it would be
// incorrect, so the cache is bypassed entirely there.

// planCacheEntry is one chip pair's memoized plan list. The entry is
// valid only when epoch matches the cache's current epoch; plans is a
// subslice of the shared arena.
type planCacheEntry struct {
	epoch uint64
	plans []plan
}

// planCache memoizes candidatePlans per ordered chip pair. The
// ordered (not symmetric) key matters: same-wafer pairs enumerate
// L-shapes and Z-detours from A's corner, so plans(a,b) and
// plans(b,a) differ.
type planCache struct {
	// epoch is the current fabric epoch; entries are valid only when
	// their stamp matches. Zero means "not yet initialized" — the
	// first lookup raises it to 1 so zero-valued entries can never
	// false-hit.
	epoch uint64

	// rows[a][b] is the entry for chip pair (a,b); rows are allocated
	// lazily per source chip, so memory scales with the pairs actually
	// requested, not NumChips².
	rows [][]planCacheEntry

	// The shared arena. arenaEpoch records which epoch the arena's
	// contents belong to; on the first store at a new epoch all three
	// arrays reset to length zero and their capacity is reused.
	arenaEpoch  uint64
	plansArena  []plan
	stepsArena  []planStep
	trunksArena []int

	hits, misses uint64
}

// bumpPlanEpoch invalidates every cached plan list. Callers are the
// fault/repair paths — anything that can change the failed-row set or
// otherwise reshape the plan enumeration.
func (a *Allocator) bumpPlanEpoch() {
	a.plans.epoch++
}

// resetPlanCache drops the cache entirely (table, arena and counters)
// — used when the allocator's state is replaced wholesale (Restore).
func (a *Allocator) resetPlanCache() {
	a.plans = planCache{}
}

// PlanCacheStats returns the cache's lifetime hit and miss counters.
// The controller surfaces these through Stats() and the campaign CSV.
func (a *Allocator) PlanCacheStats() (hits, misses uint64) {
	return a.plans.hits, a.plans.misses
}

// PlanCacheEpoch returns the current fabric epoch (0 if the cache has
// never been consulted). Tests use it to assert invalidation.
func (a *Allocator) PlanCacheEpoch() uint64 { return a.plans.epoch }

// planCacheValidPairs returns the number of entries valid at the
// current epoch. Tests and the snapshot layer use it.
func (a *Allocator) planCacheValidPairs() int {
	return len(a.planCacheValidList(nil))
}

// planCacheValidList appends the ordered chip pairs whose entries are
// valid at the current epoch, in (a, b) lexicographic order — the
// table layout already yields that order. The snapshot layer encodes
// this list; rewarmPlanCache reproduces the cache from it.
func (a *Allocator) planCacheValidList(dst [][2]int) [][2]int {
	for chipA, row := range a.plans.rows {
		for chipB := range row {
			e := &row[chipB]
			if e.epoch != 0 && e.epoch == a.plans.epoch {
				dst = append(dst, [2]int{chipA, chipB})
			}
		}
	}
	return dst
}

// plansFor returns the candidate plans for the ordered chip pair,
// serving from the cache when possible. The returned slice and
// everything it references live in the cache's shared arena (or, when
// the cache is bypassed, in the allocator's scratch) and are valid
// only until the next mutation — callers must not retain them.
func (a *Allocator) plansFor(chipA, chipB int) []plan {
	if a.PackFibers || a.noPlanCache {
		// Packing ranks rows by live occupancy — not memoizable.
		return a.candidatePlans(chipA, chipB)
	}
	pc := &a.plans
	if pc.epoch == 0 {
		pc.epoch = 1
	}
	if pc.rows == nil {
		pc.rows = make([][]planCacheEntry, a.rack.NumChips())
	}
	row := pc.rows[chipA]
	if row == nil {
		row = make([]planCacheEntry, a.rack.NumChips())
		pc.rows[chipA] = row
	}
	e := &row[chipB]
	if e.epoch == pc.epoch {
		pc.hits++
		return e.plans
	}
	pc.misses++
	e.plans = a.storePlans(a.candidatePlans(chipA, chipB))
	e.epoch = pc.epoch
	return e.plans
}

// storePlans copies a scratch-backed plan list into the shared arena
// and returns the arena-backed copy. The first store at a new epoch
// resets the arena: every entry is stale by then, so the memory is
// free for reuse (stale aliases are guarded by the epoch check, never
// dereferenced).
func (a *Allocator) storePlans(src []plan) []plan {
	pc := &a.plans
	if pc.arenaEpoch != pc.epoch {
		pc.plansArena = pc.plansArena[:0]
		pc.stepsArena = pc.stepsArena[:0]
		pc.trunksArena = pc.trunksArena[:0]
		pc.arenaEpoch = pc.epoch
	}
	start := len(pc.plansArena)
	for _, p := range src {
		ss := len(pc.stepsArena)
		pc.stepsArena = append(pc.stepsArena, p.steps...)
		se := len(pc.stepsArena)
		ts := len(pc.trunksArena)
		pc.trunksArena = append(pc.trunksArena, p.trunks...)
		te := len(pc.trunksArena)
		// Full-capacity subslices: a later arena append must grow into
		// a fresh array, never through a stored plan's alias.
		pc.plansArena = append(pc.plansArena, plan{
			steps:    pc.stepsArena[ss:se:se],
			trunks:   pc.trunksArena[ts:te:te],
			fiberRow: p.fiberRow,
			turns:    p.turns,
		})
	}
	return pc.plansArena[start:len(pc.plansArena):len(pc.plansArena)]
}

// rewarmPlanCache re-derives the plan lists for the given ordered
// chip pairs without touching the hit/miss counters. The snapshot
// layer calls it after restoring the failed-row set: the cache's
// contents are a pure function of geometry and failed rows, so
// re-deriving the serialized pair list reproduces the serialized
// cache exactly — a resumed allocator hits and misses on precisely
// the pairs the original would have.
func (a *Allocator) rewarmPlanCache(pairs [][2]int) {
	pc := &a.plans
	if pc.epoch == 0 {
		pc.epoch = 1
	}
	if len(pairs) == 0 {
		return
	}
	if pc.rows == nil {
		pc.rows = make([][]planCacheEntry, a.rack.NumChips())
	}
	for _, pr := range pairs {
		chipA, chipB := pr[0], pr[1]
		row := pc.rows[chipA]
		if row == nil {
			row = make([]planCacheEntry, a.rack.NumChips())
			pc.rows[chipA] = row
		}
		e := &row[chipB]
		if e.epoch == pc.epoch {
			continue
		}
		e.plans = a.storePlans(a.candidatePlans(chipA, chipB))
		e.epoch = pc.epoch
	}
}
