package route

import (
	"fmt"
	"sort"

	"lightpath/internal/phy"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// This file serializes the allocator for the fleet checkpoint: the
// rack it manages, the circuit table, the occupancy mirrors, and the
// position of the stochastic loss stream. Restore replays into a
// freshly constructed allocator over a freshly constructed rack —
// geometry is rebuilt, state is replayed — and reproduces an
// allocator that behaves bit-for-bit like the one that was
// serialized: same circuit IDs, same pathfinding preferences, same
// future stitch-loss draws. Maps are written in sorted key order; the
// snapshot is part of a byte-identical-resume contract.

// stateFormatNote: the allocator encodes its state inline in the
// fleet snapshot payload rather than as its own envelope; versioning
// lives at the snapshot file level.

// EncodeState appends the allocator's full mutable state — rack
// included — to the encoder.
func (a *Allocator) EncodeState(e *snapshot.Encoder) {
	a.rack.EncodeState(e)

	// The loss stream's position. A nil-stream (deterministic) model
	// encodes ok=false and restores to one.
	s, ok := a.loss.RandState()
	e.Bool(ok)
	if ok {
		for _, w := range s {
			e.U64(w)
		}
	}

	e.Int(a.nextID)
	ids := make([]int, 0, len(a.circuits))
	for id := range a.circuits {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.Len(len(ids))
	for _, id := range ids {
		encodeCircuit(e, a.circuits[id])
	}

	keys := make([]fiberRowKey, 0, len(a.fibersUsed))
	for k := range a.fibersUsed {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return fiberRowKeyLess(keys[i], keys[j]) })
	e.Len(len(keys))
	for _, k := range keys {
		e.Int(k.trunk)
		e.Int(k.row)
		e.Int(a.fibersUsed[k])
	}

	failed := make([]fiberRowKey, 0, len(a.failedRows))
	for k, v := range a.failedRows {
		if v {
			failed = append(failed, k)
		}
	}
	sort.Slice(failed, func(i, j int) bool { return fiberRowKeyLess(failed[i], failed[j]) })
	e.Len(len(failed))
	for _, k := range failed {
		e.Int(k.trunk)
		e.Int(k.row)
	}

	// The plan cache: hit/miss counters plus the set of chip pairs
	// valid at the current epoch. The cached plans themselves are a
	// pure function of geometry and the failed-row set (both encoded
	// above), so Restore re-derives them from this pair list and the
	// rewarmed cache is bit-identical to the serialized one — the
	// absolute epoch value carries no behavior and is not encoded.
	hits, misses := a.PlanCacheStats()
	e.U64(hits)
	e.U64(misses)
	valid := a.planCacheValidList(nil)
	e.Len(len(valid))
	for _, p := range valid {
		e.Int(p[0])
		e.Int(p[1])
	}
}

// RestoreState replays state captured by EncodeState into this
// allocator, which must have been freshly constructed over a rack of
// the same configuration. The audit hook is left untouched — the
// attaching layer owns it.
func (a *Allocator) RestoreState(d *snapshot.Decoder) error {
	if err := a.rack.RestoreState(d); err != nil {
		return err
	}
	if d.Bool() {
		var s [4]uint64
		for i := range s {
			s[i] = d.U64()
		}
		a.loss.SetRandState(s)
	}

	a.nextID = d.Int()
	n := d.Len()
	a.circuits = make(map[int]*Circuit, n)
	for i := 0; i < n; i++ {
		c := decodeCircuit(d)
		if d.Err() != nil {
			return d.Err()
		}
		if c.ID < 0 || c.ID >= a.nextID {
			return fmt.Errorf("%w: circuit ID %d outside [0, %d)",
				snapshot.ErrCorruptSnapshot, c.ID, a.nextID)
		}
		if _, dup := a.circuits[c.ID]; dup {
			return fmt.Errorf("%w: duplicate circuit ID %d", snapshot.ErrCorruptSnapshot, c.ID)
		}
		a.circuits[c.ID] = c
	}

	n = d.Len()
	a.fibersUsed = make(map[fiberRowKey]int, n)
	for i := 0; i < n; i++ {
		k := fiberRowKey{trunk: d.Int(), row: d.Int()}
		a.fibersUsed[k] = d.Int()
	}

	n = d.Len()
	a.failedRows = nil
	if n > 0 {
		a.failedRows = make(map[fiberRowKey]bool, n)
	}
	for i := 0; i < n; i++ {
		a.failedRows[fiberRowKey{trunk: d.Int(), row: d.Int()}] = true
	}

	a.resetPlanCache()
	hits, misses := d.U64(), d.U64()
	n = d.Len()
	chips := a.rack.NumChips()
	pairs := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		p := [2]int{d.Int(), d.Int()}
		if d.Err() == nil && (p[0] < 0 || p[0] >= chips || p[1] < 0 || p[1] >= chips) {
			return fmt.Errorf("%w: plan-cache pair %d<->%d outside [0, %d)",
				snapshot.ErrCorruptSnapshot, p[0], p[1], chips)
		}
		pairs = append(pairs, p)
	}
	if d.Err() != nil {
		return d.Err()
	}
	// Re-warm after the failed-row set is in place: the re-derived
	// plans are then exactly the ones that were cached at encode time,
	// and the counters resume from their serialized values.
	a.rewarmPlanCache(pairs)
	a.plans.hits, a.plans.misses = hits, misses
	return d.Err()
}

// CircuitByID returns the established circuit with the given ID. The
// resume path uses it to re-link deserialized job state to the
// allocator's own circuit objects — Release compares pointers, so a
// copy would not do.
func (a *Allocator) CircuitByID(id int) (*Circuit, bool) {
	c, ok := a.circuits[id]
	return c, ok
}

func fiberRowKeyLess(a, b fiberRowKey) bool {
	if a.trunk != b.trunk {
		return a.trunk < b.trunk
	}
	return a.row < b.row
}

func encodeCircuit(e *snapshot.Encoder, c *Circuit) {
	e.Int(c.ID)
	e.Int(c.A)
	e.Int(c.B)
	e.Int(c.Width)
	e.Len(len(c.Segments))
	for _, s := range c.Segments {
		e.Int(s.Wafer)
		e.Bool(s.Ref.Orient == wafer.Horizontal)
		e.Int(s.Ref.Lane)
		e.Int(s.Ref.Bus)
		e.Int(s.Ref.Span.Lo)
		e.Int(s.Ref.Span.Hi)
	}
	e.Len(len(c.Fibers))
	for _, f := range c.Fibers {
		e.Int(f.Trunk)
		e.Int(f.Row)
		e.Int(f.Fiber)
	}
	snapshot.Unit(e, c.EstablishedAt)
	snapshot.Unit(e, c.ReadyAt)
	encodeLink(e, c.Link)
}

func decodeCircuit(d *snapshot.Decoder) *Circuit {
	c := &Circuit{
		ID:    d.Int(),
		A:     d.Int(),
		B:     d.Int(),
		Width: d.Int(),
	}
	var segs []Segment
	var fibers []wafer.FiberRef
	n := d.Len()
	for i := 0; i < n; i++ {
		s := Segment{Wafer: d.Int()}
		s.Ref.Orient = wafer.Vertical
		if d.Bool() {
			s.Ref.Orient = wafer.Horizontal
		}
		s.Ref.Lane = d.Int()
		s.Ref.Bus = d.Int()
		s.Ref.Span.Lo = d.Int()
		s.Ref.Span.Hi = d.Int()
		segs = append(segs, s)
	}
	n = d.Len()
	for i := 0; i < n; i++ {
		fibers = append(fibers, wafer.FiberRef{Trunk: d.Int(), Row: d.Int(), Fiber: d.Int()})
	}
	// Through setPath so a restored circuit is deep-equal to the live
	// one it mirrors (inline stores included).
	c.setPath(segs, fibers)
	c.EstablishedAt = snapshot.DecodeUnit[unit.Seconds](d)
	c.ReadyAt = snapshot.DecodeUnit[unit.Seconds](d)
	c.Link = decodeLink(d)
	return c
}

func encodeLink(e *snapshot.Encoder, l phy.LinkReport) {
	snapshot.Unit(e, l.TotalLossDB)
	snapshot.Unit(e, l.ReceivedPower)
	snapshot.Unit(e, l.MarginDB)
	e.Bool(l.Feasible)
	e.F64(l.BER)
	// The breakdown is written sparsely — (kind, value) pairs for the
	// nonzero kinds, in kind order — preserving the byte format the
	// map-based encoding produced (maps never held zero entries).
	n := 0
	for _, v := range l.ByKind {
		if v != 0 {
			n++
		}
	}
	e.Len(n)
	for k, v := range l.ByKind {
		if v != 0 {
			e.Int(k)
			snapshot.Unit(e, v)
		}
	}
}

func decodeLink(d *snapshot.Decoder) phy.LinkReport {
	l := phy.LinkReport{
		TotalLossDB:   snapshot.DecodeUnit[unit.Decibel](d),
		ReceivedPower: snapshot.DecodeUnit[unit.DBm](d),
		MarginDB:      snapshot.DecodeUnit[unit.Decibel](d),
		Feasible:      d.Bool(),
		BER:           d.F64(),
	}
	n := d.Len()
	for i := 0; i < n; i++ {
		k := d.Int()
		v := snapshot.DecodeUnit[unit.Decibel](d)
		if d.Err() == nil && k >= 0 && k < phy.NumLossKinds {
			l.ByKind[phy.LossKind(k)] = v
		}
	}
	return l
}
