package route

import (
	"fmt"

	"lightpath/internal/netsim"
	"lightpath/internal/topo"
	"lightpath/internal/unit"
)

// LinkAllocator places transfers onto a generalized topo.Topology and
// materializes them as netsim flows. Where Allocator is the wafer
// circuit controller — pathfinding over waveguide and fiber occupancy
// — LinkAllocator is its fabric-scale counterpart for the rail and
// mesh topologies, whose paths are fixed by the fabric: its job is
// bulk placement at millions-of-flows scale without per-flow
// allocation, plus the link-load bookkeeping campaigns report.
//
// All Via slices share one backing arena, so a million placements
// cost a handful of slice growths instead of a million small
// allocations, and the materialized flow set is cache-dense for the
// solver's interning pass. Placements are deterministic: the flow
// order is the Place call order and paths come from the topology's
// deterministic AppendPath.
type LinkAllocator struct {
	topo topo.Topology

	// arena backs every placed path; starts[i]:starts[i+1] is flow i's
	// span. Via slices are cut from the arena only in Flows, after the
	// arena has stopped growing, so growth never invalidates them.
	arena  []int
	starts []int
	bytes  []unit.Bytes

	// load counts placed flows per link id.
	load []int

	// flows is the cached materialization; nil after a mutation.
	flows []netsim.Flow[int]
}

// NewLinkAllocator constructs an empty allocator over a topology.
func NewLinkAllocator(t topo.Topology) *LinkAllocator {
	return &LinkAllocator{
		topo:   t,
		starts: []int{0},
		load:   make([]int, t.Links()),
	}
}

// Topology returns the fabric flows are placed on.
func (a *LinkAllocator) Topology() topo.Topology { return a.topo }

// Len returns the number of placed flows.
func (a *LinkAllocator) Len() int { return len(a.bytes) }

// Place appends a transfer of the given size from src to dst, routed
// on the topology's deterministic path. It panics on out-of-range
// endpoints (via the topology) and on negative sizes.
func (a *LinkAllocator) Place(src, dst int, bytes unit.Bytes) {
	if bytes < 0 {
		panic(fmt.Sprintf("route: negative transfer size %v", bytes))
	}
	a.arena = a.topo.AppendPath(a.arena, src, dst)
	for _, l := range a.arena[a.starts[len(a.starts)-1]:] {
		a.load[l]++
	}
	a.starts = append(a.starts, len(a.arena))
	a.bytes = append(a.bytes, bytes)
	a.flows = nil
}

// Reset drops every placement, keeping the arena capacity for reuse.
func (a *LinkAllocator) Reset() {
	a.arena = a.arena[:0]
	a.starts = a.starts[:1]
	a.bytes = a.bytes[:0]
	for l := range a.load {
		a.load[l] = 0
	}
	a.flows = nil
}

// Flows materializes the placed transfers as netsim flows, in
// placement order. The Via slices alias the allocator's arena and the
// returned slice is cached: both are valid until the next Place or
// Reset.
func (a *LinkAllocator) Flows() []netsim.Flow[int] {
	if a.flows != nil || len(a.bytes) == 0 {
		return a.flows
	}
	a.flows = make([]netsim.Flow[int], len(a.bytes))
	for i := range a.bytes {
		a.flows[i] = netsim.Flow[int]{
			Bytes: a.bytes[i],
			Via:   a.arena[a.starts[i]:a.starts[i+1]],
		}
	}
	return a.flows
}

// Capacities returns the topology's link-capacity map for the solver.
func (a *LinkAllocator) Capacities() map[int]unit.BitRate {
	return topo.Capacities(a.topo)
}

// Load returns the number of placed flows crossing a link.
func (a *LinkAllocator) Load(link int) int { return a.load[link] }

// MaxLoad returns the most-loaded link and its flow count (the
// lowest-id link on ties; link -1 when nothing is placed).
func (a *LinkAllocator) MaxLoad() (link, flows int) {
	link = -1
	for l, n := range a.load {
		if n > flows {
			link, flows = l, n
		}
	}
	return link, flows
}

// OversubscribedLinks counts links whose placed demand — each flow
// charged its full bottleneck-free share, i.e. just the flow count
// times an even split — exceeds what the link can serve at the given
// per-flow rate. It is the campaign's quick congestion census; the
// fluid solver computes the real rates.
func (a *LinkAllocator) OversubscribedLinks(perFlow unit.BitRate) int {
	over := 0
	for l, n := range a.load {
		if unit.BitRate(n)*perFlow > a.topo.LinkCapacity(l) {
			over++
		}
	}
	return over
}
