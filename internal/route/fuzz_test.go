// The fuzz target lives in an external test package so it can attach
// the invariant auditor (package invariant imports route; an
// in-package test would be an import cycle). It exercises only the
// allocator's public API.
package route_test

import (
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// checkRecoveryInvariants asserts what must hold after any fault and
// any recovery: established circuits are pairwise disjoint, cross no
// severed segment, use no failed fiber row, and terminate only at
// healthy chips. The attached Paranoid auditor re-derives the same
// properties (and more) from the hardware occupancy after every
// mutation; aud carries its verdict.
func checkRecoveryInvariants(t *testing.T, a *route.Allocator, aud *invariant.Auditor) {
	t.Helper()
	if err := aud.Err(); err != nil {
		vs := aud.Violations()
		t.Fatalf("auditor found %d violation(s) after %d audits; first: %s", aud.Count(), aud.Audits(), vs[0])
	}
	circuits := a.Circuits()
	for i, c := range circuits {
		for j := i + 1; j < len(circuits); j++ {
			if c.SharesResources(circuits[j]) {
				t.Fatalf("circuits %d and %d overlap", c.ID, circuits[j].ID)
			}
		}
		if c.Width < 1 {
			t.Fatalf("circuit %d has width %d", c.ID, c.Width)
		}
		for _, ep := range [2]int{c.A, c.B} {
			if !a.Rack().TileOf(ep).ChipHealthy() {
				t.Fatalf("circuit %d terminates at dead chip %d", c.ID, ep)
			}
		}
		for _, s := range c.Segments {
			if a.Rack().Wafer(s.Wafer).SpanSevered(s.Ref.Orient, s.Ref.Lane, s.Ref.Span) {
				t.Fatalf("circuit %d crosses a severed segment %v", c.ID, s)
			}
		}
		for _, f := range c.Fibers {
			if a.RowFailed(f.Trunk, f.Row) {
				t.Fatalf("circuit %d uses cut fiber row (%d,%d)", c.ID, f.Trunk, f.Row)
			}
		}
	}
}

// FuzzFaultRecovery drives a random circuit population through a
// random fault schedule, re-establishing broken circuits after every
// fault, and asserts the recovery invariants throughout — both the
// spot checks below and the full invariant registry, which the
// Paranoid auditor replays after every Establish/Release/ApplyFault.
// The fuzz inputs seed both the circuit mix and the fault engine, so
// every failing input replays deterministically; the committed corpus
// under testdata/fuzz pins the seeds that run in normal test mode.
func FuzzFaultRecovery(f *testing.F) {
	f.Add(uint64(1), uint8(8))
	f.Add(uint64(2024), uint8(20))
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(42), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, nFaults uint8) {
		rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
		if err != nil {
			t.Fatal(err)
		}
		a := route.NewAllocator(rack, nil)
		aud := invariant.Attach(a, invariant.Paranoid)
		r := rng.New(seed)

		// A spread of circuits; establishment failures (exhausted
		// tiles, duplicate endpoints) are fine — the fuzz property is
		// about what survives, not what fits.
		chips := rack.NumChips()
		for i := 0; i < 12; i++ {
			req := route.Request{A: r.Intn(chips), B: r.Intn(chips), Width: 1 + r.Intn(4)}
			if req.A == req.B {
				continue
			}
			_, _ = a.Establish(req, 0)
		}
		checkRecoveryInvariants(t, a, aud)

		cfg := rack.Config()
		var rates chaos.Rates
		for c := 0; c < chaos.NumClasses; c++ {
			rates.MTBF[c] = 10 * unit.Millisecond
		}
		eng, err := chaos.NewEngine(seed, chaos.Components{
			Chips:           chips,
			SwitchesPerTile: wafer.SwitchesPerTile,
			Wafers:          rack.NumWafers(),
			Rows:            cfg.Rows,
			Cols:            cfg.Cols,
			Trunks:          rack.NumWafers(),
		}, rates)
		if err != nil {
			t.Fatal(err)
		}
		faults := eng.Schedule(1.0)
		if len(faults) > int(nFaults) {
			faults = faults[:nFaults]
		}
		for _, fault := range faults {
			broken, err := a.ApplyFault(fault)
			if err != nil {
				t.Fatalf("%v: %v", fault, err)
			}
			checkRecoveryInvariants(t, a, aud)
			// Recovery: re-path every broken circuit that still has
			// live endpoints; failures (no path left, dead endpoint)
			// are legitimate outcomes, but must not corrupt state.
			for _, c := range broken {
				_, _, _ = a.Reestablish(c, 0)
				checkRecoveryInvariants(t, a, aud)
			}
		}
	})
}
