package route

import (
	"testing"

	"lightpath/internal/netsim"
	"lightpath/internal/topo"
	"lightpath/internal/unit"
)

func testRail(t *testing.T) *topo.Rail {
	t.Helper()
	r, err := topo.NewRail(2, 4, unit.GBps(40), unit.GBps(100))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLinkAllocatorPlacement checks flows materialize in placement
// order with the topology's paths and correct link loads.
func TestLinkAllocatorPlacement(t *testing.T) {
	rail := testRail(t)
	a := NewLinkAllocator(rail)
	a.Place(rail.Endpoint(0, 0), rail.Endpoint(0, 1), 1*unit.MB)
	a.Place(rail.Endpoint(0, 2), rail.Endpoint(1, 3), 2*unit.MB)
	a.Place(rail.Endpoint(0, 0), rail.Endpoint(0, 1), 3*unit.MB)

	if a.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", a.Len())
	}
	flows := a.Flows()
	if len(flows) != 3 {
		t.Fatalf("Flows() returned %d flows, want 3", len(flows))
	}
	for i, want := range []unit.Bytes{1 * unit.MB, 2 * unit.MB, 3 * unit.MB} {
		if flows[i].Bytes != want {
			t.Fatalf("flow %d bytes = %v, want %v", i, flows[i].Bytes, want)
		}
	}
	// Paths must equal the topology's own.
	for i, pair := range [][2]int{
		{rail.Endpoint(0, 0), rail.Endpoint(0, 1)},
		{rail.Endpoint(0, 2), rail.Endpoint(1, 3)},
		{rail.Endpoint(0, 0), rail.Endpoint(0, 1)},
	} {
		want := rail.AppendPath(nil, pair[0], pair[1])
		if len(flows[i].Via) != len(want) {
			t.Fatalf("flow %d path length %d, want %d", i, len(flows[i].Via), len(want))
		}
		for j := range want {
			if flows[i].Via[j] != want[j] {
				t.Fatalf("flow %d hop %d = %d, want %d", i, j, flows[i].Via[j], want[j])
			}
		}
	}
	// Two flows share up(0,0) and down(0,1); the cross-rail flow loads
	// its bus once.
	if got := a.Load(rail.Endpoint(0, 0)); got != 2 {
		t.Fatalf("Load(up src) = %d, want 2", got)
	}
	if link, n := a.MaxLoad(); n != 2 || link != rail.Endpoint(0, 0) {
		t.Fatalf("MaxLoad() = (%d, %d), want (%d, 2)", link, n, rail.Endpoint(0, 0))
	}
	busLink := 2*rail.Endpoints() + 2
	if got := a.Load(busLink); got != 1 {
		t.Fatalf("Load(bus s=2) = %d, want 1", got)
	}
}

// TestLinkAllocatorSolves runs the placed flows through the sharded
// solver end to end.
func TestLinkAllocatorSolves(t *testing.T) {
	rail := testRail(t)
	a := NewLinkAllocator(rail)
	for s := 0; s < rail.Servers(); s++ {
		a.Place(rail.Endpoint(0, s), rail.Endpoint(0, (s+1)%rail.Servers()), 8*unit.MB)
	}
	var sim netsim.Sim[int]
	res, err := sim.RunSharded(a.Flows(), a.Capacities())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v, want > 0", res.Makespan)
	}
	for i, end := range res.FlowEnd {
		if end <= 0 {
			t.Fatalf("flow %d never completed", i)
		}
	}
}

// TestLinkAllocatorReset checks Reset drops placements and loads but
// keeps the allocator usable.
func TestLinkAllocatorReset(t *testing.T) {
	rail := testRail(t)
	a := NewLinkAllocator(rail)
	a.Place(0, 1, 1*unit.MB)
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len() after Reset = %d", a.Len())
	}
	if link, n := a.MaxLoad(); n != 0 || link != -1 {
		t.Fatalf("MaxLoad() after Reset = (%d, %d), want (-1, 0)", link, n)
	}
	a.Place(0, 1, 2*unit.MB)
	if flows := a.Flows(); len(flows) != 1 || flows[0].Bytes != 2*unit.MB {
		t.Fatalf("post-Reset placement corrupted: %v", flows)
	}
}

// TestLinkAllocatorArenaStability checks Via slices stay valid as the
// arena grows: materialization happens after all placements, so paths
// recorded early must still read back correctly.
func TestLinkAllocatorArenaStability(t *testing.T) {
	rail := testRail(t)
	a := NewLinkAllocator(rail)
	n := 10000
	for i := 0; i < n; i++ {
		a.Place(i%rail.Endpoints(), (i+3)%rail.Endpoints(), unit.Bytes(i+1))
	}
	flows := a.Flows()
	for i := 0; i < n; i++ {
		want := rail.AppendPath(nil, i%rail.Endpoints(), (i+3)%rail.Endpoints())
		if len(flows[i].Via) != len(want) {
			t.Fatalf("flow %d path length drifted", i)
		}
		for j := range want {
			if flows[i].Via[j] != want[j] {
				t.Fatalf("flow %d hop %d drifted after arena growth", i, j)
			}
		}
	}
}

// TestOversubscribedLinks pins the congestion census.
func TestOversubscribedLinks(t *testing.T) {
	rail := testRail(t)
	a := NewLinkAllocator(rail)
	// Five flows into one NIC's down link (capacity 40 GB/s): at
	// 10 GB/s per flow that link is oversubscribed, its sources' up
	// links are not.
	for s := 0; s < 4; s++ {
		a.Place(rail.Endpoint(0, s), rail.Endpoint(1, 0), 1*unit.MB)
	}
	a.Place(rail.Endpoint(1, 1), rail.Endpoint(1, 0), 1*unit.MB)
	if got := a.OversubscribedLinks(unit.GBps(10)); got != 1 {
		t.Fatalf("OversubscribedLinks(10 GB/s) = %d, want 1", got)
	}
	if got := a.OversubscribedLinks(unit.GBps(1)); got != 0 {
		t.Fatalf("OversubscribedLinks(1 GB/s) = %d, want 0", got)
	}
}
