// Differential and epoch-invalidation tests for the route-plan cache.
// Like the fuzz target, these live in the external test package so the
// Paranoid invariant auditor can watch every mutation (package
// invariant imports route).
package route_test

import (
	"bytes"
	"fmt"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// diffTrialStride separates per-trial seeds (splitmix64 golden gamma).
const diffTrialStride = 0x9e3779b97f4a7c15

// newDiffAllocator builds one allocator over a fresh two-wafer rack
// with a Paranoid auditor attached.
func newDiffAllocator(t *testing.T, seed uint64) (*route.Allocator, *invariant.Auditor) {
	t.Helper()
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	a := route.NewAllocator(rack, rng.New(seed).Split("diff/loss"))
	return a, invariant.Attach(a, invariant.Paranoid)
}

// errString folds an error to a comparable string ("" for nil). The
// cached and uncached paths must produce not just the same error
// classes but the same rendered messages.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffStep applies one operation to one allocator and returns a
// transcript line describing its observable outcome. Both allocators
// see the same op sequence; the transcripts must match line for line.
func diffStep(a *route.Allocator, r *rng.Rand, op int, live []*route.Circuit) (string, []*route.Circuit) {
	chips := a.Rack().NumChips()
	trunks := a.Rack().NumTrunks()
	rows := a.Rack().Config().Rows
	switch {
	case op < 5: // establish
		req := route.Request{A: r.Intn(chips), B: r.Intn(chips), Width: 1 + r.Intn(3)}
		c, err := a.Establish(req, 0)
		if err != nil {
			return fmt.Sprintf("establish %d<->%d w%d: %s", req.A, req.B, req.Width, errString(err)), live
		}
		live = append(live, c)
		return fmt.Sprintf("establish %d<->%d w%d: id %d loss %.6f", req.A, req.B, req.Width, c.ID, float64(c.Link.TotalLossDB)), live

	case op < 7: // release a random live circuit
		if len(live) == 0 {
			return "release: none", live
		}
		i := r.Intn(len(live))
		c := live[i]
		live = append(live[:i], live[i+1:]...)
		a.Release(c)
		return fmt.Sprintf("release id %d", c.ID), live

	case op == 7: // fail a fiber row (decentralized fault path)
		trunk, row := r.Intn(trunks), r.Intn(rows)
		broken := a.FailFiberRow(trunk, row)
		line := fmt.Sprintf("fail-row %d/%d: broke %d", trunk, row, len(broken))
		live, line = reestablishBroken(a, broken, live, line)
		return line, live

	case op == 8: // repair a fiber row
		trunk, row := r.Intn(trunks), r.Intn(rows)
		a.RestoreFiberRow(trunk, row)
		return fmt.Sprintf("restore-row %d/%d", trunk, row), live

	default: // chaos fault
		f := chaos.Fault{Class: chaos.Class(r.Intn(chaos.NumClasses))}
		switch f.Class {
		case chaos.LaserDeath, chaos.MZIStuck, chaos.ChipFailure:
			f.Chip = r.Intn(chips)
			f.Switch = r.Intn(wafer.SwitchesPerTile)
		case chaos.WaveguideLoss:
			f.Wafer = r.Intn(a.Rack().NumWafers())
			f.Horizontal = r.Intn(2) == 0
			f.Lane = r.Intn(a.Rack().Config().Rows)
			f.Pos = r.Intn(a.Rack().Config().Cols)
			f.ExtraLossDB = 3
		case chaos.FiberCut:
			f.Trunk = r.Intn(trunks)
			f.Row = r.Intn(rows)
		}
		broken, err := a.ApplyFault(f)
		line := fmt.Sprintf("fault %v: broke %d err %s", f.Class, len(broken), errString(err))
		live, line = reestablishBroken(a, broken, live, line)
		return line, live
	}
}

// reestablishBroken walks the broken circuits the way the controller
// does, recording each outcome, and drops them from the live set.
func reestablishBroken(a *route.Allocator, broken, live []*route.Circuit, line string) ([]*route.Circuit, string) {
	for _, c := range broken {
		for i, lc := range live {
			if lc == c {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
		nc, degraded, err := a.Reestablish(c, 0)
		if err != nil {
			line += fmt.Sprintf("; re %d: %s", c.ID, errString(err))
			continue
		}
		live = append(live, nc)
		line += fmt.Sprintf("; re %d->%d w%d deg %v", c.ID, nc.ID, nc.Width, degraded)
	}
	return live, line
}

// TestPlanCacheDifferential runs 200 seeded trials of interleaved
// establishes, releases, row fail/repair and chaos faults through two
// allocators that differ only in plan caching, and demands their
// behavior be bit-for-bit identical: same per-op transcript (granted
// IDs, widths, losses, error messages), same final snapshot bytes, and
// zero invariant violations on either side.
func TestPlanCacheDifferential(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	const trials = 200
	const opsPerTrial = 40
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial)*diffTrialStride + 1
		cached, audC := newDiffAllocator(t, seed)
		plain, audP := newDiffAllocator(t, seed)
		plain.DisablePlanCache()

		// Two identical op streams: both sides must draw the same ops.
		opsC := rng.New(seed).Split("diff/ops")
		opsP := rng.New(seed).Split("diff/ops")
		var liveC, liveP []*route.Circuit
		for i := 0; i < opsPerTrial; i++ {
			op := opsC.Intn(10)
			if got := opsP.Intn(10); got != op {
				t.Fatalf("trial %d op %d: op streams diverged (%d vs %d)", trial, i, op, got)
			}
			lineC, nliveC := diffStep(cached, opsC, op, liveC)
			lineP, nliveP := diffStep(plain, opsP, op, liveP)
			liveC, liveP = nliveC, nliveP
			if lineC != lineP {
				t.Fatalf("trial %d (seed %#x) op %d diverged:\n  cached: %s\n  plain:  %s",
					trial, seed, i, lineC, lineP)
			}
		}
		if err := audC.Err(); err != nil {
			t.Fatalf("trial %d: cached allocator violated invariants: %v", trial, err)
		}
		if err := audP.Err(); err != nil {
			t.Fatalf("trial %d: uncached allocator violated invariants: %v", trial, err)
		}

		// Snapshot identity, with the cache section normalized away —
		// the uncached twin never populates it by construction.
		cached.ClearPlanCacheForTest()
		plain.ClearPlanCacheForTest()
		var eC, eP snapshot.Encoder
		cached.EncodeState(&eC)
		plain.EncodeState(&eP)
		if !bytes.Equal(eC.Bytes(), eP.Bytes()) {
			t.Fatalf("trial %d (seed %#x): snapshot bytes diverged (%d vs %d bytes)",
				trial, seed, len(eC.Bytes()), len(eP.Bytes()))
		}
	}
}

// FuzzPlanCacheEpoch hammers the epoch protocol: a fuzzed interleaving
// of establishes, releases, row failures, repairs and chaos faults runs
// through a cached allocator and its uncached twin in lockstep. If a
// stale-epoch plan were ever committed — a path derived before a fault
// surviving the bump — the transcript would diverge (the uncached side
// re-derives every time) or the Paranoid auditor would flag the circuit
// crossing dead hardware. The committed corpus under testdata/fuzz pins
// the interleavings that run in normal test mode.
func FuzzPlanCacheEpoch(f *testing.F) {
	f.Add(uint64(1), uint8(16))
	f.Add(uint64(2024), uint8(48))
	f.Add(uint64(7), uint8(255))
	f.Add(uint64(0xdead), uint8(80))
	f.Fuzz(func(t *testing.T, seed uint64, nOps uint8) {
		t.Cleanup(invariant.ResetGlobal)
		cached, audC := newDiffAllocator(t, seed)
		plain, audP := newDiffAllocator(t, seed)
		plain.DisablePlanCache()
		opsC := rng.New(seed).Split("diff/ops")
		opsP := rng.New(seed).Split("diff/ops")
		var liveC, liveP []*route.Circuit
		for i := 0; i < int(nOps); i++ {
			op := opsC.Intn(10)
			opsP.Intn(10)
			lineC, nliveC := diffStep(cached, opsC, op, liveC)
			lineP, nliveP := diffStep(plain, opsP, op, liveP)
			liveC, liveP = nliveC, nliveP
			if lineC != lineP {
				t.Fatalf("seed %#x op %d diverged:\n  cached: %s\n  plain:  %s", seed, i, lineC, lineP)
			}
		}
		if err := audC.Err(); err != nil {
			t.Fatalf("cached allocator violated invariants: %v", err)
		}
		if err := audP.Err(); err != nil {
			t.Fatalf("uncached allocator violated invariants: %v", err)
		}
		cached.ClearPlanCacheForTest()
		plain.ClearPlanCacheForTest()
		var eC, eP snapshot.Encoder
		cached.EncodeState(&eC)
		plain.EncodeState(&eP)
		if !bytes.Equal(eC.Bytes(), eP.Bytes()) {
			t.Fatalf("seed %#x: snapshot bytes diverged", seed)
		}
	})
}

// TestPlanCacheEpochInvalidation pins the epoch protocol: hits accrue
// on repeat lookups, every fault/repair class bumps the epoch, and a
// bump empties the valid-entry set until lookups re-derive.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	a, aud := newDiffAllocator(t, 99)
	c, err := a.Establish(route.Request{A: 0, B: 40, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(c)
	epoch := a.PlanCacheEpoch()
	if epoch == 0 {
		t.Fatal("cache never initialized")
	}
	if n := a.PlanCacheValidPairs(); n != 1 {
		t.Fatalf("valid pairs = %d, want 1", n)
	}
	hits0, misses0 := a.PlanCacheStats()
	if misses0 != 1 || hits0 != 0 {
		t.Fatalf("after first establish: hits %d misses %d, want 0/1", hits0, misses0)
	}
	c, err = a.Establish(route.Request{A: 0, B: 40, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(c)
	if hits, _ := a.PlanCacheStats(); hits != 1 {
		t.Fatalf("repeat establish did not hit (hits %d)", hits)
	}

	// Every invalidation source bumps the epoch and flushes the table.
	bumps := []struct {
		name string
		do   func()
	}{
		{"fail-row", func() { a.FailFiberRow(0, 0) }},
		{"restore-row", func() { a.RestoreFiberRow(0, 0) }},
		{"apply-fault", func() {
			if _, err := a.ApplyFault(chaos.Fault{Class: chaos.LaserDeath, Chip: 3}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, b := range bumps {
		before := a.PlanCacheEpoch()
		b.do()
		if got := a.PlanCacheEpoch(); got != before+1 {
			t.Fatalf("%s: epoch %d -> %d, want +1", b.name, before, got)
		}
		if n := a.PlanCacheValidPairs(); n != 0 {
			t.Fatalf("%s: %d entries still valid after epoch bump", b.name, n)
		}
	}
	if err := aud.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheSnapshotRewarm is the kill-at-boundary identity check
// at the allocator level: snapshot a warm cache mid-workload, restore
// into a fresh allocator, and demand the restored side report the same
// counters and valid set and behave identically afterward — including
// accruing hits on exactly the pairs the original would have.
func TestPlanCacheSnapshotRewarm(t *testing.T) {
	t.Cleanup(invariant.ResetGlobal)
	a, _ := newDiffAllocator(t, 7)
	reqs := []route.Request{
		{A: 0, B: 40, Width: 1},
		{A: 3, B: 50, Width: 2},
		{A: 10, B: 20, Width: 1},
	}
	var held []*route.Circuit
	for _, req := range reqs {
		c, err := a.Establish(req, 0)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}
	a.FailFiberRow(0, 1)
	if _, err := a.Establish(reqs[0], 0); err != nil {
		t.Fatal(err)
	}

	var e snapshot.Encoder
	a.EncodeState(&e)

	rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b := route.NewAllocator(rack, rng.New(7).Split("diff/loss"))
	if err := b.RestoreState(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}

	ha, ma := a.PlanCacheStats()
	hb, mb := b.PlanCacheStats()
	if ha != hb || ma != mb {
		t.Fatalf("restored counters %d/%d, want %d/%d", hb, mb, ha, ma)
	}
	if pa, pb := a.PlanCacheValidPairs(), b.PlanCacheValidPairs(); pa != pb {
		t.Fatalf("restored valid pairs %d, want %d", pb, pa)
	}

	// Post-restore behavior: a repeat of the one pair still valid at
	// the current epoch (re-derived after the row failure) must hit on
	// both sides; a fresh pair must miss on both. The pairs cached
	// before the FailFiberRow bump are stale by design. The RNG streams
	// are mid-sequence vs restored, so compare cache behavior, not loss
	// values.
	for _, side := range []*route.Allocator{a, b} {
		h0, m0 := side.PlanCacheStats()
		c, err := side.Establish(reqs[0], unit.Seconds(0))
		if err != nil {
			t.Fatal(err)
		}
		side.Release(c)
		h1, m1 := side.PlanCacheStats()
		if h1 != h0+1 || m1 != m0 {
			t.Fatalf("repeat pair: hits %d->%d misses %d->%d, want a pure hit", h0, h1, m0, m1)
		}
		c, err = side.Establish(route.Request{A: 5, B: 60, Width: 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		side.Release(c)
		h2, m2 := side.PlanCacheStats()
		if h2 != h1 || m2 != m1+1 {
			t.Fatalf("fresh pair: hits %d->%d misses %d->%d, want a pure miss", h1, h2, m1, m2)
		}
	}
}
