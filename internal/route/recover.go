package route

import (
	"errors"
	"fmt"

	"lightpath/internal/chaos"
	"lightpath/internal/phy"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// This file is the routing half of the failure lifecycle: it maps the
// chaos engine's faults onto the hardware's health state, decides
// which established circuits a fault invalidates, tears those down,
// and re-establishes them over surviving resources — at reduced
// wavelength width when full-width repair is impossible.

// ApplyFault applies one fault to the rack hardware and tears down
// every established circuit the fault invalidates, returning the
// invalidated circuits (already released) so the caller can
// re-establish them. Faults that break no circuit return nil.
//
// Invalidation rules per class:
//
//   - ChipFailure: every circuit terminating at the chip.
//   - LaserDeath: circuits at the chip, newest first, until the
//     tile's laser budget balances again.
//   - MZIStuck: none — a stuck switch freezes its current state, so
//     established paths keep working; only new programs fail.
//   - WaveguideLoss: circuits crossing the degraded position whose
//     optical budget no longer closes (or whose span is severed).
//   - FiberCut: every circuit using the cut trunk row.
func (a *Allocator) ApplyFault(f chaos.Fault) ([]*Circuit, error) {
	a.beginOp()
	defer a.endOp("apply-fault")
	// Any fault class can reshape the viable-plan set (chip and fiber
	// faults directly; the others via hardware health the plans bake
	// in conservatively) — invalidate the plan cache wholesale.
	a.bumpPlanEpoch()
	switch f.Class {
	case chaos.ChipFailure:
		if err := a.checkChip(f.Chip); err != nil {
			return nil, err
		}
		a.rack.TileOf(f.Chip).FailChip()
		return a.releaseAll(a.CircuitsAt(f.Chip)), nil

	case chaos.LaserDeath:
		if err := a.checkChip(f.Chip); err != nil {
			return nil, err
		}
		tile := a.rack.TileOf(f.Chip)
		tile.FailLasers(1)
		// Over-commit: shed the newest circuits first until the tile's
		// remaining lasers cover the survivors.
		var shed []*Circuit
		at := a.CircuitsAt(f.Chip)
		for i := len(at) - 1; i >= 0 && tile.FreeLasers() < 0; i-- {
			a.Release(at[i])
			shed = append(shed, at[i])
		}
		return shed, nil

	case chaos.MZIStuck:
		if err := a.checkChip(f.Chip); err != nil {
			return nil, err
		}
		return nil, a.rack.TileOf(f.Chip).FailSwitch(f.Switch)

	case chaos.WaveguideLoss:
		if f.Wafer < 0 || f.Wafer >= a.rack.NumWafers() {
			return nil, fmt.Errorf("route: fault wafer %d out of range [0, %d)", f.Wafer, a.rack.NumWafers())
		}
		w := a.rack.Wafer(f.Wafer)
		o := orientOf(f.Horizontal)
		if err := w.DegradeSegment(o, f.Lane, f.Pos, f.ExtraLossDB); err != nil {
			return nil, err
		}
		var broken []*Circuit
		for _, c := range a.CircuitsOverSegment(f.Wafer, f.Horizontal, f.Lane, f.Pos) {
			if !a.StillFeasible(c) {
				broken = append(broken, c)
			}
		}
		return a.releaseAll(broken), nil

	case chaos.FiberCut:
		return a.FailFiberRow(f.Trunk, f.Row), nil
	}
	return nil, fmt.Errorf("route: unknown fault class %d", int(f.Class))
}

// checkChip validates a fault's chip id against the rack.
func (a *Allocator) checkChip(chip int) error {
	if chip < 0 || chip >= a.rack.NumChips() {
		return fmt.Errorf("route: fault chip %d out of range [0, %d)", chip, a.rack.NumChips())
	}
	return nil
}

// CircuitsAt returns the established circuits terminating at the
// chip, in ID order.
func (a *Allocator) CircuitsAt(chip int) []*Circuit {
	var out []*Circuit
	for _, c := range a.Circuits() {
		if c.A == chip || c.B == chip {
			out = append(out, c)
		}
	}
	return out
}

// CircuitsOverSegment returns the established circuits whose path
// crosses one tile position of a bus lane, in ID order.
func (a *Allocator) CircuitsOverSegment(waferIdx int, horizontal bool, lane, pos int) []*Circuit {
	o := orientOf(horizontal)
	var out []*Circuit
	for _, c := range a.Circuits() {
		for _, s := range c.Segments {
			if s.Wafer == waferIdx && s.Ref.Orient == o && s.Ref.Lane == lane &&
				s.Ref.Span.Lo <= pos && pos <= s.Ref.Span.Hi {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// StillFeasible re-checks a circuit's optical budget against the
// current fault-induced degradation on its spans: severed spans fail
// outright, and accumulated extra loss must fit the remaining margin.
// The circuit's stored link report already charged the defect loss
// present at establish time (ByKind[LossDefect]); only degradation
// added since eats into the remaining margin. ApplyFault uses it to
// decide which circuits a waveguide fault invalidates, and the
// invariant auditor uses it to assert every surviving circuit's
// budget still closes.
func (a *Allocator) StillFeasible(c *Circuit) bool {
	extra := 0.0
	for _, s := range c.Segments {
		w := a.rack.Wafer(s.Wafer)
		if w.SpanSevered(s.Ref.Orient, s.Ref.Lane, s.Ref.Span) {
			return false
		}
		extra += w.SpanExtraLossDB(s.Ref.Orient, s.Ref.Lane, s.Ref.Span)
	}
	charged := float64(c.Link.ByKind[phy.LossDefect])
	return float64(c.Link.MarginDB) >= extra-charged
}

// releaseAll tears the circuits down and returns them.
func (a *Allocator) releaseAll(cs []*Circuit) []*Circuit {
	for _, c := range cs {
		a.Release(c)
	}
	return cs
}

// Reestablish finds a new path for a torn-down circuit's endpoints,
// degrading gracefully: it first retries the full wavelength width,
// then halves the width until a path fits or width 1 fails too. It
// returns the new circuit and whether it is degraded (narrower than
// requested). Endpoint chip failures are not retried — they need a
// replacement chip, which is the core recovery loop's decision.
func (a *Allocator) Reestablish(c *Circuit, now unit.Seconds) (*Circuit, bool, error) {
	return a.EstablishDegraded(Request{A: c.A, B: c.B, Width: c.Width}, now)
}

// EstablishDegraded establishes the request, halving the wavelength
// width on failure until it fits (graceful degradation). The boolean
// reports whether the established circuit is narrower than requested.
func (a *Allocator) EstablishDegraded(req Request, now unit.Seconds) (*Circuit, bool, error) {
	var lastErr error
	for width := req.Width; width >= 1; width /= 2 {
		c, err := a.Establish(Request{A: req.A, B: req.B, Width: width}, now)
		if err == nil {
			return c, width < req.Width, nil
		}
		lastErr = err
		if !shouldDegrade(err) {
			break
		}
	}
	return nil, false, lastErr
}

// shouldDegrade reports whether narrowing the circuit could help: path
// and resource exhaustion can, a dead endpoint cannot.
func shouldDegrade(err error) bool {
	return !errors.Is(err, ErrEndpointFailed)
}

// orientOf maps a fault's horizontal flag to the wafer orientation.
func orientOf(horizontal bool) wafer.Orient {
	if horizontal {
		return wafer.Horizontal
	}
	return wafer.Vertical
}
