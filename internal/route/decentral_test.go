package route

import (
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/wafer"
)

func contendingRequests(n int) []Request {
	// All requests funnel through the same rows/columns of a single
	// 32-chip wafer to force conflicts under optimistic allocation
	// with few buses.
	var reqs []Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{A: i % 8, B: 24 + (i+1)%8, Width: 1})
	}
	return reqs
}

func scarceRack(t *testing.T) *wafer.Rack {
	t.Helper()
	cfg := wafer.DefaultConfig()
	cfg.BusesPerLane = 4 // scarce waveguides to make conflicts real
	rack, err := wafer.NewRack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	return rack
}

func TestDecentralizedEstablishesAll(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(11))
	d := NewDecentralized(a, rng.New(12))
	var reqs []Request
	for i := 0; i < 16; i++ {
		reqs = append(reqs, Request{A: i, B: 63 - i, Width: 1})
	}
	out := d.EstablishBatch(reqs, 0)
	if len(out.Failed) != 0 {
		t.Fatalf("failed = %d on an empty rack", len(out.Failed))
	}
	if len(out.Circuits) != 16 {
		t.Fatalf("established = %d, want 16", len(out.Circuits))
	}
	// Disjointness holds under decentralized allocation too.
	for i := range out.Circuits {
		for j := i + 1; j < len(out.Circuits); j++ {
			if out.Circuits[i].SharesResources(out.Circuits[j]) {
				t.Fatal("decentralized circuits share resources")
			}
		}
	}
}

func TestDecentralizedPaysConflictAttempts(t *testing.T) {
	// Ablation: with scarce buses, the decentralized allocator needs
	// at least as many attempts as the centralized one for the same
	// workload — and give-up failures must be consistent.
	reqs := contendingRequests(8)

	central := NewAllocator(scarceRack(t), rng.New(21))
	outC := central.EstablishBatch(reqs, 0)

	decAlloc := NewAllocator(scarceRack(t), rng.New(21))
	dec := NewDecentralized(decAlloc, rng.New(22))
	outD := dec.EstablishBatch(reqs, 0)

	if outD.Attempts < outC.Attempts {
		t.Fatalf("decentralized attempts %d < centralized %d", outD.Attempts, outC.Attempts)
	}
	if len(outD.Circuits)+len(outD.Failed) != len(reqs) {
		t.Fatalf("decentralized lost requests: %d + %d != %d",
			len(outD.Circuits), len(outD.Failed), len(reqs))
	}
}

func TestDecentralizedRespectsMaxRounds(t *testing.T) {
	rack := scarceRack(t)
	a := NewAllocator(rack, rng.New(31))
	d := NewDecentralized(a, rng.New(32))
	d.MaxRounds = 1
	out := d.EstablishBatch(contendingRequests(16), 0)
	if out.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", out.Rounds)
	}
	if len(out.Circuits)+len(out.Failed) != 16 {
		t.Fatal("requests lost")
	}
}

func TestFailFiberRowReroutesCircuits(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(41))
	c, err := a.Establish(Request{A: 0, B: 32, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := c.Fibers[0].Row
	affected := a.FailFiberRow(0, row)
	if len(affected) != 1 || affected[0].ID != c.ID {
		t.Fatalf("affected = %v", affected)
	}
	if !a.RowFailed(0, row) {
		t.Fatal("row not marked failed")
	}
	// Re-establish: must avoid the failed row.
	c2, err := a.Establish(Request{A: 0, B: 32, Width: 1}, 0)
	if err != nil {
		t.Fatalf("re-establish after fiber failure: %v", err)
	}
	if c2.Fibers[0].Row == row {
		t.Fatal("repair reused the failed row")
	}
}

func TestFailAllRowsMakesCrossWaferImpossible(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(51))
	for row := 0; row < rack.Config().Rows; row++ {
		a.FailFiberRow(0, row)
	}
	if _, err := a.Establish(Request{A: 0, B: 32, Width: 1}, 0); err == nil {
		t.Fatal("cross-wafer circuit established with all trunk rows failed")
	}
	// Intra-wafer circuits still work.
	if _, err := a.Establish(Request{A: 0, B: 5, Width: 1}, 0); err != nil {
		t.Fatalf("intra-wafer circuit: %v", err)
	}
}

// TestFiberPackingKeepsSpareRows: the §5 fiber-minimization ablation.
// With packing, circuits concentrate on few rows, leaving more fully
// spare rows for fault repair than the spread (shortest-path) policy.
func TestFiberPackingKeepsSpareRows(t *testing.T) {
	load := []Request{
		{A: 0, B: 32, Width: 1},  // row 0 source
		{A: 8, B: 40, Width: 1},  // row 1 source
		{A: 16, B: 48, Width: 1}, // row 2 source
	}

	spread := NewAllocator(twoWaferRack(t), rng.New(61))
	if out := spread.EstablishBatch(load, 0); len(out.Failed) != 0 {
		t.Fatal("spread failed requests")
	}
	packed := NewAllocator(twoWaferRack(t), rng.New(61))
	packed.PackFibers = true
	if out := packed.EstablishBatch(load, 0); len(out.Failed) != 0 {
		t.Fatal("packed failed requests")
	}

	if s, p := spread.SpareFullRows(0), packed.SpareFullRows(0); p <= s {
		t.Fatalf("packing spare rows = %d, spread = %d; packing should preserve more", p, s)
	}
}

func TestSegmentAndCircuitStrings(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, nil)
	c, err := a.Establish(Request{A: 0, B: 33, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.String()) == 0 || len(c.Segments[0].String()) == 0 {
		t.Fatal("empty string renderings")
	}
}

// TestZPathFallback: when both L-shaped variants are blocked by bus
// exhaustion, the allocator routes a Z-shaped detour through an
// intermediate lane instead of failing.
func TestZPathFallback(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.BusesPerLane = 1
	rack, err := wafer.NewRack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, rng.New(3))
	w := rack.Wafer(0)
	// Block the horizontal lanes of rows 0 and 1: the H-first L needs
	// row 0, the V-first L needs row 1 — both dead.
	for _, lane := range []int{0, 1} {
		if _, err := w.AllocBus(wafer.Horizontal, lane, wafer.Interval{Lo: 0, Hi: 7}); err != nil {
			t.Fatal(err)
		}
	}
	// Chip 0 = (0,0); chip 11 = (1,3). A V-H-V detour via row 2 or 3
	// must succeed.
	c, err := a.Establish(Request{A: 0, B: 11, Width: 1}, 0)
	if err != nil {
		t.Fatalf("Z-path fallback failed: %v", err)
	}
	if len(c.Segments) != 3 {
		t.Fatalf("detour segments = %d, want 3", len(c.Segments))
	}
}
