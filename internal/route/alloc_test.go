package route

import (
	"errors"
	"testing"
	"testing/quick"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// twoWaferRack builds the canonical TPU-rack hardware: 64 chips over
// two 32-tile wafers.
func twoWaferRack(t *testing.T) *wafer.Rack {
	t.Helper()
	r, err := wafer.NewRack(wafer.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEstablishSameWafer(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(1))
	// Chip 0 = wafer 0 (0,0); chip 11 = wafer 0 (1,3).
	c, err := a.Establish(Request{A: 0, B: 11, Width: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fibers) != 0 {
		t.Fatalf("same-wafer circuit used fibers: %v", c.Fibers)
	}
	if len(c.Segments) != 2 {
		t.Fatalf("L-path segments = %d, want 2", len(c.Segments))
	}
	if c.ReadyAt != phy.ReconfigLatency {
		t.Fatalf("ready at %v, want %v", c.ReadyAt, phy.ReconfigLatency)
	}
	if bw := c.Bandwidth(rack.Config().WavelengthCapacity); bw != 4*224*unit.Gbps {
		t.Fatalf("bandwidth = %v", bw)
	}
	if !c.Link.Feasible {
		t.Fatalf("intra-wafer circuit infeasible: %v", c.Link)
	}
}

func TestEstablishSameRowSingleSegment(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(1))
	// Chips 0 and 7: wafer 0, row 0, cols 0 and 7.
	c, err := a.Establish(Request{A: 0, B: 7, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 1 {
		t.Fatalf("same-row segments = %d, want 1", len(c.Segments))
	}
	seg := c.Segments[0]
	if seg.Ref.Orient != wafer.Horizontal || seg.Ref.Span != (wafer.Interval{Lo: 0, Hi: 7}) {
		t.Fatalf("segment = %v", seg)
	}
}

func TestEstablishCrossWafer(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(1))
	// Chip 0 (wafer 0) to chip 63 (wafer 1, tile 31 = row 3, col 7).
	c, err := a.Establish(Request{A: 0, B: 63, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fibers) != 1 {
		t.Fatalf("cross-wafer fibers = %d, want 1", len(c.Fibers))
	}
	if !c.Link.Feasible {
		t.Fatalf("cross-wafer circuit infeasible: %v", c.Link)
	}
	// Fiber loss appears in the breakdown.
	if c.Link.ByKind[phy.LossFiber] == 0 {
		t.Fatal("no fiber loss accounted")
	}
}

func TestEstablishValidation(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, nil)
	if _, err := a.Establish(Request{A: 3, B: 3, Width: 1}, 0); err == nil {
		t.Error("self-circuit accepted")
	}
	if _, err := a.Establish(Request{A: 0, B: 1, Width: 0}, 0); err == nil {
		t.Error("zero width accepted")
	}
}

// TestCircuitsDisjoint is the DESIGN.md invariant: no two established
// circuits share a waveguide segment or fiber.
func TestCircuitsDisjoint(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(2))
	var reqs []Request
	// Dense all-pairs-ish load: chip i to chip (i+13)%64.
	for i := 0; i < 32; i++ {
		reqs = append(reqs, Request{A: i, B: (i + 13) % 64, Width: 1})
	}
	out := a.EstablishBatch(reqs, 0)
	if len(out.Failed) > 0 {
		t.Fatalf("%d requests failed on an empty rack", len(out.Failed))
	}
	cs := out.Circuits
	for i := range cs {
		for j := i + 1; j < len(cs); j++ {
			if cs[i].SharesResources(cs[j]) {
				t.Fatalf("circuits %d and %d share resources", cs[i].ID, cs[j].ID)
			}
		}
	}
}

func TestReleaseRestoresResources(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(3))
	before := rack.TileOf(0).FreeLasers()
	c, err := a.Establish(Request{A: 0, B: 40, Width: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rack.TileOf(0).FreeLasers() != before-3 {
		t.Fatal("lasers not reserved")
	}
	if rack.FibersInUse() != 1 {
		t.Fatalf("fibers in use = %d", rack.FibersInUse())
	}
	a.Release(c)
	if rack.TileOf(0).FreeLasers() != before {
		t.Fatal("lasers not released")
	}
	if rack.FibersInUse() != 0 {
		t.Fatal("fiber not released")
	}
	h, v := rack.Wafer(0).BusesInUse()
	if h+v != 0 {
		t.Fatalf("buses still in use: %d/%d", h, v)
	}
	if len(a.Circuits()) != 0 {
		t.Fatal("circuit still tracked")
	}
}

func TestReleaseUnknownAndDoubleReleaseAreNoOps(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(3))
	c, err := a.Establish(Request{A: 0, B: 40, Width: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := a.Establish(Request{A: 1, B: 41, Width: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := func() [4]int {
		h0, v0 := rack.Wafer(0).BusesInUse()
		h1, v1 := rack.Wafer(1).BusesInUse()
		return [4]int{rack.FibersInUse(), rack.TileOf(keep.A).FreeLasers(), h0 + v0, h1 + v1}
	}
	a.Release(c)
	want := snapshot()

	// Double release of the same pointer: a no-op, not corruption. The
	// pre-idempotence allocator would have freed keep-owned resources or
	// panicked here — exactly the class of defect the auditor flags as a
	// conservation violation.
	a.Release(c)
	// A circuit this allocator never established (a clone's twin with a
	// coinciding ID, or a fabricated one) must not free anything either.
	a.Release(&Circuit{ID: keep.ID, A: keep.A, B: keep.B, Width: keep.Width})
	a.Release(&Circuit{ID: 99})

	if got := snapshot(); got != want {
		t.Fatalf("occupancy drifted after redundant releases: %v != %v", got, want)
	}
	if len(a.Circuits()) != 1 || a.Circuits()[0] != keep {
		t.Fatal("surviving circuit lost")
	}
	// The surviving circuit still tears down cleanly.
	a.Release(keep)
	if rack.FibersInUse() != 0 || len(a.Circuits()) != 0 {
		t.Fatal("final release incomplete")
	}
}

func TestLaserExhaustionFailsCleanly(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.LasersPerTile = 2
	rack, err := wafer.NewRack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, nil)
	if _, err := a.Establish(Request{A: 0, B: 5, Width: 2}, 0); err != nil {
		t.Fatal(err)
	}
	// Chip 0 has no lasers left.
	if _, err := a.Establish(Request{A: 0, B: 9, Width: 1}, 0); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	// Resources of the failed attempt were rolled back: chips not
	// involved in the exhausted endpoints can still connect.
	if _, err := a.Establish(Request{A: 9, B: 3, Width: 1}, 0); err != nil {
		t.Fatalf("post-rollback establish: %v", err)
	}
}

func TestBudgetCheckRejectsLossyCircuits(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, rng.New(5))
	a.CheckBudget = true
	// Cripple the budget so every circuit is infeasible.
	a.Budget = phy.Budget{LaunchPower: -50, ReceiverSensitivity: -17, Margin: 3}
	if _, err := a.Establish(Request{A: 0, B: 11, Width: 1}, 0); err == nil {
		t.Fatal("infeasible circuit accepted")
	}
	// Rolled back fully.
	h, v := rack.Wafer(0).BusesInUse()
	if h+v != 0 {
		t.Fatal("budget-rejected circuit leaked buses")
	}
}

func TestCircuitLossScalesWithDistance(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, nil) // mean losses, deterministic
	near, err := a.Establish(Request{A: 0, B: 1, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	far, err := a.Establish(Request{A: 8, B: 63, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if far.Link.TotalLossDB <= near.Link.TotalLossDB {
		t.Fatalf("far loss %v <= near loss %v", far.Link.TotalLossDB, near.Link.TotalLossDB)
	}
}

func TestFiberRowFallback(t *testing.T) {
	cfg := wafer.DefaultConfig()
	cfg.FibersPerEdge = 1
	rack, err := wafer.NewRack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, rng.New(7))
	// Row 0's single fiber gets used...
	if _, err := a.Establish(Request{A: 0, B: 32, Width: 1}, 0); err != nil {
		t.Fatal(err)
	}
	// ...so the next row-0 circuit must fall back to another row.
	c, err := a.Establish(Request{A: 1, B: 33, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fibers[0].Row == 0 {
		t.Fatal("second circuit reused the exhausted row")
	}
}

func TestSwitchesProgrammedOnEstablish(t *testing.T) {
	rack := twoWaferRack(t)
	a := NewAllocator(rack, nil)
	now := unit.Seconds(5)
	if _, err := a.Establish(Request{A: 0, B: 11, Width: 1}, now); err != nil {
		t.Fatal(err)
	}
	tile := rack.TileOf(0)
	if got := tile.Switches[0].SettledAt(); got != now+phy.ReconfigLatency {
		t.Fatalf("endpoint switch settles at %v, want %v", got, now+phy.ReconfigLatency)
	}
}

// Property: random circuit batches never violate segment/fiber
// disjointness, and releasing everything restores a clean rack.
func TestAllocatorProperty(t *testing.T) {
	f := func(pairs []struct{ A, B uint8 }, seed uint64) bool {
		rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
		if err != nil {
			return false
		}
		a := NewAllocator(rack, rng.New(seed))
		var circuits []*Circuit
		for _, p := range pairs {
			ca, cb := int(p.A%64), int(p.B%64)
			if ca == cb {
				continue
			}
			c, err := a.Establish(Request{A: ca, B: cb, Width: 1}, 0)
			if err != nil {
				continue // exhaustion is acceptable; leaks are not
			}
			circuits = append(circuits, c)
		}
		for i := range circuits {
			for j := i + 1; j < len(circuits); j++ {
				if circuits[i].SharesResources(circuits[j]) {
					return false
				}
			}
		}
		for _, c := range circuits {
			a.Release(c)
		}
		if rack.FibersInUse() != 0 {
			return false
		}
		for w := 0; w < rack.NumWafers(); w++ {
			h, v := rack.Wafer(w).BusesInUse()
			if h+v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRingTopologyTakesShortWayAround(t *testing.T) {
	cfg := wafer.DefaultConfig()
	ring, err := wafer.NewRackTopology(cfg, 4, wafer.RingTopology)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(ring, rng.New(1))
	// Wafer 0 chip 0 to wafer 3 chip 96: counterclockwise over the
	// closing trunk (index 3) is 1 hop instead of 3.
	c, err := a.Establish(Request{A: 0, B: 96, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fibers) != 1 {
		t.Fatalf("ring path fibers = %d, want 1 (short way)", len(c.Fibers))
	}
	if c.Fibers[0].Trunk != 3 {
		t.Fatalf("ring path trunk = %d, want 3 (the closing trunk)", c.Fibers[0].Trunk)
	}
}

func TestChainTopologyHasNoShortcut(t *testing.T) {
	chain, err := wafer.NewRack(wafer.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(chain, rng.New(1))
	c, err := a.Establish(Request{A: 0, B: 96, Width: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fibers) != 3 {
		t.Fatalf("chain path fibers = %d, want 3", len(c.Fibers))
	}
}

func TestRingReducesWorstCaseLoss(t *testing.T) {
	cfg := wafer.DefaultConfig()
	mk := func(topo wafer.Topology) *Circuit {
		rack, err := wafer.NewRackTopology(cfg, 6, topo)
		if err != nil {
			t.Fatal(err)
		}
		a := NewAllocator(rack, nil) // mean losses: deterministic comparison
		c, err := a.Establish(Request{A: 0, B: 5 * 32, Width: 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	chain := mk(wafer.Chain)
	ring := mk(wafer.RingTopology)
	if ring.Link.TotalLossDB >= chain.Link.TotalLossDB {
		t.Fatalf("ring loss %v >= chain loss %v for distant wafers",
			ring.Link.TotalLossDB, chain.Link.TotalLossDB)
	}
}

func TestRingDisjointnessStillHolds(t *testing.T) {
	cfg := wafer.DefaultConfig()
	rack, err := wafer.NewRackTopology(cfg, 4, wafer.RingTopology)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, rng.New(9))
	var reqs []Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, Request{A: i, B: (i + 67) % 128, Width: 1})
	}
	out := a.EstablishBatch(reqs, 0)
	if len(out.Failed) != 0 {
		t.Fatalf("%d failures on an empty ring rack", len(out.Failed))
	}
	for i := range out.Circuits {
		for j := i + 1; j < len(out.Circuits); j++ {
			if out.Circuits[i].SharesResources(out.Circuits[j]) {
				t.Fatal("ring circuits share resources")
			}
		}
	}
}

// Property: circuit loss is monotone in wafer distance along a chain
// cascade (more trunks, stitches and propagation can only add up).
func TestLossMonotoneInWaferDistance(t *testing.T) {
	rack, err := wafer.NewRack(wafer.DefaultConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAllocator(rack, nil) // mean losses
	var last float64 = -1
	for w := 1; w < 6; w++ {
		c, err := a.Establish(Request{A: 0, B: w * 32, Width: 1}, 0)
		if err != nil {
			t.Fatalf("wafer %d: %v", w, err)
		}
		loss := float64(c.Link.TotalLossDB)
		if loss <= last {
			t.Fatalf("loss not increasing at wafer %d: %v <= %v", w, loss, last)
		}
		last = loss
		a.Release(c)
	}
}
