package route

// Test-only hooks for the plan cache. They live in the internal test
// build so the external route_test package (which must stay external to
// attach the invariant auditor without an import cycle) can drive the
// uncached reference path and normalize snapshots for byte comparison.

// DisablePlanCache routes every plansFor call through the uncached
// candidatePlans path. The differential tests run the same workload
// with and without it and demand bit-identical outcomes.
func (a *Allocator) DisablePlanCache() { a.noPlanCache = true }

// ClearPlanCacheForTest drops the cache table, arena and counters, so
// two allocators that differ only in caching encode identical snapshot
// bytes.
func (a *Allocator) ClearPlanCacheForTest() { a.resetPlanCache() }

// PlanCacheValidPairs exposes the valid-entry count for invalidation
// assertions.
func (a *Allocator) PlanCacheValidPairs() int { return a.planCacheValidPairs() }
