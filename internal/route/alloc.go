package route

import (
	"errors"
	"fmt"
	"sort"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// ErrNoPath reports that no feasible, resource-disjoint path exists
// for a circuit request.
var ErrNoPath = errors.New("route: no feasible circuit path")

// ErrEndpointFailed reports a circuit request whose endpoint chip is
// failed hardware; no amount of re-pathfinding can help.
var ErrEndpointFailed = errors.New("route: circuit endpoint chip has failed")

// Allocator establishes circuits with a global view of the rack's
// waveguide and fiber occupancy (the "centralized controller" of the
// paper's §5).
type Allocator struct {
	rack *wafer.Rack
	loss *phy.LossModel
	// Budget is the optical link budget circuits are checked against
	// when CheckBudget is set.
	Budget phy.Budget
	// CheckBudget rejects circuits whose optical loss exceeds the
	// budget.
	CheckBudget bool
	// PackFibers selects trunk rows that are already partially used
	// before opening fresh rows, keeping whole rows free as spares
	// for fault tolerance (§5, "Minimizing fiber requirement for
	// fault tolerance"). When false, the row matching the source tile
	// is preferred (shortest path).
	PackFibers bool

	circuits map[int]*Circuit
	nextID   int
	// fibersUsed mirrors the rack's fiber occupancy per (trunk, row)
	// so the packing heuristic can rank rows cheaply.
	fibersUsed map[fiberRowKey]int
	// failedRows marks trunk rows taken out by fiber failures.
	failedRows map[fiberRowKey]bool

	// rowOrder[srcRow] is the precomputed non-packing fiber-row
	// preference order (source row first, then the rest ascending). It
	// is immutable after construction and shared by clones.
	rowOrder [][]int
	// auditHook, when set, runs after every completed top-level
	// mutation with the operation's name; mutDepth tracks nesting so
	// compound operations (ApplyFault releasing circuits, Establish
	// trying many commits) fire the hook once, when the state is
	// consistent again. Clones start with no hook — the attaching
	// layer decides per allocator.
	auditHook func(op string)
	mutDepth  int
	// scratch holds the buffers Establish reuses across calls so the
	// pathfinding hot path stops allocating per circuit. Nothing in it
	// survives a call; clones start with fresh (zero) scratch.
	scratch allocScratch
	// plans memoizes candidatePlans per chip pair, invalidated by the
	// fabric epoch (see plancache.go). Clones start cold.
	plans planCache
	// noPlanCache forces every Establish to re-derive plans from
	// scratch; the differential tests use it as the reference arm.
	noPlanCache bool
}

// allocScratch is the per-allocator reusable working storage of the
// Establish hot path. Every field is reset (length zero, capacity
// kept) at the start of the call that uses it.
type allocScratch struct {
	plans   []plan
	rowUses []rowUse
	rows    []int
	elems   []phy.LossElement
	uses    []switchUse
	segs    []Segment
	fibers  []wafer.FiberRef
}

// nextPlan appends an empty plan slot to the scratch, recycling the
// slot's steps/trunks capacity from earlier calls.
func (s *allocScratch) nextPlan() *plan {
	if len(s.plans) < cap(s.plans) {
		s.plans = s.plans[:len(s.plans)+1]
	} else {
		s.plans = append(s.plans, plan{})
	}
	p := &s.plans[len(s.plans)-1]
	p.steps = p.steps[:0]
	p.trunks = p.trunks[:0]
	p.fiberRow = 0
	p.turns = 0
	return p
}

// rowUse ranks a trunk row for the fiber-packing heuristic.
type rowUse struct{ row, used, free int }

type fiberRowKey struct{ trunk, row int }

// NewAllocator builds a centralized allocator over the rack. The
// stochastic stitch losses draw from r; a nil r uses mean losses.
func NewAllocator(rack *wafer.Rack, r *rng.Rand) *Allocator {
	a := &Allocator{
		rack:       rack,
		loss:       phy.NewLossModel(r),
		Budget:     phy.DefaultBudget(),
		circuits:   make(map[int]*Circuit),
		fibersUsed: make(map[fiberRowKey]int),
	}
	// Precompute the shortest-path fiber-row preference order for every
	// source row: it depends only on the wafer geometry, so computing it
	// per Establish call was pure allocation churn.
	rows := rack.Config().Rows
	a.rowOrder = make([][]int, rows)
	for srcRow := range a.rowOrder {
		order := make([]int, 0, rows)
		order = append(order, srcRow)
		for row := 0; row < rows; row++ {
			if row != srcRow {
				order = append(order, row)
			}
		}
		a.rowOrder[srcRow] = order
	}
	return a
}

// SetAuditHook registers fn to run after every completed top-level
// mutation of the allocator's shared optical state (Establish,
// Release, ApplyFault, FailFiberRow, RestoreFiberRow, and the
// decentralized commit path), with the operation's name. Nested
// mutations — a fault tearing down circuits mid-application — fire
// the hook only once, at the outermost level, so the hook always
// observes a consistent allocator. A nil fn detaches. The hook must
// not mutate the allocator.
func (a *Allocator) SetAuditHook(fn func(op string)) { a.auditHook = fn }

// beginOp/endOp bracket a mutation of shared state; the audit hook
// fires when the outermost bracket closes.
func (a *Allocator) beginOp() { a.mutDepth++ }

func (a *Allocator) endOp(op string) {
	a.mutDepth--
	if a.mutDepth == 0 && a.auditHook != nil {
		a.auditHook(op)
	}
}

// trackFiber updates the occupancy mirror by delta (+1 on allocate,
// -1 on free).
func (a *Allocator) trackFiber(ref wafer.FiberRef, delta int) {
	a.fibersUsed[fiberRowKey{trunk: ref.Trunk, row: ref.Row}] += delta
}

// Rack returns the underlying hardware.
func (a *Allocator) Rack() *wafer.Rack { return a.rack }

// Circuits returns the currently established circuits in ID order.
// The cost scales with the live circuit count, not with how many IDs
// have ever been issued — long-running owners (the controller daemon)
// call this from every audit pass.
func (a *Allocator) Circuits() []*Circuit {
	out := make([]*Circuit, 0, len(a.circuits))
	for _, c := range a.circuits {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumCircuits returns the live circuit count without materializing
// the sorted slice.
func (a *Allocator) NumCircuits() int { return len(a.circuits) }

// byID orders circuits by ID for the append-style accessors.
type byID []*Circuit

func (s byID) Len() int           { return len(s) }
func (s byID) Less(i, j int) bool { return s[i].ID < s[j].ID }
func (s byID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// AppendCircuits appends the established circuits to dst in ID order
// and returns the extended slice. It is the allocation-free (given
// capacity) form of Circuits for callers that audit on a hot path.
func (a *Allocator) AppendCircuits(dst []*Circuit) []*Circuit {
	start := len(dst)
	for _, c := range a.circuits {
		dst = append(dst, c)
	}
	sort.Sort(byID(dst[start:]))
	return dst
}

// planStep is one bus span a candidate path wants.
type planStep struct {
	wafer int
	o     wafer.Orient
	lane  int
	span  wafer.Interval
}

// plan is a fully specified candidate path.
type plan struct {
	steps    []planStep
	trunks   []int // trunk indices crossed, ascending
	fiberRow int   // tile row used for every fiber hop
	turns    int
}

// span builds an interval from two positions in either order.
func span(a, b int) wafer.Interval {
	if a <= b {
		return wafer.Interval{Lo: a, Hi: b}
	}
	return wafer.Interval{Lo: b, Hi: a}
}

// intraWaferSteps appends the path from (r1,c1) to (r2,c2) on one
// wafer to steps. hFirst selects the horizontal-then-vertical L;
// otherwise vertical-then-horizontal.
func intraWaferSteps(steps []planStep, w, r1, c1, r2, c2 int, hFirst bool) []planStep {
	if hFirst {
		if c1 != c2 {
			steps = append(steps, planStep{wafer: w, o: wafer.Horizontal, lane: r1, span: span(c1, c2)})
		}
		if r1 != r2 {
			steps = append(steps, planStep{wafer: w, o: wafer.Vertical, lane: c2, span: span(r1, r2)})
		}
	} else {
		if r1 != r2 {
			steps = append(steps, planStep{wafer: w, o: wafer.Vertical, lane: c1, span: span(r1, r2)})
		}
		if c1 != c2 {
			steps = append(steps, planStep{wafer: w, o: wafer.Horizontal, lane: r2, span: span(c1, c2)})
		}
	}
	return steps
}

// candidatePlans enumerates paths between two chips in preference
// order: for each candidate fiber row (same-wafer circuits have none),
// the horizontal-first and vertical-first L-shapes. The returned slice
// and everything it references live in the allocator's scratch and are
// valid only until the next candidatePlans call.
func (a *Allocator) candidatePlans(chipA, chipB int) []plan {
	cfg := a.rack.Config()
	wA, rA, cA := a.rack.Place(chipA)
	wB, rB, cB := a.rack.Place(chipB)
	if wA > wB {
		wA, rA, cA, wB, rB, cB = wB, rB, cB, wA, rA, cA
	}

	s := &a.scratch
	s.plans = s.plans[:0]
	if wA == wB {
		for _, hFirst := range [2]bool{true, false} {
			p := s.nextPlan()
			p.steps = intraWaferSteps(p.steps, wA, rA, cA, rB, cB, hFirst)
			p.fiberRow = -1
			p.turns = maxInt(0, len(p.steps)-1)
		}
		// Z-shaped detours: when both L variants are blocked by bus
		// exhaustion, route via an intermediate column (H-V-H) or row
		// (V-H-V). The photonic mesh's path diversity is the point of
		// Figure 4's 10,000 waveguides.
		//lightpath:hotloop
		for cm := 0; cm < cfg.Cols; cm++ {
			if cm == cA || cm == cB || rA == rB {
				continue
			}
			p := s.nextPlan()
			p.fiberRow = -1
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Horizontal, lane: rA, span: span(cA, cm)})
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Vertical, lane: cm, span: span(rA, rB)})
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Horizontal, lane: rB, span: span(cm, cB)})
			p.turns = 2
		}
		//lightpath:hotloop
		for rm := 0; rm < cfg.Rows; rm++ {
			if rm == rA || rm == rB || cA == cB {
				continue
			}
			p := s.nextPlan()
			p.fiberRow = -1
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Vertical, lane: cA, span: span(rA, rm)})
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Horizontal, lane: rm, span: span(cA, cB)})
			p.steps = append(p.steps, planStep{wafer: wA, o: wafer.Vertical, lane: cB, span: span(rm, rB)})
			p.turns = 2
		}
		return s.plans
	}

	// Enumerate cascade directions: clockwise always; the ring
	// topology also offers the counterclockwise way around, which is
	// shorter when the wafers are more than half the cascade apart.
	nw := a.rack.NumWafers()
	type direction struct {
		trunks            []int
		inters            []int // intermediate wafers in path order
		exitCol, enterCol int   // source exit / destination entry columns
	}
	var dirs []direction
	cw := direction{exitCol: cfg.Cols - 1, enterCol: 0}
	for t := wA; t != wB; t = (t + 1) % nw {
		cw.trunks = append(cw.trunks, t)
		if next := (t + 1) % nw; next != wB {
			cw.inters = append(cw.inters, next)
		}
	}
	dirs = append(dirs, cw)
	if a.rack.Topology() == wafer.RingTopology && nw >= 2 {
		ccw := direction{exitCol: 0, enterCol: cfg.Cols - 1}
		for w := wA; w != wB; w = (w - 1 + nw) % nw {
			ccw.trunks = append(ccw.trunks, (w-1+nw)%nw)
			if prev := (w - 1 + nw) % nw; prev != wB {
				ccw.inters = append(ccw.inters, prev)
			}
		}
		dirs = append(dirs, ccw)
		if len(ccw.trunks) < len(cw.trunks) {
			dirs[0], dirs[1] = dirs[1], dirs[0]
		}
	}

	for _, dir := range dirs {
		for _, row := range a.fiberRowOrder(rA, wA, wB) {
			if !a.rowUsable(row, dir.trunks) {
				continue
			}
			for _, hFirst := range [2]bool{true, false} {
				p := s.nextPlan()
				p.fiberRow = row
				// Source wafer: to the exit edge at the fiber row.
				p.steps = intraWaferSteps(p.steps, wA, rA, cA, row, dir.exitCol, hFirst)
				// Intermediate wafers: straight across the fiber row.
				for _, w := range dir.inters {
					p.steps = append(p.steps, planStep{wafer: w, o: wafer.Horizontal, lane: row, span: wafer.Interval{Lo: 0, Hi: cfg.Cols - 1}})
				}
				// Destination wafer: from the entry edge.
				p.steps = intraWaferSteps(p.steps, wB, row, dir.enterCol, rB, cB, hFirst)
				p.trunks = append(p.trunks, dir.trunks...)
				p.turns = maxInt(0, len(p.steps)-1)
			}
		}
	}
	return s.plans
}

// fiberRowOrder returns candidate trunk rows in preference order. In
// the shortest-path regime the order is a precomputed table lookup; in
// the packing regime it is recomputed into scratch (occupancy changes
// between calls). Either way the result is read-only for the caller
// and valid until the next call.
func (a *Allocator) fiberRowOrder(srcRow, wA, wB int) []int {
	if !a.PackFibers {
		// Shortest-path preference: the source row first, then the
		// rest — geometry only, precomputed in NewAllocator.
		return a.rowOrder[srcRow]
	}
	cfg := a.rack.Config()
	// Most-used non-full rows first (pack), then the rest.
	uses := a.scratch.rowUses[:0]
	//lightpath:hotloop
	for row := 0; row < cfg.Rows; row++ {
		used, free := a.fiberRowOccupancy(row, wA, wB)
		uses = append(uses, rowUse{row: row, used: used, free: free})
	}
	rows := a.scratch.rows[:0]
	for {
		best := -1
		for i, u := range uses {
			if u.row < 0 || u.free == 0 {
				continue
			}
			if best < 0 || u.used > uses[best].used {
				best = i
			}
		}
		if best < 0 {
			break
		}
		rows = append(rows, uses[best].row)
		uses[best].row = -1
	}
	a.scratch.rowUses = uses
	a.scratch.rows = rows
	return rows
}

// fiberRowOccupancy reports how many fibers of the row are used and
// free across the trunks the path must cross, taking the minimum free
// across trunks (every trunk needs one).
func (a *Allocator) fiberRowOccupancy(row, wA, wB int) (used, free int) {
	cfg := a.rack.Config()
	free = cfg.FibersPerEdge
	for tr := wA; tr < wB; tr++ {
		u := a.fibersUsed[fiberRowKey{trunk: tr, row: row}]
		used += u
		if f := cfg.FibersPerEdge - u; f < free {
			free = f
		}
	}
	return used, free
}

// Request asks for a circuit between two chips at a given wavelength
// width.
type Request struct {
	A, B  int
	Width int
}

// Establish finds a path for the request, atomically allocates its
// buses, fibers and endpoint resources, programs the switches, and
// returns the circuit. On any failure everything is rolled back and
// ErrNoPath (or a budget error) is returned.
func (a *Allocator) Establish(req Request, now unit.Seconds) (*Circuit, error) {
	if req.A == req.B {
		return nil, fmt.Errorf("route: circuit endpoints are the same chip %d", req.A)
	}
	if req.Width <= 0 {
		return nil, fmt.Errorf("route: non-positive width %d", req.Width)
	}
	// Out-of-range chips would panic deep inside rack.Place; a request
	// is external input and must fail with an error instead.
	for _, chip := range [2]int{req.A, req.B} {
		if chip < 0 || chip >= a.rack.NumChips() {
			return nil, fmt.Errorf("route: chip %d out of range [0, %d)", chip, a.rack.NumChips())
		}
		if !a.rack.TileOf(chip).ChipHealthy() {
			return nil, fmt.Errorf("%w: chip %d", ErrEndpointFailed, chip)
		}
	}
	a.beginOp()
	defer a.endOp("establish")
	//lightpath:arena
	plans := a.plansFor(req.A, req.B)
	var lastErr error = ErrNoPath
	for _, p := range plans {
		c, err := a.commit(req, p, now)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	// Both sentinels stay unwrappable: errors.Is sees ErrNoPath and
	// whatever sentinel the last commit attempt surfaced. The message is
	// formatted only if someone reads it — on a saturated fabric this is
	// the common Establish outcome, too hot for fmt.Errorf.
	return nil, &noPathError{a: req.A, b: req.B, cause: lastErr}
}

// noPathError is the establish failure after every candidate plan was
// rejected. Error formats lazily; Unwrap exposes both ErrNoPath and
// the last commit failure to errors.Is/As.
type noPathError struct {
	a, b  int
	cause error
}

func (e *noPathError) Error() string {
	return fmt.Sprintf("%v: chips %d<->%d: %v", ErrNoPath, e.a, e.b, e.cause)
}

func (e *noPathError) Unwrap() []error { return []error{ErrNoPath, e.cause} }

// commit attempts to allocate everything a plan needs, rolling back on
// failure.
func (a *Allocator) commit(req Request, p plan, now unit.Seconds) (c *Circuit, err error) {
	a.beginOp()
	defer a.endOp("commit")
	// The path is staged in scratch; only a successful commit copies it
	// into the circuit (setPath), so failed attempts allocate nothing.
	segs := a.scratch.segs[:0]
	fibers := a.scratch.fibers[:0]
	defer func() {
		a.scratch.segs = segs[:0]
		a.scratch.fibers = fibers[:0]
	}()
	reservedA, reservedB := false, false
	defer func() {
		if err == nil {
			return
		}
		for _, s := range segs {
			a.rack.Wafer(s.Wafer).FreeBus(s.Ref)
		}
		for _, f := range fibers {
			a.rack.FreeFiber(f)
			a.trackFiber(f, -1)
		}
		if reservedA {
			a.releaseEndpoint(req.A, req.Width)
		}
		if reservedB {
			a.releaseEndpoint(req.B, req.Width)
		}
	}()

	// Severed bus segments and stuck switches are hard health failures:
	// prune the plan before allocating anything so the rollback path
	// never has to undo switch programming.
	for _, st := range p.steps {
		if a.rack.Wafer(st.wafer).SpanSevered(st.o, st.lane, st.span) {
			return nil, fmt.Errorf("route: %s lane %d span [%d,%d] on wafer %d crosses a severed segment",
				st.o, st.lane, st.span.Lo, st.span.Hi, st.wafer)
		}
	}
	for _, su := range a.planSwitches(req, p) {
		if !su.tile.SwitchHealthy(su.sw) {
			return nil, fmt.Errorf("route: tile (%d,%d) switch %d is stuck", su.tile.Row, su.tile.Col, su.sw)
		}
	}

	for _, st := range p.steps {
		ref, aerr := a.rack.Wafer(st.wafer).AllocBus(st.o, st.lane, st.span)
		if aerr != nil {
			return nil, aerr
		}
		segs = append(segs, Segment{Wafer: st.wafer, Ref: ref})
	}
	for _, tr := range p.trunks {
		ref, aerr := a.rack.AllocFiber(tr, p.fiberRow)
		if aerr != nil {
			return nil, aerr
		}
		fibers = append(fibers, ref)
		a.trackFiber(ref, +1)
	}
	if err = a.reserveEndpoint(req.A, req.Width); err != nil {
		return nil, err
	}
	reservedA = true
	if err = a.reserveEndpoint(req.B, req.Width); err != nil {
		return nil, err
	}
	reservedB = true

	link := a.evaluate(p, segs, fibers)
	if a.CheckBudget && !link.Feasible {
		return nil, fmt.Errorf("route: circuit %d<->%d infeasible: %v", req.A, req.B, link)
	}

	a.programSwitches(req, p, now)
	c = &Circuit{
		ID:            a.nextID,
		A:             req.A,
		B:             req.B,
		Width:         req.Width,
		EstablishedAt: now,
		ReadyAt:       now + phy.ReconfigLatency,
		Link:          link,
	}
	c.setPath(segs, fibers)
	a.nextID++
	a.circuits[c.ID] = c
	return c, nil
}

// Release tears down a circuit and returns its resources. Releasing a
// circuit this allocator does not currently hold — a double release,
// or a circuit belonging to a different allocator (a clone's, say) —
// is a no-op: fault-driven teardown can race a caller-driven one, and
// the loser must never corrupt the occupancy counts. The identity
// check is by pointer, not ID, so a clone's circuit with a coinciding
// ID cannot free this allocator's resources.
func (a *Allocator) Release(c *Circuit) {
	if cur, ok := a.circuits[c.ID]; !ok || cur != c {
		return
	}
	a.beginOp()
	defer a.endOp("release")
	delete(a.circuits, c.ID)
	for _, s := range c.Segments {
		a.rack.Wafer(s.Wafer).FreeBus(s.Ref)
	}
	for _, f := range c.Fibers {
		a.rack.FreeFiber(f)
		a.trackFiber(f, -1)
	}
	a.releaseEndpoint(c.A, c.Width)
	a.releaseEndpoint(c.B, c.Width)
}

// evaluate computes the circuit's optical budget: couplings at the
// endpoints, two MZI stages per switch traversed (endpoints plus one
// switch per turn), one crossing per pass-through tile and per turn
// (the signal crosses the orthogonal bus bundle), one reticle stitch
// per tile boundary, propagation over the Manhattan length, and one
// loss element per fiber hop.
func (a *Allocator) evaluate(p plan, segs []Segment, fibers []wafer.FiberRef) phy.LinkReport {
	cfg := a.rack.Config()
	// The element list is rebuilt for every candidate plan commit tries;
	// reuse the scratch buffer (Budget.Evaluate does not retain it).
	elems := a.scratch.elems[:0]
	defer func() { a.scratch.elems = elems }()
	elems = append(elems, a.loss.Coupling(), a.loss.Coupling())
	switches := 2 + p.turns
	for i := 0; i < switches; i++ {
		elems = append(elems, a.loss.MZIPass(), a.loss.MZIPass())
	}
	//lightpath:hotloop
	for _, s := range segs {
		length := s.Ref.Span.Hi - s.Ref.Span.Lo
		for b := 0; b < length; b++ {
			elems = append(elems, a.loss.Stitch())
		}
		if through := length - 1; through > 0 {
			for t := 0; t < through; t++ {
				elems = append(elems, a.loss.Crossing())
			}
		}
		elems = append(elems, a.loss.Propagation(unit.Meters(length)*cfg.TileEdge))
		// Fault-induced degradation on the span (chaos engine's
		// waveguide faults) is charged like any other loss element, so
		// a degraded-but-surviving path is accepted exactly when its
		// budget still closes.
		if extra := a.rack.Wafer(s.Wafer).SpanExtraLossDB(s.Ref.Orient, s.Ref.Lane, s.Ref.Span); extra > 0 {
			elems = append(elems, phy.LossElement{Kind: phy.LossDefect, DB: unit.Decibel(extra)})
		}
	}
	for t := 0; t < p.turns; t++ {
		elems = append(elems, a.loss.Crossing())
	}
	for range fibers {
		elems = append(elems, a.loss.FiberHop())
	}
	return a.Budget.Evaluate(elems)
}

// switchUse pairs a tile with the switch index a plan programs there.
type switchUse struct {
	tile *wafer.Tile
	sw   int
}

// planSwitches lists the switches a plan needs to program: switch 0 at
// each endpoint tile (facing the Tx/Rx block) and switch 1 at each
// turn tile, where one step ends and the next begins. commit checks
// these for stuck-state health before allocating, and programSwitches
// drives them after.
// The returned slice lives in the allocator's scratch and is valid
// only until the next planSwitches call.
func (a *Allocator) planSwitches(req Request, p plan) []switchUse {
	uses := a.scratch.uses[:0]
	defer func() { a.scratch.uses = uses }()
	uses = append(uses,
		switchUse{tile: a.rack.TileOf(req.A), sw: 0},
		switchUse{tile: a.rack.TileOf(req.B), sw: 0},
	)
	//lightpath:hotloop
	for i := range p.steps {
		if i == 0 {
			continue
		}
		st := p.steps[i]
		var row, col int
		if st.o == wafer.Horizontal {
			row = st.lane
			col = clampToSpan(p.steps[i-1], st)
		} else {
			col = st.lane
			row = clampToSpan(p.steps[i-1], st)
		}
		uses = append(uses, switchUse{tile: a.rack.Wafer(st.wafer).Tile(row, col), sw: 1})
	}
	return uses
}

// programSwitches drives the plan's MZI switches toward the circuit's
// buses. The concrete port assignment is cosmetic for the simulation;
// what matters is that the settle clock starts, making ReadyAt =
// now + 3.7 us observable hardware state. commit verified the switches
// are healthy, so Program cannot fail here.
func (a *Allocator) programSwitches(req Request, p plan, now unit.Seconds) {
	for i, su := range a.planSwitches(req, p) {
		port := 1
		if i < 2 {
			// The endpoint switch routes the Tx/Rx block to the bus.
			port = 0
		}
		_ = su.tile.Switches[su.sw].Program(port, now)
	}
}

// clampToSpan picks the junction coordinate between two consecutive
// steps; when the steps are on different wafers (a fiber hop) the
// junction is the new span's entry edge.
func clampToSpan(prev, cur planStep) int {
	return junction(prev.wafer, prev.lane, cur.wafer, cur.span)
}

// junction is the step-junction rule on primitive fields, shared by
// the plan-time switch listing and the segment-time reconstruction in
// CircuitSwitches: the previous step's lane is a position along the
// current span, clamped to it; a wafer change enters at the span's low
// edge.
func junction(prevWafer, prevLane, curWafer int, curSpan wafer.Interval) int {
	if prevWafer != curWafer {
		return curSpan.Lo
	}
	if prevLane < curSpan.Lo {
		return curSpan.Lo
	}
	if prevLane > curSpan.Hi {
		return curSpan.Hi
	}
	return prevLane
}

// SwitchExpectation pairs a tile with the switch index a circuit's
// path programs there and the port it must be routed to.
type SwitchExpectation struct {
	Tile   *wafer.Tile
	Switch int
	Port   int
}

// CircuitSwitches reconstructs, from a circuit's committed segments,
// the switch programming its path required: switch 0 routed to port 0
// at each endpoint tile (facing the Tx/Rx block) and switch 1 routed
// to port 1 at each turn tile. Segments mirror the committed plan's
// steps one-to-one in path order, so the reconstruction is exact; the
// invariant auditor compares it against the hardware's actual switch
// state.
func (a *Allocator) CircuitSwitches(c *Circuit) []SwitchExpectation {
	return a.AppendCircuitSwitches(nil, c)
}

// AppendCircuitSwitches appends c's expected switch states to dst and
// returns the extended slice — CircuitSwitches without the per-call
// allocation, for the audit hot path.
func (a *Allocator) AppendCircuitSwitches(dst []SwitchExpectation, c *Circuit) []SwitchExpectation {
	out := append(dst,
		SwitchExpectation{Tile: a.rack.TileOf(c.A), Switch: 0, Port: 0},
		SwitchExpectation{Tile: a.rack.TileOf(c.B), Switch: 0, Port: 0},
	)
	for i := 1; i < len(c.Segments); i++ {
		prev, cur := c.Segments[i-1], c.Segments[i]
		var row, col int
		if cur.Ref.Orient == wafer.Horizontal {
			row = cur.Ref.Lane
			col = junction(prev.Wafer, prev.Ref.Lane, cur.Wafer, cur.Ref.Span)
		} else {
			col = cur.Ref.Lane
			row = junction(prev.Wafer, prev.Ref.Lane, cur.Wafer, cur.Ref.Span)
		}
		out = append(out, SwitchExpectation{Tile: a.rack.Wafer(cur.Wafer).Tile(row, col), Switch: 1, Port: 1})
	}
	return out
}

// FiberRowUsage returns the allocator's occupancy-mirror count for one
// trunk row — how many fibers it believes are in use there. The
// invariant auditor cross-checks this against the rack's ground truth.
func (a *Allocator) FiberRowUsage(trunk, row int) int {
	return a.fibersUsed[fiberRowKey{trunk: trunk, row: row}]
}

func (a *Allocator) reserveEndpoint(chip, width int) error {
	return a.rack.TileOf(chip).Reserve(width)
}

func (a *Allocator) releaseEndpoint(chip, width int) {
	a.rack.TileOf(chip).Release(width)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
