package route

import (
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// BatchOutcome summarizes establishing a set of circuit requests.
type BatchOutcome struct {
	Circuits []*Circuit
	Failed   []Request
	// Attempts counts commit attempts, including conflicts; the
	// centralized allocator's global view needs ~1 per request, the
	// decentralized one pays extra attempts for optimistic conflicts.
	Attempts int
	// Rounds is the number of proposal rounds (1 for centralized).
	Rounds int
}

// EstablishBatch establishes the requests sequentially with the
// allocator's global view — the centralized controller of §5.
func (a *Allocator) EstablishBatch(reqs []Request, now unit.Seconds) BatchOutcome {
	out := BatchOutcome{Rounds: 1}
	for _, req := range reqs {
		out.Attempts++
		c, err := a.Establish(req, now)
		if err != nil {
			out.Failed = append(out.Failed, req)
			continue
		}
		out.Circuits = append(out.Circuits, c)
	}
	return out
}

// Decentralized simulates per-tile circuit establishment without a
// central controller (§5 "Decentralized algorithms"): in each round,
// every pending request independently proposes its next candidate
// path — computed from the round-start view of the fabric — and the
// proposals commit in arbitrary (randomized) order. Proposals that
// lose a resource race fail, advance to their next candidate, and
// retry next round. The extra Attempts relative to the centralized
// allocator measure the cost of decentralization.
type Decentralized struct {
	// Alloc owns the hardware state; Decentralized only schedules
	// commit attempts against it.
	Alloc *Allocator
	// MaxRounds bounds retries; requests still pending after that
	// many rounds are reported failed.
	MaxRounds int

	rand *rng.Rand
}

// NewDecentralized wraps an allocator. A nil stream fixes the round
// ordering to request order (deterministic worst-case contention).
func NewDecentralized(a *Allocator, r *rng.Rand) *Decentralized {
	return &Decentralized{Alloc: a, MaxRounds: 16, rand: r}
}

// EstablishBatch runs the optimistic rounds.
func (d *Decentralized) EstablishBatch(reqs []Request, now unit.Seconds) BatchOutcome {
	type pending struct {
		req       Request
		candidate int
	}
	var queue []pending
	for _, r := range reqs {
		queue = append(queue, pending{req: r})
	}

	var out BatchOutcome
	for round := 0; round < d.MaxRounds && len(queue) > 0; round++ {
		out.Rounds++
		// Each pending request proposes its current candidate based on
		// the round-start view.
		type proposal struct {
			pending
			plan plan
			ok   bool
		}
		proposals := make([]proposal, len(queue))
		for i, p := range queue {
			plans := d.Alloc.candidatePlans(p.req.A, p.req.B)
			if p.candidate < len(plans) {
				proposals[i] = proposal{pending: p, plan: plans[p.candidate], ok: true}
			} else {
				proposals[i] = proposal{pending: p}
			}
		}
		// Commit in randomized order: no coordination between tiles.
		order := make([]int, len(proposals))
		for i := range order {
			order[i] = i
		}
		if d.rand != nil {
			d.rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var next []pending
		for _, i := range order {
			pr := proposals[i]
			if !pr.ok {
				out.Failed = append(out.Failed, pr.req)
				continue
			}
			out.Attempts++
			c, err := d.Alloc.commit(pr.req, pr.plan, now)
			if err != nil {
				next = append(next, pending{req: pr.req, candidate: pr.candidate + 1})
				continue
			}
			out.Circuits = append(out.Circuits, c)
		}
		queue = next
	}
	for _, p := range queue {
		out.Failed = append(out.Failed, p.req)
	}
	return out
}

// FailFiberRow marks every fiber of one trunk row as failed — a cut
// bundle. In-flight circuits using the row are torn down and
// returned so the caller can re-establish them over surviving rows
// (§5, "dynamically reconfiguring the network in real-time, ensuring
// continued operation despite faults").
func (a *Allocator) FailFiberRow(trunk, row int) []*Circuit {
	a.beginOp()
	defer a.endOp("fail-fiber-row")
	a.bumpPlanEpoch()
	key := fiberRowKey{trunk: trunk, row: row}
	if a.failedRows == nil {
		a.failedRows = make(map[fiberRowKey]bool)
	}
	a.failedRows[key] = true

	var affected []*Circuit
	for _, c := range a.Circuits() {
		for _, f := range c.Fibers {
			if f.Trunk == trunk && f.Row == row {
				affected = append(affected, c)
				break
			}
		}
	}
	for _, c := range affected {
		a.Release(c)
	}
	return affected
}

// RestoreFiberRow returns a previously cut trunk row to service:
// subsequent establishes may allocate its fibers again. Restoring a
// row that is not failed is a no-op. Torn-down circuits are not
// re-established here — that is the recovery loop's decision.
func (a *Allocator) RestoreFiberRow(trunk, row int) {
	a.beginOp()
	defer a.endOp("restore-fiber-row")
	a.bumpPlanEpoch()
	delete(a.failedRows, fiberRowKey{trunk: trunk, row: row})
}

// RowFailed reports whether a trunk row has been marked failed.
func (a *Allocator) RowFailed(trunk, row int) bool {
	return a.failedRows[fiberRowKey{trunk: trunk, row: row}]
}

// rowUsable reports whether row survives on every trunk of the path.
func (a *Allocator) rowUsable(row int, trunks []int) bool {
	for _, tr := range trunks {
		if a.failedRows[fiberRowKey{trunk: tr, row: row}] {
			return false
		}
	}
	return true
}

// SpareFullRows counts trunk rows (over the given trunk) with no
// fiber in use and no failure — fully spare capacity available for
// repair. The fiber-packing ablation compares this between packing
// policies.
func (a *Allocator) SpareFullRows(trunk int) int {
	cfg := a.rack.Config()
	n := 0
	for row := 0; row < cfg.Rows; row++ {
		key := fiberRowKey{trunk: trunk, row: row}
		if a.fibersUsed[key] == 0 && !a.failedRows[key] {
			n++
		}
	}
	return n
}
