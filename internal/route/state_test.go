package route

import (
	"errors"
	"testing"

	"lightpath/internal/chaos"
	"lightpath/internal/rng"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// scrambledAllocator builds an allocator with a stochastic loss model
// and walks it through enough history to dirty every piece of state
// the snapshot covers: live circuits, a released one, fiber usage, a
// degraded waveguide, a severed trunk row, and an advanced RNG stream.
func scrambledAllocator(t *testing.T) *Allocator {
	t.Helper()
	a := NewAllocator(twoWaferRack(t), rng.New(42))
	for _, req := range []Request{
		{A: 0, B: 11, Width: 4},
		{A: 3, B: 40, Width: 2}, // cross-wafer: uses trunk fibers
		{A: 16, B: 27, Width: 4},
	} {
		if _, err := a.Establish(req, 5*unit.Second); err != nil {
			t.Fatalf("establish %+v: %v", req, err)
		}
	}
	victim, err := a.Establish(Request{A: 5, B: 14, Width: 2}, 6*unit.Second)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(victim) // leaves a hole in the ID space
	for _, f := range []chaos.Fault{
		{Time: 7 * unit.Second, Class: chaos.WaveguideLoss, Wafer: 0, Horizontal: true, Lane: 1, Pos: 2, ExtraLossDB: 1.5},
		{Time: 8 * unit.Second, Class: chaos.FiberCut, Trunk: 0, Row: 1},
		{Time: 9 * unit.Second, Class: chaos.LaserDeath, Chip: 9},
	} {
		if _, err := a.ApplyFault(f); err != nil {
			t.Fatalf("fault %v: %v", f, err)
		}
	}
	return a
}

func encodeAllocator(a *Allocator) []byte {
	var e snapshot.Encoder
	a.EncodeState(&e)
	return e.Bytes()
}

func TestAllocatorStateRoundTrip(t *testing.T) {
	orig := scrambledAllocator(t)
	payload := encodeAllocator(orig)

	// Restore into a fresh allocator over fresh hardware. Seed the
	// restored loss stream differently on purpose: the snapshot must
	// overwrite it.
	restored := NewAllocator(twoWaferRack(t), rng.New(999))
	d := snapshot.NewDecoder(payload)
	if err := restored.RestoreState(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	// Re-encoding the restored allocator must reproduce the payload
	// bit for bit — the byte-identical-resume contract.
	if got := encodeAllocator(restored); string(got) != string(payload) {
		t.Fatalf("re-encoded state differs: %d bytes vs %d", len(got), len(payload))
	}

	// The two allocators must now behave identically, stochastic loss
	// draws included.
	co, err1 := orig.Establish(Request{A: 33, B: 62, Width: 2}, 10*unit.Second)
	cr, err2 := restored.Establish(Request{A: 33, B: 62, Width: 2}, 10*unit.Second)
	if err1 != nil || err2 != nil {
		t.Fatalf("post-restore establish: orig err %v, restored err %v", err1, err2)
	}
	if co.ID != cr.ID {
		t.Fatalf("post-restore circuit IDs diverge: %d vs %d", co.ID, cr.ID)
	}
	if co.Link.TotalLossDB != cr.Link.TotalLossDB || co.Link.BER != cr.Link.BER {
		t.Fatalf("post-restore link reports diverge: %+v vs %+v", co.Link, cr.Link)
	}
	if string(encodeAllocator(orig)) != string(encodeAllocator(restored)) {
		t.Fatal("states diverge after identical post-restore mutation")
	}
}

func TestCircuitByIDReturnsAllocatorPointer(t *testing.T) {
	a := scrambledAllocator(t)
	payload := encodeAllocator(a)
	restored := NewAllocator(twoWaferRack(t), rng.New(0))
	if err := restored.RestoreState(snapshot.NewDecoder(payload)); err != nil {
		t.Fatal(err)
	}
	for _, c := range restored.Circuits() {
		got, ok := restored.CircuitByID(c.ID)
		if !ok || got != c {
			t.Fatalf("CircuitByID(%d) = %p, want the allocator's own %p", c.ID, got, c)
		}
	}
	// Releasing through the looked-up pointer must actually free
	// resources — Release compares pointer identity.
	c := restored.Circuits()[0]
	got, _ := restored.CircuitByID(c.ID)
	restored.Release(got)
	if _, still := restored.CircuitByID(c.ID); still {
		t.Fatal("circuit still registered after release via CircuitByID pointer")
	}
}

func TestAllocatorRestoreRejectsCorruption(t *testing.T) {
	payload := encodeAllocator(scrambledAllocator(t))
	// Every truncation must surface ErrCorruptSnapshot — either from a
	// decode failure or from a geometry/consistency check — and never
	// panic.
	for cut := 0; cut < len(payload); cut += 7 {
		restored := NewAllocator(twoWaferRack(t), rng.New(0))
		d := snapshot.NewDecoder(payload[:cut])
		err := restored.RestoreState(d)
		if err == nil {
			err = d.Finish()
		}
		if !errors.Is(err, snapshot.ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptSnapshot", cut, err)
		}
	}
}

func TestRackRestoreRejectsGeometryMismatch(t *testing.T) {
	var e snapshot.Encoder
	scrambledAllocator(t).Rack().EncodeState(&e)
	small, err := wafer.NewRack(wafer.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.RestoreState(snapshot.NewDecoder(e.Bytes())); !errors.Is(err, snapshot.ErrCorruptSnapshot) {
		t.Fatalf("wafer-count mismatch: err = %v, want ErrCorruptSnapshot", err)
	}
}
