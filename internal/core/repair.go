package core

import (
	"lightpath/internal/failure"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// RepairComparison is the outcome of handling one chip failure both
// ways (§4.2).
type RepairComparison struct {
	// ElectricalPossible reports whether a congestion-free electrical
	// repair exists; ElectricalPlan holds either that plan or the
	// best congested diagnostic.
	ElectricalPossible bool
	ElectricalPlan     *failure.ElectricalPlan
	// OpticalPlan is the circuit-based repair (nil only on error).
	OpticalPlan *failure.OpticalPlan
	// OpticalReadyIn is how long after the failure the repaired rings
	// can resume (circuit establishment + MZI settling).
	OpticalReadyIn unit.Seconds
}

// CompareRepair fails the given local chip of the given rack
// allocation and attempts both repair strategies. The fabric's
// logical torus geometry is used for every rack.
func (f *Fabric) CompareRepair(allocs []*torus.Allocation, rack, failedChip, circuitWidth int) (*RepairComparison, error) {
	elecFabric, err := failure.NewFabric(f.torus, allocs, f.torus.Dims()-1)
	if err != nil {
		return nil, err
	}
	out := &RepairComparison{}
	plan, err := elecFabric.ElectricalRepair(rack, failedChip, 16)
	switch {
	case err == nil:
		out.ElectricalPossible = true
		out.ElectricalPlan = plan
	case plan != nil:
		out.ElectricalPlan = plan
	}

	// A fresh fabric for the optical attempt (ElectricalRepair marked
	// the chip failed; OpticalRepair does too, idempotently, but the
	// search state should not leak between strategies).
	optFabric, err := failure.NewFabric(f.torus, allocs, f.torus.Dims()-1)
	if err != nil {
		return nil, err
	}
	optPlan, err := optFabric.OpticalRepair(rack, failedChip, circuitWidth, 0, f.rand.Split("repair").Uint64())
	if err != nil {
		return nil, err
	}
	out.OpticalPlan = optPlan
	out.OpticalReadyIn = optPlan.ReadyAt
	return out, nil
}

// BlastRadius compares the two fault policies on a TPUv4-scale
// cluster (§4.2's headline).
func BlastRadius() failure.BlastRadiusStats {
	return failure.SweepBlastRadius(torus.NewTPUv4Cluster())
}
