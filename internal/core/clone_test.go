package core

import (
	"testing"

	"lightpath/internal/route"
)

// establishSome drives a fixed circuit sequence and returns the total
// optical loss across the established circuits — a fingerprint that
// covers pathfinding, occupancy, and the stochastic stitch-loss
// stream.
func establishSome(t *testing.T, f *Fabric) float64 {
	t.Helper()
	total := 0.0
	for _, pair := range [][2]int{{0, 9}, {3, 40}, {17, 55}, {2, 6}} {
		c, err := f.Circuits().Establish(route.Request{A: pair[0], B: pair[1], Width: 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(c.Link.TotalLossDB)
	}
	return total
}

// TestFabricCloneEquivalentToNew: cloning a pristine fabric must be
// indistinguishable from constructing a fresh one with the same seed —
// the property that lets campaigns build once and clone per trial.
func TestFabricCloneEquivalentToNew(t *testing.T) {
	build := func() *Fabric {
		f, err := New(Options{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	proto := build()
	fresh := build()
	clone := proto.Clone()

	want := establishSome(t, fresh)
	got := establishSome(t, clone)
	if got != want {
		t.Fatalf("clone total loss %v dB, fresh fabric %v dB", got, want)
	}
	// The prototype must be untouched by the clone's activity.
	if n := len(proto.Circuits().Circuits()); n != 0 {
		t.Fatalf("prototype gained %d circuits from its clone", n)
	}
	if h := proto.Hardware().Health(); h.FailedChips != 0 {
		t.Fatalf("prototype health changed: %v", h)
	}
	// And a second clone of the same prototype replays identically.
	if again := establishSome(t, proto.Clone()); again != want {
		t.Fatalf("second clone total loss %v dB, want %v", again, want)
	}
}

// TestFabricCloneIsolation: faults applied to a clone never reach the
// original fabric.
func TestFabricCloneIsolation(t *testing.T) {
	f, err := New(Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	establishSome(t, f)
	c := f.Clone()
	if got, want := len(c.Circuits().Circuits()), len(f.Circuits().Circuits()); got != want {
		t.Fatalf("clone has %d circuits, want %d", got, want)
	}
	c.Hardware().TileOf(9).FailChip()
	for _, circ := range c.Circuits().Circuits() {
		c.Circuits().Release(circ)
	}
	if !f.Hardware().TileOf(9).ChipHealthy() {
		t.Fatal("chip failure leaked from clone to original")
	}
	if got := len(f.Circuits().Circuits()); got != 4 {
		t.Fatalf("original lost circuits to the clone's release: %d left", got)
	}
}
