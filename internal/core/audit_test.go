package core

import (
	"fmt"
	"os"
	"testing"

	"lightpath/internal/invariant"
)

// TestMain raises the process-wide audit mode to Paranoid, so every
// fabric any test here builds (New and Clone alike) carries an
// auditor that re-checks the full invariant registry after each
// circuit mutation — recovery loops, MoE churn, chaos trials, all of
// it. The process-wide tally is asserted empty at exit.
func TestMain(m *testing.M) {
	invariant.SetDefaultMode(invariant.Paranoid)
	code := m.Run()
	if n := invariant.GlobalCount(); n > 0 && code == 0 {
		fmt.Fprintf(os.Stderr, "invariant auditor recorded %d violation(s) during the test run; first: %s\n",
			n, invariant.GlobalViolations()[0])
		code = 1
	}
	os.Exit(code)
}
