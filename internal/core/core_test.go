package core

import (
	"math"
	"strings"
	"testing"

	"lightpath/internal/alloc"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// routeRequest builds a circuit request (helper keeps test sites terse).
func routeRequest(a, b, width int) route.Request {
	return route.Request{A: a, B: b, Width: width}
}

func newFabric(t *testing.T) *Fabric {
	t.Helper()
	f, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewDefaults(t *testing.T) {
	f := newFabric(t)
	if f.Torus().Size() != 64 {
		t.Fatalf("torus = %d chips", f.Torus().Size())
	}
	if f.Hardware().NumWafers() != 2 {
		t.Fatalf("wafers = %d, want 2 for 64 chips", f.Hardware().NumWafers())
	}
	if f.Params().PhysDims != 3 {
		t.Fatal("default cost params missing")
	}
	if f.Circuits() == nil {
		t.Fatal("no allocator")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{RackShape: torus.Shape{0}}); err == nil {
		t.Fatal("bad shape accepted")
	}
}

// TestPlanAllReduceSlice1 exercises the Table 1 path through the
// public planner: a Slice-1-like tenant in the Figure 5b rack gets
// the snake ring and a ~3x optical speedup at large buffers.
func TestPlanAllReduceSlice1(t *testing.T) {
	f := newFabric(t)
	_, a, err := alloc.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.PlanAllReduce(a, 0, 64*unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "snake-ring" || plan.ActiveDims != 1 {
		t.Fatalf("algorithm = %s/%d", plan.Algorithm, plan.ActiveDims)
	}
	if s := plan.Speedup(); s < 2.7 || s > 3.05 {
		t.Fatalf("speedup = %.2f, want ~3x", s)
	}
	if plan.Optical.Reconfigs == 0 {
		t.Fatal("optical plan has no reconfigurations")
	}
	if plan.Electrical.Reconfigs != 0 {
		t.Fatal("electrical plan charged reconfigurations")
	}
}

// TestPlanAllReduceSlice3 exercises the Table 2 path: the bucket
// algorithm with a ~1.5x optical advantage.
func TestPlanAllReduceSlice3(t *testing.T) {
	f := newFabric(t)
	_, a, err := alloc.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.PlanAllReduce(a, 2, 64*unit.MB) // Slice-3
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "bucket" || plan.ActiveDims != 2 {
		t.Fatalf("algorithm = %s/%d", plan.Algorithm, plan.ActiveDims)
	}
	if s := plan.Speedup(); s < 1.4 || s > 1.55 {
		t.Fatalf("speedup = %.2f, want ~1.5x", s)
	}
}

func TestPlanAllReduceValidation(t *testing.T) {
	f := newFabric(t)
	_, a, _ := alloc.Fig5b()
	if _, err := f.PlanAllReduce(a, 9, unit.MB); err == nil {
		t.Fatal("bad slice index accepted")
	}
}

// TestUtilizationReportFig5c is the Figure 5c series through the
// public API.
func TestUtilizationReportFig5c(t *testing.T) {
	_, a, err := alloc.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	rep := UtilizationReport(a)
	want := map[string]float64{
		"Slice-1": 1.0 / 3, "Slice-2": 1.0 / 3,
		"Slice-3": 2.0 / 3, "Slice-4": 2.0 / 3,
	}
	for _, r := range rep {
		if math.Abs(r.Electrical-want[r.Slice]) > 1e-12 {
			t.Errorf("%s electrical = %v, want %v", r.Slice, r.Electrical, want[r.Slice])
		}
		if r.Optical != 1 {
			t.Errorf("%s optical = %v, want 1", r.Slice, r.Optical)
		}
	}
}

func TestCompareRepairFig6a(t *testing.T) {
	f := newFabric(t)
	sc, err := alloc.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := f.CompareRepair([]*torus.Allocation{sc.Alloc}, 0, sc.FailedChip, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ElectricalPossible {
		t.Fatal("electrical repair should be impossible in Figure 6a")
	}
	if cmp.ElectricalPlan == nil || cmp.ElectricalPlan.Congestion == 0 {
		t.Fatal("diagnostic plan missing or claims no congestion")
	}
	if cmp.OpticalPlan == nil || !cmp.OpticalPlan.Disjoint() {
		t.Fatal("optical repair missing or overlapping")
	}
	if cmp.OpticalReadyIn != 3.7*unit.Microsecond {
		t.Fatalf("optical ready in %v, want 3.7us", cmp.OpticalReadyIn)
	}
}

func TestBlastRadiusHeadline(t *testing.T) {
	stats := BlastRadius()
	if stats.Ratio != 16 {
		t.Fatalf("blast radius shrinkage = %v, want 16x", stats.Ratio)
	}
}

func TestRunMoEDefaults(t *testing.T) {
	f := newFabric(t)
	res, err := f.RunMoE(DefaultMoEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 64 {
		t.Fatalf("batches = %d", res.Batches)
	}
	if res.NewCircuits == 0 {
		t.Fatal("no circuits established")
	}
	if res.ReusedCircuits == 0 {
		t.Fatal("cache never hit across 64 batches")
	}
	if res.Makespan <= 0 || res.TransferTime <= 0 {
		t.Fatalf("times: %+v", res)
	}
	// With 4 MB per expert at 224 Gbps, transfers dominate: the
	// reconfiguration overhead must be small (§5's trade-off leans
	// toward transfer for inference-sized payloads).
	if frac := res.OverheadFraction(); frac > 0.05 {
		t.Fatalf("reconfig overhead = %.3f, want < 5%%", frac)
	}
}

func TestRunMoEReproducible(t *testing.T) {
	f1, _ := New(Options{Seed: 7})
	f2, _ := New(Options{Seed: 7})
	r1, err := f1.RunMoE(DefaultMoEConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f2.RunMoE(DefaultMoEConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.NewCircuits != r2.NewCircuits || r1.Makespan != r2.Makespan {
		t.Fatalf("nondeterministic MoE: %+v vs %+v", r1, r2)
	}
}

func TestRunMoESkewCreatesHotExpertPressure(t *testing.T) {
	f1, _ := New(Options{Seed: 9})
	uniform := DefaultMoEConfig()
	uniform.Batches = 16
	ru, err := f1.RunMoE(uniform)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := New(Options{Seed: 9})
	skewed := uniform
	skewed.Skew = 0.9
	rs, err := f2.RunMoE(skewed)
	if err != nil {
		t.Fatal(err)
	}
	// A hot expert concentrates fan-in on one tile, whose 16 lasers
	// cannot terminate ~30 simultaneous circuits: the runtime must
	// serialize into waves, evicting and re-establishing circuits —
	// the decentralized-allocation pressure §5 warns about.
	if rs.Evictions <= ru.Evictions {
		t.Fatalf("skewed evictions %d <= uniform %d", rs.Evictions, ru.Evictions)
	}
	if rs.Makespan <= ru.Makespan {
		t.Fatalf("skewed makespan %v <= uniform %v; hot expert should serialize", rs.Makespan, ru.Makespan)
	}
}

func TestRunMoEValidation(t *testing.T) {
	f := newFabric(t)
	bad := []MoEConfig{
		{Chips: 1, Experts: 1, TopK: 1, CircuitWidth: 1},
		{Chips: 1 << 20, Experts: 1, TopK: 1, CircuitWidth: 1},
		{Chips: 8, Experts: 0, TopK: 1, CircuitWidth: 1},
		{Chips: 8, Experts: 4, TopK: 5, CircuitWidth: 1},
		{Chips: 8, Experts: 4, TopK: 2, CircuitWidth: 0},
	}
	for i, cfg := range bad {
		if _, err := f.RunMoE(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestRunMoEEviction forces endpoint-port scarcity and checks the
// cache evicts rather than failing.
func TestRunMoEEviction(t *testing.T) {
	f := newFabric(t)
	cfg := MoEConfig{
		Chips:          16,
		Experts:        16,
		TopK:           8,
		Batches:        24,
		BytesPerExpert: unit.MB,
		CircuitWidth:   2, // 16 lasers / width 2 = 8 endpoints per tile
	}
	res, err := f.RunMoE(cfg)
	if err != nil {
		t.Fatalf("MoE under scarcity failed: %v", err)
	}
	if res.Evictions == 0 {
		t.Fatal("expected evictions under port scarcity")
	}
}

func TestPlanAllToAll(t *testing.T) {
	f := newFabric(t)
	_, a, err := alloc.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	// Slice-3 (4x4x1, 16 chips), 32 MB per chip: beta-dominated, so
	// the photonic fabric wins despite 15 reprogram steps.
	plan, err := f.PlanAllToAll(a, 2, 32*unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != "all-to-all" {
		t.Fatalf("algorithm = %s", plan.Algorithm)
	}
	if plan.Schedule.NumSteps() != 15 || plan.Schedule.Reconfigs() != 15 {
		t.Fatalf("steps/reconfigs = %d/%d", plan.Schedule.NumSteps(), plan.Schedule.Reconfigs())
	}
	if plan.Speedup() <= 1.5 {
		t.Fatalf("speedup = %v at 32MB, want > 1.5", plan.Speedup())
	}
	// Tiny payloads: reconfiguration dominates, electrical wins.
	small, err := f.PlanAllToAll(a, 2, 16*unit.KB)
	if err != nil {
		t.Fatal(err)
	}
	if small.Speedup() >= 1 {
		t.Fatalf("small speedup = %v, want < 1", small.Speedup())
	}
}

func TestPlanAllToAllValidation(t *testing.T) {
	f := newFabric(t)
	_, a, _ := alloc.Fig5b()
	if _, err := f.PlanAllToAll(a, 9, unit.MB); err == nil {
		t.Fatal("bad slice index accepted")
	}
	tor := f.Torus()
	one, err := torus.NewAllocation(tor, []*torus.Slice{
		{Name: "one", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{1, 1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.PlanAllToAll(one, 0, unit.MB); err == nil {
		t.Fatal("1-chip all-to-all accepted")
	}
}

func TestStatusDashboard(t *testing.T) {
	f := newFabric(t)
	if _, err := f.Circuits().Establish(routeRequest(0, 40, 2), 0); err != nil {
		t.Fatal(err)
	}
	out := f.Status()
	for _, want := range []string{"wafer 0", "wafer 1", "fibers in use: 1", "circuits established: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status missing %q:\n%s", want, out)
		}
	}
}
