package core

import (
	"fmt"

	"lightpath/internal/collective"
	"lightpath/internal/netsim"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// PlanAllToAll plans an AllToAll over slice si of the allocation: each
// chip exchanges perChip bytes (split into uniform blocks) with every
// other chip of the slice — the §5 dynamic-traffic pattern. On the
// electrical torus each pair routes dimension-ordered over the
// direct-connect links, contending wherever paths overlap; on the
// photonic fabric every step's pairing gets dedicated circuits, at
// the price of reprogramming the MZIs each step.
func (f *Fabric) PlanAllToAll(a *torus.Allocation, si int, perChip unit.Bytes) (*CollectivePlan, error) {
	if si < 0 || si >= len(a.Slices()) {
		return nil, fmt.Errorf("core: slice index %d out of range", si)
	}
	s := a.Slices()[si]
	chips := s.Chips(f.torus)
	if len(chips) < 2 {
		return nil, fmt.Errorf("core: slice %q has %d chips; all-to-all needs 2+", s.Name, len(chips))
	}
	const elemBytes = 4
	n := int(perChip / elemBytes)
	if rem := n % len(chips); rem != 0 {
		n += len(chips) - rem
	}

	elecSched, err := collective.AllToAll(s.Name+"/a2a-elec", chips, n, elemBytes, false)
	if err != nil {
		return nil, err
	}
	optSched, err := collective.AllToAll(s.Name+"/a2a-opt", chips, n, elemBytes, true)
	if err != nil {
		return nil, err
	}

	plan := &CollectivePlan{Algorithm: "all-to-all", ActiveDims: 1, Schedule: optSched}
	if plan.Electrical, err = f.params.Electrical(elecSched); err != nil {
		return nil, err
	}
	if plan.Optical, err = f.params.Optical(optSched, 1); err != nil {
		return nil, err
	}
	pathOf := func(tr collective.Transfer) []torus.Link {
		return f.torus.DORPath(tr.From, tr.To)
	}
	linkBW := f.params.ChipBandwidth / unit.BitRate(f.params.PhysDims)
	if plan.ElectricalTime, err = f.exec.Electrical(elecSched, f.torus, linkBW, pathOf, netsim.ExecOptions{Alpha: f.params.Alpha}); err != nil {
		return nil, err
	}
	if plan.OpticalTime, err = f.exec.Optical(optSched, f.params.ChipBandwidth, netsim.ExecOptions{Alpha: f.params.Alpha, Reconfig: f.params.Reconfig}); err != nil {
		return nil, err
	}
	return plan, nil
}
