package core

import (
	"fmt"
	"sort"

	"lightpath/internal/route"
	"lightpath/internal/unit"
)

// This file implements the paper's §5 dynamic-traffic challenge:
// "developing algorithms for traffic patterns that are outside known
// collective operations, such as those required for Mixture of
// Experts (MoE) inference. MoE inference relies on a runtime gating
// function, necessitating dynamic programming of circuits."
//
// The workload: every batch, each participating chip's gating
// function picks k expert chips; tokens must move chip -> expert.
// Circuits are programmed on demand, cached across batches, and
// evicted when the tile's lasers or SerDes ports run out. The result
// quantifies the trade-off the paper highlights: reconfiguration
// delay (3.7 us per new circuit generation) versus transfer time.

// MoEConfig parameterizes the workload.
type MoEConfig struct {
	// Chips is the number of participating accelerators (token
	// holders; experts live on the same chips).
	Chips int
	// Experts is the number of expert-hosting chips (the first
	// Experts chips host one expert each).
	Experts int
	// TopK is how many experts each chip's gate selects per batch.
	TopK int
	// Batches is the number of inference batches to run.
	Batches int
	// BytesPerExpert is the token payload a chip sends to each
	// selected expert per batch.
	BytesPerExpert unit.Bytes
	// CircuitWidth is the wavelength count per circuit.
	CircuitWidth int
	// Skew biases the gate: with probability Skew a chip picks
	// expert 0 (a hot expert); otherwise uniform. 0 = uniform.
	Skew float64
}

// DefaultMoEConfig is a small MoE inference setting on one wafer
// pair: 32 chips, 8 experts, top-2 gating.
func DefaultMoEConfig() MoEConfig {
	return MoEConfig{
		Chips:          32,
		Experts:        8,
		TopK:           2,
		Batches:        64,
		BytesPerExpert: 4 * unit.MB,
		CircuitWidth:   1,
	}
}

// moePair identifies a (token source, expert) circuit.
type moePair struct{ src, dst int }

// MoEResult summarizes a run.
type MoEResult struct {
	Batches int
	// NewCircuits counts circuit establishments (cache misses);
	// ReusedCircuits counts hits.
	NewCircuits, ReusedCircuits int
	// Evictions counts circuits torn down to free endpoint resources.
	Evictions int
	// ReconfigTime is the total time spent waiting for MZIs to
	// settle; TransferTime is the total data movement time.
	ReconfigTime, TransferTime unit.Seconds
	// Makespan is the total simulated time.
	Makespan unit.Seconds
}

// OverheadFraction is the share of the makespan lost to
// reconfiguration — the §5 trade-off made measurable.
func (r *MoEResult) OverheadFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.ReconfigTime / r.Makespan)
}

// RunMoE executes the MoE workload on the fabric, managing circuits
// dynamically with an LRU-less direct cache: a circuit per
// (source, expert) pair lives until the source needs a different
// expert and has no free endpoint resources.
func (f *Fabric) RunMoE(cfg MoEConfig) (*MoEResult, error) {
	if cfg.Chips < 2 || cfg.Chips > f.rack.NumChips() {
		return nil, fmt.Errorf("core: MoE chips %d out of range [2, %d]", cfg.Chips, f.rack.NumChips())
	}
	if cfg.Experts < 1 || cfg.Experts > cfg.Chips {
		return nil, fmt.Errorf("core: MoE experts %d out of range [1, %d]", cfg.Experts, cfg.Chips)
	}
	if cfg.TopK < 1 || cfg.TopK > cfg.Experts {
		return nil, fmt.Errorf("core: MoE topK %d out of range [1, %d]", cfg.TopK, cfg.Experts)
	}
	if cfg.CircuitWidth < 1 {
		return nil, fmt.Errorf("core: MoE circuit width %d", cfg.CircuitWidth)
	}

	gate := f.rand.Split("moe-gate")
	cache := map[moePair]*route.Circuit{}
	res := &MoEResult{Batches: cfg.Batches}
	now := unit.Seconds(0)
	perWL := f.rack.Config().WavelengthCapacity

	for b := 0; b < cfg.Batches; b++ {
		// Gate: each chip selects TopK distinct experts.
		wanted := map[moePair]bool{}
		for chip := 0; chip < cfg.Chips; chip++ {
			selected := map[int]bool{}
			for len(selected) < cfg.TopK {
				var e int
				if cfg.Skew > 0 && gate.Float64() < cfg.Skew {
					e = 0
				} else {
					e = gate.Intn(cfg.Experts)
				}
				selected[e] = true
			}
			for e := range selected {
				if e == chip {
					continue // expert co-located with the tokens
				}
				wanted[moePair{src: chip, dst: e}] = true
			}
		}

		// Program circuits for the batch, in deterministic order so
		// resource assignment is reproducible under scarcity. A hot
		// expert may want more simultaneous circuits than its tile
		// has lasers/SerDes ports; pairs that cannot get a circuit
		// this wave are deferred to the next wave of the same batch —
		// the serialization a real runtime would apply.
		pending := make([]moePair, 0, len(wanted))
		for p := range wanted {
			pending = append(pending, p)
		}
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].src != pending[j].src {
				return pending[i].src < pending[j].src
			}
			return pending[i].dst < pending[j].dst
		})
		for len(pending) > 0 {
			waveWanted := map[moePair]bool{}
			var waveCircuits []*route.Circuit
			var deferred []moePair
			reconfigured := false
			for _, p := range pending {
				if c, ok := cache[p]; ok {
					res.ReusedCircuits++
					waveWanted[p] = true
					waveCircuits = append(waveCircuits, c)
					continue
				}
				c, err := f.establishWithEviction(p.src, p.dst, cfg.CircuitWidth, now, cache, waveWanted, res)
				if err != nil {
					deferred = append(deferred, p)
					continue
				}
				cache[p] = c
				waveWanted[p] = true
				waveCircuits = append(waveCircuits, c)
				res.NewCircuits++
				reconfigured = true
			}
			if len(waveCircuits) == 0 {
				return nil, fmt.Errorf("core: MoE batch %d: no circuit for %d pending pairs (width %d exceeds tile resources)",
					b, len(deferred), cfg.CircuitWidth)
			}
			if reconfigured {
				// All new MZIs settle in parallel: one reconfiguration
				// delay per wave that changed anything.
				res.ReconfigTime += f.params.Reconfig
				now += f.params.Reconfig
			}

			// Transfer: dedicated circuits, so the wave lasts as long
			// as the busiest source chip. Each source sends
			// BytesPerExpert per circuit, circuits in parallel
			// (separate wavelengths).
			var worst unit.Seconds
			perSrc := map[int]unit.Seconds{}
			for _, c := range waveCircuits {
				bw := c.Bandwidth(perWL)
				perSrc[c.A] += bw.TimeFor(cfg.BytesPerExpert)
			}
			for _, t := range perSrc {
				if t > worst {
					worst = t
				}
			}
			res.TransferTime += worst
			now += worst
			pending = deferred
		}
	}
	res.Makespan = now
	return res, nil
}

// establishWithEviction tries to establish src->dst, evicting cached
// circuits that are not wanted this batch when endpoint resources run
// out.
func (f *Fabric) establishWithEviction(src, dst, width int, now unit.Seconds, cache map[moePair]*route.Circuit, wanted map[moePair]bool, res *MoEResult) (*route.Circuit, error) {
	c, err := f.alloc.Establish(route.Request{A: src, B: dst, Width: width}, now)
	if err == nil {
		return c, nil
	}
	// Evict idle cached circuits — first those touching either
	// endpoint, then any — retrying after each. Keys are sorted so
	// eviction order (and therefore the whole run) is deterministic.
	keys := make([]moePair, 0, len(cache))
	for p := range cache {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, endpointOnly := range [2]bool{true, false} {
		for _, p := range keys {
			cached, ok := cache[p]
			if !ok || wanted[p] {
				continue
			}
			touches := p.src == src || p.dst == dst || p.src == dst || p.dst == src
			if endpointOnly && !touches {
				continue
			}
			f.alloc.Release(cached)
			delete(cache, p)
			res.Evictions++
			if c, err = f.alloc.Establish(route.Request{A: src, B: dst, Width: width}, now); err == nil {
				return c, nil
			}
		}
	}
	return nil, err
}
