package core

import (
	"strings"
	"testing"

	"lightpath/internal/alloc"
	"lightpath/internal/unit"
)

// chaosSetup builds the Figure 6a rack, its fabric, and the victim
// slice's chip list.
func chaosSetup(t *testing.T) (*Fabric, *alloc.Fig6aScenario, []int) {
	t.Helper()
	sc, err := alloc.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{RackShape: sc.Torus.Shape(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	chips := sc.Alloc.Slices()[1].Chips(sc.Torus)
	return f, sc, chips
}

// TestRunAllReduceUnderFaultAcceptance is the PR's acceptance gate: a
// chip dies mid-collective, the fabric recovers over optical circuits,
// and (a) the AllReduce still computes the exact reference result,
// (b) the optical repair lands within twice the analytic bound of one
// MZI settling interval, and (c) the stall set is strictly smaller
// than electrical rack migration's.
func TestRunAllReduceUnderFaultAcceptance(t *testing.T) {
	f, sc, chips := chaosSetup(t)
	victim := chips[len(chips)/2]
	out, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, victim, 3, DefaultChaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Correct {
		t.Fatal("interrupted AllReduce produced a wrong result")
	}
	if out.Replacement == victim || out.Replacement < 0 {
		t.Fatalf("replacement = %d", out.Replacement)
	}
	if out.RepairTime > 2*out.RepairBound {
		t.Fatalf("repair %v exceeds 2x the %v bound", out.RepairTime, out.RepairBound)
	}
	if d := float64(out.MTTR - (out.DetectTime + out.RepairTime)); d > 1e-12 || d < -1e-12 {
		t.Fatalf("MTTR %v != detect %v + repair %v", out.MTTR, out.DetectTime, out.RepairTime)
	}
	if out.StallOptical >= out.StallElectrical {
		t.Fatalf("optical stall set %d not strictly smaller than electrical %d",
			out.StallOptical, out.StallElectrical)
	}
	if out.StallOptical != len(chips) {
		t.Fatalf("optical stall set %d, want the %d-chip slice", out.StallOptical, len(chips))
	}
	if out.StallElectrical != sc.Torus.Size() {
		t.Fatalf("electrical stall set %d, want the %d-chip rack", out.StallElectrical, sc.Torus.Size())
	}
	if out.WastedBytes <= 0 {
		t.Fatal("mid-step failure wasted no bytes")
	}
	if out.GoodputFraction <= 0 || out.GoodputFraction >= 1 {
		t.Fatalf("goodput = %g", out.GoodputFraction)
	}
	if out.TotalTime <= out.CleanTime {
		t.Fatalf("faulted run (%v) not slower than clean run (%v)", out.TotalTime, out.CleanTime)
	}
	if out.StepsReplayed < 1 || out.StepsReplayed > out.StepsTotal {
		t.Fatalf("replayed %d of %d steps", out.StepsReplayed, out.StepsTotal)
	}
	if !strings.Contains(out.String(), "CORRECT") {
		t.Fatalf("outcome string %q", out.String())
	}
}

// TestRunAllReduceUnderFaultEveryStep kills the same victim at each
// schedule step in turn: recovery must be correct no matter how much
// of the collective already ran.
func TestRunAllReduceUnderFaultEveryStep(t *testing.T) {
	f, sc, chips := chaosSetup(t)
	plan, err := f.PlanAllReduce(sc.Alloc, 1, unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	steps := plan.Schedule.NumSteps()
	for step := 0; step < steps; step++ {
		fresh, err := New(Options{RackShape: sc.Torus.Shape(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		out, err := fresh.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[0], step, DefaultChaosPolicy())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !out.Correct {
			t.Fatalf("step %d: wrong result after recovery", step)
		}
		if out.StepsReplayed != steps-step {
			t.Fatalf("step %d: replayed %d, want %d", step, out.StepsReplayed, steps-step)
		}
	}
}

// TestRunAllReduceUnderFaultRejectsBadInputs covers the argument
// validation: foreign victims, out-of-range steps, degenerate policy.
func TestRunAllReduceUnderFaultRejectsBadInputs(t *testing.T) {
	f, sc, chips := chaosSetup(t)
	pol := DefaultChaosPolicy()
	if _, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, 1<<20, 0, pol); err == nil {
		t.Fatal("victim outside the collective accepted")
	}
	if _, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[0], -1, pol); err == nil {
		t.Fatal("negative fail step accepted")
	}
	if _, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[0], 1<<20, pol); err == nil {
		t.Fatal("out-of-range fail step accepted")
	}
	bad := pol
	bad.Detection = -1
	if _, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[0], 0, bad); err == nil {
		t.Fatal("negative detection accepted")
	}
	bad = pol
	bad.Width = 0
	if _, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[0], 0, bad); err == nil {
		t.Fatal("zero repair width accepted")
	}
}

// TestRunAllReduceUnderFaultDeterministic: the same fabric seed,
// victim and step reproduce the outcome bit for bit.
func TestRunAllReduceUnderFaultDeterministic(t *testing.T) {
	run := func() *ChaosOutcome {
		f, sc, chips := chaosSetup(t)
		out, err := f.RunAllReduceUnderFault(sc.Alloc, 1, unit.MB, chips[3], 2, DefaultChaosPolicy())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("outcomes diverged:\n%v\n%v", a, b)
	}
}
