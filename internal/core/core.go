// Package core is the paper's primary contribution assembled into one
// system: a server-scale photonic interconnect manager that plans
// collectives over tenant slices, decides how to redirect chip
// bandwidth by programming MZI switches (§4.1), establishes and tears
// down optical circuits (§3), repairs chip failures with
// non-overlapping circuits (§4.2), and serves dynamic traffic such as
// Mixture-of-Experts inference (§5).
//
// The public root package lightpath re-exports this API.
package core

import (
	"fmt"
	"strings"

	"lightpath/internal/collective"
	"lightpath/internal/cost"
	"lightpath/internal/invariant"
	"lightpath/internal/netsim"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
	"lightpath/internal/viz"
	"lightpath/internal/wafer"
)

// Options configures a Fabric.
type Options struct {
	// RackShape is the logical torus of the accelerators (default:
	// the TPUv4 4x4x4 cube).
	RackShape torus.Shape
	// Wafer is the LIGHTPATH hardware configuration (default:
	// wafer.DefaultConfig).
	Wafer wafer.Config
	// Cost is the alpha-beta-r model (default: cost.DefaultParams).
	Cost cost.Params
	// Seed drives every stochastic component (loss sampling, workload
	// generation); runs are reproducible given the seed.
	Seed uint64
}

// Fabric is a multi-accelerator server (or rack of servers) whose
// chips are interconnected by LIGHTPATH wafers.
type Fabric struct {
	torus  *torus.Torus
	rack   *wafer.Rack
	alloc  *route.Allocator
	params cost.Params
	rand   *rng.Rand
	// exec and interp reuse the fluid-simulator and schedule-interpreter
	// scratch across the many executions a fabric performs (planning,
	// chaos trials); stepChip is the per-step payload tally of the
	// fault runs. A Fabric is single-goroutine, like its rand;
	// campaigns clone per trial.
	exec   netsim.Executor
	interp collective.Interp
	// stepChipBytes/stepChipTouched tally one step's per-chip payload,
	// indexed by chip; only touched entries are reset between steps.
	stepChipBytes   []unit.Bytes
	stepChipTouched []int
}

// New builds a fabric. Zero-valued options take the paper's defaults.
func New(opts Options) (*Fabric, error) {
	if opts.RackShape == nil {
		opts.RackShape = torus.TPUv4RackShape
	}
	if opts.Wafer.Rows == 0 {
		opts.Wafer = wafer.DefaultConfig()
	}
	if opts.Cost.ChipBandwidth == 0 {
		opts.Cost = cost.DefaultParams()
	}
	if err := opts.RackShape.Validate(); err != nil {
		return nil, err
	}
	t := torus.New(opts.RackShape)
	wafers := (t.Size() + opts.Wafer.Tiles() - 1) / opts.Wafer.Tiles()
	hw, err := wafer.NewRack(opts.Wafer, wafers)
	if err != nil {
		return nil, err
	}
	r := rng.New(opts.Seed)
	alloc := route.NewAllocator(hw, r.Split("loss"))
	// Tests raise the process default to Paranoid, so every fabric they
	// build is continuously audited; production defaults to Off, which
	// keeps the hot path a nil hook check.
	if m := invariant.DefaultMode(); m != invariant.Off {
		invariant.Attach(alloc, m)
	}
	return &Fabric{
		torus:  t,
		rack:   hw,
		alloc:  alloc,
		params: opts.Cost,
		rand:   r,
	}, nil
}

// Torus returns the logical accelerator torus.
func (f *Fabric) Torus() *torus.Torus { return f.torus }

// Hardware returns the LIGHTPATH wafer rack.
func (f *Fabric) Hardware() *wafer.Rack { return f.rack }

// Circuits returns the circuit allocator for direct circuit
// management.
func (f *Fabric) Circuits() *route.Allocator { return f.alloc }

// Params returns the cost model in use.
func (f *Fabric) Params() cost.Params { return f.params }

// CollectivePlan compares one collective on the electrical
// direct-connect torus versus the photonic fabric.
type CollectivePlan struct {
	// Algorithm names the schedule chosen ("bucket" or "snake-ring").
	Algorithm string
	// ActiveDims is the number of ring dimensions the optical fabric
	// spreads the chip bandwidth across.
	ActiveDims int
	// Electrical and Optical are the analytic alpha-beta-r costs.
	Electrical, Optical cost.Cost
	// ElectricalTime and OpticalTime are the simulated end-to-end
	// completion times (netsim).
	ElectricalTime, OpticalTime unit.Seconds
	// Schedule is the optical schedule (with reconfiguration marks).
	Schedule *collective.Schedule
}

// Clone deep-copies the plan, including its schedule, so independent
// fault trials can each splice their own copy.
func (p *CollectivePlan) Clone() *CollectivePlan {
	q := *p
	q.Schedule = p.Schedule.Clone()
	return &q
}

// Speedup returns ElectricalTime / OpticalTime.
func (p *CollectivePlan) Speedup() float64 {
	if p.OpticalTime == 0 {
		return 0
	}
	return float64(p.ElectricalTime / p.OpticalTime)
}

// PlanAllReduce plans an AllReduce of bufferBytes over slice si of
// the allocation, choosing the algorithm the way §4.1 describes:
//
//   - If every active dimension of the slice is congestion-free, run
//     the multidimensional bucket algorithm; optics redirects the
//     unused physical dimensions' bandwidth across the slice's rings.
//   - Otherwise (a Slice-1-like tenant), run the single snake ring;
//     optics redirects the chip's entire egress onto it.
func (f *Fabric) PlanAllReduce(a *torus.Allocation, si int, bufferBytes unit.Bytes) (*CollectivePlan, error) {
	if si < 0 || si >= len(a.Slices()) {
		return nil, fmt.Errorf("core: slice index %d out of range", si)
	}
	s := a.Slices()[si]
	const elemBytes = 4 // float32 model gradients
	n := int(bufferBytes / elemBytes)
	if n < 1 {
		n = 1
	}

	usable := a.UsableDims(si, false)
	active := collective.ActiveDims(s)

	var (
		elecSched, optSched *collective.Schedule
		err                 error
		algorithm           string
		activeDims          int
	)
	switch {
	case len(active) > 0 && len(usable) == len(active):
		// Every active dimension is congestion-free: the bucket
		// algorithm, with the idle physical dimensions' bandwidth
		// statically redirected across the slice's rings (Table 2).
		algorithm = "bucket"
		activeDims = len(active)
		elecSched, err = collective.BucketAllReduce(s.Name+"/elec", f.torus, s, usable, n, elemBytes, collective.BucketOptions{})
		if err != nil {
			return nil, err
		}
		optSched, err = collective.BucketAllReduce(s.Name+"/opt", f.torus, s, usable, n, elemBytes, collective.BucketOptions{MarkReconfig: true})
		if err != nil {
			return nil, err
		}
	case snakePossible(s):
		// A Slice-1-like tenant: the single Hamiltonian ring, with
		// the whole chip egress redirected onto it (Table 1).
		algorithm = "snake-ring"
		activeDims = 1
		elecSched, err = collective.SnakeRingAllReduce(s.Name+"/elec", f.torus, s, n, elemBytes, collective.BucketOptions{})
		if err != nil {
			return nil, err
		}
		optSched, err = collective.SnakeRingAllReduce(s.Name+"/opt", f.torus, s, n, elemBytes, collective.BucketOptions{MarkReconfig: true})
		if err != nil {
			return nil, err
		}
	default:
		// A Slice-4-like tenant (three active dimensions, some on
		// shared lines): run the bucket over all active dimensions —
		// their rings close inside the slice (extent 2 or full) —
		// with a conservative static bandwidth split. The paper does
		// not price this case; it only shows its utilization bars.
		algorithm = "bucket-shared"
		activeDims = len(active)
		elecSched, err = collective.BucketAllReduce(s.Name+"/elec", f.torus, s, active, n, elemBytes, collective.BucketOptions{})
		if err != nil {
			return nil, err
		}
		optSched, err = collective.BucketAllReduce(s.Name+"/opt", f.torus, s, active, n, elemBytes, collective.BucketOptions{MarkReconfig: true})
		if err != nil {
			return nil, err
		}
	}

	plan := &CollectivePlan{Algorithm: algorithm, ActiveDims: activeDims, Schedule: optSched}
	if plan.Electrical, err = f.params.Electrical(elecSched); err != nil {
		return nil, err
	}
	if plan.Optical, err = f.params.Optical(optSched, activeDims); err != nil {
		return nil, err
	}
	linkBW := f.params.ChipBandwidth / unit.BitRate(f.params.PhysDims)
	if plan.ElectricalTime, err = f.exec.Electrical(elecSched, f.torus, linkBW, nil, netsim.ExecOptions{Alpha: f.params.Alpha}); err != nil {
		return nil, err
	}
	circuitBW := f.params.ChipBandwidth / unit.BitRate(activeDims)
	if plan.OpticalTime, err = f.exec.Optical(optSched, circuitBW, netsim.ExecOptions{Alpha: f.params.Alpha, Reconfig: f.params.Reconfig}); err != nil {
		return nil, err
	}
	return plan, nil
}

// snakePossible reports whether the slice admits a Hamiltonian snake
// ring (at most two non-trivial dimensions, one of them even or the
// slice 1-D realizable).
func snakePossible(s *torus.Slice) bool {
	nontrivial := 0
	hasEven := false
	for _, e := range s.Shape {
		if e > 1 {
			nontrivial++
			if e%2 == 0 {
				hasEven = true
			}
		}
	}
	return nontrivial >= 1 && nontrivial <= 2 && hasEven
}

// SliceUtilization is one bar pair of Figure 5c.
type SliceUtilization struct {
	Slice      string
	Electrical float64
	Optical    float64
}

// UtilizationReport computes Figure 5c for an allocation: per slice,
// the fraction of chip bandwidth usable electrically (usable ring
// dimensions over physical dimensions) versus optically (full, via
// redirection).
func UtilizationReport(a *torus.Allocation) []SliceUtilization {
	var out []SliceUtilization
	for si, s := range a.Slices() {
		out = append(out, SliceUtilization{
			Slice:      s.Name,
			Electrical: a.Utilization(si),
			Optical:    a.OpticalUtilization(si),
		})
	}
	return out
}

// Status renders a human-readable dashboard of the fabric: per-wafer
// tile laser occupancy, bus and fiber utilization, and the live
// circuit list.
func (f *Fabric) Status() string {
	var b strings.Builder
	b.WriteString(viz.WaferOccupancy(f.rack))
	circuits := f.alloc.Circuits()
	fmt.Fprintf(&b, "circuits established: %d\n", len(circuits))
	for _, c := range circuits {
		fmt.Fprintf(&b, "  %v\n", c)
	}
	return b.String()
}
