package core

import (
	"fmt"
	"sort"
	"sync"

	"lightpath/internal/chaos"
	"lightpath/internal/collective"
	"lightpath/internal/phy"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// chaosScratch backs one fault run's buffers: the arena holds the
// input ramp, every chip's buffer and the replacement's checkpoint,
// fully rewritten (never zeroed) each run; ref holds the reference
// reduction. The pool is shared across fabrics because a campaign
// clones a fresh Fabric per trial — pooling lets a few arenas serve
// the whole campaign, sequential or fanned out, instead of each trial
// allocating (and the collector retiring) tens of megabytes.
type chaosScratch struct {
	state collective.State
	arena []float64
	ref   []float64
}

var chaosScratchPool = sync.Pool{New: func() any { return new(chaosScratch) }}

// This file is the top of the failure lifecycle: it executes a planned
// AllReduce step by step against real buffers and a simulated clock,
// kills a chip mid-step, and drives the recovery — detect the failure,
// tear down the victim's circuits, splice a replacement chip in over
// fresh optical circuits, restore the victim's checkpoint, and resume
// the collective from the interrupted step. The run proves the paper's
// §4.2 argument dynamically: the collective still computes the right
// answer, recovery costs microseconds (MZI settling, not rack
// migration), and only the victim's slice ever stalls.

// failFraction is how far through the interrupted step's data phase
// the chip dies. Fixed (rather than sampled) so recovery accounting is
// reproducible byte for byte.
const failFraction = 0.5

// ChaosPolicy configures failure detection and repair for a
// fault-injected collective.
type ChaosPolicy struct {
	// Detection is the time between the chip dying and the fabric
	// manager acting on it (heartbeat timeout plus control-plane
	// latency).
	Detection unit.Seconds
	// Width is the wavelength width requested for repair circuits;
	// graceful degradation may halve it when the fabric is fragmented.
	Width int
}

// DefaultChaosPolicy matches the netsim retry defaults: 10 us
// detection, width-4 repair circuits (the Figure 7 width).
func DefaultChaosPolicy() ChaosPolicy {
	return ChaosPolicy{Detection: 10 * unit.Microsecond, Width: 4}
}

// ChaosOutcome reports one fault-injected AllReduce run.
type ChaosOutcome struct {
	// Correct reports that every surviving chip's final buffer equals
	// the reference reduction of the original inputs — the victim's
	// contribution included.
	Correct bool
	// Victim and Replacement are the failed chip and the spare spliced
	// in for it.
	Victim, Replacement int
	// RepairCircuits counts the optical circuits establishing the
	// replacement's connectivity; Degraded reports whether any came up
	// narrower than requested.
	RepairCircuits int
	Degraded       bool
	// StepsTotal and StepsReplayed count schedule steps executed and
	// re-executed after rollback to the last completed step.
	StepsTotal, StepsReplayed int
	// CleanTime is the fault-free completion time of the same
	// schedule; TotalTime is the completion time with the fault,
	// detection, repair and replay included.
	CleanTime, TotalTime unit.Seconds
	// DetectTime and RepairTime split the MTTR into the policy's
	// detection latency and the optical repair (circuit establishment
	// + MZI settling); MTTR is their sum.
	DetectTime, RepairTime, MTTR unit.Seconds
	// RepairBound is the analytic floor of RepairTime: one MZI
	// settling interval, since circuit establishment is control-plane
	// work off the data path. The tests assert RepairTime is within
	// twice this bound.
	RepairBound unit.Seconds
	// StallOptical and StallElectrical are the blast radii: chips
	// stalled while recovering under optical splicing (the victim's
	// slice) versus the electrical rack-migration policy (every chip
	// in the rack).
	StallOptical, StallElectrical int
	// WastedBytes is the traffic of the interrupted step that had to
	// be replayed; GoodputFraction is useful over total bytes moved.
	WastedBytes     unit.Bytes
	GoodputFraction float64
}

// String renders the outcome.
func (o *ChaosOutcome) String() string {
	verdict := "CORRECT"
	if !o.Correct {
		verdict = "WRONG"
	}
	return fmt.Sprintf(
		"chip %d failed mid-collective; replacement %d spliced in over %d circuits (degraded=%v)\n"+
			"  result: %s after %d/%d steps replayed\n"+
			"  time: %v clean -> %v with fault (MTTR %v = %v detect + %v repair; bound %v)\n"+
			"  stall set: %d chips optical vs %d electrical; goodput %.1f%%\n",
		o.Victim, o.Replacement, o.RepairCircuits, o.Degraded,
		verdict, o.StepsReplayed, o.StepsTotal,
		o.CleanTime, o.TotalTime, o.MTTR, o.DetectTime, o.RepairTime, o.RepairBound,
		o.StallOptical, o.StallElectrical, o.GoodputFraction*100)
}

// RunAllReduceUnderFault plans an AllReduce over slice si, executes it
// against real buffers, and kills the victim chip partway through step
// failStep. Recovery tears down the victim's circuits, establishes
// repair circuits from a free chip to every peer the victim still had
// to exchange with, restores the victim's last step-boundary
// checkpoint onto the replacement, and resumes from the interrupted
// step. The outcome carries correctness, MTTR and blast-radius
// measurements.
func (f *Fabric) RunAllReduceUnderFault(a *torus.Allocation, si int, bufferBytes unit.Bytes, victim, failStep int, pol ChaosPolicy) (*ChaosOutcome, error) {
	if pol.Detection < 0 {
		return nil, fmt.Errorf("core: negative detection latency %v", pol.Detection)
	}
	if pol.Width < 1 {
		return nil, fmt.Errorf("core: repair width %d < 1", pol.Width)
	}
	plan, err := f.PlanAllReduce(a, si, bufferBytes)
	if err != nil {
		return nil, err
	}
	return f.RunPlannedAllReduceUnderFault(a, plan, victim, failStep, pol)
}

// RunPlannedAllReduceUnderFault is RunAllReduceUnderFault for a
// collective that is already planned. Planning is deterministic given
// the fabric seed and allocation, so a fault campaign plans once and
// hands each trial a Clone of the plan — the repair splice mutates the
// plan's schedule in place. The plan must have been produced by a
// fabric in the same pristine state as f (same seed, no prior faults).
func (f *Fabric) RunPlannedAllReduceUnderFault(a *torus.Allocation, plan *CollectivePlan, victim, failStep int, pol ChaosPolicy) (*ChaosOutcome, error) {
	if pol.Detection < 0 {
		return nil, fmt.Errorf("core: negative detection latency %v", pol.Detection)
	}
	if pol.Width < 1 {
		return nil, fmt.Errorf("core: repair width %d < 1", pol.Width)
	}
	sched := plan.Schedule
	chips := sched.Chips()
	if !containsInt(chips, victim) {
		return nil, fmt.Errorf("core: victim chip %d is not part of the collective", victim)
	}
	if failStep < 0 || failStep >= sched.NumSteps() {
		return nil, fmt.Errorf("core: fail step %d out of range [0, %d)", failStep, sched.NumSteps())
	}

	circuitBW := f.params.ChipBandwidth / unit.BitRate(plan.ActiveDims)
	// Deterministic per-chip inputs: any values work (the interpreter
	// checks against the exact reference reduction); a chip- and
	// index-dependent ramp catches swapped or stale buffers. The
	// index-dependent term is computed once — the per-chip fills then
	// add the chip base to the same template values, so every buffer
	// holds exactly the floats the inline division produced. Buffers
	// come from a pooled arena: every element is written below, so
	// reuse skips the zero-fill a fresh NewState would pay per trial.
	scr := chaosScratchPool.Get().(*chaosScratch)
	defer chaosScratchPool.Put(scr)
	n := sched.N
	if need := (len(chips) + 2) * n; cap(scr.arena) < need {
		scr.arena = make([]float64, need)
	}
	arena := scr.arena
	ramp := arena[:n:n]
	for i := range ramp {
		ramp[i] = float64(i) / float64(n)
	}
	if scr.state == nil {
		scr.state = make(collective.State, len(chips))
	}
	clear(scr.state)
	st := scr.state
	for ci, c := range chips {
		buf := arena[(1+ci)*n : (2+ci)*n : (2+ci)*n]
		base := float64(c + 1)
		for i := range buf {
			buf[i] = ramp[i] + base
		}
		st[c] = buf
	}
	scr.ref = collective.ReduceAcrossInto(scr.ref, st, chips, n)
	ref := scr.ref
	// The schedule is validated once here and re-validated after the
	// repair splices the replacement in; the per-step executions below
	// then skip re-validation (Interp.ExecuteStep's contract).
	if err := sched.Validate(); err != nil {
		return nil, err
	}

	out := &ChaosOutcome{
		Victim:      victim,
		Replacement: -1,
		StepsTotal:  sched.NumSteps(),
		CleanTime:   plan.OpticalTime,
		DetectTime:  pol.Detection,
		RepairBound: phy.ReconfigLatency,
	}

	var clock unit.Seconds
	// Healthy prefix: steps before the failure complete normally.
	for i := 0; i < failStep; i++ {
		if err := f.executeStep(st, sched, i); err != nil {
			return nil, err
		}
		clock += f.stepTime(sched, i, circuitBW)
	}

	// The victim dies failFraction of the way through failStep's data
	// phase. Barrier semantics discard the step's partial transfers:
	// every chip rolls back to the step boundary and the step replays.
	dataTime := f.stepDataTime(sched, failStep, circuitBW)
	clock += f.stepOverhead(sched, failStep) + unit.Seconds(failFraction*float64(dataTime))
	out.WastedBytes = unit.Bytes(failFraction * float64(stepBytes(sched, failStep)))
	tFault := clock

	// Detection: the slice stalls until the manager learns of the
	// failure and acts.
	clock += pol.Detection

	// Hardware: mark the chip dead and tear down its circuits.
	if _, err := f.alloc.ApplyFault(chaos.Fault{Class: chaos.ChipFailure, Chip: victim}); err != nil {
		return nil, err
	}

	// The replacement must reconnect to every peer the victim still
	// owes traffic (the interrupted step replays, so it counts).
	peers := victimPeers(sched, victim, failStep)
	repl, circuits, degraded, err := f.spliceReplacement(a, chips, peers, pol.Width, clock)
	if err != nil {
		return nil, err
	}
	out.Replacement = repl
	out.RepairCircuits = len(circuits)
	out.Degraded = degraded
	repairedAt := clock
	for _, c := range circuits {
		if c.ReadyAt > repairedAt {
			repairedAt = c.ReadyAt
		}
	}
	out.RepairTime = repairedAt - clock
	out.MTTR = repairedAt - tFault
	clock = repairedAt

	// Logical splice: the replacement takes over the victim's role in
	// every remaining step and inherits its step-boundary checkpoint.
	remapVictim(sched, victim, repl, failStep)
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("core: schedule invalid after splice: %w", err)
	}
	buf := arena[(1+len(chips))*n : (2+len(chips))*n : (2+len(chips))*n]
	copy(buf, st[victim])
	st[repl] = buf
	delete(st, victim)
	for i := range chips {
		if chips[i] == victim {
			chips[i] = repl
		}
	}
	sort.Ints(chips)

	// Resume: replay the interrupted step, then the rest.
	for i := failStep; i < sched.NumSteps(); i++ {
		if err := f.executeStep(st, sched, i); err != nil {
			return nil, err
		}
		clock += f.stepTime(sched, i, circuitBW)
	}
	out.StepsReplayed = sched.NumSteps() - failStep
	out.TotalTime = clock
	out.Correct = collective.CheckAllReduce(st, chips, ref) == nil
	out.StallOptical = len(chips)
	out.StallElectrical = f.torus.Size()
	useful := float64(sched.TotalBytes())
	out.GoodputFraction = useful / (useful + float64(out.WastedBytes))
	return out, nil
}

// spliceReplacement picks a free, healthy chip and establishes repair
// circuits from it to every peer, trying candidates in ascending ID
// order and rolling back a candidate's circuits when any peer cannot
// be reached. The boolean reports whether any circuit was degraded to
// a narrower width.
func (f *Fabric) spliceReplacement(a *torus.Allocation, inCollective, peers []int, width int, now unit.Seconds) (int, []*route.Circuit, bool, error) {
	var candidates []int
	for _, c := range a.FreeChips() {
		if containsInt(inCollective, c) {
			continue
		}
		if c < f.rack.NumChips() && f.rack.TileOf(c).ChipHealthy() {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return -1, nil, false, fmt.Errorf("core: no healthy free chip to splice in")
	}
	var lastErr error
	for _, repl := range candidates {
		circuits := make([]*route.Circuit, 0, len(peers))
		degraded := false
		ok := true
		for _, peer := range peers {
			c, deg, err := f.alloc.EstablishDegraded(route.Request{A: repl, B: peer, Width: width}, now)
			if err != nil {
				lastErr = err
				ok = false
				break
			}
			circuits = append(circuits, c)
			degraded = degraded || deg
		}
		if ok {
			return repl, circuits, degraded, nil
		}
		for _, c := range circuits {
			f.alloc.Release(c)
		}
	}
	return -1, nil, false, fmt.Errorf("core: optical splice failed for every free chip: %w", lastErr)
}

// victimPeers returns the distinct chips the victim exchanges traffic
// with from step failStep onward, ascending.
func victimPeers(s *collective.Schedule, victim, failStep int) []int {
	set := map[int]bool{}
	for _, step := range s.Steps[failStep:] {
		for _, tr := range step.Transfers {
			if tr.From == victim {
				set[tr.To] = true
			}
			if tr.To == victim {
				set[tr.From] = true
			}
		}
	}
	peers := make([]int, 0, len(set))
	for p := range set {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	return peers
}

// remapVictim rewrites the victim to the replacement in every step
// from failStep onward, in place.
func remapVictim(s *collective.Schedule, victim, repl, failStep int) {
	for si := failStep; si < len(s.Steps); si++ {
		for ti := range s.Steps[si].Transfers {
			tr := &s.Steps[si].Transfers[ti]
			if tr.From == victim {
				tr.From = repl
			}
			if tr.To == victim {
				tr.To = repl
			}
		}
	}
}

// executeStep runs one step of the schedule against the buffers,
// through the fabric's reusable interpreter. The caller validates the
// schedule (once up front, again after any splice).
func (f *Fabric) executeStep(st collective.State, s *collective.Schedule, i int) error {
	if err := f.interp.ExecuteStep(st, s, i); err != nil {
		return fmt.Errorf("core: step %d: %w", i, err)
	}
	return nil
}

// stepOverhead is the fixed cost paid before a step's data moves.
func (f *Fabric) stepOverhead(s *collective.Schedule, i int) unit.Seconds {
	t := f.params.Alpha
	if s.Steps[i].Reconfig {
		t += f.params.Reconfig
	}
	return t
}

// stepDataTime is the data phase of one step on dedicated circuits:
// the largest per-chip payload at circuit bandwidth (the ExecuteOptical
// model).
func (f *Fabric) stepDataTime(s *collective.Schedule, i int, circuitBW unit.BitRate) unit.Seconds {
	if len(f.stepChipBytes) < f.torus.Size() {
		f.stepChipBytes = make([]unit.Bytes, f.torus.Size())
	}
	touched := f.stepChipTouched[:0]
	for _, tr := range s.Steps[i].Transfers {
		if f.stepChipBytes[tr.From] == 0 {
			touched = append(touched, tr.From)
		}
		f.stepChipBytes[tr.From] += tr.Bytes(s.ElemBytes)
	}
	// worst is a max over per-chip tallies — order-independent, so the
	// touched-list walk gives the same value the map version did.
	var worst unit.Seconds
	for _, c := range touched {
		if t := circuitBW.TimeFor(f.stepChipBytes[c]); t > worst {
			worst = t
		}
		f.stepChipBytes[c] = 0
	}
	f.stepChipTouched = touched[:0]
	return worst
}

// stepTime is a step's full cost: overhead plus data.
func (f *Fabric) stepTime(s *collective.Schedule, i int, circuitBW unit.BitRate) unit.Seconds {
	return f.stepOverhead(s, i) + f.stepDataTime(s, i, circuitBW)
}

// stepBytes sums a step's transfer payloads.
func stepBytes(s *collective.Schedule, i int) unit.Bytes {
	var total unit.Bytes
	for _, tr := range s.Steps[i].Transfers {
		total += tr.Bytes(s.ElemBytes)
	}
	return total
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
