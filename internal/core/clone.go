package core

import "lightpath/internal/invariant"

// Clone returns a deep copy of the fabric: the rack hardware and the
// circuit allocator are duplicated (sharing no mutable state with the
// original), the logical torus — which is immutable — is shared, and
// the random streams are copied at their current position. A clone of
// a pristine fabric is indistinguishable from calling New with the
// same options, so Monte-Carlo campaigns build the fabric once and
// clone it per trial instead of re-running the constructor.
func (f *Fabric) Clone() *Fabric {
	alloc := f.alloc.Clone()
	// The allocator clone carries no audit hook (auditors are
	// per-allocator, never shared across trials), so give the clone its
	// own when auditing is on — exactly as New would.
	if m := invariant.DefaultMode(); m != invariant.Off {
		invariant.Attach(alloc, m)
	}
	return &Fabric{
		torus:  f.torus,
		rack:   alloc.Rack(),
		alloc:  alloc,
		params: f.params,
		rand:   f.rand.Clone(),
	}
}
