// Package netsim is a discrete-event fluid-flow network simulator: a
// set of flows share the capacity of the resources (links, circuits)
// they traverse under max-min fairness, and the simulator advances
// from flow completion to flow completion, recomputing the fair rates
// as capacity frees up.
//
// It exists to validate the paper's analytic alpha-beta arguments
// dynamically: collective schedules execute against an electrical
// torus (where concurrent transfers contend on shared links — the
// paper's congestion) or against photonic circuits (contention-free by
// construction), and the measured completion times must bracket and
// converge to the cost model's predictions (a DESIGN.md invariant).
package netsim

import (
	"errors"
	"math"

	"lightpath/internal/unit"
)

// Flow is one data transfer traversing a set of shared resources.
type Flow[R comparable] struct {
	// Bytes is the payload size.
	Bytes unit.Bytes
	// Via lists the resources the flow occupies; its rate is the
	// max-min fair share of its most contended resource.
	Via []R
}

// Result reports a simulated flow set.
type Result struct {
	// Makespan is when the last flow finished.
	Makespan unit.Seconds
	// FlowEnd[i] is when flow i finished.
	FlowEnd []unit.Seconds
	// Delivered[i] is the bytes flow i delivered (equals its request;
	// exposed so tests can assert conservation).
	Delivered []unit.Bytes
}

// ErrStarvedFlow reports a flow that can never finish: it has positive
// bytes but traverses no resource or a zero-capacity resource.
var ErrStarvedFlow = errors.New("netsim: flow can never complete")

// Run simulates the flows sharing the given resource capacities until
// all complete, returning per-flow completion times. Flows with zero
// bytes complete at time zero. Resources not present in caps are an
// error — silently treating them as infinite would hide modeling bugs.
//
// Run is a convenience shim over a fresh Sim; callers simulating many
// flow sets hold a Sim and call its Run method to reuse the solver's
// interning tables, CSR incidence and result storage across calls.
func Run[R comparable](flows []Flow[R], caps map[R]unit.BitRate) (Result, error) {
	var s Sim[R]
	return s.Run(flows, caps)
}

// rateScratch is the reusable working storage of the max-min fair
// rate computation. The fluid simulators recompute rates once per
// completion event, so allocating these five structures per call
// dominated the simulator's allocation profile; a zero-value scratch
// is ready to use and is reset (not reallocated) on every call.
type rateScratch[R comparable] struct {
	rates    []float64
	frozen   []bool
	residual map[R]float64
	users    map[R]int
	order    []R
}

// reset prepares the scratch for n flows, reusing capacity.
func (s *rateScratch[R]) reset(n int, caps int) {
	if cap(s.rates) < n {
		s.rates = make([]float64, n)
		s.frozen = make([]bool, n)
	} else {
		s.rates = s.rates[:n]
		s.frozen = s.frozen[:n]
		for i := range s.rates {
			s.rates[i] = 0
			s.frozen[i] = false
		}
	}
	if s.residual == nil {
		s.residual = make(map[R]float64, caps)
		s.users = make(map[R]int, caps)
	} else {
		clear(s.residual)
		clear(s.users)
	}
	s.order = s.order[:0]
}

// fairRates computes max-min fair rates (bytes/second) by progressive
// filling: repeatedly find the most constrained resource, freeze its
// flows at the fair share, and remove them. It is the reference
// oracle the interned CSR solver (Sim, solver.go) is differentially
// tested against; production paths go through Sim.
func fairRates[R comparable](flows []Flow[R], caps map[R]unit.BitRate, remaining []float64) []float64 {
	var s rateScratch[R]
	return fairRatesInto(&s, flows, caps, remaining)
}

// fairRatesInto is fairRates with caller-owned scratch; the returned
// slice aliases the scratch and is valid until the next call with the
// same scratch.
func fairRatesInto[R comparable](s *rateScratch[R], flows []Flow[R], caps map[R]unit.BitRate, remaining []float64) []float64 {
	s.reset(len(flows), len(caps))
	rates, frozen := s.rates, s.frozen
	// Residual capacity in bytes/second. order fixes the bottleneck
	// scan to first-use order so equal-share ties always resolve the
	// same way regardless of map iteration order.
	residual, users, order := s.residual, s.users, s.order
	for i, f := range flows {
		if remaining[i] <= 0 {
			frozen[i] = true
			continue
		}
		for _, r := range f.Via {
			if users[r] == 0 {
				order = append(order, r)
				residual[r] = caps[r].BytesPerSecond()
			}
			users[r]++
		}
	}
	// order is complete once the census above finishes; saving it here
	// (instead of in a deferred closure) keeps the call defer-free.
	s.order = order

	for {
		// Most constrained resource: minimal residual / users.
		var bestR R
		best := math.Inf(1)
		found := false
		for _, r := range order {
			n := users[r]
			if n == 0 {
				continue
			}
			if share := residual[r] / float64(n); share < best {
				best = share
				bestR = r
				found = true
			}
		}
		if !found {
			return rates
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			crosses := false
			for _, r := range f.Via {
				if r == bestR {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			rates[i] = best
			frozen[i] = true
			for _, r := range f.Via {
				residual[r] -= best
				if residual[r] < 0 {
					residual[r] = 0
				}
				users[r]--
			}
		}
	}
}
