package netsim

import (
	"fmt"
	"math"

	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// This file is the component-sharded solver: RunSharded partitions
// the flow set into the connected components of the sharing graph
// (already computed by build for the incremental refill) and runs an
// entire independent fluid simulation per component, fanning the
// components across an engine worker pool. It is how netsim scales
// from the thousands of flows a single wafer carries to the millions
// a rail-optimized datacenter fabric carries (the RailFabric
// campaign): components never exchange bytes, so their simulations
// are embarrassingly parallel, and the global O(flows) scan per
// completion event that Run pays shrinks to a per-component scan.
//
// Determinism. Every piece of solver state a component touches —
// rates, frozen, residual, users, remaining, active, FlowEnd,
// Delivered — is indexed by interned flow or resource id, and every
// id belongs to exactly one component (a fuzz target,
// FuzzComponentPartition, pins that invariant). The workers therefore
// write disjoint storage, the "merge" of per-component results is the
// identity mapping in interned-id order, and the only cross-component
// folds (the makespan max, the first-error selection) run
// sequentially in ascending order after the pool drains. A parallel
// run is byte-identical to a sequential one by construction, not by
// tolerance; the differential tests assert it bit for bit.
//
// Relation to Run. Within one component RunSharded performs exactly
// Run's arithmetic: refill at every completion event, minimum
// time-to-completion step, identical float operation order. Across
// components it differs deliberately — Run advances a single global
// clock, interleaving every component's completion events into one
// dt sequence, while RunSharded advances each component's clock
// independently. In exact arithmetic the results coincide; in floats
// the global interleaving rounds differently, so RunSharded's
// contract is: each component's results are bit-identical to running
// Run on that component's flows alone (and Run stays bit-identical
// to the fairRates oracle via the existing differential tests).

// RunSharded simulates the flows sharing the given resource
// capacities until all complete, like Run, but solves each connected
// component of the sharing graph as an independent simulation and
// fans the components across the engine worker pool
// (engine.SetParallel / engine.SetWorkers govern the fan-out; results
// are byte-identical either way). The returned slices alias the Sim's
// storage and are valid until the next call on this Sim.
func (s *Sim[R]) RunSharded(flows []Flow[R], caps map[R]unit.BitRate) (Result, error) {
	if _, err := s.build(flows, caps); err != nil {
		return Result{}, err
	}
	n := len(flows)
	s.flowEnd = growZero(s.flowEnd, n)
	s.delivered = growZero(s.delivered, n)
	s.remaining = grow(s.remaining, n)
	for i, f := range flows {
		s.remaining[i] = float64(f.Bytes)
	}

	workers := engine.ShardWorkers(s.nComp)
	s.shardOrder = grow(s.shardOrder, workers)
	s.compErr = grow(s.compErr, s.nComp)
	for c := range s.compErr {
		s.compErr[c] = nil
	}
	engine.RunShards(workers, s.nComp, func(worker, c int) {
		s.compErr[c] = s.runComponent(int32(c), flows, worker)
	})
	// Deterministic error selection: the lowest-index component's
	// error, exactly what a sequential component loop that stops at
	// the first failure would surface.
	for c := 0; c < s.nComp; c++ {
		if err := s.compErr[c]; err != nil {
			return Result{}, err
		}
	}

	res := Result{FlowEnd: s.flowEnd, Delivered: s.delivered}
	for i := range flows {
		if res.FlowEnd[i] > res.Makespan {
			res.Makespan = res.FlowEnd[i]
		}
	}
	return res, nil
}

// runComponent runs the complete fluid simulation of one component:
// refill the component's rates, advance to its earliest completion,
// retire finished flows, repeat. It writes only state owned by the
// component's flows (plus the per-worker census arena), so concurrent
// calls on distinct components never touch the same memory.
func (s *Sim[R]) runComponent(c int32, flows []Flow[R], worker int) error {
	fls := s.compFlows[s.compFlowStart[c]:s.compFlowStart[c+1]]
	remaining := s.remaining
	active := 0
	for _, f := range fls {
		if remaining[f] > 0 {
			active++
		}
	}
	order := s.shardOrder[worker]
	now := 0.0
	//lightpath:hotloop
	for active > 0 {
		order = s.refill(c, order)
		rates := s.rates
		// Advance to the component's earliest completion.
		dt := math.Inf(1)
		for _, f := range fls {
			if remaining[f] <= 0 {
				continue
			}
			if rates[f] <= 0 {
				s.shardOrder[worker] = order
				return fmt.Errorf("%w: flow %d received zero rate", ErrStarvedFlow, f)
			}
			if t := remaining[f] / rates[f]; t < dt {
				dt = t
			}
		}
		now += dt
		for _, f := range fls {
			if remaining[f] <= 0 {
				continue
			}
			remaining[f] -= rates[f] * dt
			// Tolerate float round-off at the completion boundary.
			if remaining[f] <= 1e-6 {
				remaining[f] = 0
				s.flowEnd[f] = unit.Seconds(now)
				s.delivered[f] = flows[f].Bytes
				active--
				s.active[f] = false
			}
		}
	}
	s.shardOrder[worker] = order
	return nil
}
