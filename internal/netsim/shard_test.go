package netsim

import (
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// This file differentially tests the component-sharded solver
// (RunSharded, shard.go): a parallel run must be byte-identical to a
// sequential run, and each component's results must be bit-identical
// to running the whole solver — and the fairRates oracle — on that
// component's flows alone.

// genShardCase derives a random flow set with a *known* component
// structure from a seed: up to six resource clusters with disjoint id
// ranges, every flow confined to one cluster. Clusters are exactly
// the sharing-graph components (each cluster's resource pool is small
// enough that its flows almost surely connect it; the checks don't
// assume they do — they recompute components from the Via lists).
func genShardCase(seed uint64) ([]Flow[int], map[int]unit.BitRate) {
	r := rng.New(seed).Split("shard-differential")
	clusters := 1 + r.Intn(6)
	caps := make(map[int]unit.BitRate)
	var flows []Flow[int]
	for cl := 0; cl < clusters; cl++ {
		base := cl * 100
		nRes := 1 + r.Intn(8)
		for i := 0; i < nRes; i++ {
			caps[base+i] = unit.GBps(float64(1 + r.Intn(8)))
		}
		nFlows := 1 + r.Intn(12)
		for i := 0; i < nFlows; i++ {
			if r.Intn(10) == 0 {
				flows = append(flows, Flow[int]{Bytes: 0})
				continue
			}
			via := make([]int, 1+r.Intn(4))
			for j := range via {
				via[j] = base + r.Intn(nRes)
			}
			flows = append(flows, Flow[int]{
				Bytes: unit.Bytes(1 + r.Intn(1<<20)),
				Via:   via,
			})
		}
	}
	return flows, caps
}

// components recomputes the sharing-graph partition independently of
// the solver: union-find over resources joined by each flow's Via,
// then flows grouped by their first resource's root. Zero-byte flows
// belong to no component (index -1).
func components(flows []Flow[int]) (compOfFlow []int, nComp int) {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, f := range flows {
		if f.Bytes == 0 || len(f.Via) == 0 {
			continue
		}
		r0 := find(f.Via[0])
		for _, r := range f.Via[1:] {
			other := find(r)
			if other != r0 {
				if other < r0 {
					r0, other = other, r0
				}
				parent[other] = r0
			}
		}
	}
	compOfFlow = make([]int, len(flows))
	label := map[int]int{}
	for i, f := range flows {
		if f.Bytes == 0 || len(f.Via) == 0 {
			compOfFlow[i] = -1
			continue
		}
		root := find(f.Via[0])
		c, ok := label[root]
		if !ok {
			c = nComp
			label[root] = c
			nComp++
		}
		compOfFlow[i] = c
	}
	return compOfFlow, nComp
}

// runBoth runs RunSharded sequentially and in parallel on fresh Sims
// and fails on any bitwise divergence between the two.
func runBoth(t testing.TB, flows []Flow[int], caps map[int]unit.BitRate) (Result, bool) {
	t.Helper()
	prevPar := engine.SetParallel(false)
	defer engine.SetParallel(prevPar)
	var seqSim Sim[int]
	seqRes, seqErr := seqSim.RunSharded(flows, caps)

	engine.SetParallel(true)
	prevW := engine.SetWorkers(4)
	defer engine.SetWorkers(prevW)
	var parSim Sim[int]
	parRes, parErr := parSim.RunSharded(flows, caps)

	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error divergence: sequential %v, parallel %v", seqErr, parErr)
	}
	if seqErr != nil {
		return Result{}, false
	}
	if seqRes.Makespan != parRes.Makespan {
		t.Fatalf("makespan: sequential %v, parallel %v", seqRes.Makespan, parRes.Makespan)
	}
	for i := range flows {
		if seqRes.FlowEnd[i] != parRes.FlowEnd[i] {
			t.Fatalf("flow %d end: sequential %v, parallel %v", i, seqRes.FlowEnd[i], parRes.FlowEnd[i])
		}
		if seqRes.Delivered[i] != parRes.Delivered[i] {
			t.Fatalf("flow %d delivered: sequential %v, parallel %v", i, seqRes.Delivered[i], parRes.Delivered[i])
		}
	}
	return seqRes, true
}

// checkShardedCase runs the full differential stack on one flow set:
// parallel == sequential bitwise, and every component bit-identical
// to both the production solver and the fairRates oracle run on the
// component's flows alone.
func checkShardedCase(t testing.TB, flows []Flow[int], caps map[int]unit.BitRate) {
	t.Helper()
	got, ok := runBoth(t, flows, caps)
	if !ok {
		return
	}
	compOfFlow, nComp := components(flows)
	for c := 0; c < nComp; c++ {
		var sub []Flow[int]
		var idx []int
		for i, f := range flows {
			if compOfFlow[i] == c {
				sub = append(sub, f)
				idx = append(idx, i)
			}
		}
		want, err := Run(sub, caps)
		if err != nil {
			t.Fatalf("component %d: %v", c, err)
		}
		oracle, err := oracleRun(sub, caps)
		if err != nil {
			t.Fatalf("component %d oracle: %v", c, err)
		}
		for j, i := range idx {
			if got.FlowEnd[i] != want.FlowEnd[j] {
				t.Fatalf("component %d flow %d end: sharded %v, solo solve %v", c, i, got.FlowEnd[i], want.FlowEnd[j])
			}
			if got.FlowEnd[i] != oracle.FlowEnd[j] {
				t.Fatalf("component %d flow %d end: sharded %v, oracle %v", c, i, got.FlowEnd[i], oracle.FlowEnd[j])
			}
			if got.Delivered[i] != want.Delivered[j] {
				t.Fatalf("component %d flow %d delivered: sharded %v, solo solve %v", c, i, got.Delivered[i], want.Delivered[j])
			}
		}
	}
	// Zero-byte flows finish at t=0 in every implementation.
	for i, f := range flows {
		if f.Bytes == 0 && got.FlowEnd[i] != 0 {
			t.Fatalf("zero-byte flow %d ended at %v", i, got.FlowEnd[i])
		}
	}
}

// TestShardedMatchesSequentialAndOracle sweeps seeded multi-component
// flow sets through the whole differential stack.
func TestShardedMatchesSequentialAndOracle(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		flows, caps := genShardCase(seed)
		checkShardedCase(t, flows, caps)
	}
}

// TestShardedSingleComponentMatchesRun pins the contract's anchor
// case: with one component, RunSharded and Run interleave completions
// identically, so the whole Result must be bitwise equal.
func TestShardedSingleComponentMatchesRun(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		flows, caps := genCase(seed) // single shared pool: usually one component
		if _, nComp := components(flows); nComp != 1 {
			continue
		}
		want, wantErr := Run(flows, caps)
		var sim Sim[int]
		got, gotErr := sim.RunSharded(flows, caps)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: error divergence: Run %v, RunSharded %v", seed, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("seed %d: makespan: RunSharded %v, Run %v", seed, got.Makespan, want.Makespan)
		}
		for i := range flows {
			if got.FlowEnd[i] != want.FlowEnd[i] {
				t.Fatalf("seed %d: flow %d end: RunSharded %v, Run %v", seed, i, got.FlowEnd[i], want.FlowEnd[i])
			}
		}
	}
}

// TestShardedReuseAcrossCases reruns many cases through one Sim in
// parallel mode: stale scratch from a larger prior case — or a prior
// worker count — must never leak into a later case.
func TestShardedReuseAcrossCases(t *testing.T) {
	prevPar := engine.SetParallel(true)
	prevW := engine.SetWorkers(4)
	defer func() {
		engine.SetParallel(prevPar)
		engine.SetWorkers(prevW)
	}()
	var sim Sim[int]
	for seed := uint64(0); seed < 60; seed++ {
		if seed == 30 {
			engine.SetWorkers(2) // shrink the pool mid-sequence
		}
		flows, caps := genShardCase(seed)
		got, gotErr := sim.RunSharded(flows, caps)
		var fresh Sim[int]
		want, wantErr := fresh.RunSharded(flows, caps)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("seed %d: error divergence: reused %v, fresh %v", seed, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if got.Makespan != want.Makespan {
			t.Fatalf("seed %d: makespan: reused %v, fresh %v", seed, got.Makespan, want.Makespan)
		}
		for i := range flows {
			if got.FlowEnd[i] != want.FlowEnd[i] {
				t.Fatalf("seed %d: flow %d end: reused %v, fresh %v", seed, i, got.FlowEnd[i], want.FlowEnd[i])
			}
		}
	}
}

// TestShardedBuildErrors checks the validation prologue surfaces the
// same errors as Run regardless of mode.
func TestShardedBuildErrors(t *testing.T) {
	caps := map[int]unit.BitRate{0: unit.GBps(1)}
	cases := []struct {
		name  string
		flows []Flow[int]
	}{
		{"unknown resource", []Flow[int]{{Bytes: 1, Via: []int{7}}}},
		{"empty via", []Flow[int]{{Bytes: 1}}},
		{"negative bytes", []Flow[int]{{Bytes: -1, Via: []int{0}}}},
	}
	for _, tc := range cases {
		var sim Sim[int]
		if _, err := sim.RunSharded(tc.flows, caps); err == nil {
			t.Errorf("%s: RunSharded accepted an invalid flow set", tc.name)
		}
	}
}

// FuzzComponentPartition pins the sharding invariant the disjoint-
// write determinism argument rests on: no flow and no resource may
// span two shards. Every flow's resources share its component, the
// component groupings cover every flow and resource exactly once, and
// a parallel solve stays bitwise equal to a sequential one. The
// committed corpus under testdata/fuzz keeps the structurally
// interesting partitions (single cluster, many clusters, zero-byte
// mixes) replaying on every `go test` run.
func FuzzComponentPartition(f *testing.F) {
	for _, seed := range []uint64{0, 1, 5, 33, 77, 1024} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		flows, caps := genShardCase(seed)
		var sim Sim[int]
		if _, err := sim.build(flows, caps); err != nil {
			t.Fatalf("build: %v", err)
		}

		// Every flow's resources agree on one component, and it is the
		// flow's component.
		for i := range flows {
			lo, hi := sim.viaStart[i], sim.viaStart[i+1]
			if lo == hi {
				if sim.compOfFlow[i] != -1 {
					t.Fatalf("zero-byte flow %d assigned component %d", i, sim.compOfFlow[i])
				}
				continue
			}
			c := sim.compOfFlow[i]
			for k := lo; k < hi; k++ {
				if got := sim.compOfRes[sim.viaRes[k]]; got != c {
					t.Fatalf("flow %d spans shards: flow component %d, resource %d component %d",
						i, c, sim.viaRes[k], got)
				}
			}
		}

		// compFlows and compRes are exact partitions: each flow and
		// each resource appears in exactly one shard's group.
		flowSeen := make([]int, len(flows))
		for c := 0; c < sim.nComp; c++ {
			for _, fl := range sim.compFlows[sim.compFlowStart[c]:sim.compFlowStart[c+1]] {
				flowSeen[fl]++
				if sim.compOfFlow[fl] != int32(c) {
					t.Fatalf("flow %d grouped under component %d but assigned %d", fl, c, sim.compOfFlow[fl])
				}
			}
		}
		for i := range flows {
			want := 1
			if sim.compOfFlow[i] < 0 {
				want = 0
			}
			if flowSeen[i] != want {
				t.Fatalf("flow %d appears in %d shards, want %d", i, flowSeen[i], want)
			}
		}
		resSeen := make([]int, len(sim.names))
		for c := 0; c < sim.nComp; c++ {
			for _, r := range sim.compRes[sim.compResStart[c]:sim.compResStart[c+1]] {
				resSeen[r]++
				if sim.compOfRes[r] != int32(c) {
					t.Fatalf("resource %d grouped under component %d but assigned %d", r, c, sim.compOfRes[r])
				}
			}
		}
		for r := range resSeen {
			if resSeen[r] != 1 {
				t.Fatalf("resource %d appears in %d shards, want 1", r, resSeen[r])
			}
		}

		// The reverse index respects the partition too: every flow
		// crossing a resource lives in the resource's component.
		for r := 0; r < len(sim.names); r++ {
			for _, fl := range sim.resFlows[sim.resStart[r]:sim.resStart[r+1]] {
				if sim.compOfFlow[fl] != sim.compOfRes[r] {
					t.Fatalf("resource %d (component %d) crossed by flow %d of component %d",
						r, sim.compOfRes[r], fl, sim.compOfFlow[fl])
				}
			}
		}

		// And the partition's purpose holds: parallel == sequential.
		runBoth(t, flows, caps)
	})
}
