package netsim

import (
	"fmt"

	"lightpath/internal/collective"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// This file executes collective Schedules on the simulator. Steps run
// with barrier semantics (step s+1 starts when every step-s transfer
// has completed), which is how bucket/ring collectives synchronize.

// ExecOptions configures schedule execution.
type ExecOptions struct {
	// Alpha is the per-step software overhead added to every step.
	Alpha unit.Seconds
	// Reconfig is added before reconfiguration-marked steps (optical
	// execution); electrical executors pass zero.
	Reconfig unit.Seconds
	// HopLatency is the store-and-forward latency per link of a
	// multi-hop electrical path (zero for the fluid-only model). Each
	// step is stretched by its longest path's latency.
	HopLatency unit.Seconds
}

// Executor runs collective schedules on the fluid simulator, reusing
// every per-step structure — the flow list, the capacity map, the
// per-chip payload tally, and the solver's own scratch — across steps
// and calls. A zero Executor is ready to use; it must not be shared
// between goroutines. The package-level ExecuteElectrical and
// ExecuteOptical are shims over a fresh Executor for one-shot callers.
type Executor struct {
	sim     Sim[torus.Link]
	flows   []Flow[torus.Link]
	caps    map[torus.Link]unit.BitRate
	perChip map[int]unit.Bytes
	// pathBuf backs the single-link default paths of one step's flows;
	// it is sized to the step's transfer count up front so the Via
	// subslices handed to the solver are never invalidated by growth.
	pathBuf []torus.Link
}

// Electrical runs the schedule on a direct-connect torus where every
// transfer occupies the single directed link between its endpoints
// (they must be torus-adjacent) and each link has capacity linkBW
// (= B/D_phys). Concurrent transfers crossing the same link share it —
// the congestion the paper defines in §4.1.
//
// pathOf, when non-nil, overrides the per-transfer path (used by the
// failure experiments to route repair detours over multi-hop paths).
func (e *Executor) Electrical(s *collective.Schedule, t *torus.Torus, linkBW unit.BitRate, pathOf func(collective.Transfer) []torus.Link, opt ExecOptions) (unit.Seconds, error) {
	if e.caps == nil {
		e.caps = make(map[torus.Link]unit.BitRate)
	}
	var total unit.Seconds
	for si, step := range s.Steps {
		e.flows = e.flows[:0]
		clear(e.caps)
		if cap(e.pathBuf) < len(step.Transfers) {
			e.pathBuf = make([]torus.Link, 0, len(step.Transfers))
		}
		e.pathBuf = e.pathBuf[:0]
		longestPath := 0
		for _, tr := range step.Transfers {
			var path []torus.Link
			if pathOf != nil {
				path = pathOf(tr)
			} else {
				l := torus.Link{From: tr.From, To: tr.To}
				if t != nil && t.LinkDim(l) < 0 {
					return 0, fmt.Errorf("netsim: step %d transfer %v is not torus-adjacent", si, l)
				}
				e.pathBuf = append(e.pathBuf, l)
				path = e.pathBuf[len(e.pathBuf)-1:]
			}
			if len(path) > longestPath {
				longestPath = len(path)
			}
			for _, l := range path {
				e.caps[l] = linkBW
			}
			e.flows = append(e.flows, Flow[torus.Link]{Bytes: tr.Bytes(s.ElemBytes), Via: path})
		}
		res, err := e.sim.Run(e.flows, e.caps)
		if err != nil {
			return 0, fmt.Errorf("netsim: step %d: %w", si, err)
		}
		total += opt.Alpha + res.Makespan + unit.Seconds(longestPath)*opt.HopLatency
	}
	return total, nil
}

// Optical runs the schedule on a photonic fabric where every transfer
// rides a dedicated contention-free circuit of capacity circuitBW
// (= B / active ring dimensions, per the redirection model).
// Reconfiguration-marked steps pay opt.Reconfig before data moves.
func (e *Executor) Optical(s *collective.Schedule, circuitBW unit.BitRate, opt ExecOptions) (unit.Seconds, error) {
	if circuitBW <= 0 {
		return 0, fmt.Errorf("netsim: non-positive circuit bandwidth %v", circuitBW)
	}
	if e.perChip == nil {
		e.perChip = make(map[int]unit.Bytes)
	}
	var total unit.Seconds
	for _, step := range s.Steps {
		// Dedicated circuits: flows are independent; the step lasts as
		// long as its largest per-chip payload.
		clear(e.perChip)
		for _, tr := range step.Transfers {
			e.perChip[tr.From] += tr.Bytes(s.ElemBytes)
		}
		var worst unit.Seconds
		for _, b := range e.perChip {
			if t := circuitBW.TimeFor(b); t > worst {
				worst = t
			}
		}
		if step.Reconfig {
			total += opt.Reconfig
		}
		total += opt.Alpha + worst
	}
	return total, nil
}

// ExecuteElectrical is Executor.Electrical on a fresh Executor —
// convenient for one-shot callers; loops should hold an Executor.
func ExecuteElectrical(s *collective.Schedule, t *torus.Torus, linkBW unit.BitRate, pathOf func(collective.Transfer) []torus.Link, opt ExecOptions) (unit.Seconds, error) {
	var e Executor
	return e.Electrical(s, t, linkBW, pathOf, opt)
}

// ExecuteOptical is Executor.Optical on a fresh Executor — convenient
// for one-shot callers; loops should hold an Executor.
func ExecuteOptical(s *collective.Schedule, circuitBW unit.BitRate, opt ExecOptions) (unit.Seconds, error) {
	var e Executor
	return e.Optical(s, circuitBW, opt)
}
