package netsim

import (
	"fmt"

	"lightpath/internal/collective"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// This file executes collective Schedules on the simulator. Steps run
// with barrier semantics (step s+1 starts when every step-s transfer
// has completed), which is how bucket/ring collectives synchronize.

// ExecOptions configures schedule execution.
type ExecOptions struct {
	// Alpha is the per-step software overhead added to every step.
	Alpha unit.Seconds
	// Reconfig is added before reconfiguration-marked steps (optical
	// execution); electrical executors pass zero.
	Reconfig unit.Seconds
	// HopLatency is the store-and-forward latency per link of a
	// multi-hop electrical path (zero for the fluid-only model). Each
	// step is stretched by its longest path's latency.
	HopLatency unit.Seconds
}

// ExecuteElectrical runs the schedule on a direct-connect torus where
// every transfer occupies the single directed link between its
// endpoints (they must be torus-adjacent) and each link has capacity
// linkBW (= B/D_phys). Concurrent transfers crossing the same link
// share it — the congestion the paper defines in §4.1.
//
// pathOf, when non-nil, overrides the per-transfer path (used by the
// failure experiments to route repair detours over multi-hop paths).
func ExecuteElectrical(s *collective.Schedule, t *torus.Torus, linkBW unit.BitRate, pathOf func(collective.Transfer) []torus.Link, opt ExecOptions) (unit.Seconds, error) {
	var total unit.Seconds
	for si, step := range s.Steps {
		flows := make([]Flow[torus.Link], 0, len(step.Transfers))
		caps := make(map[torus.Link]unit.BitRate)
		longestPath := 0
		for _, tr := range step.Transfers {
			var path []torus.Link
			if pathOf != nil {
				path = pathOf(tr)
			} else {
				l := torus.Link{From: tr.From, To: tr.To}
				if t != nil && t.LinkDim(l) < 0 {
					return 0, fmt.Errorf("netsim: step %d transfer %v is not torus-adjacent", si, l)
				}
				path = []torus.Link{l}
			}
			if len(path) > longestPath {
				longestPath = len(path)
			}
			for _, l := range path {
				caps[l] = linkBW
			}
			flows = append(flows, Flow[torus.Link]{Bytes: tr.Bytes(s.ElemBytes), Via: path})
		}
		res, err := Run(flows, caps)
		if err != nil {
			return 0, fmt.Errorf("netsim: step %d: %w", si, err)
		}
		total += opt.Alpha + res.Makespan + unit.Seconds(longestPath)*opt.HopLatency
	}
	return total, nil
}

// ExecuteOptical runs the schedule on a photonic fabric where every
// transfer rides a dedicated contention-free circuit of capacity
// circuitBW (= B / active ring dimensions, per the redirection model).
// Reconfiguration-marked steps pay opt.Reconfig before data moves.
func ExecuteOptical(s *collective.Schedule, circuitBW unit.BitRate, opt ExecOptions) (unit.Seconds, error) {
	if circuitBW <= 0 {
		return 0, fmt.Errorf("netsim: non-positive circuit bandwidth %v", circuitBW)
	}
	var total unit.Seconds
	for si, step := range s.Steps {
		// Dedicated circuits: flows are independent; the step lasts as
		// long as its largest per-chip payload.
		perChip := map[int]unit.Bytes{}
		for _, tr := range step.Transfers {
			perChip[tr.From] += tr.Bytes(s.ElemBytes)
		}
		var worst unit.Seconds
		for _, b := range perChip {
			if t := circuitBW.TimeFor(b); t > worst {
				worst = t
			}
		}
		if step.Reconfig {
			total += opt.Reconfig
		}
		total += opt.Alpha + worst
		_ = si
	}
	return total, nil
}
