package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"lightpath/internal/unit"
)

func approx(a, b unit.Seconds, tol float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(float64(a-b))/math.Abs(float64(b)) <= tol
}

func TestSingleFlowExactTime(t *testing.T) {
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	res, err := Run(flows, caps)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Makespan, 1, 1e-6) {
		t.Fatalf("makespan = %v, want 1s", res.Makespan)
	}
	if res.Delivered[0] != unit.GB {
		t.Fatalf("delivered = %v", res.Delivered[0])
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	// Two equal flows on one link: each gets half, both finish at 2s —
	// the paper's definition of congestion made quantitative.
	flows := []Flow[string]{
		{Bytes: unit.GB, Via: []string{"l"}},
		{Bytes: unit.GB, Via: []string{"l"}},
	}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	res, err := Run(flows, caps)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Makespan, 2, 1e-6) {
		t.Fatalf("makespan = %v, want 2s", res.Makespan)
	}
}

func TestUnequalFlowsFreeCapacityEarly(t *testing.T) {
	// 0.5GB and 1GB on one 1GB/s link: both run at 0.5 GB/s until the
	// small one finishes at t=1; the big one then gets the full link:
	// 0.5GB left at 1 GB/s -> finishes at t=1.5.
	flows := []Flow[string]{
		{Bytes: unit.GB / 2, Via: []string{"l"}},
		{Bytes: unit.GB, Via: []string{"l"}},
	}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	res, err := Run(flows, caps)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.FlowEnd[0], 1, 1e-6) {
		t.Fatalf("small flow end = %v, want 1s", res.FlowEnd[0])
	}
	if !approx(res.FlowEnd[1], 1.5, 1e-6) {
		t.Fatalf("big flow end = %v, want 1.5s", res.FlowEnd[1])
	}
}

func TestMaxMinFairness(t *testing.T) {
	// Classic 3-flow example: A uses link1, B uses link2, C uses both.
	// link1 = 1, link2 = 2 (GB/s). Progressive filling: link1 is the
	// bottleneck (0.5 each for A and C); B then gets the remainder of
	// link2 = 1.5.
	flows := []Flow[string]{
		{Bytes: unit.GB, Via: []string{"l1"}},
		{Bytes: unit.GB, Via: []string{"l2"}},
		{Bytes: unit.GB, Via: []string{"l1", "l2"}},
	}
	caps := map[string]unit.BitRate{"l1": unit.GBps(1), "l2": unit.GBps(2)}
	rates := fairRates(flows, caps, []float64{1e9, 1e9, 1e9})
	if !approxF(rates[0], 0.5e9) || !approxF(rates[2], 0.5e9) {
		t.Fatalf("l1 flows rates = %v, %v, want 0.5 GB/s", rates[0], rates[2])
	}
	if !approxF(rates[1], 1.5e9) {
		t.Fatalf("B rate = %v, want 1.5 GB/s", rates[1])
	}
}

func approxF(a, b float64) bool { return math.Abs(a-b)/b < 1e-9 }

func TestZeroByteFlowsCompleteImmediately(t *testing.T) {
	flows := []Flow[string]{{Bytes: 0, Via: nil}}
	res, err := Run(flows, map[string]unit.BitRate{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.FlowEnd[0] != 0 {
		t.Fatalf("zero flow: %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	caps := map[string]unit.BitRate{"l": unit.GBps(1), "dead": 0}
	if _, err := Run([]Flow[string]{{Bytes: 1, Via: nil}}, caps); !errors.Is(err, ErrStarvedFlow) {
		t.Errorf("no-resource flow: %v", err)
	}
	if _, err := Run([]Flow[string]{{Bytes: 1, Via: []string{"dead"}}}, caps); !errors.Is(err, ErrStarvedFlow) {
		t.Errorf("zero-capacity flow: %v", err)
	}
	if _, err := Run([]Flow[string]{{Bytes: 1, Via: []string{"missing"}}}, caps); err == nil {
		t.Error("unknown resource accepted")
	}
	if _, err := Run([]Flow[string]{{Bytes: -1, Via: []string{"l"}}}, caps); err == nil {
		t.Error("negative size accepted")
	}
}

// Conservation invariant (DESIGN.md): bytes delivered per flow equal
// bytes requested, for arbitrary flow sets.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint16, linkChoices []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		links := []string{"a", "b", "c", "d"}
		caps := map[string]unit.BitRate{}
		for _, l := range links {
			caps[l] = unit.GBps(1)
		}
		var flows []Flow[string]
		for i, s := range sizes {
			choice := 0
			if i < len(linkChoices) {
				choice = int(linkChoices[i])
			}
			via := []string{links[choice%4]}
			if choice%3 == 0 {
				via = append(via, links[(choice+1)%4])
			}
			flows = append(flows, Flow[string]{Bytes: unit.Bytes(s), Via: via})
		}
		res, err := Run(flows, caps)
		if err != nil {
			return false
		}
		for i := range flows {
			if res.Delivered[i] != flows[i].Bytes {
				return false
			}
			if res.FlowEnd[i] > res.Makespan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Work-conservation lower bound: the makespan is at least the most
// loaded link's total bytes over its capacity.
func TestMakespanMeetsLinkLoadBound(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		var flows []Flow[string]
		var total unit.Bytes
		for _, s := range sizes {
			flows = append(flows, Flow[string]{Bytes: unit.Bytes(s) + 1, Via: []string{"l"}})
			total += unit.Bytes(s) + 1
		}
		caps := map[string]unit.BitRate{"l": unit.GBps(1)}
		res, err := Run(flows, caps)
		if err != nil {
			return false
		}
		bound := caps["l"].TimeFor(total)
		return res.Makespan >= bound-1e-9 && res.Makespan <= bound+unit.Seconds(1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
