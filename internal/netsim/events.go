package netsim

import (
	"errors"
	"fmt"
	"math"

	"lightpath/internal/unit"
)

// This file adds the failure lifecycle to the fluid simulator:
// resources can die and come back at scheduled simulated times, flows
// crossing a dead resource stall, the sender detects the stall after a
// configurable detection latency, and the transfer is retried with
// exponential backoff once the fabric recovers. It is the dynamic
// counterpart of Run, which assumes every resource survives the whole
// flow set.

// Event changes resource health at a simulated time. Events passed to
// RunEvents must be sorted by ascending At.
type Event[R comparable] struct {
	// At is when the change takes effect.
	At unit.Seconds
	// Fail lists resources whose capacity drops to zero at At.
	Fail []R
	// Restore lists resources that return to their configured
	// capacity at At (a completed repair).
	Restore []R
}

// RetryPolicy configures failure detection and transfer retry.
type RetryPolicy struct {
	// Detection is how long a flow must be stalled before its sender
	// declares the transfer dead (heartbeat timeout). A failure that
	// heals within the detection window is a transparent hiccup: the
	// transfer resumes without retransmission.
	Detection unit.Seconds
	// Backoff is the delay before the first retry after detection.
	Backoff unit.Seconds
	// BackoffFactor multiplies the delay on each successive retry.
	BackoffFactor float64
	// MaxRetries bounds the retries per flow; exceeding it aborts the
	// whole run with ErrRetriesExhausted.
	MaxRetries int
}

// DefaultRetryPolicy returns the parameters used by the chaos
// experiments: 10 us detection (a handful of RTTs at rack scale),
// first retry after 5 us, doubling, at most 8 retries.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Detection:     10 * unit.Microsecond,
		Backoff:       5 * unit.Microsecond,
		BackoffFactor: 2,
		MaxRetries:    8,
	}
}

// validate checks the policy's parameters.
func (p RetryPolicy) validate() error {
	if p.Detection < 0 || p.Backoff < 0 {
		return fmt.Errorf("netsim: negative detection or backoff in retry policy")
	}
	if p.BackoffFactor < 1 {
		return fmt.Errorf("netsim: backoff factor %g < 1", p.BackoffFactor)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("netsim: negative max retries")
	}
	return nil
}

// ErrRetriesExhausted reports a flow that exceeded its retry budget.
var ErrRetriesExhausted = errors.New("netsim: flow exhausted its retries")

// ErrStalledForever reports flows stalled on dead resources with no
// remaining restore event — the run can never finish.
var ErrStalledForever = errors.New("netsim: flows stalled with no recovery scheduled")

// EventResult reports a simulated flow set that survived failures.
type EventResult struct {
	Result
	// Retries[i] counts flow i's abandoned attempts.
	Retries []int
	// Stalled[i] is flow i's total time spent stalled or backing off.
	Stalled []unit.Seconds
	// WastedBytes is the payload delivered by attempts that were later
	// abandoned and retransmitted from scratch.
	WastedBytes unit.Bytes
}

// GoodputFraction returns useful bytes over total bytes moved — the
// goodput-under-failure metric (1.0 when nothing was retried).
func (r EventResult) GoodputFraction() float64 {
	var useful unit.Bytes
	for _, d := range r.Delivered {
		useful += d
	}
	if useful+r.WastedBytes <= 0 {
		return 1
	}
	return float64(useful) / float64(useful+r.WastedBytes)
}

// flowPhase is a flow's position in the failure lifecycle.
type flowPhase int

const (
	phaseDone flowPhase = iota
	phaseRunning
	phaseStalled // crossing a dead resource, failure not yet detected
	phaseBackoff // detected; waiting out the retry delay
)

// RunEvents simulates the flows like Run while applying the failure
// events: a flow crossing a failed resource stalls; after
// pol.Detection it is declared dead, waits out an exponential backoff,
// and retries the whole transfer once its resources are healthy again
// (a retry into a still-dead fabric stalls and is re-detected,
// consuming another retry). Failures that heal within the detection
// window resume transparently with no retransmission.
func RunEvents[R comparable](flows []Flow[R], caps map[R]unit.BitRate, events []Event[R], pol RetryPolicy) (EventResult, error) {
	if err := pol.validate(); err != nil {
		return EventResult{}, err
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return EventResult{}, fmt.Errorf("netsim: events not sorted by time (event %d at %v after %v)",
				i, events[i].At, events[i-1].At)
		}
	}
	res := EventResult{
		Result: Result{
			FlowEnd:   make([]unit.Seconds, len(flows)),
			Delivered: make([]unit.Bytes, len(flows)),
		},
		Retries: make([]int, len(flows)),
		Stalled: make([]unit.Seconds, len(flows)),
	}

	remaining := make([]float64, len(flows))
	phase := make([]flowPhase, len(flows))
	deadline := make([]float64, len(flows)) // detection or backoff expiry, by phase
	active := 0
	for i, f := range flows {
		if f.Bytes < 0 {
			return EventResult{}, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		if f.Bytes == 0 {
			continue
		}
		if len(f.Via) == 0 {
			return EventResult{}, fmt.Errorf("%w: flow %d traverses no resources", ErrStarvedFlow, i)
		}
		for _, r := range f.Via {
			c, ok := caps[r]
			if !ok {
				return EventResult{}, fmt.Errorf("netsim: flow %d uses unknown resource %v", i, r)
			}
			if c <= 0 {
				return EventResult{}, fmt.Errorf("%w: flow %d crosses zero-capacity resource %v", ErrStarvedFlow, i, r)
			}
		}
		remaining[i] = float64(f.Bytes)
		phase[i] = phaseRunning
		active++
	}

	dead := map[R]bool{}
	healthy := func(i int) bool {
		for _, r := range flows[i].Via {
			if dead[r] {
				return false
			}
		}
		return true
	}
	// Stalled flows transmit nothing, so they are excluded from the
	// rate computation entirely (zeroed remaining) and the survivors
	// share the full configured capacities.
	now := 0.0
	eventIdx := 0
	runRemaining := make([]float64, len(flows))
	var scratch rateScratch[R]
	//lightpath:hotloop
	for active > 0 {
		// Rates over running flows only.
		for i := range flows {
			runRemaining[i] = 0
			if phase[i] == phaseRunning {
				runRemaining[i] = remaining[i]
			}
		}
		rates := fairRatesInto(&scratch, flows, caps, runRemaining)

		// Advance to the next transition: a completion, an external
		// event, a detection expiry, or a backoff expiry.
		dt := math.Inf(1)
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				if rates[i] <= 0 {
					return EventResult{}, fmt.Errorf("%w: flow %d received zero rate", ErrStarvedFlow, i)
				}
				if t := remaining[i] / rates[i]; t < dt {
					dt = t
				}
			case phaseStalled, phaseBackoff:
				if t := deadline[i] - now; t < dt {
					dt = t
				}
			}
		}
		if eventIdx < len(events) {
			if t := float64(events[eventIdx].At) - now; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			return EventResult{}, fmt.Errorf("%w (t=%v)", ErrStalledForever, unit.Seconds(now))
		}
		if dt < 0 {
			dt = 0
		}
		now += dt

		// Progress and stall accounting.
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				remaining[i] -= rates[i] * dt
				if remaining[i] <= 1e-6 {
					remaining[i] = 0
					phase[i] = phaseDone
					res.FlowEnd[i] = unit.Seconds(now)
					res.Delivered[i] = flows[i].Bytes
					active--
				}
			case phaseStalled, phaseBackoff:
				res.Stalled[i] += unit.Seconds(dt)
			}
		}

		// External events at now.
		for eventIdx < len(events) && float64(events[eventIdx].At) <= now+1e-15 {
			ev := events[eventIdx]
			eventIdx++
			for _, r := range ev.Fail {
				dead[r] = true
			}
			for _, r := range ev.Restore {
				delete(dead, r)
			}
		}

		// Phase transitions driven by health and deadlines.
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				if !healthy(i) {
					phase[i] = phaseStalled
					deadline[i] = now + float64(pol.Detection)
				}
			case phaseStalled:
				if healthy(i) {
					// Healed inside the detection window: transparent
					// resume, no retransmission.
					phase[i] = phaseRunning
					continue
				}
				if now >= deadline[i]-1e-15 {
					// Declared dead: abandon the attempt, pay the
					// backoff, retransmit from scratch.
					res.WastedBytes += flows[i].Bytes - unit.Bytes(remaining[i])
					res.Retries[i]++
					if res.Retries[i] > pol.MaxRetries {
						return EventResult{}, fmt.Errorf("%w: flow %d after %d attempts", ErrRetriesExhausted, i, res.Retries[i])
					}
					remaining[i] = float64(flows[i].Bytes)
					backoff := float64(pol.Backoff) * math.Pow(pol.BackoffFactor, float64(res.Retries[i]-1))
					phase[i] = phaseBackoff
					deadline[i] = now + backoff
				}
			case phaseBackoff:
				if now >= deadline[i]-1e-15 {
					if healthy(i) {
						phase[i] = phaseRunning
					} else {
						// Retry into a dead fabric: stall again and
						// let detection charge the next retry.
						phase[i] = phaseStalled
						deadline[i] = now + float64(pol.Detection)
					}
				}
			}
		}
	}
	for i := range flows {
		if res.FlowEnd[i] > res.Makespan {
			res.Makespan = res.FlowEnd[i]
		}
	}
	return res, nil
}
