package netsim

import (
	"errors"
	"fmt"

	"lightpath/internal/unit"
)

// This file adds the failure lifecycle to the fluid simulator:
// resources can die and come back at scheduled simulated times, flows
// crossing a dead resource stall, the sender detects the stall after a
// configurable detection latency, and the transfer is retried with
// exponential backoff once the fabric recovers. It is the dynamic
// counterpart of Run, which assumes every resource survives the whole
// flow set.

// Event changes resource health at a simulated time. Events passed to
// RunEvents must be sorted by ascending At.
type Event[R comparable] struct {
	// At is when the change takes effect.
	At unit.Seconds
	// Fail lists resources whose capacity drops to zero at At.
	Fail []R
	// Restore lists resources that return to their configured
	// capacity at At (a completed repair).
	Restore []R
}

// RetryPolicy configures failure detection and transfer retry.
type RetryPolicy struct {
	// Detection is how long a flow must be stalled before its sender
	// declares the transfer dead (heartbeat timeout). A failure that
	// heals within the detection window is a transparent hiccup: the
	// transfer resumes without retransmission.
	Detection unit.Seconds
	// Backoff is the delay before the first retry after detection.
	Backoff unit.Seconds
	// BackoffFactor multiplies the delay on each successive retry.
	BackoffFactor float64
	// MaxRetries bounds the retries per flow; exceeding it aborts the
	// whole run with ErrRetriesExhausted.
	MaxRetries int
}

// DefaultRetryPolicy returns the parameters used by the chaos
// experiments: 10 us detection (a handful of RTTs at rack scale),
// first retry after 5 us, doubling, at most 8 retries.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Detection:     10 * unit.Microsecond,
		Backoff:       5 * unit.Microsecond,
		BackoffFactor: 2,
		MaxRetries:    8,
	}
}

// validate checks the policy's parameters.
func (p RetryPolicy) validate() error {
	if p.Detection < 0 || p.Backoff < 0 {
		return fmt.Errorf("netsim: negative detection or backoff in retry policy")
	}
	if p.BackoffFactor < 1 {
		return fmt.Errorf("netsim: backoff factor %g < 1", p.BackoffFactor)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("netsim: negative max retries")
	}
	return nil
}

// ErrRetriesExhausted reports a flow that exceeded its retry budget.
var ErrRetriesExhausted = errors.New("netsim: flow exhausted its retries")

// ErrStalledForever reports flows stalled on dead resources with no
// remaining restore event — the run can never finish.
var ErrStalledForever = errors.New("netsim: flows stalled with no recovery scheduled")

// EventResult reports a simulated flow set that survived failures.
type EventResult struct {
	Result
	// Retries[i] counts flow i's abandoned attempts.
	Retries []int
	// Stalled[i] is flow i's total time spent stalled or backing off.
	Stalled []unit.Seconds
	// WastedBytes is the payload delivered by attempts that were later
	// abandoned and retransmitted from scratch.
	WastedBytes unit.Bytes
}

// GoodputFraction returns useful bytes over total bytes moved — the
// goodput-under-failure metric (1.0 when nothing was retried).
func (r EventResult) GoodputFraction() float64 {
	var useful unit.Bytes
	for _, d := range r.Delivered {
		useful += d
	}
	if useful+r.WastedBytes <= 0 {
		return 1
	}
	return float64(useful) / float64(useful+r.WastedBytes)
}

// flowPhase is a flow's position in the failure lifecycle.
type flowPhase int

const (
	phaseDone flowPhase = iota
	phaseRunning
	phaseStalled // crossing a dead resource, failure not yet detected
	phaseBackoff // detected; waiting out the retry delay
)

// RunEvents simulates the flows like Run while applying the failure
// events: a flow crossing a failed resource stalls; after
// pol.Detection it is declared dead, waits out an exponential backoff,
// and retries the whole transfer once its resources are healthy again
// (a retry into a still-dead fabric stalls and is re-detected,
// consuming another retry). Failures that heal within the detection
// window resume transparently with no retransmission.
//
// RunEvents is a convenience shim over a fresh Sim; callers running
// many event-driven simulations hold a Sim and call its RunEvents
// method to reuse the solver's scratch across calls.
func RunEvents[R comparable](flows []Flow[R], caps map[R]unit.BitRate, events []Event[R], pol RetryPolicy) (EventResult, error) {
	var s Sim[R]
	return s.RunEvents(flows, caps, events, pol)
}
