package netsim

import (
	"fmt"
	"testing"

	"lightpath/internal/unit"
)

// BenchmarkRunEvents exercises the fluid solver's hot loop — many
// flows contending on shared links through a fail/restore cycle — to
// pin the per-iteration scratch reuse (rate vectors, residual maps)
// introduced for the campaign fan-out. The paper metric is the run's
// makespan, seed-free and exactly reproducible.
func BenchmarkRunEvents(b *testing.B) {
	const n = 32
	flows := make([]Flow[string], n)
	for i := range flows {
		flows[i] = Flow[string]{
			Bytes: unit.GB,
			Via:   []string{fmt.Sprintf("l%d", i%8), "trunk"},
		}
	}
	caps := map[string]unit.BitRate{"trunk": unit.GBps(64)}
	for i := 0; i < 8; i++ {
		caps[fmt.Sprintf("l%d", i)] = unit.GBps(4)
	}
	events := []Event[string]{
		{At: 0.5, Fail: []string{"l3"}},
		{At: 1.5, Restore: []string{"l3"}},
	}
	pol := RetryPolicy{Detection: 2, Backoff: 0.5, BackoffFactor: 2, MaxRetries: 4}
	var makespan float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunEvents(flows, caps, events, pol)
		if err != nil {
			b.Fatal(err)
		}
		makespan = float64(res.Makespan)
	}
	b.ReportMetric(makespan, "makespan_s")
}
