package netsim

import (
	"fmt"
	"testing"

	"lightpath/internal/unit"
)

// BenchmarkRunEvents exercises the fluid solver's hot loop — many
// flows contending on shared links through a fail/restore cycle — to
// pin the per-iteration scratch reuse (rate vectors, residual maps)
// introduced for the campaign fan-out. The paper metric is the run's
// makespan, seed-free and exactly reproducible.
func BenchmarkRunEvents(b *testing.B) {
	const n = 32
	flows := make([]Flow[string], n)
	for i := range flows {
		flows[i] = Flow[string]{
			Bytes: unit.GB,
			Via:   []string{fmt.Sprintf("l%d", i%8), "trunk"},
		}
	}
	caps := map[string]unit.BitRate{"trunk": unit.GBps(64)}
	for i := 0; i < 8; i++ {
		caps[fmt.Sprintf("l%d", i)] = unit.GBps(4)
	}
	events := []Event[string]{
		{At: 0.5, Fail: []string{"l3"}},
		{At: 1.5, Restore: []string{"l3"}},
	}
	pol := RetryPolicy{Detection: 2, Backoff: 0.5, BackoffFactor: 2, MaxRetries: 4}
	var makespan float64
	var sim Sim[string]
	// One untimed call warms the Sim's scratch so the measurement is
	// the steady state the campaigns run in (under `make bench`'s
	// small time budget a cold first iteration would otherwise charge
	// the one-time scratch construction to the result).
	if _, err := sim.RunEvents(flows, caps, events, pol); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEvents(flows, caps, events, pol)
		if err != nil {
			b.Fatal(err)
		}
		makespan = float64(res.Makespan)
	}
	b.ReportMetric(makespan, "makespan_s")
}

// benchFlows builds f flows each crossing via shared resources drawn
// from a pool of r links, with hops resources per flow — the knobs the
// FairRates microbenchmarks turn to separate per-flow from
// per-resource and per-round costs.
func benchFlows(f, r, hops int) ([]Flow[string], map[string]unit.BitRate) {
	flows := make([]Flow[string], f)
	for i := range flows {
		via := make([]string, hops)
		for h := 0; h < hops; h++ {
			via[h] = fmt.Sprintf("r%d", (i*hops+h)%r)
		}
		flows[i] = Flow[string]{Bytes: unit.MB, Via: via}
	}
	caps := make(map[string]unit.BitRate, r)
	for i := 0; i < r; i++ {
		caps[fmt.Sprintf("r%d", i)] = unit.GBps(float64(1 + i%4))
	}
	return flows, caps
}

// benchFairRates runs one shape through a held Sim and returns the
// deterministic makespan for the caller to report as its paper metric.
func benchFairRates(b *testing.B, f, r, hops int) float64 {
	flows, caps := benchFlows(f, r, hops)
	var sim Sim[string]
	var total float64
	// Warm the scratch so the short bench budget measures steady state.
	if _, err := sim.Run(flows, caps); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(flows, caps)
		if err != nil {
			b.Fatal(err)
		}
		total = float64(res.Makespan)
	}
	return total
}

// BenchmarkFairRatesSmall is the common campaign shape: a handful of
// flows on a handful of links.
func BenchmarkFairRatesSmall(b *testing.B) {
	b.ReportMetric(benchFairRates(b, 8, 8, 2), "makespan_s")
}

// BenchmarkFairRatesWide stresses per-flow costs: many flows, few
// shared resources, so freezing rounds are few but each scans widely.
func BenchmarkFairRatesWide(b *testing.B) {
	b.ReportMetric(benchFairRates(b, 512, 16, 2), "makespan_s")
}

// BenchmarkFairRatesDeep stresses per-resource costs: long Via lists
// over a large resource pool force many progressive-filling rounds.
func BenchmarkFairRatesDeep(b *testing.B) {
	b.ReportMetric(benchFairRates(b, 64, 256, 8), "makespan_s")
}
