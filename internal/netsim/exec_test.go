package netsim

import (
	"math"
	"testing"

	"lightpath/internal/collective"
	"lightpath/internal/cost"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

func rack() *torus.Torus { return torus.New(torus.Shape{4, 4, 4}) }

func slice1() *torus.Slice {
	return &torus.Slice{Name: "Slice-1", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}}
}

func TestExecuteElectricalMatchesCostModel(t *testing.T) {
	// The netsim execution of a congestion-free schedule must equal
	// the analytic alpha-beta cost (DESIGN.md invariant).
	tor := rack()
	s := slice1()
	n := 1 << 20
	sched, _, err := collective.SnakeRingReduceScatter("rs", tor, s, n, 4, collective.BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	linkBW := p.ChipBandwidth / unit.BitRate(p.PhysDims)
	got, err := ExecuteElectrical(sched, tor, linkBW, nil, ExecOptions{Alpha: p.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Electrical(sched)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-want.Total()))/float64(want.Total()) > 1e-6 {
		t.Fatalf("netsim %v != cost model %v", got, want.Total())
	}
}

func TestExecuteOpticalMatchesCostModel(t *testing.T) {
	tor := rack()
	s := slice1()
	n := 1 << 20
	sched, _, err := collective.SnakeRingReduceScatter("rs", tor, s, n, 4, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultParams()
	got, err := ExecuteOptical(sched, p.ChipBandwidth, ExecOptions{Alpha: p.Alpha, Reconfig: p.Reconfig})
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Optical(sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got-want.Total()))/float64(want.Total()) > 1e-6 {
		t.Fatalf("netsim %v != cost model %v", got, want.Total())
	}
}

// TestFig5cEndToEnd is the dynamic form of Figure 5c: the same Slice-1
// collective completes ~3x faster on the photonic fabric for large
// buffers.
func TestFig5cEndToEnd(t *testing.T) {
	tor := rack()
	s := slice1()
	n := 1 << 24 // large buffer: beta-dominated
	p := cost.DefaultParams()

	elecSched, _, err := collective.SnakeRingReduceScatter("e", tor, s, n, 4, collective.BucketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	optSched, _, err := collective.SnakeRingReduceScatter("o", tor, s, n, 4, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		t.Fatal(err)
	}
	elec, err := ExecuteElectrical(elecSched, tor, p.ChipBandwidth/3, nil, ExecOptions{Alpha: p.Alpha})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ExecuteOptical(optSched, p.ChipBandwidth, ExecOptions{Alpha: p.Alpha, Reconfig: p.Reconfig})
	if err != nil {
		t.Fatal(err)
	}
	// Alpha and the one-time reconfiguration dilute the asymptotic 3x
	// slightly at this buffer size.
	speedup := float64(elec / opt)
	if speedup < 2.8 || speedup > 3.05 {
		t.Fatalf("optical speedup = %.2fx, want ~3x", speedup)
	}
}

func TestExecuteElectricalDetectsNonAdjacent(t *testing.T) {
	tor := rack()
	sched := &collective.Schedule{
		N: 8, ElemBytes: 4,
		Steps: []collective.Step{
			{Transfers: []collective.Transfer{{From: 0, To: 2, Range: collective.Range{Lo: 0, Hi: 8}}}},
		},
	}
	if _, err := ExecuteElectrical(sched, tor, unit.GBps(1), nil, ExecOptions{}); err == nil {
		t.Fatal("non-adjacent transfer accepted without a path function")
	}
}

func TestExecuteElectricalMultiHopPath(t *testing.T) {
	// A 2-hop detour path shares its middle link with nothing; time =
	// bytes/linkBW (fluid model, no store-and-forward delay modeled).
	tor := rack()
	sched := &collective.Schedule{
		N: 1 << 20, ElemBytes: 1,
		Steps: []collective.Step{
			{Transfers: []collective.Transfer{{From: 0, To: 2, Range: collective.Range{Lo: 0, Hi: 1 << 20}}}},
		},
	}
	path := func(tr collective.Transfer) []torus.Link {
		return []torus.Link{{From: 0, To: 1}, {From: 1, To: 2}}
	}
	got, err := ExecuteElectrical(sched, tor, unit.GBps(1), path, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := unit.GBps(1).TimeFor(1 << 20)
	if math.Abs(float64(got-want))/float64(want) > 1e-6 {
		t.Fatalf("2-hop time = %v, want %v", got, want)
	}
}

func TestCongestionDoublesStepTime(t *testing.T) {
	// Two same-step transfers forced over one shared link take twice
	// as long — the quantitative content of Figures 6a/6b.
	tor := rack()
	n := 1 << 20
	sched := &collective.Schedule{
		N: n, ElemBytes: 1,
		Steps: []collective.Step{
			{Transfers: []collective.Transfer{
				{From: 0, To: 1, Range: collective.Range{Lo: 0, Hi: n / 2}},
				{From: 4, To: 5, Range: collective.Range{Lo: n / 2, Hi: n}},
			}},
		},
	}
	shared := torus.Link{From: 0, To: 1}
	path := func(tr collective.Transfer) []torus.Link { return []torus.Link{shared} }
	congested, err := ExecuteElectrical(sched, tor, unit.GBps(1), path, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ExecuteElectrical(sched, tor, unit.GBps(1), nil, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(congested / clean); math.Abs(ratio-2) > 0.01 {
		t.Fatalf("congestion ratio = %v, want 2", ratio)
	}
}

func TestExecuteOpticalValidation(t *testing.T) {
	sched := &collective.Schedule{N: 8, ElemBytes: 4}
	if _, err := ExecuteOptical(sched, 0, ExecOptions{}); err == nil {
		t.Fatal("zero circuit bandwidth accepted")
	}
}

func TestReconfigOnlyChargedWhenMarked(t *testing.T) {
	n := 1 << 10
	mk := func(reconfig bool) *collective.Schedule {
		return &collective.Schedule{
			N: n, ElemBytes: 1,
			Steps: []collective.Step{
				{Transfers: []collective.Transfer{{From: 0, To: 1, Range: collective.Range{Lo: 0, Hi: n}}}, Reconfig: reconfig},
			},
		}
	}
	opt := ExecOptions{Reconfig: 3.7 * unit.Microsecond}
	with, err := ExecuteOptical(mk(true), unit.GBps(1), opt)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ExecuteOptical(mk(false), unit.GBps(1), opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff := with - without; math.Abs(float64(diff-3.7*unit.Microsecond)) > 1e-12 {
		t.Fatalf("reconfig surcharge = %v, want 3.7us", diff)
	}
}

func TestHopLatencyStretchesSteps(t *testing.T) {
	tor := rack()
	sched := &collective.Schedule{
		N: 1 << 10, ElemBytes: 1,
		Steps: []collective.Step{
			{Transfers: []collective.Transfer{{From: 0, To: 2, Range: collective.Range{Lo: 0, Hi: 1 << 10}}}},
		},
	}
	path := func(tr collective.Transfer) []torus.Link { return tor.DORPath(tr.From, tr.To) }
	base, err := ExecuteElectrical(sched, tor, unit.GBps(1), path, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withHops, err := ExecuteElectrical(sched, tor, unit.GBps(1), path, ExecOptions{HopLatency: unit.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 2 is a 2-hop DOR path: +2us.
	if diff := withHops - base; math.Abs(float64(diff-2*unit.Microsecond)) > 1e-12 {
		t.Fatalf("hop surcharge = %v, want 2us", diff)
	}
}

// Property: for random realizable slices, the optical executor equals
// the analytic cost model on bucket schedules too (not just snakes).
func TestOpticalMatchesCostModelProperty(t *testing.T) {
	tor := rack()
	p := cost.DefaultParams()
	shapes := []torus.Shape{
		{4, 4, 1}, {4, 2, 1}, {2, 2, 1}, {4, 4, 4}, {4, 4, 2},
	}
	for _, shape := range shapes {
		s := &torus.Slice{Name: shape.String(), Origin: torus.Coord{0, 0, 0}, Shape: shape}
		dims := []int{0, 1, 2}
		n := 1 << 16
		sched, err := collective.BucketAllReduce("prop", tor, s, dims, n, 4, collective.BucketOptions{MarkReconfig: true})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		activeDims := 0
		for _, e := range shape {
			if e >= 2 {
				activeDims++
			}
		}
		got, err := ExecuteOptical(sched, p.ChipBandwidth/unit.BitRate(activeDims), ExecOptions{Alpha: p.Alpha, Reconfig: p.Reconfig})
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Optical(sched, activeDims)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got-want.Total()))/float64(want.Total()) > 1e-6 {
			t.Fatalf("%v: netsim %v != cost %v", shape, got, want.Total())
		}
	}
}
