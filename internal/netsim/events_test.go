package netsim

import (
	"errors"
	"testing"

	"lightpath/internal/unit"
)

func eventPolicy() RetryPolicy {
	return RetryPolicy{
		Detection:     1, // 1 s, comfortable against 1 GB/s flows
		Backoff:       0.5,
		BackoffFactor: 2,
		MaxRetries:    4,
	}
}

func TestRunEventsNoEventsMatchesRun(t *testing.T) {
	flows := []Flow[string]{
		{Bytes: unit.GB, Via: []string{"a"}},
		{Bytes: unit.GB / 2, Via: []string{"a", "b"}},
	}
	caps := map[string]unit.BitRate{"a": unit.GBps(1), "b": unit.GBps(1)}
	plain, err := Run(flows, caps)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := RunEvents(flows, caps, nil, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if !approx(ev.FlowEnd[i], plain.FlowEnd[i], 1e-6) {
			t.Fatalf("flow %d: %v with events, %v without", i, ev.FlowEnd[i], plain.FlowEnd[i])
		}
		if ev.Retries[i] != 0 || ev.Stalled[i] != 0 {
			t.Fatalf("flow %d retried/stalled with no events", i)
		}
	}
	if ev.WastedBytes != 0 || ev.GoodputFraction() != 1 {
		t.Fatalf("wasted %v bytes with no events", ev.WastedBytes)
	}
}

func TestRunEventsTransparentHiccup(t *testing.T) {
	// Failure at 0.2s, restored at 0.5s — inside the 1s detection
	// window. The flow stalls 0.3s but never retries: 1s of work +
	// 0.3s stall = 1.3s.
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.2, Fail: []string{"l"}},
		{At: 0.5, Restore: []string{"l"}},
	}
	res, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries[0] != 0 {
		t.Fatalf("hiccup charged %d retries", res.Retries[0])
	}
	if !approx(res.Stalled[0], 0.3, 1e-6) {
		t.Fatalf("stalled %v, want 0.3s", res.Stalled[0])
	}
	if !approx(res.FlowEnd[0], 1.3, 1e-6) {
		t.Fatalf("finished at %v, want 1.3s", res.FlowEnd[0])
	}
	if res.WastedBytes != 0 {
		t.Fatalf("transparent resume wasted %v", res.WastedBytes)
	}
}

func TestRunEventsRestoreAtDetectionDeadlineIsTransparent(t *testing.T) {
	// The link dies at 0.2s and is restored at exactly the detection
	// deadline, 1.2s. Restores apply before phase transitions at the
	// same instant, so the sender never declares the transfer dead:
	// the flow resumes transparently — 1s of work plus a 1s stall, no
	// retry, no retransmitted bytes.
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.2, Fail: []string{"l"}},
		{At: 1.2, Restore: []string{"l"}},
	}
	res, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries[0] != 0 {
		t.Fatalf("retries = %d, want a transparent resume", res.Retries[0])
	}
	if res.WastedBytes != 0 {
		t.Fatalf("wasted %v bytes on a transparent resume", res.WastedBytes)
	}
	if !approx(res.FlowEnd[0], 2.0, 1e-6) {
		t.Fatalf("finished at %v, want 2.0s (1s work + 1s stall)", res.FlowEnd[0])
	}
	if !approx(res.Stalled[0], 1.0, 1e-6) {
		t.Fatalf("stalled %v, want exactly the 1s outage", res.Stalled[0])
	}
}

func TestRunEventsDetectionRetryAndWaste(t *testing.T) {
	// Failure at 0.5s (half delivered), restored at 2s. Detection
	// expires at 1.5s: 0.5 GB wasted, one retry. Backoff 0.5s ends at
	// 2.0s with the link healthy; the full GB retransmits: done at 3.0s.
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.5, Fail: []string{"l"}},
		{At: 2, Restore: []string{"l"}},
	}
	res, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries[0] != 1 {
		t.Fatalf("retries = %d, want 1", res.Retries[0])
	}
	if res.WastedBytes != unit.GB/2 {
		t.Fatalf("wasted = %v, want half a GB", res.WastedBytes)
	}
	if !approx(res.FlowEnd[0], 3.0, 1e-6) {
		t.Fatalf("finished at %v, want 3.0s", res.FlowEnd[0])
	}
	// Goodput: 1 GB useful over 1.5 GB moved.
	if g := res.GoodputFraction(); g < 0.66 || g > 0.67 {
		t.Fatalf("goodput = %g, want ~2/3", g)
	}
	// Unaffected flows on other resources keep running during the stall.
}

func TestRunEventsUnaffectedFlowKeepsRunning(t *testing.T) {
	flows := []Flow[string]{
		{Bytes: unit.GB, Via: []string{"dead"}},
		{Bytes: unit.GB, Via: []string{"alive"}},
	}
	caps := map[string]unit.BitRate{"dead": unit.GBps(1), "alive": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.1, Fail: []string{"dead"}},
		{At: 0.2, Restore: []string{"dead"}},
	}
	res, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.FlowEnd[1], 1.0, 1e-6) {
		t.Fatalf("healthy flow finished at %v, want 1.0s", res.FlowEnd[1])
	}
	if res.Stalled[1] != 0 {
		t.Fatal("healthy flow accounted stall time")
	}
}

func TestRunEventsExponentialBackoffOnRepeatedFailure(t *testing.T) {
	// The link dies at 0.1s and stays dead past several detection
	// windows; each detect->backoff->stall cycle doubles the backoff
	// until the restore at 6s lets the retry through.
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.1, Fail: []string{"l"}},
		{At: 6, Restore: []string{"l"}},
	}
	res, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries[0] < 2 {
		t.Fatalf("retries = %d, want >= 2 over a 5.9s outage", res.Retries[0])
	}
	if res.FlowEnd[0] <= 6 {
		t.Fatalf("finished at %v, before the restore", res.FlowEnd[0])
	}
}

func TestRunEventsRetriesExhausted(t *testing.T) {
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.1, Fail: []string{"l"}},
		{At: 1 << 20, Restore: []string{"l"}},
	}
	_, err := RunEvents(flows, caps, events, eventPolicy())
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestRunEventsStalledForever(t *testing.T) {
	flows := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	events := []Event[string]{{At: 0.1, Fail: []string{"l"}}}
	pol := eventPolicy()
	pol.MaxRetries = 1 << 30 // never exhaust; the deadlock must be caught
	_, err := RunEvents(flows, caps, events, pol)
	if !errors.Is(err, ErrStalledForever) {
		t.Fatalf("err = %v, want ErrStalledForever", err)
	}
}

func TestRunEventsRejectsDegenerateInputs(t *testing.T) {
	caps := map[string]unit.BitRate{"l": unit.GBps(1)}
	good := []Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}}
	if _, err := RunEvents(good, caps, []Event[string]{{At: 2}, {At: 1}}, eventPolicy()); err == nil {
		t.Fatal("unsorted events accepted")
	}
	bad := eventPolicy()
	bad.BackoffFactor = 0.5
	if _, err := RunEvents(good, caps, nil, bad); err == nil {
		t.Fatal("shrinking backoff accepted")
	}
	neg := eventPolicy()
	neg.Detection = -1
	if _, err := RunEvents(good, caps, nil, neg); err == nil {
		t.Fatal("negative detection accepted")
	}
	if _, err := RunEvents([]Flow[string]{{Bytes: unit.GB}}, caps, nil, eventPolicy()); !errors.Is(err, ErrStarvedFlow) {
		t.Fatal("flow with no resources accepted")
	}
	if _, err := RunEvents([]Flow[string]{{Bytes: unit.GB, Via: []string{"l"}}},
		map[string]unit.BitRate{"l": 0}, nil, eventPolicy()); !errors.Is(err, ErrStarvedFlow) {
		t.Fatal("zero-capacity resource accepted")
	}
	if _, err := RunEvents([]Flow[string]{{Bytes: -1, Via: []string{"l"}}}, caps, nil, eventPolicy()); err == nil {
		t.Fatal("negative flow size accepted")
	}
	if _, err := RunEvents([]Flow[string]{{Bytes: unit.GB, Via: []string{"ghost"}}}, caps, nil, eventPolicy()); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestRunEventsZeroByteFlowsComplete(t *testing.T) {
	res, err := RunEvents([]Flow[string]{{Bytes: 0}}, nil, nil, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Fatalf("makespan %v for empty flow set", res.Makespan)
	}
}

func TestRunEventsDeterministic(t *testing.T) {
	flows := []Flow[string]{
		{Bytes: unit.GB, Via: []string{"a", "shared"}},
		{Bytes: unit.GB, Via: []string{"b", "shared"}},
		{Bytes: unit.GB / 3, Via: []string{"shared"}},
	}
	caps := map[string]unit.BitRate{"a": unit.GBps(2), "b": unit.GBps(2), "shared": unit.GBps(1)}
	events := []Event[string]{
		{At: 0.25, Fail: []string{"a"}},
		{At: 0.5, Restore: []string{"a"}},
	}
	first, err := RunEvents(flows, caps, events, eventPolicy())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		again, err := RunEvents(flows, caps, events, eventPolicy())
		if err != nil {
			t.Fatal(err)
		}
		for i := range flows {
			if again.FlowEnd[i] != first.FlowEnd[i] || again.Stalled[i] != first.Stalled[i] {
				t.Fatalf("trial %d diverged on flow %d", trial, i)
			}
		}
	}
}
