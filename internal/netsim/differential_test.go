package netsim

import (
	"fmt"
	"math"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// This file differentially tests the production solver (Sim, the
// interned CSR implementation in solver.go) against the reference
// oracle fairRates: on randomized flow sets the two must agree on
// every rate and every completion time bit for bit, because the CSR
// solver claims byte-identical output, not just approximate fairness.

// oracleRun is the pre-interning simulator loop: full fairRates
// recompute at every completion event. It is deliberately a verbatim
// transcription of the original Run so Sim.Run has an independent
// implementation to diverge from.
func oracleRun[R comparable](flows []Flow[R], caps map[R]unit.BitRate) (Result, error) {
	n := len(flows)
	res := Result{FlowEnd: make([]unit.Seconds, n), Delivered: make([]unit.Bytes, n)}
	remaining := make([]float64, n)
	active := 0
	for i, f := range flows {
		remaining[i] = float64(f.Bytes)
		if f.Bytes > 0 {
			active++
		}
	}
	var scratch rateScratch[R]
	now := 0.0
	for active > 0 {
		rates := fairRatesInto(&scratch, flows, caps, remaining)
		dt := math.Inf(1)
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			if rates[i] <= 0 {
				return Result{}, fmt.Errorf("%w: flow %d received zero rate", ErrStarvedFlow, i)
			}
			if t := remaining[i] / rates[i]; t < dt {
				dt = t
			}
		}
		now += dt
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			remaining[i] -= rates[i] * dt
			if remaining[i] <= 1e-6 {
				remaining[i] = 0
				res.FlowEnd[i] = unit.Seconds(now)
				res.Delivered[i] = flows[i].Bytes
				active--
			}
		}
	}
	for i := range flows {
		if res.FlowEnd[i] > res.Makespan {
			res.Makespan = res.FlowEnd[i]
		}
	}
	return res, nil
}

// genCase derives a random but valid flow set from a seed: nRes
// resources with varied capacities, flows crossing 1..4 of them
// (duplicates allowed — a flow may charge a resource twice), a
// sprinkling of zero-byte flows, and overlap density controlled by
// how small the resource pool is relative to the flow count.
func genCase(seed uint64) ([]Flow[int], map[int]unit.BitRate) {
	r := rng.New(seed).Split("differential")
	nRes := 1 + r.Intn(12)
	nFlows := 1 + r.Intn(24)
	caps := make(map[int]unit.BitRate, nRes)
	for i := 0; i < nRes; i++ {
		caps[i] = unit.GBps(float64(1 + r.Intn(8)))
	}
	flows := make([]Flow[int], nFlows)
	for i := range flows {
		if r.Intn(8) == 0 {
			// Zero-byte flow: completes at t=0 regardless of Via.
			flows[i] = Flow[int]{Bytes: 0}
			continue
		}
		via := make([]int, 1+r.Intn(4))
		for j := range via {
			via[j] = r.Intn(nRes)
		}
		flows[i] = Flow[int]{
			Bytes: unit.Bytes(1 + r.Intn(1<<20)),
			Via:   via,
		}
	}
	return flows, caps
}

// checkAgainstOracle runs both implementations on the flow set and
// fails on the first bitwise divergence in rates, completion times,
// or delivered bytes.
func checkAgainstOracle(t testing.TB, flows []Flow[int], caps map[int]unit.BitRate) {
	t.Helper()

	// Rates at t=0: the CSR solver's first full refill against the
	// oracle's progressive filling.
	remaining := make([]float64, len(flows))
	for i, f := range flows {
		remaining[i] = float64(f.Bytes)
	}
	want := fairRates(flows, caps, remaining)
	var sim Sim[int]
	if _, err := sim.build(flows, caps); err != nil {
		t.Fatalf("build: %v", err)
	}
	sim.computeRates()
	for i := range flows {
		if sim.rates[i] != want[i] {
			t.Fatalf("initial rate of flow %d: CSR %v, oracle %v", i, sim.rates[i], want[i])
		}
	}

	// Incremental recompute: retire flows one at a time (ascending, a
	// deterministic order distinct from completion order) and compare
	// the dirty-component refill against a from-scratch oracle call.
	for i := range flows {
		if remaining[i] == 0 {
			continue
		}
		remaining[i] = 0
		sim.active[i] = false
		sim.markFlowDirty(i)
		sim.computeRates()
		want = fairRates(flows, caps, remaining)
		for j := range flows {
			if remaining[j] > 0 && sim.rates[j] != want[j] {
				t.Fatalf("after retiring flow %d, rate of flow %d: CSR %v, oracle %v", i, j, sim.rates[j], want[j])
			}
		}
	}

	// End-to-end: completion times and delivered bytes.
	got, gotErr := Run(flows, caps)
	ref, refErr := oracleRun(flows, caps)
	if (gotErr == nil) != (refErr == nil) {
		t.Fatalf("error divergence: CSR %v, oracle %v", gotErr, refErr)
	}
	if gotErr != nil {
		return
	}
	if got.Makespan != ref.Makespan {
		t.Fatalf("makespan: CSR %v, oracle %v", got.Makespan, ref.Makespan)
	}
	for i := range flows {
		if got.FlowEnd[i] != ref.FlowEnd[i] {
			t.Fatalf("flow %d end: CSR %v, oracle %v", i, got.FlowEnd[i], ref.FlowEnd[i])
		}
		if got.Delivered[i] != ref.Delivered[i] {
			t.Fatalf("flow %d delivered: CSR %v, oracle %v", i, got.Delivered[i], ref.Delivered[i])
		}
	}
}

// TestSolverMatchesOracleProperty sweeps seeded random flow sets —
// varying flow counts, shared-resource overlap, and zero-byte flows —
// asserting the CSR solver and the oracle agree bit for bit.
func TestSolverMatchesOracleProperty(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		flows, caps := genCase(seed)
		checkAgainstOracle(t, flows, caps)
	}
}

// TestSolverReuseAcrossCases reruns many cases through one Sim, since
// production callers hold a Sim across flow sets and stale scratch
// from a larger prior case must never leak into a smaller one.
func TestSolverReuseAcrossCases(t *testing.T) {
	var sim Sim[int]
	for seed := uint64(0); seed < 50; seed++ {
		flows, caps := genCase(seed)
		got, gotErr := sim.Run(flows, caps)
		ref, refErr := oracleRun(flows, caps)
		if (gotErr == nil) != (refErr == nil) {
			t.Fatalf("seed %d: error divergence: CSR %v, oracle %v", seed, gotErr, refErr)
		}
		if gotErr != nil {
			continue
		}
		if got.Makespan != ref.Makespan {
			t.Fatalf("seed %d: makespan: CSR %v, oracle %v", seed, got.Makespan, ref.Makespan)
		}
		for i := range flows {
			if got.FlowEnd[i] != ref.FlowEnd[i] {
				t.Fatalf("seed %d: flow %d end: CSR %v, oracle %v", seed, i, got.FlowEnd[i], ref.FlowEnd[i])
			}
		}
	}
}

// FuzzFairRates feeds arbitrary seeds through the same generator and
// differential check; the committed corpus under testdata/fuzz pins
// the structurally interesting cases (single flow, heavy overlap,
// zero-byte mixes) so every `go test` run replays them.
func FuzzFairRates(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1023} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		flows, caps := genCase(seed)
		checkAgainstOracle(t, flows, caps)
	})
}
