package netsim

import (
	"fmt"
	"math"

	"lightpath/internal/unit"
)

// This file is the production solver. The generic, map-indexed
// fairRates in netsim.go stays as the reference oracle; Sim computes
// the same max-min fair rates — bit for bit — over an interned,
// integer-indexed representation:
//
//   - Each distinct resource R is interned to a dense int32 on first
//     sight, scanning flows in index order and each flow's Via in
//     order. Bottleneck tie-breaks do not come from these ids but
//     from a per-refill census order over the active flows (see
//     refill), which reproduces the oracle's `order` slice exactly.
//   - The flow→resource incidence is stored as a CSR (compressed
//     sparse row) pair viaStart/viaRes, and the reverse resource→flow
//     index as resStart/resFlows, both flat []int32. Progressive
//     filling then runs over slice indexing only — no map hashing on
//     the hot path.
//   - Flows and resources are partitioned into connected components
//     of the sharing graph once per call. Rates in one component
//     never depend on another component's flows, so when a
//     completion, failure, or restore event changes a flow's
//     activity, only its component is refilled; every other
//     component keeps its cached rates. A full refill happens
//     exactly once per Run/RunEvents call, when everything starts
//     dirty. (DESIGN.md "Performance engineering" gives the
//     byte-identity argument.)
//
// A zero Sim is ready to use and reuses all internal storage across
// calls, so a caller that simulates many flow sets — the schedule
// executors, the campaign loops — runs allocation-free at steady
// state. A Sim must not be used from multiple goroutines at once.

// Sim is a reusable fluid-flow simulator. The package-level Run and
// RunEvents are shims that run a fresh Sim per call; callers on a hot
// path hold one Sim and call its methods so every scratch structure —
// the interning table, the CSR incidence, rate vectors, and the
// returned result slices — is reused.
type Sim[R comparable] struct {
	// Interning: resource -> dense id in first-use order, and back.
	ids   map[R]int32
	names []R
	// capBps[r] is resource r's capacity in bytes/second.
	capBps []float64
	// CSR flow->resource incidence: flow f occupies
	// viaRes[viaStart[f]:viaStart[f+1]], mirroring Via verbatim
	// (duplicates included, so repeated resources charge capacity
	// exactly as the oracle does).
	viaStart []int32
	viaRes   []int32
	// Reverse CSR resource->flow index: resource r is crossed by
	// resFlows[resStart[r]:resStart[r+1]], ascending flow order.
	resStart []int32
	resFlows []int32
	// Connected components of the sharing graph (resources joined by
	// the flows that cross them), numbered in first-use resource
	// order. compRes/compFlows group member resources and flows per
	// component, both ascending.
	compOfRes     []int32
	compOfFlow    []int32 // -1 for zero-byte flows
	nComp         int
	compResStart  []int32
	compRes       []int32
	compFlowStart []int32
	compFlows     []int32
	uf            []int32 // union-find scratch over resources
	tmp           []int32 // counting-sort cursor scratch
	refillOrder   []int32 // per-refill bottleneck scan order scratch

	// Sharded-solve scratch (RunSharded, shard.go): one refill census
	// arena per engine worker — the only refill state not already
	// partitioned by component — and the per-component error slots the
	// deterministic merge folds in ascending component order.
	shardOrder [][]int32
	compErr    []error

	// Progressive-filling state. active[f] is whether flow f takes
	// part in the rate computation (positive remaining bytes and, for
	// RunEvents, running phase); dirty[c] marks components whose
	// activity changed since their last refill.
	rates    []float64
	frozen   []bool
	residual []float64
	users    []int32
	active   []bool
	dirty    []bool

	// Event-loop scratch, hoisted out of RunEvents so repeated calls
	// do not re-allocate it (the old per-call dead map, phase,
	// deadline and runRemaining slices).
	remaining []float64
	deadRes   []bool
	phase     []flowPhase
	deadline  []float64
	// Per-event failed/restored resource ids, CSR by event index, so
	// the event loop applies health changes without map lookups.
	evFailStart    []int32
	evFail         []int32
	evRestoreStart []int32
	evRestore      []int32

	// Result storage. The slices returned in Result/EventResult alias
	// these and are valid until the next call on the same Sim.
	flowEnd   []unit.Seconds
	delivered []unit.Bytes
	retries   []int
	stalled   []unit.Seconds
}

// grow returns s with length n, reusing capacity. Contents are
// unspecified; callers overwrite or zero what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growZero returns s with length n and every element zeroed.
func growZero[T ~int32 | ~float64 | ~int | ~int64 | bool](s []T, n int) []T {
	s = grow(s, n)
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// build interns the flow set and constructs the CSR incidence, the
// reverse index, and the component partition. It performs the same
// validation, in the same order, as the original Run/RunEvents
// prologue (negative sizes, empty Via, unknown and zero-capacity
// resources) and returns the number of flows with positive bytes.
func (s *Sim[R]) build(flows []Flow[R], caps map[R]unit.BitRate) (int, error) {
	n := len(flows)
	if s.ids == nil {
		s.ids = make(map[R]int32, len(caps))
	} else {
		clear(s.ids)
	}
	s.names = s.names[:0]
	s.capBps = s.capBps[:0]
	s.viaStart = grow(s.viaStart, n+1)
	s.viaRes = s.viaRes[:0]
	s.viaStart[0] = 0
	positive := 0
	for i, f := range flows {
		if f.Bytes < 0 {
			return 0, fmt.Errorf("netsim: flow %d has negative size", i)
		}
		if f.Bytes == 0 {
			s.viaStart[i+1] = int32(len(s.viaRes))
			continue
		}
		if len(f.Via) == 0 {
			return 0, fmt.Errorf("%w: flow %d traverses no resources", ErrStarvedFlow, i)
		}
		for _, r := range f.Via {
			id, ok := s.ids[r]
			if !ok {
				c, okc := caps[r]
				if !okc {
					return 0, fmt.Errorf("netsim: flow %d uses unknown resource %v", i, r)
				}
				if c <= 0 {
					return 0, fmt.Errorf("%w: flow %d crosses zero-capacity resource %v", ErrStarvedFlow, i, r)
				}
				id = int32(len(s.names))
				s.ids[r] = id
				s.names = append(s.names, r)
				s.capBps = append(s.capBps, c.BytesPerSecond())
			}
			s.viaRes = append(s.viaRes, id)
		}
		s.viaStart[i+1] = int32(len(s.viaRes))
		positive++
	}
	nRes := len(s.names)

	// Reverse index by counting sort: ascending resource, then
	// ascending flow (with a flow's duplicate crossings adjacent).
	s.resStart = growZero(s.resStart, nRes+1)
	for _, id := range s.viaRes {
		s.resStart[id+1]++
	}
	for r := 0; r < nRes; r++ {
		s.resStart[r+1] += s.resStart[r]
	}
	s.resFlows = grow(s.resFlows, len(s.viaRes))
	s.tmp = grow(s.tmp, nRes)
	copy(s.tmp, s.resStart[:nRes])
	for f := 0; f < n; f++ {
		for k := s.viaStart[f]; k < s.viaStart[f+1]; k++ {
			r := s.viaRes[k]
			s.resFlows[s.tmp[r]] = int32(f)
			s.tmp[r]++
		}
	}

	// Components: union every flow's resources, then number roots in
	// first-use resource order so the partition is deterministic.
	s.uf = grow(s.uf, nRes)
	for r := range s.uf {
		s.uf[r] = int32(r)
	}
	for f := 0; f < n; f++ {
		lo, hi := s.viaStart[f], s.viaStart[f+1]
		if lo == hi {
			continue
		}
		root := s.find(s.viaRes[lo])
		for k := lo + 1; k < hi; k++ {
			other := s.find(s.viaRes[k])
			if other != root {
				if other < root {
					root, other = other, root
				}
				s.uf[other] = root
			}
		}
	}
	s.compOfRes = grow(s.compOfRes, nRes)
	s.nComp = 0
	for r := 0; r < nRes; r++ {
		root := s.find(int32(r))
		if int(root) == r {
			s.compOfRes[r] = int32(s.nComp)
			s.nComp++
		} else {
			s.compOfRes[r] = s.compOfRes[root]
		}
	}
	s.compOfFlow = grow(s.compOfFlow, n)
	for f := 0; f < n; f++ {
		if s.viaStart[f] == s.viaStart[f+1] {
			s.compOfFlow[f] = -1
			continue
		}
		s.compOfFlow[f] = s.compOfRes[s.viaRes[s.viaStart[f]]]
	}

	// Group members per component, again by counting sort.
	s.compResStart = growZero(s.compResStart, s.nComp+1)
	for _, c := range s.compOfRes[:nRes] {
		s.compResStart[c+1]++
	}
	for c := 0; c < s.nComp; c++ {
		s.compResStart[c+1] += s.compResStart[c]
	}
	s.compRes = grow(s.compRes, nRes)
	s.tmp = grow(s.tmp, s.nComp)
	copy(s.tmp, s.compResStart[:s.nComp])
	for r := 0; r < nRes; r++ {
		c := s.compOfRes[r]
		s.compRes[s.tmp[c]] = int32(r)
		s.tmp[c]++
	}
	s.compFlowStart = growZero(s.compFlowStart, s.nComp+1)
	for f := 0; f < n; f++ {
		if c := s.compOfFlow[f]; c >= 0 {
			s.compFlowStart[c+1]++
		}
	}
	for c := 0; c < s.nComp; c++ {
		s.compFlowStart[c+1] += s.compFlowStart[c]
	}
	s.compFlows = grow(s.compFlows, positiveViaFlows(s.compOfFlow))
	copy(s.tmp, s.compFlowStart[:s.nComp])
	for f := 0; f < n; f++ {
		c := s.compOfFlow[f]
		if c < 0 {
			continue
		}
		s.compFlows[s.tmp[c]] = int32(f)
		s.tmp[c]++
	}

	// Filling state: everything starts dirty, every positive flow
	// active.
	s.rates = growZero(s.rates, n)
	s.frozen = grow(s.frozen, n)
	s.residual = grow(s.residual, nRes)
	s.users = grow(s.users, nRes)
	s.active = grow(s.active, n)
	for f := 0; f < n; f++ {
		s.active[f] = s.viaStart[f] != s.viaStart[f+1]
	}
	s.dirty = grow(s.dirty, s.nComp)
	for c := range s.dirty {
		s.dirty[c] = true
	}
	return positive, nil
}

// positiveViaFlows counts flows assigned to a component.
func positiveViaFlows(compOfFlow []int32) int {
	n := 0
	for _, c := range compOfFlow {
		if c >= 0 {
			n++
		}
	}
	return n
}

// find is union-find lookup with path halving.
func (s *Sim[R]) find(x int32) int32 {
	for s.uf[x] != x {
		s.uf[x] = s.uf[s.uf[x]]
		x = s.uf[x]
	}
	return x
}

// markFlowDirty schedules flow f's component for refilling after its
// activity changed (completion, stall, or resume).
func (s *Sim[R]) markFlowDirty(f int) {
	if c := s.compOfFlow[f]; c >= 0 {
		s.dirty[c] = true
	}
}

// computeRates brings s.rates up to date by refilling every dirty
// component. Clean components keep their cached rates — the
// incremental-recompute contract: a component's rates depend only on
// its own members' activity, so they are exactly what a full refill
// would produce.
func (s *Sim[R]) computeRates() {
	for c := 0; c < s.nComp; c++ {
		if s.dirty[c] {
			s.refillOrder = s.refill(int32(c), s.refillOrder)
			s.dirty[c] = false
		}
	}
}

// refill runs progressive filling over one component: repeatedly find
// its most constrained resource (minimal residual per user), freeze
// that resource's unfrozen flows at the fair share, and charge their
// crossings. Ties between equally constrained resources resolve by
// census order — first use scanning the component's *active* flows
// ascending, each flow's Via in order — which is exactly the oracle's
// `order` slice restricted to this component; interned-id order is
// NOT equivalent, because a retired flow may have been a resource's
// first user. With the scan order matched, the float operations and
// their sequence are identical to fairRatesInto over the same active
// set, so the computed rates are bit-identical to the oracle's.
//
// The census-order scratch is threaded in and returned (capacity
// grown as needed) instead of living on the Sim, because the sharded
// solver refills different components concurrently: every worker owns
// its own scratch while all other refill state — rates, frozen,
// residual, users — is indexed by flow or resource id and therefore
// disjoint between components.
func (s *Sim[R]) refill(c int32, scratch []int32) []int32 {
	res := s.compRes[s.compResStart[c]:s.compResStart[c+1]]
	fls := s.compFlows[s.compFlowStart[c]:s.compFlowStart[c+1]]
	for _, r := range res {
		s.residual[r] = s.capBps[r]
		s.users[r] = 0
	}
	order := scratch[:0]
	for _, f := range fls {
		s.rates[f] = 0
		if !s.active[f] {
			s.frozen[f] = true
			continue
		}
		s.frozen[f] = false
		for k := s.viaStart[f]; k < s.viaStart[f+1]; k++ {
			r := s.viaRes[k]
			if s.users[r] == 0 {
				order = append(order, r)
			}
			s.users[r]++
		}
	}
	for {
		var bestR int32 = -1
		best := math.Inf(1)
		for _, r := range order {
			n := s.users[r]
			if n == 0 {
				continue
			}
			if share := s.residual[r] / float64(n); share < best {
				best = share
				bestR = r
			}
		}
		if bestR < 0 {
			return order
		}
		for _, f := range s.resFlows[s.resStart[bestR]:s.resStart[bestR+1]] {
			if s.frozen[f] {
				continue
			}
			s.rates[f] = best
			s.frozen[f] = true
			for k := s.viaStart[f]; k < s.viaStart[f+1]; k++ {
				r := s.viaRes[k]
				s.residual[r] -= best
				if s.residual[r] < 0 {
					s.residual[r] = 0
				}
				s.users[r]--
			}
		}
	}
}

// Run simulates the flows sharing the given resource capacities until
// all complete, exactly like the package-level Run, reusing the Sim's
// storage. The returned slices alias that storage and are valid until
// the next call on this Sim.
func (s *Sim[R]) Run(flows []Flow[R], caps map[R]unit.BitRate) (Result, error) {
	active, err := s.build(flows, caps)
	if err != nil {
		return Result{}, err
	}
	n := len(flows)
	s.flowEnd = growZero(s.flowEnd, n)
	s.delivered = growZero(s.delivered, n)
	res := Result{FlowEnd: s.flowEnd, Delivered: s.delivered}
	s.remaining = grow(s.remaining, n)
	remaining := s.remaining
	for i, f := range flows {
		remaining[i] = float64(f.Bytes)
	}

	now := 0.0
	//lightpath:hotloop
	for active > 0 {
		s.computeRates()
		rates := s.rates
		// Advance to the earliest completion.
		dt := math.Inf(1)
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			if rates[i] <= 0 {
				return Result{}, fmt.Errorf("%w: flow %d received zero rate", ErrStarvedFlow, i)
			}
			if t := remaining[i] / rates[i]; t < dt {
				dt = t
			}
		}
		now += dt
		for i := range flows {
			if remaining[i] <= 0 {
				continue
			}
			remaining[i] -= rates[i] * dt
			// Tolerate float round-off at the completion boundary.
			if remaining[i] <= 1e-6 {
				remaining[i] = 0
				res.FlowEnd[i] = unit.Seconds(now)
				res.Delivered[i] = flows[i].Bytes
				active--
				s.active[i] = false
				s.markFlowDirty(i)
			}
		}
	}
	for i := range flows {
		if res.FlowEnd[i] > res.Makespan {
			res.Makespan = res.FlowEnd[i]
		}
	}
	return res, nil
}

// buildEvents interns the events' failed/restored resources into flat
// CSR form. Resources no flow crosses are dropped: failing or
// restoring them cannot stall anyone, exactly as with the oracle's
// dead-set map.
func (s *Sim[R]) buildEvents(events []Event[R]) {
	s.evFailStart = grow(s.evFailStart, len(events)+1)
	s.evRestoreStart = grow(s.evRestoreStart, len(events)+1)
	s.evFail = s.evFail[:0]
	s.evRestore = s.evRestore[:0]
	s.evFailStart[0] = 0
	s.evRestoreStart[0] = 0
	for i, ev := range events {
		for _, r := range ev.Fail {
			if id, ok := s.ids[r]; ok {
				s.evFail = append(s.evFail, id)
			}
		}
		for _, r := range ev.Restore {
			if id, ok := s.ids[r]; ok {
				s.evRestore = append(s.evRestore, id)
			}
		}
		s.evFailStart[i+1] = int32(len(s.evFail))
		s.evRestoreStart[i+1] = int32(len(s.evRestore))
	}
}

// healthy reports whether none of flow f's resources is failed.
func (s *Sim[R]) healthy(f int) bool {
	for k := s.viaStart[f]; k < s.viaStart[f+1]; k++ {
		if s.deadRes[s.viaRes[k]] {
			return false
		}
	}
	return true
}

// RunEvents simulates the flows under the failure events, exactly
// like the package-level RunEvents, reusing the Sim's storage. The
// returned slices alias that storage and are valid until the next
// call on this Sim.
func (s *Sim[R]) RunEvents(flows []Flow[R], caps map[R]unit.BitRate, events []Event[R], pol RetryPolicy) (EventResult, error) {
	if err := pol.validate(); err != nil {
		return EventResult{}, err
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			return EventResult{}, fmt.Errorf("netsim: events not sorted by time (event %d at %v after %v)",
				i, events[i].At, events[i-1].At)
		}
	}
	active, err := s.build(flows, caps)
	if err != nil {
		return EventResult{}, err
	}
	s.buildEvents(events)
	n := len(flows)
	s.flowEnd = growZero(s.flowEnd, n)
	s.delivered = growZero(s.delivered, n)
	s.retries = growZero(s.retries, n)
	s.stalled = growZero(s.stalled, n)
	res := EventResult{
		Result:  Result{FlowEnd: s.flowEnd, Delivered: s.delivered},
		Retries: s.retries,
		Stalled: s.stalled,
	}
	s.remaining = grow(s.remaining, n)
	s.phase = grow(s.phase, n)
	s.deadline = grow(s.deadline, n)
	remaining, phase, deadline := s.remaining, s.phase, s.deadline
	for i, f := range flows {
		remaining[i] = float64(f.Bytes)
		deadline[i] = 0
		if f.Bytes > 0 {
			phase[i] = phaseRunning
		} else {
			phase[i] = phaseDone
		}
	}
	s.deadRes = growZero(s.deadRes, len(s.names))

	// Stalled flows transmit nothing, so they are excluded from the
	// rate computation entirely (inactive) and the survivors share
	// the full configured capacities.
	now := 0.0
	eventIdx := 0
	//lightpath:hotloop
	for active > 0 {
		// Rates over running flows only; only components whose
		// activity changed since the previous iteration refill.
		s.computeRates()
		rates := s.rates

		// Advance to the next transition: a completion, an external
		// event, a detection expiry, or a backoff expiry.
		dt := math.Inf(1)
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				if rates[i] <= 0 {
					return EventResult{}, fmt.Errorf("%w: flow %d received zero rate", ErrStarvedFlow, i)
				}
				if t := remaining[i] / rates[i]; t < dt {
					dt = t
				}
			case phaseStalled, phaseBackoff:
				if t := deadline[i] - now; t < dt {
					dt = t
				}
			}
		}
		if eventIdx < len(events) {
			if t := float64(events[eventIdx].At) - now; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) {
			return EventResult{}, fmt.Errorf("%w (t=%v)", ErrStalledForever, unit.Seconds(now))
		}
		if dt < 0 {
			dt = 0
		}
		now += dt

		// Progress and stall accounting.
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				remaining[i] -= rates[i] * dt
				if remaining[i] <= 1e-6 {
					remaining[i] = 0
					phase[i] = phaseDone
					res.FlowEnd[i] = unit.Seconds(now)
					res.Delivered[i] = flows[i].Bytes
					active--
					s.active[i] = false
					s.markFlowDirty(i)
				}
			case phaseStalled, phaseBackoff:
				res.Stalled[i] += unit.Seconds(dt)
			}
		}

		// External events at now.
		for eventIdx < len(events) && float64(events[eventIdx].At) <= now+1e-15 {
			for _, r := range s.evFail[s.evFailStart[eventIdx]:s.evFailStart[eventIdx+1]] {
				s.deadRes[r] = true
			}
			for _, r := range s.evRestore[s.evRestoreStart[eventIdx]:s.evRestoreStart[eventIdx+1]] {
				s.deadRes[r] = false
			}
			eventIdx++
		}

		// Phase transitions driven by health and deadlines. Every
		// running<->not-running transition dirties the flow's
		// component; stalled<->backoff moves do not change rates.
		for i := range flows {
			switch phase[i] {
			case phaseRunning:
				if !s.healthy(i) {
					phase[i] = phaseStalled
					deadline[i] = now + float64(pol.Detection)
					s.active[i] = false
					s.markFlowDirty(i)
				}
			case phaseStalled:
				if s.healthy(i) {
					// Healed inside the detection window: transparent
					// resume, no retransmission.
					phase[i] = phaseRunning
					s.active[i] = true
					s.markFlowDirty(i)
					continue
				}
				if now >= deadline[i]-1e-15 {
					// Declared dead: abandon the attempt, pay the
					// backoff, retransmit from scratch.
					res.WastedBytes += flows[i].Bytes - unit.Bytes(remaining[i])
					res.Retries[i]++
					if res.Retries[i] > pol.MaxRetries {
						return EventResult{}, fmt.Errorf("%w: flow %d after %d attempts", ErrRetriesExhausted, i, res.Retries[i])
					}
					remaining[i] = float64(flows[i].Bytes)
					backoff := float64(pol.Backoff) * math.Pow(pol.BackoffFactor, float64(res.Retries[i]-1))
					phase[i] = phaseBackoff
					deadline[i] = now + backoff
				}
			case phaseBackoff:
				if now >= deadline[i]-1e-15 {
					if s.healthy(i) {
						phase[i] = phaseRunning
						s.active[i] = true
						s.markFlowDirty(i)
					} else {
						// Retry into a dead fabric: stall again and
						// let detection charge the next retry.
						phase[i] = phaseStalled
						deadline[i] = now + float64(pol.Detection)
					}
				}
			}
		}
	}
	for i := range flows {
		if res.FlowEnd[i] > res.Makespan {
			res.Makespan = res.FlowEnd[i]
		}
	}
	return res, nil
}
