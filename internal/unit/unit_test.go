package unit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesBits(t *testing.T) {
	if got := Bytes(1).Bits(); got != 8 {
		t.Fatalf("1 byte = %v bits, want 8", got)
	}
	if got := GB.Bits(); got != 8e9 {
		t.Fatalf("1GB = %v bits, want 8e9", got)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{3 * MB, "3.00MB"},
		{GB, "1.00GB"},
		{1.5 * TB, "1.50TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestGBps(t *testing.T) {
	// The paper's "over 300 gigabytes per second in one direction".
	r := GBps(300)
	if r != 2400*Gbps {
		t.Fatalf("GBps(300) = %v, want 2400 Gbps", r)
	}
	if got := r.BytesPerSecond(); got != 300e9 {
		t.Fatalf("BytesPerSecond = %v, want 300e9", got)
	}
}

func TestTimeFor(t *testing.T) {
	r := GBps(1) // 1 GB/s
	if got := r.TimeFor(GB); math.Abs(float64(got)-1) > 1e-12 {
		t.Fatalf("1GB at 1GB/s = %v, want 1s", got)
	}
	if got := r.TimeFor(0); got != 0 {
		t.Fatalf("zero size transfer = %v, want 0", got)
	}
	if got := BitRate(0).TimeFor(GB); !math.IsInf(float64(got), 1) {
		t.Fatalf("transfer at zero rate = %v, want +Inf", got)
	}
	if got := BitRate(0).TimeFor(0); got != 0 {
		t.Fatalf("zero transfer at zero rate = %v, want 0", got)
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{224 * Gbps, "224.00Gbps"},
		{3.584 * Tbps, "3.58Tbps"},
		{500 * Kbps, "500.00Kbps"},
		{12 * Mbps, "12.00Mbps"},
		{42, "42bps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("BitRate(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0s"},
		{3.7 * Microsecond, "3.70us"},
		{42 * Nanosecond, "42.0ns"},
		{1.5 * Millisecond, "1.50ms"},
		{2.25, "2.250s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestDecibelLinearRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 60) // keep within a sane dynamic range
		d := Decibel(db)
		back := FromLinear(d.Linear())
		return math.Abs(float64(back)-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecibelKnownPoints(t *testing.T) {
	if got := Decibel(3).Linear(); math.Abs(got-1.9952623) > 1e-6 {
		t.Errorf("3 dB linear = %v, want ~1.995", got)
	}
	if got := Decibel(10).Linear(); math.Abs(got-10) > 1e-12 {
		t.Errorf("10 dB linear = %v, want 10", got)
	}
	if got := Decibel(0).Linear(); got != 1 {
		t.Errorf("0 dB linear = %v, want 1", got)
	}
}

func TestDBm(t *testing.T) {
	if got := DBm(0).Milliwatts(); got != 1 {
		t.Fatalf("0 dBm = %v mW, want 1", got)
	}
	if got := DBm(10).Milliwatts(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("10 dBm = %v mW, want 10", got)
	}
	// Launch at 10 dBm, lose 3 dB, expect 7 dBm.
	if got := DBm(10).Sub(3); got != 7 {
		t.Fatalf("10 dBm - 3 dB = %v, want 7 dBm", got)
	}
}

func TestDBmFromMilliwattsRoundTrip(t *testing.T) {
	f := func(mw float64) bool {
		mw = math.Abs(mw)
		if mw < 1e-9 || mw > 1e9 || math.IsNaN(mw) || math.IsInf(mw, 0) {
			return true
		}
		back := DBmFromMilliwatts(mw).Milliwatts()
		return math.Abs(back-mw)/mw < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondsMicros(t *testing.T) {
	if got := (3.7 * Microsecond).Micros(); math.Abs(got-3.7) > 1e-12 {
		t.Fatalf("Micros = %v, want 3.7", got)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b Seconds
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"both zero", 0, 0, true},
		{"within relative tolerance", 1, 1 + 1e-12, true},
		{"outside relative tolerance", 1, 1 + 1e-6, false},
		{"near zero within absolute tolerance", 0, 1e-13, true},
		{"near zero outside absolute tolerance", 0, 1e-9, false},
		{"large magnitudes scale the tolerance", 1e12, 1e12 * (1 + 1e-10), true},
		{"sign flip", 1, -1, false},
		{"shared infinity", Seconds(math.Inf(1)), Seconds(math.Inf(1)), true},
		{"opposite infinities", Seconds(math.Inf(1)), Seconds(math.Inf(-1)), false},
		{"nan never equals", Seconds(math.NaN()), Seconds(math.NaN()), false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := ApproxEqual(c.b, c.a); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v) = %v, want %v (asymmetric)", c.name, c.b, c.a, got, c.want)
		}
	}
}

func TestApproxEqualAcrossUnitTypes(t *testing.T) {
	// The helper is generic over every float-backed newtype.
	if !ApproxEqual(3*GB, 3*GB) {
		t.Error("Bytes: 3GB should approx-equal itself")
	}
	if ApproxEqual(Decibel(0.25), Decibel(0.5)) {
		t.Error("Decibel: 0.25 dB should not approx-equal 0.5 dB")
	}
	if !ApproxEqual(DBm(-17), DBm(-17)-DBm(1e-12)) {
		t.Error("DBm: sub-femto perturbation should stay approx-equal")
	}
}

func TestApproxEqualAccumulationOrder(t *testing.T) {
	// The motivating case: the same sum in two different orders is not
	// bitwise equal but must compare approx-equal.
	vals := []Seconds{1e-9, 3.3e-4, 2.7e-1, 5e3, 1e-7}
	var fwd, rev Seconds
	for i := range vals {
		fwd += vals[i]
		rev += vals[len(vals)-1-i]
	}
	if fwd == rev {
		t.Skip("sums happen to be bitwise equal on this platform")
	}
	if !ApproxEqual(fwd, rev) {
		t.Errorf("order-permuted sums %v and %v should approx-equal", fwd, rev)
	}
}

func TestSecondsPerByte(t *testing.T) {
	// 1 ms amortized over a 1 KB packet is 1 microsecond per byte.
	got := Millisecond.PerByte(1 * KB)
	if math.Abs(got-1e-6) > 1e-18 {
		t.Fatalf("1ms over 1KB = %v s/B, want 1e-6", got)
	}
}
