// Package unit provides the physical quantities used throughout the
// LIGHTPATH simulator: data sizes, bit rates, optical power in dB and
// linear scale, and simulated time.
//
// Simulated time is represented as float64 seconds rather than
// time.Duration: collective-communication timescales span nine orders of
// magnitude (nanosecond alpha overheads to multi-second transfers of
// multi-gigabyte buffers) and the cost model divides and scales times in
// ways that are awkward with integer nanoseconds.
package unit

import (
	"fmt"
	"math"
)

// Bytes is a data size in bytes.
type Bytes float64

// Common data sizes.
const (
	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12

	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// Bits returns the size in bits.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// String formats the size with a binary-agnostic decimal suffix.
func (b Bytes) String() string {
	switch {
	case math.Abs(float64(b)) >= float64(TB):
		return fmt.Sprintf("%.2fTB", float64(b/TB))
	case math.Abs(float64(b)) >= float64(GB):
		return fmt.Sprintf("%.2fGB", float64(b/GB))
	case math.Abs(float64(b)) >= float64(MB):
		return fmt.Sprintf("%.2fMB", float64(b/MB))
	case math.Abs(float64(b)) >= float64(KB):
		return fmt.Sprintf("%.2fKB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// BitRate is a data rate in bits per second.
type BitRate float64

// Common data rates.
const (
	Kbps BitRate = 1e3
	Mbps BitRate = 1e6
	Gbps BitRate = 1e9
	Tbps BitRate = 1e12
)

// GBps constructs a BitRate from gigabytes per second, the unit in which
// the paper quotes accelerator interconnect bandwidth (e.g. "over 300
// gigabytes per second in one direction").
func GBps(gb float64) BitRate { return BitRate(gb * 8e9) }

// BytesPerSecond returns the rate expressed in bytes per second.
func (r BitRate) BytesPerSecond() float64 { return float64(r) / 8 }

// TimeFor returns the seconds needed to transmit size at this rate.
// TimeFor of a zero or negative rate returns +Inf for a positive size
// (the transfer never completes) and 0 for a zero size.
func (r BitRate) TimeFor(size Bytes) Seconds {
	if size <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(size.Bits() / float64(r))
}

// String formats the rate with an SI suffix.
func (r BitRate) String() string {
	switch {
	case math.Abs(float64(r)) >= float64(Tbps):
		return fmt.Sprintf("%.2fTbps", float64(r/Tbps))
	case math.Abs(float64(r)) >= float64(Gbps):
		return fmt.Sprintf("%.2fGbps", float64(r/Gbps))
	case math.Abs(float64(r)) >= float64(Mbps):
		return fmt.Sprintf("%.2fMbps", float64(r/Mbps))
	case math.Abs(float64(r)) >= float64(Kbps):
		return fmt.Sprintf("%.2fKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}

// Seconds is a simulated duration or timestamp in seconds.
type Seconds float64

// Common durations.
const (
	Nanosecond  Seconds = 1e-9
	Microsecond Seconds = 1e-6
	Millisecond Seconds = 1e-3
	Second      Seconds = 1
	Minute      Seconds = 60
	Hour        Seconds = 3600
	Day         Seconds = 86400
)

// Micros returns the duration in microseconds.
func (s Seconds) Micros() float64 { return float64(s) * 1e6 }

// PerByte amortizes the duration over each byte of a size-b unit of
// work, returning seconds per byte. It is the named, dimensionally
// explicit form of the raw division s/b that the unitsafety analyzer
// would otherwise flag as unit mixing.
func (s Seconds) PerByte(b Bytes) float64 { return float64(s) / float64(b) }

// String formats the duration with the most natural SI prefix.
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs == 0:
		return "0s"
	case abs < float64(Microsecond):
		return fmt.Sprintf("%.1fns", float64(s)*1e9)
	case abs < float64(Millisecond):
		return fmt.Sprintf("%.2fus", float64(s)*1e6)
	case abs < float64(Second):
		return fmt.Sprintf("%.2fms", float64(s)*1e3)
	default:
		return fmt.Sprintf("%.3fs", float64(s))
	}
}

// Decibel is a power ratio in dB. Optical losses are positive dB values.
type Decibel float64

// Linear returns the linear power ratio corresponding to d treated as a
// gain: Linear(3 dB) ~= 2. A loss of x dB is a gain of -x dB.
func (d Decibel) Linear() float64 { return math.Pow(10, float64(d)/10) }

// FromLinear converts a linear power ratio to dB.
func FromLinear(ratio float64) Decibel {
	return Decibel(10 * math.Log10(ratio))
}

// DBm is an absolute optical power referenced to 1 mW.
type DBm float64

// Milliwatts returns the absolute power in mW.
func (p DBm) Milliwatts() float64 { return math.Pow(10, float64(p)/10) }

// DBmFromMilliwatts converts an absolute power in mW to dBm.
func DBmFromMilliwatts(mw float64) DBm { return DBm(10 * math.Log10(mw)) }

// Sub applies a loss in dB to an absolute power: p - loss.
func (p DBm) Sub(loss Decibel) DBm { return p - DBm(loss) }

// Tolerances for ApproxEqual: two quantities are approximately equal
// when they differ by at most relTol of the larger magnitude, or by at
// most absTol near zero (where the relative test degenerates).
const (
	relTol = 1e-9
	absTol = 1e-12
)

// ApproxEqual reports whether two float-backed quantities agree to
// within a relative tolerance of 1e-9 (absolute 1e-12 near zero).
// Simulation results are sums and products of floats whose rounding
// depends on evaluation order, so exact ==/!= on computed quantities
// is almost always a bug; the unitsafety analyzer flags such
// comparisons and points here.
func ApproxEqual[T ~float64](a, b T) bool {
	x, y := float64(a), float64(b)
	if x == y {
		return true // also covers shared infinities and exact zeros
	}
	if math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsNaN(x) || math.IsNaN(y) {
		// Mismatched infinities and NaNs are never approximately equal;
		// without this guard the relative test below would accept
		// +Inf vs -Inf because Inf <= relTol*Inf.
		return false
	}
	diff := math.Abs(x - y)
	if diff <= absTol {
		return true
	}
	return diff <= relTol*math.Max(math.Abs(x), math.Abs(y))
}

// Meters is a physical length.
type Meters float64

// Common lengths used by the wafer geometry.
const (
	Micrometer Meters = 1e-6
	Millimeter Meters = 1e-3
	Centimeter Meters = 1e-2
)
