package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// Tabular is implemented by results whose data series can be exported
// for plotting — the raw points behind each regenerated figure.
type Tabular interface {
	// CSV returns the column header and data rows.
	CSV() (header []string, rows [][]string)
}

// WriteCSV writes a tabular result to path, creating parent
// directories as needed.
func WriteCSV(path string, t Tabular) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer func() {
		// A failed close can lose buffered rows; report it unless an
		// earlier write error already explains the loss.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("experiments: %w", cerr)
		}
	}()
	w := csv.NewWriter(f)
	header, rows := t.CSV()
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// f64 renders any float-backed value — bare float64 or an
// internal/unit newtype — with %g. Taking a ~float64 type parameter
// instead of float64 means unit-typed values cross the serialization
// boundary without a laundering float64(...) cast, so the unittaint
// analyzer can tell this formatter apart from dimensioned arithmetic.
func f64[T ~float64](v T) string { return fmt.Sprintf("%g", float64(v)) }

// CSV implements Tabular: (time_us, amplitude) of the step response.
func (r Fig3aResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Trace))
	for _, s := range r.Trace {
		rows = append(rows, []string{f64(s.T.Micros()), f64(s.V)})
	}
	return []string{"time_us", "amplitude"}, rows
}

// CSV implements Tabular: (loss_db, density) histogram bins.
func (r Fig3bResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Bins))
	for _, b := range r.Bins {
		rows = append(rows, []string{f64(b[0]), f64(b[1])})
	}
	return []string{"loss_db", "density"}, rows
}

// CSV implements Tabular: per-slice utilization and end-to-end times.
func (r Fig5Result) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Slice, row.Shape,
			f64(row.Electrical), f64(row.Optical),
			row.Algorithm,
			f64(row.ElectricalTime), f64(row.OpticalTime),
			f64(row.Speedup),
		})
	}
	return []string{"slice", "shape", "elec_util", "opt_util", "algorithm",
		"elec_time_s", "opt_time_s", "speedup"}, rows
}

// CSV implements Tabular: the buffer sweep series.
func (r SweepResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f64(p.Buffer),
			f64(p.ElectricalTime), f64(p.OpticalTime),
			f64(p.Speedup),
		})
	}
	return []string{"buffer_bytes", "elec_time_s", "opt_time_s", "speedup"}, rows
}

// CSV implements Tabular: the all-to-all sweep series.
func (r AllToAllResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			f64(p.Buffer),
			f64(p.ElectricalTime), f64(p.OpticalTime),
			f64(p.Speedup),
		})
	}
	return []string{"buffer_bytes", "elec_time_s", "opt_time_s", "speedup"}, rows
}

// CSV implements Tabular: the BER waterfall curve.
func (r WaterfallResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{f64(p.Rx), f64(p.BER)})
	}
	return []string{"rx_dbm", "ber"}, rows
}

// CSV implements Tabular: the one-shot message-size comparison.
func (r HostnetResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.SizePoints))
	for _, p := range r.SizePoints {
		rows = append(rows, []string{f64(p[0]), f64(p[1]), f64(p[2])})
	}
	return []string{"size_bytes", "packet_s", "circuit_cold_s"}, rows
}

// CSV implements Tabular: the policy study table.
func (r SchedulerResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, f64(row.Bytes),
			f64(row.Eager), f64(row.Static),
			f64(row.Hysteresis), f64(row.Caching),
			f64(row.Optimal),
		})
	}
	return []string{"workload", "bytes", "eager_s", "static_s",
		"hysteresis_s", "caching_s", "optimal_s"}, rows
}
