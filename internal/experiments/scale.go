package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/core"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// ScaleRow is one cluster size of the Figure 5a scaling study.
type ScaleRow struct {
	Cubes    int
	Shape    string
	Chips    int
	Steps    int
	ElecTime unit.Seconds
	OptTime  unit.Seconds
	Speedup  float64
}

// ScaleResult is the Figure 5a study: OCSes splice 4x4x4 cubes into
// larger tori ("The optical circuit switches can be programmed to
// directly connect multiple racks or cubes together into larger
// tori"); a full multi-cube slice runs the 3-D bucket AllReduce over
// the joined torus. Both interconnects serve full-torus slices at
// their static per-dimension bandwidth, so the photonic advantage is
// neutral here — the point is that the fabric *scales*: time grows
// with the slice while per-chip throughput holds.
type ScaleResult struct {
	Buffer unit.Bytes
	Rows   []ScaleRow
}

// String renders the series.
func (r ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5a scaling: cubes spliced into larger tori (AllReduce of %v)\n", r.Buffer)
	fmt.Fprintf(&b, "  %-6s %-8s %-6s %-6s %-14s %-14s %-8s\n",
		"cubes", "torus", "chips", "steps", "electrical", "optical", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-6d %-8s %-6d %-6d %-14v %-14v %.2fx\n",
			row.Cubes, row.Shape, row.Chips, row.Steps, row.ElecTime, row.OptTime, row.Speedup)
	}
	return b.String()
}

// CSV implements Tabular.
func (r ScaleResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Cubes), row.Shape, fmt.Sprintf("%d", row.Chips),
			f64(float64(row.ElecTime)), f64(float64(row.OptTime)), f64(row.Speedup),
		})
	}
	return []string{"cubes", "shape", "chips", "elec_time_s", "opt_time_s", "speedup"}, rows
}

// Scale joins 1, 2 and 4 cubes along Z (verifying the OCS splices on
// a real Cluster first) and plans the full-torus AllReduce on each.
func Scale(buffer unit.Bytes, seed uint64) (ScaleResult, error) {
	res := ScaleResult{Buffer: buffer}
	for _, cubes := range []int{1, 2, 4} {
		// The OCS-level splice: cubes joined along Z must compose into
		// one torus of extent 4*cubes.
		if cubes > 1 {
			cluster, err := torus.NewCluster(torus.TPUv4RackShape, cubes)
			if err != nil {
				return res, err
			}
			seq := make([]int, cubes)
			for i := range seq {
				seq[i] = i
			}
			if err := cluster.Join(2, seq); err != nil {
				return res, err
			}
		}
		shape := torus.Shape{4, 4, 4 * cubes}
		fabric, err := core.New(core.Options{RackShape: shape, Seed: seed})
		if err != nil {
			return res, err
		}
		slice := &torus.Slice{Name: fmt.Sprintf("%d-cube", cubes), Origin: torus.Coord{0, 0, 0}, Shape: shape}
		a, err := torus.NewAllocation(fabric.Torus(), []*torus.Slice{slice})
		if err != nil {
			return res, err
		}
		plan, err := fabric.PlanAllReduce(a, 0, buffer)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, ScaleRow{
			Cubes:    cubes,
			Shape:    shape.String(),
			Chips:    shape.Size(),
			Steps:    plan.Schedule.NumSteps(),
			ElecTime: plan.ElectricalTime,
			OptTime:  plan.OpticalTime,
			Speedup:  plan.Speedup(),
		})
	}
	return res, nil
}
