package experiments

import (
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// The campaign benchmarks behind `make bench`: each runs one
// Monte-Carlo campaign end to end and reports exactly one paper
// metric via b.ReportMetric — a seed-deterministic simulation
// quantity that `make bench-smoke` diffs against BENCH_baseline.json.
// The Seq/Par pairs measure the engine's fan-out: on a multi-core
// machine Par's ns/op should sit well below Seq's, while the paper
// metric is identical by the determinism contract.

// benchSequential forces the engine sequential for one benchmark.
func benchSequential(b *testing.B) {
	engine.SetParallel(false)
	b.Cleanup(func() { engine.SetParallel(true) })
}

func BenchmarkTenantSweepSeq(b *testing.B) {
	benchSequential(b)
	var res TenantSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = TenantSweep(6, 20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ElecMean, "elec_mean_util")
}

func BenchmarkTenantSweepPar(b *testing.B) {
	var res TenantSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = TenantSweep(6, 20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ElecMean, "elec_mean_util")
}

func BenchmarkRepairabilitySeq(b *testing.B) {
	benchSequential(b)
	var res RepairabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Repairability(21, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OpticalOK)/float64(res.Trials), "optical_ok_frac")
}

func BenchmarkRepairabilityPar(b *testing.B) {
	var res RepairabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Repairability(21, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OpticalOK)/float64(res.Trials), "optical_ok_frac")
}

func BenchmarkChaosSeq(b *testing.B) {
	benchSequential(b)
	var res ChaosResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Chaos(2024, 3, unit.MB); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BlastRatio, "blast_ratio")
}

func BenchmarkChaosPar(b *testing.B) {
	var res ChaosResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Chaos(2024, 3, unit.MB); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BlastRatio, "blast_ratio")
}

func BenchmarkScheduler(b *testing.B) {
	var res SchedulerResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Scheduler(1, 12); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].CachingReconfigs), "caching_reconfigs")
}
