package experiments

import (
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// The campaign benchmarks behind `make bench`: each runs one
// Monte-Carlo campaign end to end and reports exactly one paper
// metric via b.ReportMetric — a seed-deterministic simulation
// quantity that `make bench-smoke` diffs against BENCH_baseline.json.
// The Seq/Par pairs measure the engine's fan-out: on a multi-core
// machine Par's ns/op should sit well below Seq's, while the paper
// metric is identical by the determinism contract.

// benchSequential forces the engine sequential for one benchmark.
func benchSequential(b *testing.B) {
	engine.SetParallel(false)
	b.Cleanup(func() { engine.SetParallel(true) })
}

// warmup runs one untimed campaign before the measured loop: under
// `make bench`'s short time budget the expensive campaigns run only
// once or a handful of times, where a cold first iteration would
// charge heap growth and page faults to the measured runs.
func warmup(b *testing.B, run func() error) {
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

func BenchmarkTenantSweepSeq(b *testing.B) {
	benchSequential(b)
	var res TenantSweepResult
	warmup(b, func() error { _, err := TenantSweep(6, 20); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = TenantSweep(6, 20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ElecMean, "elec_mean_util")
}

func BenchmarkTenantSweepPar(b *testing.B) {
	var res TenantSweepResult
	warmup(b, func() error { _, err := TenantSweep(6, 20); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = TenantSweep(6, 20); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ElecMean, "elec_mean_util")
}

func BenchmarkRepairabilitySeq(b *testing.B) {
	benchSequential(b)
	var res RepairabilityResult
	warmup(b, func() error { _, err := Repairability(21, 30); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Repairability(21, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OpticalOK)/float64(res.Trials), "optical_ok_frac")
}

func BenchmarkRepairabilityPar(b *testing.B) {
	var res RepairabilityResult
	warmup(b, func() error { _, err := Repairability(21, 30); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Repairability(21, 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OpticalOK)/float64(res.Trials), "optical_ok_frac")
}

func BenchmarkChaosSeq(b *testing.B) {
	benchSequential(b)
	var res ChaosResult
	warmup(b, func() error { _, err := Chaos(2024, 3, unit.MB); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Chaos(2024, 3, unit.MB); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BlastRatio, "blast_ratio")
}

func BenchmarkChaosPar(b *testing.B) {
	var res ChaosResult
	warmup(b, func() error { _, err := Chaos(2024, 3, unit.MB); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Chaos(2024, 3, unit.MB); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BlastRatio, "blast_ratio")
}

func BenchmarkSoakSeq(b *testing.B) {
	benchSequential(b)
	var res SoakResult
	warmup(b, func() error { _, err := Soak(2024, 2); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Soak(2024, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanAvailability, "mean_availability")
}

func BenchmarkSoakPar(b *testing.B) {
	var res SoakResult
	warmup(b, func() error { _, err := Soak(2024, 2); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Soak(2024, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanAvailability, "mean_availability")
}

// The RailFabric pair is the component-sharded solver's scale gate:
// 10,240 endpoints, 1,310,720 flows, 1,272 independent components.
// Besides the deterministic makespan paper metric, each reports
// ns/flow — a timing metric (machine-dependent, compared under the
// ns tolerance, never bit-exact) that normalizes the solve cost by
// the flow count. On a multi-core machine Par's ns/flow sits a
// worker-count factor below Seq's; the paper metric is identical by
// the sharded solver's determinism contract.

func BenchmarkRailFabricSeq(b *testing.B) {
	benchSequential(b)
	var res RailFabricResult
	cfg := DefaultRailFabricConfig()
	warmup(b, func() error { _, err := RailFabric(cfg); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = RailFabric(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Makespan.Micros(), "rail_makespan_us")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(res.Flows)), "ns/flow")
}

func BenchmarkRailFabricPar(b *testing.B) {
	var res RailFabricResult
	cfg := DefaultRailFabricConfig()
	warmup(b, func() error { _, err := RailFabric(cfg); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = RailFabric(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Makespan.Micros(), "rail_makespan_us")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(res.Flows)), "ns/flow")
}

// The ControllerServe pair measures the lightpath-controller load
// campaign sampled at 2 trials (256k requests through the full
// deadline/retry/breaker/degrade ladder). The paper metric is the
// worst per-trial p99 setup latency — a seed-deterministic simulation
// quantity — and ns/request normalizes the serving cost by the
// attempt count (retries and releases included) as a timing metric.

func BenchmarkControllerServeSeq(b *testing.B) {
	benchSequential(b)
	var res ControllerResult
	run := func() error {
		var err error
		res, err = ControllerWithOptions(2024, ControllerOptions{Trials: 2})
		return err
	}
	warmup(b, run)
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WorstP99us, "ctrl_p99_us")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(res.Attempts)), "ns/request")
}

func BenchmarkControllerServePar(b *testing.B) {
	var res ControllerResult
	run := func() error {
		var err error
		res, err = ControllerWithOptions(2024, ControllerOptions{Trials: 2})
		return err
	}
	warmup(b, run)
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WorstP99us, "ctrl_p99_us")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(res.Attempts)), "ns/request")
}

func BenchmarkScheduler(b *testing.B) {
	var res SchedulerResult
	warmup(b, func() error { _, err := Scheduler(1, 12); return err })
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = Scheduler(1, 12); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].CachingReconfigs), "caching_reconfigs")
}
