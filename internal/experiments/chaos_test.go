package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lightpath/internal/unit"
)

// TestChaosCampaign runs a small campaign and checks the headline
// claims: every interrupted collective recovers to the exact result,
// repairs stay within twice the analytic bound, and the optical stall
// set beats the electrical one.
func TestChaosCampaign(t *testing.T) {
	res, err := Chaos(2024, 4, unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("%d trials, want 4", len(res.Trials))
	}
	if !res.AllCorrect {
		t.Fatal("a recovered collective produced a wrong result")
	}
	if !res.WithinBound {
		t.Fatalf("a repair exceeded 2x the %v bound", res.RepairBound)
	}
	if res.BlastRatio <= 1 {
		t.Fatalf("blast ratio %g, want > 1 (optical strictly smaller)", res.BlastRatio)
	}
	if res.MeanMTTR <= 0 || res.MeanGoodput <= 0 || res.MeanGoodput > 1 {
		t.Fatalf("MTTR %v, goodput %g", res.MeanMTTR, res.MeanGoodput)
	}
	for i, tr := range res.Trials {
		if tr.Victim == tr.Replacement {
			t.Fatalf("trial %d: replacement is the victim", i)
		}
		if tr.StallOptical >= tr.StallElectrical {
			t.Fatalf("trial %d: stall sets %d vs %d", i, tr.StallOptical, tr.StallElectrical)
		}
	}
	if err := func() error { _, err := Chaos(2024, 0, unit.MB); return err }(); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestChaosDeterministic is the reproducibility gate from the issue:
// the same seed must yield a byte-identical CSV, end to end through
// the fault engine, the recovery loop, and the formatter.
func TestChaosDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")}
	for _, p := range paths {
		res, err := Chaos(2024, 4, unit.MB)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(p, res); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty CSV")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different CSVs:\n%s\n---\n%s", a, b)
	}
	// A different seed must change the campaign (the engine is the only
	// randomness source, so this also proves the seed is actually used).
	other, err := Chaos(7, 4, unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Chaos(2024, 4, unit.MB)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range first.Trials {
		if first.Trials[i].Victim != other.Trials[i].Victim ||
			first.Trials[i].FailStep != other.Trials[i].FailStep {
			same = false
		}
	}
	if same {
		t.Fatal("seed 7 and seed 2024 drew identical fault schedules")
	}
}
