package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/collective"
	"lightpath/internal/cost"
	"lightpath/internal/engine"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// The ablation studies DESIGN.md calls out: design alternatives the
// paper's §4.1 and §5 discuss, measured against each other.

// AblationAllocResult compares centralized versus decentralized
// circuit allocation (§5, "Decentralized algorithms").
type AblationAllocResult struct {
	Requests                                 int
	CentralAttempts, DecentralAttempts       int
	CentralEstablished, DecentralEstablished int
	DecentralRounds                          int
}

// String renders the result.
func (r AblationAllocResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: centralized vs decentralized circuit allocation (%d requests, scarce buses)\n", r.Requests)
	fmt.Fprintf(&b, "  centralized:   %d established, %d commit attempts\n", r.CentralEstablished, r.CentralAttempts)
	fmt.Fprintf(&b, "  decentralized: %d established, %d commit attempts over %d rounds\n",
		r.DecentralEstablished, r.DecentralAttempts, r.DecentralRounds)
	fmt.Fprintf(&b, "  conflict overhead: %.2fx attempts\n",
		float64(r.DecentralAttempts)/float64(maxOf(r.CentralAttempts, 1)))
	return b.String()
}

// AblationAllocation runs the allocation ablation on a scarce-bus
// wafer.
func AblationAllocation(seed uint64, requests int) (AblationAllocResult, error) {
	mkRack := func() (*wafer.Rack, error) {
		cfg := wafer.DefaultConfig()
		cfg.BusesPerLane = 4
		return wafer.NewRack(cfg, 1)
	}
	// The two regimes are independent (each builds its own rack,
	// allocator, and seed-derived streams, and value-copies the request
	// list), so they run as two engine trials.
	outs, err := engine.Map(2, func(i int) (route.BatchOutcome, error) {
		reqs := make([]route.Request, 0, requests)
		for j := 0; j < requests; j++ {
			reqs = append(reqs, route.Request{A: j % 8, B: 24 + (j+1)%8, Width: 1})
		}
		rack, err := mkRack()
		if err != nil {
			return route.BatchOutcome{}, err
		}
		a := route.NewAllocator(rack, rng.New(seed))
		if i == 0 {
			return a.EstablishBatch(reqs, 0), nil
		}
		dec := route.NewDecentralized(a, rng.New(seed).Split("order"))
		return dec.EstablishBatch(reqs, 0), nil
	})
	if err != nil {
		return AblationAllocResult{}, err
	}
	outC, outD := outs[0], outs[1]

	return AblationAllocResult{
		Requests:             requests,
		CentralAttempts:      outC.Attempts,
		DecentralAttempts:    outD.Attempts,
		CentralEstablished:   len(outC.Circuits),
		DecentralEstablished: len(outD.Circuits),
		DecentralRounds:      outD.Rounds,
	}, nil
}

// AblationFiberResult compares fiber-row packing against shortest-row
// spreading (§5, "Minimizing fiber requirement for fault tolerance").
type AblationFiberResult struct {
	Circuits                     int
	SpareRowsPacked, SpareSpread int
	// SurvivedPacked / SurvivedSpread: circuits re-established after
	// failing one in-use trunk row under each policy.
	SurvivedPacked, SurvivedSpread int
}

// String renders the result.
func (r AblationFiberResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: fiber packing vs spreading (%d cross-wafer circuits)\n", r.Circuits)
	fmt.Fprintf(&b, "  fully spare trunk rows: packed=%d spread=%d\n", r.SpareRowsPacked, r.SpareSpread)
	fmt.Fprintf(&b, "  circuits surviving a trunk-row cut (after repair): packed=%d spread=%d\n",
		r.SurvivedPacked, r.SurvivedSpread)
	return b.String()
}

// AblationFiber runs the fiber policy ablation: establish cross-wafer
// circuits under both policies, cut the busiest trunk row, and
// re-establish the affected circuits.
func AblationFiber(seed uint64) (AblationFiberResult, error) {
	load := []route.Request{
		{A: 0, B: 32, Width: 1},
		{A: 8, B: 40, Width: 1},
		{A: 16, B: 48, Width: 1},
		{A: 1, B: 33, Width: 1},
	}
	run := func(pack bool) (spare, survived int, err error) {
		rack, err := wafer.NewRack(wafer.DefaultConfig(), 2)
		if err != nil {
			return 0, 0, err
		}
		a := route.NewAllocator(rack, rng.New(seed))
		a.PackFibers = pack
		out := a.EstablishBatch(load, 0)
		if len(out.Failed) > 0 {
			return 0, 0, fmt.Errorf("experiments: %d establish failures", len(out.Failed))
		}
		spare = a.SpareFullRows(0)
		// Cut the row carrying the first circuit.
		row := out.Circuits[0].Fibers[0].Row
		affected := a.FailFiberRow(0, row)
		for _, c := range affected {
			if _, err := a.Establish(route.Request{A: c.A, B: c.B, Width: c.Width}, 0); err == nil {
				survived++
			}
		}
		survived += len(out.Circuits) - len(affected) // untouched circuits survive trivially
		return spare, survived, nil
	}
	var res AblationFiberResult
	res.Circuits = len(load)
	var err error
	if res.SpareRowsPacked, res.SurvivedPacked, err = run(true); err != nil {
		return res, err
	}
	if res.SpareSpread, res.SurvivedSpread, err = run(false); err != nil {
		return res, err
	}
	return res, nil
}

// AblationSimultaneousResult compares the paper's §4.1 alternatives
// for recovering idle-dimension bandwidth: LIGHTPATH's redirected
// single bucket versus the electrical simultaneous buffer-split
// bucket.
type AblationSimultaneousResult struct {
	Buffer unit.Bytes
	// RedirectedBeta is the optical single bucket's beta;
	// SimultaneousBeta the electrical buffer-split variant's.
	RedirectedBeta, SimultaneousBeta unit.Seconds
	// RedirectedTotal/SimultaneousTotal include alpha and r.
	RedirectedTotal, SimultaneousTotal unit.Seconds
}

// String renders the result.
func (r AblationSimultaneousResult) String() string {
	return fmt.Sprintf(
		"Ablation: redirected single bucket (optical) vs simultaneous buffer-split bucket (electrical), full 4x4x4 cube, N=%v\n"+
			"  beta:  redirected=%v simultaneous=%v (paper: equal)\n"+
			"  total: redirected=%v simultaneous=%v\n",
		r.Buffer, r.RedirectedBeta, r.SimultaneousBeta, r.RedirectedTotal, r.SimultaneousTotal)
}

// AblationSimultaneous runs the §4.1 equivalence on a full cube.
func AblationSimultaneous(n int) (AblationSimultaneousResult, error) {
	t := torus.New(torus.TPUv4RackShape)
	s := &torus.Slice{Name: "cube", Origin: torus.Coord{0, 0, 0}, Shape: torus.TPUv4RackShape}
	p := cost.DefaultParams()

	single, err := collective.BucketAllReduce("redirect", t, s, []int{0, 1, 2}, n, 4, collective.BucketOptions{MarkReconfig: true})
	if err != nil {
		return AblationSimultaneousResult{}, err
	}
	sim, err := collective.SimultaneousBucketAllReduce("simultaneous", t, s, n, 4, collective.BucketOptions{})
	if err != nil {
		return AblationSimultaneousResult{}, err
	}
	oc, err := p.OpticalPerPhase(single)
	if err != nil {
		return AblationSimultaneousResult{}, err
	}
	ec, err := p.Electrical(sim)
	if err != nil {
		return AblationSimultaneousResult{}, err
	}
	return AblationSimultaneousResult{
		Buffer:            unit.Bytes(n) * 4,
		RedirectedBeta:    oc.Beta,
		SimultaneousBeta:  ec.Beta,
		RedirectedTotal:   oc.Total(),
		SimultaneousTotal: ec.Total(),
	}, nil
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
