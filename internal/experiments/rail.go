package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/netsim"
	"lightpath/internal/route"
	"lightpath/internal/topo"
	"lightpath/internal/unit"
)

// This file is the rail-scale fabric campaign: the Opus follow-on's
// rail-optimized datacenter topology driven at 10k+ endpoints with
// over a million concurrent flows through the component-sharded fluid
// solver (netsim.RunSharded). It is the repo's scale proof — the same
// max-min arithmetic the single-wafer experiments use, three orders
// of magnitude more flows — and its golden CSVs are the `make
// rail-smoke` determinism gate: parallel and sequential solves must
// produce byte-identical output.
//
// Traffic is structured, not random, so the event count stays linear
// in waves rather than flows: each solver component is a ring whose
// flows share links symmetrically, so all flows of one wave complete
// simultaneously and a component with W waves steps through exactly W
// completion events. Random traffic at this scale would make every
// flow a distinct event and turn the fluid solve quadratic.
//
//   - Ring traffic: each rail's first RingServers servers split into
//     groups of GroupSize consecutive servers; each group runs Waves
//     overlaid neighbor rings (wave w moves BaseBytes*(w+1)). A group
//     touches only its own NIC up/down links, so each group is one
//     solver component.
//   - Cross-rail traffic: each of the last XRailServers servers runs
//     Waves rings across its own NICs on all rails, exercising the
//     server-bus hop. Each such server is one component.

// RailFabricConfig parameterizes the rail campaign.
type RailFabricConfig struct {
	// Rails and Servers shape the fabric: Rails*Servers endpoints.
	Rails, Servers int
	// GroupSize is the servers per ring group; (Servers-XRailServers)
	// must divide evenly into groups.
	GroupSize int
	// XRailServers is how many trailing servers carry cross-rail ring
	// traffic instead of in-rail ring traffic.
	XRailServers int
	// Waves is the number of overlaid rings per group; wave w moves
	// BaseBytes*(w+1) per flow.
	Waves int
	// BaseBytes is the wave-0 per-flow transfer size.
	BaseBytes unit.Bytes
	// RailBW and BusBW are the per-NIC and per-server-bus bandwidths.
	RailBW, BusBW unit.BitRate
}

// DefaultRailFabricConfig is the acceptance-scale campaign: 16 rails
// x 640 servers = 10,240 endpoints carrying 1,310,720 flows in 1,272
// independent components.
func DefaultRailFabricConfig() RailFabricConfig {
	return RailFabricConfig{
		Rails:        16,
		Servers:      640,
		GroupSize:    8,
		XRailServers: 8,
		Waves:        128,
		BaseBytes:    unit.MB,
		RailBW:       unit.GBps(40),
		BusBW:        unit.GBps(100),
	}
}

// Validate checks the campaign geometry.
func (c RailFabricConfig) Validate() error {
	switch {
	case c.Rails < 2 || c.Servers < 1:
		return fmt.Errorf("experiments: rail campaign needs >=2 rails and >=1 server, got %dx%d", c.Rails, c.Servers)
	case c.GroupSize < 2:
		return fmt.Errorf("experiments: ring groups need >=2 servers, got %d", c.GroupSize)
	case c.XRailServers < 0 || c.XRailServers >= c.Servers:
		return fmt.Errorf("experiments: %d cross-rail servers out of %d total", c.XRailServers, c.Servers)
	case (c.Servers-c.XRailServers)%c.GroupSize != 0:
		return fmt.Errorf("experiments: %d ring servers do not divide into groups of %d", c.Servers-c.XRailServers, c.GroupSize)
	case c.Waves < 1:
		return fmt.Errorf("experiments: need >=1 wave, got %d", c.Waves)
	case c.BaseBytes <= 0:
		return fmt.Errorf("experiments: non-positive base transfer size")
	case c.RailBW <= 0 || c.BusBW <= 0:
		return fmt.Errorf("experiments: non-positive bandwidth")
	}
	return nil
}

// RingServers returns the servers per rail carrying in-rail rings.
func (c RailFabricConfig) RingServers() int { return c.Servers - c.XRailServers }

// GroupsPerRail returns the ring groups per rail.
func (c RailFabricConfig) GroupsPerRail() int { return c.RingServers() / c.GroupSize }

// Components returns the solver component count the traffic induces:
// one per ring group plus one per cross-rail server.
func (c RailFabricConfig) Components() int {
	return c.Rails*c.GroupsPerRail() + c.XRailServers
}

// FlowCount returns the total flows the campaign places.
func (c RailFabricConfig) FlowCount() int {
	return c.Rails*c.GroupsPerRail()*c.GroupSize*c.Waves + c.XRailServers*c.Rails*c.Waves
}

// RailStat is one rail's ring-traffic aggregate.
type RailStat struct {
	// Rail is the rail index.
	Rail int
	// Groups and Flows count the rail's ring groups and ring flows.
	Groups, Flows int
	// Bytes is the rail's total ring payload.
	Bytes unit.Bytes
	// Makespan is the completion time of the rail's slowest ring flow.
	Makespan unit.Seconds
}

// RailFabricResult aggregates the campaign.
type RailFabricResult struct {
	// Rails, Servers, Endpoints, and Links echo the fabric geometry.
	Rails, Servers, Endpoints, Links int
	// Flows and Components are the solved scale; Waves the overlay
	// depth.
	Flows, Components, Waves int
	// TotalBytes is the full payload moved.
	TotalBytes unit.Bytes
	// Makespan is the global completion time; RingMakespan and
	// XRailMakespan split it by traffic class.
	Makespan, RingMakespan, XRailMakespan unit.Seconds
	// MaxLoadLink and MaxLoadFlows locate the most-shared link.
	MaxLoadLink, MaxLoadFlows int
	// Oversubscribed counts links whose placed flows cannot all be
	// served at the even ring share (RailBW / Waves) — every ring
	// link, by construction, and a sanity signal that the fabric is
	// actually contended.
	Oversubscribed int
	// PerRail holds each rail's ring aggregate.
	PerRail []RailStat
}

// String renders the campaign summary.
func (r RailFabricResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rail fabric: %d rails x %d servers = %d endpoints, %d links\n",
		r.Rails, r.Servers, r.Endpoints, r.Links)
	fmt.Fprintf(&b, "  %d flows in %d components (%d waves), %s moved\n",
		r.Flows, r.Components, r.Waves, r.TotalBytes)
	fmt.Fprintf(&b, "  makespan %v (ring %v, cross-rail %v)\n",
		r.Makespan, r.RingMakespan, r.XRailMakespan)
	fmt.Fprintf(&b, "  peak link load: %d flows on link %d; %d links oversubscribed at even wave-0 split\n",
		r.MaxLoadFlows, r.MaxLoadLink, r.Oversubscribed)
	for _, s := range r.PerRail {
		fmt.Fprintf(&b, "  rail %2d: %d groups, %d flows, %s, makespan %v\n",
			s.Rail, s.Groups, s.Flows, s.Bytes, s.Makespan)
	}
	return b.String()
}

// CSV implements Tabular: one row per rail's ring traffic plus one
// aggregate cross-rail row.
func (r RailFabricResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.PerRail)+1)
	for _, s := range r.PerRail {
		rows = append(rows, []string{
			"ring", fmt.Sprintf("%d", s.Rail),
			fmt.Sprintf("%d", s.Groups),
			fmt.Sprintf("%d", s.Flows),
			f64(s.Bytes),
			f64(s.Makespan.Micros()),
		})
	}
	xFlows := r.Flows
	for _, s := range r.PerRail {
		xFlows -= s.Flows
	}
	var xBytes unit.Bytes = r.TotalBytes
	for _, s := range r.PerRail {
		xBytes -= s.Bytes
	}
	rows = append(rows, []string{
		"xrail", "-1",
		fmt.Sprintf("%d", xFlows/max(1, r.Waves*r.Rails)),
		fmt.Sprintf("%d", xFlows),
		f64(xBytes),
		f64(r.XRailMakespan.Micros()),
	})
	return []string{"class", "rail", "groups", "flows", "bytes", "makespan_us"}, rows
}

// RailFabric places the structured rail traffic and solves it with
// the component-sharded fluid solver. The run is fully deterministic
// — no randomness, and RunSharded is byte-identical across parallel
// modes — so two invocations with the same config always produce the
// same Result down to the last bit.
func RailFabric(cfg RailFabricConfig) (RailFabricResult, error) {
	if err := cfg.Validate(); err != nil {
		return RailFabricResult{}, err
	}
	fabric, err := topo.NewRail(cfg.Rails, cfg.Servers, cfg.RailBW, cfg.BusBW)
	if err != nil {
		return RailFabricResult{}, err
	}
	a := route.NewLinkAllocator(fabric)

	// Ring traffic: rail-major, group-major, wave-major placement so
	// per-rail flow spans stay contiguous for the aggregation below.
	groups := cfg.GroupsPerRail()
	for rail := 0; rail < cfg.Rails; rail++ {
		for g := 0; g < groups; g++ {
			s0 := g * cfg.GroupSize
			for w := 0; w < cfg.Waves; w++ {
				bytes := cfg.BaseBytes * unit.Bytes(w+1)
				for i := 0; i < cfg.GroupSize; i++ {
					src := fabric.Endpoint(rail, s0+i)
					dst := fabric.Endpoint(rail, s0+(i+1)%cfg.GroupSize)
					a.Place(src, dst, bytes)
				}
			}
		}
	}
	ringFlows := a.Len()
	// Cross-rail traffic: each trailing server rings its own NICs
	// across all rails through the server bus.
	for x := 0; x < cfg.XRailServers; x++ {
		s := cfg.RingServers() + x
		for w := 0; w < cfg.Waves; w++ {
			bytes := cfg.BaseBytes * unit.Bytes(w+1)
			for rail := 0; rail < cfg.Rails; rail++ {
				src := fabric.Endpoint(rail, s)
				dst := fabric.Endpoint((rail+1)%cfg.Rails, s)
				a.Place(src, dst, bytes)
			}
		}
	}

	flows := a.Flows()
	var sim netsim.Sim[int]
	solved, err := sim.RunSharded(flows, a.Capacities())
	if err != nil {
		return RailFabricResult{}, err
	}

	res := RailFabricResult{
		Rails:      cfg.Rails,
		Servers:    cfg.Servers,
		Endpoints:  fabric.Endpoints(),
		Links:      fabric.Links(),
		Flows:      len(flows),
		Components: cfg.Components(),
		Waves:      cfg.Waves,
		Makespan:   solved.Makespan,
	}
	for _, f := range flows {
		res.TotalBytes += f.Bytes
	}
	res.MaxLoadLink, res.MaxLoadFlows = a.MaxLoad()
	res.Oversubscribed = a.OversubscribedLinks(cfg.RailBW / unit.BitRate(cfg.Waves))

	flowsPerRail := groups * cfg.GroupSize * cfg.Waves
	for rail := 0; rail < cfg.Rails; rail++ {
		stat := RailStat{Rail: rail, Groups: groups, Flows: flowsPerRail}
		lo := rail * flowsPerRail
		for i := lo; i < lo+flowsPerRail; i++ {
			stat.Bytes += flows[i].Bytes
			if solved.FlowEnd[i] > stat.Makespan {
				stat.Makespan = solved.FlowEnd[i]
			}
		}
		if stat.Makespan > res.RingMakespan {
			res.RingMakespan = stat.Makespan
		}
		res.PerRail = append(res.PerRail, stat)
	}
	for i := ringFlows; i < len(flows); i++ {
		if solved.FlowEnd[i] > res.XRailMakespan {
			res.XRailMakespan = solved.FlowEnd[i]
		}
	}
	return res, nil
}
