package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/sched"
	"lightpath/internal/unit"
)

// SchedulerRow is one (workload, transfer size) cell of the resource
// allocation study: total time per policy, normalized to the offline
// optimum.
type SchedulerRow struct {
	Workload string
	Bytes    unit.Bytes
	// Totals per policy.
	Eager, Static, Hysteresis, Caching, Hedge, Optimal unit.Seconds
	// Reconfigs of the adaptive policies (the interesting knob).
	HysteresisReconfigs, CachingReconfigs int
}

// competitive returns t/optimal.
func (r SchedulerRow) competitive(t unit.Seconds) float64 {
	if r.Optimal == 0 {
		return 0
	}
	return float64(t / r.Optimal)
}

// SchedulerResult is the §1/§5 "optical resource allocation
// algorithms" study: online reconfiguration policies against the
// clairvoyant optimum, across traffic stability classes and transfer
// sizes.
type SchedulerResult struct {
	Chips, Phases int
	Rows          []SchedulerRow
}

// String renders the table.
func (r SchedulerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optical resource allocation (§1/§5): %d chips, %d phases, total time vs offline optimal\n",
		r.Chips, r.Phases)
	fmt.Fprintf(&b, "  %-10s %-10s %-18s %-18s %-22s %-22s %-18s\n",
		"workload", "bytes", "eager", "static-ring", "hysteresis", "caching-lru", "hedge")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-10v %-18s %-18s %-22s %-22s %-18s\n",
			row.Workload, row.Bytes,
			fmt.Sprintf("%v (%.2fx)", row.Eager, row.competitive(row.Eager)),
			fmt.Sprintf("%v (%.2fx)", row.Static, row.competitive(row.Static)),
			fmt.Sprintf("%v (%.2fx, %dr)", row.Hysteresis, row.competitive(row.Hysteresis), row.HysteresisReconfigs),
			fmt.Sprintf("%v (%.2fx, %dr)", row.Caching, row.competitive(row.Caching), row.CachingReconfigs),
			fmt.Sprintf("%v (%.2fx)", row.Hedge, row.competitive(row.Hedge)))
	}
	return b.String()
}

// Scheduler runs the policy study.
func Scheduler(seed uint64, phases int) (SchedulerResult, error) {
	p := sched.Params{
		ChipBandwidth: unit.GBps(300),
		Reconfig:      phy.ReconfigLatency,
		PortLimit:     16,
	}
	chips := make([]int, 8)
	for i := range chips {
		chips[i] = i
	}
	res := SchedulerResult{Chips: len(chips), Phases: phases}
	r := rng.New(seed)
	for _, kind := range []sched.WorkloadKind{sched.WorkloadPeriodic, sched.WorkloadShifting, sched.WorkloadChurning} {
		for _, bytes := range []unit.Bytes{4 * unit.KiB, 256 * unit.KiB, 16 * unit.MiB} {
			stream := r.Split(fmt.Sprintf("%s-%v", kind, bytes))
			demands := sched.Generate(kind, chips, phases, bytes, stream)

			eager, err := sched.Run(p, sched.EagerPolicy{}, demands)
			if err != nil {
				return res, err
			}
			static, err := sched.Run(p, sched.NewStaticPolicy(chips), demands)
			if err != nil {
				return res, err
			}
			hyst, err := sched.Run(p, sched.HysteresisPolicy{P: p, Threshold: 1.0}, demands)
			if err != nil {
				return res, err
			}
			caching, err := sched.Run(p, sched.NewCachingPolicy(p), demands)
			if err != nil {
				return res, err
			}
			hedge, err := sched.Run(p, sched.NewHedgePolicy(p), demands)
			if err != nil {
				return res, err
			}
			opt, err := sched.OfflineOptimal(p, demands, chips)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, SchedulerRow{
				Workload:            kind.String(),
				Bytes:               bytes,
				Eager:               eager.Total,
				Static:              static.Total,
				Hysteresis:          hyst.Total,
				Caching:             caching.Total,
				Hedge:               hedge.Total,
				Optimal:             opt.Total,
				HysteresisReconfigs: hyst.Reconfigs,
				CachingReconfigs:    caching.Reconfigs,
			})
		}
	}
	return res, nil
}
