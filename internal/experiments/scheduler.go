package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/engine"
	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/sched"
	"lightpath/internal/unit"
)

// SchedulerRow is one (workload, transfer size) cell of the resource
// allocation study: total time per policy, normalized to the offline
// optimum.
type SchedulerRow struct {
	Workload string
	Bytes    unit.Bytes
	// Totals per policy.
	Eager, Static, Hysteresis, Caching, Hedge, Optimal unit.Seconds
	// Reconfigs of the adaptive policies (the interesting knob).
	HysteresisReconfigs, CachingReconfigs int
}

// competitive returns t/optimal.
func (r SchedulerRow) competitive(t unit.Seconds) float64 {
	if r.Optimal == 0 {
		return 0
	}
	return float64(t / r.Optimal)
}

// SchedulerResult is the §1/§5 "optical resource allocation
// algorithms" study: online reconfiguration policies against the
// clairvoyant optimum, across traffic stability classes and transfer
// sizes.
type SchedulerResult struct {
	Chips, Phases int
	Rows          []SchedulerRow
}

// String renders the table.
func (r SchedulerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optical resource allocation (§1/§5): %d chips, %d phases, total time vs offline optimal\n",
		r.Chips, r.Phases)
	fmt.Fprintf(&b, "  %-10s %-10s %-18s %-18s %-22s %-22s %-18s\n",
		"workload", "bytes", "eager", "static-ring", "hysteresis", "caching-lru", "hedge")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-10v %-18s %-18s %-22s %-22s %-18s\n",
			row.Workload, row.Bytes,
			fmt.Sprintf("%v (%.2fx)", row.Eager, row.competitive(row.Eager)),
			fmt.Sprintf("%v (%.2fx)", row.Static, row.competitive(row.Static)),
			fmt.Sprintf("%v (%.2fx, %dr)", row.Hysteresis, row.competitive(row.Hysteresis), row.HysteresisReconfigs),
			fmt.Sprintf("%v (%.2fx, %dr)", row.Caching, row.competitive(row.Caching), row.CachingReconfigs),
			fmt.Sprintf("%v (%.2fx)", row.Hedge, row.competitive(row.Hedge)))
	}
	return b.String()
}

// Scheduler runs the policy study.
func Scheduler(seed uint64, phases int) (SchedulerResult, error) {
	p := sched.Params{
		ChipBandwidth: unit.GBps(300),
		Reconfig:      phy.ReconfigLatency,
		PortLimit:     16,
	}
	chips := make([]int, 8)
	for i := range chips {
		chips[i] = i
	}
	res := SchedulerResult{Chips: len(chips), Phases: phases}
	r := rng.New(seed)
	kinds := []sched.WorkloadKind{sched.WorkloadPeriodic, sched.WorkloadShifting, sched.WorkloadChurning}
	sizes := []unit.Bytes{4 * unit.KiB, 256 * unit.KiB, 16 * unit.MiB}
	// Each (workload, size) cell is an independent trial keyed by a
	// label-derived stream. Every trial value-copies the chip list and
	// generates its own demand sequence, so no input is aliased between
	// concurrently running cells; the merge folds rows in cell order.
	rows, err := engine.Map(len(kinds)*len(sizes), func(cell int) (SchedulerRow, error) {
		kind := kinds[cell/len(sizes)]
		bytes := sizes[cell%len(sizes)]
		cellChips := append([]int(nil), chips...)
		stream := r.Split(fmt.Sprintf("%s-%v", kind, bytes))
		demands := sched.Generate(kind, cellChips, phases, bytes, stream)

		eager, err := sched.Run(p, sched.EagerPolicy{}, demands)
		if err != nil {
			return SchedulerRow{}, err
		}
		static, err := sched.Run(p, sched.NewStaticPolicy(cellChips), demands)
		if err != nil {
			return SchedulerRow{}, err
		}
		hyst, err := sched.Run(p, sched.HysteresisPolicy{P: p, Threshold: 1.0}, demands)
		if err != nil {
			return SchedulerRow{}, err
		}
		caching, err := sched.Run(p, sched.NewCachingPolicy(p), demands)
		if err != nil {
			return SchedulerRow{}, err
		}
		hedge, err := sched.Run(p, sched.NewHedgePolicy(p), demands)
		if err != nil {
			return SchedulerRow{}, err
		}
		opt, err := sched.OfflineOptimal(p, demands, cellChips)
		if err != nil {
			return SchedulerRow{}, err
		}
		return SchedulerRow{
			Workload:            kind.String(),
			Bytes:               bytes,
			Eager:               eager.Total,
			Static:              static.Total,
			Hysteresis:          hyst.Total,
			Caching:             caching.Total,
			Hedge:               hedge.Total,
			Optimal:             opt.Total,
			HysteresisReconfigs: hyst.Reconfigs,
			CachingReconfigs:    caching.Reconfigs,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}
