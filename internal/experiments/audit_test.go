package experiments

import (
	"fmt"
	"os"
	"testing"

	"lightpath/internal/invariant"
)

// TestMain turns the invariant auditor to Paranoid for every fabric
// any test in this package builds: each Establish, Release, ApplyFault
// and Reestablish in every campaign re-checks the full invariant
// registry against the live hardware. If any trial anywhere corrupted
// the shared optical state, the process-wide tally catches it here
// even when the owning test's assertions would not.
func TestMain(m *testing.M) {
	invariant.SetDefaultMode(invariant.Paranoid)
	code := m.Run()
	if n := invariant.GlobalCount(); n > 0 && code == 0 {
		fmt.Fprintf(os.Stderr, "invariant auditor recorded %d violation(s) during the test run; first: %s\n",
			n, invariant.GlobalViolations()[0])
		code = 1
	}
	os.Exit(code)
}
