package experiments

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"lightpath/internal/engine"
	"lightpath/internal/fleet"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// This file is the long-horizon availability campaign: independent
// multi-day fleet soaks, each a deterministic discrete-event run of
// Poisson faults, self-healing reroutes, spare splices, repair crews
// and admission control — with the invariant auditor in Paranoid mode
// re-checking the optical state after every mutation of every trial.
// It extends the paper's single-fault blast-radius story (§4.2) to
// the compounding-failure regime a real fleet lives in.

// soakTrialStride separates per-trial seed streams; it is the
// splitmix64 golden-gamma increment, so consecutive trials land in
// well-separated regions of the seed space.
const soakTrialStride = 0x9e3779b97f4a7c15

// soakHorizon is the campaign's simulated duration per trial.
const soakHorizon = 3 * unit.Day

// SoakResult aggregates the availability campaign.
type SoakResult struct {
	// Seeds[i] drove trial i; Trials[i] is its full outcome including
	// the availability time series.
	Seeds  []uint64
	Trials []*fleet.Outcome
	// MeanAvailability and MeanGoodput average the per-trial means;
	// WorstAvailability is the weakest trial.
	MeanAvailability, MeanGoodput float64
	WorstAvailability             float64
	// Faults and Repairs total across trials; Violations totals the
	// auditors' findings (zero on a correct simulator).
	Faults, Repairs, Violations int
}

// String renders the campaign summary.
func (r SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet soak: %d trials x %.0f-day horizon, paranoid invariant audit\n",
		len(r.Trials), float64(soakHorizon/unit.Day))
	fmt.Fprintf(&b, "  faults %d, repairs %d, invariant violations %d\n",
		r.Faults, r.Repairs, r.Violations)
	fmt.Fprintf(&b, "  availability mean %.3f worst %.3f, goodput mean %.3f\n",
		r.MeanAvailability, r.WorstAvailability, r.MeanGoodput)
	for i, o := range r.Trials {
		fmt.Fprintf(&b, "  trial %d: avail %.3f goodput %.3f reroutes %d splices %d sheds %d readmits %d minSpares %d audits %d\n",
			i, o.Availability, o.MeanGoodput, o.Reroutes, o.Splices,
			o.ShedEvents, o.Readmissions, o.MinSpares, o.Audits)
	}
	return b.String()
}

// CSV implements Tabular: one row per (trial, sample) — the
// availability time series of every trial, concatenated.
func (r SoakResult) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, o := range r.Trials {
		for _, s := range o.Samples {
			rows = append(rows, []string{
				fmt.Sprintf("%d", i),
				f64(float64(s.T)),
				fmt.Sprintf("%d", s.Up),
				fmt.Sprintf("%d", s.Degraded),
				fmt.Sprintf("%d", s.Shed),
				f64(s.Goodput),
				fmt.Sprintf("%d", s.Faults),
				fmt.Sprintf("%d", s.Repairs),
				f64(s.MeanBlast),
				fmt.Sprintf("%d", s.Spares),
				fmt.Sprintf("%d", s.Violations),
			})
		}
	}
	return []string{"trial", "time_s", "up", "degraded", "shed", "goodput",
		"faults", "repairs", "mean_blast", "spares", "violations"}, rows
}

// SoakOptions extends the availability campaign with crash-tolerant
// checkpointing, driven by lightpath-sim's -checkpoint / -resume /
// -ckpt-interval / -kill-at flags and the soak-resume smoke test.
type SoakOptions struct {
	// CheckpointDir, when non-empty, holds one checkpoint file per
	// trial (soak-trial-<i>.ckpt plus its rotated .prev).
	CheckpointDir string
	// EveryEvents is the per-trial checkpoint cadence in event
	// boundaries (fleet's default when zero).
	EveryEvents uint64
	// KillAfterEvents, when positive, halts every trial at that event
	// boundary after writing a final checkpoint; the campaign then
	// returns an error wrapping fleet.ErrStopped. It simulates a
	// mid-campaign crash for the resume smoke test.
	KillAfterEvents uint64
	// Resume continues each trial from its checkpoint file instead of
	// starting fresh. The resumed campaign is byte-identical to an
	// uninterrupted one.
	Resume bool
}

// Soak runs the availability campaign: `trials` independent fleet
// soaks at the default three-day horizon, fanned across CPUs by the
// experiment engine. Each trial derives its own seed stream, every
// trial runs under the Paranoid auditor, and the merged result is
// byte-identical whether the trials ran sequentially or in parallel.
func Soak(seed uint64, trials int) (SoakResult, error) {
	return SoakWithOptions(seed, trials, SoakOptions{})
}

// SoakWithOptions is Soak with checkpoint/resume control. The trial
// configs retain the exact time series (fleet.SampleExact): the
// golden CSV is the full series, so the campaign opts out of the
// streaming default.
func SoakWithOptions(seed uint64, trials int, opts SoakOptions) (SoakResult, error) {
	if trials < 1 {
		return SoakResult{}, fmt.Errorf("experiments: soak trials %d < 1", trials)
	}
	outcomes, err := engine.Map(trials, func(i int) (*fleet.Outcome, error) {
		cfg := fleet.Config{
			Seed:       seed + uint64(i)*soakTrialStride,
			Horizon:    soakHorizon,
			Audit:      invariant.Paranoid,
			SampleMode: fleet.SampleExact,
		}
		copts := fleet.CheckpointOptions{
			EveryEvents:     opts.EveryEvents,
			StopAfterEvents: opts.KillAfterEvents,
		}
		if opts.CheckpointDir != "" {
			copts.Path = filepath.Join(opts.CheckpointDir, fmt.Sprintf("soak-trial-%d.ckpt", i))
		}
		var out *fleet.Outcome
		var err error
		if opts.Resume {
			out, err = fleet.Resume(cfg, copts)
		} else {
			out, err = fleet.RunCheckpointed(cfg, copts)
		}
		if err != nil {
			// An injected stop is the expected per-trial outcome in
			// kill mode, not a campaign failure: every trial must
			// still run and leave its checkpoint behind.
			if opts.KillAfterEvents > 0 && errors.Is(err, fleet.ErrStopped) {
				return nil, nil
			}
			return nil, fmt.Errorf("experiments: soak trial %d: %w", i, err)
		}
		return out, nil
	})
	if err != nil {
		return SoakResult{}, err
	}
	if opts.KillAfterEvents > 0 {
		return SoakResult{}, fmt.Errorf("experiments: soak trials halted at event %d: %w",
			opts.KillAfterEvents, fleet.ErrStopped)
	}
	res := SoakResult{WorstAvailability: 1}
	for i, o := range outcomes {
		res.Seeds = append(res.Seeds, seed+uint64(i)*soakTrialStride)
		res.Trials = append(res.Trials, o)
		res.MeanAvailability += o.Availability
		res.MeanGoodput += o.MeanGoodput
		if o.Availability < res.WorstAvailability {
			res.WorstAvailability = o.Availability
		}
		res.Faults += o.Faults
		res.Repairs += o.Repairs
		res.Violations += o.Violations
	}
	n := float64(trials)
	res.MeanAvailability /= n
	res.MeanGoodput /= n
	return res, nil
}
