package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/engine"
	"lightpath/internal/fleet"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// This file is the long-horizon availability campaign: independent
// multi-day fleet soaks, each a deterministic discrete-event run of
// Poisson faults, self-healing reroutes, spare splices, repair crews
// and admission control — with the invariant auditor in Paranoid mode
// re-checking the optical state after every mutation of every trial.
// It extends the paper's single-fault blast-radius story (§4.2) to
// the compounding-failure regime a real fleet lives in.

// soakTrialStride separates per-trial seed streams; it is the
// splitmix64 golden-gamma increment, so consecutive trials land in
// well-separated regions of the seed space.
const soakTrialStride = 0x9e3779b97f4a7c15

// soakHorizon is the campaign's simulated duration per trial.
const soakHorizon = 3 * unit.Day

// SoakResult aggregates the availability campaign.
type SoakResult struct {
	// Seeds[i] drove trial i; Trials[i] is its full outcome including
	// the availability time series.
	Seeds  []uint64
	Trials []*fleet.Outcome
	// MeanAvailability and MeanGoodput average the per-trial means;
	// WorstAvailability is the weakest trial.
	MeanAvailability, MeanGoodput float64
	WorstAvailability             float64
	// Faults and Repairs total across trials; Violations totals the
	// auditors' findings (zero on a correct simulator).
	Faults, Repairs, Violations int
}

// String renders the campaign summary.
func (r SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet soak: %d trials x %.0f-day horizon, paranoid invariant audit\n",
		len(r.Trials), float64(soakHorizon/unit.Day))
	fmt.Fprintf(&b, "  faults %d, repairs %d, invariant violations %d\n",
		r.Faults, r.Repairs, r.Violations)
	fmt.Fprintf(&b, "  availability mean %.3f worst %.3f, goodput mean %.3f\n",
		r.MeanAvailability, r.WorstAvailability, r.MeanGoodput)
	for i, o := range r.Trials {
		fmt.Fprintf(&b, "  trial %d: avail %.3f goodput %.3f reroutes %d splices %d sheds %d readmits %d minSpares %d audits %d\n",
			i, o.Availability, o.MeanGoodput, o.Reroutes, o.Splices,
			o.ShedEvents, o.Readmissions, o.MinSpares, o.Audits)
	}
	return b.String()
}

// CSV implements Tabular: one row per (trial, sample) — the
// availability time series of every trial, concatenated.
func (r SoakResult) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, o := range r.Trials {
		for _, s := range o.Samples {
			rows = append(rows, []string{
				fmt.Sprintf("%d", i),
				f64(float64(s.T)),
				fmt.Sprintf("%d", s.Up),
				fmt.Sprintf("%d", s.Degraded),
				fmt.Sprintf("%d", s.Shed),
				f64(s.Goodput),
				fmt.Sprintf("%d", s.Faults),
				fmt.Sprintf("%d", s.Repairs),
				f64(s.MeanBlast),
				fmt.Sprintf("%d", s.Spares),
				fmt.Sprintf("%d", s.Violations),
			})
		}
	}
	return []string{"trial", "time_s", "up", "degraded", "shed", "goodput",
		"faults", "repairs", "mean_blast", "spares", "violations"}, rows
}

// Soak runs the availability campaign: `trials` independent fleet
// soaks at the default three-day horizon, fanned across CPUs by the
// experiment engine. Each trial derives its own seed stream, every
// trial runs under the Paranoid auditor, and the merged result is
// byte-identical whether the trials ran sequentially or in parallel.
func Soak(seed uint64, trials int) (SoakResult, error) {
	if trials < 1 {
		return SoakResult{}, fmt.Errorf("experiments: soak trials %d < 1", trials)
	}
	outcomes, err := engine.Map(trials, func(i int) (*fleet.Outcome, error) {
		cfg := fleet.Config{
			Seed:    seed + uint64(i)*soakTrialStride,
			Horizon: soakHorizon,
			Audit:   invariant.Paranoid,
		}
		out, err := fleet.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: soak trial %d: %w", i, err)
		}
		return out, nil
	})
	if err != nil {
		return SoakResult{}, err
	}
	res := SoakResult{WorstAvailability: 1}
	for i, o := range outcomes {
		res.Seeds = append(res.Seeds, seed+uint64(i)*soakTrialStride)
		res.Trials = append(res.Trials, o)
		res.MeanAvailability += o.Availability
		res.MeanGoodput += o.MeanGoodput
		if o.Availability < res.WorstAvailability {
			res.WorstAvailability = o.Availability
		}
		res.Faults += o.Faults
		res.Repairs += o.Repairs
		res.Violations += o.Violations
	}
	n := float64(trials)
	res.MeanAvailability /= n
	res.MeanGoodput /= n
	return res, nil
}
