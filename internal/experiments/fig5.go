package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/alloc"
	"lightpath/internal/core"
	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// Fig5Row is one slice's line in the Figure 5b/5c reproduction.
type Fig5Row struct {
	Slice      string
	Shape      string
	Electrical float64 // fraction of chip bandwidth, electrical torus
	Optical    float64 // with LIGHTPATH redirection
	// Algorithm, Speedup and the two times come from the end-to-end
	// planner at a 64 MB AllReduce.
	Algorithm                   string
	ElectricalTime, OpticalTime unit.Seconds
	Speedup                     float64
}

// Fig5Result is experiment E6.
type Fig5Result struct {
	Rows []Fig5Row
	// MaxDrop is the worst electrical bandwidth loss across slices
	// (paper: "up to 66% lower bandwidth").
	MaxDrop float64
}

// String renders the result.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5b/5c: bandwidth utilization of sub-rack slices (electrical vs optical)\n")
	fmt.Fprintf(&b, "  %-10s %-8s %-12s %-10s %-12s %-14s %-14s %-8s\n",
		"slice", "shape", "elec util", "opt util", "algorithm", "elec time", "opt time", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-8s %-12.2f %-10.2f %-12s %-14v %-14v %.2fx\n",
			row.Slice, row.Shape, row.Electrical, row.Optical, row.Algorithm,
			row.ElectricalTime, row.OpticalTime, row.Speedup)
	}
	fmt.Fprintf(&b, "  worst electrical bandwidth drop = %.0f%% (paper: up to 66%%)\n", r.MaxDrop*100)
	return b.String()
}

// Fig5 reproduces Figure 5b/5c: the four-tenant rack, each slice's
// usable bandwidth fraction on both interconnects, and the end-to-end
// AllReduce comparison at the given buffer size.
func Fig5(buffer unit.Bytes, seed uint64) (Fig5Result, error) {
	_, a, err := alloc.Fig5b()
	if err != nil {
		return Fig5Result{}, err
	}
	fabric, err := core.New(core.Options{Seed: seed})
	if err != nil {
		return Fig5Result{}, err
	}
	var res Fig5Result
	util := core.UtilizationReport(a)
	// Planning is read-only on the fabric, so the per-slice plans fan
	// out over the shared instance; MaxDrop folds in slice order.
	rows, err := engine.Map(len(util), func(si int) (Fig5Row, error) {
		u := util[si]
		plan, err := fabric.PlanAllReduce(a, si, buffer)
		if err != nil {
			return Fig5Row{}, fmt.Errorf("experiments: plan for %s: %w", u.Slice, err)
		}
		return Fig5Row{
			Slice:          u.Slice,
			Shape:          a.Slices()[si].Shape.String(),
			Electrical:     u.Electrical,
			Optical:        u.Optical,
			Algorithm:      plan.Algorithm,
			ElectricalTime: plan.ElectricalTime,
			OpticalTime:    plan.OpticalTime,
			Speedup:        plan.Speedup(),
		}, nil
	})
	if err != nil {
		return Fig5Result{}, err
	}
	res.Rows = rows
	for _, u := range util {
		if u.Optical > 0 {
			if drop := 1 - u.Electrical/u.Optical; drop > res.MaxDrop {
				res.MaxDrop = drop
			}
		}
	}
	return res, nil
}

// SweepPoint is one buffer size of the E11 crossover sweep.
type SweepPoint struct {
	Buffer                      unit.Bytes
	ElectricalTime, OpticalTime unit.Seconds
	Speedup                     float64
}

// SweepResult is experiment E11: AllReduce completion time vs buffer
// size, electrical vs optical, locating the crossover where the
// 3.7 us reconfiguration stops mattering.
type SweepResult struct {
	Slice  string
	Points []SweepPoint
	// CrossoverBuffer is the smallest swept buffer where optics wins;
	// zero if it never wins in the swept range.
	CrossoverBuffer unit.Bytes
}

// String renders the series.
func (r SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Buffer-size sweep (%s AllReduce): electrical vs optical completion time\n", r.Slice)
	fmt.Fprintf(&b, "  %-12s %-14s %-14s %-8s\n", "buffer", "electrical", "optical", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12v %-14v %-14v %.2fx\n", p.Buffer, p.ElectricalTime, p.OpticalTime, p.Speedup)
	}
	if r.CrossoverBuffer > 0 {
		fmt.Fprintf(&b, "  optics wins from %v upward (reconfiguration amortized)\n", r.CrossoverBuffer)
	} else {
		fmt.Fprintf(&b, "  optics never wins in the swept range\n")
	}
	return b.String()
}

// Sweep runs E11 over Slice-1 of the Figure 5b rack for the given
// buffer sizes.
func Sweep(buffers []unit.Bytes, seed uint64) (SweepResult, error) {
	_, a, err := alloc.Fig5b()
	if err != nil {
		return SweepResult{}, err
	}
	fabric, err := core.New(core.Options{Seed: seed})
	if err != nil {
		return SweepResult{}, err
	}
	res := SweepResult{Slice: "Slice-1"}
	// Each buffer size plans independently against the read-only
	// fabric; the crossover scan below runs on the merged, ordered
	// points so the "smallest winning buffer" answer is unchanged.
	points, err := engine.Map(len(buffers), func(i int) (SweepPoint, error) {
		plan, err := fabric.PlanAllReduce(a, 0, buffers[i])
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{
			Buffer:         buffers[i],
			ElectricalTime: plan.ElectricalTime,
			OpticalTime:    plan.OpticalTime,
			Speedup:        plan.Speedup(),
		}, nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	res.Points = points
	for _, p := range res.Points {
		if p.OpticalTime < p.ElectricalTime {
			res.CrossoverBuffer = p.Buffer
			break
		}
	}
	return res, nil
}

// DefaultSweepBuffers is the buffer ladder the CLI sweeps: 4 KB to
// 256 MB.
func DefaultSweepBuffers() []unit.Bytes {
	var out []unit.Bytes
	for b := 4 * unit.KiB; b <= 256*unit.MiB; b *= 4 {
		out = append(out, b)
	}
	return out
}
