package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/collective"
	"lightpath/internal/cost"
	"lightpath/internal/netsim"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// AllToAllPoint is one buffer size of the all-to-all study.
type AllToAllPoint struct {
	Buffer                      unit.Bytes // per-chip buffer
	ElectricalTime, OpticalTime unit.Seconds
	Speedup                     float64
}

// AllToAllResult is the §5 hard case quantified: AllToAll over a
// 16-chip slice, electrical dimension-ordered routing (multi-hop,
// congesting) versus per-step reprogrammed optical circuits (p-1
// reconfigurations of 3.7 us each).
type AllToAllResult struct {
	Chips, Steps int
	// Reconfigs is the optical reconfiguration count (= steps).
	Reconfigs int
	Points    []AllToAllPoint
	// CrossoverBuffer is the smallest swept buffer where optics wins.
	CrossoverBuffer unit.Bytes
}

// String renders the series.
func (r AllToAllResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AllToAll over %d chips (§5's hard case): %d steps, %d optical reconfigurations\n",
		r.Chips, r.Steps, r.Reconfigs)
	fmt.Fprintf(&b, "  %-12s %-14s %-14s %-8s\n", "buffer/chip", "electrical", "optical", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-12v %-14v %-14v %.2fx\n", p.Buffer, p.ElectricalTime, p.OpticalTime, p.Speedup)
	}
	if r.CrossoverBuffer > 0 {
		fmt.Fprintf(&b, "  optics wins from %v upward despite reprogramming every step\n", r.CrossoverBuffer)
	} else {
		fmt.Fprintf(&b, "  optics never wins in the swept range\n")
	}
	return b.String()
}

// AllToAll runs the study over the 16 chips of a 4x4 plane of a TPU
// rack for the given per-chip buffer sizes.
func AllToAll(buffers []unit.Bytes) (AllToAllResult, error) {
	t := torus.New(torus.TPUv4RackShape)
	s := &torus.Slice{Name: "plane", Origin: torus.Coord{0, 0, 0}, Shape: torus.Shape{4, 4, 1}}
	chips := s.Chips(t)
	p := cost.DefaultParams()
	res := AllToAllResult{Chips: len(chips)}

	for _, buf := range buffers {
		n := int(buf / 4)
		if n < len(chips) {
			n = len(chips)
		}
		// Uniform blocks: round up to a multiple of the chip count.
		if rem := n % len(chips); rem != 0 {
			n += len(chips) - rem
		}
		elecSched, err := collective.AllToAll("a2a/elec", chips, n, 4, false)
		if err != nil {
			return AllToAllResult{}, err
		}
		optSched, err := collective.AllToAll("a2a/opt", chips, n, 4, true)
		if err != nil {
			return AllToAllResult{}, err
		}
		res.Steps = elecSched.NumSteps()
		res.Reconfigs = optSched.Reconfigs()

		// Electrical: dimension-ordered routing over the torus; every
		// hop contends for the per-dimension link share.
		pathOf := func(tr collective.Transfer) []torus.Link { return t.DORPath(tr.From, tr.To) }
		elec, err := netsim.ExecuteElectrical(elecSched, t, p.ChipBandwidth/unit.BitRate(p.PhysDims), pathOf, netsim.ExecOptions{Alpha: p.Alpha})
		if err != nil {
			return AllToAllResult{}, err
		}
		// Optical: one dedicated circuit per chip per step at the full
		// egress (only one partner at a time), reprogrammed each step.
		opt, err := netsim.ExecuteOptical(optSched, p.ChipBandwidth, netsim.ExecOptions{Alpha: p.Alpha, Reconfig: p.Reconfig})
		if err != nil {
			return AllToAllResult{}, err
		}
		point := AllToAllPoint{Buffer: buf, ElectricalTime: elec, OpticalTime: opt}
		if opt > 0 {
			point.Speedup = float64(elec / opt)
		}
		res.Points = append(res.Points, point)
		if res.CrossoverBuffer == 0 && opt < elec {
			res.CrossoverBuffer = buf
		}
	}
	return res, nil
}

// DefaultAllToAllBuffers is the CLI's sweep: 16 KB to 64 MB per chip.
func DefaultAllToAllBuffers() []unit.Bytes {
	var out []unit.Bytes
	for b := 16 * unit.KiB; b <= 64*unit.MiB; b *= 8 {
		out = append(out, b)
	}
	return out
}
