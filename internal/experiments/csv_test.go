package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lightpath/internal/unit"
)

func TestWriteCSVRoundTrip(t *testing.T) {
	res, err := Fig3a(1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nested", "fig3a.csv")
	if err := WriteCSV(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "time_us,amplitude" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(res.Trace)+1 {
		t.Fatalf("rows = %d, want %d", len(lines)-1, len(res.Trace))
	}
}

func TestAllTabularResultsProduceRows(t *testing.T) {
	var tabs []Tabular
	if r, err := Fig3a(1); err == nil {
		tabs = append(tabs, r)
	}
	if r, err := Fig3b(1, 2000); err == nil {
		tabs = append(tabs, r)
	}
	if r, err := Fig5(unit.MB, 1); err == nil {
		tabs = append(tabs, r)
	}
	if r, err := Sweep([]unit.Bytes{unit.MB}, 1); err == nil {
		tabs = append(tabs, r)
	}
	if r, err := AllToAll([]unit.Bytes{unit.MiB}); err == nil {
		tabs = append(tabs, r)
	}
	tabs = append(tabs, Waterfall())
	if r, err := Hostnet(1, 50); err == nil {
		tabs = append(tabs, r)
	}
	if r, err := Scheduler(1, 6); err == nil {
		tabs = append(tabs, r)
	}
	if len(tabs) != 8 {
		t.Fatalf("built %d tabular results, want 8", len(tabs))
	}
	for i, tab := range tabs {
		header, rows := tab.CSV()
		if len(header) == 0 || len(rows) == 0 {
			t.Fatalf("tabular %d: empty series", i)
		}
		for _, row := range rows {
			if len(row) != len(header) {
				t.Fatalf("tabular %d: row width %d != header %d", i, len(row), len(header))
			}
		}
	}
}
