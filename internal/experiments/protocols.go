package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/core"
	"lightpath/internal/hostnet"
	"lightpath/internal/unit"
)

// ProtocolRow is one message size of the eager/rendezvous study.
type ProtocolRow struct {
	Size       unit.Bytes
	Eager      unit.Seconds // +Inf-like sentinel never used; sizes above the limit report rendezvous only
	Rendezvous unit.Seconds
	Best       string
}

// ProtocolResult is the circuit-stack protocol study: where the
// receiver-copy cost of eager sends crosses the handshake cost of
// rendezvous, on a warm LIGHTPATH circuit.
type ProtocolResult struct {
	Crossover  unit.Bytes
	EagerLimit unit.Bytes
	Rows       []ProtocolRow
}

// String renders the table.
func (r ProtocolResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Circuit-stack protocols: eager (bounce copy) vs rendezvous (handshake), warm circuit\n")
	fmt.Fprintf(&b, "  analytic crossover: %v; eager limit: %v\n", r.Crossover, r.EagerLimit)
	fmt.Fprintf(&b, "  %-10s %-14s %-14s %-10s\n", "size", "eager", "rendezvous", "best")
	for _, row := range r.Rows {
		eager := "-"
		if row.Eager > 0 {
			eager = row.Eager.String()
		}
		fmt.Fprintf(&b, "  %-10v %-14s %-14v %-10s\n", row.Size, eager, row.Rendezvous, row.Best)
	}
	return b.String()
}

// CSV implements Tabular.
func (r ProtocolResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f64(float64(row.Size)), f64(float64(row.Eager)),
			f64(float64(row.Rendezvous)), row.Best,
		})
	}
	return []string{"size_bytes", "eager_s", "rendezvous_s", "best"}, rows
}

// Protocols runs the eager/rendezvous study over a size ladder.
func Protocols() ProtocolResult {
	p := hostnet.DefaultProtocolParams()
	res := ProtocolResult{Crossover: p.ProtocolCrossover(), EagerLimit: p.EagerLimit}
	for size := unit.Bytes(256); size <= 4*unit.MiB; size *= 4 {
		row := ProtocolRow{Size: size, Rendezvous: p.RendezvousLatency(size, true)}
		if size <= p.EagerLimit {
			row.Eager = p.EagerLatency(size, true)
		}
		_, row.Best = p.BestProtocolLatency(size, true)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// MoERow is one payload size of the MoE overhead sweep.
type MoERow struct {
	BytesPerExpert unit.Bytes
	NewCircuits    int
	Reused         int
	Overhead       float64 // reconfiguration fraction of the makespan
	Makespan       unit.Seconds
}

// MoEResult is the §5 trade-off curve: the reconfiguration overhead
// of dynamic MoE circuits as a function of per-expert payload.
type MoEResult struct {
	Config core.MoEConfig
	Rows   []MoERow
}

// String renders the table.
func (r MoEResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MoE dynamic circuits (§5): %d chips, top-%d of %d experts, %d batches\n",
		r.Config.Chips, r.Config.TopK, r.Config.Experts, r.Config.Batches)
	fmt.Fprintf(&b, "  %-14s %-10s %-10s %-12s %-12s\n",
		"bytes/expert", "new", "reused", "makespan", "reconfig %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14v %-10d %-10d %-12v %.2f%%\n",
			row.BytesPerExpert, row.NewCircuits, row.Reused, row.Makespan, row.Overhead*100)
	}
	return b.String()
}

// CSV implements Tabular.
func (r MoEResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f64(float64(row.BytesPerExpert)), fmt.Sprintf("%d", row.NewCircuits),
			fmt.Sprintf("%d", row.Reused), f64(float64(row.Makespan)), f64(row.Overhead),
		})
	}
	return []string{"bytes_per_expert", "new_circuits", "reused", "makespan_s", "overhead"}, rows
}

// MoE sweeps the per-expert payload to expose where reconfiguration
// stops being noise (§5's resource-allocation challenge).
func MoE(seed uint64) (MoEResult, error) {
	base := core.DefaultMoEConfig()
	base.Batches = 32
	res := MoEResult{Config: base}
	for _, bytes := range []unit.Bytes{16 * unit.KB, 256 * unit.KB, 4 * unit.MB} {
		fabric, err := core.New(core.Options{Seed: seed})
		if err != nil {
			return res, err
		}
		cfg := base
		cfg.BytesPerExpert = bytes
		out, err := fabric.RunMoE(cfg)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, MoERow{
			BytesPerExpert: bytes,
			NewCircuits:    out.NewCircuits,
			Reused:         out.ReusedCircuits,
			Overhead:       out.OverheadFraction(),
			Makespan:       out.Makespan,
		})
	}
	return res, nil
}
