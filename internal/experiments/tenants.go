package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/alloc"
	"lightpath/internal/engine"
	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/torus"
)

// TenantSweepResult generalizes Figure 5c beyond the paper's one
// hand-drawn rack: many random multi-tenant packings of a 4x4x4 rack,
// measuring the distribution of electrical bandwidth utilization
// versus the photonic fabric's.
type TenantSweepResult struct {
	Racks, Tenants int
	// ElecMean/ElecP10 summarize per-tenant electrical utilization;
	// optical utilization is 1.0 for every tenant with any ring.
	ElecMean, ElecP10, ElecWorst float64
	// FullyStranded counts tenants at zero electrical utilization
	// whose slices still have rings (i.e. optics rescues them).
	FullyStranded int
}

// String renders the result.
func (r TenantSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tenant sweep: %d random rack packings, %d tenants total\n", r.Racks, r.Tenants)
	fmt.Fprintf(&b, "  electrical utilization: mean %.2f, p10 %.2f, worst %.2f (optical: 1.00)\n",
		r.ElecMean, r.ElecP10, r.ElecWorst)
	fmt.Fprintf(&b, "  tenants with zero congestion-free dimensions (rescued by optics): %d\n", r.FullyStranded)
	return b.String()
}

// tenantRackTrial is one rack packing's contribution to the sweep.
type tenantRackTrial struct {
	utils    []float64
	stranded int
}

// TenantSweep packs racks random tenant mixes and aggregates the
// utilization gap. Rack packings are independent trials fanned across
// the engine's worker pool; each draws from an index-derived stream
// and the merge below folds them in rack order, so the result is
// bit-identical to a sequential run.
func TenantSweep(seed uint64, racks int) (TenantSweepResult, error) {
	r := rng.New(seed)
	trialResults, err := engine.Map(racks, func(rack int) (tenantRackTrial, error) {
		var tr tenantRackTrial
		t := torus.New(torus.TPUv4RackShape)
		placer := alloc.NewPlacer(t)
		placed := alloc.RandomTenants(placer, r.Split(fmt.Sprintf("rack-%d", rack)), 12)
		if len(placed) == 0 {
			return tr, nil
		}
		a, err := placer.Allocation()
		if err != nil {
			return tr, err
		}
		for si, s := range a.Slices() {
			// Skip slices with no rings at all (nothing to utilize).
			active := 0
			for _, e := range s.Shape {
				if e >= 2 {
					active++
				}
			}
			if active == 0 {
				continue
			}
			u := a.Utilization(si)
			tr.utils = append(tr.utils, u)
			if u == 0 {
				tr.stranded++
			}
		}
		return tr, nil
	})
	if err != nil {
		return TenantSweepResult{}, err
	}
	var utils []float64
	res := TenantSweepResult{Racks: racks}
	for _, tr := range trialResults {
		res.Tenants += len(tr.utils)
		utils = append(utils, tr.utils...)
		res.FullyStranded += tr.stranded
	}
	if len(utils) == 0 {
		return res, fmt.Errorf("experiments: tenant sweep produced no tenants")
	}
	res.ElecMean = phy.Mean(utils)
	res.ElecP10 = phy.Percentile(utils, 10)
	res.ElecWorst = phy.Percentile(utils, 0)
	return res, nil
}
