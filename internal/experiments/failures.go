package experiments

import (
	"errors"
	"fmt"
	"strings"

	"lightpath/internal/alloc"
	"lightpath/internal/failure"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// Fig6Result covers experiments E7 (Figure 6a) and E8 (Figure 6b):
// whether a congestion-free electrical replacement of the failed chip
// exists, and how congested the best attempt is.
type Fig6Result struct {
	Figure string
	// ElectricalPossible is the paper's claim target: false.
	ElectricalPossible bool
	// BestCongestion is the minimum congestion units of any
	// electrical plan found (busy links reused + foreign chips
	// forwarded through).
	BestCongestion int
	// Replacement is the best plan's free chip (global ID), -1 if
	// none was found at all.
	Replacement int
	FreeChips   int
	// MaxLinkSharing is the worst per-link flow count if the best
	// congested plan were deployed: the victim's repaired ring and
	// the neighbor tenants it collides with all slow down by this
	// factor on the shared link.
	MaxLinkSharing int
}

// String renders the result.
func (r Fig6Result) String() string {
	verdict := "IMPOSSIBLE without congestion (paper's claim holds)"
	if r.ElectricalPossible {
		verdict = "possible congestion-free (contradicts the paper!)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: electrical replacement of the failed chip\n", r.Figure)
	fmt.Fprintf(&b, "  free replacement candidates: %d\n", r.FreeChips)
	fmt.Fprintf(&b, "  congestion-free electrical repair: %s\n", verdict)
	if !r.ElectricalPossible && r.Replacement >= 0 {
		fmt.Fprintf(&b, "  best congested plan: replacement chip %d with %d congestion units\n",
			r.Replacement, r.BestCongestion)
		if r.MaxLinkSharing > 1 {
			fmt.Fprintf(&b, "  deploying it would put %d flows on one link: a %dx slowdown for every tenant sharing it\n",
				r.MaxLinkSharing, r.MaxLinkSharing)
		}
	}
	return b.String()
}

// Fig6a runs experiment E7.
func Fig6a() (Fig6Result, error) {
	sc, err := alloc.Fig6a()
	if err != nil {
		return Fig6Result{}, err
	}
	f, err := failure.NewFabric(sc.Torus, []*torus.Allocation{sc.Alloc}, 2)
	if err != nil {
		return Fig6Result{}, err
	}
	return runFig6("Figure 6a (single rack)", f, 0, sc.FailedChip, len(sc.FreeChips))
}

// Fig6b runs experiment E8, pre-splicing the free columns of rack 2
// toward rack 1 to give the electrical repair its best chance.
func Fig6b() (Fig6Result, error) {
	sc, err := alloc.Fig6b()
	if err != nil {
		return Fig6Result{}, err
	}
	f, err := failure.NewFabric(sc.RackTorus, sc.Allocs, sc.SpliceDim)
	if err != nil {
		return Fig6Result{}, err
	}
	busy := f.BusyLinks()
	for _, freeChip := range sc.FreeChips {
		col := sc.RackTorus.Coord(freeChip)
		col[sc.SpliceDim] = 0
		// Splices through live rings are rejected; ignore those.
		_ = f.SpliceColumn(0, 1, sc.RackTorus.Index(col), busy)
	}
	return runFig6("Figure 6b (across racks)", f, 0, sc.FailedChip, len(sc.FreeChips))
}

func runFig6(name string, f *failure.Fabric, rack, failedChip, freeChips int) (Fig6Result, error) {
	res := Fig6Result{Figure: name, Replacement: -1, FreeChips: freeChips}
	plan, err := f.ElectricalRepair(rack, failedChip, 16)
	switch {
	case err == nil:
		res.ElectricalPossible = true
		res.BestCongestion = plan.Congestion
		res.Replacement = plan.Replacement
	case errors.Is(err, failure.ErrNoCongestionFreeRepair):
		if plan != nil {
			res.BestCongestion = plan.Congestion
			res.Replacement = plan.Replacement
			res.MaxLinkSharing = linkSharing(f, plan)
		}
	default:
		return Fig6Result{}, err
	}
	return res, nil
}

// linkSharing computes the worst per-link flow count were the
// congested plan deployed: existing ring traffic plus the repair
// paths, per directed link (either orientation of a busy cable counts
// as one standing flow).
func linkSharing(f *failure.Fabric, plan *failure.ElectricalPlan) int {
	busy := f.BusyLinks()
	use := torus.LinkUse{}
	for _, p := range plan.Paths {
		use.Add(p.Links)
	}
	worst := 0
	for l, n := range use {
		total := n
		if busy[l] > 0 || busy[l.Reverse()] > 0 {
			total++
		}
		if total > worst {
			worst = total
		}
	}
	return worst
}

// Fig7Result is experiment E9: the optical repair of the Figure 6a
// failure.
type Fig7Result struct {
	Circuits    int
	Disjoint    bool
	ReadyIn     unit.Seconds
	PerCircuit  unit.BitRate
	Replacement int
}

// String renders the result.
func (r Fig7Result) String() string {
	return fmt.Sprintf(
		"Figure 7: optical repair of the broken rings\n"+
			"  circuits established: %d (replacement chip %d)\n"+
			"  circuits disjoint (separate waveguides/fibers): %v\n"+
			"  rings resume after: %v (MZI settling)\n"+
			"  per-circuit bandwidth: %v\n",
		r.Circuits, r.Replacement, r.Disjoint, r.ReadyIn, r.PerCircuit)
}

// Fig7 runs experiment E9 on the Figure 6a scenario.
func Fig7(seed uint64) (Fig7Result, error) {
	sc, err := alloc.Fig6a()
	if err != nil {
		return Fig7Result{}, err
	}
	f, err := failure.NewFabric(sc.Torus, []*torus.Allocation{sc.Alloc}, 2)
	if err != nil {
		return Fig7Result{}, err
	}
	const width = 4
	plan, err := f.OpticalRepair(0, sc.FailedChip, width, 0, seed)
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7Result{
		Circuits:    len(plan.Circuits),
		Disjoint:    plan.Disjoint(),
		ReadyIn:     plan.ReadyAt,
		PerCircuit:  plan.RepairBandwidth(),
		Replacement: plan.Replacement,
	}, nil
}

// BlastResult is experiment E10.
type BlastResult struct {
	Stats failure.BlastRadiusStats
}

// String renders the result.
func (r BlastResult) String() string {
	return fmt.Sprintf(
		"Blast radius of a single chip failure (TPUv4-scale cluster, %d chips)\n"+
			"  electrical policy (rack granularity): %.0f chips\n"+
			"  optical repair (server granularity):  %.0f chips\n"+
			"  shrinkage: %.0fx\n",
		r.Stats.Failures, r.Stats.ElectricalMean, r.Stats.OpticalMean, r.Stats.Ratio)
}

// Blast runs experiment E10: the full-cluster failure sweep.
func Blast() BlastResult {
	return BlastResult{Stats: failure.SweepBlastRadius(torus.NewTPUv4Cluster())}
}
