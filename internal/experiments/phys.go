// Package experiments contains one runner per paper artifact (every
// table and figure, per DESIGN.md's experiment index E1-E12) plus the
// ablation studies. Each runner returns a result struct with a String
// rendering that prints the same rows/series the paper reports; the
// CLI (cmd/lightpath-sim) and the benchmark harness (bench_test.go)
// both dispatch here.
package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/phy"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// Fig3aResult is experiment E1: the MZI switch time response and the
// fitted reconfiguration latency (paper: 3.7 us).
type Fig3aResult struct {
	Samples    int
	FittedTau  unit.Seconds
	Latency    unit.Seconds // 2%-settling time from the fit
	FitRMSE    float64
	PaperValue unit.Seconds
	// Trace is a decimated (time, amplitude) series for plotting.
	Trace []phy.Sample
}

// String renders the result.
func (r Fig3aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3a: Mach-Zehnder router switch time response\n")
	fmt.Fprintf(&b, "  samples=%d fitted tau=%v rmse=%.4f\n", r.Samples, r.FittedTau, r.FitRMSE)
	fmt.Fprintf(&b, "  reconfiguration latency (2%% settling) = %v (paper: %v)\n", r.Latency, r.PaperValue)
	fmt.Fprintf(&b, "  trace (t us, amplitude):")
	for _, s := range r.Trace {
		fmt.Fprintf(&b, " (%.2f, %.3f)", s.T.Micros(), s.V)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig3a simulates the oscilloscope measurement of Figure 3a: drive an
// MZI from bar to cross, sample the output with measurement noise,
// and fit the exponential rise.
func Fig3a(seed uint64) (Fig3aResult, error) {
	var m phy.MZI
	r := rng.New(seed).Split("fig3a")
	trace := m.StepResponse(20*unit.Nanosecond, 12*unit.Microsecond, 0.02, r)
	fit, err := phy.FitExponentialRise(trace)
	if err != nil {
		return Fig3aResult{}, err
	}
	res := Fig3aResult{
		Samples:    len(trace),
		FittedTau:  fit.Tau,
		Latency:    fit.SettlingTime(0.02),
		FitRMSE:    fit.Residual,
		PaperValue: phy.ReconfigLatency,
	}
	// Decimate to ~24 plot points.
	step := len(trace) / 24
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(trace); i += step {
		res.Trace = append(res.Trace, trace[i])
	}
	return res, nil
}

// Fig3bResult is experiment E2: the reticle stitch loss distribution
// (paper: centered near 0.25 dB).
type Fig3bResult struct {
	Samples    int
	Mean, SD   float64 // dB
	FitMean    float64 // Gaussian fit center, dB
	FitSD      float64
	PaperValue unit.Decibel
	// Bins are (center dB, density) pairs of the histogram.
	Bins [][2]float64
}

// String renders the result.
func (r Fig3bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3b: distribution of reticle stitch loss\n")
	fmt.Fprintf(&b, "  samples=%d mean=%.3fdB sd=%.3fdB\n", r.Samples, r.Mean, r.SD)
	fmt.Fprintf(&b, "  gaussian fit: center=%.3fdB sd=%.3fdB (paper: ~%.2fdB crossings)\n",
		r.FitMean, r.FitSD, float64(r.PaperValue))
	fmt.Fprintf(&b, "  histogram (dB, density):")
	for _, bin := range r.Bins {
		fmt.Fprintf(&b, " (%.3f, %.2f)", bin[0], bin[1])
	}
	b.WriteString("\n")
	return b.String()
}

// Fig3b samples the stitch-loss distribution and fits the Gaussian
// the figure overlays.
func Fig3b(seed uint64, samples int) (Fig3bResult, error) {
	m := phy.NewLossModel(rng.New(seed).Split("fig3b"))
	vals := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		vals = append(vals, float64(m.SampleStitchLoss()))
	}
	h := phy.NewHistogram(vals, 0, float64(phy.StitchLossMaxDB), 32)
	fit, err := phy.FitGaussian(vals, h)
	if err != nil {
		return Fig3bResult{}, err
	}
	res := Fig3bResult{
		Samples:    samples,
		Mean:       phy.Mean(vals),
		SD:         phy.StdDev(vals),
		FitMean:    fit.Mean,
		FitSD:      fit.SD,
		PaperValue: phy.CrossingLossDB,
	}
	centers := h.BinCenters()
	densities := h.Densities()
	for i := range centers {
		res.Bins = append(res.Bins, [2]float64{centers[i], densities[i]})
	}
	return res, nil
}

// Fig4Result is experiment E3: waveguide density and the routing
// headroom it buys.
type Fig4Result struct {
	PitchUM            float64
	TileEdgeMM         float64
	WaveguidesPerTile  int
	MaxBudgetCrossings int
}

// String renders the result.
func (r Fig4Result) String() string {
	return fmt.Sprintf(
		"Figure 4: waveguide density\n"+
			"  pitch=%.1fum tile edge=%.0fmm -> %d waveguides per tile (paper: 10,000)\n"+
			"  link budget tolerates %d crossings at %.2fdB on top of a typical circuit\n",
		r.PitchUM, r.TileEdgeMM, r.WaveguidesPerTile, r.MaxBudgetCrossings, float64(phy.CrossingLossDB))
}

// Fig4 computes the Figure 4 geometry from the default wafer
// configuration.
func Fig4() Fig4Result {
	cfg := wafer.DefaultConfig()
	// Fixed losses of a representative circuit: two couplings, four
	// switches (8 MZI stages), 5 cm of waveguide, 2 stitches.
	fixed := 2*phy.CouplingLossDB + 8*phy.MZIInsertionLossDB +
		5*phy.PropagationLossDBPerCm + 2*phy.StitchLossMeanDB
	return Fig4Result{
		PitchUM:            float64(cfg.WaveguidePitch) / float64(unit.Micrometer),
		TileEdgeMM:         float64(cfg.TileEdge) / float64(unit.Millimeter),
		WaveguidesPerTile:  cfg.WaveguidesPerTileGeometric(),
		MaxBudgetCrossings: phy.DefaultBudget().MaxCrossings(fixed, phy.CrossingLossDB),
	}
}

// InfoResult is experiment E12: the §3 headline hardware numbers.
type InfoResult struct {
	Tiles              int
	LasersPerTile      int
	WavelengthCapacity unit.BitRate
	TileEgress         unit.BitRate
	ReconfigLatency    unit.Seconds
	CrossingLoss       unit.Decibel
	WaveguidesPerTile  int
}

// String renders the result.
func (r InfoResult) String() string {
	return fmt.Sprintf(
		"LIGHTPATH prototype headline numbers (paper §3)\n"+
			"  tiles per wafer:        %d\n"+
			"  lasers per tile:        %d\n"+
			"  per-wavelength rate:    %v\n"+
			"  tile egress:            %v\n"+
			"  reconfiguration:        %v\n"+
			"  crossing loss:          %.2f dB\n"+
			"  waveguides per tile:    %d\n",
		r.Tiles, r.LasersPerTile, r.WavelengthCapacity, r.TileEgress,
		r.ReconfigLatency, float64(r.CrossingLoss), r.WaveguidesPerTile)
}

// WaterfallResult is the BER waterfall of the LIGHTPATH receiver —
// the physical-layer validation behind §3's "we measure
// characteristics (e.g., bit error rate) using this transfer".
type WaterfallResult struct {
	Sensitivity unit.DBm
	Points      []phy.WaterfallPoint
}

// String renders the curve.
func (r WaterfallResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BER waterfall (receiver sensitivity %.1f dBm at 1e-12)\n", float64(r.Sensitivity))
	fmt.Fprintf(&b, "  (rx dBm, BER):")
	for _, p := range r.Points {
		fmt.Fprintf(&b, " (%.1f, %.1e)", float64(p.Rx), p.BER)
	}
	b.WriteString("\n")
	return b.String()
}

// Waterfall sweeps received power over the budget's dynamic range.
func Waterfall() WaterfallResult {
	budget := phy.DefaultBudget()
	return WaterfallResult{
		Sensitivity: budget.ReceiverSensitivity,
		Points:      phy.Waterfall(budget.ReceiverSensitivity, budget.ReceiverSensitivity-6, budget.ReceiverSensitivity+6, 1),
	}
}

// Info reports the paper's headline prototype numbers from the model
// constants.
func Info() InfoResult {
	cfg := wafer.DefaultConfig()
	return InfoResult{
		Tiles:              cfg.Tiles(),
		LasersPerTile:      cfg.LasersPerTile,
		WavelengthCapacity: cfg.WavelengthCapacity,
		TileEgress:         cfg.TileEgress(),
		ReconfigLatency:    phy.ReconfigLatency,
		CrossingLoss:       phy.CrossingLossDB,
		WaveguidesPerTile:  cfg.WaveguidesPerTileGeometric(),
	}
}
