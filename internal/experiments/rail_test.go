package experiments

import (
	"strings"
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// smallRailConfig is a sub-second campaign with every traffic class
// present: 4 rails x 16 servers, 512 flows in 16 components.
func smallRailConfig() RailFabricConfig {
	return RailFabricConfig{
		Rails:        4,
		Servers:      16,
		GroupSize:    4,
		XRailServers: 4,
		Waves:        8,
		BaseBytes:    unit.MB,
		RailBW:       unit.GBps(40),
		BusBW:        unit.GBps(100),
	}
}

// TestRailFabricCounts checks the config arithmetic against the
// placed campaign.
func TestRailFabricCounts(t *testing.T) {
	cfg := smallRailConfig()
	if got, want := cfg.FlowCount(), 512; got != want {
		t.Fatalf("FlowCount() = %d, want %d", got, want)
	}
	if got, want := cfg.Components(), 16; got != want {
		t.Fatalf("Components() = %d, want %d", got, want)
	}
	res, err := RailFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows != cfg.FlowCount() {
		t.Fatalf("placed %d flows, config promises %d", res.Flows, cfg.FlowCount())
	}
	if res.Components != cfg.Components() {
		t.Fatalf("result claims %d components, config promises %d", res.Components, cfg.Components())
	}
	if res.Endpoints != 64 || res.Rails != 4 {
		t.Fatalf("geometry echo wrong: %d endpoints, %d rails", res.Endpoints, res.Rails)
	}
	if res.Makespan <= 0 || res.RingMakespan <= 0 || res.XRailMakespan <= 0 {
		t.Fatalf("degenerate makespans: %v / %v / %v", res.Makespan, res.RingMakespan, res.XRailMakespan)
	}
	if res.Makespan != res.RingMakespan && res.Makespan != res.XRailMakespan {
		t.Fatalf("global makespan %v matches neither class (%v, %v)",
			res.Makespan, res.RingMakespan, res.XRailMakespan)
	}
	// Every ring link carries Waves flows, far above the even share.
	if res.Oversubscribed == 0 {
		t.Fatal("contended fabric reported zero oversubscribed links")
	}
	if res.MaxLoadFlows < cfg.Waves {
		t.Fatalf("peak link load %d below wave depth %d", res.MaxLoadFlows, cfg.Waves)
	}
}

// TestRailFabricDeterministicAcrossModes is the campaign-level leg of
// the determinism contract: parallel and sequential runs must render
// byte-identical CSVs and summaries.
func TestRailFabricDeterministicAcrossModes(t *testing.T) {
	cfg := smallRailConfig()
	prevPar := engine.SetParallel(false)
	seq, err := RailFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetParallel(true)
	prevW := engine.SetWorkers(4)
	par, err := RailFabric(cfg)
	engine.SetParallel(prevPar)
	engine.SetWorkers(prevW)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("summaries diverged:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
	sh, sr := seq.CSV()
	ph, pr := par.CSV()
	if strings.Join(sh, ",") != strings.Join(ph, ",") {
		t.Fatal("CSV headers diverged")
	}
	if len(sr) != len(pr) {
		t.Fatalf("CSV row counts diverged: %d vs %d", len(sr), len(pr))
	}
	for i := range sr {
		if strings.Join(sr[i], ",") != strings.Join(pr[i], ",") {
			t.Fatalf("CSV row %d diverged:\nsequential: %v\nparallel:   %v", i, sr[i], pr[i])
		}
	}
}

// TestRailFabricCSVShape pins the CSV layout the golden gate diffs.
func TestRailFabricCSVShape(t *testing.T) {
	res, err := RailFabric(smallRailConfig())
	if err != nil {
		t.Fatal(err)
	}
	header, rows := res.CSV()
	if strings.Join(header, ",") != "class,rail,groups,flows,bytes,makespan_us" {
		t.Fatalf("unexpected header %v", header)
	}
	if len(rows) != res.Rails+1 {
		t.Fatalf("%d rows, want one per rail plus the cross-rail aggregate (%d)", len(rows), res.Rails+1)
	}
	for i := 0; i < res.Rails; i++ {
		if rows[i][0] != "ring" {
			t.Fatalf("row %d class = %q, want ring", i, rows[i][0])
		}
	}
	if last := rows[len(rows)-1]; last[0] != "xrail" || last[1] != "-1" {
		t.Fatalf("aggregate row = %v", rows[len(rows)-1])
	}
}

// TestRailFabricConfigValidate sweeps the rejection paths.
func TestRailFabricConfigValidate(t *testing.T) {
	base := smallRailConfig()
	mutations := map[string]func(*RailFabricConfig){
		"one rail":           func(c *RailFabricConfig) { c.Rails = 1 },
		"tiny group":         func(c *RailFabricConfig) { c.GroupSize = 1 },
		"xrail too large":    func(c *RailFabricConfig) { c.XRailServers = c.Servers },
		"indivisible groups": func(c *RailFabricConfig) { c.GroupSize = 5 },
		"no waves":           func(c *RailFabricConfig) { c.Waves = 0 },
		"no payload":         func(c *RailFabricConfig) { c.BaseBytes = 0 },
		"no bandwidth":       func(c *RailFabricConfig) { c.RailBW = 0 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	if err := DefaultRailFabricConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestDefaultRailFabricConfigScale pins the acceptance-scale numbers:
// at least 10k endpoints and a million flows.
func TestDefaultRailFabricConfigScale(t *testing.T) {
	cfg := DefaultRailFabricConfig()
	if endpoints := cfg.Rails * cfg.Servers; endpoints < 10000 {
		t.Fatalf("default campaign has %d endpoints, want >= 10000", endpoints)
	}
	if cfg.FlowCount() < 1_000_000 {
		t.Fatalf("default campaign has %d flows, want >= 1M", cfg.FlowCount())
	}
}
