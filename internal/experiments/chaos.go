package experiments

import (
	"fmt"
	"math"
	"strings"

	"lightpath/internal/alloc"
	"lightpath/internal/chaos"
	"lightpath/internal/core"
	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// This file is the failure-lifecycle experiment: seed-driven chip
// failures injected mid-collective, recovered by optical splicing, and
// measured for MTTR, goodput under failure, and blast radius. It
// re-derives the paper's §4.2 blast-radius claim dynamically — not by
// counting chips on paper, but by actually stalling and repairing a
// running AllReduce.

// chaosHorizon is the simulated window the fault engine schedules
// arrivals in.
const chaosHorizon unit.Seconds = 1.0

// chaosChipMTBF makes chip failures frequent enough that a one-second
// horizon yields a comfortable surplus of trials.
const chaosChipMTBF unit.Seconds = 10 * unit.Millisecond

// ChaosTrial is one fault-injected AllReduce run.
type ChaosTrial struct {
	// Victim is the chip the engine killed; FailStep is the schedule
	// step the failure interrupted; FaultTime is the engine's arrival
	// time within the horizon.
	Victim    int
	FailStep  int
	FaultTime unit.Seconds
	// Replacement is the spare spliced in.
	Replacement int
	// MTTR and Repair are the recovery measurements (Repair excludes
	// detection latency).
	MTTR, Repair unit.Seconds
	// Degraded reports a repair circuit came up narrower than asked.
	Degraded bool
	// Correct reports the AllReduce still computed the right answer.
	Correct bool
	// Goodput is useful bytes over total bytes moved.
	Goodput float64
	// StallOptical and StallElectrical are the trial's blast radii
	// under the two policies.
	StallOptical, StallElectrical int
}

// ChaosResult aggregates the fault-injection campaign.
type ChaosResult struct {
	Trials []ChaosTrial
	// AllCorrect is the headline: every interrupted collective still
	// produced the exact AllReduce result.
	AllCorrect bool
	// MeanMTTR and MeanGoodput average the trials.
	MeanMTTR    unit.Seconds
	MeanGoodput float64
	// RepairBound is the analytic repair floor (one MZI settling
	// interval); WithinBound reports every trial repaired within twice
	// it.
	RepairBound unit.Seconds
	WithinBound bool
	// BlastRatio is the mean electrical stall set over the mean
	// optical one — the dynamic blast-radius shrinkage.
	BlastRatio float64
}

// String renders the campaign summary and per-trial table.
func (r ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure lifecycle: %d chip failures injected mid-AllReduce (Fig 6a rack)\n", len(r.Trials))
	fmt.Fprintf(&b, "  all collectives completed correctly: %v\n", r.AllCorrect)
	fmt.Fprintf(&b, "  mean MTTR: %v (repair bound %v, all repairs within 2x: %v)\n",
		r.MeanMTTR, r.RepairBound, r.WithinBound)
	fmt.Fprintf(&b, "  mean goodput under failure: %.1f%%\n", r.MeanGoodput*100)
	fmt.Fprintf(&b, "  blast radius: %.1fx smaller than electrical rack migration\n", r.BlastRatio)
	for i, tr := range r.Trials {
		fmt.Fprintf(&b, "  trial %d: chip %d died in step %d -> chip %d spliced in, MTTR %v, goodput %.1f%%, stall %d vs %d\n",
			i, tr.Victim, tr.FailStep, tr.Replacement, tr.MTTR, tr.Goodput*100,
			tr.StallOptical, tr.StallElectrical)
	}
	return b.String()
}

// CSV implements Tabular: one row per trial.
func (r ChaosResult) CSV() ([]string, [][]string) {
	rows := make([][]string, 0, len(r.Trials))
	for i, tr := range r.Trials {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", tr.Victim),
			fmt.Sprintf("%d", tr.FailStep),
			f64(tr.FaultTime.Micros()),
			fmt.Sprintf("%d", tr.Replacement),
			f64(tr.MTTR.Micros()),
			f64(tr.Repair.Micros()),
			fmt.Sprintf("%v", tr.Degraded),
			fmt.Sprintf("%v", tr.Correct),
			f64(tr.Goodput),
			fmt.Sprintf("%d", tr.StallOptical),
			fmt.Sprintf("%d", tr.StallElectrical),
		})
	}
	return []string{"trial", "victim", "fail_step", "fault_time_us", "replacement",
		"mttr_us", "repair_us", "degraded", "correct", "goodput",
		"stall_optical", "stall_electrical"}, rows
}

// Chaos runs the fault-injection campaign: the chaos engine schedules
// chip-failure arrivals over the horizon, and each of the first
// `trials` arrivals is replayed as a mid-collective failure of the
// Figure 6a victim slice — the engine decides who dies and when, the
// fabric recovers, and the trial records whether the math survived.
func Chaos(seed uint64, trials int, bufferBytes unit.Bytes) (ChaosResult, error) {
	if trials < 1 {
		return ChaosResult{}, fmt.Errorf("experiments: chaos trials %d < 1", trials)
	}
	sc, err := alloc.Fig6a()
	if err != nil {
		return ChaosResult{}, err
	}
	const victimSlice = 1 // Slice-3, the 4x4 plane holding Figure 6a's failure
	sliceChips := sc.Alloc.Slices()[victimSlice].Chips(sc.Torus)

	// The engine draws arrival times and victims from split streams;
	// chips here index the victim slice's chip list.
	eng, err := chaos.NewEngine(seed, chaos.Components{
		Chips:           len(sliceChips),
		SwitchesPerTile: 4,
		Wafers:          2,
		Rows:            8,
		Cols:            8,
		Trunks:          2,
	}, chaos.Rates{MTBF: chipFailureOnly()})
	if err != nil {
		return ChaosResult{}, err
	}
	faults := eng.Schedule(chaosHorizon)
	var chipFaults []chaos.Fault
	for _, f := range faults {
		if f.Class == chaos.ChipFailure {
			chipFaults = append(chipFaults, f)
		}
	}
	if len(chipFaults) < trials {
		return ChaosResult{}, fmt.Errorf("experiments: engine scheduled %d chip failures, need %d", len(chipFaults), trials)
	}

	// Planning is deterministic given the seed and allocation, so the
	// campaign plans the collective once on a probe fabric; each trial
	// receives its own Clone (the repair splice mutates the schedule).
	probe, err := core.New(core.Options{RackShape: sc.Torus.Shape(), Seed: seed})
	if err != nil {
		return ChaosResult{}, err
	}
	probePlan, err := probe.PlanAllReduce(sc.Alloc, victimSlice, bufferBytes)
	if err != nil {
		return ChaosResult{}, err
	}
	numSteps := probePlan.Schedule.NumSteps()

	// One pristine fabric, cloned per trial: a clone of an untouched
	// fabric is bit-identical to calling core.New with the same seed
	// (the random streams are never advanced before cloning), so the
	// campaign skips the full hardware construction in every trial.
	proto, err := core.New(core.Options{RackShape: sc.Torus.Shape(), Seed: seed})
	if err != nil {
		return ChaosResult{}, err
	}

	res := ChaosResult{AllCorrect: true, WithinBound: true}
	var sumMTTR, sumGoodput float64
	var sumOpt, sumElec float64
	pol := core.DefaultChaosPolicy()
	type chaosOutcome struct {
		trial    ChaosTrial
		bound    unit.Seconds
		overTwox bool
	}
	// Trials are independent: each clones its own hardware and its
	// inputs (fault arrival, fail step) are precomputed above, so the
	// engine fans them out and the loop below merges in trial order.
	outcomes, err := engine.Map(trials, func(i int) (chaosOutcome, error) {
		f := chipFaults[i]
		victim := sliceChips[f.Chip]
		// Collectives run back-to-back, each lasting CleanTime; the
		// arrival's phase within the collective it interrupts picks the
		// step — a seed-stable mapping that spreads failures across the
		// schedule.
		phase := math.Mod(float64(f.Time), float64(probePlan.OpticalTime)) / float64(probePlan.OpticalTime)
		failStep := int(phase * float64(numSteps))
		if failStep >= numSteps {
			failStep = numSteps - 1
		}

		// Fresh hardware per trial: failures must not accumulate
		// across the campaign.
		fabric := proto.Clone()
		outcome, err := fabric.RunPlannedAllReduceUnderFault(sc.Alloc, probePlan.Clone(), victim, failStep, pol)
		if err != nil {
			return chaosOutcome{}, fmt.Errorf("experiments: trial %d (chip %d, step %d): %w", i, victim, failStep, err)
		}
		return chaosOutcome{
			trial: ChaosTrial{
				Victim:          victim,
				FailStep:        failStep,
				FaultTime:       f.Time,
				Replacement:     outcome.Replacement,
				MTTR:            outcome.MTTR,
				Repair:          outcome.RepairTime,
				Degraded:        outcome.Degraded,
				Correct:         outcome.Correct,
				Goodput:         outcome.GoodputFraction,
				StallOptical:    outcome.StallOptical,
				StallElectrical: outcome.StallElectrical,
			},
			bound:    outcome.RepairBound,
			overTwox: outcome.RepairTime > 2*outcome.RepairBound,
		}, nil
	})
	if err != nil {
		return ChaosResult{}, err
	}
	for _, o := range outcomes {
		res.RepairBound = o.bound
		res.AllCorrect = res.AllCorrect && o.trial.Correct
		if o.overTwox {
			res.WithinBound = false
		}
		res.Trials = append(res.Trials, o.trial)
		sumMTTR += float64(o.trial.MTTR)
		sumGoodput += o.trial.Goodput
		sumOpt += float64(o.trial.StallOptical)
		sumElec += float64(o.trial.StallElectrical)
	}
	n := float64(trials)
	res.MeanMTTR = unit.Seconds(sumMTTR / n)
	res.MeanGoodput = sumGoodput / n
	if sumOpt > 0 {
		res.BlastRatio = sumElec / sumOpt
	}
	return res, nil
}

// chipFailureOnly builds a rate table where only whole-chip failures
// arrive — the campaign's faults — leaving the other classes silent.
func chipFailureOnly() [chaos.NumClasses]unit.Seconds {
	var mtbf [chaos.NumClasses]unit.Seconds
	mtbf[chaos.ChipFailure] = chaosChipMTBF
	return mtbf
}
