package experiments

import (
	"testing"
)

func TestAllToAllExperiment(t *testing.T) {
	res, err := AllToAll(DefaultAllToAllBuffers())
	if err != nil {
		t.Fatal(err)
	}
	if res.Chips != 16 || res.Steps != 15 || res.Reconfigs != 15 {
		t.Fatalf("geometry: %+v", res)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Tiny buffers: 15 reconfigurations of 3.7us dominate.
	if first.Speedup >= 1 {
		t.Fatalf("16KB speedup = %v, want < 1", first.Speedup)
	}
	// Large buffers: multi-hop electrical congestion dominates and
	// optics wins by more than the ring collectives' 3x.
	if last.Speedup < 3 {
		t.Fatalf("64MB speedup = %v, want > 3", last.Speedup)
	}
	if res.CrossoverBuffer == 0 {
		t.Fatal("no crossover")
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}
