package experiments

import (
	"fmt"
	"strings"
	"testing"

	"lightpath/internal/engine"
	"lightpath/internal/unit"
)

// The engine's determinism contract promises that fanning a campaign
// across workers is invisible in the output. These tests hold every
// parallelized campaign to the strongest form of that promise: the
// rendered tables and CSV rows must be byte-identical between a
// sequential run and a parallel run with many workers. Run them under
// -race to also certify the trial bodies share no mutable state.

// renderTabular flattens a Tabular into one comparable string.
func renderTabular(tab Tabular) string {
	var b strings.Builder
	header, rows := tab.CSV()
	fmt.Fprintln(&b, strings.Join(header, ","))
	for _, row := range rows {
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	return b.String()
}

// parallelCampaigns names every campaign the engine fans out, each
// returning its full rendered output (summary plus CSV when the
// result exports one).
var parallelCampaigns = []struct {
	name string
	run  func() (string, error)
}{
	{"tenant-sweep", func() (string, error) {
		r, err := TenantSweep(6, 10)
		return r.String(), err
	}},
	{"repairability", func() (string, error) {
		r, err := Repairability(21, 15)
		return r.String(), err
	}},
	{"chaos", func() (string, error) {
		r, err := Chaos(2024, 3, unit.MB)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
	{"hostnet", func() (string, error) {
		r, err := Hostnet(1, 50)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
	{"scheduler", func() (string, error) {
		r, err := Scheduler(1, 6)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
	{"fig5", func() (string, error) {
		r, err := Fig5(64*unit.MB, 3)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
	{"sweep", func() (string, error) {
		r, err := Sweep(DefaultSweepBuffers(), 4)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
	{"ablation-alloc", func() (string, error) {
		r, err := AblationAllocation(11, 8)
		return r.String(), err
	}},
	{"soak", func() (string, error) {
		r, err := Soak(2024, 2)
		if err != nil {
			return "", err
		}
		return r.String() + renderTabular(r), nil
	}},
}

// TestParallelMatchesSequential is the golden cross-check: each
// campaign once with the engine forced sequential, once fanned over
// eight workers, and the rendered bytes must match exactly.
func TestParallelMatchesSequential(t *testing.T) {
	for _, c := range parallelCampaigns {
		c := c
		t.Run(c.name, func(t *testing.T) {
			engine.SetParallel(false)
			seq, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			engine.SetParallel(true)
			engine.SetWorkers(8)
			defer func() {
				engine.SetWorkers(0)
				engine.SetParallel(true)
			}()
			par, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Fatalf("parallel output diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
			if len(seq) == 0 {
				t.Fatal("empty render")
			}
		})
	}
}
