package experiments

import (
	"fmt"
	"strings"

	"lightpath/internal/engine"
	"lightpath/internal/hostnet"
	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// HostnetRow compares the two stacks on one workload class.
type HostnetRow struct {
	Workload    string
	PacketMean  unit.Seconds
	PacketP99   unit.Seconds
	CircuitMean unit.Seconds
	CircuitP99  unit.Seconds
	Setups      int
}

// HostnetResult is the §1/§5 host-stack study: packetized versus
// circuit-switched host networking over synthetic traffic classes,
// plus the one-shot message-size crossover.
type HostnetResult struct {
	Rows []HostnetRow
	// CrossoverSize is the message size where a cold circuit send
	// matches the packet stack.
	CrossoverSize unit.Bytes
	// SizePoints are (size, packet latency, cold circuit latency)
	// triples of the one-shot sweep.
	SizePoints [][3]float64
}

// String renders the result.
func (r HostnetResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Host networking stacks (§1/§5): packetized vs circuit-switched\n")
	fmt.Fprintf(&b, "  one-shot crossover: circuits win above %v (cold circuit pays 3.7us setup)\n", r.CrossoverSize)
	fmt.Fprintf(&b, "  %-10s %-14s %-14s %-14s %-14s %-8s\n",
		"workload", "pkt mean", "pkt p99", "circ mean", "circ p99", "setups")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-14v %-14v %-14v %-14v %d\n",
			row.Workload, row.PacketMean, row.PacketP99, row.CircuitMean, row.CircuitP99, row.Setups)
	}
	return b.String()
}

// Hostnet runs the host-stack study.
func Hostnet(seed uint64, messages int) (HostnetResult, error) {
	p := hostnet.DefaultParams()
	res := HostnetResult{CrossoverSize: p.CrossoverSize()}
	for s := unit.Bytes(256); s <= 16*unit.MiB; s *= 4 {
		res.SizePoints = append(res.SizePoints, [3]float64{
			float64(s),
			float64(p.PacketLatency(s)),
			float64(p.CircuitLatency(s, false)),
		})
	}
	r := rng.New(seed)
	kinds := []hostnet.WorkloadKind{hostnet.WorkloadRPC, hostnet.WorkloadBulk, hostnet.WorkloadBursty}
	// Each workload class draws its trace from a label-derived stream,
	// so the classes are independent trials: fan them out and merge the
	// rows in class order.
	rows, err := engine.Map(len(kinds), func(i int) (HostnetRow, error) {
		kind := kinds[i]
		trace := hostnet.GenerateTrace(kind, messages, r.Split(kind.String()))
		pkt, err := hostnet.RunPacketTrace(p, trace)
		if err != nil {
			return HostnetRow{}, err
		}
		circ, err := hostnet.RunCircuitTrace(p, trace)
		if err != nil {
			return HostnetRow{}, err
		}
		return HostnetRow{
			Workload:    kind.String(),
			PacketMean:  pkt.Mean,
			PacketP99:   pkt.P99,
			CircuitMean: circ.Mean,
			CircuitP99:  circ.P99,
			Setups:      circ.Setups,
		}, nil
	})
	if err != nil {
		return HostnetResult{}, err
	}
	res.Rows = rows
	return res, nil
}
