package experiments

import (
	"lightpath/internal/cost"
	"lightpath/internal/torus"
	"lightpath/internal/unit"
)

// Table1 is experiment E4: the Slice-1 (4x2x1) ReduceScatter costs.
// n is the buffer length in 4-byte elements.
func Table1(n int) (cost.Table1, error) {
	t := torus.New(torus.TPUv4RackShape)
	s := &torus.Slice{Name: "Slice-1", Origin: torus.Coord{0, 0, 3}, Shape: torus.Shape{4, 2, 1}}
	return cost.MakeTable1(cost.DefaultParams(), t, s, n, 4)
}

// Table2 is experiment E5: the Slice-3 (4x4x1) two-stage bucket
// ReduceScatter costs.
func Table2(n int) (cost.Table2, error) {
	t := torus.New(torus.TPUv4RackShape)
	s := &torus.Slice{Name: "Slice-3", Origin: torus.Coord{0, 0, 2}, Shape: torus.Shape{4, 4, 1}}
	return cost.MakeTable2(cost.DefaultParams(), t, s, []int{0, 1}, n, 4)
}

// DefaultTableBuffer is the buffer used by the CLI for the tables:
// 64 MB of float32 gradients, a typical per-step AllReduce shard.
const DefaultTableBuffer = 16 << 20 // elements; x4 bytes = 64 MB

// TableBufferBytes converts an element count to bytes.
func TableBufferBytes(n int) unit.Bytes { return unit.Bytes(n) * 4 }
