package experiments

import (
	"math"
	"strings"
	"testing"

	"lightpath/internal/unit"
)

func TestFig3a(t *testing.T) {
	res, err := Fig3a(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 3.2*unit.Microsecond || res.Latency > 4.2*unit.Microsecond {
		t.Fatalf("latency = %v, want ~3.7us", res.Latency)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no plot trace")
	}
	if !strings.Contains(res.String(), "3.70us") && !strings.Contains(res.String(), "paper") {
		t.Fatalf("render: %q", res.String())
	}
}

func TestFig3b(t *testing.T) {
	res, err := Fig3b(2, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FitMean-0.25) > 0.02 {
		t.Fatalf("fit center = %v, want ~0.25", res.FitMean)
	}
	if len(res.Bins) != 32 {
		t.Fatalf("bins = %d", len(res.Bins))
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestFig4(t *testing.T) {
	res := Fig4()
	if res.WaveguidesPerTile < 10000 {
		t.Fatalf("waveguides = %d", res.WaveguidesPerTile)
	}
	if res.MaxBudgetCrossings < 20 {
		t.Fatalf("budget crossings = %d, expected comfortable headroom", res.MaxBudgetCrossings)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestInfo(t *testing.T) {
	res := Info()
	if res.Tiles != 32 || res.LasersPerTile != 16 {
		t.Fatalf("info = %+v", res)
	}
	if res.TileEgress != 3584*unit.Gbps {
		t.Fatalf("egress = %v", res.TileEgress)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestTable1Experiment(t *testing.T) {
	tbl, err := Table1(DefaultTableBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tbl.BetaRatio-3) > 1e-9 {
		t.Fatalf("ratio = %v", tbl.BetaRatio)
	}
	if TableBufferBytes(DefaultTableBuffer) != 64*unit.MiB {
		t.Fatalf("buffer bytes = %v", TableBufferBytes(DefaultTableBuffer))
	}
}

func TestTable2Experiment(t *testing.T) {
	tbl, err := Table2(DefaultTableBuffer)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Stages) != 2 {
		t.Fatalf("stages = %d", len(tbl.Stages))
	}
	ratio := float64(tbl.TotalElecBeta() / tbl.TotalOptBeta())
	if math.Abs(ratio-1.5) > 1e-9 {
		t.Fatalf("ratio = %v", ratio)
	}
}

func TestFig5Experiment(t *testing.T) {
	res, err := Fig5(64*unit.MB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if math.Abs(res.MaxDrop-2.0/3) > 1e-9 {
		t.Fatalf("max drop = %v, want 2/3", res.MaxDrop)
	}
	for _, row := range res.Rows {
		// Slices 1-3 gain (3x, 3x, 1.5x). Slice-4's conservative
		// bucket-shared plan is a wash minus reconfigurations.
		min := 1.3
		if row.Slice == "Slice-4" {
			min = 0.97
		}
		if row.Speedup < min {
			t.Errorf("%s: optical speedup %v < %v at 64MB", row.Slice, row.Speedup, min)
		}
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestSweepExperiment(t *testing.T) {
	res, err := Sweep(DefaultSweepBuffers(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Small buffers: electrical wins (reconfiguration dominates);
	// large: optics wins ~3x.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.Speedup >= 1 {
		t.Fatalf("4KB speedup = %v, want < 1", first.Speedup)
	}
	if last.Speedup < 2.5 {
		t.Fatalf("256MB speedup = %v, want ~3", last.Speedup)
	}
	if res.CrossoverBuffer == 0 {
		t.Fatal("no crossover found")
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestFig6aExperiment(t *testing.T) {
	res, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	if res.ElectricalPossible {
		t.Fatal("Figure 6a electrical repair should be impossible")
	}
	if res.BestCongestion == 0 {
		t.Fatal("no diagnostic congestion reported")
	}
	if !strings.Contains(res.String(), "IMPOSSIBLE") {
		t.Fatalf("render: %q", res.String())
	}
	// Deploying the best congested plan would at least halve some
	// tenant's link bandwidth.
	if res.MaxLinkSharing < 2 {
		t.Fatalf("link sharing = %d, want >= 2", res.MaxLinkSharing)
	}
}

func TestFig6bExperiment(t *testing.T) {
	res, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if res.ElectricalPossible {
		t.Fatal("Figure 6b electrical repair should be impossible")
	}
}

func TestFig7Experiment(t *testing.T) {
	res, err := Fig7(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuits != 4 || !res.Disjoint {
		t.Fatalf("fig7 = %+v", res)
	}
	if res.ReadyIn != 3.7*unit.Microsecond {
		t.Fatalf("ready in %v", res.ReadyIn)
	}
}

func TestBlastExperiment(t *testing.T) {
	res := Blast()
	if res.Stats.Ratio != 16 {
		t.Fatalf("ratio = %v", res.Stats.Ratio)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationAllocation(t *testing.T) {
	res, err := AblationAllocation(11, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.DecentralAttempts < res.CentralAttempts {
		t.Fatalf("decentralized attempts %d < centralized %d", res.DecentralAttempts, res.CentralAttempts)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationFiber(t *testing.T) {
	res, err := AblationFiber(13)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpareRowsPacked <= res.SpareSpread {
		t.Fatalf("packing spare rows %d <= spreading %d", res.SpareRowsPacked, res.SpareSpread)
	}
	if res.SurvivedPacked < res.Circuits || res.SurvivedSpread < res.Circuits {
		t.Fatalf("repairs lost circuits: %+v", res)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestAblationSimultaneous(t *testing.T) {
	res, err := AblationSimultaneous(3 << 12)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(res.RedirectedBeta-res.SimultaneousBeta)) / float64(res.SimultaneousBeta)
	if rel > 0.01 {
		t.Fatalf("betas differ by %v: %+v", rel, res)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}
