package experiments

import (
	"errors"
	"fmt"
	"strings"

	"lightpath/internal/alloc"
	"lightpath/internal/engine"
	"lightpath/internal/failure"
	"lightpath/internal/rng"
	"lightpath/internal/torus"
)

// RepairabilityResult generalizes Figures 6-7 statistically: across
// random multi-tenant racks with one random chip failure each, how
// often does a congestion-free electrical replacement exist, and how
// often does the optical repair succeed?
type RepairabilityResult struct {
	Trials int
	// ElectricalOK counts congestion-free electrical repairs;
	// OpticalOK counts successful circuit repairs.
	ElectricalOK, OpticalOK int
	// MeanCongestion is the average congestion units of the best
	// electrical plan when a clean one did not exist.
	MeanCongestion float64
}

// String renders the result.
func (r RepairabilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Repairability sweep: %d random rack/failure scenarios\n", r.Trials)
	fmt.Fprintf(&b, "  congestion-free electrical repair: %d/%d (%.0f%%)\n",
		r.ElectricalOK, r.Trials, 100*float64(r.ElectricalOK)/float64(maxOf(r.Trials, 1)))
	fmt.Fprintf(&b, "  optical circuit repair:            %d/%d (%.0f%%)\n",
		r.OpticalOK, r.Trials, 100*float64(r.OpticalOK)/float64(maxOf(r.Trials, 1)))
	fmt.Fprintf(&b, "  mean congestion of best electrical plan when congestion-free fails: %.1f units\n",
		r.MeanCongestion)
	return b.String()
}

// repairTrial is one scenario's outcome, computed in parallel and
// folded sequentially by the consumer below.
type repairTrial struct {
	// skip marks a scenario that does not count as a trial (nothing
	// placed, no spares, single-chip victim, or a ring-less repair).
	skip       bool
	elecOK     bool
	congestion int
	congested  bool
	optOK      bool
}

// Repairability runs the sweep: each trial packs a 4x4x4 rack with
// random tenants (leaving spares), fails a random ring-carrying chip,
// and attempts both repairs. The campaign keeps drawing scenarios
// until `trials` are valid (capped at 4x the budget); the scenario
// bodies run in parallel batches while the acceptance cutoff is
// applied in strict index order, so the accepted set — and therefore
// the result — is bit-identical to a sequential run.
func Repairability(seed uint64, trials int) (RepairabilityResult, error) {
	r := rng.New(seed)
	res := RepairabilityResult{}
	var congestionSum, congestionN int
	err := engine.Stream(trials*4, func(trial int) (repairTrial, error) {
		var out repairTrial
		stream := r.Split(fmt.Sprintf("trial-%d", trial))
		t := torus.New(torus.TPUv4RackShape)
		placer := alloc.NewPlacer(t)
		// Up to 3 tenants so spares remain for repair.
		placed := alloc.RandomTenants(placer, stream, 3)
		if len(placed) == 0 || placer.FreeCount() == 0 {
			out.skip = true
			return out, nil
		}
		a, err := placer.Allocation()
		if err != nil {
			return out, err
		}
		// Fail a random allocated chip belonging to a multi-chip slice.
		victim := placed[stream.Intn(len(placed))]
		if victim.Size() < 2 {
			out.skip = true
			return out, nil
		}
		chips := victim.Chips(t)
		failed := chips[stream.Intn(len(chips))]

		elecFabric, err := failure.NewFabric(t, []*torus.Allocation{a}, 2)
		if err != nil {
			return out, err
		}
		plan, err := elecFabric.ElectricalRepair(0, failed, 16)
		switch {
		case err == nil:
			out.elecOK = true
		case errors.Is(err, failure.ErrNoCongestionFreeRepair):
			if plan != nil {
				out.congestion = plan.Congestion
				out.congested = true
			}
		default:
			// "carries no rings": nothing to repair; not a trial.
			out.skip = true
			return out, nil
		}

		optFabric, err := failure.NewFabric(t, []*torus.Allocation{a}, 2)
		if err != nil {
			return out, err
		}
		if _, err := optFabric.OpticalRepair(0, failed, 2, 0, stream.Uint64()); err == nil {
			out.optOK = true
		}
		return out, nil
	}, func(_ int, tr repairTrial) (bool, error) {
		if tr.skip {
			return true, nil
		}
		if tr.elecOK {
			res.ElectricalOK++
		}
		if tr.congested {
			congestionSum += tr.congestion
			congestionN++
		}
		if tr.optOK {
			res.OpticalOK++
		}
		res.Trials++
		return res.Trials < trials, nil
	})
	if err != nil {
		return res, err
	}
	if res.Trials == 0 {
		return res, fmt.Errorf("experiments: repairability produced no valid trials")
	}
	if congestionN > 0 {
		res.MeanCongestion = float64(congestionSum) / float64(congestionN)
	}
	return res, nil
}
