package experiments

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"lightpath/internal/chaos"
	"lightpath/internal/ctrl"
	"lightpath/internal/ctrl/loadgen"
	"lightpath/internal/engine"
	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// This file is the controller load campaign: independent trials of
// the lightpath-controller runtime under a million-request open-loop
// load with mid-run chaos faults. Each trial drives one ctrl.Server
// through loadgen's discrete-event harness — Poisson arrivals from
// 128 agents, capped-backoff retries, bounded-queue shedding,
// per-request deadlines, per-chip circuit breakers and the
// width-halving degradation ladder — and reports setup-latency
// percentiles, shed/trip/degrade counts and goodput under chaos. The
// full campaign fields 1,024,000 fresh requests from 1,024 agents,
// and its CSV is byte-identical across sequential/parallel execution
// and across kill→resume from any event boundary.

// ctrlTrialStride separates per-trial seed streams (the splitmix64
// golden-gamma increment, like the other campaigns).
const ctrlTrialStride = 0x9e3779b97f4a7c15

// Controller campaign shape: controllerTrialAgents agents per trial
// each issuing controllerArrivals fresh requests.
const (
	controllerTrialAgents = 128
	controllerArrivals    = 1000
)

// controllerTrialConfig is the pinned per-trial load profile. The
// offered load sits at ~70% of the rack's endpoint capacity and ~65%
// of the controller's compute capacity, so bursts genuinely queue,
// shed and miss deadlines while the steady state mostly serves; the
// chaos rates land a handful of faults per trial, including rare
// trunk cuts and chip deaths whose fallout the breakers fence off.
func controllerTrialConfig(seed uint64) loadgen.Config {
	var rates chaos.Rates
	rates.MTBF[chaos.LaserDeath] = 500 * unit.Millisecond
	rates.MTBF[chaos.MZIStuck] = unit.Second
	rates.MTBF[chaos.WaveguideLoss] = 500 * unit.Millisecond
	rates.MTBF[chaos.FiberCut] = 2 * unit.Second
	rates.MTBF[chaos.ChipFailure] = 1500 * unit.Millisecond
	return loadgen.Config{
		Seed:             seed,
		Agents:           controllerTrialAgents,
		ArrivalsPerAgent: controllerArrivals,
		MeanInterarrival: 1300 * unit.Microsecond,
		MeanHold:         unit.Millisecond,
		Width:            2,
		Deadline:         350 * unit.Microsecond,
		Ctrl: ctrl.Config{
			QueueCap:         64,
			EstablishService: 8 * unit.Microsecond,
			Audit:            invariant.Sampled,
		},
		Backoff: ctrl.Backoff{
			Base:       100 * unit.Microsecond,
			Factor:     2,
			Cap:        5 * unit.Millisecond,
			Jitter:     0.5,
			MaxRetries: 5,
		},
		Rates: rates,
	}
}

// ControllerResult aggregates the controller load campaign.
type ControllerResult struct {
	// Seeds[i] drove trial i; Trials[i] is its full outcome.
	Seeds  []uint64
	Trials []*loadgen.Result
	// Requests and Attempts total the fresh and submitted request
	// counts across trials; Served, Shed, Lost and BreakerTrips total
	// the headline robustness counters.
	Requests, Attempts, Served, Shed, Lost, BreakerTrips int
	// WorstP99us is the slowest trial's p99 setup latency; MeanGoodputWS
	// averages delivered width-seconds per trial.
	WorstP99us    float64
	MeanGoodputWS float64
	// Faults and Violations total across trials (violations must be
	// zero on a correct controller).
	Faults, Violations int
}

// String renders the campaign summary.
func (r ControllerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Controller load: %d trials x %d agents x %d arrivals (%d requests, %d attempts)\n",
		len(r.Trials), controllerTrialAgents, controllerArrivals, r.Requests, r.Attempts)
	fmt.Fprintf(&b, "  served %d, shed %d, lost %d, breaker trips %d, faults %d, invariant violations %d\n",
		r.Served, r.Shed, r.Lost, r.BreakerTrips, r.Faults, r.Violations)
	fmt.Fprintf(&b, "  worst p99 setup %.1fus, mean goodput %.1f width-seconds\n",
		r.WorstP99us, r.MeanGoodputWS)
	for i, o := range r.Trials {
		fmt.Fprintf(&b, "  trial %d: served %d degraded %d shed %d deadline %d breaker %d nopath %d lost %d trips %d reroutes %d p50 %.1fus p99 %.1fus\n",
			i, o.Served, o.Degraded, o.Shed, o.DeadlineMiss, o.BreakerRejects,
			o.NoPath, o.Lost, o.BreakerTrips, o.Reroutes, o.P50us, o.P99us)
	}
	return b.String()
}

// CSV implements Tabular: one row per trial with the full counter set.
func (r ControllerResult) CSV() ([]string, [][]string) {
	var rows [][]string
	for i, o := range r.Trials {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", o.Requests),
			fmt.Sprintf("%d", o.Attempts),
			fmt.Sprintf("%d", o.Served),
			fmt.Sprintf("%d", o.Degraded),
			fmt.Sprintf("%d", o.Shed),
			fmt.Sprintf("%d", o.DeadlineMiss),
			fmt.Sprintf("%d", o.BreakerRejects),
			fmt.Sprintf("%d", o.NoPath),
			fmt.Sprintf("%d", o.EndpointFailed),
			fmt.Sprintf("%d", o.Retries),
			fmt.Sprintf("%d", o.Lost),
			fmt.Sprintf("%d", o.Leaked),
			fmt.Sprintf("%d", o.BreakerTrips),
			fmt.Sprintf("%d", o.Faults),
			fmt.Sprintf("%d", o.Reroutes),
			fmt.Sprintf("%d", o.RerouteDegraded),
			fmt.Sprintf("%d", o.CircuitsLost),
			f64(o.GoodputWS),
			f64(o.P50us),
			f64(o.P99us),
			f64(o.RPS),
			f64(float64(o.Horizon)),
			fmt.Sprintf("%d", o.Events),
			fmt.Sprintf("%d", o.Violations),
			f64(cacheHitRatio(o.CacheHits, o.CacheMisses)),
		})
	}
	return []string{"trial", "requests", "attempts", "served", "degraded", "shed",
		"deadline_miss", "breaker_rejects", "no_path", "endpoint_failed", "retries",
		"lost", "leaked", "breaker_trips", "faults", "reroutes", "reroute_degraded",
		"circuits_lost", "goodput_ws", "p50_us", "p99_us", "rps", "horizon_s",
		"events", "violations", "cache_hit_ratio"}, rows
}

// cacheHitRatio folds the route-plan cache counters into a [0,1] hit
// ratio; a trial that never consulted the cache reports 0.
func cacheHitRatio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// ControllerOptions extends the load campaign with crash-tolerant
// checkpointing, driven by lightpath-sim's -checkpoint / -resume /
// -ckpt-interval / -kill-at flags and the controller smoke test.
type ControllerOptions struct {
	// Trials overrides the campaign's trial count (default 8 — the
	// full 1,024,000-request campaign).
	Trials int
	// CheckpointDir, when non-empty, holds one checkpoint file per
	// trial (ctrl-trial-<i>.ckpt plus its rotated .prev).
	CheckpointDir string
	// EveryEvents is the per-trial checkpoint cadence in event
	// boundaries (loadgen's default when zero).
	EveryEvents uint64
	// KillAfterEvents, when positive, halts every trial at that event
	// boundary after writing a final checkpoint; the campaign then
	// returns an error wrapping loadgen.ErrStopped.
	KillAfterEvents uint64
	// Resume continues each trial from its checkpoint file instead of
	// starting fresh. The resumed campaign is byte-identical to an
	// uninterrupted one.
	Resume bool
}

// Controller runs the full load campaign: 8 independent trials (1,024
// agents, 1,024,000 fresh requests in total) fanned across CPUs by
// the experiment engine, byte-identical whether the trials ran
// sequentially or in parallel.
func Controller(seed uint64) (ControllerResult, error) {
	return ControllerWithOptions(seed, ControllerOptions{})
}

// ControllerWithOptions is Controller with trial-count and
// checkpoint/resume control.
func ControllerWithOptions(seed uint64, opts ControllerOptions) (ControllerResult, error) {
	trials := opts.Trials
	if trials == 0 {
		trials = 8
	}
	if trials < 1 {
		return ControllerResult{}, fmt.Errorf("experiments: controller trials %d < 1", trials)
	}
	outcomes, err := engine.Map(trials, func(i int) (*loadgen.Result, error) {
		cfg := controllerTrialConfig(seed + uint64(i)*ctrlTrialStride)
		copts := loadgen.CheckpointOptions{
			EveryEvents:     opts.EveryEvents,
			StopAfterEvents: opts.KillAfterEvents,
		}
		if opts.CheckpointDir != "" {
			copts.Path = filepath.Join(opts.CheckpointDir, fmt.Sprintf("ctrl-trial-%d.ckpt", i))
		}
		var out *loadgen.Result
		var err error
		if opts.Resume {
			out, err = loadgen.Resume(cfg, copts)
		} else {
			out, err = loadgen.RunCheckpointed(cfg, copts)
		}
		if err != nil {
			// An injected stop is the expected per-trial outcome in
			// kill mode, not a campaign failure: every trial must
			// still run and leave its checkpoint behind.
			if opts.KillAfterEvents > 0 && errors.Is(err, loadgen.ErrStopped) {
				return nil, nil
			}
			return nil, fmt.Errorf("experiments: controller trial %d: %w", i, err)
		}
		return out, nil
	})
	if err != nil {
		return ControllerResult{}, err
	}
	if opts.KillAfterEvents > 0 {
		return ControllerResult{}, fmt.Errorf("experiments: controller trials halted at event %d: %w",
			opts.KillAfterEvents, loadgen.ErrStopped)
	}
	var res ControllerResult
	for i, o := range outcomes {
		res.Seeds = append(res.Seeds, seed+uint64(i)*ctrlTrialStride)
		res.Trials = append(res.Trials, o)
		res.Requests += o.Requests
		res.Attempts += o.Attempts
		res.Served += o.Served
		res.Shed += o.Shed
		res.Lost += o.Lost
		res.BreakerTrips += o.BreakerTrips
		res.Faults += o.Faults
		res.Violations += o.Violations
		res.MeanGoodputWS += o.GoodputWS
		if o.P99us > res.WorstP99us {
			res.WorstP99us = o.P99us
		}
	}
	res.MeanGoodputWS /= float64(trials)
	return res, nil
}
