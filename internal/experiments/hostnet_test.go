package experiments

import (
	"testing"

	"lightpath/internal/phy"
	"lightpath/internal/unit"
)

func TestHostnetExperiment(t *testing.T) {
	res, err := Hostnet(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.CrossoverSize <= 0 {
		t.Fatalf("crossover = %v", res.CrossoverSize)
	}
	// Bulk traffic must favor circuits.
	for _, row := range res.Rows {
		if row.Workload == "bulk" && row.CircuitMean >= row.PacketMean {
			t.Fatalf("bulk: circuit mean %v >= packet %v", row.CircuitMean, row.PacketMean)
		}
	}
	if len(res.SizePoints) == 0 {
		t.Fatal("no size sweep points")
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestTenantSweepExperiment(t *testing.T) {
	res, err := TenantSweep(6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants == 0 {
		t.Fatal("no tenants packed")
	}
	// Random multi-tenant packing always strands bandwidth: the mean
	// electrical utilization sits strictly below full.
	if res.ElecMean >= 1 || res.ElecMean <= 0 {
		t.Fatalf("mean electrical utilization = %v", res.ElecMean)
	}
	if res.ElecWorst > res.ElecP10 || res.ElecP10 > res.ElecMean {
		t.Fatalf("percentiles disordered: %+v", res)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestTenantSweepDeterministic(t *testing.T) {
	a, err := TenantSweep(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TenantSweep(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWaterfallExperiment(t *testing.T) {
	res := Waterfall()
	if len(res.Points) != 13 {
		t.Fatalf("points = %d, want 13 (+-6 dB at 1 dB steps)", len(res.Points))
	}
	// Monotone non-increasing BER with power.
	prev := 1.0
	for _, p := range res.Points {
		if p.BER > prev+1e-18 {
			t.Fatalf("BER not monotone at %v", p.Rx)
		}
		prev = p.BER
	}
	// At sensitivity: ~1e-12.
	mid := res.Points[6]
	if mid.Rx != phy.DefaultBudget().ReceiverSensitivity {
		t.Fatalf("midpoint rx = %v", mid.Rx)
	}
	if mid.BER > 1e-11 || mid.BER < 1e-13 {
		t.Fatalf("BER at sensitivity = %v", mid.BER)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestRepairabilityExperiment(t *testing.T) {
	res, err := Repairability(21, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials < 30 {
		t.Fatalf("trials = %d, want >= 30", res.Trials)
	}
	// The §4.2 claim at population scale: optics repairs essentially
	// everything; congestion-free electrical repair is the exception.
	if res.OpticalOK < res.Trials {
		t.Fatalf("optical repaired %d/%d; expected all", res.OpticalOK, res.Trials)
	}
	if res.ElectricalOK >= res.Trials {
		t.Fatal("electrical repair never failed; scenario generator too easy")
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestRepairabilityDeterministic(t *testing.T) {
	a, err := Repairability(33, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repairability(33, 15)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSchedulerExperiment(t *testing.T) {
	res, err := Scheduler(17, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 workloads x 3 sizes)", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Nothing beats the clairvoyant optimum.
		for _, total := range []float64{
			float64(row.Eager), float64(row.Static), float64(row.Hysteresis),
		} {
			if total < float64(row.Optimal)-1e-12 {
				t.Fatalf("%s/%v: policy total %v beat optimal %v", row.Workload, row.Bytes, total, row.Optimal)
			}
		}
		// Hysteresis never loses to both extremes at once.
		worst := row.Eager
		if row.Static > worst {
			worst = row.Static
		}
		if row.Hysteresis > worst {
			t.Fatalf("%s/%v: hysteresis %v worse than both extremes", row.Workload, row.Bytes, row.Hysteresis)
		}
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestProtocolsExperiment(t *testing.T) {
	res := Protocols()
	if res.Crossover <= 0 {
		t.Fatalf("crossover = %v", res.Crossover)
	}
	sawEager, sawRendezvous := false, false
	for _, row := range res.Rows {
		switch row.Best {
		case "eager":
			sawEager = true
		case "rendezvous":
			sawRendezvous = true
		}
		if row.Size > res.EagerLimit && row.Best != "rendezvous" {
			t.Fatalf("size %v above eager limit chose %s", row.Size, row.Best)
		}
	}
	if !sawEager || !sawRendezvous {
		t.Fatalf("ladder did not cross: eager=%v rendezvous=%v", sawEager, sawRendezvous)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestMoESweepExperiment(t *testing.T) {
	res, err := MoE(31)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Overhead falls as payloads grow (§5's trade-off curve).
	if res.Rows[0].Overhead <= res.Rows[2].Overhead {
		t.Fatalf("overhead not decreasing: %v vs %v", res.Rows[0].Overhead, res.Rows[2].Overhead)
	}
	if res.Rows[2].Overhead > 0.05 {
		t.Fatalf("4MB overhead = %v, want < 5%%", res.Rows[2].Overhead)
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}

func TestScaleExperiment(t *testing.T) {
	res, err := Scale(64*unit.MB, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Chips quadruple across the sweep; per-chip data shrinks, so the
	// AllReduce time stays the same order while capacity scales.
	if res.Rows[0].Chips != 64 || res.Rows[2].Chips != 256 {
		t.Fatalf("chip counts: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		// Full-torus slices: neither interconnect strands bandwidth;
		// speedup ~1 (optics pays only the reconfigurations).
		if row.Speedup < 0.9 || row.Speedup > 1.1 {
			t.Fatalf("%s speedup = %v, want ~1", row.Shape, row.Speedup)
		}
		if row.ElecTime <= 0 {
			t.Fatalf("%s: no time", row.Shape)
		}
	}
	if len(res.String()) == 0 {
		t.Fatal("empty render")
	}
}
