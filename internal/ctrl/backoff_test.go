package ctrl

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"lightpath/internal/rng"
	"lightpath/internal/unit"
)

// backoffSchedule renders one seeded retry schedule with full float
// precision, so comparing strings is comparing bits.
func backoffSchedule(seed uint64, b Backoff) string {
	r := rng.New(seed)
	var s strings.Builder
	for attempt := 0; attempt <= b.MaxRetries; attempt++ {
		fmt.Fprintf(&s, "%d %x\n", attempt, math.Float64bits(float64(b.Delay(r, attempt))))
	}
	return s.String()
}

// TestBackoffDeterministic regenerates 200 seeded retry schedules and
// demands they are byte-identical across runs: a retrying client is as
// reproducible as a non-retrying one.
func TestBackoffDeterministic(t *testing.T) {
	b := DefaultBackoff()
	for trial := 0; trial < 200; trial++ {
		seed := uint64(trial) * 7919
		if x, y := backoffSchedule(seed, b), backoffSchedule(seed, b); x != y {
			t.Fatalf("seed %d: retry schedules diverged:\n--- first ---\n%s--- second ---\n%s", seed, x, y)
		}
	}
}

// TestBackoffBounds checks every jittered delay stays inside its
// documented envelope and the nominal delay caps.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 10 * unit.Microsecond, Factor: 3, Cap: 200 * unit.Microsecond, Jitter: 0.5, MaxRetries: 8}
	r := rng.New(42)
	for attempt := 0; attempt <= b.MaxRetries; attempt++ {
		nominal := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
		if nominal > float64(b.Cap) {
			nominal = float64(b.Cap)
		}
		for i := 0; i < 200; i++ {
			d := float64(b.Delay(r, attempt))
			lo, hi := nominal*(1-b.Jitter/2), nominal*(1+b.Jitter/2)
			if d < lo || d >= hi {
				t.Fatalf("attempt %d: delay %g outside [%g, %g)", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffNoJitter checks the degenerate schedules: zero jitter is
// exactly the nominal ladder, and the rng is not consulted at all.
func TestBackoffNoJitter(t *testing.T) {
	b := Backoff{Base: unit.Microsecond, Factor: 2, Cap: 8 * unit.Microsecond, MaxRetries: 5}
	r := rng.New(1)
	before := r.State()
	want := []unit.Seconds{
		unit.Microsecond, 2 * unit.Microsecond, 4 * unit.Microsecond,
		8 * unit.Microsecond, 8 * unit.Microsecond, 8 * unit.Microsecond,
	}
	for attempt, w := range want {
		if d := b.Delay(r, attempt); d != w {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, d, w)
		}
	}
	if r.State() != before {
		t.Fatal("zero-jitter backoff consumed rng state")
	}
}
