package ctrl

import (
	"errors"
	"fmt"

	"lightpath/internal/chaos"
	"lightpath/internal/invariant"
	"lightpath/internal/rng"
	"lightpath/internal/route"
	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
	"lightpath/internal/wafer"
)

// Config parameterizes a controller. The zero value of every field
// gets a sensible default from withDefaults, so Config{Seed: s} is a
// runnable controller.
type Config struct {
	// Seed drives the allocator's stochastic stitch-loss stream. Two
	// controllers with the same Config are bit-for-bit identical.
	Seed uint64
	// Wafers is the rack's wafer count (default 2); WaferConfig its
	// per-wafer geometry (default wafer.DefaultConfig).
	Wafers      int
	WaferConfig wafer.Config
	// QueueCap bounds the admitted-but-unfinished request backlog;
	// arrivals beyond it are shed with ErrOverloaded (default 512).
	QueueCap int
	// EstablishService, ReleaseService and RerouteService are the
	// modeled controller service times per operation class; they are
	// what advances the virtual clock.
	EstablishService, ReleaseService, RerouteService unit.Seconds
	// Breaker tunes the per-region circuit breakers.
	Breaker BreakerConfig
	// Audit selects the invariant auditor's mode (default Sampled).
	Audit invariant.Mode
}

// DefaultConfig returns the standard controller tuning: a two-wafer
// rack, a 512-request queue, microsecond-scale service times and
// sampled invariant auditing.
func DefaultConfig() Config {
	return Config{
		Wafers:           2,
		WaferConfig:      wafer.DefaultConfig(),
		QueueCap:         512,
		EstablishService: 2 * unit.Microsecond,
		ReleaseService:   500 * unit.Nanosecond,
		RerouteService:   3 * unit.Microsecond,
		Breaker:          DefaultBreakerConfig(),
		Audit:            invariant.Sampled,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Wafers <= 0 {
		c.Wafers = d.Wafers
	}
	if c.WaferConfig == (wafer.Config{}) {
		c.WaferConfig = d.WaferConfig
	}
	if c.QueueCap <= 0 {
		c.QueueCap = d.QueueCap
	}
	if c.EstablishService <= 0 {
		c.EstablishService = d.EstablishService
	}
	if c.ReleaseService <= 0 {
		c.ReleaseService = d.ReleaseService
	}
	if c.RerouteService <= 0 {
		c.RerouteService = d.RerouteService
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.Audit == 0 {
		c.Audit = d.Audit
	}
	return c
}

// Stats are the controller's lifetime counters. Every terminal outcome
// of a request increments exactly one of Served/Shed/DeadlineMiss/
// BreakerRejects/NoPath/EndpointFailed/UnknownCircuit/BadRequest.
type Stats struct {
	// Arrivals counts every submitted request, health included.
	Arrivals int
	// Served counts successful establish/release/reroute/health
	// responses; Degraded counts the subset of establishes and
	// reroutes granted below their requested width.
	Served, Degraded int
	// Shed, DeadlineMiss and BreakerRejects count the admission-layer
	// rejections (ErrOverloaded, ErrDeadlineExceeded, ErrBreakerOpen).
	Shed, DeadlineMiss, BreakerRejects int
	// NoPath and EndpointFailed count allocator-level setup failures.
	NoPath, EndpointFailed int
	// UnknownCircuit and BadRequest count semantically invalid
	// requests.
	UnknownCircuit, BadRequest int
	// FaultsApplied, Reroutes, RerouteFailed and CircuitsLost track
	// the fault path: faults applied to the fabric, broken circuits
	// transparently rerouted (RerouteDegraded of them at reduced
	// width), and circuits lost outright.
	FaultsApplied, Reroutes, RerouteDegraded, RerouteFailed, CircuitsLost int
	// PlanCacheHits and PlanCacheMisses mirror the allocator's
	// route-plan cache counters. They are read live from the allocator
	// by Stats (the allocator also checkpoints them), not accumulated
	// here.
	PlanCacheHits, PlanCacheMisses uint64
}

// Server is the controller core: a deterministic, virtual-time request
// processor owning one allocator/auditor pair. It is not safe for
// concurrent use — the transport layer (Handler) serializes access,
// exactly as the allocator below it requires.
type Server struct {
	cfg      Config
	alloc    *route.Allocator
	aud      *invariant.Auditor
	breakers []*Breaker

	now       unit.Seconds   // virtual clock: latest observed event time
	busyUntil unit.Seconds   // when all admitted work completes
	pending   []unit.Seconds // completion times of admitted, unfinished work

	// regionScratch backs health responses' Regions slice; see Submit.
	regionScratch []RegionHealth
	// ckptEnc is SaveCheckpoint's reusable payload encoder.
	ckptEnc snapshot.Encoder
	// queueFullDetail is the precomputed shed message — shedding happens
	// at full arrival rate during overload, too hot for Sprintf.
	queueFullDetail string

	stats Stats
}

// NewServer builds a controller over a fresh rack.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	rack, err := wafer.NewRack(cfg.WaferConfig, cfg.Wafers)
	if err != nil {
		return nil, fmt.Errorf("ctrl: %w", err)
	}
	alloc := route.NewAllocator(rack, rng.New(cfg.Seed).Split("ctrl/loss"))
	// One breaker per chip: failures concentrate at the tile whose
	// lasers or ports are exhausted (or whose chip died), so tripping
	// at chip granularity sheds exactly the unroutable load without
	// collateral rejection of the rest of the fabric.
	s := &Server{
		cfg:      cfg,
		alloc:    alloc,
		aud:      invariant.Attach(alloc, cfg.Audit),
		breakers: make([]*Breaker, rack.NumChips()),
	}
	for i := range s.breakers {
		s.breakers[i] = NewBreaker(cfg.Breaker)
	}
	s.queueFullDetail = fmt.Sprintf("queue full (cap %d)", cfg.QueueCap)
	return s, nil
}

// Config returns the server's resolved configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns a copy of the lifetime counters.
func (s *Server) Stats() Stats {
	st := s.stats
	st.PlanCacheHits, st.PlanCacheMisses = s.alloc.PlanCacheStats()
	return st
}

// Auditor returns the invariant auditor watching the allocator.
func (s *Server) Auditor() *invariant.Auditor { return s.aud }

// Allocator returns the underlying allocator (read-only use: tests and
// health reporting).
func (s *Server) Allocator() *route.Allocator { return s.alloc }

// Clock returns the virtual clock's current position.
func (s *Server) Clock() unit.Seconds { return s.now }

// BreakerTrips totals the lifetime trip count across regions.
func (s *Server) BreakerTrips() int {
	total := 0
	for _, b := range s.breakers {
		total += b.Trips()
	}
	return total
}

// QueueDepth returns the admitted-but-unfinished backlog as of the
// virtual clock.
func (s *Server) QueueDepth() int { return len(s.pending) }

// AdvanceTo moves the virtual clock forward to t (never backward) and
// retires completed work from the backlog.
func (s *Server) AdvanceTo(t unit.Seconds) {
	if t > s.now {
		s.now = t
	}
	i := 0
	for i < len(s.pending) && s.pending[i] <= s.now {
		i++
	}
	if i > 0 {
		s.pending = append(s.pending[:0], s.pending[i:]...)
	}
}

// Submit processes one request arriving at virtual time `arrival`
// (clamped to the clock — arrivals are processed in time order) and
// returns the response together with the request's completion time.
// Rejected requests complete at their arrival instant.
//
// The whole body runs at request rate, so it is hot-marked: every
// buffer it touches must be server-owned scratch, and every rejection
// Detail a precomputed string. Only the cold validate/setup-fallback
// paths (out of the marked body) may format.
//
//lightpath:hotloop
func (s *Server) Submit(req Request, arrival unit.Seconds) (Response, unit.Seconds) {
	s.AdvanceTo(arrival)
	arrival = s.now
	s.stats.Arrivals++
	resp := Response{ID: req.ID}

	// Health bypasses admission entirely: an overloaded controller
	// must still answer "how overloaded are you?".
	if req.Op == OpHealth {
		s.stats.Served++
		resp.Status = StatusOK
		resp.Queue = len(s.pending)
		resp.Circuits = s.alloc.NumCircuits()
		// The response aliases server-owned scratch, valid until the next
		// Submit — the serialize-before-next-request contract every
		// transport (Handler encodes immediately) already satisfies.
		resp.Regions = s.regions(len(s.breakers))
		for i, b := range s.breakers {
			resp.Regions[i] = RegionHealth{State: b.State(), Trips: b.Trips()}
		}
		return resp, arrival
	}

	if status, detail := s.validate(req); status != StatusOK {
		if status == StatusUnknownCircuit {
			s.stats.UnknownCircuit++
		} else {
			s.stats.BadRequest++
		}
		resp.Status = status
		resp.Detail = detail
		return resp, arrival
	}

	// Admission control: the bounded queue sheds before any work is
	// committed. Backpressure, not buffering, is the contract. Release
	// is exempt — shedding the work that frees capacity would turn
	// transient overload into a capacity leak.
	if req.Op != OpRelease && len(s.pending) >= s.cfg.QueueCap {
		s.stats.Shed++
		resp.Status = StatusOverloaded
		resp.Detail = s.queueFullDetail
		return resp, arrival
	}

	start := arrival
	if s.busyUntil > start {
		start = s.busyUntil
	}
	service := s.serviceTime(req.Op)
	finish := start + service

	// Deadline: known before any allocator work, because the queue
	// model tells us exactly when service would complete.
	if req.Deadline > 0 && finish-arrival > req.Deadline {
		s.stats.DeadlineMiss++
		resp.Status = StatusDeadline
		// Static: under backlog every deadline-bearing arrival misses, and
		// the caller's own request carries the budget it quoted.
		resp.Detail = "queue wait plus service time exceeds deadline"
		return resp, arrival
	}

	// Breaker: establish and reroute do pathfinding work the breaker
	// protects; release always passes (freeing resources must never
	// fail fast).
	var brk *Breaker
	if req.Op == OpEstablish || req.Op == OpReroute {
		brk = s.breakerFor(req)
		if err := brk.Allow(start); err != nil {
			s.stats.BreakerRejects++
			resp.Status = StatusBreakerOpen
			// The status already names the sentinel; the detail carries
			// only the phase, so the client-side rewrap (Response.Err)
			// does not repeat "circuit breaker open" twice.
			if err == errBreakerCooling { //nolint:errorlint // comparing preallocated statics
				resp.Detail = "cooling down"
			} else {
				resp.Detail = "half-open probe quota reached"
			}
			return resp, arrival
		}
	}

	// The request is committed: it consumes controller time whether
	// the allocator succeeds or not (a failed path search is work).
	s.busyUntil = finish
	s.pending = append(s.pending, finish)

	switch req.Op {
	case OpEstablish:
		c, degraded, err := s.alloc.EstablishDegraded(
			route.Request{A: req.A, B: req.B, Width: req.Width}, start)
		if err != nil {
			brk.Failure(start)
			resp.Status = statusOf(err)
			resp.Detail = setupDetail(resp.Status, err)
			s.countSetupFailure(err)
			return resp, finish
		}
		brk.Success()
		s.stats.Served++
		if degraded {
			s.stats.Degraded++
		}
		resp.Status = StatusOK
		resp.Circuit = c.ID
		resp.Width = c.Width
		resp.Degraded = degraded
		return resp, finish

	case OpRelease:
		c, _ := s.alloc.CircuitByID(req.Circuit) // validated above
		s.alloc.Release(c)
		s.stats.Served++
		resp.Status = StatusOK
		resp.Circuit = req.Circuit
		return resp, finish

	default: // OpReroute, validated above
		c, _ := s.alloc.CircuitByID(req.Circuit)
		want := c.Width
		s.alloc.Release(c)
		nc, degraded, err := s.alloc.EstablishDegraded(
			route.Request{A: c.A, B: c.B, Width: want}, start)
		if err != nil {
			brk.Failure(start)
			resp.Status = statusOf(err)
			resp.Detail = setupDetail(resp.Status, err)
			s.countSetupFailure(err)
			return resp, finish
		}
		brk.Success()
		s.stats.Served++
		if degraded {
			s.stats.Degraded++
		}
		resp.Status = StatusOK
		resp.Circuit = nc.ID
		resp.Width = nc.Width
		resp.Degraded = degraded
		return resp, finish
	}
}

// regions returns the server-owned health scratch resized to n,
// growing the backing array only when a larger fleet appears (in
// practice: once, on the first health probe).
func (s *Server) regions(n int) []RegionHealth {
	if cap(s.regionScratch) < n {
		s.regionScratch = make([]RegionHealth, n)
	}
	return s.regionScratch[:n]
}

// validate classifies semantically invalid requests before they cost
// queue capacity.
func (s *Server) validate(req Request) (Status, string) {
	switch req.Op {
	case OpEstablish:
		if req.Width <= 0 {
			return StatusBadRequest, fmt.Sprintf("non-positive width %d", req.Width)
		}
		if req.A == req.B {
			return StatusBadRequest, fmt.Sprintf("endpoints are the same chip %d", req.A)
		}
		n := s.alloc.Rack().NumChips()
		if req.A < 0 || req.A >= n || req.B < 0 || req.B >= n {
			return StatusBadRequest, fmt.Sprintf("chip pair (%d,%d) out of range [0,%d)", req.A, req.B, n)
		}
	case OpRelease, OpReroute:
		if _, ok := s.alloc.CircuitByID(req.Circuit); !ok {
			return StatusUnknownCircuit, fmt.Sprintf("circuit %d", req.Circuit)
		}
	default:
		return StatusBadRequest, fmt.Sprintf("unknown op %d", int(req.Op))
	}
	return StatusOK, ""
}

// serviceTime returns the modeled controller service time per op.
func (s *Server) serviceTime(op Op) unit.Seconds {
	switch op {
	case OpRelease:
		return s.cfg.ReleaseService
	case OpReroute:
		return s.cfg.RerouteService
	default:
		return s.cfg.EstablishService
	}
}

// breakerFor maps a request to its fabric region's breaker: the chip
// (tile) anchoring the request's A endpoint (for reroute, the held
// circuit's).
func (s *Server) breakerFor(req Request) *Breaker {
	chip := req.A
	if req.Op == OpReroute {
		if c, ok := s.alloc.CircuitByID(req.Circuit); ok {
			chip = c.A
		}
	}
	return s.breakers[chip]
}

// countSetupFailure buckets an allocator setup error.
func (s *Server) countSetupFailure(err error) {
	if errors.Is(err, route.ErrEndpointFailed) {
		s.stats.EndpointFailed++
	} else {
		s.stats.NoPath++
	}
}

// setupDetail picks the response detail for an allocator setup
// failure. The two steady-state classes get static strings — on a
// saturated fabric a failed establish is the common case, and the
// allocator's no-path error formats its message lazily precisely so
// nobody pays for text that only names the class. Unclassified errors
// are rare and keep their full text.
func setupDetail(st Status, err error) string {
	switch st {
	case StatusNoPath:
		return "no feasible circuit path"
	case StatusEndpointFailed:
		return "circuit endpoint chip has failed"
	default:
		return err.Error()
	}
}

// statusOf maps an allocator error to its wire status.
func statusOf(err error) Status {
	switch {
	case errors.Is(err, route.ErrEndpointFailed):
		return StatusEndpointFailed
	case errors.Is(err, route.ErrNoPath):
		return StatusNoPath
	default:
		return StatusBadRequest
	}
}

// CircuitMove records one broken circuit's fate after a fault: NewID
// is -1 when the circuit was lost, and NewWidth < OldWidth when the
// reroute had to degrade.
type CircuitMove struct {
	OldID, NewID       int
	OldWidth, NewWidth int
}

// FaultReport summarizes one fault's application.
type FaultReport struct {
	// Fault echoes the applied fault.
	Fault chaos.Fault
	// Moves records every circuit the fault broke and what became of
	// it (transparent reroute, degraded reroute, or loss).
	Moves []CircuitMove
}

// ApplyFault applies one chaos fault to the fabric at virtual time
// `at` and walks the degradation ladder for every circuit it broke:
// reroute at full width, then width-halving, then loss. The wire
// interface stays stable throughout — clients keep their circuit IDs
// via the returned moves.
func (s *Server) ApplyFault(f chaos.Fault, at unit.Seconds) (FaultReport, error) {
	s.AdvanceTo(at)
	rep := FaultReport{Fault: f}
	broken, err := s.alloc.ApplyFault(f)
	if err != nil {
		return rep, fmt.Errorf("ctrl: apply fault: %w", err)
	}
	s.stats.FaultsApplied++
	for _, c := range broken {
		move := CircuitMove{OldID: c.ID, NewID: -1, OldWidth: c.Width}
		nc, degraded, rerr := s.alloc.Reestablish(c, s.now)
		if rerr != nil {
			s.stats.RerouteFailed++
			s.stats.CircuitsLost++
		} else {
			s.stats.Reroutes++
			if degraded {
				s.stats.RerouteDegraded++
			}
			move.NewID = nc.ID
			move.NewWidth = nc.Width
		}
		rep.Moves = append(rep.Moves, move)
	}
	return rep, nil
}
