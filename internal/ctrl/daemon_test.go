package ctrl

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"lightpath/internal/invariant"
	"lightpath/internal/unit"
)

// newTestHandler boots a handler over a loopback listener and returns
// it together with a dialer for fresh client connections. The listener
// dies at test cleanup and Serve's return is checked for a clean exit.
func newTestHandler(t *testing.T, cfg Config, tick unit.Seconds) (*Handler, func() *Client) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	h := NewHandler(s, tick)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve(l) }()
	var conns []net.Conn
	var mu sync.Mutex
	t.Cleanup(func() {
		// Kill order matters: Serve drains per-connection goroutines
		// before returning, so clients hang up first, then the listener.
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		l.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v on clean shutdown", err)
		}
	})
	dial := func() *Client {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		conns = append(conns, conn)
		mu.Unlock()
		return NewClient(conn)
	}
	return h, dial
}

// TestDaemonEndToEnd drives the full RPC surface through a real TCP
// connection: establish, health, reroute, release.
func TestDaemonEndToEnd(t *testing.T) {
	_, dial := newTestHandler(t, Config{Seed: 21}, unit.Microsecond)
	c := dial()

	est, err := c.Establish(0, 9, 2, unit.Millisecond)
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	if est.Width != 2 || est.Degraded {
		t.Fatalf("establish granted %+v, want full width 2", est)
	}
	hr, err := c.Health()
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if hr.Circuits != 1 {
		t.Fatalf("health reports %d circuits, want 1", hr.Circuits)
	}
	if len(hr.Regions) == 0 {
		t.Fatal("health report carries no breaker regions")
	}
	// Reroute re-establishes under a fresh ID; the old one dies with
	// the old path.
	rr, err := c.Reroute(est.Circuit, unit.Millisecond)
	if err != nil {
		t.Fatalf("reroute of a healthy circuit: %v", err)
	}
	if err := c.Release(rr.Circuit); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := c.Release(rr.Circuit); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("double release: %v, want ErrUnknownCircuit", err)
	}
}

// TestDaemonConcurrentClients hammers one handler from several
// connections at once. Under -race this proves the mutex actually
// covers every server touch; functionally it checks conservation:
// every request is answered and the final health tally balances.
func TestDaemonConcurrentClients(t *testing.T) {
	h, dial := newTestHandler(t, Config{Seed: 22, QueueCap: 4096}, 500*unit.Nanosecond)

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial()
			for j := 0; j < perClient; j++ {
				resp, err := c.Establish(id%8, 20+j%9, 1, 0)
				switch {
				case err == nil:
					if j%2 == 0 {
						if err := c.Release(resp.Circuit); err != nil {
							t.Errorf("client %d: release: %v", id, err)
							return
						}
					}
				case errors.Is(err, ErrOverloaded), errors.Is(err, ErrBreakerOpen),
					resp.Status == StatusNoPath:
					// Expected under contention: shed, exhausted tiles, or
					// the breaker tripped by the resulting no-path streak.
				default:
					t.Errorf("client %d: unclassified establish failure: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	stats := h.Stats()
	// Each client issues perClient establishes plus a release for every
	// even j that succeeded; successes vary with interleaving, so pin
	// the lower bound and the conservation invariant.
	if stats.Arrivals < clients*perClient {
		t.Fatalf("stats saw %d arrivals, want at least %d", stats.Arrivals, clients*perClient)
	}
	answered := stats.Served + stats.Shed + stats.DeadlineMiss + stats.BreakerRejects +
		stats.NoPath + stats.EndpointFailed + stats.BadRequest + stats.UnknownCircuit
	if answered != stats.Arrivals {
		t.Fatalf("answered %d of %d arrivals: some vanished", answered, stats.Arrivals)
	}
}

// TestDaemonBadFrameCostsOneConn sends garbage down one connection and
// checks the blast radius: that connection dies, the daemon keeps
// serving everyone else.
func TestDaemonBadFrameCostsOneConn(t *testing.T) {
	_, dial := newTestHandler(t, Config{Seed: 23}, unit.Microsecond)

	good := dial()
	if _, err := good.Establish(1, 30, 1, 0); err != nil {
		t.Fatalf("pre-hostility establish: %v", err)
	}

	// Dial through the same helper so cleanup closes the raw conn if
	// the server somehow doesn't.
	hc := dial()
	rawConn := hc.conn.(net.Conn)
	if _, err := rawConn.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00}); err != nil {
		t.Fatal(err)
	}
	// The daemon must close this connection: read until it does.
	buf := make([]byte, 64)
	for {
		if _, err := rawConn.Read(buf); err != nil {
			break
		}
	}

	// Everyone else is unaffected.
	if _, err := good.Health(); err != nil {
		t.Fatalf("post-hostility health on the good conn: %v", err)
	}
	fresh := dial()
	if _, err := fresh.Establish(2, 31, 1, 0); err != nil {
		t.Fatalf("post-hostility establish on a fresh conn: %v", err)
	}
}

// TestHandlerTickAdvancesClock pins the logical-time contract: each
// submitted request lands tick seconds after the previous one, so the
// virtual clock is a pure function of the request count.
func TestHandlerTickAdvancesClock(t *testing.T) {
	s, err := NewServer(Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	tick := 3 * unit.Microsecond
	h := NewHandler(s, tick)
	for i := 0; i < 10; i++ {
		h.Submit(Request{Op: OpHealth})
	}
	// The 10th request arrived at 9*tick; the clock clamps to the last
	// arrival, never beyond it.
	if got, want := s.Clock(), 9*tick; got != want {
		t.Fatalf("clock %v after 10 ticks, want %v", got, want)
	}
}

// TestHandlerPeriodicCheckpoint arms SetCheckpoint and checks a
// snapshot exists after the configured number of requests and restores
// to the handler's exact state.
func TestHandlerPeriodicCheckpoint(t *testing.T) {
	cfg := Config{Seed: 25}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(invariant.ResetGlobal)
	h := NewHandler(s, unit.Microsecond)
	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	h.SetCheckpoint(path, 8)

	for i := 0; i < 8; i++ {
		h.Submit(Request{Op: OpEstablish, A: i % 4, B: 30 + i%4, Width: 1})
	}
	if err := h.CheckpointErr(); err != nil {
		t.Fatalf("periodic checkpoint failed: %v", err)
	}
	r, err := LoadCheckpoint(cfg, path)
	if err != nil {
		t.Fatalf("restore of the periodic checkpoint: %v", err)
	}
	if r.Stats() != s.Stats() {
		t.Fatalf("periodic checkpoint restored stale stats %+v, want %+v", r.Stats(), s.Stats())
	}

	// A failing path latches the error and disarms instead of breaking
	// service.
	h.SetCheckpoint(filepath.Join(t.TempDir(), "no-such-dir", "x", "y.ckpt"), 1)
	h.Submit(Request{Op: OpHealth})
	if h.CheckpointErr() == nil {
		t.Fatal("unwritable checkpoint path did not latch an error")
	}
	resp := h.Submit(Request{Op: OpHealth})
	if resp.Status != StatusOK {
		t.Fatalf("service degraded after checkpoint failure: %+v", resp)
	}
}
