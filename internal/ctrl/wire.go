package ctrl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lightpath/internal/snapshot"
	"lightpath/internal/unit"
)

// This file is the controller's wire protocol: length-prefixed binary
// frames whose payloads are built with the internal/snapshot primitive
// codec — the same fixed-order, no-reflection discipline the
// checkpoint files use. A frame is a 4-byte little-endian payload
// length followed by the payload; payloads start with a message kind
// and carry a fixed field order per kind. Every decode failure wraps
// ErrBadFrame: a hostile or truncated frame can close a connection,
// never panic it, never hang it, and never drive a giant allocation
// (the length prefix is bounded by MaxFrame before any buffer is
// sized).

// MaxFrame bounds a frame's payload size. Controller messages are tens
// of bytes; anything larger is a corrupt or hostile length prefix and
// is rejected before allocation.
const MaxFrame = 1 << 16

// frameHeaderSize is the length prefix.
const frameHeaderSize = 4

// Op is a request's operation.
type Op int

// Request operations.
const (
	// OpEstablish asks for a new circuit A<->B at Width.
	OpEstablish Op = iota
	// OpRelease tears down the circuit named by Circuit.
	OpRelease
	// OpReroute tears down and re-establishes the circuit named by
	// Circuit over surviving resources, degrading width if needed.
	OpReroute
	// OpHealth asks for the controller's health report.
	OpHealth

	numOps
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpEstablish:
		return "establish"
	case OpRelease:
		return "release"
	case OpReroute:
		return "reroute"
	case OpHealth:
		return "health"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Request is one client request. Which fields are meaningful depends
// on Op: establish uses A/B/Width, release and reroute use Circuit,
// health uses none. ID is an opaque client token echoed in the
// response; Deadline is the request's service budget in simulated
// seconds from arrival (zero means no deadline).
type Request struct {
	ID       uint64
	Op       Op
	A, B     int
	Width    int
	Circuit  int
	Deadline unit.Seconds
}

// Status classifies a response, mirroring the error taxonomy across
// the wire so errors.Is works on both sides of a connection.
type Status int

// Response statuses.
const (
	// StatusOK reports success.
	StatusOK Status = iota
	// StatusOverloaded maps ErrOverloaded.
	StatusOverloaded
	// StatusDeadline maps ErrDeadlineExceeded.
	StatusDeadline
	// StatusBreakerOpen maps ErrBreakerOpen.
	StatusBreakerOpen
	// StatusNoPath maps route.ErrNoPath.
	StatusNoPath
	// StatusEndpointFailed maps route.ErrEndpointFailed.
	StatusEndpointFailed
	// StatusUnknownCircuit maps ErrUnknownCircuit.
	StatusUnknownCircuit
	// StatusBadRequest reports a semantically invalid request (bad
	// width, out-of-range chip, unknown op).
	StatusBadRequest

	numStatuses
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusDeadline:
		return "deadline-exceeded"
	case StatusBreakerOpen:
		return "breaker-open"
	case StatusNoPath:
		return "no-path"
	case StatusEndpointFailed:
		return "endpoint-failed"
	case StatusUnknownCircuit:
		return "unknown-circuit"
	case StatusBadRequest:
		return "bad-request"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// RegionHealth is one fabric region's breaker state in a health
// response.
type RegionHealth struct {
	// State is the breaker's current position.
	State BreakerState
	// Trips counts the breaker's lifetime open transitions.
	Trips int
}

// Response is the server's reply to one Request. ID echoes the
// request's token. For successful establish/reroute, Circuit and
// Width carry the granted circuit and its (possibly degraded) width.
// Health responses populate Queue, Circuits and Regions.
type Response struct {
	ID       uint64
	Status   Status
	Circuit  int
	Width    int
	Degraded bool
	Detail   string
	Queue    int
	Circuits int
	Regions  []RegionHealth
}

// Err maps the response's status back to the package's error taxonomy:
// nil for StatusOK, and otherwise an error wrapping the corresponding
// sentinel with the response's detail text — so a client-side
// errors.Is sees exactly the sentinel the server-side failure carried.
func (r Response) Err() error {
	switch r.Status {
	case StatusOK:
		return nil
	case StatusOverloaded:
		return fmt.Errorf("%w: %s", ErrOverloaded, r.Detail)
	case StatusDeadline:
		return fmt.Errorf("%w: %s", ErrDeadlineExceeded, r.Detail)
	case StatusBreakerOpen:
		return fmt.Errorf("%w: %s", ErrBreakerOpen, r.Detail)
	case StatusUnknownCircuit:
		return fmt.Errorf("%w: %s", ErrUnknownCircuit, r.Detail)
	default:
		return fmt.Errorf("ctrl: %s: %s", r.Status, r.Detail)
	}
}

// EncodeRequest serializes a request payload.
func EncodeRequest(req Request) []byte {
	var e snapshot.Encoder
	EncodeRequestTo(&e, req)
	return e.Bytes()
}

// EncodeRequestTo appends the request payload to e. Long-lived callers
// (the client's call loop) Reset and reuse one encoder so steady-state
// encoding allocates nothing.
func EncodeRequestTo(e *snapshot.Encoder, req Request) {
	e.U64(req.ID)
	e.Int(int(req.Op))
	e.Int(req.A)
	e.Int(req.B)
	e.Int(req.Width)
	e.Int(req.Circuit)
	snapshot.Unit(e, req.Deadline)
}

// DecodeRequest parses a request payload. Malformed payloads return an
// error wrapping ErrBadFrame.
func DecodeRequest(payload []byte) (Request, error) {
	d := snapshot.NewDecoder(payload)
	req := Request{
		ID:      d.U64(),
		Op:      Op(d.Int()),
		A:       d.Int(),
		B:       d.Int(),
		Width:   d.Int(),
		Circuit: d.Int(),
	}
	req.Deadline = snapshot.DecodeUnit[unit.Seconds](d)
	if err := d.Finish(); err != nil {
		return Request{}, fmt.Errorf("%w: request: %w", ErrBadFrame, err)
	}
	if req.Op < 0 || req.Op >= numOps {
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadFrame, int(req.Op))
	}
	return req, nil
}

// EncodeResponse serializes a response payload.
func EncodeResponse(resp Response) []byte {
	var e snapshot.Encoder
	EncodeResponseTo(&e, resp)
	return e.Bytes()
}

// EncodeResponseTo appends the response payload to e. Long-lived
// callers (the handler's serve loop) Reset and reuse one encoder so
// steady-state encoding allocates nothing.
func EncodeResponseTo(e *snapshot.Encoder, resp Response) {
	e.U64(resp.ID)
	e.Int(int(resp.Status))
	e.Int(resp.Circuit)
	e.Int(resp.Width)
	e.Bool(resp.Degraded)
	e.String(resp.Detail)
	e.Int(resp.Queue)
	e.Int(resp.Circuits)
	e.Len(len(resp.Regions))
	for _, rg := range resp.Regions {
		e.Int(int(rg.State))
		e.Int(rg.Trips)
	}
}

// DecodeResponse parses a response payload. Malformed payloads return
// an error wrapping ErrBadFrame.
func DecodeResponse(payload []byte) (Response, error) {
	d := snapshot.NewDecoder(payload)
	resp := Response{
		ID:       d.U64(),
		Status:   Status(d.Int()),
		Circuit:  d.Int(),
		Width:    d.Int(),
		Degraded: d.Bool(),
		Detail:   d.String(),
		Queue:    d.Int(),
		Circuits: d.Int(),
	}
	n := d.Len()
	for i := 0; i < n; i++ {
		resp.Regions = append(resp.Regions, RegionHealth{
			State: BreakerState(d.Int()),
			Trips: d.Int(),
		})
	}
	if err := d.Finish(); err != nil {
		return Response{}, fmt.Errorf("%w: response: %w", ErrBadFrame, err)
	}
	if resp.Status < 0 || resp.Status >= numStatuses {
		return Response{}, fmt.Errorf("%w: unknown status %d", ErrBadFrame, int(resp.Status))
	}
	for _, rg := range resp.Regions {
		if rg.State < BreakerClosed || rg.State > BreakerHalfOpen {
			return Response{}, fmt.Errorf("%w: unknown breaker state %d", ErrBadFrame, int(rg.State))
		}
	}
	return resp, nil
}

// AppendFrame appends a length-prefixed frame carrying the payload.
// It panics if the payload exceeds MaxFrame — outbound frames are
// built by this package and can never legitimately be that large.
func AppendFrame(dst, payload []byte) []byte {
	if len(payload) > MaxFrame {
		panic(fmt.Sprintf("ctrl: outbound frame payload %d exceeds MaxFrame", len(payload)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("ctrl: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r and returns its
// payload in a fresh buffer. A clean end of stream (EOF before any
// header byte) returns io.EOF; a truncated header or payload, or a
// length prefix beyond MaxFrame, returns an error wrapping ErrBadFrame.
// The length is validated before the payload buffer is allocated, so a
// hostile prefix cannot drive a giant allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	payload, _, err := readFrameReuse(r, nil)
	return payload, err
}

// readFrameReuse reads one frame into buf, growing it as needed, and
// returns the payload (aliasing the buffer) plus the possibly-grown
// buffer for the next call. Serve loops thread the buffer through so a
// connection stops allocating once it has seen its largest frame. The
// MaxFrame check still precedes sizing, bounding growth at 64 KiB.
func readFrameReuse(r io.Reader, buf []byte) (payload, next []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, buf, io.EOF
		}
		return nil, buf, fmt.Errorf("%w: truncated header: %w", ErrBadFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, buf, fmt.Errorf("%w: length prefix %d exceeds MaxFrame %d", ErrBadFrame, n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, buf, fmt.Errorf("%w: truncated payload (%d declared): %w", ErrBadFrame, n, err)
	}
	return payload, buf, nil
}
